module pw

go 1.24
