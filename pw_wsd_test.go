package pw_test

import (
	"testing"

	"pw"
)

// TestWSDFacade exercises the decomposition backend through the public
// API: build, count, decide, round-trip through the enumeration backend.
func TestWSDFacade(t *testing.T) {
	w := pw.NewWSD(pw.Schema{{Name: "Emp", Arity: 2}})
	err := w.AddComponent(
		pw.WSDAlt{{Rel: "Emp", Args: pw.Fact{"carol", "sales"}}},
		pw.WSDAlt{{Rel: "Emp", Args: pw.Fact{"carol", "eng"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	err = w.AddComponent(
		pw.WSDAlt{{Rel: "Emp", Args: pw.Fact{"alice", "sales"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Count().Int64(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if !w.CertainFact("Emp", pw.Fact{"alice", "sales"}) {
		t.Error("certain fact not certain")
	}
	if !w.PossibleFact("Emp", pw.Fact{"carol", "eng"}) {
		t.Error("possible fact not possible")
	}

	// Round trip through the explicit world list.
	back, err := pw.WSDFromWorlds(w.Expand(0))
	if err != nil {
		t.Fatal(err)
	}
	if back.Count().Cmp(w.Count()) != 0 {
		t.Fatalf("round trip changed the world count: %s vs %s", back.Count(), w.Count())
	}
}

// TestToWSDFacade pins the compiler façade: a database with a forced
// variable compiles; a Codd-table with a free variable reports
// ErrInfiniteRep; the canonical-domain compiler agrees with Worlds.
func TestToWSDFacade(t *testing.T) {
	free := pw.NewTable("T", 2)
	free.AddTuple(pw.Const("a"), pw.Var("x"))
	d := pw.NewDatabase(free)
	if _, err := pw.ToWSD(d); err == nil {
		t.Fatal("ToWSD accepted an infinite rep")
	}

	w, err := pw.ToWSDOverDomain(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	worlds := pw.Worlds(d)
	if got := w.Count().Int64(); got != int64(len(worlds)) {
		t.Fatalf("decomposition has %d worlds, enumeration backend has %d", got, len(worlds))
	}
	for _, inst := range worlds {
		if !w.Member(inst) {
			t.Fatalf("enumerated world rejected by the decomposition:\n%s", inst)
		}
	}
}

// TestWSDQueryFacade exercises the lifted query evaluator through the
// public API: ApplyWSD, the answer-set entry points and native
// containment.
func TestWSDQueryFacade(t *testing.T) {
	w := pw.NewWSD(pw.Schema{{Name: "Emp", Arity: 2}})
	err := w.AddComponent(
		pw.WSDAlt{{Rel: "Emp", Args: pw.Fact{"carol", "sales"}}},
		pw.WSDAlt{{Rel: "Emp", Args: pw.Fact{"carol", "eng"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddComponent(pw.WSDAlt{{Rel: "Emp", Args: pw.Fact{"alice", "sales"}}}); err != nil {
		t.Fatal(err)
	}

	names := pw.NewAlgebraQuery("names",
		pw.AlgebraOut{Name: "Name", Expr: pw.ProjectExpr(pw.ScanExpr("Emp", "who", "dept"), "who")})
	ans, err := pw.ApplyWSD(names, w)
	if err != nil {
		t.Fatal(err)
	}
	// Both worlds project to {carol, alice}: one certain answer world.
	if got := ans.Count().Int64(); got != 1 {
		t.Fatalf("answer Count = %d, want 1", got)
	}
	cert, err := pw.CertainAnswersWSD(names, w)
	if err != nil {
		t.Fatal(err)
	}
	if r := cert.Relation("Name"); r == nil || r.Len() != 2 {
		t.Fatalf("certain answers = %v, want carol and alice", cert)
	}
	poss, err := pw.PossibleAnswersWSD(names, w)
	if err != nil {
		t.Fatal(err)
	}
	if !poss.Equal(cert) {
		t.Fatalf("possible answers %v must equal certain answers %v here", poss, cert)
	}

	// The answer world-set is contained in itself; the input is not
	// contained in the answer (different schemas).
	if ok, err := pw.ContainedWSD(ans, ans); err != nil || !ok {
		t.Fatalf("self containment: %v %v", ok, err)
	}
	if ok, err := pw.ContainedWSD(w, ans); err != nil || ok {
		t.Fatalf("schema-mismatched containment must be false: %v %v", ok, err)
	}
	if ok, err := pw.ContainedViewsWSD(names, w, names, w); err != nil || !ok {
		t.Fatalf("view self containment: %v %v", ok, err)
	}
}
