// Benchmarks regenerating the paper's figures and the DESIGN.md ablations.
// One benchmark per figure/theorem (see DESIGN.md's per-experiment index);
// run them all with:
//
//	go test -bench=. -benchmem
//
// The absolute numbers are machine-dependent; what must reproduce is the
// shape (Fig. 2): PTIME cells scale polynomially with the sub-benchmark
// size, hard cells blow up with the reduction family parameter.
package pw

import (
	"fmt"
	"io"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pw/internal/algebra"
	"pw/internal/datalog"
	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/graph"
	"pw/internal/matching"
	"pw/internal/query"
	"pw/internal/reduce"
	"pw/internal/rel"
	"pw/internal/sat"
	"pw/internal/server"
	"pw/internal/table"
	"pw/internal/value"
	"pw/internal/worlds"
	"pw/internal/wsd"
	"pw/internal/wsdalg"
)

// --- Fig. 1: representation hierarchy (semantics microbenchmark) ---

func BenchmarkFig1_Hierarchy(b *testing.B) {
	tb := NewTable("T", 3)
	tb.AddTuple(Const("0"), Const("1"), Var("x"))
	tb.AddTuple(Var("y"), Var("z"), Const("1"))
	tb.AddTuple(Const("2"), Const("0"), Var("v"))
	d := NewDatabase(tb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if CountWorlds(d) == 0 {
			b.Fatal("no worlds")
		}
	}
}

// --- Fig. 2 / Fig. 3 / Thm 3.1(1): MEMB on Codd-tables, polynomial cell ---

// The unsuffixed gated benchmarks pin Workers: 1 — the sequential,
// baseline-comparable configuration (same convention as pwbench); the
// _w1/_w8 variants below compare engine configurations explicitly.
func benchMembCodd(b *testing.B, rows int) {
	tb := gen.CoddTable(int64(rows), "T", rows, 3, 2*rows, 0.3)
	d := table.DB(tb)
	i, ok := gen.MemberInstance(int64(rows), d)
	if !ok {
		b.Skip("no member instance")
	}
	o := decide.Options{Workers: 1}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := o.Membership(i, query.Identity{}, d)
		if err != nil || !yes {
			b.Fatalf("membership failed: %v %v", yes, err)
		}
	}
}

func BenchmarkFig3_MembMatching_128(b *testing.B)  { benchMembCodd(b, 128) }
func BenchmarkFig3_MembMatching_512(b *testing.B)  { benchMembCodd(b, 512) }
func BenchmarkFig3_MembMatching_2048(b *testing.B) { benchMembCodd(b, 2048) }

// Pinned-worker variants of the gated probes: _w1 is the sequential
// engine, _w8 the sharded one (the ≥2x-at-8-workers speedup target of
// the parallel decision engine on multi-core hosts).
func benchMembCoddOpt(b *testing.B, rows, workers int) {
	tb := gen.CoddTable(int64(rows), "T", rows, 3, 2*rows, 0.3)
	d := table.DB(tb)
	i, ok := gen.MemberInstance(int64(rows), d)
	if !ok {
		b.Skip("no member instance")
	}
	o := decide.Options{Workers: workers}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := o.Membership(i, query.Identity{}, d)
		if err != nil || !yes {
			b.Fatalf("membership failed: %v %v", yes, err)
		}
	}
}

func BenchmarkFig3_MembMatching_2048_w1(b *testing.B) { benchMembCoddOpt(b, 2048, 1) }
func BenchmarkFig3_MembMatching_2048_w8(b *testing.B) { benchMembCoddOpt(b, 2048, 8) }

// --- Fig. 2 hard cells / Fig. 4 / Thm 3.1(2,3,4): MEMB reductions ---

func benchMembReduction(b *testing.B, build func(*graph.G) reduce.MembInstance, n int) {
	g := graph.Cycle(n)
	inst := build(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Membership(inst.I0, inst.Q0(), inst.D)
		if err != nil || !yes {
			b.Fatalf("cycle is 3-colorable: %v %v", yes, err)
		}
	}
}

func BenchmarkFig4_MembETable_C5(b *testing.B) {
	benchMembReduction(b, reduce.MembETableFrom3Col, 5)
}
func BenchmarkFig4_MembETable_C9(b *testing.B) {
	benchMembReduction(b, reduce.MembETableFrom3Col, 9)
}
func BenchmarkFig4_MembITable_C5(b *testing.B) {
	benchMembReduction(b, reduce.MembITableFrom3Col, 5)
}
func BenchmarkFig4_MembITable_C9(b *testing.B) {
	benchMembReduction(b, reduce.MembITableFrom3Col, 9)
}

func BenchmarkFig4_MembView_Paper(b *testing.B) {
	inst := reduce.MembViewFrom3Col(graph.Paper())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Membership(inst.I0, inst.Q, inst.D)
		if err != nil || !yes {
			b.Fatalf("paper graph is 3-colorable: %v %v", yes, err)
		}
	}
}

// --- Fig. 5: formula substrate ---

func BenchmarkFig5_Formulas(b *testing.B) {
	c := sat.PaperCNF()
	d := sat.PaperDNF()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Satisfiable() || d.Tautology() {
			b.Fatal("paper formula answers changed")
		}
	}
}

// --- Fig. 6 / Thm 3.2(4): UNIQ of a view ---

func BenchmarkFig6_UniqView_K4(b *testing.B) {
	inst := reduce.UniqViewFromGraph(graph.Complete(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Uniqueness(inst.Q0, inst.D0, inst.I)
		if err != nil || !yes {
			b.Fatalf("K4 is not 3-colorable: %v %v", yes, err)
		}
	}
}

// --- Thm 3.2(1): UNIQ on g-tables, polynomial cell ---

func benchUniqGTable(b *testing.B, rows int) {
	tb := table.New("T", 2)
	i := rel.NewInstance()
	r := i.EnsureRelation("T", 2)
	for j := 0; j < rows; j++ {
		c := fmt.Sprintf("c%d", j)
		x := value.Var(fmt.Sprintf("x%d", j))
		tb.AddTuple(value.Const(c), x)
		tb.Global = append(tb.Global, Eq(x, Const(c)))
		r.AddRow(c, c)
	}
	d := table.DB(tb)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := decide.Uniqueness(query.Identity{}, d, i)
		if err != nil || !yes {
			b.Fatalf("forced-ground g-table must be unique: %v %v", yes, err)
		}
	}
}

func BenchmarkThm32_UniqGTable_128(b *testing.B) { benchUniqGTable(b, 128) }
func BenchmarkThm32_UniqGTable_512(b *testing.B) { benchUniqGTable(b, 512) }

// --- Thm 3.2(3): UNIQ on c-tables (coNP cell) ---

func BenchmarkThm32_UniqCTable_Taut(b *testing.B) {
	f := sat.DNF{NVars: 2, Clauses: []sat.Clause3{
		{{Var: 0}, {Var: 0}, {Var: 0}},
		{{Var: 0, Neg: true}, {Var: 1}, {Var: 1}},
		{{Var: 0, Neg: true}, {Var: 1, Neg: true}, {Var: 1, Neg: true}},
	}}
	inst := reduce.UniqCTableFromDNF(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Uniqueness(inst.Q0, inst.D0, inst.I)
		if err != nil || !yes {
			b.Fatalf("tautology must be unique: %v %v", yes, err)
		}
	}
}

// --- Thm 4.1(3): CONT g-table ⊆ table, polynomial cell (freeze claim) ---

func benchContFreeze(b *testing.B, rows int) {
	t0 := gen.CoddTable(int64(rows), "T", rows, 2, rows, 0.4)
	// Superset: same rows plus a free wildcard row (x, y): always contains.
	t := t0.Clone()
	t.AddTuple(value.Var("wild1"), value.Var("wild2"))
	d0, d := table.DB(t0), table.DB(t)
	o := decide.Options{Workers: 1}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := o.Containment(query.Identity{}, d0, query.Identity{}, d)
		if err != nil || !yes {
			b.Fatalf("superset extension must contain: %v %v", yes, err)
		}
	}
}

func BenchmarkThm41_ContFreeze_64(b *testing.B)  { benchContFreeze(b, 64) }
func BenchmarkThm41_ContFreeze_256(b *testing.B) { benchContFreeze(b, 256) }

func benchContFreezeOpt(b *testing.B, rows, workers int) {
	t0 := gen.CoddTable(int64(rows), "T", rows, 2, rows, 0.4)
	t := t0.Clone()
	t.AddTuple(value.Var("wild1"), value.Var("wild2"))
	d0, d := table.DB(t0), table.DB(t)
	o := decide.Options{Workers: workers}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := o.Containment(query.Identity{}, d0, query.Identity{}, d)
		if err != nil || !yes {
			b.Fatalf("superset extension must contain: %v %v", yes, err)
		}
	}
}

func BenchmarkThm41_ContFreeze_256_w1(b *testing.B) { benchContFreezeOpt(b, 256, 1) }
func BenchmarkThm41_ContFreeze_256_w8(b *testing.B) { benchContFreezeOpt(b, 256, 8) }

// --- Thm 4.2 / Figs. 7-10: CONT hard cells (reduction families) ---

func benchContReduction(b *testing.B, inst reduce.ContInstance, want bool) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Containment(inst.Q0, inst.D0, inst.Q, inst.D)
		if err != nil || yes != want {
			b.Fatalf("containment = %v (err %v), want %v", yes, err, want)
		}
	}
}

func fig7Family(nx int) sat.ForallExists {
	// ∀x1..x_nx ∃y: (x1∨y)(¬x1∨¬y): valid; grows with nx padding clauses.
	q := sat.ForallExists{NX: nx, NY: 1}
	for i := 0; i < nx; i++ {
		q.Clauses = append(q.Clauses,
			sat.Clause3{{Var: i}, {Var: nx}, {Var: nx}},
			sat.Clause3{{Var: i, Neg: true}, {Var: nx, Neg: true}, {Var: nx, Neg: true}},
		)
	}
	return q
}

func BenchmarkFig7_ContITable_n1(b *testing.B) {
	q := fig7Family(1)
	benchContReduction(b, reduce.ContITableFromForallExists(q), q.Valid())
}
func BenchmarkFig7_ContITable_n2(b *testing.B) {
	q := fig7Family(2)
	benchContReduction(b, reduce.ContITableFromForallExists(q), q.Valid())
}

func BenchmarkFig8_ContView_n1(b *testing.B) {
	q := fig7Family(1)
	benchContReduction(b, reduce.ContViewFromForallExists(q), q.Valid())
}

func BenchmarkFig9_ContQo_Taut(b *testing.B) {
	f := sat.DNF{NVars: 1, Clauses: []sat.Clause3{
		{{Var: 0}, {Var: 0}, {Var: 0}},
		{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
	}}
	benchContReduction(b, reduce.ContQoFromDNF(f), true)
}

func BenchmarkFig10_ContQoETable_n1(b *testing.B) {
	q := fig7Family(1)
	benchContReduction(b, reduce.ContQoETableFromForallExists(q), q.Valid())
}

// --- Fig. 11 / Thm 5.1(2,3): POSS reductions ---

func BenchmarkFig11_PossETable_Paper(b *testing.B) {
	inst := reduce.PossETableFrom3SAT(sat.PaperCNF())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Possible(inst.P, inst.Q, inst.D)
		if err != nil || !yes {
			b.Fatalf("paper CNF is satisfiable: %v %v", yes, err)
		}
	}
}

func BenchmarkFig11_PossITable_Paper(b *testing.B) {
	inst := reduce.PossITableFrom3SAT(sat.PaperCNF())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Possible(inst.P, inst.Q, inst.D)
		if err != nil || !yes {
			b.Fatalf("paper CNF is satisfiable: %v %v", yes, err)
		}
	}
}

// --- Thm 5.1(1): POSS on Codd-tables, polynomial cell ---

func benchPossCodd(b *testing.B, rows int) {
	tb := gen.CoddTable(int64(rows)+5, "T", rows, 3, 2*rows, 0.3)
	d := table.DB(tb)
	w, ok := gen.MemberInstance(int64(rows), d)
	if !ok {
		b.Skip("no member instance")
	}
	p := rel.NewInstance()
	pr := p.EnsureRelation("T", 3)
	for i, f := range w.Relation("T").Facts() {
		if i%2 == 0 {
			pr.Add(f)
		}
	}
	o := decide.Options{Workers: 1}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := o.Possible(p, query.Identity{}, d)
		if err != nil || !yes {
			b.Fatalf("half of a world must be possible: %v %v", yes, err)
		}
	}
}

func BenchmarkThm51_PossCodd_128(b *testing.B) { benchPossCodd(b, 128) }
func BenchmarkThm51_PossCodd_512(b *testing.B) { benchPossCodd(b, 512) }

// --- Thm 5.2(1): bounded POSS of a pos-exist query on c-tables ---

func benchPossLifted(b *testing.B, rows int) {
	q := query.NewAlgebra("bench",
		query.Out{Name: "Q", Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("T", "a", "b"), algebra.EqP(algebra.Col("a"), algebra.Col("b"))),
			Cols: []string{"a"},
		}})
	tb := gen.CTable(int64(rows)+3, "T", rows, 2, 8, 4, 0.4, 0.3)
	d := table.DB(tb)
	p := rel.NewInstance()
	p.EnsureRelation("Q", 1).AddRow("c1")
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := decide.Possible(p, q, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThm52_PossBounded_64(b *testing.B)  { benchPossLifted(b, 64) }
func BenchmarkThm52_PossBounded_256(b *testing.B) { benchPossLifted(b, 256) }

// --- Fig. 12 / Thm 5.2(3): DATALOG possibility gadget ---

func BenchmarkFig12_PossDatalog(b *testing.B) {
	f := sat.CNF{NVars: 2, Clauses: []sat.Clause3{{{Var: 0}, {Var: 1}, {Var: 1}}}}
	inst := reduce.PossDatalogFrom3SAT(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Possible(inst.P, inst.Q, inst.D)
		if err != nil || !yes {
			b.Fatalf("satisfiable CNF must be possible: %v %v", yes, err)
		}
	}
}

// --- Thm 5.2(2)/5.3(2): FO reduction (NP/coNP cells) ---

func BenchmarkThm52_PossFO_Tiny(b *testing.B) {
	f := sat.DNF{NVars: 2, Clauses: []sat.Clause3{{{Var: 0}, {Var: 1}, {Var: 0}}}}
	inst := reduce.PossFOFromDNF(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Possible(inst.P, inst.Q, inst.D)
		if err != nil || !yes {
			b.Fatalf("non-tautology must be possible: %v %v", yes, err)
		}
	}
}

func BenchmarkThm53_CertFO_Tiny(b *testing.B) {
	f := sat.DNF{NVars: 1, Clauses: []sat.Clause3{
		{{Var: 0}, {Var: 0}, {Var: 0}},
		{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
	}}
	inst := reduce.CertFOFromDNF(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		yes, err := decide.Certain(inst.P, inst.Q, inst.D)
		if err != nil || !yes {
			b.Fatalf("tautology must be certain: %v %v", yes, err)
		}
	}
}

// --- Thm 5.3(1): frozen CERT of datalog on g-tables ---

func benchCertFrozen(b *testing.B, rows int) {
	prog := datalog.Program{Rules: []datalog.Rule{
		datalog.R(datalog.At("TC", value.Var("x"), value.Var("y")),
			datalog.At("T", value.Var("x"), value.Var("y"))),
		datalog.R(datalog.At("TC", value.Var("x"), value.Var("z")),
			datalog.At("TC", value.Var("x"), value.Var("y")),
			datalog.At("T", value.Var("y"), value.Var("z"))),
	}}
	q := query.NewDatalog("tc", prog, "TC")
	tb := table.New("T", 2)
	for i := 0; i < rows; i++ {
		tb.AddTuple(value.Const(fmt.Sprintf("c%d", i)), value.Const(fmt.Sprintf("c%d", i+1)))
	}
	for i := 0; i < rows/4; i++ {
		tb.AddTuple(value.Const(fmt.Sprintf("c%d", i)), value.Var(fmt.Sprintf("x%d", i)))
	}
	d := table.DB(tb)
	p := rel.NewInstance()
	p.EnsureRelation("TC", 2).AddRow("c0", fmt.Sprintf("c%d", rows))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := decide.Certain(p, q, d)
		if err != nil || !yes {
			b.Fatalf("chain closure must be certain: %v %v", yes, err)
		}
	}
}

func BenchmarkThm53_CertFrozen_32(b *testing.B)  { benchCertFrozen(b, 32) }
func BenchmarkThm53_CertFrozen_128(b *testing.B) { benchCertFrozen(b, 128) }

// --- Ablations (DESIGN.md §3) ---

// A1: Hopcroft–Karp vs simple augmenting matching.
func benchMatching(b *testing.B, algo func(*matching.Graph) ([]int, []int, int), n int) {
	g := matching.NewGraph(n, n)
	for u := 0; u < n; u++ {
		g.AddEdge(u, u)
		g.AddEdge(u, (u+1)%n)
		g.AddEdge(u, (u*7+3)%n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, size := algo(g); size != n {
			b.Fatal("expected perfect matching")
		}
	}
}

func BenchmarkAblation_MatchingHK_1024(b *testing.B) {
	benchMatching(b, matching.HopcroftKarp, 1024)
}
func BenchmarkAblation_MatchingSimple_1024(b *testing.B) {
	benchMatching(b, matching.Simple, 1024)
}

// A2: backtracking MEMB vs blind world enumeration on an e-table.
func a2Instance() (*rel.Instance, *table.Database) {
	tb := gen.ETable(11, "T", 8, 2, 6, 3, 0.5)
	d := table.DB(tb)
	i, ok := gen.MemberInstance(11, d)
	if !ok {
		i = d.EmptyInstance()
	}
	return i, d
}

func BenchmarkAblation_MembBacktracking(b *testing.B) {
	i, d := a2Instance()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := decide.Membership(i, query.Identity{}, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_MembBruteForce(b *testing.B) {
	i, d := a2Instance()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		worlds.Member(i, d)
	}
}

// A3: lifted-algebra POSS vs world-enumeration POSS on a c-table.
func a3Instance() (*rel.Instance, *table.Database) {
	tb := gen.CTable(13, "T", 8, 2, 6, 3, 0.4, 0.5)
	d := table.DB(tb)
	p := rel.NewInstance()
	p.EnsureRelation("T", 2).AddRow("c1", "c2")
	return p, d
}

func BenchmarkAblation_PossSearch(b *testing.B) {
	p, d := a3Instance()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := decide.Possible(p, query.Identity{}, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_PossBruteForce(b *testing.B) {
	p, d := a3Instance()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		worlds.Possible(p, d)
	}
}

// A4: semi-naive vs naive datalog on the Fig. 12 gadget.
func a4Program() (datalog.Program, *rel.Instance) {
	inst := reduce.PossDatalogFrom3SAT(sat.PaperCNF())
	// Freeze the gadget to get a concrete EDB.
	frozen := table.Freeze(inst.D, "~b")
	dl := inst.Q.(query.Datalog)
	return dl.Program, frozen
}

func BenchmarkAblation_DatalogSemiNaive(b *testing.B) {
	prog, edb := a4Program()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := prog.Eval(edb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_DatalogNaive(b *testing.B) {
	prog, edb := a4Program()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := prog.EvalNaive(edb); err != nil {
			b.Fatal(err)
		}
	}
}

// A5: frozen CERT vs world-enumeration CERT on a g-table.
func a5Instance() (*rel.Instance, query.Query, *table.Database) {
	prog := datalog.Program{Rules: []datalog.Rule{
		datalog.R(datalog.At("TC", value.Var("x"), value.Var("y")),
			datalog.At("T", value.Var("x"), value.Var("y"))),
		datalog.R(datalog.At("TC", value.Var("x"), value.Var("z")),
			datalog.At("TC", value.Var("x"), value.Var("y")),
			datalog.At("T", value.Var("y"), value.Var("z"))),
	}}
	q := query.NewDatalog("tc", prog, "TC")
	tb := table.New("T", 2)
	for i := 0; i < 6; i++ {
		tb.AddTuple(value.Const(fmt.Sprintf("c%d", i)), value.Const(fmt.Sprintf("c%d", i+1)))
	}
	tb.AddTuple(value.Const("c0"), value.Var("x0"))
	tb.AddTuple(value.Const("c1"), value.Var("x1"))
	d := table.DB(tb)
	p := rel.NewInstance()
	p.EnsureRelation("TC", 2).AddRow("c0", "c6")
	return p, q, d
}

func BenchmarkAblation_CertFrozen(b *testing.B) {
	p, q, d := a5Instance()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := decide.Certain(p, q, d)
		if err != nil || !yes {
			b.Fatal("chain closure must be certain")
		}
	}
}

func BenchmarkAblation_CertBruteForce(b *testing.B) {
	p, q, d := a5Instance()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		// Brute force: enumerate worlds, evaluate the query on each.
		violated := false
		worlds.Each(d, nil, func(w *rel.Instance) bool {
			out, err := q.Eval(w)
			if err != nil {
				b.Fatal(err)
			}
			if !p.SubsetOf(out) {
				violated = true
				return true
			}
			return false
		})
		if violated {
			b.Fatal("chain closure must be certain")
		}
	}
}

// --- WSD: the decomposition backend on a ~10^6-world world set ---

func BenchmarkWSD_Count_1M(b *testing.B) {
	w := gen.MillionWorldWSD()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := w.Count(); !c.IsInt64() || c.Int64() != 1<<20 {
			b.Fatalf("Count = %s, want 2^20", c)
		}
	}
}

func BenchmarkWSD_Memb_1M(b *testing.B) {
	w := gen.MillionWorldWSD()
	inst := w.World(make([]int, w.Components()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !w.Member(inst) {
			b.Fatal("materialized world must be a member")
		}
	}
}

func BenchmarkWSD_Poss_1M(b *testing.B) {
	w := gen.MillionWorldWSD()
	p := rel.NewInstance()
	pr := p.EnsureRelation("S", 2)
	pr.AddRow("hub", "ok")
	pr.AddRow("s00", "lo")
	pr.AddRow("s13", "hi")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !w.Possible(p) {
			b.Fatal("cross-component fragment must be possible")
		}
	}
}

// --- wsdalg: lifted query evaluation on the same ~10^6-world set ---

// The three gated WSDQuery probes run one positive-algebra operator
// family each through wsdalg.Eval on the shared 2^20-world builder:
// selection (answer stays 2^20 worlds), projection (answer collapses to
// one certain world) and a cross-component natural join. No world is
// enumerated; the asserted counts pin correctness on every iteration.

func millionWorldQueries() (sel, proj, join query.Query) {
	scan := algebra.Scan("S", "s", "v")
	sel = query.NewAlgebra("hi", query.Out{Name: "A",
		Expr: algebra.Where(scan, algebra.EqP(algebra.Col("v"), algebra.Lit("hi")))})
	proj = query.NewAlgebra("sensors", query.Out{Name: "A",
		Expr: algebra.Project{E: scan, Cols: []string{"s"}}})
	// Dimension-table join: label every reading through a constant
	// value→label relation. Each component joins the (origin-free)
	// constant part locally, so the answer keeps the factored form —
	// joining the uncertain relation with *itself on the value column*
	// instead would correlate all 20 sensors and degenerate to a world
	// list, which is exactly what the MaxMergeAlts guard rejects.
	join = query.NewAlgebra("labels", query.Out{Name: "A",
		Expr: algebra.Project{
			E: algebra.Join{
				L: scan,
				R: algebra.ConstRel{Cols: []string{"v", "lab"}, Rows: [][]string{{"lo", "low"}, {"hi", "high"}}},
			},
			Cols: []string{"s", "lab"},
		}})
	return
}

func benchWSDQuery(b *testing.B, q query.Query, wantCount int64) {
	w := gen.MillionWorldWSD()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wsdalg.Eval(w, q)
		if err != nil {
			b.Fatal(err)
		}
		if c := out.Count(); !c.IsInt64() || c.Int64() != wantCount {
			b.Fatalf("answer Count = %s, want %d", c, wantCount)
		}
	}
}

func BenchmarkWSDQuery_Select_1M(b *testing.B) {
	sel, _, _ := millionWorldQueries()
	benchWSDQuery(b, sel, 1<<20)
}

func BenchmarkWSDQuery_Project_1M(b *testing.B) {
	_, proj, _ := millionWorldQueries()
	benchWSDQuery(b, proj, 1)
}

func BenchmarkWSDQuery_Join_1M(b *testing.B) {
	_, _, join := millionWorldQueries()
	// Every sensor world labels differently, so the answer world-set
	// stays at 2^20 (the certain hub reading joins nothing and drops).
	benchWSDQuery(b, join, 1<<20)
}

// --- wsdalg: world-set algebra + planner on the same 2^20-world set ---

// The three gated WSAlgebra probes exercise the compositional world-set
// operators and the cost-based planner at the million-world scale:
// a nested certain∘possible pipeline that collapses 2^20 worlds to one
// certain answer without enumerating any of them, choice-of over the
// 81-tuple possible-set (one answer world per support tuple), and a
// σ-over-⋈ query through EvalOptimized, whose pushed form must be
// priced strictly below the written one.

func BenchmarkWSAlgebra_Possible_1M(b *testing.B) {
	// certain(possible(σ[v=hi] S)): the possible-set of hi readings is a
	// single world (40 tuples — both fact spellings of all 20 sensors);
	// certain of a singleton world set is that world. Count pins the
	// collapse to one answer world on every iteration.
	q := query.NewAlgebra("hi-possible", query.Out{Name: "A",
		Expr: algebra.Certain{E: algebra.Possible{
			E: algebra.Where(algebra.Scan("S", "s", "v"),
				algebra.EqP(algebra.Col("v"), algebra.Lit("hi"))),
		}}})
	benchWSDQuery(b, q, 1)
}

func BenchmarkWSAlgebra_ChoiceOf_1M(b *testing.B) {
	// choiceof(possible(S)): the possible-set is one 81-tuple world (the
	// hub fact plus four spellings per sensor); choice-of splits it into
	// one singleton answer world per support tuple.
	q := query.NewAlgebra("pick", query.Out{Name: "A",
		Expr: algebra.ChoiceOf{E: algebra.Possible{E: algebra.Scan("S", "s", "v")}}})
	benchWSDQuery(b, q, 81)
}

func BenchmarkWSAlgebra_Planned_1M(b *testing.B) {
	// σ[lab=high] over the dimension-table join, written with the
	// selection on top. The planner must push it below the join (onto the
	// two-row constant side, leaving one row) and price the pushed form
	// strictly below the written one; the probe runs the chosen plan.
	q := query.NewAlgebra("high-labels", query.Out{Name: "A",
		Expr: algebra.Project{
			E: algebra.Where(
				algebra.Join{
					L: algebra.Scan("S", "s", "v"),
					R: algebra.ConstRel{Cols: []string{"v", "lab"}, Rows: [][]string{{"lo", "low"}, {"hi", "high"}}},
				},
				algebra.EqP(algebra.Col("lab"), algebra.Lit("high"))),
			Cols: []string{"s", "lab"},
		}})
	w := gen.MillionWorldWSD()
	if _, info := wsdalg.Optimize(w, q); info == nil || info.ChosenCost >= info.NaiveCost {
		b.Fatalf("planner must price the pushed form below the written one, got %+v", info)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := wsdalg.EvalOptimized(w, q, nil)
		if err != nil {
			b.Fatal(err)
		}
		if c := out.Count(); !c.IsInt64() || c.Int64() != 1<<20 {
			b.Fatalf("answer Count = %s, want 2^20", c)
		}
	}
}

// --- WSDAttr: the attribute-level decomposition on a 2^100-world set ---

// The century grid (gen.CenturyWSD) is 100 independent per-field
// choices: a world set the tuple-level form cannot even store expanded.
// The asserted 2^100 count pins exactness on every iteration; the three
// probes are the acceptance criteria for the attribute-level backend —
// MEMB, Count and a σ-π query, each well under 10ms/op on the factored
// form.

func centuryCount() *big.Int {
	return new(big.Int).Exp(big.NewInt(2), big.NewInt(100), nil)
}

func BenchmarkWSDAttr_Count_2p100(b *testing.B) {
	w := gen.CenturyWSD()
	want := centuryCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := w.Count(); c.Cmp(want) != 0 {
			b.Fatalf("Count = %s, want 2^100", c)
		}
	}
}

func BenchmarkWSDAttr_Memb_2p100(b *testing.B) {
	w := gen.CenturyWSD()
	inst := w.World(make([]int, w.Components()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !w.Member(inst) {
			b.Fatal("materialized world must be a member")
		}
	}
}

func BenchmarkWSDAttr_Query_2p100(b *testing.B) {
	q := query.NewAlgebra("hi", query.Out{Name: "A",
		Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("R", "s", "v"), algebra.EqP(algebra.Col("v"), algebra.Lit("hi"))),
			Cols: []string{"s"},
		}})
	w := gen.CenturyWSD()
	want := centuryCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wsdalg.Eval(w, q)
		if err != nil {
			b.Fatal(err)
		}
		if c := out.Count(); c.Cmp(want) != 0 {
			b.Fatalf("answer Count = %s, want 2^100", c)
		}
	}
}

// --- WSDUpdate: incremental renormalization vs the full rebuild ---

// One operation touching one of the fat builder's 21 components
// (gen.FatMillionWorldWSD, 2^20 worlds, ~2000 facts). The incremental
// engine re-normalizes only the touched component and shares the other
// 20 copy-on-write; the full path re-factorizes all of them per
// operation. Both print byte-identical canonical results (the property
// suites pin that); the gated probe pair tracks the speed gap — the
// incremental engine's reason to exist, ≥10x on this shape.
func benchWSDUpdate(b *testing.B, full bool) {
	w := gen.FatMillionWorldWSD()
	u := &wsd.Update{Ops: []wsd.UpdateOp{
		{Kind: wsd.OpDelete, Rel: "S", Args: []string{"s07f25", wsd.Wildcard}},
	}}
	apply := w.ApplyUpdate
	if full {
		apply = w.ApplyUpdateFull
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := apply(u)
		if err != nil {
			b.Fatal(err)
		}
		if c := out.Count(); !c.IsInt64() || c.Int64() != 1<<20 {
			b.Fatalf("post-update Count = %s, want 2^20", c)
		}
	}
}

func BenchmarkWSDUpdate_Incremental_1M(b *testing.B) { benchWSDUpdate(b, false) }
func BenchmarkWSDUpdate_Full_1M(b *testing.B)        { benchWSDUpdate(b, true) }

// --- Query server: answer cache, uncached eval, HTTP throughput ---

// serverHiQuery selects the hi readings of gen.MillionWorldWSD's S
// relation — the same shape as BenchmarkWSDQuery_Select_1M, so the
// uncached server path is directly comparable to bare wsdalg.Eval.
const serverHiQuery = "@query hi\n  out: Hi = select[#value = hi](S(sensor value))\n"

func newBenchServer(b *testing.B, cfg server.Config) *server.Server {
	b.Helper()
	s := server.New(cfg)
	if err := s.AddWSD("db", gen.MillionWorldWSD()); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkServerCertAns_Cached_1M(b *testing.B) {
	s := newBenchServer(b, server.Config{Workers: 1})
	req := &server.Request{DB: "db", Op: "cert-ans", Query: serverHiQuery}
	if _, err := s.Do(req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("repeat cert-ans missed the answer cache")
		}
	}
}

func BenchmarkServerCertAns_Uncached_1M(b *testing.B) {
	s := newBenchServer(b, server.Config{Workers: 1, CacheSize: -1})
	req := &server.Request{DB: "db", Op: "cert-ans", Query: serverHiQuery}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Cached {
			b.Fatal("cert-ans reported cached with caching disabled")
		}
	}
}

func BenchmarkServerHTTP_FactProbe_w8(b *testing.B) {
	s := newBenchServer(b, server.Config{Workers: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        16,
		MaxIdleConnsPerHost: 16,
	}}
	body := `{"db":"db","op":"poss","facts":"@relation S(2)\n  fact: s13 hi\n"}`
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Errorf("HTTP %d", resp.StatusCode)
				return
			}
		}
	})
}

// BenchmarkServerHTTP_FactProbe_traced is the fact-probe fleet with
// ?trace=1 on every request: each response additionally carries a span
// tree and the engine's cost counters. The gap to the untraced probe is
// the whole per-request price of the observability layer.
func BenchmarkServerHTTP_FactProbe_traced(b *testing.B) {
	s := newBenchServer(b, server.Config{Workers: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        16,
		MaxIdleConnsPerHost: 16,
	}}
	body := `{"db":"db","op":"poss","facts":"@relation S(2)\n  fact: s13 hi\n"}`
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/query?trace=1", "application/json", strings.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Errorf("HTTP %d", resp.StatusCode)
				return
			}
		}
	})
}

// BenchmarkServerHTTP_FactProbe_explain is the fact-probe fleet with
// ?explain=1 on every request: each response additionally carries the
// probe's plan (components, world count, duration). The gap to the
// plain probe bounds the cost of plan attachment and flight recording.
func BenchmarkServerHTTP_FactProbe_explain(b *testing.B) {
	s := newBenchServer(b, server.Config{Workers: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        16,
		MaxIdleConnsPerHost: 16,
	}}
	body := `{"db":"db","op":"poss","facts":"@relation S(2)\n  fact: s13 hi\n"}`
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/query?explain=1", "application/json", strings.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Errorf("HTTP %d", resp.StatusCode)
				return
			}
		}
	})
}
