// Command pwgen generates random workloads in .pw format: tables of every
// representation kind plus matching member instances, for feeding pwq and
// external experiments.
//
// Usage:
//
//	pwgen -kind codd|e|i|g|c -rows 64 -arity 2 -seed 1 [-member]
//
// The database goes to stdout; with -member a sampled member instance is
// printed after it, separated by a "# instance" comment.
package main

import (
	"flag"
	"fmt"
	"os"

	"pw/internal/gen"
	"pw/internal/parse"
	"pw/internal/table"
)

func main() {
	kind := flag.String("kind", "codd", "representation kind: codd|e|i|g|c")
	rows := flag.Int("rows", 32, "row count")
	arity := flag.Int("arity", 2, "arity")
	consts := flag.Int("consts", 0, "constant pool (default 2×rows)")
	nulls := flag.Float64("nulls", 0.3, "null density")
	seed := flag.Int64("seed", 1, "random seed")
	member := flag.Bool("member", false, "also emit a sampled member instance")
	flag.Parse()

	cp := *consts
	if cp == 0 {
		cp = 2 * *rows
	}
	var t *table.Table
	switch *kind {
	case "codd":
		t = gen.CoddTable(*seed, "T", *rows, *arity, cp, *nulls)
	case "e":
		t = gen.ETable(*seed, "T", *rows, *arity, cp, max(2, *rows/4), *nulls)
	case "i":
		t = gen.ITable(*seed, "T", *rows, *arity, cp, max(1, *rows/8), *nulls)
	case "g":
		t = gen.ETable(*seed, "T", *rows, *arity, cp, max(2, *rows/4), *nulls)
		i := gen.ITable(*seed+1, "X", *rows, *arity, cp, max(1, *rows/8), *nulls)
		t.Global = append(t.Global, i.Global...)
	case "c":
		t = gen.CTable(*seed, "T", *rows, *arity, cp, max(2, *rows/4), *nulls, 0.5)
	default:
		fmt.Fprintf(os.Stderr, "pwgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	d := table.DB(t)
	if err := parse.PrintDatabase(os.Stdout, d); err != nil {
		fmt.Fprintln(os.Stderr, "pwgen:", err)
		os.Exit(1)
	}
	if *member {
		inst, ok := gen.MemberInstance(*seed+7, d)
		if !ok {
			fmt.Fprintln(os.Stderr, "pwgen: no member instance found (unsatisfiable conditions?)")
			os.Exit(1)
		}
		fmt.Println("\n# instance")
		if err := parse.PrintInstance(os.Stdout, inst); err != nil {
			fmt.Fprintln(os.Stderr, "pwgen:", err)
			os.Exit(1)
		}
	}
}
