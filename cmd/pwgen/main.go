// Command pwgen generates random workloads in .pw format: tables of every
// representation kind plus matching member instances, and random
// world-set decompositions, for feeding pwq and external experiments.
//
// Usage:
//
//	pwgen -kind codd|e|i|g|c -rows 64 -arity 2 -seed 1 [-member]
//	pwgen -kind wsd -rows 8 -arity 2 -seed 1 [-member]
//
// The database goes to stdout; with -member a sampled member instance is
// printed after it, separated by a "# instance" comment. For -kind wsd,
// -rows is the component count, the member instance is a uniform world
// sample, and -nulls does not apply (decompositions hold ground facts).
// All generation is deterministic in -seed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"pw/internal/gen"
	"pw/internal/parse"
	"pw/internal/table"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pwgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "codd", "representation kind: codd|e|i|g|c|wsd")
	rows := fs.Int("rows", 32, "row count (component count for -kind wsd)")
	arity := fs.Int("arity", 2, "arity")
	consts := fs.Int("consts", 0, "constant pool (default 2×rows)")
	nulls := fs.Float64("nulls", 0.3, "null density (table kinds only; ignored for -kind wsd)")
	seed := fs.Int64("seed", 1, "random seed")
	member := fs.Bool("member", false, "also emit a sampled member instance")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cp := *consts
	if cp == 0 {
		cp = 2 * *rows
	}

	if *kind == "wsd" {
		w, err := gen.RandomWSD(*seed, *rows, 3, *arity, cp)
		if err != nil {
			fmt.Fprintln(stderr, "pwgen:", err)
			return 1
		}
		if err := parse.PrintWSD(stdout, w); err != nil {
			fmt.Fprintln(stderr, "pwgen:", err)
			return 1
		}
		if *member {
			inst := w.Sample(rand.New(rand.NewSource(*seed + 7)))
			if inst == nil {
				fmt.Fprintln(stderr, "pwgen: cannot sample from the empty world set")
				return 1
			}
			fmt.Fprintln(stdout, "\n# instance")
			if err := parse.PrintInstance(stdout, inst); err != nil {
				fmt.Fprintln(stderr, "pwgen:", err)
				return 1
			}
		}
		return 0
	}

	var t *table.Table
	switch *kind {
	case "codd":
		t = gen.CoddTable(*seed, "T", *rows, *arity, cp, *nulls)
	case "e":
		t = gen.ETable(*seed, "T", *rows, *arity, cp, max(2, *rows/4), *nulls)
	case "i":
		t = gen.ITable(*seed, "T", *rows, *arity, cp, max(1, *rows/8), *nulls)
	case "g":
		t = gen.ETable(*seed, "T", *rows, *arity, cp, max(2, *rows/4), *nulls)
		i := gen.ITable(*seed+1, "X", *rows, *arity, cp, max(1, *rows/8), *nulls)
		t.Global = append(t.Global, i.Global...)
	case "c":
		t = gen.CTable(*seed, "T", *rows, *arity, cp, max(2, *rows/4), *nulls, 0.5)
	default:
		fmt.Fprintf(stderr, "pwgen: unknown kind %q\n", *kind)
		return 2
	}
	d := table.DB(t)
	if err := parse.PrintDatabase(stdout, d); err != nil {
		fmt.Fprintln(stderr, "pwgen:", err)
		return 1
	}
	if *member {
		inst, ok := gen.MemberInstance(*seed+7, d)
		if !ok {
			fmt.Fprintln(stderr, "pwgen: no member instance found (unsatisfiable conditions?)")
			return 1
		}
		fmt.Fprintln(stdout, "\n# instance")
		if err := parse.PrintInstance(stdout, inst); err != nil {
			fmt.Fprintln(stderr, "pwgen:", err)
			return 1
		}
	}
	return 0
}
