package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pw/internal/parse"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden pins pwgen's output shape for every kind at a fixed seed —
// the generator feeds benchmarks and external experiments, so its output
// must not drift unnoticed across engine refactors.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"codd", []string{"-kind", "codd", "-rows", "4", "-seed", "1"}},
		{"e_member", []string{"-kind", "e", "-rows", "4", "-seed", "2", "-member"}},
		{"i", []string{"-kind", "i", "-rows", "4", "-seed", "3"}},
		{"g", []string{"-kind", "g", "-rows", "4", "-seed", "4"}},
		{"c", []string{"-kind", "c", "-rows", "4", "-seed", "5"}},
		{"wsd", []string{"-kind", "wsd", "-rows", "4", "-consts", "12", "-seed", "6"}},
		{"wsd_member", []string{"-kind", "wsd", "-rows", "3", "-consts", "12", "-seed", "7", "-member"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s",
					golden, stdout.String(), want)
			}
		})
	}
}

// TestDeterminism reruns every kind at a fixed seed: identical output,
// byte for byte — the property downstream experiment scripts rely on.
func TestDeterminism(t *testing.T) {
	for _, kind := range []string{"codd", "e", "i", "g", "c", "wsd"} {
		args := []string{"-kind", kind, "-rows", "6", "-seed", "42"}
		var first string
		for round := 0; round < 3; round++ {
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("%s: exit %d, stderr: %s", kind, code, stderr.String())
			}
			if round == 0 {
				first = stdout.String()
			} else if stdout.String() != first {
				t.Errorf("%s: output differs between runs with the same seed", kind)
			}
		}
		if first == "" {
			t.Errorf("%s: empty output", kind)
		}
	}
}

// TestOutputParses feeds every kind's output back through the parser —
// the generator must emit loadable .pw files.
func TestOutputParses(t *testing.T) {
	for _, kind := range []string{"codd", "e", "i", "g", "c", "wsd"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-kind", kind, "-rows", "5", "-seed", "9"}, &stdout, &stderr); code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", kind, code, stderr.String())
		}
		src, err := parse.ParseSource(strings.NewReader(stdout.String()))
		if err != nil {
			t.Fatalf("%s: output does not parse: %v\n%s", kind, err, stdout.String())
		}
		if kind == "wsd" && src.WSD == nil {
			t.Fatalf("wsd output parsed as a table database")
		}
		if kind != "wsd" && src.DB == nil {
			t.Fatalf("%s output parsed as a decomposition", kind)
		}
	}
}

func TestBadKindExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-kind", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown kind: exit %d, want 2", code)
	}
}
