// Command pwd is the possible-worlds query server: it loads .pw
// databases once, keeps their decompositions resident and normalized,
// and answers the pwq command set over HTTP/JSON to many concurrent
// clients — prepared queries, an answer cache keyed by (database
// version, query fingerprint), and singleflight batching make repeat
// and concurrent traffic cost far less than one pwq process each.
//
// Usage:
//
//	pwd -db name=file.pw [-db name2=file2.pw ...] [-addr :7780]
//	    [-workers 0] [-cache 256] [-slowquery 0] [-flightsize 128]
//
// API (see internal/server):
//
//	POST /query          {"db":"name","op":"memb|uniq|poss|cert|count|
//	                     sample|poss-ans|cert-ans|cont|write", ...};
//	                     append ?trace=1 to embed a span tree, engine
//	                     cost counters and the request ID in the answer,
//	                     and/or ?explain=1 to embed the evaluation plan
//	                     (estimates vs actuals; a summary probe plan on
//	                     decomposition-native ops)
//	GET  /dbs            loaded databases and versions
//	GET  /stats          cache and concurrency counters, per-db versions
//	GET  /metrics        Prometheus text exposition of every counter,
//	                     gauge and histogram (per-op latency, cache
//	                     traffic, per-db versions and backend kinds)
//	GET  /debug/requests flight recorder: the last -flightsize requests
//	                     (newest first) with ids, durations, statuses,
//	                     cost counters and plan summaries
//	POST /reload?db=X    re-read a database file
//	POST /update?db=X    apply an @update program (request body) to a
//	                     decomposition-backed database; installs a new
//	                     version while readers keep the old snapshot
//	GET  /healthz        liveness
//	GET  /debug/pprof/   profiles; GET /debug/vars for expvar
//
// -slowquery DUR logs every request slower than DUR to stderr as one
// JSON line with its request id, op, database, canonical query
// fingerprint, plan summary and cost counters.
//
// pwd prints "pwd: listening on ADDR" once the socket is bound (ADDR is
// the resolved address, so -addr :0 is usable by harnesses) and shuts
// down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"pw/internal/server"
)

var publishOnce sync.Once

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the server and blocks until a signal arrives or shutdown
// closes. Tests drive it with -addr 127.0.0.1:0 plus a shutdown channel
// and read the bound address off stdout.
func run(args []string, stdout, stderr io.Writer, shutdown <-chan struct{}) int {
	fs := flag.NewFlagSet("pwd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7780", "listen address (host:port; :0 picks a free port)")
	workersN := fs.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 0, "answer cache entries (0 = default 256, negative disables)")
	slowQuery := fs.Duration("slowquery", 0, "log queries slower than this to stderr (0 disables)")
	flightSize := fs.Int("flightsize", 0, "flight-recorder ring size for /debug/requests (0 = default 128, negative disables)")
	var dbs []string
	fs.Func("db", "database to load, as name=file.pw (repeatable)", func(v string) error {
		dbs = append(dbs, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(dbs) == 0 {
		fmt.Fprintln(stderr, "pwd: no databases; pass at least one -db name=file.pw")
		return 2
	}

	s := server.New(server.Config{
		Workers:            *workersN,
		CacheSize:          *cacheSize,
		SlowQueryThreshold: *slowQuery,
		SlowQueryLog:       stderr,
		FlightSize:         *flightSize,
	})
	for _, spec := range dbs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fmt.Fprintf(stderr, "pwd: -db %q is not name=file.pw\n", spec)
			return 2
		}
		if err := s.Open(name, path); err != nil {
			fmt.Fprintln(stderr, "pwd:", err)
			return 2
		}
	}
	// expvar.Publish panics on duplicate names; guard so tests can start
	// pwd more than once per process (only the first server's counters
	// are published — each pwd process has exactly one anyway).
	publishOnce.Do(s.PublishExpvar)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "pwd:", err)
		return 2
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "pwd: listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "pwd:", err)
		return 1
	case <-sig:
	case <-shutdown:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "pwd: shutdown:", err)
		return 1
	}
	return 0
}
