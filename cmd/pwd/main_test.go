package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// startPWD runs the server on an ephemeral port and returns its base
// URL plus a stop function that triggers graceful shutdown and waits
// for run to return (asserting exit 0).
func startPWD(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	var stdout lockedBuffer
	var stderr bytes.Buffer
	shutdown := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), &stdout, &stderr, shutdown)
	}()

	// The listen line is printed after the socket is bound.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("pwd never announced its address; stderr: %s", stderr.String())
		}
		out := stdout.String()
		if i := strings.Index(out, "listening on "); i >= 0 {
			addr = strings.TrimSpace(out[i+len("listening on "):])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	stop := func() {
		close(shutdown)
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("pwd exited %d; stderr: %s", code, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("pwd did not shut down")
		}
	}
	return "http://" + addr, stop
}

// lockedBuffer makes the stdout capture race-safe: run writes from its
// goroutine while the test polls.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestPWDServesQueriesOverHTTP(t *testing.T) {
	base, stop := startPWD(t,
		"-db", "sensors=../../examples/data/sensors.pw",
		"-db", "personnel=../../examples/data/personnel.pw",
		"-workers", "2")
	defer stop()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	body := `{"db":"sensors","op":"poss","facts":"@relation Reading(2)\n  fact: s00 hi\n"}`
	r, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("/query = %d", r.StatusCode)
	}
	var out struct {
		Answer *bool `json:"answer"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Answer == nil || !*out.Answer {
		t.Fatalf("poss answer = %v, want yes", out.Answer)
	}

	// expvar endpoint carries the published counters.
	ev, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	evBody := new(bytes.Buffer)
	evBody.ReadFrom(ev.Body)
	ev.Body.Close()
	if !strings.Contains(evBody.String(), `"pwd"`) {
		t.Fatalf("/debug/vars missing pwd counters: %s", evBody.String())
	}
}

// TestPWDUpdateEndToEnd drives the full write path over a real socket:
// POST an @update program, then read the installed version back through
// the query API. The patch halves the sensor network three times
// (decommission s01, pin s05, assume s00), so the count must drop from
// 2^20 to 2^17.
func TestPWDUpdateEndToEnd(t *testing.T) {
	base, stop := startPWD(t, "-db", "sensors=../../examples/data/sensors.pw")
	defer stop()

	prog, err := os.ReadFile("../../examples/data/sensors_patch.pw")
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(base+"/update?db=sensors", "text/plain", bytes.NewReader(prog))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != 200 {
		b := new(bytes.Buffer)
		b.ReadFrom(r.Body)
		t.Fatalf("/update = %d: %s", r.StatusCode, b.String())
	}
	var wrote struct {
		Version uint64 `json:"version"`
		Count   string `json:"count"`
	}
	if err := json.NewDecoder(r.Body).Decode(&wrote); err != nil {
		t.Fatal(err)
	}
	if wrote.Version != 2 {
		t.Fatalf("write installed version %d, want 2", wrote.Version)
	}
	if wrote.Count != "131072" {
		t.Fatalf("post-update count = %s, want 131072 (2^17)", wrote.Count)
	}

	q, err := http.Post(base+"/query", "application/json",
		strings.NewReader(`{"db":"sensors","op":"count"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Body.Close()
	var out struct {
		Version uint64 `json:"version"`
		Count   string `json:"count"`
	}
	if err := json.NewDecoder(q.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Version != 2 || out.Count != "131072" {
		t.Fatalf("count after write = %s at version %d, want 131072 at 2", out.Count, out.Version)
	}
}

func TestPWDBadInvocations(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb, nil); code != 2 {
		t.Fatalf("no -db: exit %d, want 2", code)
	}
	if code := run([]string{"-db", "malformed"}, &out, &errb, nil); code != 2 {
		t.Fatalf("malformed -db: exit %d, want 2", code)
	}
	if code := run([]string{"-db", "x=/does/not/exist.pw"}, &out, &errb, nil); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
	if code := run([]string{"-db", "q=../../examples/data/sensors_hi.pw"}, &out, &errb, nil); code != 2 {
		t.Fatalf("@query file as database: exit %d, want 2", code)
	}
}
