package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseCoverage(t *testing.T) {
	got, err := parseCoverage("ok  \tpw/internal/wsd\t0.5s\tcoverage: 87.3% of statements\n")
	if err != nil || got != 87.3 {
		t.Fatalf("parseCoverage = %v, %v; want 87.3", got, err)
	}
	if _, err := parseCoverage("ok  \tpw/internal/wsd\t0.5s\n"); err == nil {
		t.Fatal("missing coverage line must error")
	}
}

// fakeCover is an injectable measurement for the gate logic tests.
func fakeCover(values map[string]float64) func(string) (float64, error) {
	return func(pkg string) (float64, error) {
		v, ok := values[pkg]
		if !ok {
			return 0, fmt.Errorf("unknown package %s", pkg)
		}
		return v, nil
	}
}

func writeFloors(t *testing.T, floors map[string]float64) string {
	t.Helper()
	data, err := json.Marshal(floors)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "floors.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckPassesAtFloor(t *testing.T) {
	path := writeFloors(t, map[string]float64{"a": 80.0, "b": 75.5})
	var stdout, stderr bytes.Buffer
	code := run([]string{path}, &stdout, &stderr, fakeCover(map[string]float64{"a": 80.0, "b": 90.1}))
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr.String())
	}
}

func TestCheckFailsBelowFloor(t *testing.T) {
	path := writeFloors(t, map[string]float64{"a": 80.0, "b": 75.5})
	var stdout, stderr bytes.Buffer
	code := run([]string{path}, &stdout, &stderr, fakeCover(map[string]float64{"a": 79.9, "b": 90.0}))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "BELOW FLOOR") {
		t.Fatalf("report should flag the failing package:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "DESIGN.md") {
		t.Fatalf("failure should point at the regeneration doc, got: %s", stderr.String())
	}
}

func TestWriteRecordsSlackedFloors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "floors.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-write", path, "a"}, &stdout, &stderr, fakeCover(map[string]float64{"a": 87.36}))
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var floors map[string]float64
	if err := json.Unmarshal(data, &floors); err != nil {
		t.Fatal(err)
	}
	if floors["a"] != 86.3 { // 87.36 - 1.0 slack, floored to one decimal
		t.Fatalf("floor = %v, want 86.3", floors["a"])
	}
}

func TestBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-write", "floors.json"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("-write without packages: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("missing floors file: exit %d, want 2", code)
	}
}
