// Command covcheck enforces per-package test-coverage floors: it runs
// `go test -cover` for every package named in a checked-in floors file
// and exits nonzero when any package's statement coverage has dropped
// below its floor. It is the CI tripwire that keeps the load-bearing
// packages (the decomposition backend and the lifted evaluator, whose
// differential suites are the system's correctness story) from shedding
// coverage silently.
//
// Usage:
//
//	covcheck COVERAGE_floors.json               # enforce the floors
//	covcheck -write COVERAGE_floors.json PKG... # regenerate the floors
//
// The floors file maps import paths to minimum statement-coverage
// percentages. -write measures the named packages and records their
// current coverage minus a one-point slack (so incidental churn does
// not trip the gate; genuine drops do). Regeneration is documented in
// DESIGN.md — raise floors deliberately when a PR adds real coverage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, goCover))
}

// writeSlack is subtracted from measured coverage when regenerating
// floors: enough to absorb line-count churn, small enough to catch a
// real coverage drop.
const writeSlack = 1.0

func run(args []string, stdout, stderr io.Writer, cover func(pkg string) (float64, error)) int {
	fs := flag.NewFlagSet("covcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	write := fs.Bool("write", false, "measure the named packages and rewrite the floors file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: covcheck [-write] FLOORS.json [pkg ...]")
		return 2
	}
	path := fs.Arg(0)

	if *write {
		pkgs := fs.Args()[1:]
		if len(pkgs) == 0 {
			fmt.Fprintln(stderr, "covcheck: -write needs at least one package")
			return 2
		}
		floors := map[string]float64{}
		for _, pkg := range pkgs {
			got, err := cover(pkg)
			if err != nil {
				fmt.Fprintf(stderr, "covcheck: %s: %v\n", pkg, err)
				return 1
			}
			floor := math.Max(0, math.Floor((got-writeSlack)*10)/10)
			floors[pkg] = floor
			fmt.Fprintf(stdout, "%-28s %6.1f%% -> floor %.1f%%\n", pkg, got, floor)
		}
		data, err := json.MarshalIndent(floors, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "covcheck: %v\n", err)
			return 1
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "covcheck: %v\n", err)
			return 1
		}
		return 0
	}

	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "covcheck: %v\n", err)
		return 2
	}
	var floors map[string]float64
	if err := json.Unmarshal(data, &floors); err != nil {
		fmt.Fprintf(stderr, "covcheck: %s: %v\n", path, err)
		return 2
	}
	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	failed := false
	for _, pkg := range pkgs {
		got, err := cover(pkg)
		if err != nil {
			fmt.Fprintf(stderr, "covcheck: %s: %v\n", pkg, err)
			return 1
		}
		status := "ok"
		if got < floors[pkg] {
			status = "BELOW FLOOR"
			failed = true
		}
		fmt.Fprintf(stdout, "%-28s %6.1f%% (floor %.1f%%) %s\n", pkg, got, floors[pkg], status)
	}
	if failed {
		fmt.Fprintf(stderr, "covcheck: coverage dropped below a checked-in floor; raise the tests, or regenerate %s deliberately (see DESIGN.md)\n", path)
		return 1
	}
	return 0
}

var coverRE = regexp.MustCompile(`coverage: ([0-9.]+)% of statements`)

// goCover measures one package's statement coverage with `go test
// -cover` (cache-defeating, so floors always reflect a fresh run).
func goCover(pkg string) (float64, error) {
	out, err := exec.Command("go", "test", "-count=1", "-cover", pkg).CombinedOutput()
	if err != nil {
		return 0, fmt.Errorf("go test -cover: %v\n%s", err, out)
	}
	return parseCoverage(string(out))
}

// parseCoverage extracts the statement-coverage percentage from `go
// test -cover` output.
func parseCoverage(out string) (float64, error) {
	m := coverRE.FindStringSubmatch(out)
	if m == nil {
		return 0, fmt.Errorf("no coverage line in output:\n%s", out)
	}
	return strconv.ParseFloat(m[1], 64)
}
