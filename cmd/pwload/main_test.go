package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"pw/internal/server"
)

func writeTargets(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "targets.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadAgainstInProcessServer(t *testing.T) {
	s := server.New(server.Config{Workers: 2})
	if err := s.Open("sensors", "../../examples/data/sensors.pw"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	targets := writeTargets(t,
		"# comment and blank lines are skipped",
		"",
		`{"db":"sensors","op":"poss","facts":"@relation Reading(2)\n  fact: s00 hi\n"}`,
		`{"db":"sensors","op":"count"}`,
		`{"db":"sensors","op":"cert-ans","query":"@query hi\n  out: Hi = select[#value = hi](Reading(sensor value))\n"}`,
	)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "4", "-duration", "300ms"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"requests:", "errors:   0", "req/s:", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if s.Stats().Requests == 0 {
		t.Fatal("server saw no requests")
	}
}

func TestLoadOpenLoopRate(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"op":"count","count":"1"}`))
	}))
	defer ts.Close()
	targets := writeTargets(t, `{"db":"x","op":"count"}`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "2",
		"-duration", "300ms", "-rate", "50"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	// ~15 arrivals in 300ms at 50/s; allow generous scheduling slack but
	// reject closed-loop-style unbounded firing.
	if n := hits.Load(); n < 3 || n > 40 {
		t.Fatalf("open loop fired %d requests in 300ms at 50/s", n)
	}
}

func TestLoadFailsOnErrorResponses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"boom"}`, 500)
	}))
	defer ts.Close()
	targets := writeTargets(t, `{"db":"x","op":"count"}`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "1", "-duration", "100ms"},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 on error responses", code)
	}
	if !strings.Contains(stderr.String(), "HTTP 500") {
		t.Fatalf("stderr does not name the failure: %s", stderr.String())
	}
}

func TestLoadBadInvocations(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("missing -targets: exit %d, want 2", code)
	}
	empty := writeTargets(t, "# nothing")
	if code := run([]string{"-targets", empty}, &out, &errb); code != 2 {
		t.Fatalf("empty targets: exit %d, want 2", code)
	}
}

func TestErrorClassBreakdownPerOp(t *testing.T) {
	// Fail by op so the breakdown has distinct rows: memb → 404,
	// poss → 500, count → 200.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		switch {
		case bytes.Contains(body, []byte(`"memb"`)):
			http.Error(w, `{"error":"no such db"}`, 404)
		case bytes.Contains(body, []byte(`"poss"`)):
			http.Error(w, `{"error":"boom"}`, 500)
		default:
			w.Write([]byte(`{"op":"count","count":"1"}`))
		}
	}))
	defer ts.Close()
	targets := writeTargets(t,
		`{"db":"x","op":"memb","inst":"w"}`,
		`{"db":"x","op":"poss","facts":"f"}`,
		`{"db":"x","op":"count"}`,
	)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "2", "-duration", "200ms"},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 with failing ops\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "errors[memb]: 404=") {
		t.Errorf("breakdown missing memb 404 row:\n%s", out)
	}
	if !strings.Contains(out, "errors[poss]: 5xx=") {
		t.Errorf("breakdown missing poss 5xx row:\n%s", out)
	}
	if strings.Contains(out, "errors[count]") {
		t.Errorf("count succeeded but appears in the error breakdown:\n%s", out)
	}
}

func TestErrClass(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   string
	}{
		{0, "transport"}, {400, "400"}, {404, "404"}, {409, "409"},
		{422, "422"}, {418, "4xx"}, {500, "5xx"}, {503, "5xx"},
	} {
		if got := errClass(tc.status); got != tc.want {
			t.Errorf("errClass(%d) = %q, want %q", tc.status, got, tc.want)
		}
	}
}

// Against a real pwd server the scrape-based cross-check holds: the
// server's /query counter delta equals the client's response count, and
// repeat cert-ans traffic shows up as a server-side cache-hit ratio.
func TestCheckServerTotalAgainstRealServer(t *testing.T) {
	s := server.New(server.Config{Workers: 2})
	if err := s.Open("sensors", "../../examples/data/sensors.pw"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	targets := writeTargets(t,
		`{"db":"sensors","op":"cert-ans","query":"@query hi\n  out: Hi = select[#value = hi](Reading(sensor value))\n"}`,
	)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "2",
		"-duration", "300ms", "-check-server-total"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "server:   /query ") {
		t.Fatalf("report missing server-side line:\n%s", out)
	}
	if !strings.Contains(out, "hit-ratio 0.") && !strings.Contains(out, "hit-ratio 1.00") {
		t.Errorf("report missing cache hit-ratio:\n%s", out)
	}
}

// A server whose /metrics does not account for the traffic fails the
// cross-check.
func TestCheckServerTotalMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer ts.Close()
	targets := writeTargets(t, `{"db":"x","op":"count"}`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "1",
		"-duration", "100ms", "-check-server-total"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 on counter mismatch", code)
	}
	if !strings.Contains(stderr.String(), "server counted") {
		t.Fatalf("stderr does not explain the mismatch: %s", stderr.String())
	}
}

func TestScrapeAndSeriesSum(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, "# HELP pwd_http_requests_total x\n"+
			"# TYPE pwd_http_requests_total counter\n"+
			`pwd_http_requests_total{path="/query",code="200"} 7`+"\n"+
			`pwd_http_requests_total{path="/query",code="404"} 2`+"\n"+
			`pwd_http_requests_total{path="/stats",code="200"} 9`+"\n")
	}))
	defer ts.Close()
	m, err := scrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := seriesSum(m, "pwd_http_requests_total", `path="/query"`); got != 9 {
		t.Errorf(`seriesSum(path="/query") = %g, want 9`, got)
	}
	if got := seriesSum(m, "pwd_http_requests_total", ""); got != 18 {
		t.Errorf("seriesSum(all) = %g, want 18", got)
	}
	if got := seriesSum(m, "pwd_absent_total", ""); got != 0 {
		t.Errorf("seriesSum(absent) = %g, want 0", got)
	}
}

// TestLoadJSONSummary: -json replaces the text report with one JSON
// object carrying the same numbers, including the server-side
// accounting scraped from /metrics.
func TestLoadJSONSummary(t *testing.T) {
	s := server.New(server.Config{Workers: 2})
	if err := s.Open("sensors", "../../examples/data/sensors.pw"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	targets := writeTargets(t,
		`{"db":"sensors","op":"count"}`,
		`{"db":"sensors","op":"cert-ans","query":"@query hi\n  out: Hi = select[#value = hi](Reading(sensor value))\n"}`,
	)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "2", "-duration", "200ms", "-json"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var sum struct {
		Requests  int64   `json:"requests"`
		Errors    int64   `json:"errors"`
		Responses int64   `json:"responses"`
		ReqPerSec float64 `json:"req_per_sec"`
		Latency   *struct {
			Mean int64 `json:"mean"`
			P50  int64 `json:"p50"`
			P99  int64 `json:"p99"`
			Max  int64 `json:"max"`
		} `json:"latency_us"`
		Server *struct {
			QueryDelta int64   `json:"query_delta"`
			CacheHits  int64   `json:"cache_hits"`
			HitRatio   float64 `json:"hit_ratio"`
		} `json:"server"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, stdout.String())
	}
	if sum.Requests == 0 || sum.Errors != 0 || sum.ReqPerSec <= 0 {
		t.Errorf("summary numbers implausible: %+v", sum)
	}
	if sum.Latency == nil || sum.Latency.P50 <= 0 || sum.Latency.Max < sum.Latency.P50 {
		t.Errorf("latency section implausible: %+v", sum.Latency)
	}
	if sum.Server == nil || sum.Server.QueryDelta != sum.Responses {
		t.Errorf("server section missing or inconsistent: %+v vs %d responses", sum.Server, sum.Responses)
	}
	// The cert-ans target repeats, so the cache must have hits and the
	// ratio must be a real fraction.
	if sum.Server != nil && (sum.Server.CacheHits == 0 || sum.Server.HitRatio <= 0 || sum.Server.HitRatio > 1) {
		t.Errorf("cache accounting implausible: %+v", sum.Server)
	}
}
