package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"pw/internal/server"
)

func writeTargets(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "targets.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadAgainstInProcessServer(t *testing.T) {
	s := server.New(server.Config{Workers: 2})
	if err := s.Open("sensors", "../../examples/data/sensors.pw"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	targets := writeTargets(t,
		"# comment and blank lines are skipped",
		"",
		`{"db":"sensors","op":"poss","facts":"@relation Reading(2)\n  fact: s00 hi\n"}`,
		`{"db":"sensors","op":"count"}`,
		`{"db":"sensors","op":"cert-ans","query":"@query hi\n  out: Hi = select[#value = hi](Reading(sensor value))\n"}`,
	)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "4", "-duration", "300ms"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"requests:", "errors:   0", "req/s:", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if s.Stats().Requests == 0 {
		t.Fatal("server saw no requests")
	}
}

func TestLoadOpenLoopRate(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"op":"count","count":"1"}`))
	}))
	defer ts.Close()
	targets := writeTargets(t, `{"db":"x","op":"count"}`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "2",
		"-duration", "300ms", "-rate", "50"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	// ~15 arrivals in 300ms at 50/s; allow generous scheduling slack but
	// reject closed-loop-style unbounded firing.
	if n := hits.Load(); n < 3 || n > 40 {
		t.Fatalf("open loop fired %d requests in 300ms at 50/s", n)
	}
}

func TestLoadFailsOnErrorResponses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"boom"}`, 500)
	}))
	defer ts.Close()
	targets := writeTargets(t, `{"db":"x","op":"count"}`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-targets", targets, "-c", "1", "-duration", "100ms"},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 on error responses", code)
	}
	if !strings.Contains(stderr.String(), "HTTP 500") {
		t.Fatalf("stderr does not name the failure: %s", stderr.String())
	}
}

func TestLoadBadInvocations(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("missing -targets: exit %d, want 2", code)
	}
	empty := writeTargets(t, "# nothing")
	if code := run([]string{"-targets", empty}, &out, &errb); code != 2 {
		t.Fatalf("empty targets: exit %d, want 2", code)
	}
}
