// Command pwload drives a running pwd server with query traffic and
// reports throughput and latency, in the style of hey/vegeta:
//
//	pwload -url http://127.0.0.1:7780 -targets load.jsonl \
//	       [-c 8] [-duration 3s] [-rate 0]
//
// The targets file holds one JSON /query request body per line (blank
// lines and # comments skipped); workers cycle through them in order.
// -rate 0 runs closed-loop (each of the -c workers fires its next
// request as soon as the previous answer lands); a positive -rate is an
// open-loop arrival schedule of that many requests per second spread
// across workers, the regime that measures queueing rather than server
// turnaround.
//
// Output: request count, error count, achieved req/s, and the latency
// mean/p50/p95/p99/max. Any non-200 response, transport error, or a run
// that completes zero requests exits 1 — so a CI smoke job fails on a
// server that crashes, races, or wedges under load.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pwload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:7780", "pwd base URL")
	targetsPath := fs.String("targets", "", "JSONL file of /query request bodies (required)")
	concurrency := fs.Int("c", 8, "concurrent client connections")
	duration := fs.Duration("duration", 3*time.Second, "how long to fire")
	rate := fs.Int("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	targets, err := readTargets(*targetsPath)
	if err != nil {
		fmt.Fprintln(stderr, "pwload:", err)
		return 2
	}
	if *concurrency < 1 {
		fmt.Fprintln(stderr, "pwload: -c must be positive")
		return 2
	}

	res := fire(*url, targets, *concurrency, *duration, *rate)
	report(stdout, res, *duration)
	if res.errs > 0 {
		fmt.Fprintf(stderr, "pwload: %d request(s) failed; first: %s\n", res.errs, res.firstErr)
		return 1
	}
	if res.done == 0 {
		fmt.Fprintln(stderr, "pwload: zero completed requests")
		return 1
	}
	return 0
}

// readTargets loads the request bodies; syntactic validation is the
// server's job (an invalid body will fail the run as a non-200).
func readTargets(path string) ([]string, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -targets")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var targets []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		targets = append(targets, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("%s holds no targets", path)
	}
	return targets, nil
}

type result struct {
	done     int64
	errs     int64
	firstErr string
	lats     []time.Duration
	elapsed  time.Duration
}

// fire drives the server for the duration and collects per-request
// latencies. Closed loop: each worker owns a request slot. Open loop: a
// central ticker hands arrival slots to whichever worker is free — if
// none is, the tick is dropped and counted as done-nothing (the server
// is saturated; latency of completed requests still tells the story).
func fire(url string, targets []string, concurrency int, duration time.Duration, rate int) *result {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        concurrency * 2,
		MaxIdleConnsPerHost: concurrency * 2,
	}}
	endpoint := url + "/query"

	var (
		mu       sync.Mutex
		res      = &result{}
		next     atomic.Int64
		deadline = time.Now().Add(duration)
	)
	recordErr := func(err error) {
		atomic.AddInt64(&res.errs, 1)
		mu.Lock()
		if res.firstErr == "" {
			res.firstErr = err.Error()
		}
		mu.Unlock()
	}
	shoot := func(local *[]time.Duration) {
		body := targets[int(next.Add(1))%len(targets)]
		start := time.Now()
		resp, err := client.Post(endpoint, "application/json", strings.NewReader(body))
		if err != nil {
			recordErr(err)
			return
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			recordErr(fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(out))))
			return
		}
		atomic.AddInt64(&res.done, 1)
		*local = append(*local, time.Since(start))
	}

	var wg sync.WaitGroup
	started := time.Now()
	if rate <= 0 {
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local []time.Duration
				for time.Now().Before(deadline) {
					shoot(&local)
				}
				mu.Lock()
				res.lats = append(res.lats, local...)
				mu.Unlock()
			}()
		}
	} else {
		// Open loop: arrivals on a fixed schedule, one buffered slot per
		// worker so a slow server sheds ticks instead of queueing them
		// without bound inside the client.
		arrivals := make(chan struct{}, concurrency)
		interval := time.Second / time.Duration(rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				select {
				case arrivals <- struct{}{}:
				default: // saturated: drop the arrival
				}
			}
			close(arrivals)
		}()
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local []time.Duration
				for range arrivals {
					shoot(&local)
				}
				mu.Lock()
				res.lats = append(res.lats, local...)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	res.elapsed = time.Since(started)
	return res
}

func report(w io.Writer, res *result, asked time.Duration) {
	elapsed := res.elapsed
	if elapsed <= 0 {
		elapsed = asked
	}
	rps := float64(res.done) / elapsed.Seconds()
	fmt.Fprintf(w, "requests: %d\nerrors:   %d\nreq/s:    %.0f\n", res.done, res.errs, rps)
	if len(res.lats) == 0 {
		return
	}
	sort.Slice(res.lats, func(i, j int) bool { return res.lats[i] < res.lats[j] })
	var sum time.Duration
	for _, l := range res.lats {
		sum += l
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(res.lats)-1))
		return res.lats[i]
	}
	fmt.Fprintf(w, "latency:  mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		sum/time.Duration(len(res.lats)), pct(0.50), pct(0.95), pct(0.99), res.lats[len(res.lats)-1])
}
