// Command pwload drives a running pwd server with query traffic and
// reports throughput and latency, in the style of hey/vegeta:
//
//	pwload -url http://127.0.0.1:7780 -targets load.jsonl \
//	       [-c 8] [-duration 3s] [-rate 0]
//
// The targets file holds one JSON /query request body per line (blank
// lines and # comments skipped); workers cycle through them in order.
// -rate 0 runs closed-loop (each of the -c workers fires its next
// request as soon as the previous answer lands); a positive -rate is an
// open-loop arrival schedule of that many requests per second spread
// across workers, the regime that measures queueing rather than server
// turnaround.
//
// Output: request count, error count, achieved req/s, and the latency
// mean/p50/p95/p99/max. Failed requests are additionally broken down
// per op and error class (400/404/409/422/4xx/5xx/transport). Any
// non-200 response, transport error, or a run that completes zero
// requests exits 1 — so a CI smoke job fails on a server that crashes,
// races, or wedges under load.
//
// pwload also scrapes GET /metrics before and after the run and reports
// the server's own view of the traffic next to the client percentiles:
// the /query request delta and the answer-cache hit ratio over the run.
// -check-server-total turns the cross-check into a hard failure: exit 1
// unless the server-side /query delta equals the number of responses
// the client saw — the accounting invariant the CI load job pins.
//
// -json replaces the text report with one JSON object (requests,
// errors, responses, req_per_sec, latency_us{mean,p50,p95,p99,max},
// error_classes by op and class, and the server-side accounting) so CI
// jobs and dashboards consume the run without parsing prose. Exit codes
// are identical in both modes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pwload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:7780", "pwd base URL")
	targetsPath := fs.String("targets", "", "JSONL file of /query request bodies (required)")
	concurrency := fs.Int("c", 8, "concurrent client connections")
	duration := fs.Duration("duration", 3*time.Second, "how long to fire")
	rate := fs.Int("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	checkTotal := fs.Bool("check-server-total", false, "fail unless the server-side /query counter delta matches the client's response count")
	jsonOut := fs.Bool("json", false, "emit the run summary as one JSON object instead of the text report")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	targets, err := readTargets(*targetsPath)
	if err != nil {
		fmt.Fprintln(stderr, "pwload:", err)
		return 2
	}
	if *concurrency < 1 {
		fmt.Fprintln(stderr, "pwload: -c must be positive")
		return 2
	}

	before, errBefore := scrapeMetrics(*url)
	res := fire(*url, targets, *concurrency, *duration, *rate)
	after, errAfter := scrapeMetrics(*url)
	if *jsonOut {
		sum := summarize(res, *duration, before, after, errBefore, errAfter)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
	} else {
		report(stdout, res, *duration)
	}

	code := 0
	if res.errs > 0 {
		fmt.Fprintf(stderr, "pwload: %d request(s) failed; first: %s\n", res.errs, res.firstErr)
		code = 1
	}
	if res.done == 0 {
		fmt.Fprintln(stderr, "pwload: zero completed requests")
		code = 1
	}
	var serverOut io.Writer = stdout
	if *jsonOut {
		serverOut = io.Discard // the summary already carries the server section
	}
	if err := reportServer(serverOut, before, after, errBefore, errAfter, res, *checkTotal); err != nil {
		fmt.Fprintln(stderr, "pwload:", err)
		code = 1
	}
	return code
}

// summary is the -json output shape: the same numbers the text report
// prints, as one machine-readable object (latencies in microseconds).
type summary struct {
	Requests     int64                       `json:"requests"`
	Errors       int64                       `json:"errors"`
	Responses    int64                       `json:"responses"`
	ReqPerSec    float64                     `json:"req_per_sec"`
	Latency      *latencySummary             `json:"latency_us,omitempty"`
	ErrorClasses map[string]map[string]int64 `json:"error_classes,omitempty"`
	Server       *serverSummary              `json:"server,omitempty"`
}

type latencySummary struct {
	Mean int64 `json:"mean"`
	P50  int64 `json:"p50"`
	P95  int64 `json:"p95"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
}

// serverSummary is the server's own accounting of the run, scraped from
// /metrics; absent when either scrape failed. HitRatio is -1 when the
// run produced no answer-cache traffic.
type serverSummary struct {
	QueryDelta  int64   `json:"query_delta"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRatio    float64 `json:"hit_ratio"`
}

func summarize(res *result, asked time.Duration, before, after map[string]float64, errBefore, errAfter error) *summary {
	elapsed := res.elapsed
	if elapsed <= 0 {
		elapsed = asked
	}
	sum := &summary{
		Requests:  res.done,
		Errors:    res.errs,
		Responses: res.resps,
		ReqPerSec: float64(res.done) / elapsed.Seconds(),
	}
	if len(res.classes) > 0 {
		sum.ErrorClasses = res.classes
	}
	if len(res.lats) > 0 {
		sort.Slice(res.lats, func(i, j int) bool { return res.lats[i] < res.lats[j] })
		var total time.Duration
		for _, l := range res.lats {
			total += l
		}
		pct := func(p float64) int64 {
			return res.lats[int(p*float64(len(res.lats)-1))].Microseconds()
		}
		sum.Latency = &latencySummary{
			Mean: (total / time.Duration(len(res.lats))).Microseconds(),
			P50:  pct(0.50),
			P95:  pct(0.95),
			P99:  pct(0.99),
			Max:  res.lats[len(res.lats)-1].Microseconds(),
		}
	}
	if errBefore == nil && errAfter == nil {
		hits := seriesSum(after, "pwd_answer_cache_hits_total", "") -
			seriesSum(before, "pwd_answer_cache_hits_total", "")
		misses := seriesSum(after, "pwd_answer_cache_misses_total", "") -
			seriesSum(before, "pwd_answer_cache_misses_total", "")
		ratio := -1.0
		if hits+misses > 0 {
			ratio = hits / (hits + misses)
		}
		sum.Server = &serverSummary{
			QueryDelta: int64(seriesSum(after, "pwd_http_requests_total", `path="/query"`) -
				seriesSum(before, "pwd_http_requests_total", `path="/query"`)),
			CacheHits:   int64(hits),
			CacheMisses: int64(misses),
			HitRatio:    ratio,
		}
	}
	return sum
}

// reportServer prints the server's own accounting of the run (scraped
// from /metrics) and, under -check-server-total, enforces that the
// server counted exactly the responses the client received.
func reportServer(w io.Writer, before, after map[string]float64, errBefore, errAfter error, res *result, check bool) error {
	if errBefore != nil || errAfter != nil {
		err := errBefore
		if err == nil {
			err = errAfter
		}
		if check {
			return fmt.Errorf("metrics scrape failed: %v", err)
		}
		fmt.Fprintf(w, "server:   metrics unavailable (%v)\n", err)
		return nil
	}
	queryDelta := seriesSum(after, "pwd_http_requests_total", `path="/query"`) -
		seriesSum(before, "pwd_http_requests_total", `path="/query"`)
	hits := seriesSum(after, "pwd_answer_cache_hits_total", "") -
		seriesSum(before, "pwd_answer_cache_hits_total", "")
	misses := seriesSum(after, "pwd_answer_cache_misses_total", "") -
		seriesSum(before, "pwd_answer_cache_misses_total", "")
	ratio := "n/a"
	if hits+misses > 0 {
		ratio = fmt.Sprintf("%.2f", hits/(hits+misses))
	}
	fmt.Fprintf(w, "server:   /query %.0f  cache hits %.0f  misses %.0f  hit-ratio %s\n",
		queryDelta, hits, misses, ratio)
	if check && int64(queryDelta) != res.resps {
		return fmt.Errorf("server counted %.0f /query requests, client saw %d responses", queryDelta, res.resps)
	}
	return nil
}

// scrapeMetrics fetches /metrics and returns every series as
// name{labels} → value (comment and blank lines skipped).
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	m := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		m[line[:i]] = v
	}
	return m, sc.Err()
}

// seriesSum adds every series of the named family whose label block
// contains labelSub ("" sums the whole family).
func seriesSum(m map[string]float64, name, labelSub string) float64 {
	var sum float64
	for k, v := range m {
		fam, _, _ := strings.Cut(k, "{")
		if fam == name && (labelSub == "" || strings.Contains(k, labelSub)) {
			sum += v
		}
	}
	return sum
}

// target is one request body plus the op extracted from it — the label
// errors are broken down under.
type target struct {
	body string
	op   string
}

// readTargets loads the request bodies; syntactic validation is the
// server's job (an invalid body will fail the run as a non-200). The op
// field is peeled off here once so the error breakdown doesn't parse
// JSON on the hot path (an unparsable line reports as op "other").
func readTargets(path string) ([]target, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -targets")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var targets []target
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var probe struct {
			Op string `json:"op"`
		}
		op := "other"
		if json.Unmarshal([]byte(line), &probe) == nil && probe.Op != "" {
			op = probe.Op
		}
		targets = append(targets, target{body: line, op: op})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("%s holds no targets", path)
	}
	return targets, nil
}

type result struct {
	done     int64
	errs     int64
	resps    int64 // requests that got any HTTP response (incl. non-200)
	firstErr string
	lats     []time.Duration
	elapsed  time.Duration
	classes  map[string]map[string]int64 // op → error class → count
}

// errClass buckets a failure for the per-op breakdown: the interesting
// API codes individually, the rest by century, transport errors apart.
func errClass(status int) string {
	switch status {
	case 0:
		return "transport"
	case 400, 404, 409, 422:
		return strconv.Itoa(status)
	}
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	}
	return strconv.Itoa(status)
}

// fire drives the server for the duration and collects per-request
// latencies. Closed loop: each worker owns a request slot. Open loop: a
// central ticker hands arrival slots to whichever worker is free — if
// none is, the tick is dropped and counted as done-nothing (the server
// is saturated; latency of completed requests still tells the story).
func fire(url string, targets []target, concurrency int, duration time.Duration, rate int) *result {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        concurrency * 2,
		MaxIdleConnsPerHost: concurrency * 2,
	}}
	endpoint := url + "/query"

	var (
		mu       sync.Mutex
		res      = &result{classes: make(map[string]map[string]int64)}
		next     atomic.Int64
		deadline = time.Now().Add(duration)
	)
	recordErr := func(op string, status int, err error) {
		atomic.AddInt64(&res.errs, 1)
		class := errClass(status)
		mu.Lock()
		if res.firstErr == "" {
			res.firstErr = err.Error()
		}
		byClass := res.classes[op]
		if byClass == nil {
			byClass = make(map[string]int64)
			res.classes[op] = byClass
		}
		byClass[class]++
		mu.Unlock()
	}
	shoot := func(local *[]time.Duration) {
		t := targets[int(next.Add(1))%len(targets)]
		start := time.Now()
		resp, err := client.Post(endpoint, "application/json", strings.NewReader(t.body))
		if err != nil {
			recordErr(t.op, 0, err)
			return
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		atomic.AddInt64(&res.resps, 1)
		if resp.StatusCode != 200 {
			recordErr(t.op, resp.StatusCode, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(out))))
			return
		}
		atomic.AddInt64(&res.done, 1)
		*local = append(*local, time.Since(start))
	}

	var wg sync.WaitGroup
	started := time.Now()
	if rate <= 0 {
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local []time.Duration
				for time.Now().Before(deadline) {
					shoot(&local)
				}
				mu.Lock()
				res.lats = append(res.lats, local...)
				mu.Unlock()
			}()
		}
	} else {
		// Open loop: arrivals on a fixed schedule, one buffered slot per
		// worker so a slow server sheds ticks instead of queueing them
		// without bound inside the client.
		arrivals := make(chan struct{}, concurrency)
		interval := time.Second / time.Duration(rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				select {
				case arrivals <- struct{}{}:
				default: // saturated: drop the arrival
				}
			}
			close(arrivals)
		}()
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local []time.Duration
				for range arrivals {
					shoot(&local)
				}
				mu.Lock()
				res.lats = append(res.lats, local...)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	res.elapsed = time.Since(started)
	return res
}

func report(w io.Writer, res *result, asked time.Duration) {
	elapsed := res.elapsed
	if elapsed <= 0 {
		elapsed = asked
	}
	rps := float64(res.done) / elapsed.Seconds()
	fmt.Fprintf(w, "requests: %d\nerrors:   %d\nreq/s:    %.0f\n", res.done, res.errs, rps)
	if len(res.classes) > 0 {
		ops := make([]string, 0, len(res.classes))
		for op := range res.classes {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			byClass := res.classes[op]
			classes := make([]string, 0, len(byClass))
			for class := range byClass {
				classes = append(classes, class)
			}
			sort.Strings(classes)
			var parts []string
			for _, class := range classes {
				parts = append(parts, fmt.Sprintf("%s=%d", class, byClass[class]))
			}
			fmt.Fprintf(w, "errors[%s]: %s\n", op, strings.Join(parts, " "))
		}
	}
	if len(res.lats) == 0 {
		return
	}
	sort.Slice(res.lats, func(i, j int) bool { return res.lats[i] < res.lats[j] })
	var sum time.Duration
	for _, l := range res.lats {
		sum += l
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(res.lats)-1))
		return res.lats[i]
	}
	fmt.Fprintf(w, "latency:  mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		sum/time.Duration(len(res.lats)), pct(0.50), pct(0.95), pct(0.99), res.lats[len(res.lats)-1])
}
