package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pw/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestBenchJSONGolden pins the machine-readable probe output shape: the
// probe name set and the JSON field names, with the timing-dependent
// values normalized to zero. This is the contract BENCH_*.json diffs and
// the -check guard rely on.
func TestBenchJSONGolden(t *testing.T) {
	cases := []struct{ goldenName, probe string }{
		{"bench_json", "Thm41_ContFreeze_64"},
		{"bench_json_wsd", "WSD_Count_1M"},
	}
	for _, tc := range cases {
		t.Run(tc.probe, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run([]string{"-bench", "-json", "-only", tc.probe}, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			var results []experiments.BenchResult
			if err := json.Unmarshal(stdout.Bytes(), &results); err != nil {
				t.Fatalf("output is not BenchResult JSON: %v\n%s", err, stdout.String())
			}
			for i := range results {
				results[i].N = 0
				results[i].NsPerOp = 0
				results[i].AllocsPerOp = 0
				results[i].BytesPerOp = 0
			}
			normalized, err := json.MarshalIndent(results, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			normalized = append(normalized, '\n')
			golden := filepath.Join("testdata", tc.goldenName+".golden")
			if *update {
				if err := os.WriteFile(golden, normalized, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(normalized, want) {
				t.Errorf("JSON shape drifted:\n--- got ---\n%s--- want ---\n%s", normalized, want)
			}
		})
	}
}

// TestCheckExitCodes exercises the regression guard with synthetic
// baselines, so the test is insensitive to machine speed: an enormous
// baseline can never regress (exit 0), a tiny one always does (exit 1),
// and unreadable baselines are usage errors (exit 2).
func TestCheckExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the gated probes twice")
	}
	writeBaseline := func(ns float64) string {
		known := experiments.KnownProbes()
		var results []experiments.BenchResult
		for _, name := range experiments.GatedProbes {
			results = append(results, experiments.BenchResult{Name: name, N: 1, NsPerOp: ns, Workers: known[name]})
		}
		data, err := json.Marshal(results)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "baseline.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-check", writeBaseline(1e15)}, &stdout, &stderr); code != 0 {
		t.Errorf("huge baseline: exit %d, want 0; stderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-check", writeBaseline(1e-3)}, &stdout, &stderr); code != 1 {
		t.Errorf("tiny baseline: exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("REGRESSION")) {
		t.Errorf("regression report missing from stderr: %s", stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-check", filepath.Join(t.TempDir(), "absent.json")}, &stdout, &stderr); code != 2 {
		t.Errorf("missing baseline file: exit %d, want 2", code)
	}
}

// TestHistoryAppend: -history appends one decodable JSON line per run,
// timestamped and commit-stamped, and accumulates across runs.
func TestHistoryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	var stdout, stderr bytes.Buffer
	for i := 0; i < 2; i++ {
		stdout.Reset()
		stderr.Reset()
		if code := run([]string{"-bench", "-only", "WSD_Count_1M", "-history", path}, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("history holds %d lines, want 2:\n%s", len(lines), data)
	}
	for _, line := range lines {
		var rec historyRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("history line does not decode: %v\n%s", err, line)
		}
		if rec.Time == "" || rec.GitSHA == "" {
			t.Errorf("history record missing stamps: %+v", rec)
		}
		if len(rec.Results) != 1 || rec.Results[0].Name != "WSD_Count_1M" || rec.Results[0].NsPerOp <= 0 {
			t.Errorf("history results implausible: %+v", rec.Results)
		}
	}
}
