// Command pwbench regenerates the paper's figures as text reports (the
// per-experiment index of DESIGN.md; reference output in EXPERIMENTS.md)
// and runs the tracked perf probes.
//
// Usage:
//
//	pwbench [-full] [-only F3]          # figure reports (text)
//	pwbench -bench [-only Fig3_...]     # perf probes (text)
//	pwbench -bench -json                # perf probes as JSON to stdout
//	pwbench -bench -workers 8           # probes at a fixed worker count
//	pwbench -check BENCH_baseline.json  # regression guard on gated probes
//
// -full widens the sweeps (slower); -only runs a single experiment or
// probe by id. The JSON form emits an array of {name, n, ns_per_op,
// allocs_per_op, bytes_per_op} objects, the shape tracked across PRs in
// BENCH_*.json files. -check re-runs the gated probes and exits nonzero
// when any is more than 25% slower (ns/op) than the baseline file.
//
// -history FILE appends one JSON line per run — timestamp, git commit,
// and the probe results — to FILE (with -bench or -check). The line is
// appended even when -check finds a regression: the history records
// what the machine measured, the exit code records the verdict. CI
// uploads the accumulated BENCH_history.jsonl as an artifact, so the
// perf trajectory of the gated probes survives across PRs.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"pw/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pwbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	full := fs.Bool("full", false, "widen sweeps (slower, used for EXPERIMENTS.md)")
	only := fs.String("only", "", "run a single experiment or probe by id (e.g. F3, Fig3_MembMatching_128)")
	bench := fs.Bool("bench", false, "run perf probes instead of figure reports")
	asJSON := fs.Bool("json", false, "with -bench: emit machine-readable JSON")
	workers := fs.Int("workers", 0, "worker count for the unsuffixed probes (0 = sequential, the baseline-comparable configuration; note pwq's -workers 0 means GOMAXPROCS)")
	check := fs.String("check", "", "baseline BENCH_*.json: run gated probes, exit 1 on >25% ns/op regression")
	history := fs.String("history", "", "append one timestamped, git-SHA-stamped JSON line of results to this file (with -bench or -check)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *check != "" {
		return runCheck(*check, *history, stdout, stderr)
	}

	if *bench {
		results := experiments.RunBenchmarks(*only, *workers)
		if len(results) == 0 {
			fmt.Fprintf(stderr, "pwbench: no probe matches -only=%s\n", *only)
			return 1
		}
		if err := appendHistory(*history, results); err != nil {
			fmt.Fprintf(stderr, "pwbench: %v\n", err)
			return 1
		}
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(results); err != nil {
				fmt.Fprintf(stderr, "pwbench: %v\n", err)
				return 1
			}
			return 0
		}
		for _, r := range results {
			fmt.Fprintf(stdout, "%-28s %10d iter %14.0f ns/op %8d B/op %6d allocs/op\n",
				r.Name, r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		return 0
	}

	start := time.Now()
	ran := 0
	for _, e := range experiments.Registry() {
		if *only != "" && e.ID != *only {
			continue
		}
		fmt.Fprintln(stdout, e.Run(*full).String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(stderr, "pwbench: no experiment matches -only=%s\n", *only)
		return 1
	}
	fmt.Fprintf(stdout, "pwbench: %d experiments in %s (full=%v)\n", ran, time.Since(start).Round(time.Millisecond), *full)
	return 0
}

// historyRecord is one line of a BENCH_history.jsonl file: when and at
// what commit the probes ran, and what they measured.
type historyRecord struct {
	Time    string                    `json:"time"`
	GitSHA  string                    `json:"git_sha"`
	Results []experiments.BenchResult `json:"results"`
}

// gitSHA resolves the commit being measured: the working tree's HEAD,
// falling back to CI's GITHUB_SHA, else "unknown" (the record is still
// worth keeping for its timestamp).
func gitSHA() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	return "unknown"
}

// appendHistory appends one historyRecord line to path ("" disables).
func appendHistory(path string, results []experiments.BenchResult) error {
	if path == "" || len(results) == 0 {
		return nil
	}
	rec := historyRecord{
		Time:    time.Now().UTC().Format(time.RFC3339),
		GitSHA:  gitSHA(),
		Results: results,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	return err
}

// runCheck is the benchmark regression guard: re-run the gated probes
// sequentially (their baseline-comparable configuration) and compare
// against the committed baseline.
func runCheck(baselinePath, historyPath string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "pwbench: %v\n", err)
		return 2
	}
	var baseline []experiments.BenchResult
	if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintf(stderr, "pwbench: %s: %v\n", baselinePath, err)
		return 2
	}
	known := experiments.KnownProbes()
	var current []experiments.BenchResult
	var broken []string
	for _, name := range experiments.GatedProbes {
		if _, ok := known[name]; !ok {
			// A gated name with no registered probe would otherwise fall
			// through as a silent no-op and then read as "missing from
			// current run" — name the real problem instead.
			broken = append(broken, fmt.Sprintf("%s: gated probe is not registered in benchProbes", name))
			continue
		}
		res := experiments.RunBenchmarks(name, 0)
		if len(res) == 0 {
			broken = append(broken, fmt.Sprintf("%s: probe ran zero iterations (b.Skip or b.Fatal inside the probe)", name))
			continue
		}
		current = append(current, res...)
	}
	for _, r := range current {
		fmt.Fprintf(stdout, "%-28s %14.0f ns/op\n", r.Name, r.NsPerOp)
	}
	if err := appendHistory(historyPath, current); err != nil {
		fmt.Fprintf(stderr, "pwbench: %v\n", err)
		return 2
	}
	if len(broken) > 0 {
		for _, msg := range broken {
			fmt.Fprintf(stderr, "pwbench: BROKEN PROBE %s\n", msg)
		}
		return 2
	}
	regressions := experiments.Check(baseline, current, experiments.CheckTolerance)
	if len(regressions) > 0 {
		for _, msg := range regressions {
			fmt.Fprintf(stderr, "pwbench: REGRESSION %s\n", msg)
		}
		return 1
	}
	fmt.Fprintf(stdout, "pwbench: gated probes within %.0f%% of %s\n",
		100*experiments.CheckTolerance, baselinePath)
	return 0
}
