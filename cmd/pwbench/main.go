// Command pwbench regenerates the paper's figures as text reports (the
// per-experiment index of DESIGN.md; reference output in EXPERIMENTS.md)
// and runs the tracked perf probes.
//
// Usage:
//
//	pwbench [-full] [-only F3]          # figure reports (text)
//	pwbench -bench [-only Fig3_...]     # perf probes (text)
//	pwbench -bench -json                # perf probes as JSON to stdout
//
// -full widens the sweeps (slower); -only runs a single experiment or
// probe by id. The JSON form emits an array of {name, n, ns_per_op,
// allocs_per_op, bytes_per_op} objects, the shape tracked across PRs in
// BENCH_*.json files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"pw/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "widen sweeps (slower, used for EXPERIMENTS.md)")
	only := flag.String("only", "", "run a single experiment or probe by id (e.g. F3, Fig3_MembMatching_128)")
	bench := flag.Bool("bench", false, "run perf probes instead of figure reports")
	asJSON := flag.Bool("json", false, "with -bench: emit machine-readable JSON")
	flag.Parse()

	if *bench {
		results := experiments.RunBenchmarks(*only)
		if len(results) == 0 {
			fmt.Fprintf(os.Stderr, "pwbench: no probe matches -only=%s\n", *only)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(results); err != nil {
				fmt.Fprintf(os.Stderr, "pwbench: %v\n", err)
				os.Exit(1)
			}
			return
		}
		for _, r := range results {
			fmt.Printf("%-28s %10d iter %14.0f ns/op %8d B/op %6d allocs/op\n",
				r.Name, r.N, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		return
	}

	start := time.Now()
	ran := 0
	for _, e := range experiments.Registry() {
		if *only != "" && e.ID != *only {
			continue
		}
		fmt.Println(e.Run(*full).String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "pwbench: no experiment matches -only=%s\n", *only)
		os.Exit(1)
	}
	fmt.Printf("pwbench: %d experiments in %s (full=%v)\n", ran, time.Since(start).Round(time.Millisecond), *full)
}
