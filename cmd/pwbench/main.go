// Command pwbench regenerates the paper's figures as text reports (the
// per-experiment index of DESIGN.md; reference output in EXPERIMENTS.md).
//
// Usage:
//
//	pwbench [-full] [-only F3]
//
// -full widens the sweeps (slower); -only runs a single experiment by id.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pw/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "widen sweeps (slower, used for EXPERIMENTS.md)")
	only := flag.String("only", "", "run a single experiment by id (e.g. F3)")
	flag.Parse()

	start := time.Now()
	ran := 0
	for _, e := range experiments.Registry() {
		if *only != "" && e.ID != *only {
			continue
		}
		fmt.Println(e.Run(*full).String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "pwbench: no experiment matches -only=%s\n", *only)
		os.Exit(1)
	}
	fmt.Printf("pwbench: %d experiments in %s (full=%v)\n", ran, time.Since(start).Round(time.Millisecond), *full)
}
