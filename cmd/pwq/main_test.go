package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"pw/internal/wsdalg"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden pins pwq's CLI output shape on the examples/data inputs:
// every decision answer, the kind report, and the world listing. The
// engine may reorganize internally (worker counts, search order), but
// what the CLI prints must not drift unnoticed.
func TestGolden(t *testing.T) {
	data := func(name string) string { return filepath.Join("..", "..", "examples", "data", name) }
	cases := []struct {
		name string
		args []string
	}{
		{"kind", []string{"kind", "-db", data("personnel.pw")}},
		{"memb_yes", []string{"memb", "-db", data("personnel.pw"), "-inst", data("personnel_world.pw")}},
		{"uniq_no", []string{"uniq", "-db", data("personnel.pw"), "-inst", data("personnel_world.pw")}},
		{"cont_yes", []string{"cont", "-db", data("personnel.pw"), "-db2", data("personnel_loose.pw")}},
		{"cont_no", []string{"cont", "-db", data("personnel_loose.pw"), "-db2", data("personnel.pw")}},
		{"poss_yes", []string{"poss", "-db", data("personnel.pw"), "-facts", data("personnel_maybe.pw")}},
		{"cert_no", []string{"cert", "-db", data("personnel.pw"), "-facts", data("personnel_maybe.pw")}},
		{"cert_yes", []string{"cert", "-db", data("personnel.pw"), "-facts", data("personnel_certain.pw")}},
		{"worlds", []string{"worlds", "-db", data("personnel.pw"), "-limit", "3"}},
		{"count_tables", []string{"count", "-db", data("personnel.pw")}},
		// The decomposition backend: 2^20 worlds answered without
		// enumeration.
		{"kind_wsd", []string{"kind", "-db", data("sensors.pw")}},
		{"count_wsd", []string{"count", "-db", data("sensors.pw")}},
		{"memb_wsd_yes", []string{"memb", "-db", data("sensors.pw"), "-inst", data("sensors_world.pw")}},
		{"uniq_wsd_no", []string{"uniq", "-db", data("sensors.pw"), "-inst", data("sensors_world.pw")}},
		{"poss_wsd_yes", []string{"poss", "-db", data("sensors.pw"), "-facts", data("sensors_world.pw")}},
		{"cert_wsd_yes", []string{"cert", "-db", data("sensors.pw"), "-facts", data("sensors_certain.pw")}},
		{"cert_wsd_no", []string{"cert", "-db", data("sensors.pw"), "-facts", data("sensors_world.pw")}},
		{"worlds_wsd", []string{"worlds", "-db", data("sensors.pw"), "-limit", "2"}},
		{"sample_wsd", []string{"sample", "-db", data("sensors.pw"), "-seed", "7", "-n", "2"}},
		{"sample_tables", []string{"sample", "-db", data("personnel.pw"), "-seed", "3"}},
		// Query answers: the decomposition backend runs the lifted
		// evaluator over 2^20 worlds without enumerating any of them.
		{"cert_ans_wsd", []string{"cert-ans", "-db", data("sensors.pw"), "-query", data("sensors_sensors.pw")}},
		{"poss_ans_wsd", []string{"poss-ans", "-db", data("sensors.pw"), "-query", data("sensors_hi.pw")}},
		{"cert_ans_wsd_empty", []string{"cert-ans", "-db", data("sensors.pw"), "-query", data("sensors_hi.pw")}},
		// The world-set algebra: what-if analysis over the 2^20 worlds —
		// certain(possible(σ)) — and a native ≠ selection, both answered
		// on the factored form.
		{"cert_ans_wsd_whatif", []string{"cert-ans", "-db", data("sensors.pw"), "-query", data("sensors_whatif.pw")}},
		{"poss_ans_wsd_notlo", []string{"poss-ans", "-db", data("sensors.pw"), "-query", data("sensors_not_lo.pw")}},
		{"cert_ans_tables", []string{"cert-ans", "-db", data("personnel.pw"), "-query", data("personnel_names.pw")}},
		{"poss_ans_tables", []string{"poss-ans", "-db", data("personnel.pw"), "-query", data("personnel_names.pw")}},
		// The attribute-level backend: 2^100 worlds in ~100 template
		// lines, every answer from the factored form.
		{"kind_grid", []string{"kind", "-db", data("grid.pw")}},
		{"count_grid", []string{"count", "-db", data("grid.pw")}},
		{"poss_grid_yes", []string{"poss", "-db", data("grid.pw"), "-facts", data("grid_maybe.pw")}},
		{"cert_grid_no", []string{"cert", "-db", data("grid.pw"), "-facts", data("grid_maybe.pw")}},
		{"sample_grid", []string{"sample", "-db", data("grid.pw"), "-seed", "9"}},
		{"poss_ans_grid", []string{"poss-ans", "-db", data("grid.pw"), "-query", data("grid_hi.pw")}},
		{"cert_ans_grid", []string{"cert-ans", "-db", data("grid.pw"), "-query", data("grid_hi.pw")}},
		// The write path: an @update program applied to a 2^20-world
		// decomposition, printed back as a parsable canonical @wsd block.
		// The -full variant must print byte-identical output — the
		// incremental engine's canonical-form promise, pinned at the CLI.
		{"update_wsd", []string{"update", "-db", data("sensors.pw"), "-update", data("sensors_patch.pw")}},
		{"update_wsd", []string{"update", "-db", data("sensors.pw"), "-update", data("sensors_patch.pw"), "-full"}},
		// Containment on decompositions (and mixed backends): the former
		// "tables only" exit-2 carve-out is gone.
		{"cont_wsd_yes", []string{"cont", "-db", data("sensors_pinned.pw"), "-db2", data("sensors.pw")}},
		{"cont_wsd_no", []string{"cont", "-db", data("sensors.pw"), "-db2", data("sensors_pinned.pw")}},
		{"cont_wsd_views_yes", []string{"cont", "-db", data("sensors_pinned.pw"), "-db2", data("sensors.pw"),
			"-query", data("sensors_hi.pw"), "-query2", data("sensors_hi.pw")}},
		{"cont_mixed_yes", []string{"cont", "-db", data("sensors_frozen.pw"), "-db2", data("sensors.pw")}},
		{"cont_mixed_infinite_no", []string{"cont", "-db", data("personnel.pw"), "-db2", data("sensors.pw")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s",
					golden, stdout.String(), want)
			}
		})
	}
}

// TestAnswersStableAcrossWorkers reruns every decision case at several
// worker counts: the CLI answer must be identical — the user-facing half
// of the determinism contract.
func TestAnswersStableAcrossWorkers(t *testing.T) {
	data := func(name string) string { return filepath.Join("..", "..", "examples", "data", name) }
	cases := [][]string{
		{"memb", "-db", data("personnel.pw"), "-inst", data("personnel_world.pw")},
		{"cont", "-db", data("personnel_loose.pw"), "-db2", data("personnel.pw")},
		{"cert", "-db", data("personnel.pw"), "-facts", data("personnel_certain.pw")},
		{"cert-ans", "-db", data("personnel.pw"), "-query", data("personnel_names.pw")},
		{"poss-ans", "-db", data("personnel.pw"), "-query", data("personnel_names.pw")},
	}
	for _, base := range cases {
		var want string
		for _, w := range []string{"1", "2", "8"} {
			var stdout, stderr bytes.Buffer
			args := append([]string{base[0], "-workers", w}, base[1:]...)
			if code := run(args, &stdout, &stderr); code != 0 {
				t.Fatalf("%v: exit %d, stderr: %s", args, code, stderr.String())
			}
			if want == "" {
				want = stdout.String()
			} else if stdout.String() != want {
				t.Errorf("%v: answer %q differs from workers=1 answer %q", args, stdout.String(), want)
			}
		}
	}
}

func TestBadUsageExits2(t *testing.T) {
	data := func(name string) string { return filepath.Join("..", "..", "examples", "data", name) }
	var stdout, stderr bytes.Buffer
	if code := run([]string{"nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown command: exit %d, want 2", code)
	}
	if code := run([]string{"memb"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -db: exit %d, want 2", code)
	}
	if code := run([]string{"poss-ans", "-db", data("sensors.pw")}, &stdout, &stderr); code != 2 {
		t.Errorf("poss-ans without -query: exit %d, want 2", code)
	}
	// A @query file in a database position is a clean structural error,
	// not a crash.
	if code := run([]string{"kind", "-db", data("sensors_hi.pw")}, &stdout, &stderr); code != 2 {
		t.Errorf("@query file as -db: exit %d, want 2", code)
	}
	if code := run([]string{"cont", "-db", data("sensors.pw"), "-db2", data("sensors_hi.pw")}, &stdout, &stderr); code != 2 {
		t.Errorf("@query file as -db2: exit %d, want 2", code)
	}
	// ≠ selections now evaluate natively on the decomposition backend;
	// the exit-2 refusals left are entanglement (a query whose answer
	// decomposition cannot be built within MaxMergeAlts) and world-set
	// operators on the per-world table engine.
	stderr.Reset()
	if code := run([]string{"cert-ans", "-db", data("sensors.pw"), "-query", data("sensors_not_lo.pw")},
		&stdout, &stderr); code != 0 {
		t.Errorf("≠ query on @wsd: exit %d, want 0 (native eval): %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"cert-ans", "-db", data("sensors.pw"), "-query", data("sensors_pick.pw")},
		&stdout, &stderr); code != 2 {
		t.Errorf("entangled choiceof on @wsd: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "entangled") {
		t.Errorf("entangled rejection should name the cause, got: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"poss-ans", "-db", data("personnel.pw"), "-query", data("personnel_possible.pw")},
		&stdout, &stderr); code != 2 {
		t.Errorf("world-set operator on tables: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "world-set") {
		t.Errorf("world-set rejection should name the fragment, got: %s", stderr.String())
	}
	// A mixed cont whose @table superset has infinite rep cannot be
	// compiled and is a structural error.
	stderr.Reset()
	if code := run([]string{"cont", "-db", data("sensors.pw"), "-db2", data("personnel.pw")},
		&stdout, &stderr); code != 2 {
		t.Errorf("cont with infinite-rep superset: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "rep is infinite") {
		t.Errorf("infinite-rep superset rejection should name the cause, got: %s", stderr.String())
	}
	// The identity carve-out (infinite subset ⊆ finite superset is
	// plainly "no", exit 0) does not extend to views: under a query the
	// subset side must compile, so ErrInfiniteRep is a structural error.
	stderr.Reset()
	if code := run([]string{"cont", "-db", data("personnel.pw"), "-db2", data("sensors.pw"),
		"-query", data("personnel_names.pw"), "-query2", data("personnel_names.pw")},
		&stdout, &stderr); code != 2 {
		t.Errorf("cont view with infinite-rep subset: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "rep is infinite") {
		t.Errorf("infinite-rep subset rejection should name the cause, got: %s", stderr.String())
	}
	// The update command: table-backed databases, missing programs, and
	// misrouted @update files are structural errors with clear messages.
	stderr.Reset()
	if code := run([]string{"update", "-db", data("personnel.pw"), "-update", data("sensors_patch.pw")},
		&stdout, &stderr); code != 2 {
		t.Errorf("update on table-backed db: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "table-backed") {
		t.Errorf("table-backed update rejection should name the cause, got: %s", stderr.String())
	}
	if code := run([]string{"update", "-db", data("sensors.pw")}, &stdout, &stderr); code != 2 {
		t.Errorf("update without -update: exit %d, want 2", code)
	}
	if code := run([]string{"update", "-db", data("sensors.pw"), "-update", data("sensors.pw")},
		&stdout, &stderr); code != 2 {
		t.Errorf("@wsd file as -update: exit %d, want 2", code)
	}
	if code := run([]string{"kind", "-db", data("sensors_patch.pw")}, &stdout, &stderr); code != 2 {
		t.Errorf("@update file as -db: exit %d, want 2", code)
	}
	// Malformed tmpl slot syntax is a parse error, not a crash.
	stderr.Reset()
	tmp := filepath.Join(t.TempDir(), "bad.pw")
	if err := os.WriteFile(tmp, []byte("@wsd\n  relation: R(1)\n  component:\n    tmpl: R({a|{b}})\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"count", "-db", tmp}, &stdout, &stderr); code != 2 {
		t.Errorf("nested-brace tmpl: exit %d, want 2", code)
	}
}

// -trace prints an indented span tree and the engine's nonzero cost
// counters to stderr without disturbing the stdout answer.
func TestTraceFlag(t *testing.T) {
	data := func(name string) string { return filepath.Join("..", "..", "examples", "data", name) }
	var stdout, stderr bytes.Buffer
	code := run([]string{"cert-ans", "-trace",
		"-db", data("sensors.pw"), "-query", data("sensors_hi.pw")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "@relation Hi(2)") {
		t.Fatalf("stdout missing the answer:\n%s", stdout.String())
	}
	trace := stderr.String()
	for _, want := range []string{"cert-ans ", "  parse ", "  eval ", "cost: ", "parse_bytes=", "eval_components="} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace output missing %q:\n%s", want, trace)
		}
	}

	// Untraced runs keep stderr silent.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"cert-ans", "-db", data("sensors.pw"), "-query", data("sensors_hi.pw")},
		&stdout, &stderr); code != 0 || stderr.Len() != 0 {
		t.Fatalf("untraced run: exit %d, stderr %q", code, stderr.String())
	}
}

// normalizeDurations rewrites every wall-clock figure in a rendered
// plan to a fixed token, so goldens pin the plan's structure (operator
// tree, estimates, actuals, counters) without pinning machine speed.
func normalizeDurations(b []byte) []byte {
	b = regexp.MustCompile(`\bus=\d+`).ReplaceAll(b, []byte("us=X"))
	return regexp.MustCompile(`\b\d+us\b`).ReplaceAll(b, []byte("Xus"))
}

// TestExplainGolden pins the rendered EXPLAIN/ANALYZE plan for the two
// decomposition examples (the 2^20-world sensors db and the 2^100-world
// attribute-template grid), durations normalized; and checks that the
// -json form decodes back into the same Plan shape.
func TestExplainGolden(t *testing.T) {
	data := func(name string) string { return filepath.Join("..", "..", "examples", "data", name) }
	cases := []struct {
		name string
		args []string
	}{
		{"explain_sensors", []string{"explain", "-db", data("sensors.pw"), "-query", data("sensors_hi.pw")}},
		{"explain_grid", []string{"explain", "-db", data("grid.pw"), "-query", data("grid_hi.pw")}},
		{"explain_whatif", []string{"explain", "-db", data("sensors.pw"), "-query", data("sensors_whatif.pw")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			got := normalizeDurations(stdout.Bytes())
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}

			// The -json form is one decodable Plan carrying the same tree.
			stdout.Reset()
			stderr.Reset()
			if code := run(append(tc.args, "-json"), &stdout, &stderr); code != 0 {
				t.Fatalf("-json: exit %d, stderr: %s", code, stderr.String())
			}
			var plan wsdalg.Plan
			if err := json.Unmarshal(stdout.Bytes(), &plan); err != nil {
				t.Fatalf("-json output does not decode: %v\n%s", err, stdout.String())
			}
			if plan.Components <= 0 || len(plan.Outs) == 0 || plan.WorldCount == "" {
				t.Errorf("-json plan incomplete: %+v", plan)
			}
			round, err := json.Marshal(&plan)
			if err != nil {
				t.Fatal(err)
			}
			var back wsdalg.Plan
			if err := json.Unmarshal(round, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&plan, &back) {
				t.Error("-json plan does not round-trip")
			}
		})
	}

	// A refused query still prints its error-annotated partial plan:
	// the entangled choiceof stops at the blow-up with a !entangled node.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"explain", "-db", data("sensors.pw"), "-query", data("sensors_pick.pw")},
		&stdout, &stderr); code != 2 {
		t.Fatalf("entangled explain: exit %d, want 2", code)
	}
	if !strings.Contains(stdout.String(), "!entangled") {
		t.Errorf("refused explain missing !entangled marker:\n%s", stdout.String())
	}
	// Table-backed databases are a structural error.
	if code := run([]string{"explain", "-db", data("personnel.pw"), "-query", data("personnel_names.pw")},
		&stdout, &stderr); code != 2 {
		t.Errorf("table-backed explain: exit %d, want 2", code)
	}
}
