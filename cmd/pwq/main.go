// Command pwq decides the paper's five problems on .pw files.
//
// Usage:
//
//	pwq memb    -db tables.pw -inst instance.pw
//	pwq uniq    -db tables.pw -inst instance.pw
//	pwq cont    -db subset.pw -db2 superset.pw
//	pwq poss    -db tables.pw -facts p.pw
//	pwq cert    -db tables.pw -facts p.pw
//	pwq count   -db tables.pw
//	pwq sample  -db tables.pw [-seed 1] [-n 3]
//	pwq worlds  -db tables.pw [-limit 20]
//	pwq kind    -db tables.pw
//
// Files use the .pw format of internal/parse; -db accepts either
// representation backend — a conditioned-table database (@table blocks)
// or a world-set decomposition (@wsd block). On a decomposition the
// decision commands run the native polynomial procedures (no world
// enumeration; count is exact even for astronomically many worlds); on
// tables they run the decision engine, and count/worlds enumerate the
// canonical domain. cont requires table databases on both sides.
//
// All commands exit 0 with "yes"/"no" (or the requested output) on
// stdout; structural problems exit 2. -workers bounds the engine's
// goroutine budget (0 = GOMAXPROCS); answers are identical at every
// worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"os"

	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/parse"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/worlds"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbPath := fs.String("db", "", "database (.pw, @table or @wsd form)")
	db2Path := fs.String("db2", "", "second database for cont (.pw)")
	instPath := fs.String("inst", "", "complete instance (.pw)")
	factsPath := fs.String("facts", "", "fact set for poss/cert (.pw)")
	limit := fs.Int("limit", 20, "world limit for the worlds command")
	workersN := fs.Int("workers", 0, "engine worker count (0 = GOMAXPROCS, 1 = sequential)")
	seed := fs.Int64("seed", 1, "random seed for the sample command")
	samples := fs.Int("n", 1, "number of worlds for the sample command")
	if err := fs.Parse(args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	o := decide.Options{Workers: *workersN}

	src, err := loadSource(*dbPath)
	if err != nil {
		return fatal(stderr, err)
	}
	d, w := src.DB, src.WSD
	switch cmd {
	case "kind":
		if w != nil {
			fmt.Fprintln(stdout, "wsd")
		} else {
			fmt.Fprintln(stdout, d.Kind())
		}
	case "count":
		if w != nil {
			fmt.Fprintln(stdout, w.Count())
		} else {
			// Enumeration backend: |rep(d)| over the canonical domain,
			// sharded across -workers (the count is worker-independent).
			fmt.Fprintln(stdout, worlds.Options{Workers: *workersN}.Count(d))
		}
	case "worlds":
		// World listing streams in canonical enumeration order, so it
		// stays on the sequential enumerator regardless of -workers.
		n := 0
		each := func(i *rel.Instance) bool {
			fmt.Fprintf(stdout, "-- world %d --\n%s\n", n+1, i)
			n++
			return n >= *limit
		}
		if w != nil {
			// A decomposition's enumeration is the exact world set, not a
			// canonical-domain proxy.
			w.Each(each)
			fmt.Fprintf(stdout, "(%d worlds shown)\n", n)
		} else {
			worlds.Each(d, nil, each)
			fmt.Fprintf(stdout, "(%d worlds shown; canonical domain)\n", n)
		}
	case "sample":
		if *samples < 1 {
			return fatal(stderr, fmt.Errorf("-n must be positive"))
		}
		// Collect every sample before printing, so a failure cannot abort
		// the stream after partial output.
		rng := rand.New(rand.NewSource(*seed))
		insts := make([]*rel.Instance, 0, *samples)
		for k := 0; k < *samples; k++ {
			var inst *rel.Instance
			if w != nil {
				// Uniform over worlds: one independent choice per component;
				// nil only on the empty world set.
				inst = w.Sample(rng)
				if inst == nil {
					return fatal(stderr, fmt.Errorf("cannot sample from the empty world set"))
				}
			} else {
				// Tables: a sampled member world (not uniform over rep).
				// MemberInstance's search budget is bounded, so a miss means
				// "none found", not "none exists".
				var ok bool
				inst, ok = gen.MemberInstance(*seed+int64(k), d)
				if !ok {
					return fatal(stderr, fmt.Errorf("no member world found within the sampling budget; selective conditions may need a different -seed"))
				}
			}
			insts = append(insts, inst)
		}
		for k, inst := range insts {
			fmt.Fprintf(stdout, "-- sample %d --\n%s\n", k+1, inst)
		}
	case "memb":
		i, err := loadInstance(*instPath)
		if err != nil {
			return fatal(stderr, err)
		}
		if w != nil {
			return answer(stdout, stderr, w.Member(i), nil)
		}
		yes, err := o.Membership(i, query.Identity{}, d)
		return answer(stdout, stderr, yes, err)
	case "uniq":
		i, err := loadInstance(*instPath)
		if err != nil {
			return fatal(stderr, err)
		}
		if w != nil {
			// Count is a big.Int: compare against 1 exactly (Int64 is
			// undefined outside int64 range, the very regime WSDs serve).
			yes := w.Count().Cmp(big.NewInt(1)) == 0 && w.Member(i)
			return answer(stdout, stderr, yes, nil)
		}
		yes, err := o.Uniqueness(query.Identity{}, d, i)
		return answer(stdout, stderr, yes, err)
	case "cont":
		if w != nil {
			return fatal(stderr, fmt.Errorf("cont requires @table databases on both sides"))
		}
		src2, err := loadSource(*db2Path)
		if err != nil {
			return fatal(stderr, err)
		}
		if src2.WSD != nil {
			return fatal(stderr, fmt.Errorf("cont requires @table databases on both sides"))
		}
		yes, err := o.Containment(query.Identity{}, d, query.Identity{}, src2.DB)
		return answer(stdout, stderr, yes, err)
	case "poss":
		p, err := loadInstance(*factsPath)
		if err != nil {
			return fatal(stderr, err)
		}
		if w != nil {
			return answer(stdout, stderr, w.Possible(p), nil)
		}
		yes, err := o.Possible(p, query.Identity{}, d)
		return answer(stdout, stderr, yes, err)
	case "cert":
		p, err := loadInstance(*factsPath)
		if err != nil {
			return fatal(stderr, err)
		}
		if w != nil {
			return answer(stdout, stderr, w.Certain(p), nil)
		}
		yes, err := o.Certain(p, query.Identity{}, d)
		return answer(stdout, stderr, yes, err)
	default:
		return usage(stderr)
	}
	return 0
}

func loadSource(path string) (*parse.Source, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -db")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse.ParseSource(f)
}

func loadInstance(path string) (*rel.Instance, error) {
	if path == "" {
		return nil, fmt.Errorf("missing instance/fact file")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse.ParseInstance(f)
}

func answer(stdout, stderr io.Writer, yes bool, err error) int {
	if err != nil {
		return fatal(stderr, err)
	}
	if yes {
		fmt.Fprintln(stdout, "yes")
	} else {
		fmt.Fprintln(stdout, "no")
	}
	return 0
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "pwq:", err)
	return 2
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: pwq {memb|uniq|cont|poss|cert|count|sample|worlds|kind} -db FILE [...]")
	return 2
}
