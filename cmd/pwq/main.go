// Command pwq decides the paper's five problems on .pw files.
//
// Usage:
//
//	pwq memb    -db tables.pw -inst instance.pw
//	pwq uniq    -db tables.pw -inst instance.pw
//	pwq cont    -db subset.pw -db2 superset.pw
//	pwq poss    -db tables.pw -facts p.pw
//	pwq cert    -db tables.pw -facts p.pw
//	pwq worlds  -db tables.pw [-limit 20]
//	pwq kind    -db tables.pw
//
// Files use the .pw format of internal/parse. All commands exit 0 with
// "yes"/"no" on stdout; structural problems exit 2.
package main

import (
	"flag"
	"fmt"
	"os"

	"pw/internal/decide"
	"pw/internal/parse"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/worlds"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dbPath := fs.String("db", "", "conditioned-table database (.pw)")
	db2Path := fs.String("db2", "", "second database for cont (.pw)")
	instPath := fs.String("inst", "", "complete instance (.pw)")
	factsPath := fs.String("facts", "", "fact set for poss/cert (.pw)")
	limit := fs.Int("limit", 20, "world limit for the worlds command")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	d := mustDB(*dbPath)
	switch cmd {
	case "kind":
		fmt.Println(d.Kind())
	case "worlds":
		n := 0
		worlds.Each(d, nil, func(i *rel.Instance) bool {
			fmt.Printf("-- world %d --\n%s\n", n+1, i)
			n++
			return n >= *limit
		})
		fmt.Printf("(%d worlds shown; canonical domain)\n", n)
	case "memb":
		i := mustInstance(*instPath)
		answer(decide.Membership(i, query.Identity{}, d))
	case "uniq":
		i := mustInstance(*instPath)
		answer(decide.Uniqueness(query.Identity{}, d, i))
	case "cont":
		d2 := mustDB(*db2Path)
		answer(decide.Containment(query.Identity{}, d, query.Identity{}, d2))
	case "poss":
		p := mustInstance(*factsPath)
		answer(decide.Possible(p, query.Identity{}, d))
	case "cert":
		p := mustInstance(*factsPath)
		answer(decide.Certain(p, query.Identity{}, d))
	default:
		usage()
	}
}

func mustDB(path string) *table.Database {
	if path == "" {
		fatal(fmt.Errorf("missing -db"))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	d, err := parse.ParseDatabase(f)
	if err != nil {
		fatal(err)
	}
	return d
}

func mustInstance(path string) *rel.Instance {
	if path == "" {
		fatal(fmt.Errorf("missing instance/fact file"))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	i, err := parse.ParseInstance(f)
	if err != nil {
		fatal(err)
	}
	return i
}

func answer(yes bool, err error) {
	if err != nil {
		fatal(err)
	}
	if yes {
		fmt.Println("yes")
	} else {
		fmt.Println("no")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwq:", err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pwq {memb|uniq|cont|poss|cert|worlds|kind} -db FILE [...]")
	os.Exit(2)
}
