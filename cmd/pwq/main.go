// Command pwq decides the paper's five problems on .pw files.
//
// Usage:
//
//	pwq memb     -db tables.pw -inst instance.pw
//	pwq uniq     -db tables.pw -inst instance.pw
//	pwq cont     -db subset.pw -db2 superset.pw [-query q0.pw] [-query2 q.pw]
//	pwq poss     -db tables.pw -facts p.pw
//	pwq cert     -db tables.pw -facts p.pw
//	pwq poss-ans -db tables.pw -query q.pw
//	pwq cert-ans -db tables.pw -query q.pw
//	pwq explain  -db wsd.pw -query q.pw [-json]
//	pwq count    -db tables.pw
//	pwq sample   -db tables.pw [-seed 1] [-n 3]
//	pwq worlds   -db tables.pw [-limit 20]
//	pwq kind     -db tables.pw
//	pwq update   -db wsd.pw -update prog.pw [-out result.pw] [-full]
//
// Files use the .pw format of internal/parse; -db accepts either
// representation backend — a conditioned-table database (@table blocks)
// or a world-set decomposition (@wsd block) — and -query/-query2 take
// @query blocks: the extended relational algebra, including ≠
// selections, diff and the world-set operators possible/certain/
// choiceof. On a decomposition the decision commands run the native
// polynomial procedures and the query commands run the lifted evaluator
// of internal/wsdalg — no world enumeration anywhere, so cert-ans/
// poss-ans/cont answer on 10^6-world decompositions directly on the
// factored form, world-set operators included. On tables they run the
// decision engine, and count/worlds enumerate the canonical domain;
// the world-set operators are not per-world maps, so on the table
// backend they exit 2 with a clear message (compile to @wsd first).
//
// cont accepts any backend combination: the table side of a mixed pair
// is compiled to a decomposition first (an infinite-rep subset side is
// simply "no" against a finite superset). A query whose answer
// decomposition would blow past the entanglement guard exits 2 naming
// the cause.
//
// update applies an @update program (-update, see internal/parse) to a
// decomposition with the incremental renormalization engine and prints
// the resulting @wsd block — parsable, Normalize-canonical — to stdout
// or -out. -full routes every operation through a full renormalization
// instead (the reference path; the printed result is identical). Update
// programs apply to decompositions only; a table-backed -db exits 2.
//
// All commands exit 0 with "yes"/"no" (or the requested output) on
// stdout; structural problems exit 2. -workers bounds the engine's
// goroutine budget (0 = GOMAXPROCS); answers are identical at every
// worker count.
//
// -trace prints an indented span tree and the engine's nonzero cost
// counters (parse bytes, components visited, alternatives tabulated,
// valuations enumerated, …) to stderr after the answer — the offline
// twin of the server's ?trace=1.
//
// explain runs a query on a decomposition through the planned evaluator
// and prints the EXPLAIN/ANALYZE record: the operator tree with
// per-node estimates (computed before each operator runs) and actuals
// (measured while it runs), assembly and normalization phases, the
// world count of the answer and the run's cost counters. -json emits
// the same record as one JSON object — the offline twin of the server's
// ?explain=1. A refused query (entanglement, a non-algebra fragment)
// prints its partial, error-annotated plan and exits 2.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"os"

	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/obs"
	"pw/internal/parse"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/worlds"
	"pw/internal/wsd"
	"pw/internal/wsdalg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbPath := fs.String("db", "", "database (.pw, @table or @wsd form)")
	db2Path := fs.String("db2", "", "second database for cont (.pw)")
	instPath := fs.String("inst", "", "complete instance (.pw)")
	factsPath := fs.String("facts", "", "fact set for poss/cert (.pw)")
	queryPath := fs.String("query", "", "query (.pw, @query block) for poss-ans/cert-ans, or the -db view for cont")
	query2Path := fs.String("query2", "", "the -db2 view for cont (.pw, @query block)")
	limit := fs.Int("limit", 20, "world limit for the worlds command")
	workersN := fs.Int("workers", 0, "engine worker count (0 = GOMAXPROCS, 1 = sequential)")
	seed := fs.Int64("seed", 1, "random seed for the sample command")
	samples := fs.Int("n", 1, "number of worlds for the sample command")
	updatePath := fs.String("update", "", "update program (.pw, @update block) for the update command")
	outPath := fs.String("out", "", "output file for the update command (default stdout)")
	full := fs.Bool("full", false, "update: full renormalization per operation instead of incremental")
	traced := fs.Bool("trace", false, "print a span tree and engine cost counters to stderr")
	jsonOut := fs.Bool("json", false, "explain: emit the plan as JSON instead of text")
	if err := fs.Parse(args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	var tr *obs.Trace
	if *traced {
		tr = obs.NewTrace(cmd, "pwq")
		defer func() {
			tr.Finish()
			tr.WriteText(stderr)
		}()
	}
	cost := tr.Cost() // nil when untraced; every sink is nil-safe
	o := decide.Options{Workers: *workersN, Cost: cost}

	sp := tr.Root().StartChild("parse")
	src, err := loadSource(*dbPath, cost)
	sp.End()
	if err != nil {
		return fatal(stderr, err)
	}
	if src.Query != nil {
		return fatal(stderr, fmt.Errorf("%s is a @query file; databases go to -db, queries to -query", *dbPath))
	}
	if src.Update != nil {
		return fatal(stderr, fmt.Errorf("%s is an @update file; databases go to -db, update programs to -update", *dbPath))
	}
	d, w := src.DB, src.WSD
	switch cmd {
	case "kind":
		if w != nil {
			fmt.Fprintln(stdout, "wsd")
		} else {
			fmt.Fprintln(stdout, d.Kind())
		}
	case "count":
		if w != nil {
			fmt.Fprintln(stdout, w.Count())
		} else {
			// Enumeration backend: |rep(d)| over the canonical domain,
			// sharded across -workers (the count is worker-independent).
			fmt.Fprintln(stdout, worlds.Options{Workers: *workersN}.Count(d))
		}
	case "worlds":
		// World listing streams in canonical enumeration order, so it
		// stays on the sequential enumerator regardless of -workers.
		n := 0
		each := func(i *rel.Instance) bool {
			fmt.Fprintf(stdout, "-- world %d --\n%s\n", n+1, i)
			n++
			return n >= *limit
		}
		if w != nil {
			// A decomposition's enumeration is the exact world set, not a
			// canonical-domain proxy.
			w.Each(each)
			fmt.Fprintf(stdout, "(%d worlds shown)\n", n)
		} else {
			worlds.Each(d, nil, each)
			fmt.Fprintf(stdout, "(%d worlds shown; canonical domain)\n", n)
		}
	case "sample":
		if *samples < 1 {
			return fatal(stderr, fmt.Errorf("-n must be positive"))
		}
		// Collect every sample before printing, so a failure cannot abort
		// the stream after partial output.
		rng := rand.New(rand.NewSource(*seed))
		insts := make([]*rel.Instance, 0, *samples)
		for k := 0; k < *samples; k++ {
			var inst *rel.Instance
			if w != nil {
				// Uniform over worlds: one independent choice per component;
				// nil only on the empty world set.
				inst = w.Sample(rng)
				if inst == nil {
					return fatal(stderr, fmt.Errorf("cannot sample from the empty world set"))
				}
			} else {
				// Tables: a sampled member world (not uniform over rep).
				// MemberInstance's search budget is bounded, so a miss means
				// "none found", not "none exists".
				var ok bool
				inst, ok = gen.MemberInstance(*seed+int64(k), d)
				if !ok {
					return fatal(stderr, fmt.Errorf("no member world found within the sampling budget; selective conditions may need a different -seed"))
				}
			}
			insts = append(insts, inst)
		}
		for k, inst := range insts {
			fmt.Fprintf(stdout, "-- sample %d --\n%s\n", k+1, inst)
		}
	case "memb":
		i, err := loadInstance(*instPath, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		if w != nil {
			return answer(stdout, stderr, w.Member(i), nil)
		}
		yes, err := o.Membership(i, query.Identity{}, d)
		return answer(stdout, stderr, yes, err)
	case "uniq":
		i, err := loadInstance(*instPath, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		if w != nil {
			// Count is a big.Int: compare against 1 exactly (Int64 is
			// undefined outside int64 range, the very regime WSDs serve).
			yes := w.Count().Cmp(big.NewInt(1)) == 0 && w.Member(i)
			return answer(stdout, stderr, yes, nil)
		}
		yes, err := o.Uniqueness(query.Identity{}, d, i)
		return answer(stdout, stderr, yes, err)
	case "cont":
		q0, err := loadQuery(*queryPath, false, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		q1, err := loadQuery(*query2Path, false, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		src2, err := loadSource(*db2Path, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		if src2.Query != nil {
			return fatal(stderr, fmt.Errorf("%s is a @query file; databases go to -db2, queries to -query2", *db2Path))
		}
		d2, w2 := src2.DB, src2.WSD
		if w == nil && w2 == nil {
			// Both sides tables: the decision engine handles every query
			// class, Π₂ᵖ generic fallback included.
			yes, err := o.Containment(q0, d, q1, d2)
			return answer(stdout, stderr, yes, err)
		}
		// At least one decomposition: run the native wsdalg containment,
		// compiling a table side to its exact decomposition first.
		if w == nil {
			if w, err = wsd.ToWSD(d); errors.Is(err, wsd.ErrInfiniteRep) && query.IsIdentity(q0) {
				// Infinitely many subset worlds cannot fit in a finite
				// decomposition's world set.
				return answer(stdout, stderr, false, nil)
			} else if err != nil {
				return fatal(stderr, err)
			}
		}
		if w2 == nil {
			if w2, err = wsd.ToWSD(d2); err != nil {
				return fatal(stderr, fmt.Errorf("superset side: %w", err))
			}
		}
		yes, err := wsdalg.ContainmentViews(q0, w, q1, w2)
		return answer(stdout, stderr, yes, err)
	case "poss-ans", "cert-ans":
		q, err := loadQuery(*queryPath, true, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		var ans *rel.Instance
		if w != nil {
			// Decomposition backend: the lifted evaluator produces the
			// answer world-set in factored form; possibility/certainty of
			// answer facts are support lookups on it.
			sp := tr.Root().StartChild("eval")
			if cmd == "poss-ans" {
				ans, err = wsdalg.PossibleAnswersObserved(w, q, cost)
			} else {
				ans, err = wsdalg.CertainAnswersObserved(w, q, cost)
			}
			sp.End()
		} else {
			if cmd == "poss-ans" {
				ans, err = o.PossibleAnswers(q, d)
			} else {
				ans, err = o.CertainAnswers(q, d)
			}
		}
		if err != nil {
			return fatal(stderr, err)
		}
		if err := parse.PrintInstance(stdout, ans); err != nil {
			return fatal(stderr, err)
		}
	case "explain":
		if w == nil {
			return fatal(stderr, fmt.Errorf("explain applies to decompositions; %s is table-backed (compile with wsd first)", *dbPath))
		}
		q, err := loadQuery(*queryPath, true, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		_, plan, evalErr := wsdalg.EvalOptimized(w, q, cost)
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(plan); err != nil {
				return fatal(stderr, err)
			}
		} else {
			plan.WriteText(stdout)
		}
		if evalErr != nil {
			// The partial plan above shows where it stopped; the exit code
			// and message match what cert-ans would have reported.
			return fatal(stderr, evalErr)
		}
	case "update":
		if w == nil {
			return fatal(stderr, fmt.Errorf("update applies to decompositions; %s is table-backed (compile with wsd first)", *dbPath))
		}
		u, err := loadUpdate(*updatePath, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		apply := func(u *wsd.Update) (*wsd.WSD, error) { return w.ApplyUpdateObserved(u, cost) }
		if *full {
			apply = w.ApplyUpdateFull
		}
		sp := tr.Root().StartChild("apply-update")
		out, err := apply(u)
		sp.End()
		if err != nil {
			return fatal(stderr, err)
		}
		dst := stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return fatal(stderr, err)
			}
			defer f.Close()
			dst = f
		}
		if err := parse.PrintWSD(dst, out); err != nil {
			return fatal(stderr, err)
		}
	case "poss":
		p, err := loadInstance(*factsPath, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		if w != nil {
			return answer(stdout, stderr, w.Possible(p), nil)
		}
		yes, err := o.Possible(p, query.Identity{}, d)
		return answer(stdout, stderr, yes, err)
	case "cert":
		p, err := loadInstance(*factsPath, cost)
		if err != nil {
			return fatal(stderr, err)
		}
		if w != nil {
			return answer(stdout, stderr, w.Certain(p), nil)
		}
		yes, err := o.Certain(p, query.Identity{}, d)
		return answer(stdout, stderr, yes, err)
	default:
		return usage(stderr)
	}
	return 0
}

func loadSource(path string, c *obs.Cost) (*parse.Source, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -db")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse.ParseSourceObserved(f, c)
}

// loadQuery reads a @query file; with required=false an empty path
// means the identity query (cont's view-free form).
func loadQuery(path string, required bool, c *obs.Cost) (query.Query, error) {
	if path == "" {
		if required {
			return nil, fmt.Errorf("missing -query")
		}
		return query.Identity{}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	src, err := parse.ParseSourceObserved(f, c)
	if err != nil {
		return nil, err
	}
	if src.Query == nil {
		return nil, fmt.Errorf("%s does not contain a @query block", path)
	}
	return *src.Query, nil
}

// loadUpdate reads an @update file, rejecting misrouted sources the
// same way -db rejects @query files.
func loadUpdate(path string, c *obs.Cost) (*wsd.Update, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -update")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	src, err := parse.ParseSourceObserved(f, c)
	if err != nil {
		return nil, err
	}
	if src.Update == nil {
		return nil, fmt.Errorf("%s does not contain an @update block", path)
	}
	return src.Update, nil
}

func loadInstance(path string, c *obs.Cost) (*rel.Instance, error) {
	if path == "" {
		return nil, fmt.Errorf("missing instance/fact file")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse.ParseInstanceObserved(f, c)
}

func answer(stdout, stderr io.Writer, yes bool, err error) int {
	if err != nil {
		return fatal(stderr, err)
	}
	if yes {
		fmt.Fprintln(stdout, "yes")
	} else {
		fmt.Fprintln(stdout, "no")
	}
	return 0
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "pwq:", err)
	return 2
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: pwq {memb|uniq|cont|poss|cert|poss-ans|cert-ans|explain|count|sample|worlds|kind|update} -db FILE [...]")
	return 2
}
