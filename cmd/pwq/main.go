// Command pwq decides the paper's five problems on .pw files.
//
// Usage:
//
//	pwq memb    -db tables.pw -inst instance.pw
//	pwq uniq    -db tables.pw -inst instance.pw
//	pwq cont    -db subset.pw -db2 superset.pw
//	pwq poss    -db tables.pw -facts p.pw
//	pwq cert    -db tables.pw -facts p.pw
//	pwq worlds  -db tables.pw [-limit 20]
//	pwq kind    -db tables.pw
//
// Files use the .pw format of internal/parse. All commands exit 0 with
// "yes"/"no" on stdout; structural problems exit 2. -workers bounds the
// engine's goroutine budget (0 = GOMAXPROCS); answers are identical at
// every worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"pw/internal/decide"
	"pw/internal/parse"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/worlds"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dbPath := fs.String("db", "", "conditioned-table database (.pw)")
	db2Path := fs.String("db2", "", "second database for cont (.pw)")
	instPath := fs.String("inst", "", "complete instance (.pw)")
	factsPath := fs.String("facts", "", "fact set for poss/cert (.pw)")
	limit := fs.Int("limit", 20, "world limit for the worlds command")
	workersN := fs.Int("workers", 0, "engine worker count (0 = GOMAXPROCS, 1 = sequential)")
	if err := fs.Parse(args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	o := decide.Options{Workers: *workersN}

	d, err := loadDB(*dbPath)
	if err != nil {
		return fatal(stderr, err)
	}
	switch cmd {
	case "kind":
		fmt.Fprintln(stdout, d.Kind())
	case "worlds":
		// World listing streams in canonical enumeration order, so it
		// stays on the sequential enumerator regardless of -workers.
		n := 0
		worlds.Each(d, nil, func(i *rel.Instance) bool {
			fmt.Fprintf(stdout, "-- world %d --\n%s\n", n+1, i)
			n++
			return n >= *limit
		})
		fmt.Fprintf(stdout, "(%d worlds shown; canonical domain)\n", n)
	case "memb":
		i, err := loadInstance(*instPath)
		if err != nil {
			return fatal(stderr, err)
		}
		yes, err := o.Membership(i, query.Identity{}, d)
		return answer(stdout, stderr, yes, err)
	case "uniq":
		i, err := loadInstance(*instPath)
		if err != nil {
			return fatal(stderr, err)
		}
		yes, err := o.Uniqueness(query.Identity{}, d, i)
		return answer(stdout, stderr, yes, err)
	case "cont":
		d2, err := loadDB(*db2Path)
		if err != nil {
			return fatal(stderr, err)
		}
		yes, err := o.Containment(query.Identity{}, d, query.Identity{}, d2)
		return answer(stdout, stderr, yes, err)
	case "poss":
		p, err := loadInstance(*factsPath)
		if err != nil {
			return fatal(stderr, err)
		}
		yes, err := o.Possible(p, query.Identity{}, d)
		return answer(stdout, stderr, yes, err)
	case "cert":
		p, err := loadInstance(*factsPath)
		if err != nil {
			return fatal(stderr, err)
		}
		yes, err := o.Certain(p, query.Identity{}, d)
		return answer(stdout, stderr, yes, err)
	default:
		return usage(stderr)
	}
	return 0
}

func loadDB(path string) (*table.Database, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -db")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse.ParseDatabase(f)
}

func loadInstance(path string) (*rel.Instance, error) {
	if path == "" {
		return nil, fmt.Errorf("missing instance/fact file")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse.ParseInstance(f)
}

func answer(stdout, stderr io.Writer, yes bool, err error) int {
	if err != nil {
		return fatal(stderr, err)
	}
	if yes {
		fmt.Fprintln(stdout, "yes")
	} else {
		fmt.Fprintln(stdout, "no")
	}
	return 0
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "pwq:", err)
	return 2
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: pwq {memb|uniq|cont|poss|cert|worlds|kind} -db FILE [...]")
	return 2
}
