// Package pw is the public API of the possible-worlds library: a Go
// implementation of Abiteboul, Kanellakis and Grahne, "On the
// Representation and Querying of Sets of Possible Worlds" (SIGMOD 1987 /
// TCS 78(1991)).
//
// The package re-exports the library's core types as aliases and provides
// convenience constructors, so downstream users import only "pw":
//
//	t := pw.NewTable("R", 2)
//	t.AddTuple(pw.Const("1"), pw.Var("x"))
//	db := pw.NewDatabase(t)
//	worlds := pw.Worlds(db)                // enumerate rep(db)
//	ok, _ := pw.Member(instance, db)       // MEMB
//	ok, _ = pw.Certain(facts, query, db)   // CERT
//
// The full machinery lives in the internal packages; see DESIGN.md for the
// map from the paper's sections to modules.
package pw

import (
	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/decide"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/valuation"
	"pw/internal/value"
	"pw/internal/worlds"
	"pw/internal/wsd"
	"pw/internal/wsdalg"
)

// Core value and condition types.
type (
	// Value is a constant or a variable (null).
	Value = value.Value
	// Tuple is a sequence of values.
	Tuple = value.Tuple
	// Atom is an equality or inequality between two values.
	Atom = cond.Atom
	// Conjunction is a conjunct of atoms (the paper's condition form).
	Conjunction = cond.Conjunction
)

// Table and instance types.
type (
	// Table is a conditioned table (Codd-, e-, i-, g- or c-table).
	Table = table.Table
	// Row is one tuple of a table with its local condition.
	Row = table.Row
	// Database is a vector of conditioned tables.
	Database = table.Database
	// Kind is the representation class of a table or database.
	Kind = table.Kind
	// Fact is a ground tuple.
	Fact = rel.Fact
	// Relation is a named set of facts.
	Relation = rel.Relation
	// Instance is a complete-information database.
	Instance = rel.Instance
	// Valuation maps variables to constants.
	Valuation = valuation.V
	// Schema describes relation names and arities.
	Schema = table.Schema
	// SchemaRel is one relation's name and arity in a Schema.
	SchemaRel = table.SchemaRel
)

// World-set decomposition types (the second representation backend): a
// world set stored as a product of independent components, with exact
// big-int counting and polynomial MEMB/POSS/CERT on the decomposition.
type (
	// WSD is a world-set decomposition.
	WSD = wsd.WSD
	// WSDFact is one ground fact of a decomposition alternative.
	WSDFact = wsd.Fact
	// WSDAlt is one alternative (fact-set) of a decomposition component.
	WSDAlt = wsd.Alt
)

// Query types.
type (
	// Query maps instances to instances with PTIME data-complexity.
	Query = query.Query
	// AlgebraQuery is a positive existential query (vector of named
	// relational algebra expressions), evaluable directly on c-tables.
	AlgebraQuery = query.Algebra
	// AlgebraOut is one named output relation of an algebra query.
	AlgebraOut = query.Out
	// FOQuery is a first-order query vector.
	FOQuery = query.FO
	// DatalogQuery is a DATALOG query.
	DatalogQuery = query.Datalog
	// Expr is a relational algebra expression.
	Expr = algebra.Expr
)

// NewAlgebraQuery builds a relational-algebra query from named outputs.
func NewAlgebraQuery(name string, outs ...AlgebraOut) AlgebraQuery {
	return query.NewAlgebra(name, outs...)
}

// Algebra expression constructors, re-exported so downstream users can
// assemble queries against the façade alone.

// ScanExpr scans a base relation, naming its columns positionally.
func ScanExpr(rel string, cols ...string) Expr { return algebra.Scan(rel, cols...) }

// ProjectExpr keeps the named columns, in the given order.
func ProjectExpr(e Expr, cols ...string) Expr { return algebra.Project{E: e, Cols: cols} }

// WhereEqExpr filters e by column = constant.
func WhereEqExpr(e Expr, col, constant string) Expr {
	return algebra.Where(e, algebra.EqP(algebra.Col(col), algebra.Lit(constant)))
}

// WhereEqColsExpr filters e by column = column.
func WhereEqColsExpr(e Expr, col1, col2 string) Expr {
	return algebra.Where(e, algebra.EqP(algebra.Col(col1), algebra.Col(col2)))
}

// RenameExpr renames columns pairwise: from[i] → to[i].
func RenameExpr(e Expr, from, to []string) Expr { return algebra.Rename{E: e, From: from, To: to} }

// JoinExpr is the natural join on shared column names.
func JoinExpr(l, r Expr) Expr { return algebra.Join{L: l, R: r} }

// UnionExpr is set union of two same-schema expressions.
func UnionExpr(l, r Expr) Expr { return algebra.Union{L: l, R: r} }

// Representation kinds, re-exported.
const (
	KindCodd = table.KindCodd
	KindE    = table.KindE
	KindI    = table.KindI
	KindG    = table.KindG
	KindC    = table.KindC
)

// Options tunes how the engine searches without changing what it decides.
// The determinism contract: every decision procedure returns identical
// results — booleans, world sets, answer sets — at every worker count,
// even though internal visit order differs under parallelism. Workers = 1
// reproduces the sequential engine bit-for-bit (witness order, fresh
// "~z…" constant naming); the zero value uses GOMAXPROCS workers.
//
//	ok, _ := pw.Options{Workers: 8}.Member(instance, db)
type Options struct {
	// Workers is the goroutine budget for the exponential valuation
	// searches and large matching-graph builds. 0 means GOMAXPROCS;
	// 1 is the sequential engine.
	Workers int
}

func (o Options) decide() decide.Options { return decide.Options{Workers: o.Workers} }
func (o Options) worlds() worlds.Options { return worlds.Options{Workers: o.Workers} }

// Member decides MEMB(−) with this option set.
func (o Options) Member(i *Instance, d *Database) (bool, error) {
	return o.decide().Membership(i, query.Identity{}, d)
}

// MemberOfView decides MEMB(q) with this option set.
func (o Options) MemberOfView(i *Instance, q Query, d *Database) (bool, error) {
	return o.decide().Membership(i, q, d)
}

// Unique decides UNIQ(−) with this option set.
func (o Options) Unique(i *Instance, d *Database) (bool, error) {
	return o.decide().Uniqueness(query.Identity{}, d, i)
}

// UniqueView decides UNIQ(q0) with this option set.
func (o Options) UniqueView(i *Instance, q0 Query, d *Database) (bool, error) {
	return o.decide().Uniqueness(q0, d, i)
}

// Contained decides CONT(−,−) with this option set.
func (o Options) Contained(d0, d *Database) (bool, error) {
	return o.decide().Containment(query.Identity{}, d0, query.Identity{}, d)
}

// ContainedViews decides CONT(q0,q) with this option set.
func (o Options) ContainedViews(q0 Query, d0 *Database, q Query, d *Database) (bool, error) {
	return o.decide().Containment(q0, d0, q, d)
}

// Possible decides POSS(∗,q) with this option set.
func (o Options) Possible(p *Instance, q Query, d *Database) (bool, error) {
	return o.decide().Possible(p, q, d)
}

// Certain decides CERT(∗,q) with this option set.
func (o Options) Certain(p *Instance, q Query, d *Database) (bool, error) {
	return o.decide().Certain(p, q, d)
}

// PossibleFact decides POSS(1,q) with this option set.
func (o Options) PossibleFact(relName string, f Fact, q Query, d *Database) (bool, error) {
	return o.decide().PossibleFact(relName, f, q, d)
}

// CertainFact decides CERT(1,q) with this option set.
func (o Options) CertainFact(relName string, f Fact, q Query, d *Database) (bool, error) {
	return o.decide().CertainFact(relName, f, q, d)
}

// CertainAnswers computes the certain answers of a liftable view with
// this option set; the answer set (and its order) is worker-count
// independent.
func (o Options) CertainAnswers(q Query, d *Database) (*Instance, error) {
	return o.decide().CertainAnswers(q, d)
}

// PossibleAnswers computes the possible answers of a liftable view over
// the constants of d and q with this option set; the answer set is
// worker-count independent.
func (o Options) PossibleAnswers(q Query, d *Database) (*Instance, error) {
	return o.decide().PossibleAnswers(q, d)
}

// Worlds materializes rep(d) with this option set: the valuation space is
// sharded across workers with per-shard fingerprint deduplication. The
// world *set* is worker-count independent; the slice order is the
// sequential enumeration order at Workers = 1 and shard-merge order above.
func (o Options) Worlds(d *Database) []*Instance { return o.worlds().All(d) }

// CountWorlds returns |rep(d)| over the canonical domain with this option
// set.
func (o Options) CountWorlds(d *Database) int { return o.worlds().Count(d) }

// Const returns the constant named name.
func Const(name string) Value { return value.Const(name) }

// Var returns the variable (null) named name.
func Var(name string) Value { return value.Var(name) }

// Eq returns the atom l = r.
func Eq(l, r Value) Atom { return cond.EqAtom(l, r) }

// Neq returns the atom l ≠ r.
func Neq(l, r Value) Atom { return cond.NeqAtom(l, r) }

// NewTable returns an empty conditioned table.
func NewTable(name string, arity int) *Table { return table.New(name, arity) }

// NewDatabase builds a database from tables.
func NewDatabase(tables ...*Table) *Database { return table.DB(tables...) }

// NewInstance returns an empty complete-information database.
func NewInstance() *Instance { return rel.NewInstance() }

// NewRelation returns an empty relation.
func NewRelation(name string, arity int) *Relation { return rel.NewRelation(name, arity) }

// Identity is the identity query.
func Identity() Query { return query.Identity{} }

// Worlds materializes rep(d) over the canonical domain Δ ∪ Δ′
// (Proposition 2.1). The result grows exponentially with the number of
// variables; use EachWorld for streaming.
func Worlds(d *Database) []*Instance { return worlds.All(d) }

// EachWorld streams the distinct possible worlds of d; fn returns true to
// stop early.
func EachWorld(d *Database, fn func(*Instance) bool) { worlds.Each(d, nil, fn) }

// CountWorlds returns |rep(d)| over the canonical domain.
func CountWorlds(d *Database) int { return worlds.Count(d) }

// Member decides MEMB(−): is i ∈ rep(d)? Polynomial for Codd-tables
// (Theorem 3.1(1)), NP search otherwise.
func Member(i *Instance, d *Database) (bool, error) {
	return decide.Membership(i, query.Identity{}, d)
}

// MemberOfView decides MEMB(q): is i ∈ q(rep(d))?
func MemberOfView(i *Instance, q Query, d *Database) (bool, error) {
	return decide.Membership(i, q, d)
}

// Unique decides UNIQ(−): is rep(d) = {i}?
func Unique(i *Instance, d *Database) (bool, error) {
	return decide.Uniqueness(query.Identity{}, d, i)
}

// UniqueView decides UNIQ(q0): is q0(rep(d)) = {i}?
func UniqueView(i *Instance, q0 Query, d *Database) (bool, error) {
	return decide.Uniqueness(q0, d, i)
}

// Contained decides CONT(−,−): is rep(d0) ⊆ rep(d)?
func Contained(d0, d *Database) (bool, error) {
	return decide.Containment(query.Identity{}, d0, query.Identity{}, d)
}

// ContainedViews decides CONT(q0,q): is q0(rep(d0)) ⊆ q(rep(d))?
func ContainedViews(q0 Query, d0 *Database, q Query, d *Database) (bool, error) {
	return decide.Containment(q0, d0, q, d)
}

// Possible decides POSS(∗,q): does some world of q(rep(d)) contain all
// facts of p? Pass Identity() for the view-free question.
func Possible(p *Instance, q Query, d *Database) (bool, error) {
	return decide.Possible(p, q, d)
}

// Certain decides CERT(∗,q): do all worlds of q(rep(d)) contain all facts
// of p?
func Certain(p *Instance, q Query, d *Database) (bool, error) {
	return decide.Certain(p, q, d)
}

// PossibleFact and CertainFact are the single-fact forms (POSS(1,q) and
// CERT(1,q), the primitive CERT(∗,q) reduces to, Proposition 2.1(6)).
func PossibleFact(relName string, f Fact, q Query, d *Database) (bool, error) {
	return decide.PossibleFact(relName, f, q, d)
}

// CertainFact decides CERT(1, q) for a single fact.
func CertainFact(relName string, f Fact, q Query, d *Database) (bool, error) {
	return decide.CertainFact(relName, f, q, d)
}

// Normalize incorporates implied equalities into the tables and leaves a
// residual inequality global condition; ok=false means rep(d) = ∅. The
// result is always independent of d and free to mutate (the internal fast
// path may alias; the façade clones in that case).
func Normalize(d *Database) (*Database, bool) {
	nd, ok := table.Normalize(d)
	if ok && nd == d {
		nd = d.Clone()
	}
	return nd, ok
}

// NewWSD returns an empty world-set decomposition over the given schema
// (zero components: the single world with every relation empty). Build it
// up with AddComponent (tuple-level alternatives) and AddWSDTemplate
// (attribute-level per-slot alternatives); the query methods normalize
// lazily and panic if normalization fails (its only failure mode is the
// merged-component blow-up guard on heavily entangled inputs) — call
// Normalize explicitly after building to receive that as an error
// instead, and before sharing the decomposition across goroutines.
func NewWSD(schema Schema) *WSD { return wsd.New(schema) }

// AddWSDTemplate appends an attribute-level component to a
// decomposition: one fact template over relName whose slot i ranges
// over slots[i], denoting the cross product of the slot choices as its
// alternatives (one instantiation per world) without ever materializing
// the product. A database whose fields vary independently — n readings
// of k values each — is k^n worlds in n·k symbols this way; Count,
// Member, PossibleFact, CertainFact and Sample all stay polynomial in
// the decomposition size, and Apply-family queries evaluate on the
// factored form directly.
func AddWSDTemplate(w *WSD, relName string, slots ...[]string) error {
	return w.AddTemplateComponent(relName, slots...)
}

// WSDFromWorlds factorizes a finite world list into a normalized
// decomposition denoting exactly that set: Count equals the number of
// distinct worlds and Expand reproduces them.
func WSDFromWorlds(ws []*Instance) (*WSD, error) { return wsd.FromWorlds(ws) }

// ToWSD compiles a conditioned-table database into a decomposition
// denoting exactly rep(d). It errors (wrapping ErrInfiniteRep) when
// rep(d) is infinite — i.e. some row variable is not forced to a
// constant by the global condition.
func ToWSD(d *Database) (*WSD, error) { return wsd.ToWSD(d) }

// ToWSDOverDomain compiles the world set of d restricted to valuations
// into the given finite domain (nil = the canonical Δ ∪ Δ′, agreeing
// exactly with Worlds/CountWorlds).
func ToWSDOverDomain(d *Database, domain []string) (*WSD, error) {
	return wsd.ToWSDOverDomain(d, domain)
}

// ErrInfiniteRep is returned (wrapped) by ToWSD for databases whose
// world set is infinite.
var ErrInfiniteRep = wsd.ErrInfiniteRep

// Apply evaluates a positive existential query directly on a c-table
// database, returning a c-table database representing the view q(rep(d))
// (the Imielinski–Lipski lifted evaluation used by Theorem 5.2(1)).
func Apply(q AlgebraQuery, d *Database) (*Database, error) { return q.EvalLifted(d) }

// CertainAnswers computes every certain fact of q(rep(d)) for a liftable
// (positive existential) query: the answers present in all possible
// worlds. For homomorphism-preserved queries on g-tables this is the
// polynomial certain-answer computation of Theorem 5.3(1); with ≠ or
// local conditions each candidate is confirmed by refutation.
func CertainAnswers(q Query, d *Database) (*Instance, error) {
	return decide.CertainAnswers(q, d)
}

// PossibleAnswers computes every possible fact of q(rep(d)) over the
// constants of d and q, for a liftable query: the answers present in at
// least one possible world. (Facts over fresh constants may also be
// possible but form an infinite family; the restriction to the inputs'
// constants is the canonical finite answer set.)
func PossibleAnswers(q Query, d *Database) (*Instance, error) {
	return decide.PossibleAnswers(q, d)
}

// ApplyWSD evaluates a positive relational-algebra query directly on a
// world-set decomposition, returning a normalized decomposition of the
// answer world-set: rep(ApplyWSD(q, w)) = {q(W) : W ∈ rep(w)}. No world
// is enumerated: component-local operators map alternatives pointwise
// and cross-component joins recombine only the components they touch.
// Queries outside the fragment (FO, DATALOG, algebra with ≠) error with
// ErrUnsupportedQuery.
func ApplyWSD(q Query, w *WSD) (*WSD, error) { return wsdalg.Eval(w, q) }

// PossibleAnswersWSD computes every possible answer fact of q over the
// decomposition — the union of the answer world-set, read off the
// support of the evaluated decomposition.
func PossibleAnswersWSD(q Query, w *WSD) (*Instance, error) {
	return wsdalg.PossibleAnswers(w, q)
}

// CertainAnswersWSD computes every certain answer fact of q over the
// decomposition — the intersection of the answer world-set.
func CertainAnswersWSD(q Query, w *WSD) (*Instance, error) {
	return wsdalg.CertainAnswers(w, q)
}

// ContainedWSD decides CONT(−,−) natively on decompositions:
// rep(sub) ⊆ rep(sup)?
func ContainedWSD(sub, sup *WSD) (bool, error) { return wsdalg.Contains(sub, sup) }

// ContainedViewsWSD decides CONT(q0,q) natively on decompositions:
// q0(rep(d0)) ⊆ q(rep(d))? Both queries must be in the supported
// fragment.
func ContainedViewsWSD(q0 Query, d0 *WSD, q Query, d *WSD) (bool, error) {
	return wsdalg.ContainmentViews(q0, d0, q, d)
}

// ErrUnsupportedQuery is returned (wrapped) by the WSD query entry
// points for queries outside the decomposition-evaluable fragment
// (positive existential algebra plus the identity query).
var ErrUnsupportedQuery = wsdalg.ErrUnsupported
