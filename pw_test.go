package pw

import (
	"testing"
)

// fig1CTable is the paper's Fig. 1 c-table Te, built through the facade.
func fig1CTable() *Database {
	t := NewTable("T", 2)
	t.Global = Conjunction{
		Neq(Var("x"), Const("1")),
		Neq(Var("y"), Const("2")),
	}
	t.Add(Row{Values: Tuple{Const("0"), Const("1")},
		Cond: Conjunction{Eq(Var("z"), Var("z"))}})
	t.Add(Row{Values: Tuple{Const("0"), Var("x")},
		Cond: Conjunction{Eq(Var("y"), Const("0"))}})
	t.Add(Row{Values: Tuple{Var("y"), Var("x")},
		Cond: Conjunction{Neq(Var("x"), Var("y"))}})
	return NewDatabase(t)
}

func TestFacadeWorlds(t *testing.T) {
	d := fig1CTable()
	if d.Kind() != KindC {
		t.Fatalf("kind = %v", d.Kind())
	}
	ws := Worlds(d)
	if len(ws) == 0 {
		t.Fatal("no worlds")
	}
	if CountWorlds(d) != len(ws) {
		t.Error("CountWorlds disagrees with Worlds")
	}
	n := 0
	EachWorld(d, func(*Instance) bool {
		n++
		return n == 2
	})
	if n != 2 {
		t.Error("EachWorld early stop broken")
	}
	// The unconditional row (0,1) appears in every world.
	for _, w := range ws {
		if !w.Relation("T").Has(Fact{"0", "1"}) {
			t.Fatalf("world %v lacks the certain fact (0,1)", w)
		}
	}
	yes, err := CertainFact("T", Fact{"0", "1"}, Identity(), d)
	if err != nil || !yes {
		t.Errorf("(0,1) must be certain: %v %v", yes, err)
	}
}

func TestFacadeMemberUnique(t *testing.T) {
	tb := NewTable("R", 1)
	tb.AddTuple(Var("x"))
	tb.Global = Conjunction{Eq(Var("x"), Const("7"))}
	d := NewDatabase(tb)

	i := NewInstance()
	r := NewRelation("R", 1)
	r.Add(Fact{"7"})
	i.AddRelation(r)

	if ok, err := Member(i, d); err != nil || !ok {
		t.Errorf("member: %v %v", ok, err)
	}
	if ok, err := Unique(i, d); err != nil || !ok {
		t.Errorf("unique: %v %v", ok, err)
	}

	j := NewInstance()
	rj := NewRelation("R", 1)
	rj.Add(Fact{"8"})
	j.AddRelation(rj)
	if ok, _ := Member(j, d); ok {
		t.Error("{(8)} is not represented")
	}
}

func TestFacadeContainment(t *testing.T) {
	a := NewTable("R", 1)
	a.AddTuple(Const("1"))
	b := NewTable("R", 1)
	b.AddTuple(Var("x"))
	dA, dB := NewDatabase(a), NewDatabase(b)
	if ok, err := Contained(dA, dB); err != nil || !ok {
		t.Errorf("{(1)} ⊆ all singletons: %v %v", ok, err)
	}
	if ok, _ := Contained(dB, dA); ok {
		t.Error("all singletons ⊄ {(1)}")
	}
}

func TestFacadeNormalize(t *testing.T) {
	tb := NewTable("R", 1)
	tb.AddTuple(Var("x"))
	tb.Global = Conjunction{Eq(Var("x"), Const("3")), Neq(Var("y"), Const("0"))}
	d := NewDatabase(tb)
	nd, ok := Normalize(d)
	if !ok {
		t.Fatal("satisfiable global reported unsat")
	}
	row := nd.Tables()[0].Rows[0]
	if row.Values[0] != Const("3") {
		t.Errorf("normalization should bind x to 3: %v", row)
	}
	tb2 := NewTable("R", 1)
	tb2.AddTuple(Var("x"))
	tb2.Global = Conjunction{Eq(Var("x"), Const("1")), Eq(Var("x"), Const("2"))}
	if _, ok := Normalize(NewDatabase(tb2)); ok {
		t.Error("contradictory global must normalize to not-ok")
	}
}

func TestFacadePossibleSet(t *testing.T) {
	tb := NewTable("R", 1)
	tb.AddTuple(Var("x"))
	tb.AddTuple(Var("y"))
	d := NewDatabase(tb)
	p := NewInstance()
	r := NewRelation("R", 1)
	r.Add(Fact{"1"})
	r.Add(Fact{"2"})
	p.AddRelation(r)
	if ok, err := Possible(p, Identity(), d); err != nil || !ok {
		t.Errorf("two free rows can cover two facts: %v %v", ok, err)
	}
	r.Add(Fact{"3"})
	if ok, _ := Possible(p, Identity(), d); ok {
		t.Error("two rows cannot cover three facts")
	}
}

// TestFacadeOptions pins the façade half of the determinism contract:
// every Options method must agree with its package-level (default)
// counterpart at several worker counts, on the paper's Fig. 1 c-table.
func TestFacadeOptions(t *testing.T) {
	d := fig1CTable()
	ws := Worlds(d)
	if len(ws) == 0 {
		t.Fatal("no worlds")
	}
	member := ws[0]
	facts := NewInstance()
	facts.AddRelation(NewRelation("T", 2)).AddRow("0", "1")
	for _, w := range []int{1, 2, 8} {
		o := Options{Workers: w}
		if got := o.CountWorlds(d); got != len(ws) {
			t.Errorf("workers=%d: CountWorlds=%d want %d", w, got, len(ws))
		}
		yes, err := o.Member(member, d)
		if err != nil || !yes {
			t.Errorf("workers=%d: Member=%v %v, want yes", w, yes, err)
		}
		uniq, err := o.Unique(member, d)
		if err != nil || uniq {
			t.Errorf("workers=%d: Unique=%v %v, want no", w, uniq, err)
		}
		cont, err := o.Contained(d, d)
		if err != nil || !cont {
			t.Errorf("workers=%d: Contained(d,d)=%v %v, want yes", w, cont, err)
		}
		poss, err := o.Possible(facts, Identity(), d)
		if err != nil {
			t.Fatalf("workers=%d: Possible: %v", w, err)
		}
		cert, err := o.Certain(facts, Identity(), d)
		if err != nil {
			t.Fatalf("workers=%d: Certain: %v", w, err)
		}
		wantPoss, _ := Possible(facts, Identity(), d)
		wantCert, _ := Certain(facts, Identity(), d)
		if poss != wantPoss || cert != wantCert {
			t.Errorf("workers=%d: POSS=%v/%v CERT=%v/%v", w, poss, wantPoss, cert, wantCert)
		}
	}
}
