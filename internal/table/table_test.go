package table

import (
	"strings"
	"testing"

	"pw/internal/cond"
	"pw/internal/value"
)

func v(n string) value.Value { return value.Var(n) }
func k(n string) value.Value { return value.Const(n) }

// fig1 builds the five representations of Fig. 1 of the paper.
func fig1Table() *Table { // Ta: Codd-table
	t := New("T", 3)
	t.AddTuple(k("0"), k("1"), v("x"))
	t.AddTuple(v("y"), v("z"), k("1"))
	t.AddTuple(k("2"), k("0"), v("v"))
	return t
}

func fig1ETable() *Table { // Tb: e-table (repeated variables)
	t := New("T", 3)
	t.AddTuple(k("0"), k("1"), v("x"))
	t.AddTuple(v("x"), v("z"), k("1"))
	t.AddTuple(k("2"), k("0"), v("z"))
	return t
}

func fig1ITable() *Table { // Tc: i-table
	t := New("T", 3)
	t.Global = cond.Conj(
		cond.NeqAtom(v("x"), k("0")),
		cond.NeqAtom(v("y"), v("z")),
	)
	t.AddTuple(k("0"), k("1"), v("x"))
	t.AddTuple(v("y"), v("z"), k("1"))
	t.AddTuple(k("2"), k("0"), v("v"))
	return t
}

func fig1GTable() *Table { // Td: g-table
	t := New("T", 3)
	t.Global = cond.Conj(cond.NeqAtom(v("x"), v("z")))
	t.AddTuple(k("0"), k("1"), v("x"))
	t.AddTuple(v("x"), v("z"), k("1"))
	t.AddTuple(k("2"), k("0"), v("z"))
	return t
}

func fig1CTable() *Table { // Te: c-table
	t := New("T", 3)
	t.Global = cond.Conj(
		cond.NeqAtom(v("x"), k("1")),
		cond.NeqAtom(v("y"), k("2")),
	)
	t.Add(Row{
		Values: value.NewTuple(k("0"), k("1"), v("z")),
		Cond:   cond.Conj(cond.EqAtom(v("z"), v("z"))),
	})
	t.Add(Row{
		Values: value.NewTuple(k("0"), v("x"), v("y")),
		Cond:   cond.Conj(cond.EqAtom(v("y"), k("0"))),
	})
	t.Add(Row{
		Values: value.NewTuple(v("y"), v("x"), v("x")),
		Cond:   cond.Conj(cond.NeqAtom(v("x"), v("y"))),
	})
	return t
}

func TestKindClassification(t *testing.T) {
	cases := []struct {
		t    *Table
		want Kind
	}{
		{fig1Table(), KindCodd},
		{fig1ETable(), KindE},
		{fig1ITable(), KindI},
		{fig1GTable(), KindG},
		{fig1CTable(), KindC},
	}
	for _, tc := range cases {
		if got := tc.t.Kind(); got != tc.want {
			t.Errorf("Kind = %v, want %v for\n%s", got, tc.want, tc.t)
		}
	}
}

func TestKindExplicitEqualityGlobal(t *testing.T) {
	tb := New("T", 1)
	tb.Global = cond.Conj(cond.EqAtom(v("x"), k("1")))
	tb.AddTuple(v("x"))
	if tb.Kind() != KindE {
		t.Errorf("Kind = %v, want e-table", tb.Kind())
	}
	tb.Global = append(tb.Global, cond.NeqAtom(v("x"), k("2")))
	if tb.Kind() != KindG {
		t.Errorf("Kind = %v, want g-table", tb.Kind())
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindCodd: "table", KindE: "e-table", KindI: "i-table",
		KindG: "g-table", KindC: "c-table",
	}
	for kd, want := range names {
		if kd.String() != want {
			t.Errorf("%d renders %q", kd, kd.String())
		}
	}
}

func TestKindAtMost(t *testing.T) {
	if !KindCodd.AtMost(KindE) || !KindCodd.AtMost(KindI) {
		t.Error("Codd is below e and i")
	}
	if KindE.AtMost(KindI) || KindI.AtMost(KindE) {
		t.Error("e and i are incomparable")
	}
	if !KindE.AtMost(KindG) || !KindI.AtMost(KindG) || !KindG.AtMost(KindC) {
		t.Error("chain to c-table broken")
	}
	if KindC.AtMost(KindG) {
		t.Error("c-table is not below g-table")
	}
}

func TestDatabaseKindJoins(t *testing.T) {
	d := DB(fig1ETable())
	it := fig1ITable()
	it.Name = "U"
	// Rename i-table vars so that the vector is well-formed.
	it2 := it.Subst(value.Subst{v("x"): v("x2"), v("y"): v("y2"), v("z"): v("z2"), v("v"): v("v2")})
	d.AddTable(it2)
	if got := d.Kind(); got != KindG {
		t.Errorf("e-table + i-table vector must join to g-table, got %v", got)
	}
}

func TestDatabaseCrossTableSharedVarsMakeE(t *testing.T) {
	a := New("A", 1)
	a.AddTuple(v("x"))
	b := New("B", 1)
	b.AddTuple(v("x"))
	d := DB(a, b)
	if got := d.Kind(); got != KindE {
		t.Errorf("cross-table repeated variable must lift Codd to e-table, got %v", got)
	}
	if err := d.Validate(); err == nil {
		t.Error("Validate must reject cross-table row variables")
	}
}

func TestVarsAndConsts(t *testing.T) {
	tb := fig1CTable()
	vars := tb.Vars(nil, map[string]bool{})
	if len(vars) != 3 { // x, y, z
		t.Errorf("Vars = %v", vars)
	}
	consts := tb.Consts(nil, map[string]bool{})
	if len(consts) != 3 { // 1, 2, 0
		t.Errorf("Consts = %v", consts)
	}
}

func TestSubstDeep(t *testing.T) {
	tb := fig1GTable()
	s := value.Subst{v("x"): k("5")}
	nt := tb.Subst(s)
	if nt.Rows[0].Values[2] != k("5") {
		t.Error("row substitution failed")
	}
	if nt.Global[0].L != k("5") {
		t.Error("global substitution failed")
	}
	if tb.Rows[0].Values[2] != v("x") {
		t.Error("Subst mutated receiver")
	}
}

func TestNormalizeIncorporatesEqualities(t *testing.T) {
	tb := New("T", 2)
	tb.Global = cond.Conj(
		cond.EqAtom(v("x"), k("7")),
		cond.EqAtom(v("y"), v("w")),
		cond.NeqAtom(v("w"), k("0")),
	)
	tb.AddTuple(v("x"), v("y"))
	tb.AddTuple(v("w"), k("1"))
	d, ok := Normalize(DB(tb))
	if !ok {
		t.Fatal("satisfiable global reported unsat")
	}
	nt := d.Table("T")
	if nt.Rows[0].Values[0] != k("7") {
		t.Errorf("x should be bound to 7: %v", nt.Rows[0])
	}
	// y and w merge to one representative variable.
	if nt.Rows[0].Values[1] != nt.Rows[1].Values[0] {
		t.Errorf("y and w should merge: %v vs %v", nt.Rows[0], nt.Rows[1])
	}
	g := d.GlobalConjunction()
	if len(g) != 1 || g[0].Op != cond.Neq {
		t.Errorf("residual global = %v, want single inequality", g)
	}
}

func TestNormalizeUnsat(t *testing.T) {
	tb := New("T", 1)
	tb.Global = cond.Conj(cond.EqAtom(v("x"), k("1")), cond.EqAtom(v("x"), k("2")))
	tb.AddTuple(v("x"))
	if _, ok := Normalize(DB(tb)); ok {
		t.Error("unsatisfiable global must report not-ok")
	}
	tb2 := New("T", 1)
	tb2.Global = cond.Conj(cond.NeqAtom(v("x"), v("x")))
	tb2.AddTuple(v("x"))
	if _, ok := Normalize(DB(tb2)); ok {
		t.Error("x≠x must report not-ok")
	}
}

func TestFreezeDistinctFresh(t *testing.T) {
	tb := fig1Table()
	d := DB(tb)
	inst := Freeze(d, "~f")
	r := inst.Relation("T")
	if r == nil || r.Len() != 3 {
		t.Fatalf("frozen instance wrong: %v", inst)
	}
	// x, v, y, z map to distinct constants; constants stay.
	seen := map[string]bool{}
	for _, f := range r.Facts() {
		for _, c := range f {
			seen[c] = true
		}
	}
	if !seen["0"] || !seen["1"] || !seen["2"] {
		t.Error("original constants lost")
	}
	fresh := 0
	for c := range seen {
		if strings.HasPrefix(c, "~f") {
			fresh++
		}
	}
	if fresh != 4 {
		t.Errorf("want 4 distinct fresh constants, got %d (%v)", fresh, seen)
	}
}

func TestFreshPrefixAvoidsClashes(t *testing.T) {
	p := FreshPrefix([]string{"a", "~z3", "b"})
	if p == "~z" {
		t.Error("prefix ~z clashes with pool entry ~z3")
	}
	if !strings.HasPrefix(p, "~z") {
		t.Errorf("unexpected prefix %q", p)
	}
	if FreshPrefix([]string{"plain"}) != "~z" {
		t.Error("clean pool should give ~z")
	}
}

func TestFromInstanceRoundTrip(t *testing.T) {
	tb := fig1Table()
	d := DB(tb)
	inst := Freeze(d, "~f")
	back := FromInstance(inst)
	if back.Kind() != KindCodd {
		t.Error("ground database must be Codd kind")
	}
	if got := Freeze(back, "~g"); !got.Equal(inst) {
		t.Error("freezing a ground database must be the identity")
	}
}

func TestEmptyInstanceSchema(t *testing.T) {
	d := DB(fig1Table())
	e := d.EmptyInstance()
	if e.Relation("T") == nil || e.Relation("T").Len() != 0 {
		t.Error("EmptyInstance wrong")
	}
}

func TestStringRendering(t *testing.T) {
	s := fig1CTable().String()
	for _, want := range []string{"@table T(3)", "global:", "row:", "|"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}

func TestSchemaAndSize(t *testing.T) {
	d := DB(fig1Table())
	s := d.Schema()
	if len(s) != 1 || s[0].Name != "T" || s[0].Arity != 3 {
		t.Errorf("Schema = %v", s)
	}
	if d.Size() != 3 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic")
		}
	}()
	New("T", 2).AddTuple(k("1"))
}

func TestDuplicateTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate table must panic")
		}
	}()
	DB(New("T", 1), New("T", 1))
}

func TestSatisfiableGlobal(t *testing.T) {
	tb := New("T", 1)
	tb.AddTuple(v("x"))
	if !DB(tb).SatisfiableGlobal() {
		t.Error("no condition must be satisfiable")
	}
	tb.Global = cond.Conj(cond.NeqAtom(v("x"), v("x")))
	if DB(tb).SatisfiableGlobal() {
		t.Error("x≠x must be unsatisfiable")
	}
}
