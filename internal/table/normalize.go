package table

import (
	"fmt"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/value"
)

// Normalize incorporates the equalities implied by the global condition
// into the rows (the preprocessing step of Theorem 3.2(1): a variable
// forced equal to a constant is replaced by that constant; variables forced
// equal to each other are merged to one representative) and leaves only the
// residual inequality atoms in the global condition. The second return
// value is false when the global condition is unsatisfiable, in which case
// rep(d) = ∅ and the returned database is nil.
//
// Local conditions are substituted through but otherwise untouched; a
// c-table stays a c-table, a g-table becomes a table-with-inequalities
// (i-table, possibly with repeated variables folded away).
func Normalize(d *Database) (*Database, bool) {
	g := d.GlobalConjunction()
	if len(g) == 0 {
		// Nothing to incorporate: the normalized database is d itself,
		// returned aliased (not copied) — this keeps the per-call cost of
		// the matching/freeze decision paths independent of table size
		// when no global condition is attached. Callers must treat the
		// result as read-only; the public pw.Normalize façade restores
		// the always-independent-copy contract by cloning on alias.
		return d, true
	}
	sub, ok := g.ImpliedBindings()
	if !ok {
		return nil, false
	}
	residual, _ := g.Residual()
	if !residual.Satisfiable() {
		return nil, false
	}
	out := NewDatabase()
	for i, t := range d.tables {
		nt := t.Subst(sub)
		nt.Global = nil
		if i == 0 {
			nt.Global = residual
		}
		out.AddTable(nt)
	}
	return out, true
}

// Freeze replaces every variable x occurring in the database by a fresh
// constant a_x (the K₀ construction in the claim of Theorem 4.1). The
// prefix must be chosen outside the active domains of every database
// involved in the surrounding decision problem; FreshPrefix does this.
// Freeze ignores conditions: callers normalize first so that all equality
// information is incorporated and the residual inequalities are satisfied
// by distinct fresh constants.
func Freeze(d *Database, prefix string) *rel.Instance {
	vars := d.VarIDs(nil, map[sym.ID]bool{})
	sym.SortByName(vars)
	sub := make(map[sym.ID]sym.ID, len(vars))
	for i, v := range vars {
		sub[v] = sym.Const(fmt.Sprintf("%s%d", prefix, i))
	}
	inst := rel.NewInstance()
	var scratch sym.Tuple
	for _, t := range d.tables {
		r := rel.NewRelation(t.Name, t.Arity)
		for _, row := range t.Rows {
			if cap(scratch) < len(row.Values) {
				scratch = make(sym.Tuple, len(row.Values))
			}
			f := scratch[:len(row.Values)]
			for j, v := range row.Values {
				if v.IsVar() {
					f[j] = sub[v.ID()]
				} else {
					f[j] = v.ID()
				}
			}
			r.Insert(f)
		}
		inst.AddRelation(r)
	}
	return inst
}

// freshPrefixOver extends "~z" with "z"s until no name yielded by the
// iterator starts with the prefix. Constant names produced by the library
// never start with '~' unless they came from a previous fresh prefix, so
// one or two rounds suffice. Both pool flavors delegate here so the scheme
// cannot drift between them.
func freshPrefixOver(names func(yield func(string) bool)) string {
	prefix := "~z"
	for {
		clash := false
		names(func(c string) bool {
			if len(c) >= len(prefix) && c[:len(prefix)] == prefix {
				clash = true
				return false
			}
			return true
		})
		if !clash {
			return prefix
		}
		prefix += "z"
	}
}

// FreshPrefix returns a constant-name prefix that no constant in any of the
// given pools starts with.
func FreshPrefix(pools ...[]string) string {
	return freshPrefixOver(func(yield func(string) bool) {
		for _, pool := range pools {
			for _, c := range pool {
				if !yield(c) {
					return
				}
			}
		}
	})
}

// FreshPrefixIDs is FreshPrefix over interned constant pools: it resolves
// names only for the prefix-clash check, never allocating keys per symbol.
func FreshPrefixIDs(pools ...[]sym.ID) string {
	return freshPrefixOver(func(yield func(string) bool) {
		for _, pool := range pools {
			for _, id := range pool {
				if !yield(id.Name()) {
					return
				}
			}
		}
	})
}

// FromInstance lifts a complete-information instance to a (ground)
// database: every fact becomes an unconditioned constant row. rep of the
// result is the singleton {i}.
func FromInstance(i *rel.Instance) *Database {
	d := NewDatabase()
	for _, r := range i.Relations() {
		t := New(r.Name, r.Arity)
		for _, f := range r.Tuples() {
			vals := make(value.Tuple, len(f))
			for j, c := range f {
				vals[j] = value.Of(c)
			}
			t.Rows = append(t.Rows, Row{Values: vals})
		}
		d.AddTable(t)
	}
	return d
}

// EmptyInstance returns the instance with the database's schema and no
// facts (the representative produced by valuations that satisfy the global
// condition but no local condition).
func (d *Database) EmptyInstance() *rel.Instance {
	inst := rel.NewInstance()
	for _, t := range d.tables {
		inst.AddRelation(rel.NewRelation(t.Name, t.Arity))
	}
	return inst
}

// SatisfiableGlobal reports whether the database's combined global
// condition is satisfiable, i.e. whether rep(d) ≠ ∅ (Definition 2.1's
// PTIME emptiness check).
func (d *Database) SatisfiableGlobal() bool {
	return cond.Conjunction(d.GlobalConjunction()).Satisfiable()
}
