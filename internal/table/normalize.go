package table

import (
	"fmt"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/value"
)

// Normalize incorporates the equalities implied by the global condition
// into the rows (the preprocessing step of Theorem 3.2(1): a variable
// forced equal to a constant is replaced by that constant; variables forced
// equal to each other are merged to one representative) and leaves only the
// residual inequality atoms in the global condition. The second return
// value is false when the global condition is unsatisfiable, in which case
// rep(d) = ∅ and the returned database is nil.
//
// Local conditions are substituted through but otherwise untouched; a
// c-table stays a c-table, a g-table becomes a table-with-inequalities
// (i-table, possibly with repeated variables folded away).
func Normalize(d *Database) (*Database, bool) {
	g := d.GlobalConjunction()
	sub, ok := g.ImpliedBindings()
	if !ok {
		return nil, false
	}
	residual, _ := g.Residual()
	if !residual.Satisfiable() {
		return nil, false
	}
	out := NewDatabase()
	for i, t := range d.tables {
		nt := t.Subst(sub)
		nt.Global = nil
		if i == 0 {
			nt.Global = residual
		}
		out.AddTable(nt)
	}
	return out, true
}

// Freeze replaces every variable x occurring in the database by a fresh
// constant a_x (the K₀ construction in the claim of Theorem 4.1). The
// prefix must be chosen outside the active domains of every database
// involved in the surrounding decision problem; FreshPrefix does this.
// Freeze ignores conditions: callers normalize first so that all equality
// information is incorporated and the residual inequalities are satisfied
// by distinct fresh constants.
func Freeze(d *Database, prefix string) *rel.Instance {
	names := d.VarNames()
	sub := make(map[string]value.Value, len(names))
	for i, n := range names {
		sub[n] = value.Const(fmt.Sprintf("%s%d", prefix, i))
	}
	inst := rel.NewInstance()
	for _, t := range d.tables {
		r := rel.NewRelation(t.Name, t.Arity)
		for _, row := range t.Rows {
			f := make(rel.Fact, len(row.Values))
			for j, v := range row.Values {
				if v.IsVar() {
					f[j] = sub[v.Name()].Name()
				} else {
					f[j] = v.Name()
				}
			}
			r.Add(f)
		}
		inst.AddRelation(r)
	}
	return inst
}

// FreshPrefix returns a constant-name prefix that no constant in any of the
// given pools starts with, by extending "~" with enough "z"s. Constant
// names produced by the library never start with '~' unless they came from
// a previous FreshPrefix, so one or two rounds suffice.
func FreshPrefix(pools ...[]string) string {
	prefix := "~z"
	for {
		clash := false
		for _, pool := range pools {
			for _, c := range pool {
				if len(c) >= len(prefix) && c[:len(prefix)] == prefix {
					clash = true
					break
				}
			}
			if clash {
				break
			}
		}
		if !clash {
			return prefix
		}
		prefix += "z"
	}
}

// FromInstance lifts a complete-information instance to a (ground)
// database: every fact becomes an unconditioned constant row. rep of the
// result is the singleton {i}.
func FromInstance(i *rel.Instance) *Database {
	d := NewDatabase()
	for _, r := range i.Relations() {
		t := New(r.Name, r.Arity)
		for _, f := range r.Facts() {
			vals := make(value.Tuple, len(f))
			for j, c := range f {
				vals[j] = value.Const(c)
			}
			t.Rows = append(t.Rows, Row{Values: vals})
		}
		d.AddTable(t)
	}
	return d
}

// EmptyInstance returns the instance with the database's schema and no
// facts (the representative produced by valuations that satisfy the global
// condition but no local condition).
func (d *Database) EmptyInstance() *rel.Instance {
	inst := rel.NewInstance()
	for _, t := range d.tables {
		inst.AddRelation(rel.NewRelation(t.Name, t.Arity))
	}
	return inst
}

// SatisfiableGlobal reports whether the database's combined global
// condition is satisfiable, i.e. whether rep(d) ≠ ∅ (Definition 2.1's
// PTIME emptiness check).
func (d *Database) SatisfiableGlobal() bool {
	return cond.Conjunction(d.GlobalConjunction()).Satisfiable()
}
