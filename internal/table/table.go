// Package table implements the paper's representation hierarchy (§2.2,
// Fig. 1): Codd-tables, e-tables, i-tables, g-tables and c-tables are all
// values of one Table type; Kind classifies a table into the least
// expressive class it belongs to, which is what internal/decide dispatches
// on to select the specialised polynomial-time algorithms.
//
// A Database is an n-vector of tables (the paper's generalization at the
// end of §2.2); the variables of distinct tables must be pairwise disjoint,
// with relationships established only through the global condition.
package table

import (
	"fmt"
	"sort"
	"strings"

	"pw/internal/cond"
	"pw/internal/sym"
	"pw/internal/value"
)

// Kind is the representation class of a table or database, ordered by
// expressiveness. Every table of kind k also belongs to every kind ≥ k in
// the partial order Codd < E,I < G < C (E and I are incomparable; both sit
// below G).
type Kind uint8

const (
	// KindCodd : constants and uniquely occurring variables, no conditions.
	KindCodd Kind = iota
	// KindE : Codd-table plus a conjunction of equalities (equivalently, a
	// table where variables may repeat — the "naive tables" of [1,7,10]).
	KindE
	// KindI : Codd-table plus a global conjunction of inequalities.
	KindI
	// KindG : e-table plus a global conjunction of inequalities.
	KindG
	// KindC : g-table plus per-tuple local conditions.
	KindC
)

// String names the kind as in the paper.
func (k Kind) String() string {
	switch k {
	case KindCodd:
		return "table"
	case KindE:
		return "e-table"
	case KindI:
		return "i-table"
	case KindG:
		return "g-table"
	default:
		return "c-table"
	}
}

// AtMost reports whether k is in the fragment bounded by m, following the
// partial order (E ⋠ I and I ⋠ E).
func (k Kind) AtMost(m Kind) bool {
	if k == m || k == KindCodd {
		return true
	}
	switch m {
	case KindCodd:
		return false
	case KindE, KindI:
		return false // k != m and k != Codd
	case KindG:
		return k == KindE || k == KindI
	default: // KindC
		return true
	}
}

// Row is one tuple of a table together with its local condition (nil means
// the atom true, per the paper's convention).
type Row struct {
	Values value.Tuple
	Cond   cond.Conjunction
}

// NewRow builds an unconditioned row.
func NewRow(vs ...value.Value) Row { return Row{Values: value.NewTuple(vs...)} }

// WithCond returns a copy of the row carrying the given local condition.
func (r Row) WithCond(c cond.Conjunction) Row {
	r.Cond = c
	return r
}

// Clone deep-copies the row.
func (r Row) Clone() Row {
	return Row{Values: r.Values.Clone(), Cond: r.Cond.Clone()}
}

// String renders the row in .pw syntax.
func (r Row) String() string {
	s := make([]string, len(r.Values))
	for i, v := range r.Values {
		s[i] = v.String()
	}
	out := strings.Join(s, " ")
	if len(r.Cond) > 0 {
		out += " | " + r.Cond.String()
	}
	return out
}

// Table is a conditioned table over one relation symbol. With Global and
// all local conditions empty and all variables distinct it is a Codd-table;
// the other classes are obtained by allowing more of the machinery (see
// Kind).
type Table struct {
	Name   string
	Arity  int
	Global cond.Conjunction // conjunction associated with the whole table
	Rows   []Row
}

// New returns an empty table with the given name and arity.
func New(name string, arity int) *Table {
	return &Table{Name: name, Arity: arity}
}

// Add appends a row, panicking on arity mismatch (programming error).
func (t *Table) Add(r Row) *Table {
	if len(r.Values) != t.Arity {
		panic(fmt.Sprintf("table: row %v has arity %d, table %s expects %d",
			r.Values, len(r.Values), t.Name, t.Arity))
	}
	t.Rows = append(t.Rows, r)
	return t
}

// AddTuple appends an unconditioned row of the given values.
func (t *Table) AddTuple(vs ...value.Value) *Table { return t.Add(NewRow(vs...)) }

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	c := New(t.Name, t.Arity)
	c.Global = t.Global.Clone()
	c.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		c.Rows[i] = r.Clone()
	}
	return c
}

// Vars appends all variable names of the table (rows, local conditions,
// global condition) to dst in order of first occurrence (dedup via seen).
func (t *Table) Vars(dst []string, seen map[string]bool) []string {
	dst = t.Global.Vars(dst, seen)
	for _, r := range t.Rows {
		dst = r.Values.Vars(dst, seen)
		dst = r.Cond.Vars(dst, seen)
	}
	return dst
}

// VarIDs appends all variable IDs of the table to dst in order of first
// occurrence (dedup via seen).
func (t *Table) VarIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	dst = t.Global.VarIDs(dst, seen)
	for _, r := range t.Rows {
		dst = r.Values.VarIDs(dst, seen)
		dst = r.Cond.VarIDs(dst, seen)
	}
	return dst
}

// ConstIDs appends all constant IDs of the table to dst (dedup via seen).
func (t *Table) ConstIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	dst = t.Global.ConstIDs(dst, seen)
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v.IsConst() && !seen[v.ID()] {
				seen[v.ID()] = true
				dst = append(dst, v.ID())
			}
		}
		dst = r.Cond.ConstIDs(dst, seen)
	}
	return dst
}

// Consts appends all constant names of the table to dst (dedup via seen).
func (t *Table) Consts(dst []string, seen map[string]bool) []string {
	dst = t.Global.Consts(dst, seen)
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v.IsConst() && !seen[v.Name()] {
				seen[v.Name()] = true
				dst = append(dst, v.Name())
			}
		}
		dst = r.Cond.Consts(dst, seen)
	}
	return dst
}

// HasLocalConds reports whether any row carries a non-trivial local
// condition.
func (t *Table) HasLocalConds() bool {
	for _, r := range t.Rows {
		if len(r.Cond) > 0 && !r.Cond.IsTrue() {
			return true
		}
	}
	return false
}

// varsDistinct reports whether no variable occurs twice among the row
// values of the table (the Codd property). Conditions are not inspected.
func (t *Table) varsDistinct(seen map[string]bool) bool {
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v.IsVar() {
				if seen[v.Name()] {
					return false
				}
				seen[v.Name()] = true
			}
		}
	}
	return true
}

// Kind classifies the table into the least expressive class it
// syntactically belongs to. Repeated variables in rows are treated as
// incorporated equalities (standard practice, per the paper), so a
// condition-free table with repeated variables is an e-table.
func (t *Table) Kind() Kind {
	if t.HasLocalConds() {
		return KindC
	}
	distinct := t.varsDistinct(map[string]bool{})
	hasEq, hasNeq := false, false
	for _, a := range t.Global {
		if a.TriviallyTrue() {
			continue
		}
		if a.Op == cond.Eq {
			hasEq = true
		} else {
			hasNeq = true
		}
	}
	eq := hasEq || !distinct
	switch {
	case !eq && !hasNeq:
		return KindCodd
	case eq && !hasNeq:
		return KindE
	case !eq && hasNeq:
		return KindI
	default:
		return KindG
	}
}

// Subst applies a substitution to rows, local conditions and the global
// condition, returning a new table.
func (t *Table) Subst(s value.Subst) *Table {
	c := New(t.Name, t.Arity)
	c.Global = t.Global.Subst(s)
	c.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		vals := make(value.Tuple, len(r.Values))
		for j, v := range r.Values {
			if v.IsVar() {
				if w, ok := s[v]; ok {
					vals[j] = w
					continue
				}
			}
			vals[j] = v
		}
		c.Rows[i] = Row{Values: vals, Cond: r.Cond.Subst(s)}
	}
	return c
}

// String renders the table in .pw syntax.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "@table %s(%d)", t.Name, t.Arity)
	if len(t.Global) > 0 {
		fmt.Fprintf(&b, "\n  global: %s", t.Global.String())
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "\n  row: %s", r.String())
	}
	return b.String()
}

// Database is a vector of conditioned tables over distinct relation names.
// The paper requires the variables of member tables to be pairwise
// disjoint; Validate checks this.
type Database struct {
	tables []*Table
	index  map[string]int
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{index: make(map[string]int)} }

// DB builds a database from tables (convenience).
func DB(ts ...*Table) *Database {
	d := NewDatabase()
	for _, t := range ts {
		d.AddTable(t)
	}
	return d
}

// AddTable inserts t; it panics on duplicate names.
func (d *Database) AddTable(t *Table) *Table {
	if _, ok := d.index[t.Name]; ok {
		panic("table: duplicate table " + t.Name)
	}
	d.index[t.Name] = len(d.tables)
	d.tables = append(d.tables, t)
	return t
}

// Table returns the table named name, or nil.
func (d *Database) Table(name string) *Table {
	if i, ok := d.index[name]; ok {
		return d.tables[i]
	}
	return nil
}

// Tables returns the member tables in insertion order.
func (d *Database) Tables() []*Table { return d.tables }

// Clone deep-copies the database.
func (d *Database) Clone() *Database {
	c := NewDatabase()
	for _, t := range d.tables {
		c.AddTable(t.Clone())
	}
	return c
}

// Kind returns the least class containing every member table, also
// accounting for global conditions that span tables: a database whose
// members are individually Codd but which shares variables across tables
// is classified by the joint conditions.
func (d *Database) Kind() Kind {
	k := KindCodd
	join := func(m Kind) {
		// Join in the partial order; E ∨ I = G.
		if m == k || m.AtMost(k) {
			return
		}
		if k.AtMost(m) {
			k = m
			return
		}
		k = KindG
		if m == KindC {
			k = KindC
		}
	}
	for _, t := range d.tables {
		join(t.Kind())
	}
	// Cross-table repeated variables act as equalities.
	if k == KindCodd || k == KindI {
		seen := map[string]bool{}
		for _, t := range d.tables {
			if !t.varsDistinct(seen) {
				join(KindE)
				break
			}
		}
	}
	return k
}

// Vars appends all variable names of the database to dst (dedup via seen).
func (d *Database) Vars(dst []string, seen map[string]bool) []string {
	for _, t := range d.tables {
		dst = t.Vars(dst, seen)
	}
	return dst
}

// VarNames returns the sorted set of variable names.
func (d *Database) VarNames() []string {
	vs := d.Vars(nil, map[string]bool{})
	sort.Strings(vs)
	return vs
}

// VarIDs appends all variable IDs of the database to dst (dedup via seen).
func (d *Database) VarIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	for _, t := range d.tables {
		dst = t.VarIDs(dst, seen)
	}
	return dst
}

// Universe returns the database's symbol universe: its variables, sorted
// by name for canonical enumeration order, with dense valuation slots.
func (d *Database) Universe() *sym.Universe {
	vs := d.VarIDs(nil, map[sym.ID]bool{})
	sym.SortByName(vs)
	return sym.NewUniverse(vs)
}

// ConstIDs appends all constant IDs of the database to dst (dedup via
// seen): the Δ of Proposition 2.1 in interned form.
func (d *Database) ConstIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	for _, t := range d.tables {
		dst = t.ConstIDs(dst, seen)
	}
	return dst
}

// Consts appends all constant names of the database to dst (dedup via
// seen): the Δ of Proposition 2.1.
func (d *Database) Consts(dst []string, seen map[string]bool) []string {
	for _, t := range d.tables {
		dst = t.Consts(dst, seen)
	}
	return dst
}

// ConstNames returns the sorted set of constant names.
func (d *Database) ConstNames() []string {
	cs := d.Consts(nil, map[string]bool{})
	sort.Strings(cs)
	return cs
}

// GlobalConjunction returns the conjunction of all member tables' global
// conditions (the database-level global condition).
func (d *Database) GlobalConjunction() cond.Conjunction {
	var out cond.Conjunction
	for _, t := range d.tables {
		out = append(out, t.Global...)
	}
	return out
}

// Size returns the total number of rows.
func (d *Database) Size() int {
	n := 0
	for _, t := range d.tables {
		n += len(t.Rows)
	}
	return n
}

// Validate checks structural invariants: arities respected (enforced on
// Add) and row variables pairwise disjoint across distinct tables when the
// claimed kind is at most g-table... disjointness is required by the paper
// for vectors, with cross-table relationships expressed in conditions.
// Validate returns an error describing the first violation, or nil.
func (d *Database) Validate() error {
	seen := map[string]string{} // var -> first table
	for _, t := range d.tables {
		local := map[string]bool{}
		for _, r := range t.Rows {
			for _, v := range r.Values {
				if !v.IsVar() {
					continue
				}
				if prev, ok := seen[v.Name()]; ok && prev != t.Name {
					return fmt.Errorf("table: variable ?%s occurs in both %s and %s rows; vector tables must use disjoint variables (link them via conditions)",
						v.Name(), prev, t.Name)
				}
				if _, ok := seen[v.Name()]; !ok {
					seen[v.Name()] = t.Name
				}
				local[v.Name()] = true
			}
		}
	}
	return nil
}

// String renders all member tables.
func (d *Database) String() string {
	parts := make([]string, len(d.tables))
	for i, t := range d.tables {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n")
}

// Schema describes relation names and arities; both instances and
// databases expose one for compatibility checks.
type Schema []SchemaRel

// SchemaRel is one relation's name and arity.
type SchemaRel struct {
	Name  string
	Arity int
}

// Schema returns the database's schema in insertion order.
func (d *Database) Schema() Schema {
	s := make(Schema, len(d.tables))
	for i, t := range d.tables {
		s[i] = SchemaRel{Name: t.Name, Arity: t.Arity}
	}
	return s
}
