// Property tests pinning the vertical-split rule and the
// attribute-level normalization invariants:
//
//   - Normalize preserves the represented world set exactly: for seeded
//     random component builds (both granularities, overlap included),
//     Expand after Normalize equals a reference expansion computed
//     directly from the unnormalized component specs;
//   - attribute splits preserve Count exactly, at big.Int scale;
//   - the counting certificate really gates the rewrite: full per-slot
//     products factor into templates, near-products and XOR patterns
//     stay atomic.
package wsd_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pw/internal/gen"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/wsd"
)

// compSpec is one unnormalized component at the test's boundary: either
// explicit alternatives or a template over relation R.
type compSpec struct {
	alts  []wsd.Alt
	cells [][]string
}

// refExpand computes the represented world set straight from the specs
// — the definitional semantics rep = {C₁ ∪ … ∪ Cₘ}, with template
// components contributing every instantiation as a singleton fragment —
// deduplicated by canonical fact-set key. It shares no code with the
// engine's Normalize/Expand.
func refExpand(specs []compSpec) map[string]bool {
	fragments := make([][][]string, 0, len(specs)) // per comp: choice -> fact keys
	for _, s := range specs {
		var choices [][]string
		if s.cells != nil {
			insts := [][]string{nil}
			for _, cell := range s.cells {
				var next [][]string
				for _, base := range insts {
					for _, v := range cell {
						next = append(next, append(append([]string(nil), base...), v))
					}
				}
				insts = next
			}
			for _, args := range insts {
				choices = append(choices, []string{"R(" + strings.Join(args, " ") + ")"})
			}
		} else {
			for _, alt := range s.alts {
				var facts []string
				for _, f := range alt {
					facts = append(facts, f.String())
				}
				choices = append(choices, facts)
			}
		}
		fragments = append(fragments, choices)
	}

	worlds := map[string]bool{}
	var walk func(ci int, acc map[string]bool)
	walk = func(ci int, acc map[string]bool) {
		if ci == len(fragments) {
			keys := make([]string, 0, len(acc))
			for k := range acc {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			worlds[strings.Join(keys, ";")] = true
			return
		}
		for _, facts := range fragments[ci] {
			next := make(map[string]bool, len(acc)+len(facts))
			for k := range acc {
				next[k] = true
			}
			for _, f := range facts {
				next[f] = true
			}
			walk(ci+1, next)
		}
	}
	walk(0, map[string]bool{})
	return worlds
}

// worldKey renders an instance in the reference expander's key format.
func worldKey(i *rel.Instance) string {
	var keys []string
	for _, r := range i.Relations() {
		for _, f := range r.Facts() {
			keys = append(keys, r.Name+"("+strings.Join(f, " ")+")")
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// buildSpecs generates a random unnormalized component list over a tiny
// constant pool (overlaps are likely and intentional).
func buildSpecs(seed int64) []compSpec {
	rng := rand.New(rand.NewSource(seed))
	var specs []compSpec
	comps := 1 + rng.Intn(4)
	for c := 0; c < comps; c++ {
		if rng.Intn(2) == 0 {
			cells := make([][]string, 2)
			for i := range cells {
				n := 1 + rng.Intn(3)
				vals := make([]string, n)
				for k := range vals {
					vals[k] = fmt.Sprintf("c%d", rng.Intn(4))
				}
				cells[i] = vals
			}
			specs = append(specs, compSpec{cells: cells})
			continue
		}
		nAlts := 1 + rng.Intn(3)
		alts := make([]wsd.Alt, nAlts)
		for a := range alts {
			nFacts := rng.Intn(3)
			alt := make(wsd.Alt, 0, nFacts)
			for f := 0; f < nFacts; f++ {
				alt = append(alt, wsd.Fact{Rel: "R",
					Args: rel.Fact{fmt.Sprintf("c%d", rng.Intn(4)), fmt.Sprintf("c%d", rng.Intn(4))}})
			}
			alts[a] = alt
		}
		specs = append(specs, compSpec{alts: alts})
	}
	return specs
}

// TestNormalizePreservesRep is the round-trip property: for seeded
// random builds, the normalized decomposition expands to exactly the
// reference world set, world for world, and Count matches its size.
func TestNormalizePreservesRep(t *testing.T) {
	tested := 0
	for seed := int64(1); tested < 200 && seed < 2000; seed++ {
		specs := buildSpecs(seed)
		want := refExpand(specs)
		if len(want) > 500 {
			continue
		}
		w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
		for _, s := range specs {
			var err error
			if s.cells != nil {
				err = w.AddTemplateComponent("R", s.cells...)
			} else {
				err = w.AddComponent(s.alts...)
			}
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if err := w.Normalize(); err != nil {
			continue // entanglement guard: legal refusal, not a wrong answer
		}
		if got := w.Count(); !got.IsInt64() || got.Int64() != int64(len(want)) {
			t.Fatalf("seed %d: Count = %s, reference has %d worlds\n%s", seed, got, len(want), w)
		}
		seen := map[string]bool{}
		for _, inst := range w.Expand(0) {
			k := worldKey(inst)
			if !want[k] {
				t.Fatalf("seed %d: Expand produced a world outside the reference set: %q\n%s", seed, k, w)
			}
			if seen[k] {
				t.Fatalf("seed %d: Expand produced duplicate world %q", seed, k)
			}
			seen[k] = true
		}
		if len(seen) != len(want) {
			t.Fatalf("seed %d: Expand yielded %d distinct worlds, reference has %d", seed, len(seen), len(want))
		}
		// Idempotence: a second normalization cannot change the canonical
		// printed form.
		s1 := w.String()
		if err := w.Normalize(); err != nil {
			t.Fatalf("seed %d: re-Normalize: %v", seed, err)
		}
		if s2 := w.String(); s2 != s1 {
			t.Fatalf("seed %d: printed form drifted across re-Normalize:\n%s\nvs\n%s", seed, s1, s2)
		}
		tested++
	}
	if tested < 200 {
		t.Fatalf("only %d property cases generated, want 200", tested)
	}
}

// TestVerticalSplitCertifiesProduct pins the rewrite itself: a
// tuple-level component whose alternatives are exactly a 2×3 per-slot
// product must normalize into one attribute-level template, preserving
// Count.
func TestVerticalSplitCertifiesProduct(t *testing.T) {
	w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
	var alts []wsd.Alt
	for _, a := range []string{"x", "y"} {
		for _, b := range []string{"1", "2", "3"} {
			alts = append(alts, wsd.Alt{{Rel: "R", Args: rel.Fact{a, b}}})
		}
	}
	if err := w.AddComponent(alts...); err != nil {
		t.Fatal(err)
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	if w.Components() != 1 || !w.IsTemplate(0) {
		t.Fatalf("full product did not factor into a template:\n%s", w)
	}
	if got := w.Count().Int64(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	relName, cells, ok := w.TemplateSlots(0)
	if !ok || relName != "R" || len(cells) != 2 || len(cells[0]) != 2 || len(cells[1]) != 3 {
		t.Fatalf("TemplateSlots = %s %v %v, want R with 2×3 slots", relName, cells, ok)
	}
	if !strings.Contains(w.String(), "tmpl: R({x|y} {1|2|3})") {
		t.Fatalf("canonical print missing the template line:\n%s", w)
	}
}

// TestVerticalSplitDeclinesNonProducts: near-products must stay
// tuple-level — the counting certificate, not a heuristic, gates the
// rewrite.
func TestVerticalSplitDeclinesNonProducts(t *testing.T) {
	cases := [][]wsd.Alt{
		// Diagonal: {a1, b2} — product would be 4.
		{{{Rel: "R", Args: rel.Fact{"a", "1"}}}, {{Rel: "R", Args: rel.Fact{"b", "2"}}}},
		// Missing one corner of a 2×2 product (an attr-level XOR shape).
		{{{Rel: "R", Args: rel.Fact{"a", "1"}}}, {{Rel: "R", Args: rel.Fact{"a", "2"}}}, {{Rel: "R", Args: rel.Fact{"b", "1"}}}},
	}
	for ci, alts := range cases {
		w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
		if err := w.AddComponent(alts...); err != nil {
			t.Fatal(err)
		}
		if err := w.Normalize(); err != nil {
			t.Fatal(err)
		}
		if w.Components() != 1 {
			t.Fatalf("case %d: non-product split into %d components:\n%s", ci, w.Components(), w)
		}
		if w.IsTemplate(0) {
			t.Fatalf("case %d: non-product factored into a template:\n%s", ci, w)
		}
		if got := w.Count().Int64(); got != int64(len(alts)) {
			t.Fatalf("case %d: Count = %d, want %d", ci, got, len(alts))
		}
	}
}

// TestNormalizeKeepsMultiFactXORAtomic re-pins the horizontal
// counterpart on the same guard: pairwise independent but jointly
// dependent multi-fact alternatives must neither split nor factor.
func TestNormalizeKeepsMultiFactXORAtomic(t *testing.T) {
	w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
	f := func(a string) wsd.Fact { return wsd.Fact{Rel: "R", Args: rel.Fact{a, "1"}} }
	if err := w.AddComponent(
		wsd.Alt{},
		wsd.Alt{f("x"), f("y")},
		wsd.Alt{f("x"), f("z")},
		wsd.Alt{f("y"), f("z")},
	); err != nil {
		t.Fatal(err)
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	if w.Components() != 1 || w.IsTemplate(0) {
		t.Fatalf("XOR pattern did not stay one atomic tuple-level component:\n%s", w)
	}
	if got := w.Count().Int64(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
}

// TestAttrCountBigInt: attribute splits preserve Count at a scale only
// big.Int can hold — the 2^100 century decomposition, counted exactly.
func TestAttrCountBigInt(t *testing.T) {
	w := gen.CenturyWSD()
	want := new(big.Int).Exp(big.NewInt(2), big.NewInt(100), nil)
	if got := w.Count(); got.Cmp(want) != 0 {
		t.Fatalf("Count = %s, want 2^100 = %s", got, want)
	}
	if got := w.Components(); got != 101 {
		t.Fatalf("Components = %d, want 101 (100 templates + the certain hub)", got)
	}
	// The support is 201 facts (hub + 100 templates × 2 instantiations),
	// never the 2^100-world expansion.
	if got := w.Size(); got != 201 {
		t.Fatalf("Size = %d, want 201", got)
	}
	// A sampled world is a member; a two-instantiation probe is not
	// jointly possible.
	s := w.Sample(rand.New(rand.NewSource(1)))
	if !w.Member(s) {
		t.Fatal("sampled world rejected")
	}
	p := rel.NewInstance()
	r := p.EnsureRelation("R", 2)
	r.AddRow("s000", "hi")
	r.AddRow("s000", "lo")
	if w.Possible(p) {
		t.Fatal("two instantiations of one template jointly possible")
	}
}

// TestAddTemplateComponentValidation: slot values that would not
// survive the printed form's round trip (reserved characters of the
// slot grammar) are rejected at the builder, matching the parser's
// strictness — "hi|lo" stored as one value would print as a two-value
// braced list and silently denote a different world set.
func TestAddTemplateComponentValidation(t *testing.T) {
	for _, bad := range []string{"hi|lo", "a{b", "a}b", "a,b", "a(b", "a b", "", "?x"} {
		w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
		if err := w.AddTemplateComponent("R", []string{"s1"}, []string{bad, "x"}); err == nil {
			t.Errorf("slot value %q accepted; it cannot round-trip through the tmpl grammar", bad)
		}
	}
	w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
	if err := w.AddTemplateComponent("S", []string{"a"}, []string{"b"}); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := w.AddTemplateComponent("R", []string{"a"}); err == nil {
		t.Error("slot-count/arity mismatch accepted")
	}
}

// TestTemplateOverlapMerges: templates sharing an instantiation are
// dependent and must merge (then re-factor only as far as the counting
// argument allows), keeping Count exact.
func TestTemplateOverlapMerges(t *testing.T) {
	w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
	if err := w.AddTemplateComponent("R", []string{"a", "b"}, []string{"1"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTemplateComponent("R", []string{"b", "c"}, []string{"1"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Choices: {a1,b1}, {a1,c1}, {b1}, {b1,c1} — 4 distinct worlds.
	if got := w.Count().Int64(); got != 4 {
		t.Fatalf("Count = %d, want 4\n%s", got, w)
	}
}
