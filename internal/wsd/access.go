// Read-only structural accessors over a normalized decomposition. They
// expose the component/alternative structure and the support at the
// boundary-fact level, so consumers outside the package — chiefly the
// lifted query evaluator of internal/wsdalg — can walk a decomposition
// without enumerating worlds and without reaching into the interned
// representation.
package wsd

import "pw/internal/rel"

// Support returns every fact stored in the decomposition, in canonical
// display order. On a normalized decomposition the support is exactly
// the set of possible facts: every stored fact occurs in some
// alternative, and the other components are independent.
func (w *WSD) Support() []Fact {
	w.ensure()
	out := make([]Fact, len(w.facts))
	for id := range w.facts {
		out[id] = w.resolve(int32(id))
	}
	return out
}

// CertainFacts returns the facts present in every world, in canonical
// display order. On the empty world set it returns nil (there is no
// canonical certain set; callers that want the vacuous reading check
// Empty themselves).
func (w *WSD) CertainFacts() []Fact {
	w.ensure()
	var out []Fact
	for id := range w.facts {
		if w.certain[id] {
			out = append(out, w.resolve(int32(id)))
		}
	}
	return out
}

// AltCount returns the number of alternatives of component ci.
func (w *WSD) AltCount(ci int) int {
	w.ensure()
	return len(w.comps[ci].alts)
}

// AltFacts returns alternative ai of component ci as a fresh fact slice
// in canonical (fact-ID) order. The empty alternative returns nil.
func (w *WSD) AltFacts(ci, ai int) []Fact {
	w.ensure()
	alt := w.comps[ci].alts[ai]
	out := make([]Fact, len(alt))
	for k, id := range alt {
		out[k] = w.resolve(id)
	}
	return out
}

// FactComponent returns the index of the component whose support
// contains the given fact, or ok=false when the fact is outside the
// support (equivalently: impossible). Never grows the intern tables.
func (w *WSD) FactComponent(relName string, f rel.Fact) (int, bool) {
	w.ensure()
	if w.empty {
		return 0, false
	}
	id, ok := w.lookupBoundary(relName, f)
	if !ok {
		return 0, false
	}
	return int(w.factComp[id]), true
}

// HasAlternative reports whether the given fact set (order- and
// duplicate-insensitive) is exactly one of component ci's alternatives.
// Facts outside the support make the answer false (they can be in no
// alternative).
func (w *WSD) HasAlternative(ci int, facts []Fact) bool {
	w.ensure()
	ids := make([]int32, 0, len(facts))
	for _, f := range facts {
		id, ok := w.lookupBoundary(f.Rel, f.Args)
		if !ok {
			return false
		}
		ids = append(ids, id)
	}
	return w.comps[ci].hasAlt(sortDedupIDs(ids))
}
