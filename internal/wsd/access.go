// Read-only structural accessors over a normalized decomposition. They
// expose the component/alternative structure and the support at the
// boundary-fact level, so consumers outside the package — chiefly the
// lifted query evaluator of internal/wsdalg — can walk a decomposition
// without enumerating worlds and without reaching into the interned
// representation. Attribute-level components answer these queries from
// their templates; accessors that genuinely enumerate (Support,
// AltFacts over every index) cost output size, while the template
// accessors (IsTemplate, TemplateSlots) let slot-aware consumers avoid
// the product entirely.
package wsd

import (
	"math"
	"sort"

	"pw/internal/rel"
	"pw/internal/sym"
)

// Support returns every fact in the decomposition's support, in
// canonical display order. On a normalized decomposition the support is
// exactly the set of possible facts: every stored fact occurs in some
// alternative, every template instantiation in some slot choice, and
// the other components are independent. Attribute-level components
// contribute their full instantiation sets, so the result is
// output-sized — Π|slot| facts per template.
func (w *WSD) Support() []Fact {
	w.ensure()
	out := make([]Fact, 0, len(w.facts))
	for id := range w.facts {
		if w.factComp[id] < 0 {
			continue // hole left by an update: outside the support
		}
		out = append(out, w.resolve(int32(id)))
	}
	for _, c := range w.comps {
		a := c.attr
		if a == nil {
			continue
		}
		n, ok := a.countInt()
		if !ok {
			panic("wsd: Support on a template with more instantiations than fit an int")
		}
		for ai := 0; ai < n; ai++ {
			out = append(out, Fact{Rel: w.schema[a.rel].Name, Args: rel.ResolveFact(a.tupleAt(ai))})
		}
	}
	if w.attrByRel != nil || w.factsLoose {
		sort.Slice(out, func(i, j int) bool { return factBoundaryLess(out[i], out[j], w.schemaIdx) })
	}
	return out
}

// SupportSize returns the number of facts Support would enumerate; ok
// is false when a template's instantiation count overflows int (the
// regime where Support would panic). Callers that materialize the
// support check this first and surface an error instead.
func (w *WSD) SupportSize() (n int, ok bool) {
	w.ensure()
	n = len(w.facts) - w.holes
	for _, c := range w.comps {
		if c.attr == nil {
			continue
		}
		k, kOK := c.attr.countInt()
		if !kOK || n > math.MaxInt-k {
			return math.MaxInt, false
		}
		n += k
	}
	return n, true
}

// factBoundaryLess mirrors factLess on boundary facts: schema position
// first, then the tuple by symbol name.
func factBoundaryLess(a, b Fact, schemaIdx map[string]int) bool {
	if ra, rb := schemaIdx[a.Rel], schemaIdx[b.Rel]; ra != rb {
		return ra < rb
	}
	return a.Args.Compare(b.Args) < 0
}

// CertainFacts returns the facts present in every world, in canonical
// display order. Template instantiations are never certain (a
// normalized template keeps at least two alternatives). On the empty
// world set it returns nil (there is no canonical certain set; callers
// that want the vacuous reading check Empty themselves).
func (w *WSD) CertainFacts() []Fact {
	w.ensure()
	var out []Fact
	for id := range w.facts {
		if w.certain[id] {
			out = append(out, w.resolve(int32(id)))
		}
	}
	if w.factsLoose {
		sort.Slice(out, func(i, j int) bool { return factBoundaryLess(out[i], out[j], w.schemaIdx) })
	}
	return out
}

// AltCount returns the number of alternatives of component ci. For an
// attribute-level component this is the product of its slot domain
// sizes, saturating at the int maximum (see Count for exactness).
func (w *WSD) AltCount(ci int) int {
	w.ensure()
	return w.comps[ci].altCount()
}

// AltFacts returns alternative ai of component ci as a fresh fact slice
// in canonical (fact-ID) order. The empty alternative returns nil; an
// attribute-level component's alternative is the single instantiation
// selected by ai in odometer order over its slots.
func (w *WSD) AltFacts(ci, ai int) []Fact {
	w.ensure()
	if a := w.comps[ci].attr; a != nil {
		return []Fact{{Rel: w.schema[a.rel].Name, Args: rel.ResolveFact(a.tupleAt(ai))}}
	}
	alt := w.comps[ci].alts[ai]
	out := make([]Fact, len(alt))
	for k, id := range alt {
		out[k] = w.resolve(id)
	}
	return out
}

// IsTemplate reports whether component ci is attribute-level: one fact
// template whose alternatives are the cross product of per-slot value
// lists.
func (w *WSD) IsTemplate(ci int) bool {
	w.ensure()
	return w.comps[ci].attr != nil
}

// TemplateSlots returns the template of an attribute-level component:
// its relation name and one sorted value list per slot. ok is false for
// tuple-level components. The returned slices are owned by the WSD;
// callers must not mutate them. Slot-aware consumers (the wsdalg
// evaluator) use this to push σ/π/ρ through the factored form without
// expanding the field product.
func (w *WSD) TemplateSlots(ci int) (relName string, cells [][]sym.ID, ok bool) {
	w.ensure()
	a := w.comps[ci].attr
	if a == nil {
		return "", nil, false
	}
	return w.schema[a.rel].Name, a.cells, true
}

// FactComponent returns the index of the component whose support
// contains the given fact, or ok=false when the fact is outside the
// support (equivalently: impossible). Never grows the intern tables.
func (w *WSD) FactComponent(relName string, f rel.Fact) (int, bool) {
	w.ensure()
	if w.empty {
		return 0, false
	}
	if id, ok := w.lookupBoundary(relName, f); ok && w.factComp[id] >= 0 {
		return int(w.factComp[id]), true
	}
	ci, ok := w.attrOwnerBoundary(relName, f)
	return int(ci), ok
}

// HasAlternative reports whether the given fact set (order- and
// duplicate-insensitive) is exactly one of component ci's alternatives.
// Facts outside the support make the answer false (they can be in no
// alternative). For an attribute-level component the alternatives are
// exactly the singleton instantiations of its template.
func (w *WSD) HasAlternative(ci int, facts []Fact) bool {
	w.ensure()
	if a := w.comps[ci].attr; a != nil {
		if len(facts) == 0 {
			return false
		}
		first := facts[0]
		for _, f := range facts[1:] {
			if f.Rel != first.Rel || !f.Args.Equal(first.Args) {
				return false
			}
		}
		if first.Rel != w.schema[a.rel].Name || len(first.Args) != len(a.cells) {
			return false
		}
		t := make(sym.Tuple, len(first.Args))
		for i, c := range first.Args {
			id, ok := sym.LookupConst(c)
			if !ok {
				return false
			}
			t[i] = id
		}
		return a.contains(t)
	}
	ids := make([]int32, 0, len(facts))
	for _, f := range facts {
		id, ok := w.lookupBoundary(f.Rel, f.Args)
		if !ok {
			return false
		}
		ids = append(ids, id)
	}
	return w.comps[ci].hasAlt(sortDedupIDs(ids))
}
