// FromWorlds: the oracle-facing constructor. It factorizes an explicit
// finite world list into product-normal form — the bridge between the
// enumeration backend (internal/worlds) and the decomposition backend,
// used by the differential tests to prove the two agree.
package wsd

import (
	"fmt"

	"pw/internal/rel"
	"pw/internal/table"
)

// FromWorlds factorizes a finite set of worlds (given as a list, possibly
// with duplicates) into a normalized decomposition with
// rep(FromWorlds(W)) = W exactly: every split the factorizer performs is
// verified by a counting argument, so Count equals |W| and
// Expand reproduces W up to order.
//
// All worlds must share a schema (same relation names and arities); an
// empty list yields the decomposition of the empty world set.
func FromWorlds(ws []*rel.Instance) (*WSD, error) {
	if len(ws) == 0 {
		w := New(nil)
		w.empty = true
		return w, nil
	}
	schema := schemaOfInstance(ws[0])
	w := New(schema)
	for wi, inst := range ws {
		if wi > 0 && !w.schemaMatches(inst) {
			return nil, fmt.Errorf("wsd: world %d has a different schema than world 0", wi)
		}
	}

	// One component whose alternatives are the distinct worlds; Normalize
	// deduplicates and factors it into independent components.
	alts := make([][]int32, 0, len(ws))
	for _, inst := range ws {
		var ids []int32
		for _, r := range inst.Relations() {
			ri := int32(w.schemaIdx[r.Name])
			for _, t := range r.Tuples() {
				ids = append(ids, w.intern(ri, t))
			}
		}
		alts = append(alts, sortDedupIDs(ids))
	}
	w.comps = []component{{alts: alts}}
	w.normalized = false
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

// schemaOfInstance reads an instance's relations as a schema in
// declaration order.
func schemaOfInstance(i *rel.Instance) table.Schema {
	s := make(table.Schema, 0, len(i.Relations()))
	for _, r := range i.Relations() {
		s = append(s, table.SchemaRel{Name: r.Name, Arity: r.Arity})
	}
	return s
}
