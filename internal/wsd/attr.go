// Attribute-level components: the second factoring axis of a
// decomposition. Where a tuple-level component lists whole-fact
// alternatives explicitly, an attribute-level component stores one fact
// template over a relation together with a per-slot alternative list,
// and its tuple-level alternatives are the cross product of the slot
// choices — materialized lazily, never stored. A template R(a {1|2|3} b)
// denotes the three singleton alternatives {R(a 1 b)}, {R(a 2 b)},
// {R(a 3 b)}; a template with several open slots denotes the full
// product of its slot domains in Π|slotᵢ| alternatives held in Σ|slotᵢ|
// symbols.
//
// This is the attribute-level refinement of the world-set-decomposition
// papers (Antova, Koch & Olteanu, "10^(10^6) Worlds and Beyond";
// Olteanu, Koch & Antova, "World-set decompositions: expressiveness and
// efficient algorithms"): per-field independence is the common shape of
// real uncertain data, and factoring it at the slot level is
// exponentially more succinct than tuple-level alternatives while every
// decision procedure (Count, MEMB, POSS, CERT, Sample) stays polynomial
// in the decomposition size. Normalize converts tuple-level components
// into this form whenever a counting argument certifies that the
// alternative set is exactly a per-slot product (the vertical split,
// see normalize.go).
//
// Invariants after Normalize: every cell's value list is sorted
// (sym.Compare order) and duplicate-free, at least one cell has two or
// more values (all-fixed templates fold into the certain component),
// and the template's instantiation set is disjoint from every other
// component's support. An attribute-level component contributes exactly
// one fact to every world.
package wsd

import (
	"fmt"
	"math"
	"math/big"
	"sort"
	"strings"

	"pw/internal/sym"
)

// attrComp is the attribute-level component body: one fact template over
// schema relation rel whose slot i ranges over cells[i].
type attrComp struct {
	rel   int32
	cells [][]sym.ID
}

// clone deep-copies the template.
func (a *attrComp) clone() *attrComp {
	c := &attrComp{rel: a.rel, cells: make([][]sym.ID, len(a.cells))}
	for i, cell := range a.cells {
		c.cells[i] = append([]sym.ID(nil), cell...)
	}
	return c
}

// countInt returns the number of alternatives (the product of the slot
// domain sizes). ok is false when the product overflows int, in which
// case the count saturates at math.MaxInt — callers that enumerate
// alternatives by index must check ok, while decision procedures use
// count (exact, big.Int) instead.
func (a *attrComp) countInt() (n int, ok bool) {
	n = 1
	for _, cell := range a.cells {
		if len(cell) == 0 {
			return 0, true
		}
		if n > math.MaxInt/len(cell) {
			return math.MaxInt, false
		}
		n *= len(cell)
	}
	return n, true
}

// count returns the exact alternative count as a big integer.
func (a *attrComp) count() *big.Int {
	n := big.NewInt(1)
	for _, cell := range a.cells {
		n.Mul(n, big.NewInt(int64(len(cell))))
	}
	return n
}

// contains reports whether the tuple is one of the template's
// instantiations: a positionwise slot-domain membership test, no
// expansion.
func (a *attrComp) contains(t sym.Tuple) bool {
	if len(t) != len(a.cells) {
		return false
	}
	for i, id := range t {
		if !cellHas(a.cells[i], id) {
			return false
		}
	}
	return true
}

// cellHas reports membership of id in a sorted cell value list.
func cellHas(cell []sym.ID, id sym.ID) bool {
	if len(cell) == 1 {
		return cell[0] == id
	}
	j := sort.Search(len(cell), func(k int) bool { return sym.Compare(cell[k], id) >= 0 })
	return j < len(cell) && cell[j] == id
}

// tupleAt materializes the alternative with index ai (odometer order,
// last slot fastest — matching Each's enumeration) into a fresh tuple.
// ai must be in range; the caller has checked countInt.
func (a *attrComp) tupleAt(ai int) sym.Tuple {
	t := make(sym.Tuple, len(a.cells))
	for i := len(a.cells) - 1; i >= 0; i-- {
		cell := a.cells[i]
		t[i] = cell[ai%len(cell)]
		ai /= len(cell)
	}
	return t
}

// minTuple returns the template's smallest instantiation (cells are
// sorted, so it is the tuple of first values) — the canonical ordering
// key of the component.
func (a *attrComp) minTuple() sym.Tuple {
	t := make(sym.Tuple, len(a.cells))
	for i, cell := range a.cells {
		t[i] = cell[0]
	}
	return t
}

// sortDedupCell sorts a slot's value list by symbol order and removes
// duplicates in place.
func sortDedupCell(cell []sym.ID) []sym.ID {
	sort.Slice(cell, func(i, j int) bool { return sym.Compare(cell[i], cell[j]) < 0 })
	out := cell[:0]
	for i, id := range cell {
		if i == 0 || id != cell[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// AddTemplateComponent appends an attribute-level component: one fact
// template over relName whose slot i ranges over cells[i]. The
// component's alternatives are the cross product of the slot choices,
// each a singleton fact-set — every world contains exactly one
// instantiation of the template. A slot with a single value is a fixed
// attribute; a slot with no values makes the component offer no
// alternative at all, collapsing the decomposition to the empty world
// set (mirroring AddComponent with zero alternatives).
//
// Like AddComponent, this leaves the decomposition denormalized:
// Normalize deduplicates slot values, merges the template with any
// component whose support overlaps its instantiation set, and folds
// all-fixed templates into the certain component.
//
// Slot values must be plain constants — non-empty, no whitespace, none
// of the slot grammar's reserved characters — so the printed form
// (String / PrintWSD) always re-parses to the same world set; a value
// like "hi|lo" would print as a braced list of two values and silently
// denote a different set.
func (w *WSD) AddTemplateComponent(relName string, cells ...[]string) error {
	ri, ok := w.schemaIdx[relName]
	if !ok {
		return fmt.Errorf("wsd: template references unknown relation %s", relName)
	}
	if len(cells) != w.schema[ri].Arity {
		return fmt.Errorf("wsd: template for %s has %d slots, relation expects %d",
			relName, len(cells), w.schema[ri].Arity)
	}
	a := &attrComp{rel: int32(ri), cells: make([][]sym.ID, len(cells))}
	for i, cell := range cells {
		ids := make([]sym.ID, len(cell))
		for j, v := range cell {
			if !plainCellValue(v) {
				return fmt.Errorf("wsd: template for %s: slot %d value %q is empty or uses a reserved character of the slot grammar", relName, i, v)
			}
			ids[j] = sym.Const(v)
		}
		a.cells[i] = ids
	}
	w.comps = append(w.comps, component{attr: a})
	w.normalized = false
	return nil
}

// templateString renders an attribute-level component body in the .pw
// tmpl syntax: Rel(v {a|b} w).
func (w *WSD) templateString(a *attrComp) string {
	var b strings.Builder
	b.WriteString(w.schema[a.rel].Name)
	b.WriteString("(")
	for i, cell := range a.cells {
		if i > 0 {
			b.WriteString(" ")
		}
		if len(cell) == 1 {
			b.WriteString(cell[0].Name())
			continue
		}
		b.WriteString("{")
		for k, id := range cell {
			if k > 0 {
				b.WriteString("|")
			}
			b.WriteString(id.Name())
		}
		b.WriteString("}")
	}
	b.WriteString(")")
	return b.String()
}

// expandAttr materializes an attribute-level component into tuple-level
// alternatives, interning every instantiation into the fact table. Used
// only when normalization must merge the template with an overlapping
// component; bounded by MaxMergeAlts like every other product
// materialization.
func (w *WSD) expandAttr(a *attrComp) ([][]int32, error) {
	n, ok := a.countInt()
	if !ok || n > MaxMergeAlts {
		return nil, fmt.Errorf("wsd: expanding an attribute-level component of %s alternatives (limit %d); the decomposition is too entangled to normalize",
			a.count(), MaxMergeAlts)
	}
	alts := make([][]int32, n)
	for ai := 0; ai < n; ai++ {
		alts[ai] = []int32{w.intern(a.rel, a.tupleAt(ai))}
	}
	return alts, nil
}

// attrOverlap reports whether two templates can instantiate a common
// fact: same relation and pairwise-intersecting slot domains.
func attrOverlap(a, b *attrComp) bool {
	if a.rel != b.rel || len(a.cells) != len(b.cells) {
		return false
	}
	for i := range a.cells {
		if !cellsIntersect(a.cells[i], b.cells[i]) {
			return false
		}
	}
	return true
}

// cellsIntersect reports whether two sorted value lists share a value.
func cellsIntersect(a, b []sym.ID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := sym.Compare(a[i], b[j]); {
		case c == 0:
			return true
		case c < 0:
			i++
		default:
			j++
		}
	}
	return false
}

// plainCellValue reports whether a constant name can round-trip through
// the .pw tmpl syntax: non-empty, no whitespace, and none of the
// reserved characters of the slot grammar. The vertical split declines
// to factor components whose values would not print parseably, so
// String stays closed under ParseWSD whenever the tuple form was.
func plainCellValue(name string) bool {
	if name == "" || name[0] == '?' || name[0] == '#' {
		return false
	}
	return !strings.ContainsAny(name, "{}|,() \t\r\n")
}
