// Package wsd implements world-set decompositions: a second backend for
// representing sets of possible worlds, complementing the conditioned
// tables of internal/table. Where a c-table denotes rep(T) through a
// valuation search, a WSD stores the world set directly in factored form —
// a product of independent components, each a small list of alternative
// relation-fragments — so that a database denoting 10^6 (or 10^(10^6))
// worlds occupies kilobytes and the core decision problems stay
// polynomial in the size of the decomposition.
//
// The design follows the world-set-decomposition line of work (Antova,
// Koch & Olteanu, "10^(10^6) Worlds and Beyond"; Olteanu, Koch & Antova,
// "World-set decompositions: expressiveness and efficient algorithms"),
// transposed to this repository's fact model: a world is a complete
// relational instance (rel.Instance) and a decomposition is
//
//	rep(W) = { C₁ ∪ C₂ ∪ … ∪ Cₘ : Cᵢ ∈ componentᵢ }
//
// where each component is a non-empty set of alternative fact-sets
// ("fragments"). Components come in two granularities: tuple-level
// components list whole-fact alternatives explicitly, and
// attribute-level components (attr.go) store one fact template with
// per-slot alternative lists whose cross product is the alternative set
// — exponentially more succinct when fields vary independently. After
// Normalize the components have pairwise disjoint fact supports and
// pairwise distinct alternatives, which makes the choice-vector → world
// map injective: |rep(W)| is exactly the product of the component
// sizes, membership decomposes into one per-component lookup, and a
// fact is possible (certain) iff some (every) alternative of its
// component contains it.
//
// Facts are interned once into a dense local fact table over sym.Tuple
// storage; components reference facts by dense int32 IDs, so alternatives
// are sorted integer lists compared by fingerprint with exact-equality
// collision buckets (the same idiom as internal/rel).
package wsd

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pw/internal/obs"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
)

// Fact is one ground fact at the API boundary: a relation name plus a
// tuple of constant names.
type Fact struct {
	Rel  string
	Args rel.Fact
}

// String renders the fact in .pw @wsd syntax: Rel(a b c).
func (f Fact) String() string { return f.Rel + "(" + strings.Join(f.Args, " ") + ")" }

// Alt is one alternative of a component: a set of facts chosen together.
// The empty alternative (no facts) is legal and means "this component
// contributes nothing in this world".
type Alt []Fact

// storedFact is the interned form: a schema-relation index plus an
// interned constant tuple.
type storedFact struct {
	rel   int32
	tuple sym.Tuple
}

// component is one factor of the product. It has two storage forms:
//
//   - tuple-level (attr == nil): a list of alternative fact-ID sets.
//     After Normalize the alternatives are sorted, pairwise distinct,
//     and indexed by fingerprint.
//   - attribute-level (attr != nil): one fact template with per-slot
//     alternative lists (see attr.go); the tuple-level alternatives are
//     the cross product of the slot choices, materialized lazily.
type component struct {
	alts     [][]int32
	altIndex map[uint64][]int32 // fingerprint of sorted IDs -> alt positions
	attr     *attrComp          // non-nil: attribute-level form; alts/altIndex unused
}

// WSD is a world-set decomposition. The zero value is not usable; build
// with New (or FromWorlds / ToWSD / the .pw parser).
//
// Mutating methods (AddComponent) leave the decomposition denormalized;
// the query methods re-normalize lazily on first use, so single-threaded
// callers never need to call Normalize explicitly. Call Normalize once
// before sharing a WSD between goroutines: after it returns, all query
// methods are read-only and safe for concurrent use.
type WSD struct {
	schema    table.Schema
	schemaIdx map[string]int
	facts     []storedFact
	factIndex map[uint64][]int32 // fact fingerprint -> fact IDs
	comps     []component

	// empty marks the decomposition that denotes the empty world set ∅
	// (distinct from the zero-component WSD, which denotes exactly one
	// world: every relation empty).
	empty bool

	normalized bool
	factComp   []int32           // fact ID -> component index (derived)
	certain    []bool            // fact ID -> present in every alternative (derived)
	attrByRel  map[int32][]int32 // relation -> attribute-level component indices (derived)

	// Incremental-update state (see update.go). factsShared marks the
	// fact table and index as shared with a snapshot parent (copied on
	// the first intern); compsShared marks component alternative slices
	// as shared (deep-copied before any full normalization, which
	// mutates them in place); holes counts fact-table entries outside
	// every component's support (factComp < 0); factsLoose records that
	// fact IDs are no longer in display order, so accessors that
	// promise display order must sort.
	factsShared bool
	compsShared bool
	holes       int
	factsLoose  bool

	// obsCost, when non-nil, receives structural cost counters from the
	// mutating paths (Normalize's merges/splits/folds, the update
	// engine's touched/survivor classification and COW unshares). It is
	// per-operation state: neither Clone nor snapshotClone copies it.
	obsCost *obs.Cost
}

// SetObsCost attaches a cost-accounting sink to the decomposition's
// mutating paths. Pass nil to detach. The sink is owned by one
// operation (a request, a load): Normalize and the update planner are
// single-writer by contract, so no synchronization is added here.
func (w *WSD) SetObsCost(c *obs.Cost) { w.obsCost = c }

// New returns an empty decomposition over the given schema: zero
// components, denoting the single world in which every relation is empty.
func New(schema table.Schema) *WSD {
	w := &WSD{
		schema:     append(table.Schema(nil), schema...),
		schemaIdx:  make(map[string]int, len(schema)),
		factIndex:  make(map[uint64][]int32),
		normalized: true,
	}
	for i, r := range w.schema {
		if _, dup := w.schemaIdx[r.Name]; dup {
			panic("wsd: duplicate relation " + r.Name + " in schema")
		}
		w.schemaIdx[r.Name] = i
	}
	return w
}

// Schema returns the decomposition's schema in declaration order. The
// slice is owned by the WSD; callers must not mutate it.
func (w *WSD) Schema() table.Schema { return w.schema }

// Components returns the number of components (0 for the empty world set
// and for the single-empty-world decomposition; Empty distinguishes them).
func (w *WSD) Components() int { w.ensure(); return len(w.comps) }

// Alternatives returns the per-component alternative counts. For an
// attribute-level component the count is the product of its slot domain
// sizes, saturating at the int maximum (Count is exact; use it for
// astronomically factored templates).
func (w *WSD) Alternatives() []int {
	w.ensure()
	out := make([]int, len(w.comps))
	for i, c := range w.comps {
		out[i] = c.altCount()
	}
	return out
}

// altCount returns a component's alternative count, saturating at the
// int maximum for attribute-level templates whose product overflows.
func (c *component) altCount() int {
	if c.attr != nil {
		n, _ := c.attr.countInt()
		return n
	}
	return len(c.alts)
}

// Size returns the number of distinct facts in the decomposition's
// support. Attribute-level components contribute their instantiation
// count (the product of their slot domains) without materializing it;
// the total saturates at the int maximum.
func (w *WSD) Size() int {
	w.ensure()
	n := len(w.facts) - w.holes
	for _, c := range w.comps {
		if c.attr == nil {
			continue
		}
		k, ok := c.attr.countInt()
		if !ok || n > math.MaxInt-k {
			return math.MaxInt
		}
		n += k
	}
	return n
}

// Empty reports whether the decomposition denotes the empty world set.
func (w *WSD) Empty() bool { w.ensure(); return w.empty }

// AddComponent appends a component with the given alternatives. The facts
// are interned against the schema; unknown relations and arity mismatches
// are errors. Alternatives may repeat and may overlap other components'
// supports — Normalize (run lazily by the query methods) deduplicates,
// merges dependent components and splits independent ones.
//
// A component with zero alternatives is legal and collapses the whole
// decomposition to the empty world set.
func (w *WSD) AddComponent(alts ...Alt) error {
	c := component{alts: make([][]int32, 0, len(alts))}
	for _, alt := range alts {
		ids := make([]int32, 0, len(alt))
		for _, f := range alt {
			id, err := w.internBoundary(f)
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		c.alts = append(c.alts, sortDedupIDs(ids))
	}
	w.comps = append(w.comps, c)
	w.normalized = false
	return nil
}

// internBoundary interns a boundary fact, validating it against the schema.
func (w *WSD) internBoundary(f Fact) (int32, error) {
	ri, ok := w.schemaIdx[f.Rel]
	if !ok {
		return 0, fmt.Errorf("wsd: fact %s references unknown relation %s", f, f.Rel)
	}
	if len(f.Args) != w.schema[ri].Arity {
		return 0, fmt.Errorf("wsd: fact %s has arity %d, relation %s expects %d",
			f, len(f.Args), f.Rel, w.schema[ri].Arity)
	}
	return w.intern(int32(ri), f.Args.Intern()), nil
}

// intern stores (or finds) a fact, returning its dense ID. The tuple is
// copied only on actual insertion. On a snapshot clone the table and
// index are un-shared first (copy-on-write; see update.go).
func (w *WSD) intern(relIdx int32, t sym.Tuple) int32 {
	h := factHash(relIdx, t)
	if w.factsShared {
		for _, id := range w.factIndex[h] {
			f := w.facts[id]
			if f.rel == relIdx && f.tuple.Equal(t) {
				return id
			}
		}
		w.cowFacts()
	}
	for _, id := range w.factIndex[h] {
		f := w.facts[id]
		if f.rel == relIdx && f.tuple.Equal(t) {
			return id
		}
	}
	id := int32(len(w.facts))
	w.facts = append(w.facts, storedFact{rel: relIdx, tuple: t.Clone()})
	w.factIndex[h] = append(w.factIndex[h], id)
	return id
}

// lookup finds an already-interned fact without growing the fact table.
func (w *WSD) lookup(relIdx int32, t sym.Tuple) (int32, bool) {
	for _, id := range w.factIndex[factHash(relIdx, t)] {
		f := w.facts[id]
		if f.rel == relIdx && f.tuple.Equal(t) {
			return id, true
		}
	}
	return 0, false
}

// lookupBoundary resolves a boundary fact to its ID without growing any
// intern table (mirrors rel.Relation.Has: never-seen constants cannot be
// in the support).
func (w *WSD) lookupBoundary(relName string, f rel.Fact) (int32, bool) {
	ri, ok := w.schemaIdx[relName]
	if !ok || len(f) != w.schema[ri].Arity {
		return 0, false
	}
	t := make(sym.Tuple, len(f))
	for i, c := range f {
		id, ok := sym.LookupConst(c)
		if !ok {
			return 0, false
		}
		t[i] = id
	}
	return w.lookup(int32(ri), t)
}

// resolve converts a stored fact back to boundary form.
func (w *WSD) resolve(id int32) Fact {
	f := w.facts[id]
	return Fact{Rel: w.schema[f.rel].Name, Args: rel.ResolveFact(f.tuple)}
}

// factLess is the canonical display order of stored facts: schema
// position first, then tuple by symbol name.
func (w *WSD) factLess(a, b int32) bool {
	fa, fb := w.facts[a], w.facts[b]
	if fa.rel != fb.rel {
		return fa.rel < fb.rel
	}
	for i := range fa.tuple {
		if c := sym.Compare(fa.tuple[i], fb.tuple[i]); c != 0 {
			return c < 0
		}
	}
	return false
}

// ensure lazily re-establishes the normalized invariants after builder
// mutations. It panics if normalization fails (the only failure mode is
// the merged-component blow-up guard, a structural property of the input
// the caller chose to build) — callers that want the error call Normalize
// themselves.
func (w *WSD) ensure() {
	if w.normalized {
		return
	}
	if err := w.Normalize(); err != nil {
		panic("wsd: " + err.Error())
	}
}

// Clone returns a deep copy.
func (w *WSD) Clone() *WSD {
	c := New(w.schema)
	c.empty = w.empty
	c.normalized = w.normalized
	c.holes = w.holes
	c.factsLoose = w.factsLoose
	c.facts = make([]storedFact, len(w.facts))
	for i, f := range w.facts {
		c.facts[i] = storedFact{rel: f.rel, tuple: f.tuple.Clone()}
	}
	for h, bucket := range w.factIndex {
		c.factIndex[h] = append([]int32(nil), bucket...)
	}
	c.comps = make([]component, len(w.comps))
	for i, comp := range w.comps {
		if comp.attr != nil {
			c.comps[i] = component{attr: comp.attr.clone()}
			continue
		}
		cc := component{alts: make([][]int32, len(comp.alts))}
		for j, a := range comp.alts {
			cc.alts[j] = append([]int32(nil), a...)
		}
		if comp.altIndex != nil {
			cc.altIndex = make(map[uint64][]int32, len(comp.altIndex))
			for h, bucket := range comp.altIndex {
				cc.altIndex[h] = append([]int32(nil), bucket...)
			}
		}
		c.comps[i] = cc
	}
	c.factComp = append([]int32(nil), w.factComp...)
	c.certain = append([]bool(nil), w.certain...)
	if w.attrByRel != nil {
		c.attrByRel = make(map[int32][]int32, len(w.attrByRel))
		for r, bucket := range w.attrByRel {
			c.attrByRel[r] = append([]int32(nil), bucket...)
		}
	}
	return c
}

// String renders the decomposition in .pw @wsd syntax (parsable by
// parse.ParseWSD). The output reflects the current component structure;
// parser and printer round-trip through the normalized form.
func (w *WSD) String() string {
	var b strings.Builder
	b.WriteString("@wsd")
	for _, r := range w.schema {
		fmt.Fprintf(&b, "\n  relation: %s(%d)", r.Name, r.Arity)
	}
	if w.empty {
		// Canonical spelling of ∅: a single component with no alternatives.
		b.WriteString("\n  component:")
		return b.String()
	}
	for _, c := range w.comps {
		b.WriteString("\n  component:")
		if c.attr != nil {
			b.WriteString("\n    tmpl: " + w.templateString(c.attr))
			continue
		}
		for _, alt := range c.alts {
			ids := alt
			if w.factsLoose {
				// Incrementally updated decompositions keep stable (not
				// display-ordered) fact IDs; render in display order so the
				// printed form stays canonical.
				ids = append([]int32(nil), alt...)
				sort.Slice(ids, func(i, j int) bool { return w.factLess(ids[i], ids[j]) })
			}
			b.WriteString("\n    alt:")
			for i, id := range ids {
				if i > 0 {
					b.WriteString(",")
				}
				b.WriteString(" " + w.resolve(id).String())
			}
		}
	}
	return b.String()
}

// sortDedupIDs sorts ids ascending and removes duplicates in place.
func sortDedupIDs(ids []int32) []int32 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// idsEqual reports element-wise equality of sorted ID lists.
func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FNV-1a parameters (word-wise, matching the spirit of sym.HashIDs).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// factHash fingerprints a fact for the fact-table index.
func factHash(relIdx int32, t sym.Tuple) uint64 {
	h := uint64(fnvOffset)
	h ^= uint64(uint32(relIdx))
	h *= fnvPrime
	for _, id := range t {
		h ^= uint64(id)
		h *= fnvPrime
	}
	return sym.Mix(h)
}

// altHash fingerprints a sorted fact-ID list for alternative dedup and
// membership probes. Fingerprints accelerate, never decide: every consumer
// keeps collision buckets and confirms with idsEqual.
func altHash(ids []int32) uint64 {
	h := uint64(fnvOffset)
	for _, id := range ids {
		h ^= uint64(uint32(id))
		h *= fnvPrime
	}
	return sym.Mix(h)
}
