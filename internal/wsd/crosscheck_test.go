// Differential validation of the decomposition backend against the two
// existing engines: the brute-force worlds oracle (enumeration over the
// canonical domain) and the decide engine (the paper's decision
// procedures over the true rep).
//
// For ≥100 seeded random finite world sets W — drawn both from random
// conditioned-table databases (W = worlds.All(d)) and from random
// decompositions (W = Expand) — the suite checks that
//
//   - FromWorlds(W) counts exactly |W|,
//   - MEMB/POSS/CERT on the decomposition agree with scanning W and,
//     for probes over the databases' constants, with the decide engine,
//   - Expand(FromWorlds(W)) reproduces W up to fingerprint-confirmed set
//     equality,
//
// and that ToWSDOverDomain(d, nil) denotes exactly worlds.All(d).
package wsd_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"pw/internal/cond"
	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
	"pw/internal/worlds"
	"pw/internal/wsd"
)

// worldSet is the oracle-side view of a finite world list: fingerprint
// dedup with exact-equality confirmation (the same idiom as
// internal/worlds).
type worldSet struct {
	list    []*rel.Instance
	buckets map[uint64][]*rel.Instance
}

func newWorldSet(ws []*rel.Instance) *worldSet {
	s := &worldSet{buckets: make(map[uint64][]*rel.Instance)}
	for _, w := range ws {
		if !s.has(w) {
			s.list = append(s.list, w)
			s.buckets[w.Fingerprint()] = append(s.buckets[w.Fingerprint()], w)
		}
	}
	return s
}

func (s *worldSet) has(i *rel.Instance) bool {
	for _, prev := range s.buckets[i.Fingerprint()] {
		if prev.Equal(i) {
			return true
		}
	}
	return false
}

func (s *worldSet) possible(p *rel.Instance) bool {
	for _, w := range s.list {
		if p.SubsetOf(w) {
			return true
		}
	}
	return false
}

func (s *worldSet) certain(p *rel.Instance) bool {
	for _, w := range s.list {
		if !p.SubsetOf(w) {
			return false
		}
	}
	return true
}

// smallDB generates one of the four table kinds at differential-test
// scale: few rows, tiny constant pool, enough nulls to make multiple
// worlds likely while keeping the enumeration bounded.
func smallDB(seed int64) *table.Database {
	rows := 2 + int(seed)%2
	switch seed % 4 {
	case 0:
		return table.DB(gen.CoddTable(seed, "T", rows, 2, 3, 0.5))
	case 1:
		return table.DB(gen.ETable(seed, "T", rows, 2, 3, 2, 0.5))
	case 2:
		return table.DB(gen.ITable(seed, "T", rows, 2, 3, 1, 0.5))
	default:
		return table.DB(gen.CTable(seed, "T", rows, 2, 3, 2, 0.5, 0.5))
	}
}

// checkAgainstWorldSet validates a decomposition against an explicit
// world set and (optionally, when d != nil and the probes stay inside
// the database's constants) against the decide engine.
func checkAgainstWorldSet(t *testing.T, tag string, fw *wsd.WSD, W []*rel.Instance, d *table.Database) {
	t.Helper()
	oracle := newWorldSet(W)

	if got := fw.Count(); !got.IsInt64() || got.Int64() != int64(len(oracle.list)) {
		t.Fatalf("%s: Count = %s, oracle has %d worlds", tag, got, len(oracle.list))
	}

	// Every oracle world is a member.
	for wi, w := range oracle.list {
		if !fw.Member(w) {
			t.Fatalf("%s: world %d rejected by the decomposition:\n%s", tag, wi, w)
		}
	}

	// Expand reproduces the set exactly.
	expanded := fw.Expand(0)
	if len(expanded) != len(oracle.list) {
		t.Fatalf("%s: Expand yielded %d worlds, oracle has %d", tag, len(expanded), len(oracle.list))
	}
	back := newWorldSet(expanded)
	if len(back.list) != len(expanded) {
		t.Fatalf("%s: Expand yielded duplicate worlds", tag)
	}
	for _, w := range expanded {
		if !oracle.has(w) {
			t.Fatalf("%s: Expand produced a world outside the oracle set:\n%s", tag, w)
		}
	}

	if len(oracle.list) == 0 {
		return
	}

	// Probe instances: each world's prefix restrictions and single-fact
	// perturbations within the active constants.
	var consts []string
	if d != nil {
		consts = d.ConstNames()
	}
	for wi, w := range oracle.list {
		if wi >= 8 {
			break
		}
		// Probes: the world itself, a strict subset (one fact dropped),
		// and a same-size near miss (one cell substituted).
		probes := []*rel.Instance{w, subsetInstance(w)}
		if len(consts) > 0 {
			probes = append(probes, perturbInstance(w, consts[wi%len(consts)]))
		}
		for pi, p := range probes {
			if p == nil {
				continue
			}
			ptag := fmt.Sprintf("%s world %d probe %d", tag, wi, pi)

			wantMemb := oracle.has(p)
			if got := fw.Member(p); got != wantMemb {
				t.Errorf("%s: MEMB = %v, oracle says %v\n%s", ptag, got, wantMemb, p)
			}
			wantPoss := oracle.possible(p)
			if got := fw.Possible(p); got != wantPoss {
				t.Errorf("%s: POSS = %v, oracle says %v\n%s", ptag, got, wantPoss, p)
			}
			wantCert := oracle.certain(p)
			if got := fw.Certain(p); got != wantCert {
				t.Errorf("%s: CERT = %v, oracle says %v\n%s", ptag, got, wantCert, p)
			}

			// The decide engine answers over the true rep; its answers
			// coincide with the canonical world set for probes over the
			// inputs' constants (genericity, Proposition 2.1).
			if d != nil {
				if got, err := decide.Membership(p, query.Identity{}, d); err != nil {
					t.Fatalf("%s: decide.Membership: %v", ptag, err)
				} else if got != wantMemb {
					t.Errorf("%s: decide MEMB = %v, oracle says %v", ptag, got, wantMemb)
				}
				if got, err := decide.Possible(p, query.Identity{}, d); err != nil {
					t.Fatalf("%s: decide.Possible: %v", ptag, err)
				} else if got != wantPoss {
					t.Errorf("%s: decide POSS = %v, oracle says %v", ptag, got, wantPoss)
				}
				if got, err := decide.Certain(p, query.Identity{}, d); err != nil {
					t.Fatalf("%s: decide.Certain: %v", ptag, err)
				} else if got != wantCert {
					t.Errorf("%s: decide CERT = %v, oracle says %v", ptag, got, wantCert)
				}
			}
		}
	}
}

// subsetInstance drops one fact from the first non-empty relation.
func subsetInstance(w *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	dropped := false
	for _, r := range w.Relations() {
		nr := out.EnsureRelation(r.Name, r.Arity)
		for fi, f := range r.Facts() {
			if !dropped && fi == 0 {
				dropped = true
				continue
			}
			nr.Add(f)
		}
	}
	return out
}

// perturbInstance substitutes c into the first cell of the first fact of
// the first non-empty relation — a same-size near-miss world. It stays
// inside the databases' constant pool so the decide engine and the
// canonical world set agree on the answer. Returns nil when the
// substitution would be a no-op (c already in place) or no fact has a
// cell to substitute.
func perturbInstance(w *rel.Instance, c string) *rel.Instance {
	out := rel.NewInstance()
	perturbed := false
	for _, r := range w.Relations() {
		nr := out.EnsureRelation(r.Name, r.Arity)
		for fi, f := range r.Facts() {
			if !perturbed && fi == 0 && len(f) > 0 && f[0] != c {
				nf := f.Clone()
				nf[0] = c
				nr.Add(nf)
				perturbed = true
				continue
			}
			nr.Add(f)
		}
	}
	if !perturbed {
		return nil
	}
	return out
}

// TestWSDCrossValidation is the acceptance-criterion suite: ≥100 seeded
// random finite world sets, each factorized with FromWorlds and checked
// against the worlds oracle and the decide engine.
func TestWSDCrossValidation(t *testing.T) {
	const (
		dbCases   = 64
		wsdCases  = 40
		maxWorlds = 400
	)
	tested := 0

	// World sets denoted by random conditioned-table databases.
	for seed := int64(1); tested < dbCases && seed < 10*dbCases; seed++ {
		d := smallDB(seed)
		if len(d.VarNames()) > 4 {
			continue // keep the oracle enumeration bounded
		}
		W := worlds.All(d)
		if len(W) > maxWorlds {
			continue
		}
		fw, err := wsd.FromWorlds(W)
		if err != nil {
			t.Fatalf("seed %d: FromWorlds: %v", seed, err)
		}
		checkAgainstWorldSet(t, fmt.Sprintf("db seed %d", seed), fw, W, d)
		tested++
	}
	if tested < dbCases {
		t.Fatalf("only %d database cases generated, want %d", tested, dbCases)
	}

	// World sets denoted by random decompositions (Expand → re-factorize).
	for seed := int64(1); seed <= wsdCases; seed++ {
		w, err := gen.RandomWSD(seed, 3+int(seed)%2, 3, 2, 4+int(seed)%3)
		if err != nil {
			t.Fatalf("wsd seed %d: RandomWSD: %v", seed, err)
		}
		W := w.Expand(0)
		if got := w.Count(); !got.IsInt64() || int(got.Int64()) != len(W) {
			t.Fatalf("wsd seed %d: Count %s but Expand yielded %d (injectivity broken)", seed, got, len(W))
		}
		fw, err := wsd.FromWorlds(W)
		if err != nil {
			t.Fatalf("wsd seed %d: FromWorlds: %v", seed, err)
		}
		checkAgainstWorldSet(t, fmt.Sprintf("wsd seed %d", seed), fw, W, nil)
		tested++
	}
	t.Logf("cross-validated %d seeded world sets", tested)
}

// TestToWSDOverDomainMatchesWorldsOracle checks the compiler against the
// enumeration backend: over the canonical domain the two must denote
// exactly the same world set.
func TestToWSDOverDomainMatchesWorldsOracle(t *testing.T) {
	tested := 0
	for seed := int64(1); tested < 32 && seed < 320; seed++ {
		d := smallDB(seed)
		if len(d.VarNames()) > 4 {
			continue
		}
		W := worlds.All(d)
		if len(W) > 400 {
			continue
		}
		cw, err := wsd.ToWSDOverDomain(d, nil)
		if err != nil {
			t.Fatalf("seed %d: ToWSDOverDomain: %v", seed, err)
		}
		checkAgainstWorldSet(t, fmt.Sprintf("compile seed %d", seed), cw, W, d)
		tested++
	}
	if tested < 32 {
		t.Fatalf("only %d compile cases generated", tested)
	}
}

// TestToWSDStrict pins the true-rep compiler: forced variables compile,
// unforced row variables error with ErrInfiniteRep.
func TestToWSDStrict(t *testing.T) {
	// Forced variable: x = a makes rep finite (a single world).
	tb := table.New("T", 2)
	tb.AddTuple(parseVal("a"), parseVal("?x"))
	tb.Global = append(tb.Global, eq("?x", "b"))
	d := table.DB(tb)
	w, err := wsd.ToWSD(d)
	if err != nil {
		t.Fatalf("ToWSD on forced-variable table: %v", err)
	}
	if got := w.Count().Int64(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if !w.CertainFact("T", rel.Fact{"a", "b"}) {
		t.Error("forced fact not certain")
	}

	// Condition-only variable: row fires iff ?y = a is chosen — two
	// worlds, both finite, no error.
	tc := table.New("T", 1)
	tc.Add(table.Row{Values: tupleOf("a"), Cond: conj(eq("?y", "b"))})
	dc := table.DB(tc)
	wc, err := wsd.ToWSD(dc)
	if err != nil {
		t.Fatalf("ToWSD on condition-only variable: %v", err)
	}
	if got := wc.Count().Int64(); got != 2 {
		t.Fatalf("Count = %d, want 2 (row on / row off)", got)
	}

	// Unforced row variable: infinite rep.
	ti := table.New("T", 1)
	ti.AddTuple(parseVal("?z"))
	if _, err := wsd.ToWSD(table.DB(ti)); err == nil {
		t.Fatal("ToWSD accepted an infinite rep")
	} else if !isInfinite(err) {
		t.Fatalf("error does not wrap ErrInfiniteRep: %v", err)
	}

	// Unsatisfiable global: the empty world set, no error.
	tu := table.New("T", 1)
	tu.AddTuple(parseVal("a"))
	tu.Global = append(tu.Global, eq("b", "c"))
	wu, err := wsd.ToWSD(table.DB(tu))
	if err != nil {
		t.Fatalf("ToWSD on unsatisfiable global: %v", err)
	}
	if !wu.Empty() || wu.Count().Sign() != 0 {
		t.Fatal("unsatisfiable database must compile to the empty world set")
	}
}

// --- tiny construction helpers ---

func parseVal(s string) value.Value {
	if strings.HasPrefix(s, "?") {
		return value.Var(s[1:])
	}
	return value.Const(s)
}

func tupleOf(vals ...string) value.Tuple {
	t := make(value.Tuple, len(vals))
	for i, v := range vals {
		t[i] = parseVal(v)
	}
	return t
}

func eq(l, r string) cond.Atom { return cond.EqAtom(parseVal(l), parseVal(r)) }

func conj(atoms ...cond.Atom) cond.Conjunction { return cond.Conjunction(atoms) }

func isInfinite(err error) bool { return errors.Is(err, wsd.ErrInfiniteRep) }
