// Differential validation of the decomposition backend through the
// shared metamorphic harness (internal/difftest): seeded world sets —
// denoted by random conditioned-table databases and by random
// decompositions of both granularities — are answered by the
// decomposition backends (factorized from the explicit world list,
// compiled from the database, and native) and by the c-table decision
// engine, and every answer is checked against the brute-force scan of
// the explicit world list. The attribute-level suite additionally pins
// the factorize∘expand identity on template-heavy decompositions: the
// native attr-WSD answers must match both the worlds oracle and the
// re-factorized (FromWorlds) decomposition, world for world.
package wsd_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pw/internal/difftest"
	"pw/internal/gen"
	"pw/internal/table"
	"pw/internal/worlds"
	"pw/internal/wsd"
)

// smallDB generates one of the four table kinds at differential-test
// scale: few rows, tiny constant pool, enough nulls to make multiple
// worlds likely while keeping the enumeration bounded.
func smallDB(seed int64) *table.Database {
	rows := 2 + int(seed)%2
	switch seed % 4 {
	case 0:
		return table.DB(gen.CoddTable(seed, "T", rows, 2, 3, 0.5))
	case 1:
		return table.DB(gen.ETable(seed, "T", rows, 2, 3, 2, 0.5))
	case 2:
		return table.DB(gen.ITable(seed, "T", rows, 2, 3, 1, 0.5))
	default:
		return table.DB(gen.CTable(seed, "T", rows, 2, 3, 2, 0.5, 0.5))
	}
}

// dbCase builds a difftest case from a random database: the oracle is
// the canonical world enumeration; skipped when the enumeration would
// be unbounded at differential scale.
func dbCase(seed int64) (*difftest.Case, bool) {
	d := smallDB(seed)
	if len(d.VarNames()) > 4 {
		return nil, false
	}
	W := worlds.All(d)
	if len(W) > 400 {
		return nil, false
	}
	return &difftest.Case{Worlds: W, DB: d, Consts: d.ConstNames()}, true
}

// TestDifferentialWSDFromDatabases is the database-derived suite: the
// world sets of seeded conditioned tables, answered by FromWorlds
// factorization, ToWSDOverDomain compilation, and the c-table decision
// engine.
func TestDifferentialWSDFromDatabases(t *testing.T) {
	difftest.Run(t, difftest.Config{
		Tag:   "wsd-db",
		Cases: 150,
		Gen:   dbCase,
		Backends: []difftest.Backend{
			difftest.FromWorldsBackend(),
			difftest.CompileBackend("wsd/compile", nil),
			difftest.DecideBackend(0, false),
		},
	})
}

// TestDifferentialWSDRandom is the decomposition-derived suite: random
// mixed-granularity decompositions answered natively and re-factorized
// from their own expansion (the factorize∘expand identity).
func TestDifferentialWSDRandom(t *testing.T) {
	difftest.Run(t, difftest.Config{
		Tag:   "wsd-random",
		Cases: 150,
		Gen: func(seed int64) (*difftest.Case, bool) {
			w, err := gen.RandomWSD(seed, 3+int(seed)%2, 3, 2, 4+int(seed)%3)
			if err != nil {
				return nil, false
			}
			consts := make([]string, 4)
			for i := range consts {
				consts[i] = fmt.Sprintf("c%d", i)
			}
			return &difftest.Case{Worlds: w.Expand(0), WSD: w, Consts: consts}, true
		},
		Backends: []difftest.Backend{
			difftest.WSDBackend("wsd/native"),
			difftest.FromWorldsBackend(),
		},
	})
}

// attrWSD builds a template-heavy decomposition: mostly attribute-level
// components (fixed and open slots over a small pool), plus an
// occasional tuple-level component so the two granularities interact —
// overlapping templates exercise the merge path, and the vertical split
// re-factors whatever the expansion flattened.
func attrWSD(seed int64) (*wsd.WSD, error) {
	w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
	rng := rand.New(rand.NewSource(seed))
	comps := 3 + int(seed)%3
	for c := 0; c < comps; c++ {
		if rng.Intn(4) == 0 {
			alts := []wsd.Alt{
				{},
				{{Rel: "R", Args: []string{fmt.Sprintf("c%d", rng.Intn(5)), fmt.Sprintf("c%d", rng.Intn(5))}}},
			}
			if err := w.AddComponent(alts...); err != nil {
				return nil, err
			}
			continue
		}
		cells := make([][]string, 2)
		for i := range cells {
			n := 1 + rng.Intn(3)
			vals := make([]string, n)
			for k := range vals {
				vals[k] = fmt.Sprintf("c%d", rng.Intn(5))
			}
			cells[i] = vals
		}
		if err := w.AddTemplateComponent("R", cells...); err != nil {
			return nil, err
		}
	}
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

// TestDifferentialWSDAttr is the attribute-level suite: template-heavy
// decompositions answered natively (the attr-WSD backend) and through
// the tuple-level FromWorlds factorization of their expansion, both
// against the worlds oracle.
func TestDifferentialWSDAttr(t *testing.T) {
	consts := make([]string, 5)
	for i := range consts {
		consts[i] = fmt.Sprintf("c%d", i)
	}
	difftest.Run(t, difftest.Config{
		Tag:   "wsd-attr",
		Cases: 150,
		Gen: func(seed int64) (*difftest.Case, bool) {
			w, err := attrWSD(seed)
			if err != nil {
				return nil, false
			}
			if !w.Count().IsInt64() || w.Count().Int64() > 400 {
				return nil, false
			}
			return &difftest.Case{Worlds: w.Expand(0), WSD: w, Consts: consts}, true
		},
		Backends: []difftest.Backend{
			difftest.WSDBackend("wsd/attr"),
			difftest.FromWorldsBackend(),
		},
	})
}

// TestDifferentialWSDAttrQueries runs the same template-heavy
// decompositions through seeded positive-algebra queries: the lifted
// evaluator's slot-aware path (σ/π/ρ over slot alternatives, joins
// tabulating only joined slots) against the per-world oracle, from both
// provenances.
func TestDifferentialWSDAttrQueries(t *testing.T) {
	schema := table.Schema{{Name: "R", Arity: 2}}
	difftest.Run(t, difftest.Config{
		Tag:   "wsd-attr-query",
		Cases: 150,
		Gen: func(seed int64) (*difftest.Case, bool) {
			w, err := attrWSD(seed)
			if err != nil {
				return nil, false
			}
			if !w.Count().IsInt64() || w.Count().Int64() > 200 {
				return nil, false
			}
			q := gen.RandomPositiveQuery(seed, schema, 5, 2)
			return &difftest.Case{Worlds: w.Expand(0), WSD: w, Query: q}, true
		},
		Backends: []difftest.Backend{
			difftest.WSDBackend("wsd/attr"),
			difftest.FromWorldsBackend(),
		},
	})
}
