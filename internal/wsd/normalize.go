// Product normalization: the rewriting that establishes the WSD
// invariants every query method relies on.
//
//  1. alternatives within a component are pairwise distinct;
//  2. the fact supports of distinct components are pairwise disjoint
//     (an attribute-level component's support is its template's
//     instantiation set, never materialized);
//  3. no component is the trivial {∅} (it contributes nothing);
//  4. components are maximally factored along both axes: no component
//     splits horizontally into a product of smaller independent
//     components (the trace/block splitter), and no tuple-level
//     component whose alternatives form an exact per-slot product stays
//     unfactored — the vertical split rewrites it into an
//     attribute-level template (tryVerticalSplit);
//  5. facts, alternatives and components are in canonical order, so two
//     normalizations of the same world set print identically.
//
// (2) makes the choice-vector → world map injective, so |rep| is exactly
// the product of component sizes. (4) is obtained by verified counting
// arguments only: the horizontal trace/block splitter factors a
// component exactly when the distinct-projection counts multiply to the
// total, and the vertical splitter factors a component into per-slot
// alternative lists exactly when Π|slot values| equals the alternative
// count — either certificate proves the rewrite preserves the
// represented world set fact-for-fact.
package wsd

import (
	"fmt"
	"sort"

	"pw/internal/obs"
	"pw/internal/sym"
	"pw/internal/unionfind"
)

// MaxMergeAlts bounds the alternative count of a merged component: merging
// k dependent components multiplies their alternative counts, and a
// decomposition whose components are all entangled degenerates to an
// explicit world list. Beyond this bound Normalize reports an error
// instead of materializing the product.
const MaxMergeAlts = 1 << 20

// Normalize rewrites the decomposition into canonical product-normal
// form (see the package comment at the top of this file). It is
// idempotent and deterministic; the query methods call it lazily after
// mutations. The only error is the MaxMergeAlts blow-up guard.
func (w *WSD) Normalize() error {
	if w.normalized {
		return nil
	}
	if w.empty {
		w.clearToEmpty()
		return nil
	}
	// A snapshot clone (update.go) shares alternative slices and the
	// fact table with its parent; the rewrites below mutate both, so
	// deep-copy first — the parent must stay a valid snapshot.
	w.unshareAll()

	// (1) Deduplicate alternatives within each tuple-level component and
	// canonicalize attribute-level slot value lists (sorted, distinct —
	// the template's cross product is then automatically duplicate-free).
	for i := range w.comps {
		if a := w.comps[i].attr; a != nil {
			for j := range a.cells {
				a.cells[j] = sortDedupCell(a.cells[j])
			}
			continue
		}
		w.comps[i].alts = dedupAlts(w.comps[i].alts)
	}

	// A component with no alternatives offers no choice at all: the
	// product is empty. For a template that means an empty slot domain.
	for _, c := range w.comps {
		if c.attr != nil {
			for _, cell := range c.attr.cells {
				if len(cell) == 0 {
					w.clearToEmpty()
					return nil
				}
			}
			continue
		}
		if len(c.alts) == 0 {
			w.clearToEmpty()
			return nil
		}
	}

	// (2) Merge components with overlapping supports: they are dependent
	// (a fact shared between two components breaks the injectivity of the
	// choice map), so their joint world set is the product of their
	// alternative unions. Attribute-level members of an overlapping group
	// are expanded to tuple level first (the degenerate case; bounded).
	if err := w.mergeOverlapping(); err != nil {
		return err
	}

	// (4) Split each tuple-level component into independent horizontal
	// factors, then try the vertical split on every tuple-level factor:
	// a component whose alternatives are singleton same-relation facts
	// forming an exact per-slot product becomes an attribute-level
	// template. Templates that arrive here untouched by the merge are
	// already maximally factored (their alternatives share the
	// one-fact-per-world structure, so no horizontal split applies).
	var split []component
	for _, c := range w.comps {
		if c.attr != nil {
			split = append(split, c)
			continue
		}
		for _, alts := range splitAlts(c.alts) {
			split = append(split, w.tryVerticalSplit(component{alts: alts}))
		}
	}
	w.comps = split

	// (3) Drop trivial {∅} components; (re-)merge all certain components
	// (single alternative — including all-fixed templates) into one, so
	// the certain facts live in one place regardless of how the WSD was
	// built.
	var kept []component
	var certainFacts []int32
	for _, c := range w.comps {
		if c.attr != nil {
			if n, _ := c.attr.countInt(); n == 1 {
				certainFacts = append(certainFacts, w.intern(c.attr.rel, c.attr.tupleAt(0)))
				w.obsCost.Add(obs.NormCertainFolds, 1)
				continue
			}
			kept = append(kept, c)
			continue
		}
		if len(c.alts) == 1 {
			certainFacts = append(certainFacts, c.alts[0]...)
			w.obsCost.Add(obs.NormCertainFolds, 1)
			continue
		}
		kept = append(kept, c)
	}
	if len(certainFacts) > 0 {
		kept = append(kept, component{alts: [][]int32{sortDedupIDs(certainFacts)}})
	}
	w.comps = kept

	// (5) Canonical rebuild: fact table in display order, alternatives
	// sorted, components ordered by smallest support fact.
	w.canonicalize()
	w.buildIndexes()
	w.normalized = true
	// The canonical rebuild dropped unused facts and restored display
	// order, clearing any incremental-update residue (see update.go).
	w.holes = 0
	w.factsLoose = false
	return nil
}

// clearToEmpty rewrites w into the canonical representation of ∅.
func (w *WSD) clearToEmpty() {
	w.comps = nil
	w.facts = nil
	w.factIndex = make(map[uint64][]int32)
	w.factComp = nil
	w.certain = nil
	w.attrByRel = nil
	w.empty = true
	w.normalized = true
	w.factsShared = false
	w.compsShared = false
	w.holes = 0
	w.factsLoose = false
}

// unshareAll deep-copies everything a snapshot clone shares with its
// parent (see update.go) so in-place rewrites cannot reach the parent.
func (w *WSD) unshareAll() {
	w.cowFacts()
	if !w.compsShared {
		return
	}
	comps := make([]component, len(w.comps))
	for i, c := range w.comps {
		if c.attr != nil {
			comps[i] = component{attr: c.attr.clone()}
			continue
		}
		alts := make([][]int32, len(c.alts))
		for j, a := range c.alts {
			alts[j] = append([]int32(nil), a...)
		}
		comps[i] = component{alts: alts}
	}
	w.comps = comps
	w.compsShared = false
	w.obsCost.Add(obs.UpdateCOWUnshares, 1)
}

// dedupAlts removes duplicate alternatives (sorted ID lists) preserving
// first-occurrence order.
func dedupAlts(alts [][]int32) [][]int32 {
	seen := make(map[uint64][][]int32, len(alts))
	out := alts[:0]
	for _, a := range alts {
		h := altHash(a)
		dup := false
		for _, prev := range seen[h] {
			if idsEqual(prev, a) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], a)
		out = append(out, a)
	}
	return out
}

// mergeOverlapping unions components whose supports share a fact, taking
// the cross product of their alternatives (with dedup). Groups are found
// with a union–find over component indices keyed by fact ownership;
// attribute-level components overlap a peer when their template can
// instantiate one of its facts (tuple peers) or when the two templates
// share an instantiation (positionwise slot intersection — no product is
// ever materialized to decide overlap). Attribute-level members of a
// multi-component group are the degenerate case: they expand to tuple
// level (bounded by MaxMergeAlts) before the cross product.
func (w *WSD) mergeOverlapping() error {
	uf := unionfind.NewDense(len(w.comps))
	owner := make(map[int32]int, len(w.facts))
	var attrIdx []int
	for ci := range w.comps {
		c := &w.comps[ci]
		if c.attr != nil {
			attrIdx = append(attrIdx, ci)
			continue
		}
		for _, alt := range c.alts {
			for _, f := range alt {
				if prev, ok := owner[f]; ok {
					uf.Union(int32(prev), int32(ci))
				} else {
					owner[f] = ci
				}
			}
		}
	}
	// Template vs template: shared instantiation.
	for i, ai := range attrIdx {
		for _, bi := range attrIdx[i+1:] {
			if !uf.Same(int32(ai), int32(bi)) && attrOverlap(w.comps[ai].attr, w.comps[bi].attr) {
				uf.Union(int32(ai), int32(bi))
			}
		}
	}
	// Template vs tuple-level: a stored fact the template can produce.
	if len(attrIdx) > 0 {
		for f, ci := range owner {
			sf := w.facts[f]
			for _, ai := range attrIdx {
				a := w.comps[ai].attr
				if a.rel == sf.rel && !uf.Same(int32(ai), int32(ci)) && a.contains(sf.tuple) {
					uf.Union(int32(ai), int32(ci))
				}
			}
		}
	}

	groups := make(map[int32][]int)
	order := make([]int32, 0, len(w.comps))
	for ci := range w.comps {
		r := uf.Find(int32(ci))
		if _, seen := groups[r]; !seen {
			order = append(order, r)
		}
		groups[r] = append(groups[r], ci)
	}

	merged := make([]component, 0, len(order))
	for _, r := range order {
		members := groups[r]
		if len(members) == 1 {
			merged = append(merged, w.comps[members[0]])
			continue
		}
		w.obsCost.Add(obs.NormComponentsMerged, int64(len(members)))
		product := 1
		memberAlts := make([][][]int32, len(members))
		for k, ci := range members {
			alts := w.comps[ci].alts
			if a := w.comps[ci].attr; a != nil {
				var err error
				if alts, err = w.expandAttr(a); err != nil {
					return err
				}
			}
			memberAlts[k] = alts
			product *= len(alts)
			if product > MaxMergeAlts {
				return fmt.Errorf("wsd: merging %d dependent components needs %d+ alternatives (limit %d); the decomposition is too entangled to normalize",
					len(members), product, MaxMergeAlts)
			}
		}
		// Cross product of alternative unions.
		acc := [][]int32{nil}
		for _, alts := range memberAlts {
			next := make([][]int32, 0, len(acc)*len(alts))
			for _, base := range acc {
				for _, alt := range alts {
					u := make([]int32, 0, len(base)+len(alt))
					u = append(u, base...)
					u = append(u, alt...)
					next = append(next, sortDedupIDs(u))
				}
			}
			acc = next
		}
		merged = append(merged, component{alts: dedupAlts(acc)})
	}
	w.comps = merged
	return nil
}

// tryVerticalSplit is the attribute-level factoring rule: a tuple-level
// component whose alternatives are singleton facts of one relation, and
// whose alternative count equals the product of its per-slot distinct
// value counts, is exactly the cross product of those per-slot value
// sets — the counting argument: the alternatives are pairwise distinct
// (dedup upstream) and each is a member of the product, so equal
// cardinality forces set equality. Certified components are rewritten
// into the template form, which stores Σ|slotᵢ| symbols instead of
// Π|slotᵢ| alternatives; anything else is returned unchanged.
//
// Components whose values would not survive a parse→print round trip
// (names using the slot grammar's reserved characters) are left at
// tuple level so String stays closed under ParseWSD.
func (w *WSD) tryVerticalSplit(c component) component {
	if len(c.alts) < 2 {
		return c
	}
	relIdx := int32(-1)
	for _, alt := range c.alts {
		if len(alt) != 1 {
			return c
		}
		f := w.facts[alt[0]]
		if relIdx < 0 {
			relIdx = f.rel
		} else if f.rel != relIdx {
			return c
		}
	}
	arity := w.schema[relIdx].Arity
	if arity == 0 {
		return c
	}
	seen := make([]map[sym.ID]bool, arity)
	cells := make([][]sym.ID, arity)
	for i := range seen {
		seen[i] = make(map[sym.ID]bool)
	}
	for _, alt := range c.alts {
		t := w.facts[alt[0]].tuple
		for i, id := range t {
			if !seen[i][id] {
				seen[i][id] = true
				cells[i] = append(cells[i], id)
			}
		}
	}
	product := 1
	for _, cell := range cells {
		product *= len(cell)
		if product > len(c.alts) {
			return c // the product strictly exceeds the alternatives: not a full product
		}
	}
	if product != len(c.alts) {
		return c
	}
	for _, cell := range cells {
		for _, id := range cell {
			if !plainCellValue(id.Name()) {
				return c
			}
		}
	}
	for i := range cells {
		cells[i] = sortDedupCell(cells[i])
	}
	w.obsCost.Add(obs.NormVerticalSplits, 1)
	return component{attr: &attrComp{rel: relIdx, cells: cells}}
}

// splitAlts factors one component's alternative list into independent
// sub-components. It is the engine shared by Normalize and FromWorlds:
// the alternatives of a component are treated as the "worlds" of a local
// world set over the component's support, and factored exactly.
//
// The key observation making this cheap: group the support facts into
// blocks of identical traces (a fact's trace is the bit vector of which
// alternatives contain it). Facts of one block always co-occur, so an
// alternative is fully determined by its block bit-vector, and all
// reasoning happens on a (#alts × #blocks) boolean matrix:
//
//   - two blocks are independent iff their trace pair set is the full
//     product of their individual trace value sets;
//   - a candidate partition is valid iff the distinct-projection counts
//     multiply to the total distinct count (inclusion plus counting gives
//     exact equality of the product with the original set).
//
// Candidate partitions are unions of connected components of the pairwise
// dependence graph; each peel is verified by the counting argument, so a
// pairwise-independent but jointly dependent family (the XOR pattern)
// stays atomic, as it must.
func splitAlts(alts [][]int32) [][][]int32 {
	n := len(alts)
	if n <= 1 {
		return [][][]int32{alts}
	}

	// Block discovery: fact -> trace over alternatives.
	words := (n + 63) / 64
	traces := make(map[int32][]uint64)
	var factOrder []int32
	for j, alt := range alts {
		for _, f := range alt {
			tr, ok := traces[f]
			if !ok {
				tr = make([]uint64, words)
				traces[f] = tr
				factOrder = append(factOrder, f)
			}
			tr[j/64] |= 1 << (j % 64)
		}
	}
	if len(factOrder) == 0 {
		// All alternatives empty; dedup upstream leaves exactly one.
		return [][][]int32{alts}
	}

	type block struct {
		facts []int32
		bits  []uint64
	}
	blockOf := make(map[string]int)
	var blocks []block
	for _, f := range factOrder {
		key := traceKey(traces[f])
		bi, ok := blockOf[key]
		if !ok {
			bi = len(blocks)
			blockOf[key] = bi
			blocks = append(blocks, block{bits: traces[f]})
		}
		blocks[bi].facts = append(blocks[bi].facts, f)
	}
	if len(blocks) == 1 {
		return [][][]int32{alts}
	}

	bit := func(bi, j int) byte {
		return byte(blocks[bi].bits[j/64] >> (j % 64) & 1)
	}

	// Pairwise dependence: blocks a and b are independent iff
	// |{(a_j, b_j)}| = |{a_j}| · |{b_j}| over alternatives j.
	dependent := func(a, b int) bool {
		var pairs, aVals, bVals [4]bool
		for j := 0; j < n; j++ {
			ab, bb := bit(a, j), bit(b, j)
			pairs[ab<<1|bb] = true
			aVals[ab] = true
			bVals[bb] = true
		}
		count := func(m [4]bool) int {
			c := 0
			for _, v := range m {
				if v {
					c++
				}
			}
			return c
		}
		return count(pairs) != count(aVals)*count(bVals)
	}

	// Connected components of the dependence graph.
	uf := unionfind.NewDense(len(blocks))
	for a := 0; a < len(blocks); a++ {
		for b := a + 1; b < len(blocks); b++ {
			if !uf.Same(int32(a), int32(b)) && dependent(a, b) {
				uf.Union(int32(a), int32(b))
			}
		}
	}
	ccIdx := make(map[int32]int)
	var ccs [][]int
	for bi := range blocks {
		r := uf.Find(int32(bi))
		gi, ok := ccIdx[r]
		if !ok {
			gi = len(ccs)
			ccIdx[r] = gi
			ccs = append(ccs, nil)
		}
		ccs[gi] = append(ccs[gi], bi)
	}

	// distinctProj counts the distinct alternative signatures restricted
	// to a set of blocks.
	distinctProj := func(groups ...[]int) int {
		seen := make(map[string]bool, n)
		key := make([]byte, 0, len(blocks))
		for j := 0; j < n; j++ {
			key = key[:0]
			for _, g := range groups {
				for _, bi := range g {
					key = append(key, bit(bi, j))
				}
			}
			seen[string(key)] = true
		}
		return len(seen)
	}

	// Greedy verified peeling: split off one connected group at a time,
	// each split confirmed by the counting argument. Whatever cannot be
	// peeled stays one atomic component.
	remaining := ccs
	var groups [][]int
	for len(remaining) > 1 {
		total := distinctProj(remaining...)
		peeled := false
		for i, g := range remaining {
			rest := make([][]int, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			if distinctProj(g)*distinctProj(rest...) == total {
				groups = append(groups, g)
				remaining = rest
				peeled = true
				break
			}
		}
		if !peeled {
			break
		}
	}
	if len(remaining) > 0 {
		var flat []int
		for _, g := range remaining {
			flat = append(flat, g...)
		}
		groups = append(groups, flat)
	}
	if len(groups) == 1 {
		return [][][]int32{alts}
	}

	// Materialize each group's distinct projections as alternatives.
	out := make([][][]int32, 0, len(groups))
	for _, g := range groups {
		seen := make(map[string]bool, n)
		var galts [][]int32
		key := make([]byte, len(g))
		for j := 0; j < n; j++ {
			for k, bi := range g {
				key[k] = bit(bi, j)
			}
			if seen[string(key)] {
				continue
			}
			seen[string(key)] = true
			var facts []int32
			for k, bi := range g {
				if key[k] == 1 {
					facts = append(facts, blocks[bi].facts...)
				}
			}
			galts = append(galts, sortDedupIDs(facts))
		}
		out = append(out, galts)
	}
	return out
}

// traceKey encodes a trace bit vector as a map key.
func traceKey(tr []uint64) string {
	b := make([]byte, 0, len(tr)*8)
	for _, w := range tr {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>s))
		}
	}
	return string(b)
}

// canonicalize rebuilds the fact table in display order and sorts
// alternatives and components, so equal world sets normalize to equal
// printed forms. Attribute-level components keep no fact-table entries;
// their slot value lists are already sorted, and they order among the
// tuple-level components by their minimal instantiation.
func (w *WSD) canonicalize() {
	used := make(map[int32]bool)
	for _, c := range w.comps {
		for _, alt := range c.alts {
			for _, f := range alt {
				used[f] = true
			}
		}
	}
	old := make([]int32, 0, len(used))
	for f := range used {
		old = append(old, f)
	}
	sort.Slice(old, func(i, j int) bool { return w.factLess(old[i], old[j]) })

	remap := make(map[int32]int32, len(old))
	facts := make([]storedFact, len(old))
	index := make(map[uint64][]int32, len(old))
	for newID, oldID := range old {
		remap[oldID] = int32(newID)
		f := w.facts[oldID]
		facts[newID] = f
		h := factHash(f.rel, f.tuple)
		index[h] = append(index[h], int32(newID))
	}
	w.facts = facts
	w.factIndex = index

	for ci := range w.comps {
		c := &w.comps[ci]
		if c.attr != nil {
			continue
		}
		for ai, alt := range c.alts {
			for k, f := range alt {
				alt[k] = remap[f]
			}
			c.alts[ai] = sortDedupIDs(alt)
		}
		sort.Slice(c.alts, func(i, j int) bool { return altLess(c.alts[i], c.alts[j]) })
	}
	// Supports are disjoint, so the smallest support fact of each
	// component — for a template, its minimal instantiation — is a
	// unique sort key.
	sort.Slice(w.comps, func(i, j int) bool {
		ri, ti, oki := w.minSupportFact(&w.comps[i])
		rj, tj, okj := w.minSupportFact(&w.comps[j])
		if oki != okj {
			return oki // fact-less components sort last
		}
		if !oki {
			return false
		}
		if ri != rj {
			return ri < rj
		}
		return ti.Compare(tj) < 0
	})
}

// minSupportFact returns a component's smallest support fact as a
// (schema relation, tuple) pair; ok is false when the component has no
// facts at all.
func (w *WSD) minSupportFact(c *component) (relIdx int32, t sym.Tuple, ok bool) {
	if c.attr != nil {
		return c.attr.rel, c.attr.minTuple(), true
	}
	id := minSupport(*c)
	if id == int32(1<<31-1) {
		return 0, nil, false
	}
	f := w.facts[id]
	return f.rel, f.tuple, true
}

// altLess orders alternatives by length, then lexicographically by IDs.
func altLess(a, b []int32) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// minSupport returns the smallest fact ID of a component's support.
func minSupport(c component) int32 {
	min := int32(1<<31 - 1)
	for _, alt := range c.alts {
		if len(alt) > 0 && alt[0] < min {
			min = alt[0]
		}
	}
	return min
}

// buildIndexes derives the query-path acceleration structures and checks
// the disjoint-support invariant.
func (w *WSD) buildIndexes() {
	w.factComp = make([]int32, len(w.facts))
	for i := range w.factComp {
		w.factComp[i] = -1
	}
	w.certain = make([]bool, len(w.facts))
	w.attrByRel = nil
	for ci := range w.comps {
		c := &w.comps[ci]
		if a := c.attr; a != nil {
			if w.attrByRel == nil {
				w.attrByRel = make(map[int32][]int32)
			}
			w.attrByRel[a.rel] = append(w.attrByRel[a.rel], int32(ci))
			continue
		}
		c.altIndex = make(map[uint64][]int32, len(c.alts))
		inAll := make(map[int32]int)
		for ai, alt := range c.alts {
			h := altHash(alt)
			c.altIndex[h] = append(c.altIndex[h], int32(ai))
			for _, f := range alt {
				if w.factComp[f] >= 0 && w.factComp[f] != int32(ci) {
					panic("wsd: internal error: overlapping component supports after normalize")
				}
				w.factComp[f] = int32(ci)
				inAll[f]++
			}
		}
		for f, n := range inAll {
			if n == len(c.alts) {
				w.certain[f] = true
			}
		}
	}
}
