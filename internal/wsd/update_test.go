// Unit and property tests for the update engine: every operation kind
// against the world-wise reference semantics, the incremental ==
// full-renormalization canonical-form property, and the copy-on-write
// snapshot discipline (the pre-update decomposition must stay byte-for-
// byte intact through arbitrary update chains).
package wsd_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pw/internal/gen"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/wsd"
)

// randomUpdate builds a seeded update over gen.RandomWSD's single
// relation R and c0..cN constant pool, covering all five op kinds,
// wildcards, and multi-op sequences.
func randomUpdate(rng *rand.Rand, arity, consts int) *wsd.Update {
	n := 1 + rng.Intn(3)
	u := &wsd.Update{}
	for i := 0; i < n; i++ {
		kind := wsd.UpdateKind(rng.Intn(5))
		args := make([]string, arity)
		for j := range args {
			if (kind == wsd.OpDelete || kind == wsd.OpSet) && rng.Intn(3) == 0 {
				args[j] = wsd.Wildcard
				continue
			}
			args[j] = fmt.Sprintf("c%d", rng.Intn(consts))
		}
		op := wsd.UpdateOp{Kind: kind, Rel: "R", Args: args}
		if kind == wsd.OpSet {
			for k, seen := 0, map[int]bool{}; k < 1+rng.Intn(arity); k++ {
				s := rng.Intn(arity)
				if seen[s] {
					continue
				}
				seen[s] = true
				op.Set = append(op.Set, wsd.SlotAssign{Slot: s, Value: fmt.Sprintf("c%d", rng.Intn(consts))})
			}
			if len(op.Set) == 0 {
				op.Set = []wsd.SlotAssign{{Slot: 0, Value: "c0"}}
			}
		}
		u.Ops = append(u.Ops, op)
	}
	return u
}

// worldKeys dedups a world list into canonical instance keys.
func worldKeys(ws []*rel.Instance) map[string]bool {
	m := make(map[string]bool, len(ws))
	for _, w := range ws {
		m[w.Key()] = true
	}
	return m
}

// oracleApply is the reference semantics: the update applied to each
// explicit world separately, surviving worlds deduplicated.
func oracleApply(ws []*rel.Instance, u *wsd.Update) map[string]bool {
	out := make(map[string]bool)
	for _, w := range ws {
		if img, ok := u.ApplyToWorld(w); ok {
			out[img.Key()] = true
		}
	}
	return out
}

// boundedBase returns a seeded random base decomposition with a small
// explicit world list, or nil when the draw is too large to expand.
func boundedBase(t *testing.T, seed int64) *wsd.WSD {
	t.Helper()
	w, err := gen.RandomWSD(seed, 4, 3, 2, 5)
	if err != nil {
		t.Fatalf("seed %d: RandomWSD: %v", seed, err)
	}
	if !w.Count().IsInt64() || w.Count().Int64() > 400 {
		return nil
	}
	return w
}

func TestUpdateAgainstWorldsOracle(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 400 && cases < 250; seed++ {
		base := boundedBase(t, seed)
		if base == nil {
			continue
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		u := randomUpdate(rng, 2, 5)
		want := oracleApply(base.Expand(0), u)

		got, err := base.ApplyUpdate(u)
		if err != nil {
			t.Fatalf("seed %d: ApplyUpdate(%q): %v", seed, u, err)
		}
		if !got.Count().IsInt64() || got.Count().Int64() > 2000 {
			t.Fatalf("seed %d: post-update count exploded: %s", seed, got.Count())
		}
		if int(got.Count().Int64()) != len(want) {
			t.Fatalf("seed %d: update %q: Count = %s, oracle has %d worlds\nbase:\n%s\ngot:\n%s",
				seed, u, got.Count(), len(want), base, got)
		}
		for _, inst := range got.Expand(0) {
			if !got.Member(inst) {
				t.Fatalf("seed %d: updated decomposition rejects its own world\nworld:\n%s\ngot:\n%s", seed, inst, got)
			}
		}
		if keys := worldKeys(got.Expand(0)); len(keys) != len(want) {
			t.Fatalf("seed %d: expanded %d distinct worlds, oracle has %d", seed, len(keys), len(want))
		} else {
			for k := range keys {
				if !want[k] {
					t.Fatalf("seed %d: update %q produced a world outside the oracle set\nbase:\n%s\ngot:\n%s",
						seed, u, base, got)
				}
			}
		}
		cases++
	}
	if cases < 150 {
		t.Fatalf("only %d bounded cases; want >= 150", cases)
	}
}

func TestIncrementalMatchesFullRenormalization(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 500 && cases < 250; seed++ {
		base := boundedBase(t, seed)
		if base == nil {
			continue
		}
		rng := rand.New(rand.NewSource(seed ^ 0xfade))
		u := randomUpdate(rng, 2, 5)
		incr, errI := base.ApplyUpdate(u)
		full, errF := base.ApplyUpdateFull(u)
		if (errI == nil) != (errF == nil) {
			t.Fatalf("seed %d: incremental err %v, full err %v", seed, errI, errF)
		}
		if errI != nil {
			continue
		}
		if incr.Count().Cmp(full.Count()) != 0 {
			t.Fatalf("seed %d: update %q: incremental Count %s != full Count %s",
				seed, u, incr.Count(), full.Count())
		}
		if gi, gf := incr.String(), full.String(); gi != gf {
			t.Fatalf("seed %d: update %q: incremental form is not Normalize-canonical\nincremental:\n%s\nfull:\n%s\nbase:\n%s",
				seed, u, gi, gf, base)
		}
		cases++
	}
	if cases < 150 {
		t.Fatalf("only %d canonical-form cases; want >= 150", cases)
	}
}

func TestApplyUpdateLeavesSnapshotIntact(t *testing.T) {
	base, err := gen.RandomWSD(7, 4, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	type snap struct {
		w     *wsd.WSD
		print string
		count string
	}
	chain := []snap{{base, base.String(), base.Count().String()}}
	rng := rand.New(rand.NewSource(99))
	cur := base
	for step := 0; step < 12; step++ {
		u := randomUpdate(rng, 2, 5)
		next, err := cur.ApplyUpdate(u)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// Every snapshot in the chain must still print and count as it
		// did when it was the head: structural sharing, never mutation.
		for i, s := range chain {
			if got := s.w.String(); got != s.print {
				t.Fatalf("step %d mutated snapshot %d:\nwas:\n%s\nnow:\n%s", step, i, s.print, got)
			}
			if got := s.w.Count().String(); got != s.count {
				t.Fatalf("step %d changed snapshot %d count %s -> %s", step, i, s.count, got)
			}
		}
		chain = append(chain, snap{next, next.String(), next.Count().String()})
		cur = next
	}
	// The oldest snapshot still answers membership for its own worlds.
	if !base.Empty() {
		for _, w := range base.Expand(4) {
			if !base.Member(w) {
				t.Fatalf("base snapshot no longer contains its own world:\n%s", w)
			}
		}
	}
}

func TestUpdateTemplatePaths(t *testing.T) {
	mk := func() *wsd.WSD {
		w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
		if err := w.AddTemplateComponent("R", []string{"a", "b"}, []string{"x", "y"}); err != nil {
			t.Fatal(err)
		}
		if err := w.AddComponent(
			wsd.Alt{{Rel: "R", Args: rel.Fact{"hub", "on"}}},
			wsd.Alt{{Rel: "R", Args: rel.Fact{"hub", "off"}}},
		); err != nil {
			t.Fatal(err)
		}
		if err := w.Normalize(); err != nil {
			t.Fatal(err)
		}
		return w
	}

	t.Run("assume collapses template without expansion", func(t *testing.T) {
		w := mk()
		got, err := w.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
			{Kind: wsd.OpAssume, Rel: "R", Args: []string{"a", "x"}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if got.Count().Int64() != 2 {
			t.Fatalf("count = %s, want 2 (template fixed, hub still open)", got.Count())
		}
		if !got.CertainFact("R", rel.Fact{"a", "x"}) {
			t.Fatal("assumed fact did not become certain")
		}
		if got.PossibleFact("R", rel.Fact{"b", "y"}) {
			t.Fatal("excluded instantiation still possible")
		}
	})

	t.Run("assume-not drops one instantiation", func(t *testing.T) {
		w := mk()
		got, err := w.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
			{Kind: wsd.OpAssumeNot, Rel: "R", Args: []string{"a", "x"}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if got.Count().Int64() != 6 {
			t.Fatalf("count = %s, want 6 (3 surviving instantiations x 2)", got.Count())
		}
		if got.PossibleFact("R", rel.Fact{"a", "x"}) {
			t.Fatal("excluded instantiation still possible")
		}
	})

	t.Run("delete wildcard kills template", func(t *testing.T) {
		w := mk()
		got, err := w.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
			{Kind: wsd.OpDelete, Rel: "R", Args: []string{wsd.Wildcard, wsd.Wildcard}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		// Every world maps to the empty instance: exactly one world left.
		if got.Count().Int64() != 1 {
			t.Fatalf("count = %s, want 1", got.Count())
		}
		if got.Empty() {
			t.Fatal("world set became empty; want the single empty world")
		}
	})

	t.Run("insert into template support", func(t *testing.T) {
		w := mk()
		got, err := w.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
			{Kind: wsd.OpInsert, Rel: "R", Args: []string{"a", "x"}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !got.CertainFact("R", rel.Fact{"a", "x"}) {
			t.Fatal("inserted fact not certain")
		}
		// Worlds where the template chose R(a x) merge with the insert:
		// 4 instantiations collapse to 3 distinct residues + certain fact.
		if got.Count().Int64() != 8 {
			t.Fatalf("count = %s, want 8", got.Count())
		}
	})
}

func TestUpdateWorldFilters(t *testing.T) {
	w := wsd.New(table.Schema{{Name: "R", Arity: 1}})
	if err := w.AddComponent(
		wsd.Alt{{Rel: "R", Args: rel.Fact{"a"}}},
		wsd.Alt{{Rel: "R", Args: rel.Fact{"b"}}},
	); err != nil {
		t.Fatal(err)
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}

	got, err := w.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
		{Kind: wsd.OpAssume, Rel: "R", Args: []string{"a"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count().Int64() != 1 || !got.CertainFact("R", rel.Fact{"a"}) {
		t.Fatalf("assume R(a): count %s, certain(a)=%v", got.Count(), got.CertainFact("R", rel.Fact{"a"}))
	}

	// Assuming an impossible fact empties the world set.
	got, err = w.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
		{Kind: wsd.OpAssume, Rel: "R", Args: []string{"zzz"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() || got.Count().Int64() != 0 {
		t.Fatalf("assume impossible: Empty=%v Count=%s, want empty world set", got.Empty(), got.Count())
	}

	// Updates on the empty world set stay empty.
	got2, err := got.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
		{Kind: wsd.OpInsert, Rel: "R", Args: []string{"a"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Empty() {
		t.Fatal("insert into the empty world set produced worlds")
	}

	// assume-not of a certain fact also empties the set.
	certain, err := w.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
		{Kind: wsd.OpInsert, Rel: "R", Args: []string{"c"}},
		{Kind: wsd.OpAssumeNot, Rel: "R", Args: []string{"c"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !certain.Empty() {
		t.Fatal("assume-not of a certain fact left worlds")
	}
}

func TestUpdateErrors(t *testing.T) {
	w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
	if err := w.AddComponent(wsd.Alt{{Rel: "R", Args: rel.Fact{"a", "b"}}}, wsd.Alt{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		op   wsd.UpdateOp
		want string
	}{
		{"unknown relation", wsd.UpdateOp{Kind: wsd.OpInsert, Rel: "Q", Args: []string{"a", "b"}}, "unknown relation"},
		{"arity mismatch", wsd.UpdateOp{Kind: wsd.OpInsert, Rel: "R", Args: []string{"a"}}, "takes 2 slots"},
		{"wildcard in insert", wsd.UpdateOp{Kind: wsd.OpInsert, Rel: "R", Args: []string{"a", "*"}}, "ground fact"},
		{"wildcard in assume", wsd.UpdateOp{Kind: wsd.OpAssume, Rel: "R", Args: []string{"*", "b"}}, "ground fact"},
		{"set without assigns", wsd.UpdateOp{Kind: wsd.OpSet, Rel: "R", Args: []string{"a", "b"}}, "no set assignments"},
		{"set slot out of range", wsd.UpdateOp{Kind: wsd.OpSet, Rel: "R", Args: []string{"a", "b"},
			Set: []wsd.SlotAssign{{Slot: 5, Value: "x"}}}, "sets slot 6"},
		{"set value wildcard", wsd.UpdateOp{Kind: wsd.OpSet, Rel: "R", Args: []string{"a", "b"},
			Set: []wsd.SlotAssign{{Slot: 0, Value: "*"}}}, "must be constants"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := w.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{tc.op}})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	// A rewrite that funnels all 100 century templates onto one shared
	// fact would merge them into a 2^100-alternative component; the
	// blow-up guard rejects it and the base stays usable.
	century := gen.CenturyWSD()
	before := century.Count().String()
	_, err := century.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
		{Kind: wsd.OpSet, Rel: "R", Args: []string{wsd.Wildcard, "hi"},
			Set: []wsd.SlotAssign{{Slot: 0, Value: "shared"}}},
	}})
	if err == nil || !strings.Contains(err.Error(), "too entangled") {
		t.Fatalf("century funnel rewrite: err = %v, want blow-up guard", err)
	}
	if century.Count().String() != before {
		t.Fatal("failed update mutated the base decomposition")
	}
	// Filters touch one template only, so they stay cheap at 2^100 worlds.
	kept, err := century.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
		{Kind: wsd.OpAssume, Rel: "R", Args: []string{"s000", "hi"}},
	}})
	if err != nil {
		t.Fatalf("century assume: %v", err)
	}
	if !kept.CertainFact("R", rel.Fact{"s000", "hi"}) {
		t.Fatal("century assume did not pin the instantiation")
	}
}

func TestUpdateCompaction(t *testing.T) {
	w := wsd.New(table.Schema{{Name: "R", Arity: 1}})
	// 200 certain facts plus one open choice.
	certain := make(wsd.Alt, 0, 200)
	for i := 0; i < 200; i++ {
		certain = append(certain, wsd.Fact{Rel: "R", Args: rel.Fact{fmt.Sprintf("k%03d", i)}})
	}
	if err := w.AddComponent(certain); err != nil {
		t.Fatal(err)
	}
	if err := w.AddComponent(
		wsd.Alt{{Rel: "R", Args: rel.Fact{"open1"}}},
		wsd.Alt{{Rel: "R", Args: rel.Fact{"open2"}}},
	); err != nil {
		t.Fatal(err)
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	// Delete most of the certain facts one update at a time; the hole
	// compaction must keep Size/Support consistent throughout.
	cur := w
	for i := 0; i < 150; i++ {
		next, err := cur.ApplyUpdate(&wsd.Update{Ops: []wsd.UpdateOp{
			{Kind: wsd.OpDelete, Rel: "R", Args: []string{fmt.Sprintf("k%03d", i)}},
		}})
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		cur = next
		if got, want := cur.Size(), 200-(i+1)+2; got != want {
			t.Fatalf("after %d deletes: Size = %d, want %d", i+1, got, want)
		}
	}
	if got := len(cur.Support()); got != 52 {
		t.Fatalf("support enumerates %d facts, want 52", got)
	}
	full, err := w.ApplyUpdateFull(&wsd.Update{Ops: func() []wsd.UpdateOp {
		ops := make([]wsd.UpdateOp, 150)
		for i := range ops {
			ops[i] = wsd.UpdateOp{Kind: wsd.OpDelete, Rel: "R", Args: []string{fmt.Sprintf("k%03d", i)}}
		}
		return ops
	}()})
	if err != nil {
		t.Fatal(err)
	}
	if cur.String() != full.String() {
		t.Fatalf("compacted incremental form differs from full renormalization\nincr:\n%s\nfull:\n%s", cur, full)
	}
}

func TestUpdateStringRoundTrip(t *testing.T) {
	u := &wsd.Update{Ops: []wsd.UpdateOp{
		{Kind: wsd.OpInsert, Rel: "R", Args: []string{"a", "b"}},
		{Kind: wsd.OpDelete, Rel: "R", Args: []string{"a", wsd.Wildcard}},
		{Kind: wsd.OpSet, Rel: "R", Args: []string{wsd.Wildcard, "lo"},
			Set: []wsd.SlotAssign{{Slot: 1, Value: "hi"}}},
		{Kind: wsd.OpAssume, Rel: "R", Args: []string{"a", "b"}},
		{Kind: wsd.OpAssumeNot, Rel: "R", Args: []string{"c", "d"}},
	}}
	want := "@update\n  insert: R(a b)\n  delete: R(a *)\n  update: R(* lo) set 2 = hi\n  assume: R(a b)\n  assume-not: R(c d)"
	if got := u.String(); got != want {
		t.Fatalf("String:\n%s\nwant:\n%s", got, want)
	}
}
