// Updates on decompositions with incremental renormalization. An Update
// is a sequence of operations with "apply to every world" semantics:
//
//	insert: R(a b)            every world gains the fact
//	delete: R(a *)            every world loses the facts matching the pattern
//	update: R(* lo) set 2=hi  matching facts are rewritten slot-wise
//	assume: R(a b)            keep only the worlds containing the fact
//	assume-not: R(a b)        keep only the worlds lacking the fact
//
// The first three are the classical WSD update operations (Antova, Koch
// & Olteanu; Olteanu, Koch & Antova treat updates on decompositions
// directly); the two world-filtering forms are the `choice-of`-style
// hypothetical updates of Koch's world-set algebra, restricting the
// world set by a condition instead of editing worlds.
//
// ApplyUpdate is incremental: an operation touches only the components
// whose supports it matches, and only those are re-factored (dedup,
// horizontal trace/block split, vertical template split, certain fold).
// Untouched components — their alternative lists and alternative
// indexes — and the fact table itself are structurally shared with the
// input decomposition, which is never mutated: the pre-update WSD stays
// a valid consistent snapshot, so a server can keep answering reads
// from it while the update builds its successor. The fact table is
// copied lazily, only when an operation interns a fact the snapshot has
// never seen (copy-on-write).
//
// The incremental result satisfies every normalized invariant the query
// methods rely on (distinct alternatives, disjoint supports, maximal
// factoring, at most one certain component) and prints identically to a
// from-scratch Normalize of the same world set; only its internal fact
// IDs are not display-ordered. Deleted facts leave holes in the shared
// table (they cannot be removed without breaking the snapshot); the
// query paths treat a fact without a component as outside the support,
// and ApplyUpdate compacts the table once holes outnumber live facts.
package wsd

import (
	"fmt"
	"sort"
	"strings"

	"pw/internal/obs"
	"pw/internal/rel"
	"pw/internal/sym"
)

// Wildcard is the pattern slot that matches any constant in delete and
// conditional-update patterns.
const Wildcard = "*"

// UpdateKind enumerates the operations of the @update language.
type UpdateKind int

const (
	// OpInsert adds a ground fact to every world.
	OpInsert UpdateKind = iota
	// OpDelete removes the facts matching a pattern from every world.
	OpDelete
	// OpSet rewrites the slots of every fact matching a pattern
	// (the conditional update; keyword "update" in the syntax).
	OpSet
	// OpAssume keeps only the worlds that contain a ground fact.
	OpAssume
	// OpAssumeNot keeps only the worlds that lack a ground fact.
	OpAssumeNot
)

// keyword returns the .pw directive spelling of the kind.
func (k UpdateKind) keyword() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpSet:
		return "update"
	case OpAssume:
		return "assume"
	case OpAssumeNot:
		return "assume-not"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// SlotAssign is one `set` assignment of a conditional update: slot Slot
// (0-based) of every matching fact becomes the constant Value.
type SlotAssign struct {
	Slot  int
	Value string
}

// UpdateOp is one operation. Args holds one entry per slot of the
// relation: a constant name, or Wildcard for OpDelete/OpSet patterns
// (the other kinds take ground facts only).
type UpdateOp struct {
	Kind UpdateKind
	Rel  string
	Args []string
	Set  []SlotAssign // OpSet only
}

// String renders the operation as one @update body line.
func (op UpdateOp) String() string {
	var b strings.Builder
	b.WriteString(op.Kind.keyword())
	b.WriteString(": ")
	b.WriteString(op.Rel)
	b.WriteString("(")
	b.WriteString(strings.Join(op.Args, " "))
	b.WriteString(")")
	for i, a := range op.Set {
		sep := ", "
		if i == 0 {
			sep = " set "
		}
		fmt.Fprintf(&b, "%s%d = %s", sep, a.Slot+1, a.Value)
	}
	return b.String()
}

// Update is a sequence of operations applied in order: each operation
// maps the whole world set (worlds that become equal merge, so the
// result is again a set).
type Update struct {
	Ops []UpdateOp
}

// String renders the update in .pw @update syntax (parsable by
// parse.ParseUpdate).
func (u *Update) String() string {
	var b strings.Builder
	b.WriteString("@update")
	for _, op := range u.Ops {
		b.WriteString("\n  ")
		b.WriteString(op.String())
	}
	return b.String()
}

// ApplyToWorld applies the update to one explicit world — the reference
// "each world separately" semantics the decomposition engine is
// differential-tested against. ok is false when a world-filtering
// operation rejects the world. The input instance is not mutated.
func (u *Update) ApplyToWorld(w *rel.Instance) (out *rel.Instance, ok bool) {
	cur := w.Clone()
	for i := range u.Ops {
		op := &u.Ops[i]
		switch op.Kind {
		case OpInsert:
			cur.EnsureRelation(op.Rel, len(op.Args)).Insert(rel.Fact(op.Args).Intern())
		case OpAssume, OpAssumeNot:
			r := cur.Relation(op.Rel)
			t, known := lookupArgs(op.Args)
			has := r != nil && known && r.Contains(t)
			if has != (op.Kind == OpAssume) {
				return nil, false
			}
		case OpDelete, OpSet:
			r := cur.Relation(op.Rel)
			if r == nil {
				continue
			}
			pat, live := resolveArgsPattern(op.Args)
			if !live {
				continue
			}
			nr := rel.NewRelation(r.Name, r.Arity)
			for _, t := range r.Tuples() {
				if !pat.matches(t) {
					nr.Insert(t)
					continue
				}
				if op.Kind == OpDelete {
					continue
				}
				nt := t.Clone()
				for _, a := range op.Set {
					nt[a.Slot] = sym.Const(a.Value)
				}
				nr.Insert(nt)
			}
			next := rel.NewInstance()
			for _, rr := range cur.Relations() {
				if rr.Name == r.Name {
					next.AddRelation(nr)
					continue
				}
				next.AddRelation(rr)
			}
			cur = next
		}
	}
	return cur, true
}

// ApplyUpdateToWorlds is the world-wise reference semantics shared by
// the differential tests: the update applied to each explicit world
// separately, non-surviving worlds (failed assumptions) dropped, and
// the results deduplicated.
func ApplyUpdateToWorlds(ws []*rel.Instance, u *Update) []*rel.Instance {
	var out []*rel.Instance
	seen := make(map[string]bool, len(ws))
	for _, w := range ws {
		img, ok := u.ApplyToWorld(w)
		if !ok {
			continue
		}
		if k := img.Key(); !seen[k] {
			seen[k] = true
			out = append(out, img)
		}
	}
	return out
}

// lookupArgs resolves ground args to an interned tuple without growing
// the symbol table; ok is false when a constant has never been seen
// (such a fact is in no stored world).
func lookupArgs(args []string) (sym.Tuple, bool) {
	t := make(sym.Tuple, len(args))
	for i, c := range args {
		id, ok := sym.LookupConst(c)
		if !ok {
			return nil, false
		}
		t[i] = id
	}
	return t, true
}

// symPattern is a resolved match pattern: one slot per relation
// position, either a constant symbol or a wildcard.
type symPattern struct {
	slots []sym.ID
	anys  []bool
}

// resolveArgsPattern resolves pattern args; live is false when a
// constant slot names a never-seen symbol (nothing can match).
func resolveArgsPattern(args []string) (symPattern, bool) {
	p := symPattern{slots: make([]sym.ID, len(args)), anys: make([]bool, len(args))}
	for i, a := range args {
		if a == Wildcard {
			p.anys[i] = true
			continue
		}
		id, ok := sym.LookupConst(a)
		if !ok {
			return p, false
		}
		p.slots[i] = id
	}
	return p, true
}

// matches reports whether the tuple matches the pattern positionwise.
func (p symPattern) matches(t sym.Tuple) bool {
	for i, id := range t {
		if !p.anys[i] && p.slots[i] != id {
			return false
		}
	}
	return true
}

// matchesTemplate reports whether the pattern matches at least one
// instantiation of the template: positionwise, every constrained slot's
// constant must be in the cell.
func (p symPattern) matchesTemplate(a *attrComp) bool {
	if len(p.slots) != len(a.cells) {
		return false
	}
	for i := range p.slots {
		if !p.anys[i] && !cellHas(a.cells[i], p.slots[i]) {
			return false
		}
	}
	return true
}

// ApplyUpdate applies the update with incremental renormalization and
// returns the successor decomposition. The receiver is unchanged and
// remains a valid snapshot: untouched components, their alternative
// indexes, and (until an op interns a new fact) the fact table are
// shared copy-on-write between the two. The only errors are schema
// mismatches and the MaxMergeAlts blow-up guard; on error the receiver
// is still unchanged.
func (w *WSD) ApplyUpdate(u *Update) (*WSD, error) {
	return w.ApplyUpdateObserved(u, nil)
}

// ApplyUpdateObserved is ApplyUpdate with a cost-accounting sink: the
// update engine records touched/survivor component counts and COW
// unshare events into c (which may be nil — then this is exactly
// ApplyUpdate). The sink is detached from the successor before it is
// returned, so it never outlives the request that supplied it.
func (w *WSD) ApplyUpdateObserved(u *Update, c *obs.Cost) (*WSD, error) {
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	out := w.snapshotClone()
	out.obsCost = c
	for i := range u.Ops {
		if err := out.applyOp(&u.Ops[i], false); err != nil {
			return nil, err
		}
	}
	// Deleted facts accumulate as holes in the shared table; once they
	// outnumber the live facts, pay for one canonical rebuild so a
	// long-running update stream cannot leak.
	if out.holes > 64 && out.holes > len(out.facts)-out.holes {
		out = out.compacted()
	}
	out.obsCost = nil
	return out, nil
}

// ApplyUpdateFull is the reference implementation: a deep clone with a
// from-scratch Normalize after every operation. It exists for the
// differential and property tests (the incremental path must produce
// the identical canonical form) and as the benchmark baseline that the
// incremental path is measured against.
func (w *WSD) ApplyUpdateFull(u *Update) (*WSD, error) {
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	out := w.Clone()
	for i := range u.Ops {
		if err := out.applyOp(&u.Ops[i], true); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// snapshotClone returns the copy the incremental path mutates:
// component headers, factComp/certain and attrByRel are copied, while
// alternative lists, alternative indexes, the fact table and the fact
// index are shared with the receiver. The update engine treats every
// shared structure as immutable — touched components are rebuilt into
// fresh slices, and intern copies the fact table first (cowFacts).
func (w *WSD) snapshotClone() *WSD {
	c := &WSD{
		schema:      w.schema,
		schemaIdx:   w.schemaIdx,
		facts:       w.facts[:len(w.facts):len(w.facts)],
		factIndex:   w.factIndex,
		factsShared: true,
		compsShared: true,
		comps:       append([]component(nil), w.comps...),
		empty:       w.empty,
		normalized:  true,
		factComp:    append([]int32(nil), w.factComp...),
		certain:     append([]bool(nil), w.certain...),
		holes:       w.holes,
		factsLoose:  w.factsLoose,
	}
	if w.attrByRel != nil {
		c.attrByRel = make(map[int32][]int32, len(w.attrByRel))
		for r, bucket := range w.attrByRel {
			c.attrByRel[r] = append([]int32(nil), bucket...)
		}
	}
	return c
}

// cowFacts un-shares the fact table and fact index before the first
// intern into a snapshot clone (copy-on-write; bucket slices stay
// shared but capacity-pinned, so an append reallocates).
func (w *WSD) cowFacts() {
	if !w.factsShared {
		return
	}
	w.facts = append(make([]storedFact, 0, len(w.facts)+8), w.facts...)
	idx := make(map[uint64][]int32, len(w.factIndex))
	for h, b := range w.factIndex {
		idx[h] = b[:len(b):len(b)]
	}
	w.factIndex = idx
	w.factsShared = false
	w.obsCost.Add(obs.UpdateCOWUnshares, 1)
}

// compacted returns a fully re-canonicalized copy (fact-table holes
// dropped, IDs back in display order). Normalization of an
// already-valid decomposition cannot hit the merge guard; if it ever
// errored the un-compacted decomposition is returned unchanged.
func (w *WSD) compacted() *WSD {
	c := w.Clone()
	c.normalized = false
	if err := c.Normalize(); err != nil {
		return w
	}
	c.holes, c.factsLoose = 0, false
	return c
}

// opPlan is the outcome of planning one operation: either a trivial
// verdict, or a set of components to drop and the raw (pre-renorm)
// alternative lists replacing them.
type opPlan struct {
	noop   bool
	empty  bool
	drop   []int32
	groups [][][]int32
}

// applyOp plans one operation and installs it, incrementally or via a
// full renormalization.
func (w *WSD) applyOp(op *UpdateOp, full bool) error {
	ri, err := w.opRelIndex(op)
	if err != nil {
		return err
	}
	if w.empty {
		return nil // every operation maps ∅ to ∅
	}
	var p opPlan
	switch op.Kind {
	case OpInsert:
		err = w.planInsert(ri, op, &p)
	case OpDelete, OpSet:
		err = w.planRewrite(ri, op, &p)
	case OpAssume:
		err = w.planAssume(ri, op, true, &p)
	case OpAssumeNot:
		err = w.planAssume(ri, op, false, &p)
	default:
		err = fmt.Errorf("wsd: unknown update op kind %d", int(op.Kind))
	}
	if err != nil {
		return err
	}
	if p.noop {
		return nil
	}
	if p.empty {
		w.clearToEmpty()
		return nil
	}
	if full {
		return w.installFull(&p)
	}
	return w.installIncremental(&p)
}

// opRelIndex validates the operation against the schema.
func (w *WSD) opRelIndex(op *UpdateOp) (int32, error) {
	ri, ok := w.schemaIdx[op.Rel]
	if !ok {
		return 0, fmt.Errorf("wsd: update references unknown relation %s", op.Rel)
	}
	arity := w.schema[ri].Arity
	if len(op.Args) != arity {
		return 0, fmt.Errorf("wsd: update %s: %s takes %d slots, got %d",
			op.Kind.keyword(), op.Rel, arity, len(op.Args))
	}
	if op.Kind != OpDelete && op.Kind != OpSet {
		for _, a := range op.Args {
			if a == Wildcard {
				return 0, fmt.Errorf("wsd: update %s requires a ground fact; %q is the pattern wildcard",
					op.Kind.keyword(), Wildcard)
			}
		}
	}
	if op.Kind == OpSet && len(op.Set) == 0 {
		return 0, fmt.Errorf("wsd: conditional update on %s has no set assignments", op.Rel)
	}
	for _, a := range op.Set {
		if a.Slot < 0 || a.Slot >= arity {
			return 0, fmt.Errorf("wsd: update on %s sets slot %d, relation has %d slots",
				op.Rel, a.Slot+1, arity)
		}
		if a.Value == Wildcard {
			return 0, fmt.Errorf("wsd: update on %s sets slot %d to the wildcard; set values must be constants",
				op.Rel, a.Slot+1)
		}
	}
	return int32(ri), nil
}

// planInsert plans W → W ∪ {f}: the fact joins every alternative of
// its owning component (certain fold happens in the install), or forms
// a new certain component when it is outside the support.
func (w *WSD) planInsert(ri int32, op *UpdateOp, p *opPlan) error {
	t := rel.Fact(op.Args).Intern()
	if id, ok := w.lookup(ri, t); ok && w.factComp[id] >= 0 {
		if w.certain[id] {
			p.noop = true
			return nil
		}
		ci := w.factComp[id]
		c := &w.comps[ci]
		alts := make([][]int32, len(c.alts))
		for i, alt := range c.alts {
			alts[i] = insertSorted(alt, id)
		}
		p.drop = []int32{ci}
		p.groups = [][][]int32{alts}
		return nil
	}
	if ci, ok := w.attrOwner(ri, t); ok {
		alts, err := w.expandAttr(w.comps[ci].attr)
		if err != nil {
			return err
		}
		id := w.intern(ri, t)
		for i, alt := range alts {
			alts[i] = insertSorted(alt, id)
		}
		p.drop = []int32{ci}
		p.groups = [][][]int32{alts}
		return nil
	}
	// Outside the support: a brand-new certain fact.
	id := w.intern(ri, t)
	p.groups = [][][]int32{{{id}}}
	return nil
}

// planAssume plans the world filters: keep the worlds where the fact's
// presence equals keep. Independence makes this local: only the owning
// component's alternatives are filtered.
func (w *WSD) planAssume(ri int32, op *UpdateOp, keep bool, p *opPlan) error {
	id, ci := int32(-1), int32(-1)
	if t, known := lookupArgs(op.Args); known {
		if sid, ok := w.lookup(ri, t); ok && w.factComp[sid] >= 0 {
			id, ci = sid, w.factComp[sid]
		} else if aci, ok := w.attrOwner(ri, t); ok {
			ci = aci
			// The template owns the fact; materialize its ID lazily below.
		}
	}
	if ci < 0 {
		// The fact is possible in no world.
		if keep {
			p.empty = true
		} else {
			p.noop = true
		}
		return nil
	}
	c := &w.comps[ci]
	if a := c.attr; a != nil {
		t, _ := lookupArgs(op.Args)
		if keep {
			// Exactly one instantiation survives: the fact becomes certain.
			p.drop = []int32{ci}
			p.groups = [][][]int32{{{w.intern(ri, t)}}}
			return nil
		}
		alts, err := w.expandAttr(a)
		if err != nil {
			return err
		}
		fid := w.intern(ri, t)
		kept := alts[:0]
		for _, alt := range alts {
			if len(alt) == 1 && alt[0] == fid {
				continue
			}
			kept = append(kept, alt)
		}
		p.drop = []int32{ci}
		p.groups = [][][]int32{kept}
		return nil
	}
	if w.certain[id] {
		if keep {
			p.noop = true
		} else {
			p.empty = true
		}
		return nil
	}
	kept := make([][]int32, 0, len(c.alts))
	for _, alt := range c.alts {
		if containsSorted(alt, []int32{id}) == keep {
			kept = append(kept, alt)
		}
	}
	p.drop = []int32{ci}
	p.groups = [][][]int32{kept}
	return nil
}

// planRewrite plans delete and conditional update: every component
// whose support matches the pattern is rewritten alternative-wise.
// Conditional updates may intern new facts; collisions with other
// components' supports are resolved by the install's overlap merge.
func (w *WSD) planRewrite(ri int32, op *UpdateOp, p *opPlan) error {
	pat, live := resolveArgsPattern(op.Args)
	if !live {
		p.noop = true
		return nil
	}
	var assigns []SlotAssign
	if op.Kind == OpSet {
		assigns = op.Set
	}
	matched := make(map[int32]bool)
	for id := range w.facts {
		ci := w.factComp[id]
		if ci < 0 || w.facts[id].rel != ri {
			continue
		}
		if pat.matches(w.facts[id].tuple) {
			matched[ci] = true
		}
	}
	for _, ci := range w.attrByRel[ri] {
		if pat.matchesTemplate(w.comps[ci].attr) {
			matched[ci] = true
		}
	}
	if len(matched) == 0 {
		p.noop = true
		return nil
	}
	order := make([]int32, 0, len(matched))
	for ci := range matched {
		order = append(order, ci)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, ci := range order {
		c := &w.comps[ci]
		src := c.alts
		if c.attr != nil {
			var err error
			if src, err = w.expandAttr(c.attr); err != nil {
				return err
			}
		}
		dst := make([][]int32, len(src))
		for i, alt := range src {
			dst[i] = w.rewriteAlt(alt, ri, pat, op.Kind == OpDelete, assigns)
		}
		p.drop = append(p.drop, ci)
		p.groups = append(p.groups, dst)
	}
	return nil
}

// rewriteAlt maps one alternative through the delete/update image,
// always into a fresh sorted slice.
func (w *WSD) rewriteAlt(alt []int32, ri int32, pat symPattern, del bool, assigns []SlotAssign) []int32 {
	out := make([]int32, 0, len(alt))
	for _, id := range alt {
		f := w.facts[id]
		if f.rel != ri || !pat.matches(f.tuple) {
			out = append(out, id)
			continue
		}
		if del {
			continue
		}
		t := f.tuple.Clone()
		for _, a := range assigns {
			t[a.Slot] = sym.Const(a.Value)
		}
		out = append(out, w.intern(ri, t))
	}
	return sortDedupIDs(out)
}

// insertSorted returns a fresh sorted copy of alt with id included.
func insertSorted(alt []int32, id int32) []int32 {
	out := make([]int32, 0, len(alt)+1)
	placed := false
	for _, f := range alt {
		if !placed && id <= f {
			if id < f {
				out = append(out, id)
			}
			placed = true
		}
		out = append(out, f)
	}
	if !placed {
		out = append(out, id)
	}
	return out
}

// installFull splices the plan's replacement groups in as plain
// components and runs the from-scratch Normalize — the reference path.
func (w *WSD) installFull(p *opPlan) error {
	drop := make(map[int32]bool, len(p.drop))
	for _, ci := range p.drop {
		drop[ci] = true
	}
	kept := make([]component, 0, len(w.comps)+len(p.groups))
	for ci := range w.comps {
		if !drop[int32(ci)] {
			kept = append(kept, w.comps[ci])
		}
	}
	for _, g := range p.groups {
		kept = append(kept, component{alts: g})
	}
	w.comps = kept
	w.normalized = false
	if err := w.Normalize(); err != nil {
		return err
	}
	w.holes, w.factsLoose = 0, false
	return nil
}

// installIncremental re-establishes the normalized invariants touching
// only the plan's groups: overlap closure pulls in any component whose
// support a rewritten fact collided with, each independent class is
// merged and locally re-factored (dedup, horizontal split, vertical
// split, certain fold), and only the cheap derived arrays are rebuilt
// globally. Untouched components pass through by value, alternative
// lists and indexes shared.
func (w *WSD) installIncremental(p *opPlan) error {
	drop := make(map[int32]bool, len(p.drop))
	for _, ci := range p.drop {
		drop[ci] = true
	}

	// Overlap closure over the replacement groups: walk every fact of
	// every group; a fact owned by a surviving component pulls that
	// component into the working set (its alternatives join the merge),
	// and a fact shared between two groups unions them. Pulled-in
	// components cannot cascade further — their supports are disjoint
	// from everything else — but their facts still register for unions.
	slots := make([][][]int32, len(p.groups))
	copy(slots, p.groups)
	parent := make([]int, len(slots))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	factGroup := make(map[int32]int)
	pulled := make(map[int32]int)
	for qi := 0; qi < len(slots); qi++ {
		for _, alt := range slots[qi] {
			for _, f := range alt {
				if g, seen := factGroup[f]; seen {
					union(qi, g)
				} else {
					factGroup[f] = qi
				}
				if int(f) < len(w.factComp) {
					if ci := w.factComp[f]; ci >= 0 && !drop[ci] {
						if slot, ok := pulled[ci]; ok {
							union(qi, slot)
						} else {
							drop[ci] = true
							slots = append(slots, w.comps[ci].alts)
							parent = append(parent, len(slots)-1)
							pulled[ci] = len(slots) - 1
							union(qi, len(slots)-1)
						}
					}
				}
				sf := w.facts[f]
				for _, ci := range w.attrByRel[sf.rel] {
					if drop[ci] || !w.comps[ci].attr.contains(sf.tuple) {
						continue
					}
					alts, err := w.expandAttr(w.comps[ci].attr)
					if err != nil {
						return err
					}
					drop[ci] = true
					slots = append(slots, alts)
					parent = append(parent, len(slots)-1)
					pulled[ci] = len(slots) - 1
					union(qi, len(slots)-1)
				}
			}
		}
	}

	// Gather the union-find classes in slot order (deterministic).
	classIdx := make(map[int]int)
	var classes [][]int
	for i := range slots {
		r := find(i)
		k, ok := classIdx[r]
		if !ok {
			k = len(classes)
			classIdx[r] = k
			classes = append(classes, nil)
		}
		classes[k] = append(classes[k], i)
	}

	// Merge each class (cross product, bounded like mergeOverlapping)
	// and re-factor it locally.
	var newComps []component
	var certainIDs []int32
	for _, members := range classes {
		var alts [][]int32
		if len(members) == 1 {
			alts = dedupAlts(append([][]int32(nil), slots[members[0]]...))
		} else {
			product := 1
			for _, m := range members {
				product *= len(slots[m])
				if product > MaxMergeAlts {
					return fmt.Errorf("wsd: update merges %d dependent components into %d+ alternatives (limit %d); the decomposition is too entangled to update in place",
						len(members), product, MaxMergeAlts)
				}
			}
			acc := [][]int32{nil}
			for _, m := range members {
				next := make([][]int32, 0, len(acc)*len(slots[m]))
				for _, base := range acc {
					for _, alt := range slots[m] {
						u := make([]int32, 0, len(base)+len(alt))
						u = append(u, base...)
						u = append(u, alt...)
						next = append(next, sortDedupIDs(u))
					}
				}
				acc = next
			}
			alts = dedupAlts(acc)
		}
		if len(alts) == 0 {
			w.clearToEmpty()
			return nil
		}
		for _, sub := range splitAlts(alts) {
			c := w.tryVerticalSplit(component{alts: sub})
			if c.attr != nil {
				newComps = append(newComps, c)
				continue
			}
			if len(sub) == 1 {
				certainIDs = append(certainIDs, sub[0]...)
				continue
			}
			newComps = append(newComps, w.finishComponent(sub))
		}
	}

	// Fold new certain facts into the (single) certain component.
	if len(certainIDs) > 0 {
		for ci := range w.comps {
			if drop[int32(ci)] || w.comps[ci].attr != nil || len(w.comps[ci].alts) != 1 {
				continue
			}
			drop[int32(ci)] = true
			certainIDs = append(certainIDs, w.comps[ci].alts[0]...)
			break
		}
		newComps = append(newComps, w.finishComponent([][]int32{sortDedupIDs(certainIDs)}))
	}

	// Assemble: survivors by value (alternative lists and indexes
	// shared), new components, canonical component order.
	final := make([]component, 0, len(w.comps)+len(newComps))
	for ci := range w.comps {
		if !drop[int32(ci)] {
			final = append(final, w.comps[ci])
		}
	}
	w.obsCost.Add(obs.UpdateTouchedComponents, int64(len(drop)))
	w.obsCost.Add(obs.UpdateSurvivorComponents, int64(len(final)))
	final = append(final, newComps...)
	// Decorate-sort: the display key is a full support scan with symbol
	// lookups, so compute it once per component, not once per comparison.
	type dispKey struct {
		ok  bool
		rel int32
		t   sym.Tuple
	}
	keys := make([]dispKey, len(final))
	ord := make([]int, len(final))
	for i := range final {
		ri, ti, oki := w.displayMinSupportFact(&final[i])
		keys[i] = dispKey{ok: oki, rel: ri, t: ti}
		ord[i] = i
	}
	sort.Slice(ord, func(i, j int) bool {
		a, b := keys[ord[i]], keys[ord[j]]
		if a.ok != b.ok {
			return a.ok
		}
		if !a.ok {
			return false
		}
		if a.rel != b.rel {
			return a.rel < b.rel
		}
		return a.t.Compare(b.t) < 0
	})
	sorted := make([]component, len(final))
	for i, o := range ord {
		sorted[i] = final[o]
	}
	w.comps = sorted
	w.rebuildDerived()
	return nil
}

// finishComponent builds a fresh tuple-level component: alternatives in
// display-canonical order plus the fingerprint index. Alternative ID
// lists are shared with the caller (never mutated).
func (w *WSD) finishComponent(alts [][]int32) component {
	keys := make([][]int32, len(alts))
	for i, alt := range alts {
		k := append([]int32(nil), alt...)
		sort.Slice(k, func(a, b int) bool { return w.factLess(k[a], k[b]) })
		keys[i] = k
	}
	ord := make([]int, len(alts))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return w.altDisplayLess(keys[ord[a]], keys[ord[b]]) })
	sorted := make([][]int32, len(alts))
	for i, o := range ord {
		sorted[i] = alts[o]
	}
	c := component{alts: sorted, altIndex: make(map[uint64][]int32, len(sorted))}
	for ai, alt := range sorted {
		h := altHash(alt)
		c.altIndex[h] = append(c.altIndex[h], int32(ai))
	}
	return c
}

// altDisplayLess orders display-sorted alternative fact lists by
// length, then lexicographically by fact display order — the order
// altLess produces when fact IDs are display-canonical.
func (w *WSD) altDisplayLess(a, b []int32) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return w.factLess(a[i], b[i])
		}
	}
	return false
}

// displayMinSupportFact mirrors minSupportFact under non-canonical IDs:
// the display-least support fact found by scanning the alternatives.
func (w *WSD) displayMinSupportFact(c *component) (relIdx int32, t sym.Tuple, ok bool) {
	if c.attr != nil {
		return c.attr.rel, c.attr.minTuple(), true
	}
	best := int32(-1)
	for _, alt := range c.alts {
		for _, f := range alt {
			if best < 0 || w.factLess(f, best) {
				best = f
			}
		}
	}
	if best < 0 {
		return 0, nil, false
	}
	f := w.facts[best]
	return f.rel, f.tuple, true
}

// rebuildDerived recomputes the cheap derived arrays (factComp,
// certain, attrByRel, hole count) after an incremental install. Facts
// no longer in any component become holes. Certainty needs no
// counting: after the local split, a multi-alternative component has no
// all-alternative fact, so the certain facts are exactly the facts of
// the single-alternative component.
func (w *WSD) rebuildDerived() {
	w.factComp = make([]int32, len(w.facts))
	for i := range w.factComp {
		w.factComp[i] = -1
	}
	w.certain = make([]bool, len(w.facts))
	w.attrByRel = nil
	for ci := range w.comps {
		c := &w.comps[ci]
		if a := c.attr; a != nil {
			if w.attrByRel == nil {
				w.attrByRel = make(map[int32][]int32)
			}
			w.attrByRel[a.rel] = append(w.attrByRel[a.rel], int32(ci))
			continue
		}
		isCertain := len(c.alts) == 1
		for _, alt := range c.alts {
			for _, f := range alt {
				w.factComp[f] = int32(ci)
				w.certain[f] = isCertain
			}
		}
	}
	w.holes = 0
	for _, ci := range w.factComp {
		if ci < 0 {
			w.holes++
		}
	}
	w.factsLoose = true
}
