// Table-driven coverage of the ToWSD compiler's error paths and of the
// attribute-factoring pass: unforced row nulls are ErrInfiniteRep
// (whatever other columns or rows look like), forced and condition-only
// variables compile, and compiled databases with independent nulls land
// in per-slot template form — product-of-slots, not product-of-facts.
package wsd_test

import (
	"errors"
	"strings"
	"testing"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
	"pw/internal/wsd"
)

func parseVal(s string) value.Value {
	if strings.HasPrefix(s, "?") {
		return value.Var(s[1:])
	}
	return value.Const(s)
}

func tupleOf(vals ...string) value.Tuple {
	t := make(value.Tuple, len(vals))
	for i, v := range vals {
		t[i] = parseVal(v)
	}
	return t
}

func eq(l, r string) cond.Atom { return cond.EqAtom(parseVal(l), parseVal(r)) }

// TestToWSDErrorPaths pins the compiler's acceptance boundary.
func TestToWSDErrorPaths(t *testing.T) {
	cases := []struct {
		name     string
		build    func() *table.Database
		infinite bool   // want ErrInfiniteRep
		count    int64  // else: want this exact Count
		certain  string // optional: a fact (space-separated) that must be certain
	}{
		{
			name: "unforced row null",
			build: func() *table.Database {
				tb := table.New("T", 1)
				tb.AddTuple(parseVal("?z"))
				return table.DB(tb)
			},
			infinite: true,
		},
		{
			name: "mixed forced and unforced columns in one row",
			build: func() *table.Database {
				tb := table.New("T", 2)
				tb.AddTuple(parseVal("?x"), parseVal("?y"))
				tb.Global = append(tb.Global, eq("?x", "a"))
				return table.DB(tb)
			},
			infinite: true,
		},
		{
			name: "forced row beside an unforced row",
			build: func() *table.Database {
				tb := table.New("T", 2)
				tb.AddTuple(parseVal("a"), parseVal("?x"))
				tb.AddTuple(parseVal("b"), parseVal("?y"))
				tb.Global = append(tb.Global, eq("?x", "b"))
				return table.DB(tb)
			},
			infinite: true,
		},
		{
			name: "unforced null under an inequality is still infinite",
			build: func() *table.Database {
				tb := table.New("T", 1)
				tb.AddTuple(parseVal("?z"))
				tb.Global = append(tb.Global, cond.NeqAtom(parseVal("?z"), parseVal("a")))
				return table.DB(tb)
			},
			infinite: true,
		},
		{
			name: "forced variable compiles to one certain world",
			build: func() *table.Database {
				tb := table.New("T", 2)
				tb.AddTuple(parseVal("a"), parseVal("?x"))
				tb.Global = append(tb.Global, eq("?x", "b"))
				return table.DB(tb)
			},
			count:   1,
			certain: "a b",
		},
		{
			name: "equality chain forces both columns",
			build: func() *table.Database {
				tb := table.New("T", 2)
				tb.AddTuple(parseVal("?x"), parseVal("?y"))
				tb.Global = append(tb.Global, eq("?x", "?y"), eq("?y", "c"))
				return table.DB(tb)
			},
			count:   1,
			certain: "c c",
		},
		{
			name: "condition-only variable is finite",
			build: func() *table.Database {
				tb := table.New("T", 1)
				tb.Add(table.Row{Values: tupleOf("a"), Cond: cond.Conj(eq("?y", "b"))})
				return table.DB(tb)
			},
			count: 2, // row on / row off
		},
		{
			name: "unsatisfiable global compiles to the empty world set",
			build: func() *table.Database {
				tb := table.New("T", 1)
				tb.AddTuple(parseVal("a"))
				tb.Global = append(tb.Global, eq("b", "c"))
				return table.DB(tb)
			},
			count: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := wsd.ToWSD(tc.build())
			if tc.infinite {
				if err == nil {
					t.Fatalf("ToWSD accepted an infinite rep:\n%s", w)
				}
				if !errors.Is(err, wsd.ErrInfiniteRep) {
					t.Fatalf("error does not wrap ErrInfiniteRep: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ToWSD: %v", err)
			}
			if got := w.Count(); !got.IsInt64() || got.Int64() != tc.count {
				t.Fatalf("Count = %s, want %d", got, tc.count)
			}
			if tc.count == 0 && !w.Empty() {
				t.Fatal("zero-world compile must report Empty")
			}
			if tc.certain != "" {
				if !w.CertainFact("T", rel.Fact(strings.Fields(tc.certain))) {
					t.Fatalf("fact %q not certain:\n%s", tc.certain, w)
				}
			}
		})
	}
}

// TestToWSDAttributeFactoring is the product-of-slots promise: a
// compiled database whose nulls are independent lands in template form
// — one attribute-level component per independent null group, its slot
// domains the enumeration domain — instead of one alternative per
// valuation.
func TestToWSDAttributeFactoring(t *testing.T) {
	dom := []string{"a", "b", "c"}

	// One row, one null: a 1-open-slot template over the domain.
	tb := table.New("T", 2)
	tb.AddTuple(parseVal("k"), parseVal("?x"))
	w, err := wsd.ToWSDOverDomain(table.DB(tb), dom)
	if err != nil {
		t.Fatal(err)
	}
	if w.Components() != 1 || !w.IsTemplate(0) {
		t.Fatalf("single independent null did not compile to a template:\n%s", w)
	}
	if _, cells, _ := w.TemplateSlots(0); len(cells[0]) != 1 || len(cells[1]) != len(dom) {
		t.Fatalf("template slots %v, want fixed k × %d-value domain", cells, len(dom))
	}

	// One row, two independent nulls: a two-open-slot template — |D|²
	// alternatives in 2·|D| symbols.
	tb2 := table.New("T", 2)
	tb2.AddTuple(parseVal("?x"), parseVal("?y"))
	w2, err := wsd.ToWSDOverDomain(table.DB(tb2), dom)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Components() != 1 || !w2.IsTemplate(0) {
		t.Fatalf("independent row nulls did not compile to a template:\n%s", w2)
	}
	if got := w2.Count().Int64(); got != int64(len(dom)*len(dom)) {
		t.Fatalf("Count = %d, want |D|² = %d", got, len(dom)*len(dom))
	}

	// Correlated nulls (repeated variable) are NOT a product: they must
	// stay tuple-level, |D| alternatives on the diagonal.
	tb3 := table.New("T", 2)
	tb3.AddTuple(parseVal("?x"), parseVal("?x"))
	w3, err := wsd.ToWSDOverDomain(table.DB(tb3), dom)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Components() != 1 || w3.IsTemplate(0) {
		t.Fatalf("correlated nulls wrongly factored:\n%s", w3)
	}
	if got := w3.Count().Int64(); got != int64(len(dom)) {
		t.Fatalf("Count = %d, want |D| = %d", got, len(dom))
	}

	// Two rows with independent nulls: two independent templates, |D|²
	// worlds as a product of slots across components... unless the rows
	// can collide (same relation, overlapping instantiations), in which
	// case the merge keeps the count exact — pin both effects via Count.
	tb4 := table.New("T", 2)
	tb4.AddTuple(parseVal("u"), parseVal("?x"))
	tb4.AddTuple(parseVal("v"), parseVal("?y"))
	w4, err := wsd.ToWSDOverDomain(table.DB(tb4), dom)
	if err != nil {
		t.Fatal(err)
	}
	if w4.Components() != 2 || !w4.IsTemplate(0) || !w4.IsTemplate(1) {
		t.Fatalf("independent rows did not compile to two templates:\n%s", w4)
	}
	if got := w4.Count().Int64(); got != int64(len(dom)*len(dom)) {
		t.Fatalf("Count = %d, want |D|² = %d", got, len(dom)*len(dom))
	}
}
