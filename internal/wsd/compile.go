// ToWSD: the compiler from the conditioned-table backend into the
// decomposition backend. Rows are grouped by variable connectivity
// (shared variables across row values, local conditions and global
// atoms); each group compiles to one component by enumerating its own
// small valuation space, and Normalize stitches the components into
// product-normal form (merging groups whose fragments overlap).
package wsd

import (
	"errors"
	"fmt"
	"sort"

	"pw/internal/cond"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/unionfind"
	"pw/internal/valuation"
)

// ErrInfiniteRep is wrapped by ToWSD when the database's world set is
// infinite and therefore not representable as a (finite) decomposition:
// some variable occurs in a row value and is not forced to a constant by
// the global condition, so it ranges over the whole infinite domain 𝒟.
var ErrInfiniteRep = errors.New("rep is infinite")

// MaxCompileValuations bounds the per-group valuation space the compiler
// is willing to enumerate (|domain|^vars for the largest connected
// variable group).
const MaxCompileValuations = 1 << 22

// ToWSD compiles a database to a decomposition denoting exactly rep(d) —
// the true, unrestricted world set. It errors (wrapping ErrInfiniteRep)
// when rep(d) is infinite: after incorporating the equalities implied by
// the global condition, some variable still occurs in a row value, so it
// ranges over infinitely many constants and so does the world set.
// Variables occurring only in conditions are fine: only their
// (in)equality pattern matters, and the canonical domain Δ ∪ Δ′ realizes
// every pattern (Proposition 2.1's genericity argument).
func ToWSD(d *table.Database) (*WSD, error) {
	nd, ok := table.Normalize(d)
	if !ok {
		w := New(d.Schema())
		w.empty = true
		return w, nil
	}
	for _, t := range nd.Tables() {
		for _, r := range t.Rows {
			for _, v := range r.Values {
				if v.IsVar() {
					return nil, fmt.Errorf("wsd: %w: variable ?%s occurs in a row of table %s and is not forced to a constant",
						ErrInfiniteRep, v.Name(), t.Name)
				}
			}
		}
	}
	return compile(nd, valuation.Domain(nd))
}

// ToWSDOverDomain compiles a database to the decomposition of its world
// set restricted to valuations into the given finite domain — the
// standard finite proxy for rep(d). A nil domain means the canonical
// Δ ∪ Δ′ of Proposition 2.1, making the result agree exactly with the
// worlds-oracle enumeration (worlds.All).
func ToWSDOverDomain(d *table.Database, domain []string) (*WSD, error) {
	var dom []sym.ID
	if domain == nil {
		dom = valuation.Domain(d)
	} else {
		dom = make([]sym.ID, len(domain))
		for i, c := range domain {
			dom[i] = sym.Const(c)
		}
	}
	return compile(d, dom)
}

// group is one connected component of the variable-sharing graph: the
// rows and global atoms whose valuation choices are entangled.
type group struct {
	vars  []sym.ID
	rows  []groupRow
	atoms cond.Conjunction
}

// groupRow is one table row assigned to a group.
type groupRow struct {
	rel int32
	row table.Row
}

// compile enumerates each connected variable group's valuations over dom
// and assembles the per-group alternatives into a decomposition.
func compile(d *table.Database, dom []sym.ID) (*WSD, error) {
	w := New(d.Schema())

	// Ground global atoms must hold in every world.
	for _, a := range d.GlobalConjunction() {
		if a.L.IsConst() && a.R.IsConst() && !a.TriviallyTrue() {
			w.empty = true
			return w, nil
		}
	}

	// Union–find over variables: the variables of one row (values plus
	// local condition) are connected, as are the variables of each global
	// atom.
	vars := d.VarIDs(nil, map[sym.ID]bool{})
	slot := make(map[sym.ID]int32, len(vars))
	for i, v := range vars {
		slot[v] = int32(i)
	}
	uf := unionfind.NewDense(len(vars))
	connect := func(vs []sym.ID) {
		for i := 1; i < len(vs); i++ {
			uf.Union(slot[vs[0]], slot[vs[i]])
		}
	}
	rowVars := func(r table.Row) []sym.ID {
		rv := r.Values.VarIDs(nil, map[sym.ID]bool{})
		return r.Cond.VarIDs(rv, map[sym.ID]bool{})
	}
	for _, t := range d.Tables() {
		for _, r := range t.Rows {
			connect(rowVars(r))
		}
		for _, a := range t.Global {
			connect(atomVarIDs(a))
		}
	}

	// Partition rows and atoms by group root; ground rows (no variables
	// anywhere) resolve immediately to certain facts.
	groups := make(map[int32]*group)
	groupOf := func(v sym.ID) *group {
		r := uf.Find(slot[v])
		g, ok := groups[r]
		if !ok {
			g = &group{}
			groups[r] = g
		}
		return g
	}
	var certainIDs []int32
	for _, t := range d.Tables() {
		ri := int32(w.schemaIdx[t.Name])
		for _, r := range t.Rows {
			rv := rowVars(r)
			if len(rv) == 0 {
				if groundCondHolds(r.Cond) {
					tup := make(sym.Tuple, len(r.Values))
					for i, v := range r.Values {
						tup[i] = v.ID()
					}
					certainIDs = append(certainIDs, w.intern(ri, tup))
				}
				continue
			}
			g := groupOf(rv[0])
			g.rows = append(g.rows, groupRow{rel: ri, row: r})
		}
		for _, a := range t.Global {
			if av := atomVarIDs(a); len(av) > 0 {
				g := groupOf(av[0])
				g.atoms = append(g.atoms, a)
			}
		}
	}
	for i, v := range vars {
		if g, ok := groups[uf.Find(int32(i))]; ok {
			g.vars = append(g.vars, v)
		}
	}
	if len(certainIDs) > 0 {
		w.comps = append(w.comps, component{alts: [][]int32{sortDedupIDs(certainIDs)}})
	}

	// Deterministic group order: by smallest variable name.
	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		sym.SortByName(g.vars)
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return sym.Compare(ordered[i].vars[0], ordered[j].vars[0]) < 0
	})

	// Enumerate each group's valuation space into its alternatives.
	for _, g := range ordered {
		space := 1
		for range g.vars {
			space *= len(dom)
			if space > MaxCompileValuations {
				return nil, fmt.Errorf("wsd: group of %d variables over a domain of %d constants exceeds the compile budget of %d valuations",
					len(g.vars), len(dom), MaxCompileValuations)
			}
		}
		u := sym.NewUniverse(g.vars)
		var alts [][]int32
		valuation.Enumerate(u, dom, func(v valuation.V) bool {
			for _, a := range g.atoms {
				if !v.Atom(a) {
					return false
				}
			}
			var ids []int32
			for _, gr := range g.rows {
				if !v.Satisfies(gr.row.Cond) {
					continue
				}
				ids = append(ids, w.intern(gr.rel, v.Tuple(gr.row.Values)))
			}
			alts = append(alts, sortDedupIDs(ids))
			return false
		})
		// Zero surviving valuations mean the global condition is
		// unsatisfiable over the domain: a component with no
		// alternatives, which Normalize collapses to ∅.
		w.comps = append(w.comps, component{alts: alts})
	}

	w.normalized = false
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

// atomVarIDs lists an atom's distinct variables.
func atomVarIDs(a cond.Atom) []sym.ID {
	var out []sym.ID
	if a.L.IsVar() {
		out = append(out, a.L.ID())
	}
	if a.R.IsVar() && (len(out) == 0 || out[0] != a.R.ID()) {
		out = append(out, a.R.ID())
	}
	return out
}

// groundCondHolds evaluates a variable-free conjunction.
func groundCondHolds(c cond.Conjunction) bool {
	for _, a := range c {
		if (a.Op == cond.Eq) != (a.L == a.R) {
			return false
		}
	}
	return true
}
