package wsd

import (
	"math/rand"
	"strings"
	"testing"

	"pw/internal/rel"
	"pw/internal/table"
)

func schemaR() table.Schema { return table.Schema{{Name: "R", Arity: 2}} }

func alt(facts ...[2]string) Alt {
	a := make(Alt, 0, len(facts))
	for _, f := range facts {
		a = append(a, Fact{Rel: "R", Args: rel.Fact{f[0], f[1]}})
	}
	return a
}

func mustAdd(t *testing.T, w *WSD, alts ...Alt) {
	t.Helper()
	if err := w.AddComponent(alts...); err != nil {
		t.Fatal(err)
	}
}

func inst(facts ...[2]string) *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("R", 2)
	for _, f := range facts {
		r.AddRow(f[0], f[1])
	}
	return i
}

func TestCountIsProductOfComponents(t *testing.T) {
	w := New(schemaR())
	mustAdd(t, w, alt([2]string{"s1", "lo"}), alt([2]string{"s1", "hi"}))
	mustAdd(t, w, alt([2]string{"s2", "lo"}), alt([2]string{"s2", "hi"}), alt([2]string{"s2", "mid"}))
	mustAdd(t, w, alt([2]string{"hub", "ok"})) // certain
	if got := w.Count().Int64(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := w.Components(); got != 3 {
		t.Fatalf("Components = %d, want 3", got)
	}
	// Canonical component order is by smallest support fact: the certain
	// hub fragment, then s1, then s2.
	if got := w.Alternatives(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Alternatives = %v, want [1 2 3]", got)
	}
	if got := w.Size(); got != 6 {
		t.Fatalf("Size = %d facts, want 6", got)
	}
	if n := len(w.Expand(0)); n != 6 {
		t.Fatalf("Expand yielded %d worlds, want 6", n)
	}
}

func TestMemberPossCert(t *testing.T) {
	w := New(schemaR())
	mustAdd(t, w, alt([2]string{"s1", "lo"}), alt([2]string{"s1", "hi"}))
	mustAdd(t, w, alt([2]string{"s2", "lo"}), alt([2]string{"s2", "hi"}))
	mustAdd(t, w, alt([2]string{"hub", "ok"}))

	if !w.Member(inst([2]string{"s1", "lo"}, [2]string{"s2", "hi"}, [2]string{"hub", "ok"})) {
		t.Error("valid world rejected")
	}
	if w.Member(inst([2]string{"s1", "lo"}, [2]string{"s2", "hi"})) {
		t.Error("world missing the certain fact accepted")
	}
	if w.Member(inst([2]string{"s1", "lo"}, [2]string{"s1", "hi"}, [2]string{"s2", "lo"}, [2]string{"hub", "ok"})) {
		t.Error("world taking two alternatives of one component accepted")
	}
	if w.Member(inst([2]string{"s1", "lo"}, [2]string{"s2", "hi"}, [2]string{"hub", "ok"}, [2]string{"zz", "zz"})) {
		t.Error("world with a fact outside the support accepted")
	}

	if !w.PossibleFact("R", rel.Fact{"s1", "lo"}) {
		t.Error("supported fact not possible")
	}
	if w.PossibleFact("R", rel.Fact{"zz", "zz"}) {
		t.Error("unsupported fact possible")
	}
	if !w.CertainFact("R", rel.Fact{"hub", "ok"}) {
		t.Error("certain fact not certain")
	}
	if w.CertainFact("R", rel.Fact{"s1", "lo"}) {
		t.Error("alternative-dependent fact certain")
	}

	// Co-occurrence matters for multi-fact possibility: s1→lo and s1→hi
	// are each possible but never together.
	if !w.Possible(inst([2]string{"s1", "lo"}, [2]string{"s2", "hi"})) {
		t.Error("cross-component fact pair not possible")
	}
	if w.Possible(inst([2]string{"s1", "lo"}, [2]string{"s1", "hi"})) {
		t.Error("mutually exclusive alternatives jointly possible")
	}
	if !w.Certain(inst([2]string{"hub", "ok"})) {
		t.Error("certain instance not certain")
	}
	if w.Certain(inst([2]string{"s1", "lo"})) {
		t.Error("uncertain instance certain")
	}
}

func TestNormalizeMergesOverlappingComponents(t *testing.T) {
	// Two "independent" components that can produce the same fact are
	// dependent; the merge must dedup the union worlds so Count is exact.
	w := New(schemaR())
	mustAdd(t, w, alt([2]string{"a", "1"}), alt([2]string{"b", "1"}))
	mustAdd(t, w, alt([2]string{"a", "1"}), alt([2]string{"c", "1"}))
	// Unions: {a}, {a,c}, {a,b}, {b,c} — 4 distinct worlds.
	if got := w.Count().Int64(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := len(w.Expand(0)); got != 4 {
		t.Fatalf("Expand = %d worlds, want 4", got)
	}
}

func TestNormalizeSplitsIndependentComponent(t *testing.T) {
	// One hand-written component that is secretly a 2×2 product.
	w := New(schemaR())
	mustAdd(t, w,
		alt([2]string{"x", "0"}, [2]string{"y", "0"}),
		alt([2]string{"x", "0"}, [2]string{"y", "1"}),
		alt([2]string{"x", "1"}, [2]string{"y", "0"}),
		alt([2]string{"x", "1"}, [2]string{"y", "1"}),
	)
	if got := w.Components(); got != 2 {
		t.Fatalf("split produced %d components, want 2", got)
	}
	if got := w.Count().Int64(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
}

func TestNormalizeKeepsXORAtomic(t *testing.T) {
	// Pairwise independent but jointly dependent (parity): must NOT split.
	w := New(schemaR())
	mustAdd(t, w,
		alt(),
		alt([2]string{"x", "1"}, [2]string{"y", "1"}),
		alt([2]string{"x", "1"}, [2]string{"z", "1"}),
		alt([2]string{"y", "1"}, [2]string{"z", "1"}),
	)
	if got := w.Components(); got != 1 {
		t.Fatalf("XOR pattern split into %d components, want 1 (atomic)", got)
	}
	if got := w.Count().Int64(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
}

func TestEmptyWorldSet(t *testing.T) {
	w := New(schemaR())
	mustAdd(t, w) // zero alternatives: no choice possible
	if !w.Empty() {
		t.Fatal("component with no alternatives must denote the empty world set")
	}
	if got := w.Count().Int64(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
	if w.Member(inst()) {
		t.Error("empty world set has a member")
	}
	if w.Possible(inst()) {
		t.Error("POSS(∅) true on the empty world set")
	}
	if !w.Certain(inst([2]string{"a", "b"})) {
		t.Error("CERT vacuously true on the empty world set")
	}
	if w.Sample(rand.New(rand.NewSource(1))) != nil {
		t.Error("Sample on the empty world set")
	}
}

func TestZeroComponentsDenoteOneEmptyWorld(t *testing.T) {
	w := New(schemaR())
	if got := w.Count().Int64(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	ws := w.Expand(0)
	if len(ws) != 1 || ws[0].Size() != 0 {
		t.Fatalf("Expand = %v, want one empty world", ws)
	}
	if !w.Member(inst()) {
		t.Error("empty world not a member")
	}
}

func TestSampleIsAWorld(t *testing.T) {
	w := New(schemaR())
	mustAdd(t, w, alt([2]string{"s1", "lo"}), alt([2]string{"s1", "hi"}))
	mustAdd(t, w, alt([2]string{"s2", "lo"}), alt([2]string{"s2", "hi"}))
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 20; k++ {
		s := w.Sample(rng)
		if !w.Member(s) {
			t.Fatalf("sampled instance is not a member:\n%s", s)
		}
	}
}

func TestStringRoundTripStable(t *testing.T) {
	w := New(schemaR())
	mustAdd(t, w, alt([2]string{"b", "1"}), alt([2]string{"a", "1"}))
	mustAdd(t, w, alt([2]string{"c", "1"}))
	w.ensure()
	s1 := w.String()
	if !strings.HasPrefix(s1, "@wsd") {
		t.Fatalf("String does not start with @wsd: %q", s1)
	}
	// Normalization is idempotent: re-normalizing must not change the
	// printed form.
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s2 := w.String(); s2 != s1 {
		t.Fatalf("String drifted across Normalize:\nfirst:  %q\nsecond: %q", s1, s2)
	}
}

func TestAddComponentValidation(t *testing.T) {
	w := New(schemaR())
	if err := w.AddComponent(Alt{{Rel: "S", Args: rel.Fact{"a"}}}); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := w.AddComponent(Alt{{Rel: "R", Args: rel.Fact{"a"}}}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	w := New(schemaR())
	mustAdd(t, w, alt([2]string{"a", "1"}), alt([2]string{"b", "1"}))
	w.ensure()
	c := w.Clone()
	mustAdd(t, w, alt([2]string{"c", "1"}), alt([2]string{"d", "1"}))
	if got := c.Count().Int64(); got != 2 {
		t.Fatalf("clone count changed after original mutated: %d", got)
	}
	if got := w.Count().Int64(); got != 4 {
		t.Fatalf("original count = %d, want 4", got)
	}
}
