// Native decision procedures on the decomposition. None of them
// enumerate worlds: counting is a product of component sizes, membership
// is one fingerprint probe per component, and possibility/certainty of
// facts are support lookups. All run in time polynomial in the size of
// the decomposition, even when it denotes astronomically many worlds.
package wsd

import (
	"math/big"
	"math/rand"
	"sort"

	"pw/internal/rel"
	"pw/internal/sym"
)

// Count returns the exact number of worlds the decomposition denotes:
// the product of the component sizes, where an attribute-level
// component's size is the product of its slot domain sizes — computed
// without materializing any field product, so a decomposition of a few
// hundred template slots counts 2^100+ worlds exactly. Exactness relies
// on the normalized invariants (disjoint supports, distinct
// alternatives), which make the choice-vector → world map injective.
func (w *WSD) Count() *big.Int {
	w.ensure()
	if w.empty {
		return big.NewInt(0)
	}
	n := big.NewInt(1)
	for _, c := range w.comps {
		if c.attr != nil {
			n.Mul(n, c.attr.count())
			continue
		}
		n.Mul(n, big.NewInt(int64(len(c.alts))))
	}
	return n
}

// schemaMatches reports whether the instance has exactly the
// decomposition's relations (names and arities; order-insensitive) —
// the same strictness as rel.Instance.Equal, which the worlds oracle
// decides membership with.
func (w *WSD) schemaMatches(i *rel.Instance) bool {
	if len(i.Relations()) != len(w.schema) {
		return false
	}
	for _, s := range w.schema {
		r := i.Relation(s.Name)
		if r == nil || r.Arity != s.Arity {
			return false
		}
	}
	return true
}

// Member decides MEMB(−) on the decomposition: i ∈ rep(w)? One pass over
// the instance's facts plus one alternative probe per component —
// polynomial time, per component, as promised by the WSD papers. An
// attribute-level component never materializes its field product: a
// fact resolves to it by positionwise slot-domain membership, and the
// instance matches iff exactly one of its facts instantiates the
// template (every world contains exactly one instantiation).
func (w *WSD) Member(i *rel.Instance) bool {
	w.ensure()
	if w.empty || !w.schemaMatches(i) {
		return false
	}
	// Partition the instance's facts by component; a fact outside the
	// support can appear in no world.
	perComp := make([][]int32, len(w.comps))
	attrHits := make([]int, len(w.comps))
	for _, r := range i.Relations() {
		ri := int32(w.schemaIdx[r.Name])
		for _, t := range r.Tuples() {
			// A stored fact without a component is a hole left by an
			// update: outside the support unless a template covers it.
			if id, ok := w.lookup(ri, t); ok && w.factComp[id] >= 0 {
				ci := w.factComp[id]
				perComp[ci] = append(perComp[ci], id)
				continue
			}
			ci, ok := w.attrOwner(ri, t)
			if !ok {
				return false
			}
			attrHits[ci]++
		}
	}
	// The instance is a world iff its restriction to every component's
	// support is one of that component's alternatives (including the
	// empty restriction matching an empty alternative) — for a template,
	// iff exactly one instance fact instantiates it.
	for ci := range w.comps {
		if w.comps[ci].attr != nil {
			if attrHits[ci] != 1 {
				return false
			}
			continue
		}
		ids := perComp[ci]
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		if !w.comps[ci].hasAlt(ids) {
			return false
		}
	}
	return true
}

// attrOwner resolves a tuple outside the stored fact table to the
// attribute-level component whose template can instantiate it.
func (w *WSD) attrOwner(relIdx int32, t sym.Tuple) (int32, bool) {
	for _, ci := range w.attrByRel[relIdx] {
		if w.comps[ci].attr.contains(t) {
			return ci, true
		}
	}
	return 0, false
}

// hasAlt reports whether the sorted ID list is one of the component's
// alternatives (fingerprint probe with exact confirmation).
func (c *component) hasAlt(ids []int32) bool {
	for _, ai := range c.altIndex[altHash(ids)] {
		if idsEqual(c.alts[ai], ids) {
			return true
		}
	}
	return false
}

// PossibleFact decides POSS(1,−): does some world contain the fact? On a
// normalized decomposition the support is exactly the set of possible
// facts (every stored fact occurs in some alternative, every template
// instantiation in some slot choice, and the other components are
// independent), so this is a fact-table lookup plus a positionwise
// template probe.
func (w *WSD) PossibleFact(relName string, f rel.Fact) bool {
	w.ensure()
	if w.empty {
		return false
	}
	if id, ok := w.lookupBoundary(relName, f); ok && w.factComp[id] >= 0 {
		return true
	}
	_, ok := w.attrOwnerBoundary(relName, f)
	return ok
}

// attrOwnerBoundary resolves a boundary fact to the attribute-level
// component that can instantiate it, without growing any intern table.
func (w *WSD) attrOwnerBoundary(relName string, f rel.Fact) (int32, bool) {
	ri, ok := w.schemaIdx[relName]
	if !ok || len(f) != w.schema[ri].Arity || len(w.attrByRel[int32(ri)]) == 0 {
		return 0, false
	}
	t := make(sym.Tuple, len(f))
	for i, c := range f {
		id, ok := sym.LookupConst(c)
		if !ok {
			return 0, false
		}
		t[i] = id
	}
	return w.attrOwner(int32(ri), t)
}

// CertainFact decides CERT(1,−): does every world contain the fact? True
// iff the fact occurs in every alternative of its component. Vacuously
// true on the empty world set, matching the worlds oracle.
func (w *WSD) CertainFact(relName string, f rel.Fact) bool {
	w.ensure()
	if w.empty {
		return true
	}
	id, ok := w.lookupBoundary(relName, f)
	return ok && w.certain[id]
}

// Possible decides POSS(∗,−): does some world contain every fact of p?
// Because components are independent, this holds iff each component has
// an alternative containing all of p's facts that fall in its support —
// checked with sorted-list inclusion, no enumeration. A template's
// alternatives are single instantiations, so at most one of p's facts
// may fall in any one attribute-level component.
func (w *WSD) Possible(p *rel.Instance) bool {
	w.ensure()
	if w.empty {
		return false
	}
	perComp := make(map[int32][]int32)
	attrHits := make(map[int32]int)
	for _, r := range p.Relations() {
		ri, ok := w.schemaIdx[r.Name]
		if !ok {
			if r.Len() > 0 {
				return false
			}
			continue
		}
		for _, t := range r.Tuples() {
			id, found := w.lookup(int32(ri), t)
			if !found || w.factComp[id] < 0 {
				ci, ok := w.attrOwner(int32(ri), t)
				if !ok {
					return false
				}
				if attrHits[ci]++; attrHits[ci] > 1 {
					return false // two distinct instantiations of one template never co-occur
				}
				continue
			}
			ci := w.factComp[id]
			perComp[ci] = append(perComp[ci], id)
		}
	}
	for ci, need := range perComp {
		sort.Slice(need, func(a, b int) bool { return need[a] < need[b] })
		found := false
		for _, alt := range w.comps[ci].alts {
			if containsSorted(alt, need) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Certain decides CERT(∗,−): does every world contain every fact of p?
// True iff each of p's facts is certain. Vacuously true on ∅.
func (w *WSD) Certain(p *rel.Instance) bool {
	w.ensure()
	if w.empty {
		return true
	}
	for _, r := range p.Relations() {
		ri, ok := w.schemaIdx[r.Name]
		if !ok {
			if r.Len() > 0 {
				return false
			}
			continue
		}
		for _, t := range r.Tuples() {
			id, found := w.lookup(int32(ri), t)
			if !found || !w.certain[id] {
				return false
			}
		}
	}
	return true
}

// containsSorted reports whether the sorted list sub is contained in the
// sorted list sup.
func containsSorted(sup, sub []int32) bool {
	i := 0
	for _, want := range sub {
		for i < len(sup) && sup[i] < want {
			i++
		}
		if i >= len(sup) || sup[i] != want {
			return false
		}
		i++
	}
	return true
}

// World materializes the world selected by one alternative index per
// component. It panics on a malformed choice vector (programming error).
func (w *WSD) World(choice []int) *rel.Instance {
	w.ensure()
	if w.empty {
		panic("wsd: World on the empty world set")
	}
	if len(choice) != len(w.comps) {
		panic("wsd: choice vector length mismatch")
	}
	inst := rel.NewInstance()
	for _, s := range w.schema {
		inst.AddRelation(rel.NewRelation(s.Name, s.Arity))
	}
	for ci, ai := range choice {
		if a := w.comps[ci].attr; a != nil {
			if _, ok := a.countInt(); !ok {
				panic("wsd: World on a template with more alternatives than fit an int; enumerate with Count/Sample instead")
			}
			inst.Relations()[a.rel].Insert(a.tupleAt(ai))
			continue
		}
		for _, id := range w.comps[ci].alts[ai] {
			f := w.facts[id]
			inst.Relations()[f.rel].Insert(f.tuple)
		}
	}
	return inst
}

// Each enumerates the worlds of the decomposition in odometer order over
// the choice vectors, calling fn for each; enumeration stops early (and
// Each returns true) when fn returns true. Distinct choices yield
// distinct worlds (normalized invariants), so no dedup pass is needed —
// but the world count is the product of component sizes, so callers
// bound the enumeration themselves (see Expand).
func (w *WSD) Each(fn func(*rel.Instance) bool) bool {
	w.ensure()
	if w.empty {
		return false
	}
	choice := make([]int, len(w.comps))
	for {
		if fn(w.World(choice)) {
			return true
		}
		i := len(choice) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < w.comps[i].altCount() {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			return false
		}
	}
}

// Expand materializes at most limit worlds (limit <= 0 means all — only
// safe when Count is known small). It is the bounded inverse of
// FromWorlds: Expand(FromWorlds(W), 0) reproduces W up to order.
func (w *WSD) Expand(limit int) []*rel.Instance {
	var out []*rel.Instance
	w.Each(func(i *rel.Instance) bool {
		out = append(out, i)
		return limit > 0 && len(out) >= limit
	})
	return out
}

// Sample draws one world uniformly at random: a uniform independent
// choice per component — per slot for attribute-level components, so
// sampling stays exact and cheap even when a template's field product
// is astronomically large. Exact because the choice-vector → world map
// is a bijection onto rep(w). Returns nil on the empty world set.
func (w *WSD) Sample(rng *rand.Rand) *rel.Instance {
	w.ensure()
	if w.empty {
		return nil
	}
	inst := rel.NewInstance()
	for _, s := range w.schema {
		inst.AddRelation(rel.NewRelation(s.Name, s.Arity))
	}
	for ci := range w.comps {
		c := &w.comps[ci]
		if a := c.attr; a != nil {
			t := make(sym.Tuple, len(a.cells))
			for i, cell := range a.cells {
				if len(cell) == 1 {
					t[i] = cell[0] // fixed slot: no choice, no rng draw
					continue
				}
				t[i] = cell[rng.Intn(len(cell))]
			}
			inst.Relations()[a.rel].Insert(t)
			continue
		}
		for _, id := range c.alts[rng.Intn(len(c.alts))] {
			f := w.facts[id]
			inst.Relations()[f.rel].Insert(f.tuple)
		}
	}
	return inst
}
