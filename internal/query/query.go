// Package query defines the uniform query abstraction the decision
// problems of §2.3 are parameterised by. A Query maps instances to
// instances with PTIME data-complexity (the paper's QPTIME restriction is
// met by construction: all concrete queries here are algebra, first-order
// or DATALOG queries). Queries additionally report the constants they
// mention — needed to build the Δ of Proposition 2.1 — and, when they lie
// in fragments with special algorithms, implement marker interfaces:
//
//   - Liftable: positive existential (possibly with ≠ selections); can be
//     applied directly to a c-table database, producing a c-table database
//     with rep(q(T)) = q(rep(T)) (Imielinski–Lipski).
//   - HomPreserved: preserved under homomorphisms (positive existential
//     without ≠, and DATALOG); enables frozen-instance certainty
//     (Theorem 5.3(1)) and frozen-instance uniqueness (Theorem 3.2(2)).
package query

import (
	"fmt"

	"pw/internal/algebra"
	"pw/internal/datalog"
	"pw/internal/fo"
	"pw/internal/rel"
	"pw/internal/table"
)

// Query maps instances to instances in PTIME (data-complexity).
type Query interface {
	// Label names the query for error messages and reports.
	Label() string
	// Eval applies the query.
	Eval(*rel.Instance) (*rel.Instance, error)
	// Consts returns the constants mentioned by the query program.
	Consts() []string
}

// Liftable queries evaluate directly on conditioned tables.
type Liftable interface {
	Query
	// EvalLifted rewrites a c-table database into one representing the view
	// q(rep(d)).
	EvalLifted(*table.Database) (*table.Database, error)
}

// HomPreserved marks queries q with h(q(I)) ⊆ q(h(I)) for every
// homomorphism h (constant-fixing map extended to instances).
type HomPreserved interface {
	Query
	// homPreserved is a marker; implementations return true.
	HomPreserved() bool
}

// Identity is the identity query (the "−" of MEMB(−), CONT(−,−), …).
type Identity struct{}

// Label implements Query.
func (Identity) Label() string { return "identity" }

// Eval implements Query.
func (Identity) Eval(i *rel.Instance) (*rel.Instance, error) { return i, nil }

// Consts implements Query.
func (Identity) Consts() []string { return nil }

// EvalLifted implements Liftable: the identity view of a database is the
// database.
func (Identity) EvalLifted(d *table.Database) (*table.Database, error) { return d, nil }

// HomPreserved implements HomPreserved.
func (Identity) HomPreserved() bool { return true }

// IsIdentity reports whether q is the identity query.
func IsIdentity(q Query) bool {
	_, ok := q.(Identity)
	return ok
}

// Out is one output relation of a vector query.
type Out struct {
	Name string
	Expr algebra.Expr
}

// Algebra is a vector of named positive-existential algebra expressions
// (the q = (q₁, q₂) style of the paper's reductions).
type Algebra struct {
	Name string
	Outs []Out
}

// NewAlgebra builds an algebra query.
func NewAlgebra(name string, outs ...Out) Algebra { return Algebra{Name: name, Outs: outs} }

// Label implements Query.
func (a Algebra) Label() string {
	if a.Name != "" {
		return a.Name
	}
	return "algebra"
}

// Eval implements Query.
func (a Algebra) Eval(i *rel.Instance) (*rel.Instance, error) {
	out := rel.NewInstance()
	for _, o := range a.Outs {
		r, err := algebra.EvalToRelation(o.Expr, i, o.Name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Label(), err)
		}
		out.AddRelation(r)
	}
	return out, nil
}

// Consts implements Query.
func (a Algebra) Consts() []string {
	var out []string
	for _, o := range a.Outs {
		out = append(out, o.Expr.Consts()...)
	}
	return out
}

// EvalLifted implements Liftable.
func (a Algebra) EvalLifted(d *table.Database) (*table.Database, error) {
	out := table.NewDatabase()
	for i, o := range a.Outs {
		t, err := algebra.EvalToTable(o.Expr, d, o.Name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Label(), err)
		}
		if i > 0 {
			t.Global = nil // carry the global once
		}
		out.AddTable(t)
	}
	return out, nil
}

// Positive reports whether every output expression avoids ≠.
func (a Algebra) Positive() bool {
	for _, o := range a.Outs {
		if !o.Expr.Positive() {
			return false
		}
	}
	return true
}

// HomPreserved implements HomPreserved for positive algebra queries. The
// marker must only be trusted when Positive() is true; decision procedures
// check both.
func (a Algebra) HomPreserved() bool { return a.Positive() }

// FOOut is one output relation of a first-order vector query.
type FOOut struct {
	Name string
	Q    fo.Query
}

// FO is a vector of named first-order queries.
type FO struct {
	Name string
	Outs []FOOut
}

// NewFO builds a first-order query.
func NewFO(name string, outs ...FOOut) FO { return FO{Name: name, Outs: outs} }

// Label implements Query.
func (f FO) Label() string {
	if f.Name != "" {
		return f.Name
	}
	return "first-order"
}

// Eval implements Query.
func (f FO) Eval(i *rel.Instance) (*rel.Instance, error) {
	out := rel.NewInstance()
	for _, o := range f.Outs {
		r, err := o.Q.Eval(i, o.Name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.Label(), err)
		}
		out.AddRelation(r)
	}
	return out, nil
}

// Consts implements Query.
func (f FO) Consts() []string {
	var out []string
	for _, o := range f.Outs {
		out = append(out, o.Q.Consts()...)
	}
	return out
}

// Datalog wraps a DATALOG program as a query; the output instance contains
// the relations named in Outputs (IDB predicates).
type Datalog struct {
	Name      string
	Program   datalog.Program
	Outputs   []string
	SemiNaive bool // default true via NewDatalog
}

// NewDatalog builds a DATALOG query with semi-naive evaluation.
func NewDatalog(name string, p datalog.Program, outputs ...string) Datalog {
	return Datalog{Name: name, Program: p, Outputs: outputs, SemiNaive: true}
}

// Label implements Query.
func (d Datalog) Label() string {
	if d.Name != "" {
		return d.Name
	}
	return "datalog"
}

// Eval implements Query.
func (d Datalog) Eval(i *rel.Instance) (*rel.Instance, error) {
	var idb *rel.Instance
	var err error
	if d.SemiNaive {
		idb, err = d.Program.Eval(i)
	} else {
		idb, err = d.Program.EvalNaive(i)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", d.Label(), err)
	}
	out := rel.NewInstance()
	for _, name := range d.Outputs {
		r := idb.Relation(name)
		if r == nil {
			return nil, fmt.Errorf("%s: output %s is not an IDB predicate", d.Label(), name)
		}
		out.AddRelation(r)
	}
	return out, nil
}

// Consts implements Query.
func (d Datalog) Consts() []string { return d.Program.Consts() }

// HomPreserved implements HomPreserved: pure DATALOG is preserved under
// homomorphisms.
func (d Datalog) HomPreserved() bool { return true }

// Compile-time interface checks.
var (
	_ Liftable     = Identity{}
	_ Liftable     = Algebra{}
	_ HomPreserved = Identity{}
	_ HomPreserved = Algebra{}
	_ HomPreserved = Datalog{}
	_ Query        = FO{}
)

// IsHomPreserved reports whether q is marked preserved under
// homomorphisms and the marker is live (for Algebra: positive).
func IsHomPreserved(q Query) bool {
	h, ok := q.(HomPreserved)
	return ok && h.HomPreserved()
}

// AsLiftable returns the query as Liftable when it supports lifted
// evaluation on conditioned tables.
func AsLiftable(q Query) (Liftable, bool) {
	l, ok := q.(Liftable)
	return l, ok
}
