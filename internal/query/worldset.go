package query

import (
	"fmt"

	"pw/internal/algebra"
	"pw/internal/rel"
	"pw/internal/sym"
)

// HasWorldSetOps reports whether q uses the world-set algebra operators
// (possible/certain/choiceof) anywhere. Such queries are not per-world
// maps: Eval on a single instance refuses them, and decision procedures
// that enumerate candidate worlds cannot apply them soundly.
func HasWorldSetOps(q Query) bool {
	a, ok := q.(Algebra)
	if !ok {
		return false
	}
	for _, o := range a.Outs {
		if algebra.HasWorldSetOps(o.Expr) {
			return true
		}
	}
	return false
}

// HasExtendedOps reports whether q uses any operator beyond the positive
// fragment with ≠ selections (world-set operators or diff).
func HasExtendedOps(q Query) bool {
	a, ok := q.(Algebra)
	if !ok {
		return false
	}
	for _, o := range a.Outs {
		if algebra.HasExtendedOps(o.Expr) {
			return true
		}
	}
	return false
}

// maxAnswerWorlds bounds the explicit answer-world enumeration of
// EvalOnWorldSet per input world; the oracle exists for harnesses and
// small examples, not production evaluation.
const maxAnswerWorlds = 1 << 16

// EvalOnWorldSet evaluates q against an explicit world set under the
// world-set algebra semantics, returning the answer worlds (with
// duplicates possible; callers deduplicate by fingerprint). For queries
// without world-set operators this is exactly per-world evaluation. For
// algebra queries with them, each world contributes the cross product of
// its outputs' choice branches, with possible/certain collapsed over the
// whole world set.
func EvalOnWorldSet(q Query, worlds []*rel.Instance) ([]*rel.Instance, error) {
	a, ok := q.(Algebra)
	if !ok || !HasWorldSetOps(q) {
		out := make([]*rel.Instance, 0, len(worlds))
		for _, w := range worlds {
			r, err := q.Eval(w)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}
	ev := algebra.NewWorldSetEval(worlds)
	var out []*rel.Instance
	for wi := range worlds {
		type outBranches struct {
			name     string
			cols     []string
			branches [][]sym.Tuple
		}
		obs := make([]outBranches, len(a.Outs))
		combos := 1
		for i, o := range a.Outs {
			cols, bs, err := ev.Branches(o.Expr, wi)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", a.Label(), err)
			}
			obs[i] = outBranches{name: o.Name, cols: cols, branches: bs}
			combos *= len(bs)
			if combos > maxAnswerWorlds {
				return nil, fmt.Errorf("%s: answer-world count exceeds %d per input world", a.Label(), maxAnswerWorlds)
			}
		}
		// Odometer over the outputs' independent choice axes: one answer
		// world per joint branch choice.
		choice := make([]int, len(obs))
		for {
			inst := rel.NewInstance()
			for i, ob := range obs {
				r := rel.NewRelation(ob.name, len(ob.cols))
				for _, t := range ob.branches[choice[i]] {
					r.Insert(t)
				}
				inst.AddRelation(r)
			}
			out = append(out, inst)
			k := len(choice) - 1
			for k >= 0 {
				choice[k]++
				if choice[k] < len(obs[k].branches) {
					break
				}
				choice[k] = 0
				k--
			}
			if k < 0 {
				break
			}
		}
	}
	return out, nil
}
