package query

import (
	"testing"

	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/datalog"
	"pw/internal/fo"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
)

func sampleInstance() *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("R", 2)
	r.AddRow("1", "2")
	r.AddRow("2", "2")
	return i
}

func TestIdentity(t *testing.T) {
	q := Identity{}
	i := sampleInstance()
	out, err := q.Eval(i)
	if err != nil || out != i {
		t.Errorf("identity must return its input: %v %v", out, err)
	}
	if !IsIdentity(q) || IsIdentity(Algebra{}) {
		t.Error("IsIdentity broken")
	}
	if len(q.Consts()) != 0 {
		t.Error("identity mentions no constants")
	}
	if !IsHomPreserved(q) {
		t.Error("identity is hom-preserved")
	}
	d := table.DB(table.New("R", 2))
	ld, err := q.EvalLifted(d)
	if err != nil || ld != d {
		t.Error("identity lift must return its input")
	}
}

func TestAlgebraQueryEvalAndLift(t *testing.T) {
	q := NewAlgebra("diag",
		Out{Name: "Q", Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("R", "a", "b"), algebra.EqP(algebra.Col("a"), algebra.Col("b"))),
			Cols: []string{"a"},
		}})
	out, err := q.Eval(sampleInstance())
	if err != nil {
		t.Fatal(err)
	}
	if r := out.Relation("Q"); r == nil || r.Len() != 1 || !r.Has(rel.Fact{"2"}) {
		t.Errorf("Q = %v", out)
	}
	if !q.Positive() || !IsHomPreserved(q) {
		t.Error("equality-only query is positive and hom-preserved")
	}
	if _, ok := AsLiftable(q); !ok {
		t.Error("algebra queries are liftable")
	}

	// Lift over a table with a variable.
	tb := table.New("R", 2)
	tb.AddTuple(value.Const("1"), value.Var("x"))
	lifted, err := q.EvalLifted(table.DB(tb))
	if err != nil {
		t.Fatal(err)
	}
	lt := lifted.Table("Q")
	if lt == nil || len(lt.Rows) != 1 {
		t.Fatalf("lifted = %v", lifted)
	}
	if len(lt.Rows[0].Cond) == 0 {
		t.Error("lifted row must carry the selection condition x=1")
	}
}

func TestAlgebraNegativePositivity(t *testing.T) {
	q := NewAlgebra("neq",
		Out{Name: "Q", Expr: algebra.Where(algebra.Scan("R", "a", "b"),
			algebra.NeqP(algebra.Col("a"), algebra.Col("b")))})
	if q.Positive() || IsHomPreserved(q) {
		t.Error("≠ select must not be positive/hom-preserved")
	}
	if _, ok := AsLiftable(q); !ok {
		t.Error("≠ selects are still liftable")
	}
}

func TestAlgebraConstsAndLabel(t *testing.T) {
	q := NewAlgebra("",
		Out{Name: "Q", Expr: algebra.Where(algebra.Scan("R", "a", "b"),
			algebra.EqP(algebra.Col("a"), algebra.Lit("7")))})
	if q.Label() != "algebra" {
		t.Errorf("default label = %q", q.Label())
	}
	cs := q.Consts()
	if len(cs) != 1 || cs[0] != "7" {
		t.Errorf("consts = %v", cs)
	}
}

func TestAlgebraVectorOutput(t *testing.T) {
	q := NewAlgebra("pair",
		Out{Name: "A", Expr: algebra.Project{E: algebra.Scan("R", "a", "b"), Cols: []string{"a"}}},
		Out{Name: "B", Expr: algebra.Project{E: algebra.Scan("R", "a", "b"), Cols: []string{"b"}}},
	)
	out, err := q.Eval(sampleInstance())
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("A") == nil || out.Relation("B") == nil {
		t.Fatalf("vector output = %v", out)
	}
	// Lifted: the global condition must be carried exactly once.
	tb := table.New("R", 2)
	tb.AddTuple(value.Var("x"), value.Var("y"))
	tb.Global = append(tb.Global, cond.NeqAtom(value.Var("x"), value.Var("y")))
	lifted, err := q.EvalLifted(table.DB(tb))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, lt := range lifted.Tables() {
		n += len(lt.Global)
	}
	if n != 1 {
		t.Errorf("global condition must be carried once, found %d atoms", n)
	}
}

func TestFOQuery(t *testing.T) {
	q := NewFO("probe", FOOut{Name: "Q", Q: fo.Query{
		Head: []string{"x"},
		Body: fo.Exists{Vars: []string{"y"}, F: fo.At("R", value.Var("x"), value.Var("y"))},
	}})
	out, err := q.Eval(sampleInstance())
	if err != nil {
		t.Fatal(err)
	}
	if r := out.Relation("Q"); r == nil || r.Len() != 2 {
		t.Errorf("Q = %v", out)
	}
	if _, ok := AsLiftable(q); ok {
		t.Error("first-order queries are not liftable")
	}
	if IsHomPreserved(q) {
		t.Error("first-order queries are not marked hom-preserved")
	}
	if q.Label() != "probe" {
		t.Errorf("label = %q", q.Label())
	}
}

func TestDatalogQuery(t *testing.T) {
	prog := datalog.Program{Rules: []datalog.Rule{
		datalog.R(datalog.At("Q", value.Var("x")),
			datalog.At("R", value.Var("x"), value.Var("x"))),
	}}
	q := NewDatalog("loops", prog, "Q")
	out, err := q.Eval(sampleInstance())
	if err != nil {
		t.Fatal(err)
	}
	if r := out.Relation("Q"); r == nil || r.Len() != 1 || !r.Has(rel.Fact{"2"}) {
		t.Errorf("Q = %v", out)
	}
	if !IsHomPreserved(q) {
		t.Error("datalog is hom-preserved")
	}
	if _, ok := AsLiftable(q); ok {
		t.Error("datalog is not liftable")
	}
	bad := NewDatalog("bad", prog, "Missing")
	if _, err := bad.Eval(sampleInstance()); err == nil {
		t.Error("unknown output predicate must error")
	}
}
