// Package matching implements bipartite maximum matching. Theorem 3.1(1)
// reduces MEMB on Codd-tables to maximum bipartite matching; the package
// provides Hopcroft–Karp (O(E·√V)) as the production algorithm and a
// simple augmenting-path matcher (O(V·E)) as a reference implementation for
// cross-validation and for the ablation benchmark A1.
package matching

// Graph is a bipartite graph with left vertices 0..NLeft-1 and right
// vertices 0..NRight-1; Adj[u] lists the right neighbours of left vertex u.
type Graph struct {
	NLeft, NRight int
	Adj           [][]int
}

// NewGraph returns an empty bipartite graph of the given dimensions.
func NewGraph(nLeft, nRight int) *Graph {
	return &Graph{NLeft: nLeft, NRight: nRight, Adj: make([][]int, nLeft)}
}

// AddEdge connects left vertex u to right vertex v.
func (g *Graph) AddEdge(u, v int) {
	g.Adj[u] = append(g.Adj[u], v)
}

const infinity = int(^uint(0) >> 1)

// HopcroftKarp returns a maximum matching: matchL[u] is the right vertex
// matched to left vertex u (or -1), matchR symmetrically, and the size.
func HopcroftKarp(g *Graph) (matchL, matchR []int, size int) {
	matchL = make([]int, g.NLeft)
	matchR = make([]int, g.NRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, g.NLeft)
	queue := make([]int, 0, g.NLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < g.NLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = infinity
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, v := range g.Adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == infinity {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range g.Adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = infinity
		return false
	}

	for bfs() {
		for u := 0; u < g.NLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return matchL, matchR, size
}

// Simple returns a maximum matching via repeated augmenting-path search
// (Kuhn's algorithm). Same contract as HopcroftKarp; kept as the reference
// implementation and ablation baseline.
func Simple(g *Graph) (matchL, matchR []int, size int) {
	matchL = make([]int, g.NLeft)
	matchR = make([]int, g.NRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	visited := make([]bool, g.NRight)
	var try func(u int) bool
	try = func(u int) bool {
		for _, v := range g.Adj[u] {
			if visited[v] {
				continue
			}
			visited[v] = true
			if matchR[v] == -1 || try(matchR[v]) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		return false
	}
	for u := 0; u < g.NLeft; u++ {
		for i := range visited {
			visited[i] = false
		}
		if try(u) {
			size++
		}
	}
	return matchL, matchR, size
}

// Perfect reports whether a maximum matching saturates every left vertex.
func Perfect(g *Graph) bool {
	_, _, size := HopcroftKarp(g)
	return size == g.NLeft
}
