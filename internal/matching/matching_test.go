package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSmallMatchings(t *testing.T) {
	// Perfect matching on a 2x2 complete graph.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	if _, _, size := HopcroftKarp(g); size != 2 {
		t.Errorf("complete 2x2 matching = %d", size)
	}
	if !Perfect(g) {
		t.Error("Perfect should hold")
	}
}

func TestBottleneck(t *testing.T) {
	// Two left vertices compete for one right vertex.
	g := NewGraph(2, 1)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	if _, _, size := HopcroftKarp(g); size != 1 {
		t.Errorf("bottleneck matching = %d, want 1", size)
	}
	if Perfect(g) {
		t.Error("Perfect must fail")
	}
}

func TestAugmentingPathNeeded(t *testing.T) {
	// Classic case where greedy fails but augmenting succeeds:
	// L0-{R0,R1}, L1-{R0}. Greedy L0→R0 blocks L1; augmenting flips L0→R1.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	ml, mr, size := HopcroftKarp(g)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	if ml[0] != 1 || ml[1] != 0 || mr[0] != 1 || mr[1] != 0 {
		t.Errorf("matching = %v / %v", ml, mr)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	if _, _, size := HopcroftKarp(g); size != 0 {
		t.Error("empty graph must have empty matching")
	}
	if !Perfect(g) {
		t.Error("empty graph has a (vacuously) perfect matching")
	}
	g2 := NewGraph(3, 0)
	if Perfect(g2) {
		t.Error("no right vertices cannot saturate the left")
	}
}

func TestMatchingValidity(t *testing.T) {
	// A matching must be a set of disjoint edges drawn from the graph.
	check := func(g *Graph, ml, mr []int, size int) bool {
		cnt := 0
		for u, vtx := range ml {
			if vtx == -1 {
				continue
			}
			cnt++
			if mr[vtx] != u {
				return false
			}
			found := false
			for _, w := range g.Adj[u] {
				if w == vtx {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return cnt == size
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n, m := 1+rng.Intn(8), 1+rng.Intn(8)
		g := NewGraph(n, m)
		for u := 0; u < n; u++ {
			for vtx := 0; vtx < m; vtx++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(u, vtx)
				}
			}
		}
		ml, mr, size := HopcroftKarp(g)
		if !check(g, ml, mr, size) {
			t.Fatalf("invalid matching on trial %d", trial)
		}
	}
}

// TestHopcroftKarpMatchesSimple: both algorithms must agree on maximum
// matching size for random graphs.
func TestHopcroftKarpMatchesSimple(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(10), 1+rng.Intn(10)
		g := NewGraph(n, m)
		for u := 0; u < n; u++ {
			for vtx := 0; vtx < m; vtx++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(u, vtx)
				}
			}
		}
		_, _, hk := HopcroftKarp(g)
		_, _, sm := Simple(g)
		return hk == sm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAgainstBruteForce compares against exhaustive subset search on tiny
// graphs.
func TestAgainstBruteForce(t *testing.T) {
	brute := func(g *Graph) int {
		type edge struct{ u, v int }
		var edges []edge
		for u := range g.Adj {
			for _, v := range g.Adj[u] {
				edges = append(edges, edge{u, v})
			}
		}
		best := 0
		for mask := 0; mask < 1<<len(edges); mask++ {
			usedL := map[int]bool{}
			usedR := map[int]bool{}
			ok, cnt := true, 0
			for i, e := range edges {
				if mask&(1<<i) == 0 {
					continue
				}
				if usedL[e.u] || usedR[e.v] {
					ok = false
					break
				}
				usedL[e.u], usedR[e.v] = true, true
				cnt++
			}
			if ok && cnt > best {
				best = cnt
			}
		}
		return best
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n, m := 1+rng.Intn(4), 1+rng.Intn(4)
		g := NewGraph(n, m)
		for u := 0; u < n; u++ {
			for v := 0; v < m; v++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		_, _, hk := HopcroftKarp(g)
		if want := brute(g); hk != want {
			t.Fatalf("trial %d: HK=%d brute=%d", trial, hk, want)
		}
	}
}
