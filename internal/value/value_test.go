package value

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestConstVarDistinct(t *testing.T) {
	c := Const("x")
	v := Var("x")
	if c == v {
		t.Fatal("constant x and variable x must differ")
	}
	if c.IsVar() || !c.IsConst() {
		t.Error("Const kind wrong")
	}
	if !v.IsVar() || v.IsConst() {
		t.Error("Var kind wrong")
	}
	if c.Name() != "x" || v.Name() != "x" {
		t.Error("names wrong")
	}
}

func TestValueString(t *testing.T) {
	if got := Const("a").String(); got != "a" {
		t.Errorf("Const string = %q", got)
	}
	if got := Var("a").String(); got != "?a" {
		t.Errorf("Var string = %q", got)
	}
}

func TestCompareOrdersConstantsFirst(t *testing.T) {
	if Const("z").Compare(Var("a")) != -1 {
		t.Error("constants must sort before variables")
	}
	if Var("a").Compare(Const("z")) != 1 {
		t.Error("variables must sort after constants")
	}
	if Const("a").Compare(Const("b")) != -1 {
		t.Error("name order broken")
	}
	if Var("x").Compare(Var("x")) != 0 {
		t.Error("equal values must compare 0")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(an, bn string, av, bv bool) bool {
		var a, b Value
		if av {
			a = Var(an)
		} else {
			a = Const(an)
		}
		if bv {
			b = Var(bn)
		} else {
			b = Const(bn)
		}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleBasics(t *testing.T) {
	tp := NewTuple(Const("1"), Var("x"), Const("2"))
	if tp.Ground() {
		t.Error("tuple with variable reported ground")
	}
	if !Consts("1", "2").Ground() {
		t.Error("constant tuple reported non-ground")
	}
	c := tp.Clone()
	c[0] = Const("9")
	if tp[0].Name() != "1" {
		t.Error("Clone aliases the original")
	}
	if !tp.Equal(NewTuple(Const("1"), Var("x"), Const("2"))) {
		t.Error("Equal broken")
	}
	if tp.Equal(NewTuple(Const("1"), Var("y"), Const("2"))) {
		t.Error("Equal ignores variable names")
	}
	if tp.String() != "(1, ?x, 2)" {
		t.Errorf("String = %q", tp.String())
	}
}

func TestTupleVarsDedup(t *testing.T) {
	tp := NewTuple(Var("x"), Var("y"), Var("x"))
	vs := tp.Vars(nil, map[string]bool{})
	if len(vs) != 2 || vs[0] != "x" || vs[1] != "y" {
		t.Errorf("Vars = %v", vs)
	}
}

func TestSortTuples(t *testing.T) {
	ts := []Tuple{
		NewTuple(Var("x")),
		NewTuple(Const("b")),
		NewTuple(Const("a"), Const("a")),
		NewTuple(Const("a")),
	}
	SortTuples(ts)
	want := []string{"(a)", "(a, a)", "(b)", "(?x)"}
	for i, w := range want {
		if ts[i].String() != w {
			t.Errorf("position %d = %s, want %s", i, ts[i], w)
		}
	}
}

func TestTupleCompareLexicographic(t *testing.T) {
	f := func(a, b []string) bool {
		ta, tb := Consts(a...), Consts(b...)
		c := ta.Compare(tb)
		// Consistency with string sort of rendered forms on constants:
		sa, sb := ta.String(), tb.String()
		_ = sa
		_ = sb
		return c == -tb.Compare(ta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreshConsts(t *testing.T) {
	fs := FreshConsts("~f", 3)
	if len(fs) != 3 {
		t.Fatal("wrong count")
	}
	names := map[string]bool{}
	for _, f := range fs {
		if !f.IsConst() {
			t.Error("fresh value is not a constant")
		}
		names[f.Name()] = true
	}
	if len(names) != 3 {
		t.Error("fresh constants are not distinct")
	}
	sort.Strings(FreshNames("~f", 4))
}
