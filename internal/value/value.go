// Package value defines the elementary symbols of the possible-worlds
// framework: constants drawn from a countably infinite set 𝒟 and variables
// (nulls) drawn from a disjoint set 𝒱, plus tuples over them.
//
// The paper (§2.2) assumes 𝒟 ∩ 𝒱 = ∅. We enforce the distinction in the
// type: a Value wraps an interned symbol ID (internal/sym) whose kind bit
// keeps the namespaces disjoint, so "x" the constant and "x" the variable
// are different values. A Value is four bytes and compares with ==; names
// are resolved only at the display boundary.
package value

import (
	"fmt"
	"sort"
	"strings"

	"pw/internal/sym"
)

// Value is a constant or a variable (null). The zero Value is the constant
// with the empty name; use Const and Var to build meaningful values.
type Value struct {
	id sym.ID
}

// Const returns the constant named name.
func Const(name string) Value { return Value{id: sym.Const(name)} }

// Var returns the variable (null) named name.
func Var(name string) Value { return Value{id: sym.Var(name)} }

// Of wraps an interned symbol ID as a Value.
func Of(id sym.ID) Value { return Value{id: id} }

// ID returns the value's interned symbol.
func (v Value) ID() sym.ID { return v.id }

// Name returns the symbol's name without kind decoration.
func (v Value) Name() string { return v.id.Name() }

// IsVar reports whether v is a variable.
func (v Value) IsVar() bool { return v.id.IsVar() }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return !v.id.IsVar() }

// String renders constants bare and variables with a leading '?', matching
// the .pw text format of internal/parse.
func (v Value) String() string { return v.id.String() }

// Compare orders values canonically: constants before variables, then by
// name. It returns -1, 0, or +1.
func (v Value) Compare(w Value) int { return sym.Compare(v.id, w.id) }

// Subst is a substitution: a map from variables (as Values, so the kind
// bit disambiguates for free) to replacement values. Constants are never
// keys.
type Subst map[Value]Value

// Tuple is a fixed-arity sequence of values: one row of a table before any
// condition is attached.
type Tuple []Value

// NewTuple copies vs into a fresh tuple.
func NewTuple(vs ...Value) Tuple {
	t := make(Tuple, len(vs))
	copy(t, vs)
	return t
}

// Consts builds a tuple of constants from names.
func Consts(names ...string) Tuple {
	t := make(Tuple, len(names))
	for i, n := range names {
		t[i] = Const(n)
	}
	return t
}

// Clone returns a deep copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Ground reports whether the tuple contains no variables.
func (t Tuple) Ground() bool {
	for _, v := range t {
		if v.IsVar() {
			return false
		}
	}
	return true
}

// Vars appends the names of the variables occurring in t to dst, in order
// of first occurrence, without duplicates already present in seen. It
// returns the extended slice. Pass a shared seen map when accumulating over
// many tuples.
func (t Tuple) Vars(dst []string, seen map[string]bool) []string {
	for _, v := range t {
		if v.IsVar() && !seen[v.Name()] {
			seen[v.Name()] = true
			dst = append(dst, v.Name())
		}
	}
	return dst
}

// VarIDs appends the IDs of the variables occurring in t to dst, in order
// of first occurrence (dedup via seen).
func (t Tuple) VarIDs(dst []sym.ID, seen map[sym.ID]bool) []sym.ID {
	for _, v := range t {
		if v.IsVar() && !seen[v.id] {
			seen[v.id] = true
			dst = append(dst, v.id)
		}
	}
	return dst
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Compare orders tuples lexicographically (shorter first on prefix ties).
func (t Tuple) Compare(u Tuple) int {
	n := min(len(t), len(u))
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// SortTuples sorts ts in place in the canonical order.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// FreshConsts returns n constants named prefix0..prefix(n-1) guaranteed (by
// the caller choosing a suitable prefix) to be outside a given active
// domain. It is the Δ′ of Proposition 2.1.
func FreshConsts(prefix string, n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = Const(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// FreshNames returns n constant names with the given prefix.
func FreshNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}
