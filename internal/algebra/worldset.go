// World-set algebra operators, after Koch's compositional query algebra
// for uncertain databases: possible, certain and choice-of are operators
// on *sets of worlds*, not per-world maps, so they compose with the
// ordinary relational operators instead of being terminal readouts.
//
// Semantics over a world set W (fixed here and mirrored natively by
// internal/wsdalg; the differential harness pins the two against each
// other):
//
//   - possible(e): in every world, the union of e's value across all
//     worlds of W — a certain relation.
//   - certain(e): in every world, the intersection of e's value across
//     all worlds of W — a certain relation.
//   - choiceof(e): hypothetical selection. Each world w with e(w) = {t₁,…,tₙ}
//     splits into n worlds, one per tuple tᵢ, in which the expression's
//     value is the singleton {tᵢ}; a world with e(w) = ∅ maps to the single
//     world where the value is ∅. Each syntactic choiceof occurrence is an
//     independent choice axis.
//   - diff(l, r): per-world set difference (schemas must agree, as for
//     union). diff is an ordinary per-world map and also evaluates on a
//     single instance; the three operators above do not.
//
// possible/certain collapse over the base worlds *and* the choice axes
// inside their own operand; choice axes in sibling subtrees do not affect
// the operand's value and therefore do not affect the collapse.
package algebra

import (
	"errors"
	"fmt"
	"sort"

	"pw/internal/rel"
	"pw/internal/sym"
)

// ErrWorldSetOp marks evaluation of a world-set operator in a context
// that has no world set (a single complete-information instance).
var ErrWorldSetOp = errors.New("algebra: world-set operator outside a world-set context")

// Possible is the world-set operator possible(e): the union of e's value
// over every world, available as a certain relation in every world.
type Possible struct{ E Expr }

func (p Possible) Schema() ([]string, error) { return p.E.Schema() }
func (p Possible) Positive() bool            { return false }
func (p Possible) Consts() []string          { return p.E.Consts() }
func (p Possible) String() string            { return fmt.Sprintf("possible(%s)", p.E) }

// Certain is the world-set operator certain(e): the intersection of e's
// value over every world, available as a certain relation in every world.
type Certain struct{ E Expr }

func (c Certain) Schema() ([]string, error) { return c.E.Schema() }
func (c Certain) Positive() bool            { return false }
func (c Certain) Consts() []string          { return c.E.Consts() }
func (c Certain) String() string            { return fmt.Sprintf("certain(%s)", c.E) }

// ChoiceOf is the hypothetical what-if operator choiceof(e): each world
// splits into one world per tuple of e's value there, with the value
// restricted to that single tuple (∅ stays ∅).
type ChoiceOf struct{ E Expr }

func (c ChoiceOf) Schema() ([]string, error) { return c.E.Schema() }
func (c ChoiceOf) Positive() bool            { return false }
func (c ChoiceOf) Consts() []string          { return c.E.Consts() }
func (c ChoiceOf) String() string            { return fmt.Sprintf("choiceof(%s)", c.E) }

// Diff is per-world set difference; the operands must have identical
// schemas (as for Union).
type Diff struct{ L, R Expr }

func (d Diff) Schema() ([]string, error) {
	ls, err := d.L.Schema()
	if err != nil {
		return nil, err
	}
	rs, err := d.R.Schema()
	if err != nil {
		return nil, err
	}
	if len(ls) != len(rs) {
		return nil, fmt.Errorf("diff: schemas %v and %v differ in arity", ls, rs)
	}
	for i := range ls {
		if ls[i] != rs[i] {
			return nil, fmt.Errorf("diff: schemas %v and %v differ; rename first", ls, rs)
		}
	}
	return ls, nil
}
func (d Diff) Positive() bool   { return false }
func (d Diff) Consts() []string { return append(d.L.Consts(), d.R.Consts()...) }
func (d Diff) String() string   { return fmt.Sprintf("(%s ∖ %s)", d.L, d.R) }

// Compile-time interface checks for the world-set nodes.
var (
	_ Expr = Possible{}
	_ Expr = Certain{}
	_ Expr = ChoiceOf{}
	_ Expr = Diff{}
)

// HasWorldSetOps reports whether e contains possible, certain or choiceof
// anywhere — the operators that only make sense against a world set.
// (Diff is a per-world map and does not count.)
func HasWorldSetOps(e Expr) bool {
	switch n := e.(type) {
	case Possible, Certain, ChoiceOf:
		return true
	case Project:
		return HasWorldSetOps(n.E)
	case Select:
		return HasWorldSetOps(n.E)
	case Rename:
		return HasWorldSetOps(n.E)
	case Join:
		return HasWorldSetOps(n.L) || HasWorldSetOps(n.R)
	case Union:
		return HasWorldSetOps(n.L) || HasWorldSetOps(n.R)
	case Diff:
		return HasWorldSetOps(n.L) || HasWorldSetOps(n.R)
	}
	return false
}

// HasExtendedOps reports whether e uses any operator beyond the positive
// fragment with ≠ selections: the world-set operators or diff.
func HasExtendedOps(e Expr) bool {
	switch n := e.(type) {
	case Diff:
		return true
	case Project:
		return HasExtendedOps(n.E)
	case Select:
		return HasExtendedOps(n.E)
	case Rename:
		return HasExtendedOps(n.E)
	case Join:
		return HasExtendedOps(n.L) || HasExtendedOps(n.R)
	case Union:
		return HasExtendedOps(n.L) || HasExtendedOps(n.R)
	}
	return HasWorldSetOps(e)
}

// WorldSetEval evaluates extended expressions over an explicit world set.
// This is the oracle semantics for the world-set algebra: cost is linear
// in the number of worlds and exponential in choiceof nesting, so it
// exists for the differential harness and for small examples; real
// evaluation runs natively on decompositions in internal/wsdalg.
type WorldSetEval struct {
	worlds []*rel.Instance
	// memo caches the world-independent value of possible(e)/certain(e)
	// subexpressions, keyed by their rendering.
	memo map[string]*instRows
	// MaxBranches bounds the number of choice branches tracked for any
	// single (expression, world) pair before evaluation refuses.
	MaxBranches int
}

// NewWorldSetEval builds an evaluator over the given worlds.
func NewWorldSetEval(worlds []*rel.Instance) *WorldSetEval {
	return &WorldSetEval{worlds: worlds, memo: map[string]*instRows{}, MaxBranches: 1 << 16}
}

// Branches returns the possible values of e in world wi: the output
// columns and one sorted, deduplicated row set per joint choice of the
// choiceof axes inside e (branches with identical values are merged).
func (ev *WorldSetEval) Branches(e Expr, wi int) ([]string, [][]sym.Tuple, error) {
	irs, err := ev.branches(e, wi)
	if err != nil {
		return nil, nil, err
	}
	cols, err := e.Schema()
	if err != nil {
		return nil, nil, err
	}
	out := make([][]sym.Tuple, len(irs))
	for i, ir := range irs {
		out[i] = sortedTuples(ir)
	}
	return cols, out, nil
}

func (ev *WorldSetEval) branches(e Expr, wi int) ([]*instRows, error) {
	// Subtrees free of world-set operators are ordinary per-world maps:
	// a single branch, computed by the plain instance evaluator.
	if !HasWorldSetOps(e) {
		ir, err := evalInst(e, ev.worlds[wi])
		if err != nil {
			return nil, err
		}
		return []*instRows{ir}, nil
	}
	switch n := e.(type) {
	case Project:
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		in, err := ev.branches(n.E, wi)
		if err != nil {
			return nil, err
		}
		out := make([]*instRows, len(in))
		for i, b := range in {
			out[i] = projectRows(b, n.Cols)
		}
		return ev.dedupBranches(out)

	case Select:
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		in, err := ev.branches(n.E, wi)
		if err != nil {
			return nil, err
		}
		out := make([]*instRows, len(in))
		for i, b := range in {
			out[i] = selectRows(b, n.Preds)
		}
		return ev.dedupBranches(out)

	case Rename:
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		in, err := ev.branches(n.E, wi)
		if err != nil {
			return nil, err
		}
		out := make([]*instRows, len(in))
		for i, b := range in {
			out[i] = renameRows(b, cols)
		}
		return ev.dedupBranches(out)

	case Join:
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		return ev.crossBranches(n.L, n.R, wi, func(l, r *instRows) *instRows {
			return joinRows(l, r, cols)
		})

	case Union:
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		return ev.crossBranches(n.L, n.R, wi, unionRows)

	case Diff:
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		return ev.crossBranches(n.L, n.R, wi, diffRows)

	case Possible:
		ir, err := ev.collapse(n, n.E, true)
		if err != nil {
			return nil, err
		}
		return []*instRows{ir}, nil

	case Certain:
		ir, err := ev.collapse(n, n.E, false)
		if err != nil {
			return nil, err
		}
		return []*instRows{ir}, nil

	case ChoiceOf:
		in, err := ev.branches(n.E, wi)
		if err != nil {
			return nil, err
		}
		var out []*instRows
		for _, b := range in {
			if len(b.rows) == 0 {
				out = append(out, newInstRows(b.cols))
				continue
			}
			for _, t := range b.rows {
				ir := newInstRows(b.cols)
				ir.add(t)
				out = append(out, ir)
			}
		}
		return ev.dedupBranches(out)
	}
	return nil, fmt.Errorf("algebra: unknown expression %T", e)
}

// crossBranches combines every branch of l with every branch of r — the
// choice axes of the two subtrees are independent.
func (ev *WorldSetEval) crossBranches(l, r Expr, wi int, f func(l, r *instRows) *instRows) ([]*instRows, error) {
	lb, err := ev.branches(l, wi)
	if err != nil {
		return nil, err
	}
	rb, err := ev.branches(r, wi)
	if err != nil {
		return nil, err
	}
	if len(lb)*len(rb) > ev.MaxBranches {
		return nil, fmt.Errorf("algebra: choiceof branch count %d×%d exceeds limit %d", len(lb), len(rb), ev.MaxBranches)
	}
	out := make([]*instRows, 0, len(lb)*len(rb))
	for _, bl := range lb {
		for _, br := range rb {
			out = append(out, f(bl, br))
		}
	}
	return ev.dedupBranches(out)
}

// collapse computes the world-independent value of possible(e) (union
// over every world and branch) or certain(e) (intersection).
func (ev *WorldSetEval) collapse(key, e Expr, union bool) (*instRows, error) {
	k := key.String()
	if ir, ok := ev.memo[k]; ok {
		return ir, nil
	}
	var acc *instRows
	for wi := range ev.worlds {
		bs, err := ev.branches(e, wi)
		if err != nil {
			return nil, err
		}
		for _, b := range bs {
			if acc == nil {
				acc = unionRows(b, b) // copy
			} else if union {
				acc = unionRows(acc, b)
			} else {
				acc = intersectRows(acc, b)
			}
		}
	}
	if acc == nil {
		cols, err := e.Schema()
		if err != nil {
			return nil, err
		}
		acc = newInstRows(cols)
	}
	ev.memo[k] = acc
	return acc, nil
}

// dedupBranches merges branches with identical row sets: downstream
// operators are functions of the value, and worlds are deduplicated at
// the end anyway, so identical branches can never be distinguished.
func (ev *WorldSetEval) dedupBranches(in []*instRows) ([]*instRows, error) {
	if len(in) > ev.MaxBranches {
		return nil, fmt.Errorf("algebra: choiceof branch count %d exceeds limit %d", len(in), ev.MaxBranches)
	}
	seen := make(map[uint64][]*instRows, len(in))
	out := in[:0]
next:
	for _, b := range in {
		h := branchFingerprint(b)
		for _, prev := range seen[h] {
			if sameRows(prev, b) {
				continue next
			}
		}
		seen[h] = append(seen[h], b)
		out = append(out, b)
	}
	return out, nil
}

func sortedTuples(ir *instRows) []sym.Tuple {
	out := append([]sym.Tuple(nil), ir.rows...)
	sort.Slice(out, func(i, j int) bool { return tupleLess(out[i], out[j]) })
	return out
}

func tupleLess(a, b sym.Tuple) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if c := sym.Compare(a[i], b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

func branchFingerprint(ir *instRows) uint64 {
	var h uint64
	for _, t := range ir.rows {
		h ^= sym.HashIDs(t) // order-independent combine
	}
	return h ^ uint64(len(ir.rows))<<32
}

func sameRows(a, b *instRows) bool {
	if len(a.rows) != len(b.rows) {
		return false
	}
	for _, t := range a.rows {
		if !b.contains(t) {
			return false
		}
	}
	return true
}
