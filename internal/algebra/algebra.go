// Package algebra implements the positive existential queries of §2.1:
// relational expressions over project, natural join, union, renaming and
// positive select (plus, as an extension used by Theorems 3.2(4) and
// 5.2(2), selections with ≠). Expressions evaluate two ways:
//
//   - EvalInstance: ordinary evaluation on a complete-information instance,
//     with PTIME data-complexity;
//   - EvalTables: the lifted evaluation on conditioned tables following
//     Imielinski–Lipski [10], which rewrites a c-table database into a
//     c-table representing the query's view. This is the "algebraic
//     completeness of conditioned-tables" that Theorem 5.2(1) builds on:
//     rep(EvalTables(q, T)) = q(rep(T)), with only polynomial growth.
//
// Columns are named; base relations assign names positionally via Rel.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/value"
)

// Operand is a column reference or a constant in a selection predicate.
type Operand struct {
	col     string
	k       string
	isConst bool
}

// Col references the named column.
func Col(name string) Operand { return Operand{col: name} }

// Lit references a constant.
func Lit(c string) Operand { return Operand{k: c, isConst: true} }

// Const returns the constant and true when the operand is a constant
// literal.
func (o Operand) Const() (string, bool) { return o.k, o.isConst }

// Column returns the column name and true when the operand is a column
// reference.
func (o Operand) Column() (string, bool) { return o.col, !o.isConst }

// String renders the operand.
func (o Operand) String() string {
	if o.isConst {
		return o.k
	}
	return "#" + o.col
}

// Pred is a selection predicate comparing two operands.
type Pred struct {
	Op   cond.Op
	L, R Operand
}

// EqP builds an equality predicate, NeqP an inequality one.
func EqP(l, r Operand) Pred  { return Pred{Op: cond.Eq, L: l, R: r} }
func NeqP(l, r Operand) Pred { return Pred{Op: cond.Neq, L: l, R: r} }

// String renders the predicate.
func (p Pred) String() string {
	return fmt.Sprintf("%s %s %s", p.L, p.Op, p.R)
}

// Expr is a relational algebra expression.
type Expr interface {
	// Schema returns the output column names; column names within one
	// schema are unique.
	Schema() ([]string, error)
	// Positive reports whether the expression uses only the positive
	// operators (no ≠ in selections); positive expressions are preserved
	// under homomorphisms, which the certainty algorithms rely on.
	Positive() bool
	// Consts returns the constants mentioned in the expression.
	Consts() []string
	// String renders the expression.
	String() string
}

// Rel is a base relation scan assigning column names positionally.
type Rel struct {
	Name string
	Cols []string
}

// Scan builds a base-relation scan.
func Scan(name string, cols ...string) Rel { return Rel{Name: name, Cols: cols} }

func (r Rel) Schema() ([]string, error) {
	if err := uniqueCols(r.Cols); err != nil {
		return nil, fmt.Errorf("scan %s: %w", r.Name, err)
	}
	return r.Cols, nil
}
func (r Rel) Positive() bool   { return true }
func (r Rel) Consts() []string { return nil }
func (r Rel) String() string   { return fmt.Sprintf("%s(%s)", r.Name, strings.Join(r.Cols, ",")) }

// Project keeps the named columns, in the given order.
type Project struct {
	E    Expr
	Cols []string
}

func (p Project) Schema() ([]string, error) {
	in, err := p.E.Schema()
	if err != nil {
		return nil, err
	}
	for _, c := range p.Cols {
		if indexOf(in, c) < 0 {
			return nil, fmt.Errorf("project: column %s not in %v", c, in)
		}
	}
	if err := uniqueCols(p.Cols); err != nil {
		return nil, err
	}
	return p.Cols, nil
}
func (p Project) Positive() bool   { return p.E.Positive() }
func (p Project) Consts() []string { return p.E.Consts() }
func (p Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Cols, ","), p.E)
}

// Select filters by a conjunction of predicates.
type Select struct {
	E     Expr
	Preds []Pred
}

// Where is a convenience constructor.
func Where(e Expr, preds ...Pred) Select { return Select{E: e, Preds: preds} }

func (s Select) Schema() ([]string, error) {
	in, err := s.E.Schema()
	if err != nil {
		return nil, err
	}
	for _, p := range s.Preds {
		for _, o := range []Operand{p.L, p.R} {
			if !o.isConst && indexOf(in, o.col) < 0 {
				return nil, fmt.Errorf("select: column %s not in %v", o.col, in)
			}
		}
	}
	return in, nil
}
func (s Select) Positive() bool {
	for _, p := range s.Preds {
		if p.Op == cond.Neq {
			return false
		}
	}
	return s.E.Positive()
}
func (s Select) Consts() []string {
	out := s.E.Consts()
	for _, p := range s.Preds {
		for _, o := range []Operand{p.L, p.R} {
			if o.isConst {
				out = append(out, o.k)
			}
		}
	}
	return out
}
func (s Select) String() string {
	parts := make([]string, len(s.Preds))
	for i, p := range s.Preds {
		parts[i] = p.String()
	}
	return fmt.Sprintf("σ[%s](%s)", strings.Join(parts, " and "), s.E)
}

// Rename renames columns according to the mapping From[i] → To[i].
type Rename struct {
	E        Expr
	From, To []string
}

func (r Rename) Schema() ([]string, error) {
	in, err := r.E.Schema()
	if err != nil {
		return nil, err
	}
	if len(r.From) != len(r.To) {
		return nil, fmt.Errorf("rename: %d from-columns vs %d to-columns", len(r.From), len(r.To))
	}
	out := append([]string(nil), in...)
	for i, f := range r.From {
		j := indexOf(in, f)
		if j < 0 {
			return nil, fmt.Errorf("rename: column %s not in %v", f, in)
		}
		out[j] = r.To[i]
	}
	if err := uniqueCols(out); err != nil {
		return nil, err
	}
	return out, nil
}
func (r Rename) Positive() bool   { return r.E.Positive() }
func (r Rename) Consts() []string { return r.E.Consts() }
func (r Rename) String() string {
	pairs := make([]string, len(r.From))
	for i := range r.From {
		pairs[i] = r.From[i] + "→" + r.To[i]
	}
	return fmt.Sprintf("ρ[%s](%s)", strings.Join(pairs, ","), r.E)
}

// Join is the natural join on shared column names (cartesian product when
// the operands share no columns).
type Join struct {
	L, R Expr
}

func (j Join) Schema() ([]string, error) {
	ls, err := j.L.Schema()
	if err != nil {
		return nil, err
	}
	rs, err := j.R.Schema()
	if err != nil {
		return nil, err
	}
	out := append([]string(nil), ls...)
	for _, c := range rs {
		if indexOf(ls, c) < 0 {
			out = append(out, c)
		}
	}
	return out, nil
}
func (j Join) Positive() bool   { return j.L.Positive() && j.R.Positive() }
func (j Join) Consts() []string { return append(j.L.Consts(), j.R.Consts()...) }
func (j Join) String() string   { return fmt.Sprintf("(%s ⋈ %s)", j.L, j.R) }

// Union is set union; the operands must have identical schemas.
type Union struct {
	L, R Expr
}

func (u Union) Schema() ([]string, error) {
	ls, err := u.L.Schema()
	if err != nil {
		return nil, err
	}
	rs, err := u.R.Schema()
	if err != nil {
		return nil, err
	}
	if len(ls) != len(rs) {
		return nil, fmt.Errorf("union: schemas %v and %v differ in arity", ls, rs)
	}
	for i := range ls {
		if ls[i] != rs[i] {
			return nil, fmt.Errorf("union: schemas %v and %v differ; rename first", ls, rs)
		}
	}
	return ls, nil
}
func (u Union) Positive() bool   { return u.L.Positive() && u.R.Positive() }
func (u Union) Consts() []string { return append(u.L.Consts(), u.R.Consts()...) }
func (u Union) String() string   { return fmt.Sprintf("(%s ∪ %s)", u.L, u.R) }

// UnionAll folds a list of expressions into nested unions; it panics on an
// empty list.
func UnionAll(es ...Expr) Expr {
	if len(es) == 0 {
		panic("algebra: UnionAll of nothing")
	}
	out := es[0]
	for _, e := range es[1:] {
		out = Union{L: out, R: e}
	}
	return out
}

// JoinAll folds a list of expressions into nested natural joins.
func JoinAll(es ...Expr) Expr {
	if len(es) == 0 {
		panic("algebra: JoinAll of nothing")
	}
	out := es[0]
	for _, e := range es[1:] {
		out = Join{L: out, R: e}
	}
	return out
}

// ConstRel is a literal constant relation (the VALUES of SQL). The paper's
// reduction queries use disjuncts like "… ∨ x = 0" to emit marker
// constants; with active-domain FO semantics those markers are always in
// the domain because the query mentions them, and ConstRel reproduces that
// behaviour algebraically.
type ConstRel struct {
	Cols []string
	Rows [][]string
}

// Values builds a one-column constant relation.
func Values(col string, consts ...string) ConstRel {
	rows := make([][]string, len(consts))
	for i, c := range consts {
		rows[i] = []string{c}
	}
	return ConstRel{Cols: []string{col}, Rows: rows}
}

func (c ConstRel) Schema() ([]string, error) {
	if err := uniqueCols(c.Cols); err != nil {
		return nil, err
	}
	for _, r := range c.Rows {
		if len(r) != len(c.Cols) {
			return nil, fmt.Errorf("constrel: row %v has arity %d, want %d", r, len(r), len(c.Cols))
		}
	}
	return c.Cols, nil
}
func (c ConstRel) Positive() bool { return true }
func (c ConstRel) Consts() []string {
	var out []string
	for _, r := range c.Rows {
		out = append(out, r...)
	}
	return out
}
func (c ConstRel) String() string {
	return fmt.Sprintf("values(%s)×%d", strings.Join(c.Cols, ","), len(c.Rows))
}

func indexOf(cols []string, c string) int {
	for i, x := range cols {
		if x == c {
			return i
		}
	}
	return -1
}

func uniqueCols(cols []string) error {
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c] {
			return fmt.Errorf("algebra: duplicate column %s", c)
		}
		seen[c] = true
	}
	return nil
}

// SortedConsts returns the deduplicated sorted constants of e.
func SortedConsts(e Expr) []string {
	cs := e.Consts()
	sort.Strings(cs)
	out := cs[:0]
	var last string
	for i, c := range cs {
		if i == 0 || c != last {
			out = append(out, c)
		}
		last = c
	}
	return out
}

// ensure interface satisfaction (compile-time checks).
var (
	_ Expr = Rel{}
	_ Expr = Project{}
	_ Expr = Select{}
	_ Expr = Rename{}
	_ Expr = Join{}
	_ Expr = Union{}
	_ Expr = ConstRel{}
)

// instRows is the intermediate result of instance evaluation: named columns
// over a set of interned tuples deduplicated by fingerprint (exact-equality
// buckets guard against collisions). Tuples added are owned by the result
// or shared read-only with the input they came from.
type instRows struct {
	cols []string
	rows []sym.Tuple
	seen map[uint64][]int32
}

func newInstRows(cols []string) *instRows {
	return &instRows{cols: cols, seen: make(map[uint64][]int32)}
}

func (ir *instRows) add(t sym.Tuple) {
	h := sym.HashIDs(t)
	for _, i := range ir.seen[h] {
		if ir.rows[i].Equal(t) {
			return
		}
	}
	ir.seen[h] = append(ir.seen[h], int32(len(ir.rows)))
	ir.rows = append(ir.rows, t)
}

func (ir *instRows) contains(t sym.Tuple) bool {
	for _, i := range ir.seen[sym.HashIDs(t)] {
		if ir.rows[i].Equal(t) {
			return true
		}
	}
	return false
}

// EvalInstance evaluates e on a complete-information instance, returning
// the result's column names and facts (resolved to names at this boundary,
// in canonical order).
func EvalInstance(e Expr, inst *rel.Instance) ([]string, []rel.Fact, error) {
	ir, err := evalInst(e, inst)
	if err != nil {
		return nil, nil, err
	}
	out := make([]rel.Fact, 0, len(ir.rows))
	for _, t := range ir.rows {
		out = append(out, rel.ResolveFact(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return ir.cols, out, nil
}

// EvalToRelation evaluates e and packages the result as a named relation,
// staying in interned form end to end.
func EvalToRelation(e Expr, inst *rel.Instance, name string) (*rel.Relation, error) {
	ir, err := evalInst(e, inst)
	if err != nil {
		return nil, err
	}
	r := rel.NewRelation(name, len(ir.cols))
	for _, t := range ir.rows {
		r.Insert(t)
	}
	return r, nil
}

func evalInst(e Expr, inst *rel.Instance) (*instRows, error) {
	switch n := e.(type) {
	case ConstRel:
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		out := newInstRows(cols)
		for _, r := range n.Rows {
			out.add(rel.Fact(r).Intern())
		}
		return out, nil

	case Rel:
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		base := inst.Relation(n.Name)
		if base == nil {
			return nil, fmt.Errorf("algebra: relation %s not in instance", n.Name)
		}
		if base.Arity != len(cols) {
			return nil, fmt.Errorf("algebra: scan %s names %d columns, relation has arity %d",
				n.Name, len(cols), base.Arity)
		}
		out := newInstRows(cols)
		for _, t := range base.Tuples() {
			out.add(t)
		}
		return out, nil

	case Project:
		in, err := evalInst(n.E, inst)
		if err != nil {
			return nil, err
		}
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		return projectRows(in, n.Cols), nil

	case Select:
		in, err := evalInst(n.E, inst)
		if err != nil {
			return nil, err
		}
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		return selectRows(in, n.Preds), nil

	case Rename:
		in, err := evalInst(n.E, inst)
		if err != nil {
			return nil, err
		}
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		return renameRows(in, cols), nil

	case Join:
		l, err := evalInst(n.L, inst)
		if err != nil {
			return nil, err
		}
		r, err := evalInst(n.R, inst)
		if err != nil {
			return nil, err
		}
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		return joinRows(l, r, cols), nil

	case Union:
		l, err := evalInst(n.L, inst)
		if err != nil {
			return nil, err
		}
		r, err := evalInst(n.R, inst)
		if err != nil {
			return nil, err
		}
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		return unionRows(l, r), nil

	case Diff:
		l, err := evalInst(n.L, inst)
		if err != nil {
			return nil, err
		}
		r, err := evalInst(n.R, inst)
		if err != nil {
			return nil, err
		}
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		return diffRows(l, r), nil

	case Possible, Certain, ChoiceOf:
		return nil, fmt.Errorf("%w: %s", ErrWorldSetOp, e)
	}
	return nil, fmt.Errorf("algebra: unknown expression %T", e)
}

// Row-level kernels shared by single-instance evaluation and the explicit
// world-set evaluator (worldset.go). Callers have already checked the
// schema, so column lookups cannot fail.

func projectRows(in *instRows, cols []string) *instRows {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = indexOf(in.cols, c)
	}
	out := newInstRows(cols)
	for _, f := range in.rows {
		g := make(sym.Tuple, len(idx))
		for i, j := range idx {
			g[i] = f[j]
		}
		out.add(g)
	}
	return out
}

func selectRows(in *instRows, npreds []Pred) *instRows {
	// Resolve predicate operands once: a column index or an interned
	// constant, so the row loop is pure ID comparison.
	type resolved struct {
		op           cond.Op
		lIdx, rIdx   int
		lConst, rCon sym.ID
	}
	preds := make([]resolved, len(npreds))
	for i, p := range npreds {
		preds[i] = resolved{op: p.Op, lIdx: -1, rIdx: -1}
		if p.L.isConst {
			preds[i].lConst = sym.Const(p.L.k)
		} else {
			preds[i].lIdx = indexOf(in.cols, p.L.col)
		}
		if p.R.isConst {
			preds[i].rCon = sym.Const(p.R.k)
		} else {
			preds[i].rIdx = indexOf(in.cols, p.R.col)
		}
	}
	out := newInstRows(in.cols)
	for _, f := range in.rows {
		ok := true
		for _, p := range preds {
			l, r := p.lConst, p.rCon
			if p.lIdx >= 0 {
				l = f[p.lIdx]
			}
			if p.rIdx >= 0 {
				r = f[p.rIdx]
			}
			if (p.op == cond.Eq) != (l == r) {
				ok = false
				break
			}
		}
		if ok {
			out.add(f)
		}
	}
	return out
}

func renameRows(in *instRows, cols []string) *instRows {
	out := newInstRows(cols)
	for _, f := range in.rows {
		out.add(f)
	}
	return out
}

func joinRows(l, r *instRows, cols []string) *instRows {
	// Positions of shared columns.
	var lShared, rShared []int
	var rExtra []int
	for j, c := range r.cols {
		if i := indexOf(l.cols, c); i >= 0 {
			lShared = append(lShared, i)
			rShared = append(rShared, j)
		} else {
			rExtra = append(rExtra, j)
		}
	}
	// Hash the right side on shared-column IDs; probe hits are verified
	// component-wise (the hash is a fingerprint, not an identity).
	joinKey := func(t sym.Tuple, at []int) uint64 {
		h := uint64(1469598103934665603)
		for _, j := range at {
			h ^= uint64(t[j])
			h *= 1099511628211
		}
		return h
	}
	index := make(map[uint64][]sym.Tuple, len(r.rows))
	for _, rf := range r.rows {
		k := joinKey(rf, rShared)
		index[k] = append(index[k], rf)
	}
	out := newInstRows(cols)
	for _, lf := range l.rows {
	probe:
		for _, rf := range index[joinKey(lf, lShared)] {
			for k := range lShared {
				if lf[lShared[k]] != rf[rShared[k]] {
					continue probe
				}
			}
			g := make(sym.Tuple, 0, len(cols))
			g = append(g, lf...)
			for _, j := range rExtra {
				g = append(g, rf[j])
			}
			out.add(g)
		}
	}
	return out
}

func unionRows(l, r *instRows) *instRows {
	out := newInstRows(l.cols)
	for _, f := range l.rows {
		out.add(f)
	}
	for _, f := range r.rows {
		out.add(f)
	}
	return out
}

func diffRows(l, r *instRows) *instRows {
	out := newInstRows(l.cols)
	for _, f := range l.rows {
		if !r.contains(f) {
			out.add(f)
		}
	}
	return out
}

func intersectRows(l, r *instRows) *instRows {
	out := newInstRows(l.cols)
	for _, f := range l.rows {
		if r.contains(f) {
			out.add(f)
		}
	}
	return out
}

// liftRows is the intermediate result of lifted evaluation: named columns
// over conditioned rows (values may contain variables).
type liftRows struct {
	cols []string
	rows []table.Row
}

// EvalTables evaluates e on a conditioned-table database, producing the
// rows and columns of a c-table representing {q(I) : I ∈ rep(d)}; the
// caller attaches the database's global condition. Rows whose local
// condition is unsatisfiable are pruned.
func EvalTables(e Expr, d *table.Database) ([]string, []table.Row, error) {
	lr, err := evalLift(e, d)
	if err != nil {
		return nil, nil, err
	}
	return lr.cols, lr.rows, nil
}

// EvalToTable evaluates e on d and packages the result as a named c-table
// carrying d's combined global condition.
func EvalToTable(e Expr, d *table.Database, name string) (*table.Table, error) {
	cols, rows, err := EvalTables(e, d)
	if err != nil {
		return nil, err
	}
	t := table.New(name, len(cols))
	t.Global = d.GlobalConjunction().Clone()
	for _, r := range rows {
		t.Add(r)
	}
	return t, nil
}

func evalLift(e Expr, d *table.Database) (*liftRows, error) {
	switch n := e.(type) {
	case ConstRel:
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		out := &liftRows{cols: cols}
		for _, r := range n.Rows {
			vals := make(value.Tuple, len(r))
			for i, c := range r {
				vals[i] = value.Const(c)
			}
			out.rows = append(out.rows, table.Row{Values: vals})
		}
		return out, nil

	case Rel:
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		base := d.Table(n.Name)
		if base == nil {
			return nil, fmt.Errorf("algebra: table %s not in database", n.Name)
		}
		if base.Arity != len(cols) {
			return nil, fmt.Errorf("algebra: scan %s names %d columns, table has arity %d",
				n.Name, len(cols), base.Arity)
		}
		out := &liftRows{cols: cols}
		for _, r := range base.Rows {
			out.rows = append(out.rows, r.Clone())
		}
		return out, nil

	case Project:
		in, err := evalLift(n.E, d)
		if err != nil {
			return nil, err
		}
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		idx := make([]int, len(n.Cols))
		for i, c := range n.Cols {
			idx[i] = indexOf(in.cols, c)
		}
		out := &liftRows{cols: n.Cols}
		for _, r := range in.rows {
			vals := make(value.Tuple, len(idx))
			for i, j := range idx {
				vals[i] = r.Values[j]
			}
			out.rows = append(out.rows, table.Row{Values: vals, Cond: r.Cond})
		}
		out.dedupe()
		return out, nil

	case Select:
		in, err := evalLift(n.E, d)
		if err != nil {
			return nil, err
		}
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		out := &liftRows{cols: in.cols}
		for _, r := range in.rows {
			c := r.Cond.Clone()
			for _, p := range n.Preds {
				l := operandLifted(p.L, in.cols, r)
				rv := operandLifted(p.R, in.cols, r)
				c = append(c, cond.Atom{Op: p.Op, L: l, R: rv})
			}
			if !c.Satisfiable() {
				continue
			}
			out.rows = append(out.rows, table.Row{Values: r.Values, Cond: c.Normalize()})
		}
		return out, nil

	case Rename:
		in, err := evalLift(n.E, d)
		if err != nil {
			return nil, err
		}
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		return &liftRows{cols: cols, rows: in.rows}, nil

	case Join:
		l, err := evalLift(n.L, d)
		if err != nil {
			return nil, err
		}
		r, err := evalLift(n.R, d)
		if err != nil {
			return nil, err
		}
		cols, err := n.Schema()
		if err != nil {
			return nil, err
		}
		var lShared, rShared, rExtra []int
		for j, c := range r.cols {
			if i := indexOf(l.cols, c); i >= 0 {
				lShared = append(lShared, i)
				rShared = append(rShared, j)
			} else {
				rExtra = append(rExtra, j)
			}
		}
		out := &liftRows{cols: cols}
		for _, lr := range l.rows {
			for _, rr := range r.rows {
				c := lr.Cond.And(rr.Cond)
				ok := true
				vals := make(value.Tuple, 0, len(cols))
				vals = append(vals, lr.Values...)
				for k := range lShared {
					lv, rv := lr.Values[lShared[k]], rr.Values[rShared[k]]
					if lv == rv {
						continue
					}
					// Prefer the constant in the output position.
					if lv.IsVar() && rv.IsConst() {
						vals[lShared[k]] = rv
					}
					c = append(c, cond.EqAtom(lv, rv))
				}
				for _, j := range rExtra {
					vals = append(vals, rr.Values[j])
				}
				if !c.Satisfiable() {
					ok = false
				}
				if ok {
					out.rows = append(out.rows, table.Row{Values: vals, Cond: c.Normalize()})
				}
			}
		}
		out.dedupe()
		return out, nil

	case Union:
		l, err := evalLift(n.L, d)
		if err != nil {
			return nil, err
		}
		r, err := evalLift(n.R, d)
		if err != nil {
			return nil, err
		}
		if _, err := n.Schema(); err != nil {
			return nil, err
		}
		out := &liftRows{cols: l.cols}
		out.rows = append(out.rows, l.rows...)
		out.rows = append(out.rows, r.rows...)
		out.dedupe()
		return out, nil

	case Diff:
		// Conditioned-table lifting covers the positive existential
		// fragment (plus ≠ selections); difference needs universal
		// conditions. Decomposition-native evaluation (internal/wsdalg)
		// handles it instead.
		return nil, fmt.Errorf("algebra: %s is outside the liftable fragment", e)

	case Possible, Certain, ChoiceOf:
		// Not per-world maps at all: only a world-set backend (a
		// decomposition) can apply them.
		return nil, fmt.Errorf("%w: %s needs a decomposition backend", ErrWorldSetOp, e)
	}
	return nil, fmt.Errorf("algebra: unknown expression %T", e)
}

func operandLifted(o Operand, cols []string, r table.Row) value.Value {
	if o.isConst {
		return value.Const(o.k)
	}
	return r.Values[indexOf(cols, o.col)]
}

// dedupe removes rows with identical values and conditions (a safe,
// purely syntactic reduction; semantic duplicates are harmless).
func (lr *liftRows) dedupe() {
	seen := make(map[string]bool, len(lr.rows))
	out := lr.rows[:0]
	for _, r := range lr.rows {
		k := r.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	lr.rows = out
}
