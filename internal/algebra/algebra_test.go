package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/value"
	"pw/internal/worlds"
)

func v(n string) value.Value { return value.Var(n) }
func k(n string) value.Value { return value.Const(n) }

func sampleInstance() *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("R", 2)
	r.AddRow("1", "2")
	r.AddRow("2", "3")
	r.AddRow("3", "3")
	s := i.EnsureRelation("S", 1)
	s.AddRow("2")
	s.AddRow("9")
	return i
}

func evalFacts(t *testing.T, e Expr, i *rel.Instance) []rel.Fact {
	t.Helper()
	_, fs, err := EvalInstance(e, i)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return fs
}

func TestScan(t *testing.T) {
	fs := evalFacts(t, Scan("R", "a", "b"), sampleInstance())
	if len(fs) != 3 {
		t.Errorf("scan = %v", fs)
	}
}

func TestScanArityMismatch(t *testing.T) {
	if _, _, err := EvalInstance(Scan("R", "a"), sampleInstance()); err == nil {
		t.Error("arity mismatch must error")
	}
	if _, _, err := EvalInstance(Scan("Z", "a"), sampleInstance()); err == nil {
		t.Error("unknown relation must error")
	}
}

func TestProject(t *testing.T) {
	fs := evalFacts(t, Project{E: Scan("R", "a", "b"), Cols: []string{"b"}}, sampleInstance())
	if len(fs) != 2 { // {2, 3} deduplicated
		t.Errorf("project = %v", fs)
	}
	// Reordering columns.
	fs = evalFacts(t, Project{E: Scan("R", "a", "b"), Cols: []string{"b", "a"}}, sampleInstance())
	if fs[0][0] != "2" || fs[0][1] != "1" {
		t.Errorf("column reorder broken: %v", fs)
	}
	if _, _, err := EvalInstance(Project{E: Scan("R", "a", "b"), Cols: []string{"zz"}}, sampleInstance()); err == nil {
		t.Error("unknown projected column must error")
	}
}

func TestSelect(t *testing.T) {
	fs := evalFacts(t, Where(Scan("R", "a", "b"), EqP(Col("a"), Lit("2"))), sampleInstance())
	if len(fs) != 1 || fs[0][0] != "2" {
		t.Errorf("select = %v", fs)
	}
	fs = evalFacts(t, Where(Scan("R", "a", "b"), EqP(Col("a"), Col("b"))), sampleInstance())
	if len(fs) != 1 || fs[0][0] != "3" {
		t.Errorf("select a=b = %v", fs)
	}
	fs = evalFacts(t, Where(Scan("R", "a", "b"), NeqP(Col("a"), Col("b"))), sampleInstance())
	if len(fs) != 2 {
		t.Errorf("select a≠b = %v", fs)
	}
}

func TestJoin(t *testing.T) {
	// R(a,b) ⋈ S(b): natural join on b.
	fs := evalFacts(t, Join{L: Scan("R", "a", "b"), R: Scan("S", "b")}, sampleInstance())
	if len(fs) != 1 || fs[0][0] != "1" || fs[0][1] != "2" {
		t.Errorf("join = %v", fs)
	}
	// Cartesian product when no shared columns: 3 × 2 = 6.
	fs = evalFacts(t, Join{L: Scan("R", "a", "b"), R: Scan("S", "c")}, sampleInstance())
	if len(fs) != 6 {
		t.Errorf("product size = %d", len(fs))
	}
}

func TestUnion(t *testing.T) {
	u := Union{
		L: Project{E: Scan("R", "a", "b"), Cols: []string{"a"}},
		R: Scan("S", "a"),
	}
	fs := evalFacts(t, u, sampleInstance())
	if len(fs) != 4 { // {1,2,3} ∪ {2,9}
		t.Errorf("union = %v", fs)
	}
	bad := Union{L: Scan("R", "a", "b"), R: Scan("S", "a")}
	if _, _, err := EvalInstance(bad, sampleInstance()); err == nil {
		t.Error("arity mismatch union must error")
	}
}

func TestRename(t *testing.T) {
	e := Join{
		L: Scan("R", "a", "b"),
		R: Rename{E: Scan("R", "a", "b"), From: []string{"a", "b"}, To: []string{"b", "c"}},
	}
	// R(a,b) ⋈ R(b,c): composition, pairs (a,c) with a->b->c.
	fs := evalFacts(t, Project{E: e, Cols: []string{"a", "c"}}, sampleInstance())
	want := map[string]bool{"1\x003": true, "2\x003": true, "3\x003": true}
	if len(fs) != len(want) {
		t.Fatalf("composition = %v", fs)
	}
	for _, f := range fs {
		if !want[f.Key()] {
			t.Errorf("unexpected %v", f)
		}
	}
}

func TestPositivity(t *testing.T) {
	if !Where(Scan("R", "a", "b"), EqP(Col("a"), Lit("1"))).Positive() {
		t.Error("equality select is positive")
	}
	if Where(Scan("R", "a", "b"), NeqP(Col("a"), Lit("1"))).Positive() {
		t.Error("inequality select is not positive")
	}
}

func TestConstsCollected(t *testing.T) {
	e := Where(Scan("R", "a", "b"), EqP(Col("a"), Lit("7")), NeqP(Col("b"), Lit("8")))
	cs := SortedConsts(e)
	if len(cs) != 2 || cs[0] != "7" || cs[1] != "8" {
		t.Errorf("consts = %v", cs)
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	if _, err := Scan("R", "a", "a").Schema(); err == nil {
		t.Error("duplicate scan columns must error")
	}
	r := Rename{E: Scan("R", "a", "b"), From: []string{"a"}, To: []string{"b"}}
	if _, err := r.Schema(); err == nil {
		t.Error("rename creating duplicates must error")
	}
}

// --- Lifted evaluation ---

func liftedWorlds(t *testing.T, e Expr, d *table.Database) map[string]bool {
	t.Helper()
	out, err := EvalToTable(e, d, "Q")
	if err != nil {
		t.Fatalf("lift %s: %v", e, err)
	}
	res := map[string]bool{}
	ld := table.DB(out)
	worlds.Each(ld, sharedDomain(d, e), func(i *rel.Instance) bool {
		res[i.Key()] = true
		return false
	})
	return res
}

func directWorlds(t *testing.T, e Expr, d *table.Database) map[string]bool {
	t.Helper()
	res := map[string]bool{}
	worlds.Each(d, sharedDomain(d, e), func(i *rel.Instance) bool {
		r, err := EvalToRelation(e, i, "Q")
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
		o := rel.NewInstance()
		o.AddRelation(r)
		res[o.Key()] = true
		return false
	})
	return res
}

// sharedDomain gives both sides of the property the same valuation domain:
// the constants of the database and the expression plus one fresh constant
// per database variable (the lifted table mentions no variables beyond
// d's, so this is the canonical Δ ∪ Δ′ for both).
func sharedDomain(d *table.Database, e Expr) []sym.ID {
	seen := map[sym.ID]bool{}
	cs := d.ConstIDs(nil, seen)
	for _, c := range e.Consts() {
		id := sym.Const(c)
		if !seen[id] {
			seen[id] = true
			cs = append(cs, id)
		}
	}
	vars := d.VarNames()
	prefix := table.FreshPrefixIDs(cs)
	for _, n := range value.FreshNames(prefix, len(vars)) {
		cs = append(cs, sym.Const(n))
	}
	return cs
}

func sampleDatabase() *table.Database {
	r := table.New("R", 2)
	r.AddTuple(k("1"), v("x"))
	r.AddTuple(v("y"), k("3"))
	s := table.New("S", 1)
	s.AddTuple(v("z"))
	return table.DB(r, s)
}

// TestLiftedMatchesDirect is the representation-system property on a fixed
// battery of expressions: rep(q(T)) = q(rep(T)).
func TestLiftedMatchesDirect(t *testing.T) {
	exprs := []Expr{
		Scan("R", "a", "b"),
		Project{E: Scan("R", "a", "b"), Cols: []string{"a"}},
		Where(Scan("R", "a", "b"), EqP(Col("a"), Lit("1"))),
		Where(Scan("R", "a", "b"), EqP(Col("a"), Col("b"))),
		Where(Scan("R", "a", "b"), NeqP(Col("a"), Col("b"))),
		Join{L: Scan("R", "a", "b"), R: Scan("S", "b")},
		Join{L: Scan("R", "a", "b"), R: Scan("S", "c")},
		Union{L: Project{E: Scan("R", "a", "b"), Cols: []string{"a"}}, R: Scan("S", "a")},
		Join{L: Scan("R", "a", "b"),
			R: Rename{E: Scan("R", "a", "b"), From: []string{"a", "b"}, To: []string{"b", "c"}}},
	}
	d := sampleDatabase()
	for _, e := range exprs {
		got := liftedWorlds(t, e, d)
		want := directWorlds(t, e, d)
		if len(got) != len(want) {
			t.Errorf("%s: lifted %d worlds, direct %d", e, len(got), len(want))
			continue
		}
		for kk := range want {
			if !got[kk] {
				t.Errorf("%s: direct world missing from lifted set", e)
			}
		}
	}
}

// TestLiftedMatchesDirectRandom drives the same property over random
// c-tables (with conditions) and random small expressions.
func TestLiftedMatchesDirectRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomCTableDB(rng)
		e := randomExpr(rng)
		got := liftedWorlds(t, e, d)
		want := directWorlds(t, e, d)
		if len(got) != len(want) {
			return false
		}
		for kk := range want {
			if !got[kk] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomCTableDB(rng *rand.Rand) *table.Database {
	vals := []value.Value{k("1"), k("2"), v("x"), v("y"), v("z")}
	pick := func() value.Value { return vals[rng.Intn(len(vals))] }
	r := table.New("R", 2)
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		row := table.Row{Values: value.NewTuple(pick(), pick())}
		if rng.Intn(2) == 0 {
			op := cond.Eq
			if rng.Intn(2) == 0 {
				op = cond.Neq
			}
			row.Cond = cond.Conj(cond.Atom{Op: op, L: pick(), R: pick()})
		}
		r.Add(row)
	}
	if rng.Intn(3) == 0 {
		r.Global = cond.Conj(cond.NeqAtom(v("x"), k("1")))
	}
	s := table.New("S", 1)
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		s.Add(table.Row{Values: value.NewTuple(pick())})
	}
	return table.DB(r, s)
}

func randomExpr(rng *rand.Rand) Expr {
	switch rng.Intn(6) {
	case 0:
		return Scan("R", "a", "b")
	case 1:
		return Project{E: Scan("R", "a", "b"), Cols: []string{"b"}}
	case 2:
		return Where(Scan("R", "a", "b"), EqP(Col("a"), Lit("1")))
	case 3:
		return Where(Scan("R", "a", "b"), NeqP(Col("b"), Lit("2")))
	case 4:
		return Join{L: Scan("R", "a", "b"), R: Scan("S", "b")}
	default:
		return Union{
			L: Project{E: Scan("R", "a", "b"), Cols: []string{"a"}},
			R: Scan("S", "a"),
		}
	}
}

func TestEvalToTableCarriesGlobal(t *testing.T) {
	d := sampleDatabase()
	d.Table("R").Global = cond.Conj(cond.NeqAtom(v("x"), k("9")))
	out, err := EvalToTable(Scan("R", "a", "b"), d, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Global) != 1 {
		t.Errorf("global not carried: %v", out.Global)
	}
}

func TestLiftedJoinPrunesContradictions(t *testing.T) {
	// Joining rows (1,x) and (2,y) on the first column forces 1=2: pruned.
	r := table.New("R", 2)
	r.AddTuple(k("1"), v("x"))
	d := table.DB(r)
	e := Join{
		L: Scan("R", "a", "b"),
		R: Rename{E: Scan("R", "a", "b"), From: []string{"a", "b"}, To: []string{"b", "c"}},
	}
	_, rows, err := EvalTables(e, d)
	if err != nil {
		t.Fatal(err)
	}
	// (1,x)⋈(1,x) on b: needs x=1, kept with condition; result rows must
	// all have satisfiable conditions.
	for _, row := range rows {
		if !row.Cond.Satisfiable() {
			t.Errorf("unsatisfiable row survived: %v", row)
		}
	}
}
