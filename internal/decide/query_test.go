package decide

import (
	"math/rand"
	"testing"

	"pw/internal/algebra"
	"pw/internal/datalog"
	"pw/internal/fo"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
	"pw/internal/value"
	"pw/internal/worlds"
)

// Query-parameterised cross-validation: the dispatched deciders must agree
// with brute-force world enumeration composed with ordinary query
// evaluation, for positive existential (liftable), FO and DATALOG queries.

// projQuery is π[a](σ[a=b] T) — a liftable positive existential query.
func projQuery() query.Query {
	return query.NewAlgebra("proj",
		query.Out{Name: "Q", Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("T", "a", "b"), algebra.EqP(algebra.Col("a"), algebra.Col("b"))),
			Cols: []string{"a"},
		}})
}

// neqQuery is π[a](σ[a≠b] T) — liftable but not positive.
func neqQuery() query.Query {
	return query.NewAlgebra("neq",
		query.Out{Name: "Q", Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("T", "a", "b"), algebra.NeqP(algebra.Col("a"), algebra.Col("b"))),
			Cols: []string{"a"},
		}})
}

// foQuery is {w | ∃a,b T(a,b) ∧ ¬T(b,a) ∧ w=1} — genuinely first order.
func foQuery() query.Query {
	va := value.Var
	return query.NewFO("asym", query.FOOut{Name: "Q", Q: fo.Query{
		Head: []string{"w"},
		Body: fo.And{
			fo.Equal(va("w"), value.Const("1")),
			fo.Exists{Vars: []string{"a", "b"}, F: fo.And{
				fo.At("T", va("a"), va("b")),
				fo.Not{F: fo.At("T", va("b"), va("a"))},
			}},
		},
	}})
}

// dlQuery is transitive closure — DATALOG.
func dlQuery() query.Query {
	prog := datalog.Program{Rules: []datalog.Rule{
		datalog.R(datalog.At("Q", value.Var("x"), value.Var("y")),
			datalog.At("T", value.Var("x"), value.Var("y"))),
		datalog.R(datalog.At("Q", value.Var("x"), value.Var("z")),
			datalog.At("Q", value.Var("x"), value.Var("y")),
			datalog.At("T", value.Var("y"), value.Var("z"))),
	}}
	return query.NewDatalog("tc", prog, "Q")
}

// bruteViewDomain mirrors the deciders' Δ for view problems.
func bruteViewDomain(d *table.Database, q query.Query, extra *rel.Instance) []sym.ID {
	base, prefix := genericDomain(d, q, extra)
	vars := d.VarNames()
	out := append([]sym.ID(nil), base...)
	for i := range vars {
		out = append(out, sym.Const(prefix+itoa10(i)))
	}
	return out
}

func itoa10(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func bruteMembView(i0 *rel.Instance, q query.Query, d *table.Database) bool {
	dom := bruteViewDomain(d, q, i0)
	found := false
	worlds.Each(d, dom, func(w *rel.Instance) bool {
		out, err := q.Eval(w)
		if err != nil {
			panic(err)
		}
		if out.Equal(i0) {
			found = true
			return true
		}
		return false
	})
	return found
}

func brutePossView(p *rel.Instance, q query.Query, d *table.Database) bool {
	dom := bruteViewDomain(d, q, p)
	found := false
	worlds.Each(d, dom, func(w *rel.Instance) bool {
		out, err := q.Eval(w)
		if err != nil {
			panic(err)
		}
		if p.SubsetOf(out) {
			found = true
			return true
		}
		return false
	})
	return found
}

func bruteCertView(p *rel.Instance, q query.Query, d *table.Database) bool {
	dom := bruteViewDomain(d, q, p)
	ok := true
	worlds.Each(d, dom, func(w *rel.Instance) bool {
		out, err := q.Eval(w)
		if err != nil {
			panic(err)
		}
		if !p.SubsetOf(out) {
			ok = false
			return true
		}
		return false
	})
	return ok
}

func randomOutInstance(rng *rand.Rand, arity, maxFacts int) *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("Q", arity)
	pool := []string{"1", "2", "3"}
	for n := rng.Intn(maxFacts + 1); n > 0; n-- {
		f := make(rel.Fact, arity)
		for j := range f {
			f[j] = pool[rng.Intn(len(pool))]
		}
		r.Add(f)
	}
	return i
}

func TestMembershipWithQueriesMatchesBruteForce(t *testing.T) {
	queries := []query.Query{projQuery(), neqQuery(), foQuery()}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(700 + qi)))
		for trial := 0; trial < 25; trial++ {
			d := randomDB(rng, rng.Intn(5), 1+rng.Intn(2))
			i0 := randomOutInstance(rng, outArity(q), 2)
			want := bruteMembView(i0, q, d)
			got, err := Membership(i0, q, d)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("query %s trial %d: decide=%v brute=%v\nDB:\n%s\nI0:\n%s",
					q.Label(), trial, got, want, d, i0)
			}
		}
	}
}

func outArity(q query.Query) int {
	if q.Label() == "tc" {
		return 2
	}
	return 1
}

func TestPossCertWithQueriesMatchesBruteForce(t *testing.T) {
	queries := []query.Query{projQuery(), neqQuery(), foQuery(), dlQuery()}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(800 + qi)))
		for trial := 0; trial < 20; trial++ {
			d := randomDB(rng, rng.Intn(5), 1+rng.Intn(2))
			p := randomOutInstance(rng, outArity(q), 1)
			wantP := brutePossView(p, q, d)
			gotP, err := Possible(p, q, d)
			if err != nil {
				t.Fatal(err)
			}
			if gotP != wantP {
				t.Fatalf("POSS %s trial %d: decide=%v brute=%v\nDB:\n%s\nP:\n%s",
					q.Label(), trial, gotP, wantP, d, p)
			}
			wantC := bruteCertView(p, q, d)
			gotC, err := Certain(p, q, d)
			if err != nil {
				t.Fatal(err)
			}
			if gotC != wantC {
				t.Fatalf("CERT %s trial %d: decide=%v brute=%v\nDB:\n%s\nP:\n%s",
					q.Label(), trial, gotC, wantC, d, p)
			}
		}
	}
}

func TestUniquenessWithQueriesMatchesBruteForce(t *testing.T) {
	queries := []query.Query{projQuery(), neqQuery(), foQuery()}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(900 + qi)))
		for trial := 0; trial < 20; trial++ {
			d := randomDB(rng, rng.Intn(5), 1+rng.Intn(2))
			i0 := randomOutInstance(rng, outArity(q), 1)
			dom := bruteViewDomain(d, q, i0)
			n, same := 0, true
			worlds.Each(d, dom, func(w *rel.Instance) bool {
				out, err := q.Eval(w)
				if err != nil {
					panic(err)
				}
				n++
				if !out.Equal(i0) {
					same = false
					return true
				}
				return false
			})
			want := n > 0 && same
			got, err := Uniqueness(q, d, i0)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("UNIQ %s trial %d: decide=%v brute=%v\nDB:\n%s\nI:\n%s",
					q.Label(), trial, got, want, d, i0)
			}
		}
	}
}

// TestCertainFrozenAgainstEnumerated pins Theorem 5.3(1): the frozen path
// (datalog on g-tables) must agree with world enumeration.
func TestCertainFrozenAgainstEnumerated(t *testing.T) {
	q := dlQuery()
	rng := rand.New(rand.NewSource(1000))
	for trial := 0; trial < 25; trial++ {
		// g-table flavors only (no local conditions): 0..3.
		d := randomDB(rng, rng.Intn(4), 1+rng.Intn(3))
		p := randomOutInstance(rng, 2, 1)
		want := bruteCertView(p, q, d)
		got, err := Certain(p, q, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: frozen=%v brute=%v\nDB:\n%s\nP:\n%s",
				trial, got, want, d, p)
		}
	}
}

// TestEnumerateCanonicalCoversMembership: canonical enumeration must not
// lose witnesses relative to full enumeration.
func TestEnumerateCanonicalCoversMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(1100))
	for trial := 0; trial < 40; trial++ {
		d := randomDB(rng, 4, 1+rng.Intn(2))
		i0 := randomInstance2(rng, 2)
		base, prefix := genericDomain(d, nil, i0)
		full := bruteViewDomain(d, nil, i0)
		gotCanonical := false
		valuation.EnumerateCanonical(d.Universe(), base, prefix, func(v valuation.V) bool {
			w := v.Database(d)
			if w != nil && w.Equal(i0) {
				gotCanonical = true
				return true
			}
			return false
		})
		gotFull := valuation.Enumerate(d.Universe(), full, func(v valuation.V) bool {
			w := v.Database(d)
			return w != nil && w.Equal(i0)
		})
		if gotCanonical != gotFull {
			t.Fatalf("trial %d: canonical=%v full=%v\nDB:\n%s\nI0:\n%s",
				trial, gotCanonical, gotFull, d, i0)
		}
	}
}
