package decide

import (
	"math/rand"
	"testing"

	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/worlds"
)

// bruteCertainAnswers intersects q over every world of the canonical
// domain, then drops facts mentioning fresh (non-input) constants: a fact
// with a fresh constant cannot be certain — by genericity some isomorphic
// world replaces that constant — even though it survives the intersection
// over the restricted canonical domain.
func bruteCertainAnswers(q query.Query, d *table.Database) *rel.Instance {
	dom := bruteViewDomain(d, q, nil)
	allowed := map[string]bool{}
	for _, c := range d.Consts(nil, map[string]bool{}) {
		allowed[c] = true
	}
	for _, c := range q.Consts() {
		allowed[c] = true
	}
	var acc *rel.Instance
	worlds.Each(d, dom, func(w *rel.Instance) bool {
		out, err := q.Eval(w)
		if err != nil {
			panic(err)
		}
		if acc == nil {
			acc = rel.NewInstance()
			for _, r := range out.Relations() {
				keep := rel.NewRelation(r.Name, r.Arity)
			first:
				for _, f := range r.Facts() {
					for _, c := range f {
						if !allowed[c] {
							continue first
						}
					}
					keep.Add(f)
				}
				acc.AddRelation(keep)
			}
			return false
		}
		for _, r := range acc.Relations() {
			keep := rel.NewRelation(r.Name, r.Arity)
			other := out.Relation(r.Name)
			for _, f := range r.Facts() {
				if other != nil && other.Has(f) {
					keep.Add(f)
				}
			}
			*r = *keep
		}
		return false
	})
	return acc
}

func TestCertainAnswersMatchesBruteForce(t *testing.T) {
	queries := []query.Query{query.Identity{}, projQuery(), neqQuery()}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(1200 + qi)))
		for trial := 0; trial < 30; trial++ {
			d := randomDB(rng, rng.Intn(5), 1+rng.Intn(3))
			got, err := CertainAnswers(q, d)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteCertainAnswers(q, d)
			if want == nil {
				// No worlds: CertainAnswers returns the empty shape.
				if got.Size() != 0 {
					t.Fatalf("query %s trial %d: expected empty answers for empty rep, got %v",
						q.Label(), trial, got)
				}
				continue
			}
			if !got.Equal(want) {
				t.Fatalf("query %s trial %d:\n got %v\nwant %v\nDB:\n%s",
					q.Label(), trial, got, want, d)
			}
		}
	}
}

func TestCertainAnswersRequiresLiftable(t *testing.T) {
	d := randomDB(rand.New(rand.NewSource(1)), 0, 2)
	if _, err := CertainAnswers(foQuery(), d); err == nil {
		t.Error("first-order queries must be rejected")
	}
}

// brutePossibleAnswers unions q over every world of the canonical
// domain, then drops facts mentioning fresh (non-input) constants — the
// same domain restriction PossibleAnswers documents (facts over fresh
// constants are possible in unboundedly many variants and are not part
// of the canonical answer set). Returns nil when rep(d) = ∅.
func brutePossibleAnswers(q query.Query, d *table.Database) *rel.Instance {
	dom := bruteViewDomain(d, q, nil)
	allowed := map[string]bool{}
	for _, c := range d.Consts(nil, map[string]bool{}) {
		allowed[c] = true
	}
	for _, c := range q.Consts() {
		allowed[c] = true
	}
	var acc *rel.Instance
	worlds.Each(d, dom, func(w *rel.Instance) bool {
		out, err := q.Eval(w)
		if err != nil {
			panic(err)
		}
		if acc == nil {
			acc = rel.NewInstance()
		}
		for _, r := range out.Relations() {
			keep := acc.EnsureRelation(r.Name, r.Arity)
		facts:
			for _, f := range r.Facts() {
				for _, c := range f {
					if !allowed[c] {
						continue facts
					}
				}
				keep.Add(f)
			}
		}
		return false
	})
	return acc
}

func TestPossibleAnswersMatchesBruteForce(t *testing.T) {
	queries := []query.Query{query.Identity{}, projQuery(), neqQuery()}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(3400 + qi)))
		for trial := 0; trial < 30; trial++ {
			d := randomDB(rng, rng.Intn(5), 1+rng.Intn(3))
			got, err := PossibleAnswers(q, d)
			if err != nil {
				t.Fatal(err)
			}
			want := brutePossibleAnswers(q, d)
			if want == nil {
				if got.Size() != 0 {
					t.Fatalf("query %s trial %d: expected empty answers for empty rep, got %v",
						q.Label(), trial, got)
				}
				continue
			}
			if !got.Equal(want) {
				t.Fatalf("query %s trial %d:\n got %v\nwant %v\nDB:\n%s",
					q.Label(), trial, got, want, d)
			}
		}
	}
}

func TestPossibleAnswersStableAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		d := randomDB(rng, rng.Intn(5), 1+rng.Intn(3))
		var want *rel.Instance
		for _, w := range []int{1, 2, 8} {
			got, err := Options{Workers: w}.PossibleAnswers(query.Identity{}, d)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
			} else if !got.Equal(want) {
				t.Fatalf("trial %d: answers differ at %d workers:\n%v\nvs\n%v", trial, w, got, want)
			}
		}
	}
}

func TestPossibleAnswersRequiresLiftable(t *testing.T) {
	d := randomDB(rand.New(rand.NewSource(1)), 0, 2)
	if _, err := PossibleAnswers(foQuery(), d); err == nil {
		t.Error("first-order queries must be rejected")
	}
}
