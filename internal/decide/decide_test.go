package decide

import (
	"fmt"
	"math/rand"
	"testing"

	"pw/internal/cond"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/value"
	"pw/internal/worlds"
)

func v(n string) value.Value { return value.Var(n) }
func k(n string) value.Value { return value.Const(n) }

func inst1(vals ...string) *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("T", 1)
	for _, x := range vals {
		r.AddRow(x)
	}
	return i
}

// randomDB builds a random single-table database of the requested kind
// flavor: 0=Codd, 1=e-table, 2=i-table, 3=g-table, 4=c-table.
func randomDB(rng *rand.Rand, flavor int, rows int) *table.Database {
	t := table.New("T", 2)
	varPool := []value.Value{v("x"), v("y"), v("z"), v("w")}
	constPool := []value.Value{k("1"), k("2"), k("3")}
	nextVar := 0
	pick := func(repeatVarsOK bool) value.Value {
		if rng.Intn(2) == 0 {
			return constPool[rng.Intn(len(constPool))]
		}
		if repeatVarsOK {
			return varPool[rng.Intn(len(varPool))]
		}
		nextVar++
		return v(fmt.Sprintf("u%d", nextVar))
	}
	repeats := flavor == 1 || flavor == 3 || flavor == 4
	for i := 0; i < rows; i++ {
		row := table.Row{Values: value.NewTuple(pick(repeats), pick(repeats))}
		if flavor == 4 && rng.Intn(2) == 0 {
			op := cond.Eq
			if rng.Intn(2) == 0 {
				op = cond.Neq
			}
			row.Cond = cond.Conj(cond.Atom{Op: op, L: pick(true), R: pick(true)})
		}
		t.Add(row)
	}
	if flavor == 2 || flavor == 3 || flavor == 4 {
		for i, n := 0, rng.Intn(2)+1; i < n; i++ {
			t.Global = append(t.Global, cond.NeqAtom(pick(true), pick(true)))
		}
	}
	return table.DB(t)
}

// randomInstance2 builds a random arity-2 instance over a tiny domain.
func randomInstance2(rng *rand.Rand, maxFacts int) *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("T", 2)
	pool := []string{"1", "2", "3", "4"}
	for n := rng.Intn(maxFacts + 1); n > 0; n-- {
		r.AddRow(pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))])
	}
	return i
}

func TestMembershipCoddPaperExample(t *testing.T) {
	// Fig. 3 of the paper: I0 and T of arity 3.
	tb := table.New("T", 3)
	tb.AddTuple(k("2"), v("x1"), k("1"))   // v1 = 2 x1 1
	tb.AddTuple(v("x2"), k("2"), k("3"))   // v2 = x2 2 3
	tb.AddTuple(v("x3"), v("x4"), v("x5")) // v3 = x3 x4 x5
	tb.AddTuple(k("1"), k("2"), v("x6"))   // v4 = 1 2 x6
	i0 := rel.NewInstance()
	r := i0.EnsureRelation("T", 3)
	r.AddRow("1", "1", "2") // wait: the paper's facts
	_ = r
	// The paper's I0 = {(1,1,2), (3,2,3), (1,4,5), (1,2,3)}; its T as in
	// Fig. 3(a) has rows (x1,1,x2),(x3,2,3),(1,x4,x5),(1,2,x6) — arity 3.
	tb2 := table.New("T", 3)
	tb2.AddTuple(v("x1"), k("1"), v("x2"))
	tb2.AddTuple(v("x3"), k("2"), k("3"))
	tb2.AddTuple(k("1"), v("x4"), v("x5"))
	tb2.AddTuple(k("1"), k("2"), v("x6"))
	i02 := rel.NewInstance()
	r2 := i02.EnsureRelation("T", 3)
	r2.AddRow("1", "1", "2")
	r2.AddRow("3", "2", "3")
	r2.AddRow("1", "4", "5")
	r2.AddRow("1", "2", "3")
	got, err := Membership(i02, query.Identity{}, table.DB(tb2))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("the paper's Fig. 3 instance is a member")
	}
	// Removing the fact (1,4,5) leaves row (1,x4,x5) free to map onto
	// (1,1,2) or (1,2,3), so membership still holds; removing instead the
	// fact (3,2,3) strands row (x3,2,3)… it can still map onto (1,2,3).
	// But an instance where some row fits nothing must fail:
	i03 := rel.NewInstance()
	r3 := i03.EnsureRelation("T", 3)
	r3.AddRow("9", "9", "9")
	got, err = Membership(i03, query.Identity{}, table.DB(tb2))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("(9,9,9) cannot be produced by any row with constants 1/2/3")
	}
}

func TestMembershipMatchingNeedsAugmenting(t *testing.T) {
	// Row A fits facts {f1,f2}; row B fits only f1: greedy A→f1 starves B…
	// the matching must still cover both facts.
	tb := table.New("T", 2)
	tb.AddTuple(k("1"), v("x")) // fits (1,1) and (1,2)
	tb.AddTuple(k("1"), k("1")) // fits only (1,1)
	i0 := rel.NewInstance()
	r := i0.EnsureRelation("T", 2)
	r.AddRow("1", "1")
	r.AddRow("1", "2")
	got, err := Membership(i0, query.Identity{}, table.DB(tb))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("matching should assign x=2")
	}
}

// TestMembershipMatchesBruteForce cross-validates the production solver
// against exhaustive valuation search for every representation kind.
func TestMembershipMatchesBruteForce(t *testing.T) {
	for flavor := 0; flavor <= 4; flavor++ {
		flavor := flavor
		t.Run(fmt.Sprintf("flavor%d", flavor), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + flavor)))
			for trial := 0; trial < 60; trial++ {
				d := randomDB(rng, flavor, 1+rng.Intn(3))
				i0 := randomInstance2(rng, 3)
				want := worlds.Member(i0, d)
				got, err := Membership(i0, query.Identity{}, d)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d: decide=%v brute=%v\nDB:\n%s\nI0:\n%s",
						trial, got, want, d, i0)
				}
			}
		})
	}
}

// TestUniquenessMatchesBruteForce cross-validates UNIQ.
func TestUniquenessMatchesBruteForce(t *testing.T) {
	for flavor := 0; flavor <= 4; flavor++ {
		flavor := flavor
		t.Run(fmt.Sprintf("flavor%d", flavor), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(200 + flavor)))
			for trial := 0; trial < 60; trial++ {
				d := randomDB(rng, flavor, 1+rng.Intn(2))
				i0 := randomInstance2(rng, 2)
				want := bruteUnique(d, i0)
				got, err := Uniqueness(query.Identity{}, d, i0)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d: decide=%v brute=%v\nDB:\n%s\nI0:\n%s",
						trial, got, want, d, i0)
				}
			}
		})
	}
}

func bruteUnique(d *table.Database, i0 *rel.Instance) bool {
	n := 0
	same := true
	worlds.Each(d, worldsDomain(d, i0), func(w *rel.Instance) bool {
		n++
		if !w.Equal(i0) {
			same = false
			return true
		}
		return false
	})
	return n > 0 && same
}

// worldsDomain matches the Proposition 2.1 domain used by the deciders
// when an instance is in play.
func worldsDomain(d *table.Database, extra *rel.Instance) []sym.ID {
	seen := map[sym.ID]bool{}
	cs := d.ConstIDs(nil, seen)
	if extra != nil {
		cs = extra.ConstIDs(cs, seen)
	}
	vars := d.VarNames()
	prefix := table.FreshPrefixIDs(cs)
	for i := range vars {
		cs = append(cs, sym.Const(fmt.Sprintf("%s%d", prefix, i)))
	}
	return cs
}

// TestPossibleMatchesBruteForce cross-validates POSS.
func TestPossibleMatchesBruteForce(t *testing.T) {
	for flavor := 0; flavor <= 4; flavor++ {
		flavor := flavor
		t.Run(fmt.Sprintf("flavor%d", flavor), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(300 + flavor)))
			for trial := 0; trial < 60; trial++ {
				d := randomDB(rng, flavor, 1+rng.Intn(3))
				p := randomInstance2(rng, 2)
				want := worlds.Possible(p, d)
				got, err := Possible(p, query.Identity{}, d)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d: decide=%v brute=%v\nDB:\n%s\nP:\n%s",
						trial, got, want, d, p)
				}
			}
		})
	}
}

// TestCertainMatchesBruteForce cross-validates CERT.
func TestCertainMatchesBruteForce(t *testing.T) {
	for flavor := 0; flavor <= 4; flavor++ {
		flavor := flavor
		t.Run(fmt.Sprintf("flavor%d", flavor), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(400 + flavor)))
			for trial := 0; trial < 60; trial++ {
				d := randomDB(rng, flavor, 1+rng.Intn(3))
				p := randomInstance2(rng, 2)
				want := worlds.Certain(p, d)
				got, err := Certain(p, query.Identity{}, d)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d: decide=%v brute=%v\nDB:\n%s\nP:\n%s",
						trial, got, want, d, p)
				}
			}
		})
	}
}

// TestContainmentMatchesBruteForce cross-validates CONT on pairs of random
// databases of all kind combinations.
func TestContainmentMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	for trial := 0; trial < 120; trial++ {
		f0, f := rng.Intn(5), rng.Intn(5)
		d0 := randomDB(rng, f0, 1+rng.Intn(2))
		d := randomDB(rng, f, 1+rng.Intn(2))
		want := bruteContained(d0, d)
		got, err := Containment(query.Identity{}, d0, query.Identity{}, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d (kinds %v⊆%v): decide=%v brute=%v\nD0:\n%s\nD:\n%s",
				trial, d0.Kind(), d.Kind(), got, want, d0, d)
		}
	}
}

func bruteContained(d0, d *table.Database) bool {
	// Enumerate d0's worlds over the *combined* constant pool and test
	// each for brute membership in rep(d).
	seen := map[sym.ID]bool{}
	cs := d0.ConstIDs(nil, seen)
	cs = d.ConstIDs(cs, seen)
	vars := d0.VarNames()
	prefix := table.FreshPrefixIDs(cs)
	for i := range vars {
		cs = append(cs, sym.Const(fmt.Sprintf("%s%d", prefix, i)))
	}
	contained := true
	worlds.Each(d0, cs, func(w *rel.Instance) bool {
		if !worlds.Member(w, d) {
			contained = false
			return true
		}
		return false
	})
	return contained
}

func TestContainmentUnsatisfiableSubset(t *testing.T) {
	t0 := table.New("T", 1)
	t0.Global = cond.Conj(cond.NeqAtom(v("x"), v("x")))
	t0.AddTuple(v("x"))
	d := randomDB(rand.New(rand.NewSource(1)), 0, 2)
	got, err := Containment(query.Identity{}, table.DB(t0), query.Identity{}, d)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("the empty set is contained in everything")
	}
}

func TestFreezeContainmentDirections(t *testing.T) {
	// Subset: Codd table {(x)} — represents all singletons and more.
	// Superset: e-table {(y),(y)} — same as {(y)}: all singletons.
	t0 := table.New("T", 1)
	t0.AddTuple(v("x"))
	tS := table.New("T", 1)
	tS.AddTuple(v("y"))
	got, err := Containment(query.Identity{}, table.DB(t0), query.Identity{}, table.DB(tS))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("{(x)} ⊆ {(y)} must hold")
	}
	// Superset ground {(1)}: containment must fail ({(2)} escapes).
	tg := table.New("T", 1)
	tg.AddTuple(k("1"))
	got, err = Containment(query.Identity{}, table.DB(t0), query.Identity{}, table.DB(tg))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("{(x)} ⊄ {(1)}")
	}
}

func TestContainmentNeedsSupersetConstants(t *testing.T) {
	// Regression for the Δ bug: d0 = {(y)} (no constants), d = i-table
	// {(x)} with x≠1. The world {(1)} of d0 is not in rep(d), so
	// containment must fail even though d0 alone mentions no constants.
	t0 := table.New("T", 1)
	t0.AddTuple(v("y"))
	ti := table.New("T", 1)
	ti.Global = cond.Conj(cond.NeqAtom(v("x"), k("1")))
	ti.AddTuple(v("x"))
	got, err := Containment(query.Identity{}, table.DB(t0), query.Identity{}, table.DB(ti))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("containment must fail: {(1)} ∈ rep(d0) but ∉ rep(d)")
	}
}

func TestUniquenessGTableFastPath(t *testing.T) {
	// Theorem 3.2(1): g-table forced ground by its equalities.
	tb := table.New("T", 1)
	tb.Global = cond.Conj(cond.EqAtom(v("x"), k("1")))
	tb.AddTuple(v("x"))
	ok, err := UniquenessOfGTable(table.DB(tb), inst1("1"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("x=1 forces the unique instance {(1)}")
	}
	ok, err = UniquenessOfGTable(table.DB(tb), inst1("2"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("{(2)} is not represented")
	}
	// Unbound variable: never unique.
	tb2 := table.New("T", 1)
	tb2.AddTuple(v("x"))
	ok, err = UniquenessOfGTable(table.DB(tb2), inst1("1"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("a free variable admits many instances")
	}
}

func TestSchemaCheckErrors(t *testing.T) {
	d := randomDB(rand.New(rand.NewSource(2)), 0, 1)
	bad := rel.NewInstance()
	bad.EnsureRelation("Other", 2)
	if _, err := Membership(bad, query.Identity{}, d); err == nil {
		t.Error("schema mismatch must error")
	}
	bad2 := rel.NewInstance()
	bad2.EnsureRelation("T", 3)
	if _, err := Membership(bad2, query.Identity{}, d); err == nil {
		t.Error("arity mismatch must error")
	}
	badP := rel.NewInstance()
	badP.EnsureRelation("Nope", 1).AddRow("1")
	if _, err := Possible(badP, query.Identity{}, d); err == nil {
		t.Error("possibility fact set naming unknown relation must error")
	}
}

func TestCertainFactAndPossibleFact(t *testing.T) {
	tb := table.New("T", 1)
	tb.Global = cond.Conj(cond.NeqAtom(v("x"), k("2")))
	tb.AddTuple(v("x"))
	tb.AddTuple(k("1"))
	d := table.DB(tb)
	c, err := CertainFact("T", rel.Fact{"1"}, query.Identity{}, d)
	if err != nil || !c {
		t.Errorf("(1) must be certain: %v %v", c, err)
	}
	c, err = CertainFact("T", rel.Fact{"3"}, query.Identity{}, d)
	if err != nil || c {
		t.Errorf("(3) must not be certain: %v %v", c, err)
	}
	p, err := PossibleFact("T", rel.Fact{"3"}, query.Identity{}, d)
	if err != nil || !p {
		t.Errorf("(3) must be possible: %v %v", p, err)
	}
	p, err = PossibleFact("T", rel.Fact{"2"}, query.Identity{}, d)
	if err != nil || p {
		t.Errorf("(2) must be impossible: %v %v", p, err)
	}
}

func TestCertainOnEmptyRep(t *testing.T) {
	tb := table.New("T", 1)
	tb.Global = cond.Conj(cond.NeqAtom(v("x"), v("x")))
	tb.AddTuple(v("x"))
	got, err := Certain(inst1("anything"), query.Identity{}, table.DB(tb))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("certainty over the empty set of worlds is vacuous truth")
	}
}

func TestMembershipWitness(t *testing.T) {
	tb := table.New("T", 1)
	tb.AddTuple(v("x"))
	w, ok, err := MembershipWitness(inst1("5"), query.Identity{}, table.DB(tb))
	if err != nil || !ok || !w.Equal(inst1("5")) {
		t.Errorf("witness = %v ok=%v err=%v", w, ok, err)
	}
}
