package decide

import (
	"pw/internal/cond"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
)

// Containment decides CONT(q0, q): is q0(rep(d0)) ⊆ q(rep(d))? Dispatch:
//
//   - both queries liftable: the views are rewritten into c-table
//     databases first. If the subset side then has no local conditions
//     (kind ≤ g-table) and the superset side contains no inequality atom
//     anywhere (kind ≤ e-table), the freeze claim of Theorem 4.1 reduces
//     containment to one membership test K0 ∈ rep(d): polynomial when d is
//     a vector of Codd-tables (Theorem 4.1(3)), NP when d is an e-table
//     (Theorem 4.1(2)).
//   - otherwise: the Π₂ᵖ procedure of Proposition 2.1(1) — for every
//     valuation σ0 over Δ0 ∪ Δ0′, test q0(σ0(d0)) ∈ q(rep(d)) with the
//     membership machinery (coNP with a matching inner test when d is
//     Codd, Theorem 4.1(1)).
func Containment(q0 query.Query, d0 *table.Database, q query.Query, d *table.Database) (bool, error) {
	return Options{}.Containment(q0, d0, q, d)
}

// Containment is the Options-aware CONT(q0, q) entry point.
func (o Options) Containment(q0 query.Query, d0 *table.Database, q query.Query, d *table.Database) (bool, error) {
	l0, ok0 := query.AsLiftable(q0)
	l, ok := query.AsLiftable(q)
	if ok0 && ok {
		lifted0, err := l0.EvalLifted(d0)
		if err != nil {
			return false, err
		}
		lifted, err := l.EvalLifted(d)
		if err != nil {
			return false, err
		}
		return o.containmentIdentity(lifted0, lifted)
	}
	return o.containmentGeneric(q0, d0, q, d)
}

// containmentIdentity decides rep(d0) ⊆ rep(d).
func (o Options) containmentIdentity(d0, d *table.Database) (bool, error) {
	nd0, ok := table.Normalize(d0)
	if !ok {
		return true, nil // rep(d0) = ∅ ⊆ anything
	}
	// The freeze claim needs: no local conditions on the subset side (so
	// K0 really is a member of rep(d0)), and a superset side that is an
	// e-table — no inequality atoms anywhere AND no local conditions. A
	// local condition, even equality-only, breaks the claim's homomorphism
	// argument: composing with the fresh-constant-collapsing map p can
	// turn a falsified (dropped) local condition into a satisfied one,
	// adding facts to the world.
	if !hasLocalConds(nd0) && noInequalities(d) && !hasLocalConds(d) {
		return o.freezeContainment(nd0, d)
	}
	// General case: for every valuation σ0 of d0 over Δ ∪ Δ′, the world
	// σ0(d0) must be a member of rep(d). Δ is the constants of *both*
	// sides (Proposition 2.1): a counterexample world may need to mention
	// d's constants (e.g. to violate an inequality of d). The outer Π₂ᵖ
	// universal runs sharded — first non-member world cancels everything —
	// while the inner membership tests stay sequential so the outer
	// fan-out owns the pool.
	base, prefix := contDomain(nd0, nil, d, nil)
	var memErr errOnce
	inner := o.inner()
	counterexample := o.enumerate(nd0.Universe(), base, prefix, func(v valuation.V) bool {
		w := applyValuation(v, nd0)
		if w == nil {
			return false
		}
		in, err := inner.membershipIdentity(w, d)
		if err != nil {
			memErr.set(err)
			return true
		}
		return !in
	})
	if err := memErr.get(); err != nil {
		return false, err
	}
	return !counterexample, nil
}

// noInequalities reports whether d contains no ≠ atom in its global or any
// local condition (the fragment where the freeze claim is sound: the
// homomorphism collapsing fresh constants preserves equalities but would
// break inequalities — which is exactly why Theorem 4.2(1) puts
// table-in-i-table containment at Π₂ᵖ).
func noInequalities(d *table.Database) bool {
	check := func(c cond.Conjunction) bool {
		for _, a := range c {
			if a.Op == cond.Neq && !a.TriviallyTrue() {
				return false
			}
		}
		return true
	}
	for _, t := range d.Tables() {
		if !check(t.Global) {
			return false
		}
		for _, r := range t.Rows {
			if !check(r.Cond) {
				return false
			}
		}
	}
	return true
}

// freezeContainment implements the claim of Theorem 4.1: for a normalized
// local-condition-free d0 and an inequality-free d, rep(d0) ⊆ rep(d) iff
// K0 ∈ rep(d), where K0 freezes each variable of d0 to a distinct fresh
// constant.
func (o Options) freezeContainment(nd0, d *table.Database) (bool, error) {
	seen := map[sym.ID]bool{}
	pool := nd0.ConstIDs(nil, seen)
	pool = d.ConstIDs(pool, seen)
	k0 := table.Freeze(nd0, table.FreshPrefixIDs(pool))
	// The single membership test is the whole cost of the freeze cell, so
	// it inherits the full worker budget (parallel matching-graph build).
	return o.membershipIdentity(k0, d)
}

// containmentGeneric handles non-liftable queries on either side by the
// full Π₂ᵖ enumeration (Proposition 2.1(1)): the outer universal is
// sharded, the inner membership tests run sequentially.
func (o Options) containmentGeneric(q0 query.Query, d0 *table.Database, q query.Query, d *table.Database) (bool, error) {
	base, prefix := contDomain(d0, q0, d, q)
	var innerErr errOnce
	inner := o.inner()
	counterexample := o.enumerate(d0.Universe(), base, prefix, func(v valuation.V) bool {
		w := applyValuation(v, d0)
		if w == nil {
			return false
		}
		img, err := q0.Eval(w)
		if err != nil {
			innerErr.set(err)
			return true
		}
		in, err := inner.Membership(img, q, d)
		if err != nil {
			innerErr.set(err)
			return true
		}
		return !in
	})
	if err := innerErr.get(); err != nil {
		return false, err
	}
	return !counterexample, nil
}

// contDomain is the Δ ∪ Δ′ for containment: constants of both databases
// and both queries, plus one fresh constant per variable of the subset
// side (only σ0's variables are enumerated here; the superset side's
// valuations live inside the membership tests).
func contDomain(d0 *table.Database, q0 query.Query, d *table.Database, q query.Query) (base []sym.ID, prefix string) {
	seen := map[sym.ID]bool{}
	consts := d0.ConstIDs(nil, seen)
	consts = d.ConstIDs(consts, seen)
	for _, qq := range []query.Query{q0, q} {
		if qq == nil {
			continue
		}
		for _, c := range qq.Consts() {
			id := sym.Const(c)
			if !seen[id] {
				seen[id] = true
				consts = append(consts, id)
			}
		}
	}
	return consts, table.FreshPrefixIDs(consts)
}

// ContainmentCounterexample reports a world of q0(rep(d0)) outside
// q(rep(d)), if any (nil when containment holds). Generic search; for
// diagnostics on small inputs.
func ContainmentCounterexample(q0 query.Query, d0 *table.Database, q query.Query, d *table.Database) (*rel.Instance, error) {
	base, prefix := contDomain(d0, q0, d, q)
	var witness *rel.Instance
	var innerErr error
	valuation.EnumerateCanonical(d0.Universe(), base, prefix, func(v valuation.V) bool {
		w := applyValuation(v, d0)
		if w == nil {
			return false
		}
		img, err := q0.Eval(w)
		if err != nil {
			innerErr = err
			return true
		}
		in, err := Membership(img, q, d)
		if err != nil {
			innerErr = err
			return true
		}
		if !in {
			witness = img
			return true
		}
		return false
	})
	return witness, innerErr
}
