package decide

import (
	"fmt"
	"sort"

	"pw/internal/cond"
	"pw/internal/eqlogic"
	"pw/internal/matching"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
)

// Membership decides MEMB(q): is i0 ∈ q(rep(d))? Dispatch:
//
//   - q identity (or positive-existential, lifted first) and the resulting
//     database a vector of Codd-tables: the bipartite-matching algorithm of
//     Theorem 3.1(1), polynomial time;
//   - q liftable: the backtracking row↔fact solver with an equality-logic
//     residual (NP as Theorem 3.1(2,3) and Proposition 2.1(2) require);
//   - otherwise (first-order, DATALOG): exhaustive valuation search over
//     Δ ∪ Δ′ comparing q(σ(d)) with i0.
func Membership(i0 *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	return Options{}.Membership(i0, q, d)
}

// Membership is the Options-aware MEMB(q) entry point.
func (o Options) Membership(i0 *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	if l, ok := query.AsLiftable(q); ok {
		lifted, err := l.EvalLifted(d)
		if err != nil {
			return false, err
		}
		return o.membershipIdentity(i0, lifted)
	}
	return o.membershipGeneric(i0, q, d)
}

// membershipIdentity decides i0 ∈ rep(d).
func (o Options) membershipIdentity(i0 *rel.Instance, d *table.Database) (bool, error) {
	if err := SchemaCheck(i0, d); err != nil {
		return false, err
	}
	nd, ok := table.Normalize(d)
	if !ok {
		return false, nil // rep(d) = ∅
	}
	if nd.Kind() == table.KindCodd {
		return membCodd(i0, nd, o.workers()), nil
	}
	return membSearch(i0, nd), nil
}

// membCodd implements the algorithm of Theorem 3.1(1): for each table,
// build the bipartite graph between the facts of i0 (left) and the rows of
// the table (right); answer yes iff every row is connected to some fact
// and a maximum matching saturates all facts. Tables in a vector have
// pairwise disjoint variables, so per-relation tests are independent.
func membCodd(i0 *rel.Instance, d *table.Database, workers int) bool {
	for _, t := range d.Tables() {
		facts := i0.Relation(t.Name).Tuples()
		n, m := len(facts), len(t.Rows)
		g := matching.NewGraph(n, m)
		deg := make([]int, m)
		buildMatchGraph(g, deg, facts, t.Rows, workers)
		// Step (c): a row that can produce no fact of i0 makes σ(T) ⊄ i0.
		for _, dg := range deg {
			if dg == 0 {
				return false
			}
		}
		// Steps (d)-(e): the matching must saturate all facts.
		if _, _, size := matching.HopcroftKarp(g); size != n {
			return false
		}
	}
	return true
}

// buildMatchGraph fills the fact→row candidate graph (and, when deg is
// non-nil, the per-row candidate counts). The O(n·m) rowMatchesFact sweep
// dominates the matching-based MEMB/POSS algorithms on large Codd-tables
// and is embarrassingly parallel across facts: each worker owns a
// contiguous fact range and writes only that range's adjacency lists, so
// the resulting graph is identical to the sequential build at any worker
// count.
func buildMatchGraph(g *matching.Graph, deg []int, facts []sym.Tuple, rows []table.Row, workers int) {
	n, m := len(facts), len(rows)
	if workers > 1 && n > 1 && n*m >= MinParallelPairs {
		forRanges(workers, n, func(lo, hi int) {
			for ai := lo; ai < hi; ai++ {
				for bj := 0; bj < m; bj++ {
					if rowMatchesFact(rows[bj], facts[ai]) {
						g.Adj[ai] = append(g.Adj[ai], bj)
					}
				}
			}
		})
		if deg != nil {
			for _, adj := range g.Adj {
				for _, bj := range adj {
					deg[bj]++
				}
			}
		}
		return
	}
	for ai, u := range facts {
		for bj := range rows {
			if rowMatchesFact(rows[bj], u) {
				g.AddEdge(ai, bj)
				if deg != nil {
					deg[bj]++
				}
			}
		}
	}
}

// rowMatchesFact reports whether some valuation maps the row onto the
// fact in isolation: constants agree positionally and repeated variables
// within the row agree. Allocation-free for the common small arities —
// this is the inner loop of the matching-based MEMB/POSS algorithms,
// called once per (row, fact) pair; every comparison is an ID compare.
func rowMatchesFact(row table.Row, f sym.Tuple) bool {
	var names, vals [8]sym.ID
	n := 0
	for i, v := range row.Values {
		id := v.ID()
		if !id.IsVar() {
			if id != f[i] {
				return false
			}
			continue
		}
		seen := false
		for j := 0; j < n; j++ {
			if names[j] == id {
				if vals[j] != f[i] {
					return false
				}
				seen = true
				break
			}
		}
		if !seen {
			if n == len(names) {
				// Arity beyond the fast path: fall back to a map.
				bind := make(map[sym.ID]sym.ID, len(row.Values))
				for j := 0; j < n; j++ {
					bind[names[j]] = vals[j]
				}
				_, ok := unifyTuple(row.Values[i:], f[i:], bind)
				return ok
			}
			names[n], vals[n] = id, f[i]
			n++
		}
	}
	return true
}

// membSearch is the backtracking solver for i0 ∈ rep(d) on general
// c-tables: each row is either mapped onto a fact of its relation (its
// local condition must hold) or dropped (its local condition must fail);
// every fact must be covered by at least one mapped row; the residual
// condition system is discharged by internal/eqlogic.
func membSearch(i0 *rel.Instance, d *table.Database) bool {
	s := newMembState(i0, d)
	if s == nil {
		return false
	}
	return s.search(0)
}

type membRow struct {
	row        table.Row
	relIdx     int
	candidates []int // facts (indices into facts[relIdx]) the row can unify with
	canDrop    bool
}

type membState struct {
	global    cond.Conjunction
	rows      []membRow
	facts     [][]sym.Tuple
	coverCnt  [][]int // per relation, per fact: mapped rows covering it
	remaining [][]int // per relation, per fact: unprocessed rows that could cover it
	uncovered int
	bind      map[sym.ID]sym.ID
	mustTrue  []cond.Conjunction
	mustFalse []cond.Conjunction
}

func newMembState(i0 *rel.Instance, d *table.Database) *membState {
	s := &membState{
		global: d.GlobalConjunction(),
		bind:   map[sym.ID]sym.ID{},
	}
	for ri, t := range d.Tables() {
		fs := i0.Relation(t.Name).Tuples()
		s.facts = append(s.facts, fs)
		s.coverCnt = append(s.coverCnt, make([]int, len(fs)))
		s.remaining = append(s.remaining, make([]int, len(fs)))
		s.uncovered += len(fs)
		for _, row := range t.Rows {
			mr := membRow{row: row, relIdx: ri, canDrop: len(row.Cond) > 0}
			for fi, f := range fs {
				if rowMatchesFact(row, f) {
					mr.candidates = append(mr.candidates, fi)
					s.remaining[ri][fi]++
				}
			}
			if len(mr.candidates) == 0 && !mr.canDrop {
				return nil // unconditioned row that fits no fact: immediate no
			}
			s.rows = append(s.rows, mr)
		}
	}
	// Most-constrained-first: rows with the fewest options fail fast and
	// bind variables early, which is what makes the search practical on
	// the lifted-view workloads.
	sort.SliceStable(s.rows, func(i, j int) bool {
		return s.rows[i].options() < s.rows[j].options()
	})
	return s
}

// options counts a row's branching factor (mapping choices plus drop).
func (r membRow) options() int {
	n := len(r.candidates)
	if r.canDrop {
		n++
	}
	return n
}

// search processes rows[k:]; rows[0:k] have been assigned.
func (s *membState) search(k int) bool {
	if k == len(s.rows) {
		if s.uncovered > 0 {
			return false
		}
		return s.residualSatisfiable()
	}
	r := s.rows[k]
	// A fact that only this row can still cover forces pruning bookkeeping:
	// decrement remaining counts first.
	for _, fi := range r.candidates {
		s.remaining[r.relIdx][fi]--
	}
	defer func() {
		for _, fi := range r.candidates {
			s.remaining[r.relIdx][fi]++
		}
	}()

	for _, fi := range r.candidates {
		bound, ok := unifyTuple(r.row.Values, s.facts[r.relIdx][fi], s.bind)
		if !ok {
			continue
		}
		s.coverCnt[r.relIdx][fi]++
		if s.coverCnt[r.relIdx][fi] == 1 {
			s.uncovered--
		}
		s.mustTrue = append(s.mustTrue, r.row.Cond)
		if s.quickConsistent() && !s.doomed() && s.search(k+1) {
			return true
		}
		s.mustTrue = s.mustTrue[:len(s.mustTrue)-1]
		if s.coverCnt[r.relIdx][fi] == 1 {
			s.uncovered++
		}
		s.coverCnt[r.relIdx][fi]--
		undo(s.bind, bound)
	}
	if r.canDrop {
		s.mustFalse = append(s.mustFalse, r.row.Cond)
		if !s.doomed() && s.search(k+1) {
			return true
		}
		s.mustFalse = s.mustFalse[:len(s.mustFalse)-1]
	}
	return false
}

// doomed reports that some uncovered fact has no remaining row able to
// cover it.
func (s *membState) doomed() bool {
	for ri := range s.facts {
		for fi := range s.facts[ri] {
			if s.coverCnt[ri][fi] == 0 && s.remaining[ri][fi] == 0 {
				return true
			}
		}
	}
	return false
}

// quickConsistent cheaply checks that the global condition plus the chosen
// local conditions remain satisfiable under the current bindings.
func (s *membState) quickConsistent() bool {
	sub := substBindings(s.bind)
	all := s.global.Subst(sub)
	for _, c := range s.mustTrue {
		all = append(all, c.Subst(sub)...)
	}
	return all.Satisfiable()
}

// residualSatisfiable solves the final constraint system: global and
// selected local conditions must hold, dropped local conditions must fail.
func (s *membState) residualSatisfiable() bool {
	sub := substBindings(s.bind)
	p := &eqlogic.Problem{}
	p.RequireAll(s.global.Subst(sub))
	for _, c := range s.mustTrue {
		p.RequireAll(c.Subst(sub))
	}
	for _, c := range s.mustFalse {
		p.Forbid(c.Subst(sub))
	}
	return p.Satisfiable()
}

// membershipGeneric decides MEMB(q) for arbitrary QPTIME queries by the
// Proposition 2.1(2) search: guess a valuation over Δ ∪ Δ′ and compare
// q(σ(d)) with i0. Exponential in the number of variables; the canonical
// space is sharded across the worker pool, and the first witness (or
// evaluation error) in any shard cancels the rest.
func (o Options) membershipGeneric(i0 *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	base, prefix := genericDomain(d, q, i0)
	var evalErr errOnce
	found := o.enumerate(d.Universe(), base, prefix, func(v valuation.V) bool {
		w := applyValuation(v, d)
		if w == nil {
			return false
		}
		out, err := q.Eval(w)
		if err != nil {
			evalErr.set(err)
			return true
		}
		return out.Equal(i0)
	})
	if err := evalErr.get(); err != nil {
		return false, fmt.Errorf("membership(%s): %w", q.Label(), err)
	}
	return found, nil
}

// MembershipWitness returns a world of q(rep(d)) equal to i0 together with
// the verdict; the witness is nil when the answer is no. It always uses
// the sequential generic search (so the witness is the first in canonical
// order); reserve it for small inputs and diagnostics.
func MembershipWitness(i0 *rel.Instance, q query.Query, d *table.Database) (*rel.Instance, bool, error) {
	base, prefix := genericDomain(d, q, i0)
	var witness *rel.Instance
	var evalErr error
	found := valuation.EnumerateCanonical(d.Universe(), base, prefix, func(v valuation.V) bool {
		w := applyValuation(v, d)
		if w == nil {
			return false
		}
		out, err := q.Eval(w)
		if err != nil {
			evalErr = err
			return true
		}
		if out.Equal(i0) {
			witness = out
			return true
		}
		return false
	})
	if evalErr != nil {
		return nil, false, evalErr
	}
	return witness, found, nil
}
