// Package decide implements the five decision problems of §2.3 —
// membership (MEMB), uniqueness (UNIQ), containment (CONT), possibility
// (POSS) and certainty (CERT) — over the representation hierarchy of
// internal/table and the query fragments of internal/query.
//
// Each procedure dispatches on the syntactic class of its inputs, exactly
// following the paper's classification (Fig. 2):
//
//   - the PTIME cells run the paper's polynomial algorithms (bipartite
//     matching for MEMB on Codd-tables, Theorem 3.1(1); normalization for
//     UNIQ on g-tables, Theorem 3.2(1); the freeze claim for CONT of
//     g-tables in e-tables, Theorem 4.1(2,3); lifted-algebra possibility,
//     Theorem 5.2(1); frozen-instance certainty, Theorem 5.3(1));
//   - the NP/coNP/Π₂ᵖ cells run backtracking searches over row↔fact
//     assignments whose residual constraints are discharged by
//     internal/eqlogic, with worst-case exponential time as the paper's
//     completeness results require, but far better behaviour than the
//     brute-force valuation enumeration of internal/worlds (ablation A2).
//
// All row↔fact unification, binding bookkeeping and fact comparison run on
// interned symbol IDs (internal/sym); strings never enter these paths.
package decide

import (
	"fmt"

	"pw/internal/cond"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
	"pw/internal/value"
)

// SchemaCheck verifies that the instance provides exactly one relation per
// table of d, with matching arities.
func SchemaCheck(i *rel.Instance, d *table.Database) error {
	if len(i.Relations()) != len(d.Tables()) {
		return fmt.Errorf("decide: instance has %d relations, database has %d tables",
			len(i.Relations()), len(d.Tables()))
	}
	for _, t := range d.Tables() {
		r := i.Relation(t.Name)
		if r == nil {
			return fmt.Errorf("decide: instance lacks relation %s", t.Name)
		}
		if r.Arity != t.Arity {
			return fmt.Errorf("decide: relation %s has arity %d, table expects %d",
				t.Name, r.Arity, t.Arity)
		}
	}
	return nil
}

// factsCheck verifies that every relation of the fact set p names a table
// of d with the right arity (p may omit relations).
func factsCheck(p *rel.Instance, d *table.Database) error {
	for _, r := range p.Relations() {
		t := d.Table(r.Name)
		if t == nil {
			return fmt.Errorf("decide: fact set names unknown relation %s", r.Name)
		}
		if t.Arity != r.Arity {
			return fmt.Errorf("decide: fact set relation %s has arity %d, table expects %d",
				r.Name, r.Arity, t.Arity)
		}
	}
	return nil
}

// genericDomain is the Δ of Proposition 2.1 extended with the query's
// constants (database constants, instance constants, query constants)
// plus a prefix for the fresh constants Δ′; generic searches pair it with
// valuation.EnumerateCanonical.
func genericDomain(d *table.Database, q query.Query, extra ...*rel.Instance) (base []sym.ID, prefix string) {
	seen := map[sym.ID]bool{}
	consts := d.ConstIDs(nil, seen)
	for _, e := range extra {
		if e != nil {
			consts = e.ConstIDs(consts, seen)
		}
	}
	if q != nil {
		for _, c := range q.Consts() {
			id := sym.Const(c)
			if !seen[id] {
				seen[id] = true
				consts = append(consts, id)
			}
		}
	}
	sym.SortByName(consts)
	return consts, table.FreshPrefixIDs(consts)
}

// unifyTuple matches row values against a ground fact under the current
// bindings, returning the variables newly bound (for undo) and whether the
// unification succeeds. Constants must match exactly; variables must agree
// with their binding or become bound. Everything is an ID comparison.
func unifyTuple(vals value.Tuple, f sym.Tuple, bind map[sym.ID]sym.ID) ([]sym.ID, bool) {
	var bound []sym.ID
	for i, v := range vals {
		id := v.ID()
		if !id.IsVar() {
			if id != f[i] {
				undo(bind, bound)
				return nil, false
			}
			continue
		}
		if c, ok := bind[id]; ok {
			if c != f[i] {
				undo(bind, bound)
				return nil, false
			}
			continue
		}
		bind[id] = f[i]
		bound = append(bound, id)
	}
	return bound, true
}

func undo(bind map[sym.ID]sym.ID, bound []sym.ID) {
	for _, b := range bound {
		delete(bind, b)
	}
}

// substBindings turns a binding map into a substitution for conditions.
func substBindings(bind map[sym.ID]sym.ID) value.Subst {
	s := make(value.Subst, len(bind))
	for k, v := range bind {
		s[value.Of(k)] = value.Of(v)
	}
	return s
}

// bindAtoms returns the equality atoms equating row values with the
// components of a ground fact (used where unification is deferred to the
// equality-logic solver instead of an eager binding map).
func bindAtoms(vals value.Tuple, f sym.Tuple) cond.Conjunction {
	out := make(cond.Conjunction, 0, len(vals))
	for i, v := range vals {
		out = append(out, cond.EqAtom(v, value.Of(f[i])))
	}
	return out
}

// applyValuation produces the world σ(d), or nil when σ violates the
// global condition.
func applyValuation(v valuation.V, d *table.Database) *rel.Instance {
	return v.Database(d)
}
