package decide

import (
	"testing"

	"pw/internal/obs"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/valuation"
	"pw/internal/value"
)

// qInst builds a one-column Q instance (the FO query's output shape).
func qInst(vals ...string) *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("Q", 1)
	for _, x := range vals {
		r.AddRow(x)
	}
	return i
}

// A first-order (non-liftable) query forces the generic valuation
// search, which must account its work into Options.Cost: shards
// spawned, valuations visited, and the visit depth of the witness.
func TestOptionsCostRecordsValuationSearch(t *testing.T) {
	tb := table.New("T", 2)
	tb.Add(table.Row{Values: value.NewTuple(v("x"), k("1"))})
	d := table.DB(tb)
	p := qInst("1") // Q(1) possible: any world T(a,1) with a≠1 is asymmetric

	c := obs.NewCost()
	o := Options{Workers: 1, Cost: c}
	got, err := o.Possible(p, foQuery(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("Possible(Q(1), asym, T(x,1)) = false, want true")
	}
	if n := c.Get(obs.DecideShards); n < 1 {
		t.Errorf("decide_shards = %d, want >= 1", n)
	}
	visits := c.Get(obs.DecideValuations)
	if visits < 1 {
		t.Errorf("decide_valuations = %d, want >= 1", visits)
	}
	depth := c.Get(obs.DecideWitnessDepth)
	if depth < 1 || depth > visits {
		t.Errorf("decide_witness_depth = %d, want in [1, %d]", depth, visits)
	}

	// A nil sink must not change the answer (the untraced hot path).
	got2, err := Options{Workers: 1}.Possible(p, foQuery(), d)
	if err != nil || got2 != got {
		t.Errorf("uninstrumented Possible = (%v, %v), want (%v, nil)", got2, err, got)
	}
}

// The sharded search records the fan-out and the cancellation that a
// witness in one shard triggers in the others.
func TestOptionsCostRecordsSharding(t *testing.T) {
	old := valuation.MinShardedSpace
	valuation.MinShardedSpace = 2
	defer func() { valuation.MinShardedSpace = old }()

	tb := table.New("T", 2)
	tb.Add(table.Row{Values: value.NewTuple(v("x"), v("y"))})
	tb.Add(table.Row{Values: value.NewTuple(v("z"), k("1"))})
	d := table.DB(tb)

	c := obs.NewCost()
	o := Options{Workers: 4, Cost: c}
	got, err := o.Possible(qInst("1"), foQuery(), d)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("Possible = false, want true")
	}
	if n := c.Get(obs.DecideShards); n < 2 {
		t.Errorf("decide_shards = %d, want >= 2 with the sharding cutoff lowered", n)
	}
	if n := c.Get(obs.DecideCancels); n != 1 {
		t.Errorf("decide_cancels = %d, want 1 (witness aborts the other shards)", n)
	}
}
