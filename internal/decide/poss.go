package decide

import (
	"sort"

	"pw/internal/cond"
	"pw/internal/eqlogic"
	"pw/internal/matching"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
)

// Possible decides POSS(∗, q): is there a world I ∈ q(rep(d)) containing
// every fact of p? With |p| bounded by a constant k this is POSS(k, q).
// Dispatch:
//
//   - q liftable (identity or positive existential): the view is rewritten
//     into a c-table database (the Theorem 5.2(1) route — polynomial growth
//     by the algebraic completeness of c-tables) and possibility is decided
//     on it: by bipartite matching when the result is a vector of
//     Codd-tables (Theorem 5.1(1)), else by the backtracking fact↔row
//     solver, which for |p| = k fixed visits O(rowsᵏ) nodes — the paper's
//     polynomial bound for bounded possibility — and in the unbounded case
//     is the NP search of Theorem 5.1(2,3).
//   - otherwise (first-order, DATALOG — the NP-hard cases of Theorem
//     5.2(2,3)): exhaustive valuation search over Δ ∪ Δ′.
func Possible(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	return Options{}.Possible(p, q, d)
}

// Possible is the Options-aware POSS(∗, q) entry point.
func (o Options) Possible(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	if l, ok := query.AsLiftable(q); ok {
		lifted, err := l.EvalLifted(d)
		if err != nil {
			return false, err
		}
		return o.possibleIdentity(p, lifted)
	}
	return o.possibleGeneric(p, q, d)
}

// possibleIdentity decides ∃I ∈ rep(d): facts(p) ⊆ I.
func (o Options) possibleIdentity(p *rel.Instance, d *table.Database) (bool, error) {
	if err := factsCheck(p, d); err != nil {
		return false, err
	}
	nd, ok := table.Normalize(d)
	if !ok {
		return false, nil // rep(d) = ∅
	}
	if nd.Kind() == table.KindCodd {
		return possCodd(p, nd, o.workers()), nil
	}
	return possSearch(p, nd), nil
}

// possCodd is the Theorem 5.1(1) variation of the matching algorithm:
// since σ(T) ⊇ p (not equality), only the facts of p need to be matched —
// injectively, because one row instantiates to exactly one fact — and
// every row is free to produce extra facts.
func possCodd(p *rel.Instance, d *table.Database, workers int) bool {
	for _, r := range p.Relations() {
		t := d.Table(r.Name)
		facts := r.Tuples()
		g := matching.NewGraph(len(facts), len(t.Rows))
		buildMatchGraph(g, nil, facts, t.Rows, workers)
		if !matching.Perfect(g) {
			return false
		}
	}
	return true
}

// possSearch assigns each fact of p to a distinct row of its table
// (backtracking with eager bindings); chosen rows' local conditions join
// the global condition in the final equality-logic check.
func possSearch(p *rel.Instance, d *table.Database) bool {
	type need struct {
		fact sym.Tuple
		t    *table.Table
		cand []int // candidate row indices in t
	}
	var needs []need
	for _, r := range p.Relations() {
		t := d.Table(r.Name)
		for _, u := range r.Tuples() {
			n := need{fact: u, t: t}
			for ri := range t.Rows {
				if rowMatchesFact(t.Rows[ri], u) {
					n.cand = append(n.cand, ri)
				}
			}
			if len(n.cand) == 0 {
				return false
			}
			needs = append(needs, n)
		}
	}
	// Most-constrained-first: facts with the fewest compatible rows first.
	sort.SliceStable(needs, func(i, j int) bool {
		return len(needs[i].cand) < len(needs[j].cand)
	})
	global := d.GlobalConjunction()
	bind := map[sym.ID]sym.ID{}
	used := map[*table.Row]bool{}
	var must []cond.Conjunction

	consistent := func() bool {
		sub := substBindings(bind)
		all := global.Subst(sub)
		for _, c := range must {
			all = append(all, c.Subst(sub)...)
		}
		return all.Satisfiable()
	}

	var try func(k int) bool
	try = func(k int) bool {
		if k == len(needs) {
			sub := substBindings(bind)
			pr := &eqlogic.Problem{}
			pr.RequireAll(global.Subst(sub))
			for _, c := range must {
				pr.RequireAll(c.Subst(sub))
			}
			return pr.Satisfiable()
		}
		n := needs[k]
		for _, ri := range n.cand {
			row := &n.t.Rows[ri]
			if used[row] {
				continue
			}
			bound, ok := unifyTuple(row.Values, n.fact, bind)
			if !ok {
				continue
			}
			used[row] = true
			must = append(must, row.Cond)
			if consistent() && try(k+1) {
				return true
			}
			must = must[:len(must)-1]
			used[row] = false
			undo(bind, bound)
		}
		return false
	}
	return try(0)
}

// possibleGeneric is the Proposition 2.1(4) search for arbitrary queries:
// sharded across the pool, first satisfying world cancels the rest.
func (o Options) possibleGeneric(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	base, prefix := genericDomain(d, q, p)
	var evalErr errOnce
	found := o.enumerate(d.Universe(), base, prefix, func(v valuation.V) bool {
		w := applyValuation(v, d)
		if w == nil {
			return false
		}
		out, err := q.Eval(w)
		if err != nil {
			evalErr.set(err)
			return true
		}
		return p.SubsetOf(out)
	})
	if err := evalErr.get(); err != nil {
		return false, err
	}
	return found, nil
}

// PossibleFact decides POSS(1, q) for a single fact.
func PossibleFact(relName string, f rel.Fact, q query.Query, d *table.Database) (bool, error) {
	return Options{}.PossibleFact(relName, f, q, d)
}

// PossibleFact is the Options-aware POSS(1, q).
func (o Options) PossibleFact(relName string, f rel.Fact, q query.Query, d *table.Database) (bool, error) {
	p := rel.NewInstance()
	r := rel.NewRelation(relName, len(f))
	r.Add(f)
	p.AddRelation(r)
	return o.Possible(p, q, d)
}
