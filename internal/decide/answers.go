package decide

import (
	"fmt"

	"pw/internal/cond"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/value"
)

// CertainAnswers computes the set of certain facts of q(rep(d)) — the
// facts present in every world — for a liftable (positive existential,
// possibly with ≠) query.
//
// The candidate set comes from one distinguished world: freeze every
// variable of the normalized lifted database to a distinct fresh constant
// (this valuation satisfies the residual global inequalities, so it
// denotes a world). Every certain fact lies in that world and mentions
// only the constants of d and q — a fact with a fresh constant would
// change under a different valuation. Each candidate is then confirmed or
// refuted by the per-fact equality-logic test of certainIdentity.
//
// For homomorphism-preserved queries on g-tables, every candidate passes
// immediately (Theorem 5.3(1)); the refutation step is what extends the
// computation soundly to ≠-conditions and local conditions.
func CertainAnswers(q query.Query, d *table.Database) (*rel.Instance, error) {
	return Options{}.CertainAnswers(q, d)
}

// CertainAnswers is the Options-aware certain-answer computation: the
// per-candidate confirmations are independent equality-logic systems, so
// they run across the worker pool; answers are inserted in candidate
// order afterwards, making the result identical at every worker count.
func (o Options) CertainAnswers(q query.Query, d *table.Database) (*rel.Instance, error) {
	l, ok := query.AsLiftable(q)
	if !ok {
		return nil, fmt.Errorf("decide: CertainAnswers requires a liftable query, got %s", q.Label())
	}
	lifted, err := l.EvalLifted(d)
	if err != nil {
		return nil, err
	}
	nd, okN := table.Normalize(lifted)
	if !okN {
		// rep(d) = ∅: certainty is vacuous; there is no canonical answer
		// set. Report the empty schema-shaped instance.
		return lifted.EmptyInstance(), nil
	}

	// Constants allowed in answers: those of the database and the query.
	allowed := map[sym.ID]bool{}
	for _, c := range nd.ConstIDs(nil, map[sym.ID]bool{}) {
		allowed[c] = true
	}
	for _, c := range q.Consts() {
		allowed[sym.Const(c)] = true
	}

	// The frozen world.
	pool := nd.ConstIDs(nil, map[sym.ID]bool{})
	w0 := frozenWorld(nd, table.FreshPrefixIDs(pool))

	// Collect the candidates of every table, confirm them in parallel,
	// then assemble the answer instance in candidate order.
	var cands []factRef
	out := rel.NewInstance()
	for _, t := range nd.Tables() {
		out.AddRelation(rel.NewRelation(t.Name, t.Arity))
		src := w0.Relation(t.Name)
	candidates:
		for _, u := range src.Tuples() {
			for _, c := range u {
				if !allowed[c] {
					continue candidates
				}
			}
			cands = append(cands, factRef{t: t, u: u})
		}
	}
	keep := make([]bool, len(cands))
	eachIndex(o.workers(), len(cands), func(k int) {
		keep[k] = certainFactIn(nd, cands[k].t, cands[k].u)
	})
	for k, c := range cands {
		if keep[k] {
			out.Relation(c.t.Name).Insert(c.u)
		}
	}
	return out, nil
}

// PossibleAnswers computes the possible answer facts of q(rep(d)) over
// the constants of d and q, for a liftable query: every fact, built from
// those constants, that some world of the view contains. The domain
// restriction is what keeps the answer finite — an unconditioned
// variable row makes facts over arbitrary fresh constants possible, and
// those are never enumerable; the restricted set is the canonical one
// (genericity: any possible fact over the inputs' constants is possible
// within them).
func PossibleAnswers(q query.Query, d *table.Database) (*rel.Instance, error) {
	return Options{}.PossibleAnswers(q, d)
}

// PossibleAnswers is the Options-aware possible-answer computation. The
// candidate set comes from the rows of the normalized lifted view:
// every assignment of a row's variables to allowed constants names one
// candidate fact, and each candidate is confirmed or refuted by the
// single-fact possibility test (an independent search per candidate, so
// the sweep runs across the worker pool; answers are inserted in
// candidate order, making the result identical at every worker count).
func (o Options) PossibleAnswers(q query.Query, d *table.Database) (*rel.Instance, error) {
	l, ok := query.AsLiftable(q)
	if !ok {
		return nil, fmt.Errorf("decide: PossibleAnswers requires a liftable query, got %s", q.Label())
	}
	lifted, err := l.EvalLifted(d)
	if err != nil {
		return nil, err
	}
	nd, okN := table.Normalize(lifted)
	if !okN {
		// rep(d) = ∅: no world, no possible fact.
		return lifted.EmptyInstance(), nil
	}

	// Allowed constants, as an ordered list (deterministic candidate
	// enumeration) and a set. Taken from the *input* database, not the
	// normalized view: normalization may drop trivially-true residual
	// atoms and the constants they mention, but facts over those
	// constants are still possible answers.
	seen := map[sym.ID]bool{}
	allowed := d.ConstIDs(nil, seen)
	for _, c := range q.Consts() {
		id := sym.Const(c)
		if !seen[id] {
			seen[id] = true
			allowed = append(allowed, id)
		}
	}

	// Candidates: per row, the instantiations of its variables into the
	// allowed pool (constant cells stay fixed; repeated variables stay
	// equal by construction). Deduplicated per relation.
	var cands []factRef
	out := rel.NewInstance()
	for _, t := range nd.Tables() {
		r := rel.NewRelation(t.Name, t.Arity)
		out.AddRelation(r)
		cset := rel.NewRelation(t.Name, t.Arity)
		for _, row := range t.Rows {
			eachRowInstantiation(row.Values, allowed, func(u sym.Tuple) {
				if cset.Insert(u) {
					cands = append(cands, factRef{t: t, u: u.Clone()})
				}
			})
		}
	}
	keep := make([]bool, len(cands))
	inner := o.inner()
	eachIndex(o.workers(), len(cands), func(k int) {
		p := rel.NewInstance()
		pr := p.AddRelation(rel.NewRelation(cands[k].t.Name, cands[k].t.Arity))
		pr.Insert(cands[k].u)
		yes, perr := inner.possibleIdentity(p, nd)
		keep[k] = perr == nil && yes
	})
	for k, c := range cands {
		if keep[k] {
			out.Relation(c.t.Name).Insert(c.u)
		}
	}
	return out, nil
}

// eachRowInstantiation enumerates the ground facts a conditioned row can
// denote over the allowed constant pool: the row's distinct variables
// run through the pool in odometer order. A row with variables but an
// empty pool denotes no candidate.
func eachRowInstantiation(vals value.Tuple, allowed []sym.ID, fn func(sym.Tuple)) {
	var vars []sym.ID
	pos := map[sym.ID]bool{}
	for _, v := range vals {
		id := v.ID()
		if id.IsVar() && !pos[id] {
			pos[id] = true
			vars = append(vars, id)
		}
	}
	if len(vars) > 0 && len(allowed) == 0 {
		return
	}
	assign := make(map[sym.ID]sym.ID, len(vars))
	choice := make([]int, len(vars))
	u := make(sym.Tuple, len(vals))
	for {
		for i, x := range vars {
			assign[x] = allowed[choice[i]]
		}
		for j, v := range vals {
			id := v.ID()
			if id.IsVar() {
				u[j] = assign[id]
			} else {
				u[j] = id
			}
		}
		fn(u)
		i := len(vars) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(allowed) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// frozenWorld applies the all-distinct-fresh valuation to d, keeping only
// rows whose local condition it satisfies (unlike table.Freeze, which
// ignores conditions).
func frozenWorld(d *table.Database, prefix string) *rel.Instance {
	vars := d.VarIDs(nil, map[sym.ID]bool{})
	sym.SortByName(vars)
	v := make(map[sym.ID]sym.ID, len(vars))
	for i, x := range vars {
		v[x] = sym.Const(fmt.Sprintf("%s%d", prefix, i))
	}
	get := func(x value.Value) sym.ID {
		id := x.ID()
		if !id.IsVar() {
			return id
		}
		return v[id]
	}
	inst := rel.NewInstance()
	var scratch sym.Tuple
	for _, t := range d.Tables() {
		r := rel.NewRelation(t.Name, t.Arity)
		inst.AddRelation(r)
	rows:
		for _, row := range t.Rows {
			for _, a := range row.Cond {
				l, rr := get(a.L), get(a.R)
				if (a.Op == cond.Eq) != (l == rr) {
					continue rows
				}
			}
			if cap(scratch) < len(row.Values) {
				scratch = make(sym.Tuple, len(row.Values))
			}
			f := scratch[:len(row.Values)]
			for j, x := range row.Values {
				f[j] = get(x)
			}
			r.Insert(f)
		}
	}
	return inst
}
