package decide

import (
	"fmt"

	"pw/internal/cond"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/value"
)

// CertainAnswers computes the set of certain facts of q(rep(d)) — the
// facts present in every world — for a liftable (positive existential,
// possibly with ≠) query.
//
// The candidate set comes from one distinguished world: freeze every
// variable of the normalized lifted database to a distinct fresh constant
// (this valuation satisfies the residual global inequalities, so it
// denotes a world). Every certain fact lies in that world and mentions
// only the constants of d and q — a fact with a fresh constant would
// change under a different valuation. Each candidate is then confirmed or
// refuted by the per-fact equality-logic test of certainIdentity.
//
// For homomorphism-preserved queries on g-tables, every candidate passes
// immediately (Theorem 5.3(1)); the refutation step is what extends the
// computation soundly to ≠-conditions and local conditions.
func CertainAnswers(q query.Query, d *table.Database) (*rel.Instance, error) {
	return Options{}.CertainAnswers(q, d)
}

// CertainAnswers is the Options-aware certain-answer computation: the
// per-candidate confirmations are independent equality-logic systems, so
// they run across the worker pool; answers are inserted in candidate
// order afterwards, making the result identical at every worker count.
func (o Options) CertainAnswers(q query.Query, d *table.Database) (*rel.Instance, error) {
	l, ok := query.AsLiftable(q)
	if !ok {
		return nil, fmt.Errorf("decide: CertainAnswers requires a liftable query, got %s", q.Label())
	}
	lifted, err := l.EvalLifted(d)
	if err != nil {
		return nil, err
	}
	nd, okN := table.Normalize(lifted)
	if !okN {
		// rep(d) = ∅: certainty is vacuous; there is no canonical answer
		// set. Report the empty schema-shaped instance.
		return lifted.EmptyInstance(), nil
	}

	// Constants allowed in answers: those of the database and the query.
	allowed := map[sym.ID]bool{}
	for _, c := range nd.ConstIDs(nil, map[sym.ID]bool{}) {
		allowed[c] = true
	}
	for _, c := range q.Consts() {
		allowed[sym.Const(c)] = true
	}

	// The frozen world.
	pool := nd.ConstIDs(nil, map[sym.ID]bool{})
	w0 := frozenWorld(nd, table.FreshPrefixIDs(pool))

	// Collect the candidates of every table, confirm them in parallel,
	// then assemble the answer instance in candidate order.
	var cands []factRef
	out := rel.NewInstance()
	for _, t := range nd.Tables() {
		out.AddRelation(rel.NewRelation(t.Name, t.Arity))
		src := w0.Relation(t.Name)
	candidates:
		for _, u := range src.Tuples() {
			for _, c := range u {
				if !allowed[c] {
					continue candidates
				}
			}
			cands = append(cands, factRef{t: t, u: u})
		}
	}
	keep := make([]bool, len(cands))
	eachIndex(o.workers(), len(cands), func(k int) {
		keep[k] = certainFactIn(nd, cands[k].t, cands[k].u)
	})
	for k, c := range cands {
		if keep[k] {
			out.Relation(c.t.Name).Insert(c.u)
		}
	}
	return out, nil
}

// frozenWorld applies the all-distinct-fresh valuation to d, keeping only
// rows whose local condition it satisfies (unlike table.Freeze, which
// ignores conditions).
func frozenWorld(d *table.Database, prefix string) *rel.Instance {
	vars := d.VarIDs(nil, map[sym.ID]bool{})
	sym.SortByName(vars)
	v := make(map[sym.ID]sym.ID, len(vars))
	for i, x := range vars {
		v[x] = sym.Const(fmt.Sprintf("%s%d", prefix, i))
	}
	get := func(x value.Value) sym.ID {
		id := x.ID()
		if !id.IsVar() {
			return id
		}
		return v[id]
	}
	inst := rel.NewInstance()
	var scratch sym.Tuple
	for _, t := range d.Tables() {
		r := rel.NewRelation(t.Name, t.Arity)
		inst.AddRelation(r)
	rows:
		for _, row := range t.Rows {
			for _, a := range row.Cond {
				l, rr := get(a.L), get(a.R)
				if (a.Op == cond.Eq) != (l == rr) {
					continue rows
				}
			}
			if cap(scratch) < len(row.Values) {
				scratch = make(sym.Tuple, len(row.Values))
			}
			f := scratch[:len(row.Values)]
			for j, x := range row.Values {
				f[j] = get(x)
			}
			r.Insert(f)
		}
	}
	return inst
}
