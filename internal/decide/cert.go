package decide

import (
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
)

// Certain decides CERT(∗, q): are all facts of p true in every world of
// q(rep(d))? By Proposition 2.1(6) this is k independent single-fact
// questions. Dispatch:
//
//   - q preserved under homomorphisms (DATALOG, positive existential
//     without ≠, identity) and d without local conditions (kind ≤
//     g-table): frozen-instance evaluation — normalize, freeze variables
//     to distinct fresh constants, evaluate q once, test p ⊆ q(K0). This
//     is Theorem 5.3(1) (after [10,17]) and runs in polynomial time.
//   - q liftable: rewrite the view into a c-table database; a fact u is
//     certain iff no valuation satisfying the global condition avoids
//     producing u from every row — one equality-logic system per fact
//     (the coNP procedure matching Theorem 5.3(3)).
//   - otherwise (first-order — the coNP-hard case of Theorem 5.3(2)):
//     exhaustive valuation search for a violating world.
func Certain(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	return Options{}.Certain(p, q, d)
}

// Certain is the Options-aware CERT(∗, q) entry point.
func (o Options) Certain(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	if query.IsHomPreserved(q) && !hasLocalConds(d) {
		return certainFrozen(p, q, d)
	}
	if l, ok := query.AsLiftable(q); ok {
		lifted, err := l.EvalLifted(d)
		if err != nil {
			return false, err
		}
		return o.certainIdentity(p, lifted)
	}
	return o.certainGeneric(p, q, d)
}

// certainFrozen implements Theorem 5.3(1): for a homomorphism-preserved
// query on a g-table, a ground fact is certain iff it is an answer on the
// frozen table. Soundness: the frozen world K0 is a member of rep(d)
// (after normalization its distinct fresh constants satisfy the residual
// inequalities), and for every world σ(d) the map h: a_x ↦ σ(x) is a
// homomorphism K0 → σ(d) fixing p's constants, so u ∈ q(K0) implies
// u = h(u) ∈ q(σ(d)). Completeness: a certain fact in particular holds in
// the world K0.
func certainFrozen(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	nd, ok := table.Normalize(d)
	if !ok {
		return true, nil // rep(d) = ∅: vacuously certain
	}
	seen := map[sym.ID]bool{}
	pool := nd.ConstIDs(nil, seen)
	pool = p.ConstIDs(pool, seen)
	for _, c := range q.Consts() {
		id := sym.Const(c)
		if !seen[id] {
			seen[id] = true
			pool = append(pool, id)
		}
	}
	k0 := table.Freeze(nd, table.FreshPrefixIDs(pool))
	out, err := q.Eval(k0)
	if err != nil {
		return false, err
	}
	return p.SubsetOf(out), nil
}

// certainIdentity decides whether every world of rep(d) contains all facts
// of p, one equality-logic refutation per fact — the per-fact checks are
// independent (Proposition 2.1(6)), so they fan out across the pool and
// the first uncertain fact cancels the rest.
func (o Options) certainIdentity(p *rel.Instance, d *table.Database) (bool, error) {
	if err := factsCheck(p, d); err != nil {
		return false, err
	}
	nd, ok := table.Normalize(d)
	if !ok {
		return true, nil // rep(d) = ∅: vacuously certain
	}
	refs := factRefs(nd, p)
	uncertain := anyIndex(o.workers(), len(refs), func(k int) bool {
		return !certainFactIn(nd, refs[k].t, refs[k].u)
	})
	return !uncertain, nil
}

// certainGeneric is the Proposition 2.1(5) search for arbitrary queries:
// the universal runs as a sharded search for the first violating world.
func (o Options) certainGeneric(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	base, prefix := genericDomain(d, q, p)
	var evalErr errOnce
	violated := o.enumerate(d.Universe(), base, prefix, func(v valuation.V) bool {
		w := applyValuation(v, d)
		if w == nil {
			return false
		}
		out, err := q.Eval(w)
		if err != nil {
			evalErr.set(err)
			return true
		}
		return !p.SubsetOf(out)
	})
	if err := evalErr.get(); err != nil {
		return false, err
	}
	return !violated, nil
}

// CertainFact decides CERT(1, q) for a single fact (the primitive that
// CERT(∗, q) reduces to, Proposition 2.1(6)).
func CertainFact(relName string, f rel.Fact, q query.Query, d *table.Database) (bool, error) {
	return Options{}.CertainFact(relName, f, q, d)
}

// CertainFact is the Options-aware CERT(1, q).
func (o Options) CertainFact(relName string, f rel.Fact, q query.Query, d *table.Database) (bool, error) {
	p := rel.NewInstance()
	r := rel.NewRelation(relName, len(f))
	r.Add(f)
	p.AddRelation(r)
	return o.Certain(p, q, d)
}
