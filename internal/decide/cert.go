package decide

import (
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
)

// Certain decides CERT(∗, q): are all facts of p true in every world of
// q(rep(d))? By Proposition 2.1(6) this is k independent single-fact
// questions. Dispatch:
//
//   - q preserved under homomorphisms (DATALOG, positive existential
//     without ≠, identity) and d without local conditions (kind ≤
//     g-table): frozen-instance evaluation — normalize, freeze variables
//     to distinct fresh constants, evaluate q once, test p ⊆ q(K0). This
//     is Theorem 5.3(1) (after [10,17]) and runs in polynomial time.
//   - q liftable: rewrite the view into a c-table database; a fact u is
//     certain iff no valuation satisfying the global condition avoids
//     producing u from every row — one equality-logic system per fact
//     (the coNP procedure matching Theorem 5.3(3)).
//   - otherwise (first-order — the coNP-hard case of Theorem 5.3(2)):
//     exhaustive valuation search for a violating world.
func Certain(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	if query.IsHomPreserved(q) && !hasLocalConds(d) {
		return certainFrozen(p, q, d)
	}
	if l, ok := query.AsLiftable(q); ok {
		lifted, err := l.EvalLifted(d)
		if err != nil {
			return false, err
		}
		return certainIdentity(p, lifted)
	}
	return certainGeneric(p, q, d)
}

// certainFrozen implements Theorem 5.3(1): for a homomorphism-preserved
// query on a g-table, a ground fact is certain iff it is an answer on the
// frozen table. Soundness: the frozen world K0 is a member of rep(d)
// (after normalization its distinct fresh constants satisfy the residual
// inequalities), and for every world σ(d) the map h: a_x ↦ σ(x) is a
// homomorphism K0 → σ(d) fixing p's constants, so u ∈ q(K0) implies
// u = h(u) ∈ q(σ(d)). Completeness: a certain fact in particular holds in
// the world K0.
func certainFrozen(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	nd, ok := table.Normalize(d)
	if !ok {
		return true, nil // rep(d) = ∅: vacuously certain
	}
	seen := map[sym.ID]bool{}
	pool := nd.ConstIDs(nil, seen)
	pool = p.ConstIDs(pool, seen)
	for _, c := range q.Consts() {
		id := sym.Const(c)
		if !seen[id] {
			seen[id] = true
			pool = append(pool, id)
		}
	}
	k0 := table.Freeze(nd, table.FreshPrefixIDs(pool))
	out, err := q.Eval(k0)
	if err != nil {
		return false, err
	}
	return p.SubsetOf(out), nil
}

// certainIdentity decides whether every world of rep(d) contains all facts
// of p, one equality-logic refutation per fact.
func certainIdentity(p *rel.Instance, d *table.Database) (bool, error) {
	if err := factsCheck(p, d); err != nil {
		return false, err
	}
	nd, ok := table.Normalize(d)
	if !ok {
		return true, nil // rep(d) = ∅: vacuously certain
	}
	for _, r := range p.Relations() {
		t := nd.Table(r.Name)
		for _, u := range r.Tuples() {
			if !certainFactIn(nd, t, u) {
				return false, nil
			}
		}
	}
	return true, nil
}

// certainGeneric is the Proposition 2.1(5) search for arbitrary queries.
func certainGeneric(p *rel.Instance, q query.Query, d *table.Database) (bool, error) {
	base, prefix := genericDomain(d, q, p)
	var evalErr error
	violated := valuation.EnumerateCanonical(d.Universe(), base, prefix, func(v valuation.V) bool {
		w := applyValuation(v, d)
		if w == nil {
			return false
		}
		out, err := q.Eval(w)
		if err != nil {
			evalErr = err
			return true
		}
		return !p.SubsetOf(out)
	})
	if evalErr != nil {
		return false, evalErr
	}
	return !violated, nil
}

// CertainFact decides CERT(1, q) for a single fact (the primitive that
// CERT(∗, q) reduces to, Proposition 2.1(6)).
func CertainFact(relName string, f rel.Fact, q query.Query, d *table.Database) (bool, error) {
	p := rel.NewInstance()
	r := rel.NewRelation(relName, len(f))
	r.Add(f)
	p.AddRelation(r)
	return Certain(p, q, d)
}
