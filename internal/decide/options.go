package decide

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pw/internal/obs"
	"pw/internal/sym"
	"pw/internal/valuation"
)

// Options configures how the decision procedures search, without changing
// what they decide: the determinism contract guarantees identical results
// (booleans, world sets, answer sets) at every worker count, even though
// internal visit order differs under parallelism.
type Options struct {
	// Workers is the goroutine budget for the exponential valuation
	// searches of the NP/coNP/Π₂ᵖ cells and for the large matching-graph
	// builds of the polynomial cells. 0 means GOMAXPROCS; 1 reproduces
	// the sequential engine bit-for-bit (visit order, witness choice).
	Workers int

	// Cost, when non-nil, receives the search's cost counters: shards
	// spawned, early cancellations, valuations visited, and the visit
	// count at which the first witness was found. Counting is attached
	// only when a sink is present, so the untraced path is unchanged.
	Cost *obs.Cost
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// inner is the options for decision sub-procedures nested inside a
// parallel enumeration (the membership tests of the Π₂ᵖ containment
// cells): sequential, so the outer fan-out owns the pool. The cost sink
// carries over — nested valuation visits are part of the request.
func (o Options) inner() Options { return Options{Workers: 1, Cost: o.Cost} }

// enumerate runs the sharded canonical valuation search with the
// options' cost sink attached: the enumerator records shards and
// cancellations, and a wrapper counts valuations visited and the
// witness depth. Without a sink the predicate runs unwrapped.
func (o Options) enumerate(u *sym.Universe, base []sym.ID, prefix string, fn func(valuation.V) bool) bool {
	if c := o.Cost; c != nil {
		inner := fn
		fn = func(v valuation.V) bool {
			n := c.Add(obs.DecideValuations, 1)
			if inner(v) {
				c.Max(obs.DecideWitnessDepth, n)
				return true
			}
			return false
		}
	}
	return valuation.EnumerateCanonicalShardedObserved(u, base, prefix, o.workers(), o.Cost, fn)
}

// MinParallelPairs is the smallest row×fact product worth parallelizing
// in the matching-graph builds; below it one core wins. The build is
// memory-bandwidth-bound (a cheap predicate per pair, adjacency append
// per hit), so the fan-out only pays for itself well past the point
// where the pair sweep outweighs per-worker graph stitching: measured
// on the gated Fig3_MembMatching_2048 probe (2048×2048 facts×rows =
// 2^22 pairs), the workers=8 build ran ~10–35% slower than sequential,
// so the cutoff sits one doubling above it. Tests lower it to force the
// parallel build onto small inputs.
var MinParallelPairs = 1 << 23

// errOnce retains the first error any worker reports.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// anyIndex reports whether check(i) holds for some i in [0, n): the
// per-fact fan-out of the coNP cells of UNIQ and CERT, on the shared
// pool with cancellation — the first hit cancels the remaining checks.
// With workers <= 1 it preserves the sequential engine's first-hit
// visit order. check must be safe for concurrent calls.
func anyIndex(workers, n int, check func(int) bool) bool {
	return valuation.ParallelAny(workers, n, func(i int, _ *atomic.Bool) bool {
		return check(i)
	})
}

// eachIndex runs body(i) for every i in [0, n) across the pool with no
// early exit and dynamic load balancing (per-index costs vary wildly in
// the equality-logic sweeps). body must be safe for concurrent calls on
// distinct indices.
func eachIndex(workers, n int, body func(int)) {
	valuation.ParallelAny(workers, n, func(i int, _ *atomic.Bool) bool {
		body(i)
		return false
	})
}

// forRanges runs body over a static contiguous partition of [0, n) —
// the no-early-exit fan-out used by the matching-graph builds and the
// certain-answer confirmation sweep. body must be safe for concurrent
// calls on disjoint ranges.
func forRanges(workers, n int, body func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	size := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := min(lo+size, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
