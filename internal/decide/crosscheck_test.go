package decide

import (
	"testing"

	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/table"
	"pw/internal/worlds"
)

// TestDecideAgreesWithWorldsOnGenDatabases pins the interned-symbol engine
// against the brute-force world semantics on the internal/gen random
// databases: MEMB, UNIQ, POSS and CERT must answer exactly as enumeration
// does, for every representation kind the generator produces.
func TestDecideAgreesWithWorldsOnGenDatabases(t *testing.T) {
	build := func(seed int64, kind int) *table.Database {
		switch kind {
		case 0:
			return table.DB(gen.CoddTable(seed, "T", 3, 2, 4, 0.5))
		case 1:
			return table.DB(gen.ETable(seed, "T", 3, 2, 4, 2, 0.5))
		case 2:
			return table.DB(gen.ITable(seed, "T", 3, 2, 4, 2, 0.5))
		default:
			return table.DB(gen.CTable(seed, "T", 3, 2, 4, 2, 0.5, 0.5))
		}
	}
	id := query.Identity{}
	for kind := 0; kind < 4; kind++ {
		for seed := int64(0); seed < 8; seed++ {
			d := build(seed, kind)
			i0, ok := gen.MemberInstance(seed, d)
			if !ok {
				continue
			}
			// MEMB: the sampled world and a perturbed near-miss.
			got, err := Membership(i0, id, d)
			if err != nil {
				t.Fatal(err)
			}
			if want := worlds.Member(i0, d); got != want {
				t.Fatalf("kind %d seed %d MEMB: decide=%v worlds=%v\n%s\n%s",
					kind, seed, got, want, d, i0)
			}
			if pert, ok := gen.PerturbedInstance(seed, i0); ok {
				got, err := Membership(pert, id, d)
				if err != nil {
					t.Fatal(err)
				}
				if want := worlds.Member(pert, d); got != want {
					t.Fatalf("kind %d seed %d MEMB(perturbed): decide=%v worlds=%v\n%s\n%s",
						kind, seed, got, want, d, pert)
				}
			}
			// UNIQ against brute-force singleton check.
			gotU, err := Uniqueness(id, d, i0)
			if err != nil {
				t.Fatal(err)
			}
			wantU := worlds.Count(d) == 1 && worlds.Member(i0, d)
			if gotU != wantU {
				t.Fatalf("kind %d seed %d UNIQ: decide=%v worlds=%v\n%s\n%s",
					kind, seed, gotU, wantU, d, i0)
			}
			// POSS and CERT on the sampled world's facts.
			gotP, err := Possible(i0, id, d)
			if err != nil {
				t.Fatal(err)
			}
			if want := worlds.Possible(i0, d); gotP != want {
				t.Fatalf("kind %d seed %d POSS: decide=%v worlds=%v\n%s\n%s",
					kind, seed, gotP, want, d, i0)
			}
			gotC, err := Certain(i0, id, d)
			if err != nil {
				t.Fatal(err)
			}
			if want := worlds.Certain(i0, d); gotC != want {
				t.Fatalf("kind %d seed %d CERT: decide=%v worlds=%v\n%s\n%s",
					kind, seed, gotC, want, d, i0)
			}
		}
	}
}
