package decide

import (
	"fmt"
	"testing"

	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
	"pw/internal/value"
	"pw/internal/worlds"
)

// The differential suite is the enforcement of the determinism contract:
// across ~200 seeded random databases, every decision procedure must
// return identical results at Workers = 1, 2 and 8 AND match the
// brute-force worlds oracle. The sharding thresholds are lowered so the
// parallel machinery genuinely engages on these small inputs (and so the
// race detector sees the real pool/cancellation code paths).

var diffWorkers = []int{1, 2, 8}

func forceParallel(t *testing.T) {
	t.Helper()
	oldSpace, oldPairs := valuation.MinShardedSpace, MinParallelPairs
	valuation.MinShardedSpace, MinParallelPairs = 1, 1
	t.Cleanup(func() {
		valuation.MinShardedSpace, MinParallelPairs = oldSpace, oldPairs
	})
}

func genDB(seed int64, kind int) *table.Database {
	switch kind {
	case 0:
		return table.DB(gen.CoddTable(seed, "T", 3, 2, 4, 0.5))
	case 1:
		return table.DB(gen.ETable(seed, "T", 3, 2, 4, 2, 0.5))
	case 2:
		return table.DB(gen.ITable(seed, "T", 3, 2, 4, 2, 0.5))
	default:
		return table.DB(gen.CTable(seed, "T", 3, 2, 4, 2, 0.5, 0.5))
	}
}

// TestDifferentialIdentityDecisions covers the identity-query cells
// (matching, backtracking search, per-fact coNP fan-outs) on 152 random
// databases of every representation kind.
func TestDifferentialIdentityDecisions(t *testing.T) {
	forceParallel(t)
	id := query.Identity{}
	for kind := 0; kind < 4; kind++ {
		for seed := int64(0); seed < 38; seed++ {
			d := genDB(seed, kind)
			i0, ok := gen.MemberInstance(seed, d)
			if !ok {
				continue
			}
			pert, _ := gen.PerturbedInstance(seed, i0)
			wantMemb := worlds.Member(i0, d)
			wantUniq := worlds.Count(d) == 1 && wantMemb
			wantPoss := worlds.Possible(i0, d)
			wantCert := worlds.Certain(i0, d)
			var wantMembPert bool
			if pert != nil {
				wantMembPert = worlds.Member(pert, d)
			}
			for _, w := range diffWorkers {
				o := Options{Workers: w}
				check := func(label string, got bool, err error, want bool) {
					t.Helper()
					if err != nil {
						t.Fatalf("kind %d seed %d workers %d %s: %v", kind, seed, w, label, err)
					}
					if got != want {
						t.Fatalf("kind %d seed %d workers %d %s: decide=%v oracle=%v\n%s\n%s",
							kind, seed, w, label, got, want, d, i0)
					}
				}
				got, err := o.Membership(i0, id, d)
				check("MEMB", got, err, wantMemb)
				if pert != nil {
					got, err = o.Membership(pert, id, d)
					check("MEMB(perturbed)", got, err, wantMembPert)
				}
				got, err = o.Uniqueness(id, d, i0)
				check("UNIQ", got, err, wantUniq)
				got, err = o.Possible(i0, id, d)
				check("POSS", got, err, wantPoss)
				got, err = o.Certain(i0, id, d)
				check("CERT", got, err, wantCert)
			}
		}
	}
}

// TestDifferentialViewDecisions drives the generic NP/coNP cells — the
// sharded canonical enumerations — with a genuinely first-order query on
// 16 databases, plus the certain-answer computation (whose result
// instance, including order, must be worker-count independent) with a
// liftable ≠-query.
func TestDifferentialViewDecisions(t *testing.T) {
	forceParallel(t)
	fo := foQuery()
	neq := neqQuery()
	for seed := int64(0); seed < 16; seed++ {
		d := table.DB(gen.ETable(seed, "T", 2, 2, 3, 2, 0.5))
		i0 := rel.NewInstance()
		r := i0.EnsureRelation("Q", 1)
		if seed%2 == 0 {
			r.AddRow("1")
		}
		wantMemb := bruteMembView(i0, fo, d)
		wantPoss := brutePossView(i0, fo, d)
		wantCert := bruteCertView(i0, fo, d)
		var wantAnswers *rel.Instance
		for _, w := range diffWorkers {
			o := Options{Workers: w}
			gotM, err := o.Membership(i0, fo, d)
			if err != nil {
				t.Fatal(err)
			}
			gotP, err := o.Possible(i0, fo, d)
			if err != nil {
				t.Fatal(err)
			}
			gotC, err := o.Certain(i0, fo, d)
			if err != nil {
				t.Fatal(err)
			}
			if gotM != wantMemb || gotP != wantPoss || gotC != wantCert {
				t.Fatalf("seed %d workers %d: MEMB=%v/%v POSS=%v/%v CERT=%v/%v\n%s\n%s",
					seed, w, gotM, wantMemb, gotP, wantPoss, gotC, wantCert, d, i0)
			}
			ans, err := o.CertainAnswers(neq, d)
			if err != nil {
				t.Fatal(err)
			}
			if wantAnswers == nil {
				wantAnswers = ans
			} else if !ans.Equal(wantAnswers) {
				t.Fatalf("seed %d workers %d: certain answers differ\n%s\nvs\n%s",
					seed, w, ans, wantAnswers)
			}
		}
	}
}

// bruteCont is the brute-force containment oracle: every world of d0
// (over the constants of both sides plus fresh constants, Proposition
// 2.1) must be a member of rep(d).
func bruteCont(d0, d *table.Database) bool {
	base, prefix := contDomain(d0, nil, d, nil)
	dom := append([]sym.ID(nil), base...)
	for i := range d0.VarNames() {
		dom = append(dom, sym.Const(fmt.Sprintf("%s%d", prefix, i)))
	}
	contained := true
	worlds.Each(d0, dom, func(w *rel.Instance) bool {
		if !worlds.Member(w, d) {
			contained = false
			return true
		}
		return false
	})
	return contained
}

// TestDifferentialContainment covers the Π₂ᵖ cell — the sharded outer
// universal with sequential inner membership — on 32 database pairs,
// half of them supersets (usually yes) and half unrelated (usually no).
func TestDifferentialContainment(t *testing.T) {
	forceParallel(t)
	id := query.Identity{}
	for seed := int64(0); seed < 16; seed++ {
		t0 := gen.ETable(seed, "T", 2, 2, 3, 2, 0.5)
		sup := t0.Clone()
		sup.AddTuple(value.Var("wild1"), value.Var("wild2"))
		other := gen.ITable(seed+100, "T", 2, 2, 3, 1, 0.5)
		pairs := []struct{ d0, d *table.Database }{
			{table.DB(t0), table.DB(sup)},
			{table.DB(t0.Clone()), table.DB(other)},
		}
		for pi, pair := range pairs {
			want := bruteCont(pair.d0, pair.d)
			for _, w := range diffWorkers {
				got, err := Options{Workers: w}.Containment(id, pair.d0, id, pair.d)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %d pair %d workers %d: CONT=%v oracle=%v\n%s\n⊆?\n%s",
						seed, pi, w, got, want, pair.d0, pair.d)
				}
			}
		}
	}
}
