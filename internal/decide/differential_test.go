// Differential validation of the decision engine through the shared
// metamorphic harness (internal/difftest): the determinism contract —
// every decision procedure returns identical results at Workers = 1, 2
// and 8 AND matches the brute-force scan of the canonical world list —
// enforced across seeded random databases of every representation kind,
// for the identity query, a genuinely first-order query and a liftable
// ≠-query, plus the Π₂ᵖ containment cell. The sharding thresholds are
// lowered so the parallel machinery genuinely engages on these small
// inputs (and so the race detector sees the real pool/cancellation code
// paths).
package decide_test

import (
	"fmt"
	"testing"

	"pw/internal/algebra"
	"pw/internal/decide"
	"pw/internal/difftest"
	"pw/internal/fo"
	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
	"pw/internal/value"
	"pw/internal/worlds"
)

func forceParallel(t *testing.T) {
	t.Helper()
	oldSpace, oldPairs := valuation.MinShardedSpace, decide.MinParallelPairs
	valuation.MinShardedSpace, decide.MinParallelPairs = 1, 1
	t.Cleanup(func() {
		valuation.MinShardedSpace, decide.MinParallelPairs = oldSpace, oldPairs
	})
}

// workerSweep is the determinism contract: the same engine at three
// worker counts, every answer compared to the same oracle.
func workerSweep(withAnswers bool) []difftest.Backend {
	return []difftest.Backend{
		difftest.DecideBackend(1, withAnswers),
		difftest.DecideBackend(2, withAnswers),
		difftest.DecideBackend(8, withAnswers),
	}
}

func genDB(seed int64, kind int64) *table.Database {
	rows := 2 + int(seed)%2
	switch kind {
	case 0:
		return table.DB(gen.CoddTable(seed, "T", rows, 2, 4, 0.5))
	case 1:
		return table.DB(gen.ETable(seed, "T", rows, 2, 4, 2, 0.5))
	case 2:
		return table.DB(gen.ITable(seed, "T", rows, 2, 4, 2, 0.5))
	default:
		return table.DB(gen.CTable(seed, "T", rows, 2, 4, 2, 0.5, 0.5))
	}
}

// decideCase builds a difftest case over the canonical world list of a
// seeded database of the given kind, bounded for the oracle scan.
func decideCase(seed int64, q query.Query) (*difftest.Case, bool) {
	d := genDB(seed, seed%4)
	if len(d.VarNames()) > 4 {
		return nil, false
	}
	W := worlds.All(d)
	if len(W) == 0 || len(W) > 400 {
		return nil, false
	}
	return &difftest.Case{Worlds: W, DB: d, Query: q, Consts: d.ConstNames()}, true
}

// TestDifferentialDecideIdentity covers the identity-query cells
// (matching, backtracking search, per-fact coNP fan-outs, the lifted
// answer sets) on seeded databases of every representation kind.
func TestDifferentialDecideIdentity(t *testing.T) {
	forceParallel(t)
	difftest.Run(t, difftest.Config{
		Tag:      "decide-identity",
		Cases:    152,
		Gen:      func(seed int64) (*difftest.Case, bool) { return decideCase(seed, nil) },
		Backends: workerSweep(true),
	})
}

// diffNeqQuery is π[a](σ[a≠b] T) — liftable but not positive.
func diffNeqQuery() query.Query {
	return query.NewAlgebra("neq",
		query.Out{Name: "Q", Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("T", "a", "b"), algebra.NeqP(algebra.Col("a"), algebra.Col("b"))),
			Cols: []string{"a"},
		}})
}

// diffFOQuery is {w | ∃a,b T(a,b) ∧ ¬T(b,a) ∧ w=1} — genuinely first
// order.
func diffFOQuery() query.Query {
	va := value.Var
	return query.NewFO("asym", query.FOOut{Name: "Q", Q: fo.Query{
		Head: []string{"w"},
		Body: fo.And{
			fo.Equal(va("w"), value.Const("1")),
			fo.Exists{Vars: []string{"a", "b"}, F: fo.And{
				fo.At("T", va("a"), va("b")),
				fo.Not{F: fo.At("T", va("b"), va("a"))},
			}},
		},
	}})
}

// TestDifferentialDecideViews drives the generic NP/coNP cells — the
// sharded canonical enumerations — with a genuinely first-order query,
// and the lifted answer computation with a liftable ≠-query, each
// through the worker sweep.
func TestDifferentialDecideViews(t *testing.T) {
	forceParallel(t)
	difftest.Run(t, difftest.Config{
		Tag:      "decide-fo",
		Cases:    150,
		Gen:      func(seed int64) (*difftest.Case, bool) { return decideCase(seed, diffFOQuery()) },
		Backends: workerSweep(false), // FO queries are outside the lifted-answers fragment
	})
	difftest.Run(t, difftest.Config{
		Tag:      "decide-neq",
		Cases:    150,
		Gen:      func(seed int64) (*difftest.Case, bool) { return decideCase(seed, diffNeqQuery()) },
		Backends: workerSweep(true),
	})
}

// TestDifferentialDecideContainment covers the Π₂ᵖ cell — the sharded
// outer universal with sequential inner membership — on seeded database
// pairs, half supersets (usually yes) and half unrelated (usually no).
// The sub side's worlds enumerate over the joint constant pool plus one
// fresh constant per sub variable (Proposition 2.1); the sup-side
// oracle is the engine-independent valuation search, since the sup
// rep ranges over constants its own canonical enumeration would not
// realize.
func TestDifferentialDecideContainment(t *testing.T) {
	forceParallel(t)
	difftest.RunContainment(t, difftest.ContConfig{
		Tag:   "decide-cont",
		Cases: 150,
		Gen: func(seed int64) (sub, sup *difftest.Case, ok bool) {
			t0 := gen.ETable(seed, "T", 2, 2, 3, 2, 0.5)
			var other *table.Table
			if seed%2 == 0 {
				other = t0.Clone()
				other.AddTuple(value.Var("wild1"), value.Var("wild2"))
			} else {
				other = gen.ITable(seed+100, "T", 2, 2, 3, 1, 0.5)
			}
			d0, d := table.DB(t0.Clone()), table.DB(other)

			// Enumerate the sub side over consts(both) ∪ Δ′(sub vars).
			seen := map[sym.ID]bool{}
			var dom []sym.ID
			for _, id := range d0.ConstIDs(nil, map[sym.ID]bool{}) {
				if !seen[id] {
					seen[id] = true
					dom = append(dom, id)
				}
			}
			for _, id := range d.ConstIDs(nil, map[sym.ID]bool{}) {
				if !seen[id] {
					seen[id] = true
					dom = append(dom, id)
				}
			}
			prefix := table.FreshPrefixIDs(dom)
			for i := range d0.VarNames() {
				dom = append(dom, sym.Const(fmt.Sprintf("%s%d", prefix, i)))
			}
			var W []*rel.Instance
			worlds.Each(d0, dom, func(w *rel.Instance) bool {
				W = append(W, w)
				return len(W) > 600
			})
			if len(W) == 0 || len(W) > 600 {
				return nil, nil, false
			}
			return &difftest.Case{Worlds: W, DB: d0}, &difftest.Case{DB: d}, true
		},
		SupMember: func(w *rel.Instance, sup *difftest.Case) bool {
			return worlds.Member(w, sup.DB)
		},
		Backends: []difftest.ContBackend{
			difftest.DecideContBackend(1),
			difftest.DecideContBackend(2),
			difftest.DecideContBackend(8),
		},
	})
}
