package decide

import (
	"sync/atomic"

	"pw/internal/cond"
	"pw/internal/eqlogic"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
)

// Uniqueness decides UNIQ(q0): is q0(rep(d0)) the singleton {i}? Dispatch:
//
//   - q0 liftable (identity or positive existential, with or without ≠):
//     the view is first rewritten into a c-table database and the identity
//     procedure below runs on it. For g-tables this specialises to the
//     normalize-and-compare algorithm of Theorem 3.2(1); for positive
//     existential views of e-tables the run is polynomial as in Theorem
//     3.2(2) (the equality-logic systems involved stay Horn-like);
//     in general it is the coNP procedure matching Theorem 3.2(3,4).
//   - otherwise (first-order, DATALOG): exhaustive comparison of every
//     world's image with i.
func Uniqueness(q0 query.Query, d0 *table.Database, i *rel.Instance) (bool, error) {
	return Options{}.Uniqueness(q0, d0, i)
}

// Uniqueness is the Options-aware UNIQ(q0) entry point.
func (o Options) Uniqueness(q0 query.Query, d0 *table.Database, i *rel.Instance) (bool, error) {
	if l, ok := query.AsLiftable(q0); ok {
		lifted, err := l.EvalLifted(d0)
		if err != nil {
			return false, err
		}
		return o.uniqueIdentity(lifted, i)
	}
	return o.uniqueGeneric(q0, d0, i)
}

// uniqueIdentity decides rep(d) = {i} via three checks:
//
//	(m) i ∈ rep(d)                        — membership;
//	(a) no row can produce a fact ∉ i     — rowEscapes;
//	(b) no world misses a fact of i       — factOmittable per fact.
//
// rep(d) = {i} iff (m) ∧ ¬(a) ∧ ¬(b): any world W ≠ i either contains a
// fact outside i (case a, with some row producing it) or lacks a fact of i
// (case b). Checks (a) is polynomial; (m) and (b) invoke the NP machinery,
// making the whole a coNP-style procedure, as Theorem 3.2(3) requires.
func (o Options) uniqueIdentity(d *table.Database, i *rel.Instance) (bool, error) {
	if err := SchemaCheck(i, d); err != nil {
		return false, err
	}
	nd, ok := table.Normalize(d)
	if !ok {
		return false, nil // rep(d) = ∅ ≠ {i}
	}
	// Fast path of Theorem 3.2(1): a g-table (no local conditions) is
	// unique iff its normalized matrix is ground and equals i.
	if !hasLocalConds(nd) {
		return groundEquals(nd, i), nil
	}
	if escapes, _ := rowEscapes(nd, i); escapes {
		return false, nil
	}
	// Check (b) is one independent equality-logic refutation per fact of
	// i — fanned out across the pool, first omittable fact cancelling the
	// rest (the coNP cell's "first counterexample wins").
	if omittableFact(nd, i, o.workers()) {
		return false, nil
	}
	// No row ever escapes i and no fact of i is ever omitted, so every
	// world equals i exactly; normalization succeeded, so worlds exist.
	return true, nil
}

// factRef names one fact of an instance within its database table.
type factRef struct {
	t *table.Table
	u sym.Tuple
}

// factRefs flattens the facts of i (restricted to the tables of d) into
// one slice for the per-fact fan-outs of UNIQ and CERT.
func factRefs(d *table.Database, i *rel.Instance) []factRef {
	var out []factRef
	for _, t := range d.Tables() {
		r := i.Relation(t.Name)
		if r == nil {
			continue
		}
		for _, u := range r.Tuples() {
			out = append(out, factRef{t: t, u: u})
		}
	}
	return out
}

// omittableFact reports whether some fact of i can be omitted by some
// world of d, checking facts across the worker pool with early exit.
func omittableFact(d *table.Database, i *rel.Instance, workers int) bool {
	refs := factRefs(d, i)
	return anyIndex(workers, len(refs), func(k int) bool {
		return factOmittable(d, refs[k].t, refs[k].u)
	})
}

func hasLocalConds(d *table.Database) bool {
	for _, t := range d.Tables() {
		if t.HasLocalConds() {
			return true
		}
	}
	return false
}

// groundEquals implements the core of Theorem 3.2(1): after normalization
// a local-condition-free database represents exactly {i} iff every row is
// ground and the resulting instance equals i. (A surviving variable ranges
// over infinitely many constants — the residual global inequalities
// exclude only finitely many — so it always produces a second world.)
// The matrix instance is assembled and compared entirely on interned IDs.
func groundEquals(d *table.Database, i *rel.Instance) bool {
	w := rel.NewInstance()
	var scratch sym.Tuple
	for _, t := range d.Tables() {
		r := rel.NewRelation(t.Name, t.Arity)
		for _, row := range t.Rows {
			if cap(scratch) < len(row.Values) {
				scratch = make(sym.Tuple, len(row.Values))
			}
			f := scratch[:len(row.Values)]
			for j, v := range row.Values {
				if v.IsVar() {
					return false
				}
				f[j] = v.ID()
			}
			r.Insert(f)
		}
		w.AddRelation(r)
	}
	return w.Equal(i)
}

// rowEscapes reports whether some valuation makes some row produce a fact
// outside i: for a row t with satisfiable φ_G ∧ φ_t, apply the implied
// bindings; a non-ground result escapes (infinitely many instantiations,
// finitely many facts in i), a ground result escapes iff it is not in i.
// This check is polynomial. The second return value names the table.
func rowEscapes(d *table.Database, i *rel.Instance) (bool, string) {
	g := d.GlobalConjunction()
	var scratch sym.Tuple
	for _, t := range d.Tables() {
		r := i.Relation(t.Name)
		for _, row := range t.Rows {
			all := g.And(row.Cond)
			sub, ok := all.ImpliedBindings()
			if !ok {
				continue // row can never fire
			}
			ground := true
			if cap(scratch) < len(row.Values) {
				scratch = make(sym.Tuple, len(row.Values))
			}
			f := scratch[:len(row.Values)]
			for j, v := range row.Values {
				w := v
				if v.IsVar() {
					if b, bound := sub[v]; bound {
						w = b
					}
				}
				if w.IsVar() {
					ground = false
					break
				}
				f[j] = w.ID()
			}
			if !ground || !r.Contains(f) {
				return true, t.Name
			}
		}
	}
	return false, ""
}

// factOmittable reports whether some valuation satisfying the global
// condition produces no copy of fact u from any row of table t: the
// equality-logic system requires φ_G and, for every row, the failure of
// (φ_row ∧ row = u).
func factOmittable(d *table.Database, t *table.Table, u sym.Tuple) bool {
	p := &eqlogic.Problem{}
	p.RequireAll(d.GlobalConjunction())
	for _, row := range t.Rows {
		p.Forbid(row.Cond.And(bindAtoms(row.Values, u)))
	}
	return p.Satisfiable()
}

// uniqueGeneric exhaustively checks q0(rep(d0)) = {i} over Δ ∪ Δ′. The
// universal question runs as a sharded search for the first differing
// world — the dual early-exit: a counterexample in any shard cancels all
// others.
func (o Options) uniqueGeneric(q0 query.Query, d0 *table.Database, i *rel.Instance) (bool, error) {
	base, prefix := genericDomain(d0, q0, i)
	var sawWorld atomic.Bool
	var evalErr errOnce
	diff := o.enumerate(d0.Universe(), base, prefix, func(v valuation.V) bool {
		w := applyValuation(v, d0)
		if w == nil {
			return false
		}
		out, err := q0.Eval(w)
		if err != nil {
			evalErr.set(err)
			return true
		}
		sawWorld.Store(true)
		return !out.Equal(i)
	})
	if err := evalErr.get(); err != nil {
		return false, err
	}
	if diff {
		return false, nil
	}
	// Every world's image equals i; rep must also be non-empty.
	return sawWorld.Load(), nil
}

// UniquenessOfGTable exposes the Theorem 3.2(1) fast path directly: it
// normalizes d (kind ≤ g-table required by the caller) and compares
// matrices, never invoking search. Used by benchmarks to isolate the
// polynomial cell.
func UniquenessOfGTable(d *table.Database, i *rel.Instance) (bool, error) {
	if err := SchemaCheck(i, d); err != nil {
		return false, err
	}
	nd, ok := table.Normalize(d)
	if !ok {
		return false, nil
	}
	return groundEquals(nd, i), nil
}

// certainFactIn reports whether fact u of table t is produced in every
// world of d (the complement of factOmittable); exported via cert.go.
func certainFactIn(d *table.Database, t *table.Table, u sym.Tuple) bool {
	if !cond.Conjunction(d.GlobalConjunction()).Satisfiable() {
		return true // rep(d) = ∅: vacuously certain
	}
	return !factOmittable(d, t, u)
}
