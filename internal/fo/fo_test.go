package fo

import (
	"testing"

	"pw/internal/rel"
	"pw/internal/value"
)

func v(n string) value.Value { return value.Var(n) }
func k(n string) value.Value { return value.Const(n) }

func edges(pairs ...[2]string) *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("E", 2)
	for _, p := range pairs {
		r.AddRow(p[0], p[1])
	}
	return i
}

func TestAtomEval(t *testing.T) {
	i := edges([2]string{"a", "b"})
	q := Query{Head: []string{"x", "y"}, Body: At("E", v("x"), v("y"))}
	r, err := q.Eval(i, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !r.Has(rel.Fact{"a", "b"}) {
		t.Errorf("answer = %v", r)
	}
}

func TestConstantInAtom(t *testing.T) {
	i := edges([2]string{"a", "b"}, [2]string{"c", "b"})
	q := Query{Head: []string{"x"}, Body: At("E", v("x"), k("b"))}
	r, err := q.Eval(i, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("answer = %v", r)
	}
}

func TestNegationAndEquality(t *testing.T) {
	i := edges([2]string{"a", "a"}, [2]string{"a", "b"})
	// Proper edges: E(x,y) ∧ x ≠ y.
	q := Query{Head: []string{"x", "y"},
		Body: And{At("E", v("x"), v("y")), Neq(v("x"), v("y"))}}
	r, err := q.Eval(i, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !r.Has(rel.Fact{"a", "b"}) {
		t.Errorf("answer = %v", r)
	}
}

func TestExists(t *testing.T) {
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"})
	// Nodes with an outgoing edge.
	q := Query{Head: []string{"x"}, Body: Exists{Vars: []string{"y"}, F: At("E", v("x"), v("y"))}}
	r, err := q.Eval(i, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || !r.Has(rel.Fact{"a"}) || !r.Has(rel.Fact{"b"}) {
		t.Errorf("answer = %v", r)
	}
}

func TestForAllActiveDomain(t *testing.T) {
	// Sinks: nodes x with no outgoing edge — ∀y ¬E(x,y) over the active
	// domain.
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"})
	q := Query{Head: []string{"x"}, Body: ForAll{Vars: []string{"y"}, F: Not{At("E", v("x"), v("y"))}}}
	r, err := q.Eval(i, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !r.Has(rel.Fact{"c"}) {
		t.Errorf("answer = %v", r)
	}
}

func TestOrShortCircuits(t *testing.T) {
	i := edges([2]string{"a", "b"})
	q := Query{Head: []string{"x"},
		Body: Or{At("E", v("x"), k("b")), At("E", k("zz"), v("x"))}}
	r, err := q.Eval(i, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !r.Has(rel.Fact{"a"}) {
		t.Errorf("answer = %v", r)
	}
}

func TestQueryConstsInDomain(t *testing.T) {
	// The constant "zz" appears only in the query; x = zz must be
	// considered (and satisfies x = zz).
	i := edges([2]string{"a", "b"})
	q := Query{Head: []string{"x"}, Body: Equal(v("x"), k("zz"))}
	r, err := q.Eval(i, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !r.Has(rel.Fact{"zz"}) {
		t.Errorf("answer = %v", r)
	}
}

func TestFreeVariableRejected(t *testing.T) {
	q := Query{Head: []string{"x"}, Body: At("E", v("x"), v("loose"))}
	if _, err := q.Eval(edges(), "Q"); err == nil {
		t.Error("free variable must be rejected")
	}
	if len(q.FreeVars()) != 1 {
		t.Errorf("FreeVars = %v", q.FreeVars())
	}
}

func TestUnknownRelation(t *testing.T) {
	q := Query{Head: []string{"x"}, Body: At("Z", v("x"))}
	if _, err := q.Eval(edges(), "Q"); err == nil {
		t.Error("unknown relation must be rejected")
	}
}

func TestBooleanQueryViaConstHead(t *testing.T) {
	// The paper's q' (Theorem 5.2(2)) has the form {1 | ψ}: encode as a
	// head variable equated to the constant.
	i := edges([2]string{"a", "b"})
	q := Query{Head: []string{"w"},
		Body: And{Equal(v("w"), k("1")), Exists{Vars: []string{"x", "y"}, F: At("E", v("x"), v("y"))}}}
	r, err := q.Eval(i, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !r.Has(rel.Fact{"1"}) {
		t.Errorf("answer = %v", r)
	}
	// On an empty instance the answer is empty.
	q2 := Query{Head: []string{"w"},
		Body: And{Equal(v("w"), k("1")), Exists{Vars: []string{"x", "y"}, F: At("E", v("x"), v("y"))}}}
	r2, err := q2.Eval(edges(), "Q")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 0 {
		t.Errorf("answer on empty = %v", r2)
	}
}

func TestTransitivityCheck(t *testing.T) {
	// Is E transitive? ∀x,y,z E(x,y) ∧ E(y,z) → E(x,z), encoded with
	// ¬(… ∧ ¬E(x,z)).
	trans := func(i *rel.Instance) bool {
		q := Query{Head: []string{"w"}, Body: And{
			Equal(v("w"), k("1")),
			ForAll{Vars: []string{"x", "y", "z"},
				F: Not{And{At("E", v("x"), v("y")), At("E", v("y"), v("z")), Not{At("E", v("x"), v("z"))}}}},
		}}
		r, err := q.Eval(i, "Q")
		if err != nil {
			t.Fatal(err)
		}
		return r.Len() == 1
	}
	if !trans(edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})) {
		t.Error("transitive graph rejected")
	}
	if trans(edges([2]string{"a", "b"}, [2]string{"b", "c"})) {
		t.Error("non-transitive graph accepted")
	}
}

func TestStringRenderings(t *testing.T) {
	q := Query{Head: []string{"x"}, Body: Or{
		And{At("E", v("x"), k("1")), Not{Equal(v("x"), k("2"))}},
		Exists{Vars: []string{"y"}, F: At("E", v("y"), v("x"))},
		ForAll{Vars: []string{"z"}, F: Equal(v("z"), v("z"))},
	}}
	if q.String() == "" || q.Body.String() == "" {
		t.Error("empty rendering")
	}
	if (And{}).String() != "true" || (Or{}).String() != "false" {
		t.Error("empty connective rendering wrong")
	}
}

func TestConstsCollection(t *testing.T) {
	q := Query{Head: []string{"x"}, Body: And{At("E", v("x"), k("7")), Equal(v("x"), k("8"))}}
	cs := q.Consts()
	if len(cs) != 2 {
		t.Errorf("Consts = %v", cs)
	}
}
