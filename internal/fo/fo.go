// Package fo implements first-order queries (§2.1): formulas of first
// order logic with equality (and hence ≠ through negation), evaluated with
// active-domain semantics on complete-information instances. First-order
// queries extend the positive existential queries with negation; the paper
// uses them for the lower bounds of Theorems 5.2(2) and 5.3(2).
//
// The active domain of an evaluation is the set of constants of the
// instance plus the constants of the query. First-order queries are
// generic (commute with bijective renamings), so Proposition 2.1's
// restriction to Δ ∪ Δ′ applies to the decision procedures that call
// this evaluator.
package fo

import (
	"fmt"
	"sort"
	"strings"

	"pw/internal/rel"
	"pw/internal/value"
)

// Formula is a first-order formula over relation atoms and (in)equalities.
type Formula interface {
	// freeVars appends free variable names (dedup via seen).
	freeVars(dst []string, seen map[string]bool) []string
	// consts appends mentioned constants (dedup via seen).
	consts(dst []string, seen map[string]bool) []string
	// eval decides the formula under env and the instance, with the given
	// active domain for quantifiers.
	eval(inst *rel.Instance, env map[string]string, domain []string) (bool, error)
	// String renders the formula.
	String() string
}

// Atom is R(t1,…,tk); arguments are variables or constants.
type Atom struct {
	Rel  string
	Args []value.Value
}

// At builds an atom.
func At(rel string, args ...value.Value) Atom { return Atom{Rel: rel, Args: args} }

func (a Atom) freeVars(dst []string, seen map[string]bool) []string {
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Name()] {
			seen[t.Name()] = true
			dst = append(dst, t.Name())
		}
	}
	return dst
}

func (a Atom) consts(dst []string, seen map[string]bool) []string {
	for _, t := range a.Args {
		if t.IsConst() && !seen[t.Name()] {
			seen[t.Name()] = true
			dst = append(dst, t.Name())
		}
	}
	return dst
}

func (a Atom) eval(inst *rel.Instance, env map[string]string, _ []string) (bool, error) {
	r := inst.Relation(a.Rel)
	if r == nil {
		return false, fmt.Errorf("fo: relation %s not in instance", a.Rel)
	}
	f := make(rel.Fact, len(a.Args))
	for i, t := range a.Args {
		if t.IsConst() {
			f[i] = t.Name()
		} else {
			v, ok := env[t.Name()]
			if !ok {
				return false, fmt.Errorf("fo: unbound variable ?%s in %s", t.Name(), a)
			}
			f[i] = v
		}
	}
	return r.Has(f), nil
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Rel, strings.Join(parts, ","))
}

// Eq is the formula l = r.
type Eq struct{ L, R value.Value }

// Equal builds an equality.
func Equal(l, r value.Value) Eq { return Eq{L: l, R: r} }

func (e Eq) freeVars(dst []string, seen map[string]bool) []string {
	for _, t := range []value.Value{e.L, e.R} {
		if t.IsVar() && !seen[t.Name()] {
			seen[t.Name()] = true
			dst = append(dst, t.Name())
		}
	}
	return dst
}

func (e Eq) consts(dst []string, seen map[string]bool) []string {
	for _, t := range []value.Value{e.L, e.R} {
		if t.IsConst() && !seen[t.Name()] {
			seen[t.Name()] = true
			dst = append(dst, t.Name())
		}
	}
	return dst
}

func (e Eq) eval(_ *rel.Instance, env map[string]string, _ []string) (bool, error) {
	get := func(t value.Value) (string, error) {
		if t.IsConst() {
			return t.Name(), nil
		}
		v, ok := env[t.Name()]
		if !ok {
			return "", fmt.Errorf("fo: unbound variable ?%s in %s", t.Name(), e)
		}
		return v, nil
	}
	l, err := get(e.L)
	if err != nil {
		return false, err
	}
	r, err := get(e.R)
	if err != nil {
		return false, err
	}
	return l == r, nil
}

func (e Eq) String() string { return e.L.String() + " = " + e.R.String() }

// Neq builds l ≠ r as ¬(l = r).
func Neq(l, r value.Value) Formula { return Not{Eq{L: l, R: r}} }

// Not is negation.
type Not struct{ F Formula }

func (n Not) freeVars(dst []string, seen map[string]bool) []string {
	return n.F.freeVars(dst, seen)
}
func (n Not) consts(dst []string, seen map[string]bool) []string {
	return n.F.consts(dst, seen)
}
func (n Not) eval(inst *rel.Instance, env map[string]string, dom []string) (bool, error) {
	b, err := n.F.eval(inst, env, dom)
	return !b, err
}
func (n Not) String() string { return "not(" + n.F.String() + ")" }

// And is conjunction (empty = true).
type And []Formula

func (f And) freeVars(dst []string, seen map[string]bool) []string {
	for _, s := range f {
		dst = s.freeVars(dst, seen)
	}
	return dst
}
func (f And) consts(dst []string, seen map[string]bool) []string {
	for _, s := range f {
		dst = s.consts(dst, seen)
	}
	return dst
}
func (f And) eval(inst *rel.Instance, env map[string]string, dom []string) (bool, error) {
	for _, s := range f {
		b, err := s.eval(inst, env, dom)
		if err != nil || !b {
			return false, err
		}
	}
	return true, nil
}
func (f And) String() string { return joinFormulas([]Formula(f), " and ", "true") }

// Or is disjunction (empty = false).
type Or []Formula

func (f Or) freeVars(dst []string, seen map[string]bool) []string {
	for _, s := range f {
		dst = s.freeVars(dst, seen)
	}
	return dst
}
func (f Or) consts(dst []string, seen map[string]bool) []string {
	for _, s := range f {
		dst = s.consts(dst, seen)
	}
	return dst
}
func (f Or) eval(inst *rel.Instance, env map[string]string, dom []string) (bool, error) {
	for _, s := range f {
		b, err := s.eval(inst, env, dom)
		if err != nil {
			return false, err
		}
		if b {
			return true, nil
		}
	}
	return false, nil
}
func (f Or) String() string { return joinFormulas([]Formula(f), " or ", "false") }

// Exists quantifies variables existentially over the active domain.
type Exists struct {
	Vars []string
	F    Formula
}

func (q Exists) freeVars(dst []string, seen map[string]bool) []string {
	return quantFreeVars(q.Vars, q.F, dst, seen)
}
func (q Exists) consts(dst []string, seen map[string]bool) []string {
	return q.F.consts(dst, seen)
}
func (q Exists) eval(inst *rel.Instance, env map[string]string, dom []string) (bool, error) {
	var unbound []string
	for _, v := range q.Vars {
		if _, ok := env[v]; !ok {
			unbound = append(unbound, v)
		}
	}
	return existsDrive(unbound, q.F, inst, env, dom)
}

// existsDrive decides ∃ unbound: f by driving bindings from positive atom
// conjuncts: a satisfying assignment must match each top-level atom to
// some fact, so iterating a relation's facts (a join) replaces blind
// domain enumeration. Variables mentioned only under negation or
// disjunction fall back to domain enumeration. This is what makes the
// first-order reduction queries of Theorems 5.2(2)/5.3(2) evaluable at
// benchmark sizes.
func existsDrive(unbound []string, f Formula, inst *rel.Instance, env map[string]string, dom []string) (bool, error) {
	if len(unbound) == 0 {
		return f.eval(inst, env, dom)
	}
	isUnbound := make(map[string]bool, len(unbound))
	for _, v := range unbound {
		isUnbound[v] = true
	}
	for _, c := range flattenAnd(f) {
		a, ok := c.(Atom)
		if !ok {
			continue
		}
		drives := false
		for _, t := range a.Args {
			if t.IsVar() && isUnbound[t.Name()] {
				drives = true
				break
			}
		}
		if !drives {
			continue
		}
		r := inst.Relation(a.Rel)
		if r == nil {
			return false, fmt.Errorf("fo: relation %s not in instance", a.Rel)
		}
		for _, fact := range r.Facts() {
			bound, ok := bindAtom(a, fact, env, isUnbound)
			if !ok {
				continue
			}
			rest := unbound[:0:0]
			for _, v := range unbound {
				if _, nowBound := env[v]; !nowBound {
					rest = append(rest, v)
				}
			}
			b, err := existsDrive(rest, f, inst, env, dom)
			for _, v := range bound {
				delete(env, v)
			}
			if err != nil {
				return false, err
			}
			if b {
				return true, nil
			}
		}
		// Every satisfying assignment must match this atom to some fact;
		// all facts have been tried.
		return false, nil
	}
	// No positive atom mentions an unbound variable: enumerate one
	// variable over the active domain and recurse.
	v := unbound[0]
	for _, c := range dom {
		env[v] = c
		b, err := existsDrive(unbound[1:], f, inst, env, dom)
		delete(env, v)
		if err != nil {
			return false, err
		}
		if b {
			return true, nil
		}
	}
	return false, nil
}

// flattenAnd returns the top-level conjuncts of f.
func flattenAnd(f Formula) []Formula {
	if a, ok := f.(And); ok {
		var out []Formula
		for _, s := range a {
			out = append(out, flattenAnd(s)...)
		}
		return out
	}
	return []Formula{f}
}

// bindAtom unifies atom args with a fact, binding only variables in
// bindable; it returns the newly bound variables for undo.
func bindAtom(a Atom, fact rel.Fact, env map[string]string, bindable map[string]bool) ([]string, bool) {
	var bound []string
	undo := func() {
		for _, v := range bound {
			delete(env, v)
		}
	}
	for i, t := range a.Args {
		if t.IsConst() {
			if t.Name() != fact[i] {
				undo()
				return nil, false
			}
			continue
		}
		if val, ok := env[t.Name()]; ok {
			if val != fact[i] {
				undo()
				return nil, false
			}
			continue
		}
		if !bindable[t.Name()] {
			undo()
			return nil, false
		}
		env[t.Name()] = fact[i]
		bound = append(bound, t.Name())
	}
	return bound, true
}
func (q Exists) String() string {
	return "exists " + strings.Join(q.Vars, ",") + ". (" + q.F.String() + ")"
}

// ForAll quantifies variables universally over the active domain.
type ForAll struct {
	Vars []string
	F    Formula
}

func (q ForAll) freeVars(dst []string, seen map[string]bool) []string {
	return quantFreeVars(q.Vars, q.F, dst, seen)
}
func (q ForAll) consts(dst []string, seen map[string]bool) []string {
	return q.F.consts(dst, seen)
}
func (q ForAll) eval(inst *rel.Instance, env map[string]string, dom []string) (bool, error) {
	all := true
	err := forAssignments(q.Vars, dom, env, func() (bool, error) {
		b, err := q.F.eval(inst, env, dom)
		if err != nil {
			return false, err
		}
		if !b {
			all = false
			return true, nil
		}
		return false, nil
	})
	return all, err
}
func (q ForAll) String() string {
	return "forall " + strings.Join(q.Vars, ",") + ". (" + q.F.String() + ")"
}

func quantFreeVars(bound []string, f Formula, dst []string, seen map[string]bool) []string {
	inner := f.freeVars(nil, map[string]bool{})
	isBound := map[string]bool{}
	for _, v := range bound {
		isBound[v] = true
	}
	for _, v := range inner {
		if !isBound[v] && !seen[v] {
			seen[v] = true
			dst = append(dst, v)
		}
	}
	return dst
}

// forAssignments enumerates assignments of vars over dom, mutating env in
// place and restoring it afterwards; fn returns stop=true to end early.
func forAssignments(vars []string, dom []string, env map[string]string, fn func() (bool, error)) error {
	if len(vars) == 0 {
		_, err := fn()
		return err
	}
	saved := make([]string, len(vars))
	had := make([]bool, len(vars))
	for i, v := range vars {
		saved[i], had[i] = env[v], false
		if _, ok := env[v]; ok {
			had[i] = true
		}
	}
	defer func() {
		for i, v := range vars {
			if had[i] {
				env[v] = saved[i]
			} else {
				delete(env, v)
			}
		}
	}()
	idx := make([]int, len(vars))
	if len(dom) == 0 {
		return nil
	}
	for {
		for i, v := range vars {
			env[v] = dom[idx[i]]
		}
		stop, err := fn()
		if err != nil || stop {
			return err
		}
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(dom) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Query is {(x1,…,xk) | φ}: the answer relation collects the head-variable
// assignments over the active domain satisfying Body.
type Query struct {
	Head []string
	Body Formula
}

// Consts returns the constants mentioned by the query.
func (q Query) Consts() []string {
	return q.Body.consts(nil, map[string]bool{})
}

// FreeVars returns the free variables of the body not bound by the head —
// these must be empty for a well-formed query.
func (q Query) FreeVars() []string {
	seen := map[string]bool{}
	for _, h := range q.Head {
		seen[h] = true
	}
	return q.Body.freeVars(nil, seen)
}

// validateAtoms walks the formula and checks every relation atom against
// the instance's schema, so schema errors surface even when the active
// domain is empty and no atom would be evaluated.
func validateAtoms(f Formula, inst *rel.Instance) error {
	switch n := f.(type) {
	case Atom:
		r := inst.Relation(n.Rel)
		if r == nil {
			return fmt.Errorf("fo: relation %s not in instance", n.Rel)
		}
		if r.Arity != len(n.Args) {
			return fmt.Errorf("fo: atom %s has arity %d, relation has %d", n, len(n.Args), r.Arity)
		}
	case Eq:
	case Not:
		return validateAtoms(n.F, inst)
	case And:
		for _, s := range n {
			if err := validateAtoms(s, inst); err != nil {
				return err
			}
		}
	case Or:
		for _, s := range n {
			if err := validateAtoms(s, inst); err != nil {
				return err
			}
		}
	case Exists:
		return validateAtoms(n.F, inst)
	case ForAll:
		return validateAtoms(n.F, inst)
	}
	return nil
}

// Eval evaluates the query on inst with active-domain semantics, returning
// a relation named name. The domain is adom(inst) ∪ consts(q).
func (q Query) Eval(inst *rel.Instance, name string) (*rel.Relation, error) {
	if fv := q.FreeVars(); len(fv) > 0 {
		return nil, fmt.Errorf("fo: free variables %v not in head %v", fv, q.Head)
	}
	if err := validateAtoms(q.Body, inst); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	dom := inst.Consts(nil, seen)
	dom = q.Body.consts(dom, seen)
	sort.Strings(dom)
	out := rel.NewRelation(name, len(q.Head))
	env := map[string]string{}
	err := forAssignments(q.Head, dom, env, func() (bool, error) {
		b, err := q.Body.eval(inst, env, dom)
		if err != nil {
			return false, err
		}
		if b {
			f := make(rel.Fact, len(q.Head))
			for i, h := range q.Head {
				f[i] = env[h]
			}
			out.Add(f)
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the query.
func (q Query) String() string {
	return "{(" + strings.Join(q.Head, ",") + ") | " + q.Body.String() + "}"
}
