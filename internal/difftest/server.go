// ServerBackend: the query server wrapped as a difftest Backend. Every
// operation rides the full production path — JSON request, the HTTP
// handler, the prepared-query and answer caches, the singleflight group
// — against an in-process server, so the metamorphic suites exercise
// exactly the code a network client hits. Answer operations run twice
// and return the repeat: a disagreement between the cached readout and
// the oracle (or a repeat that misses the cache) fails the suite.
package difftest

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"

	"pw/internal/parse"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/server"
)

// ServerBackend answers through an in-process query server (one per
// case) loaded with the case's decomposition. Cases with a query wire
// only the answer-set operations (the server's decision ops interrogate
// the stored database, not a view of it); identity cases wire the full
// set.
func ServerBackend(name string, workers int) Backend {
	return Backend{
		Name: name,
		Make: func(c *Case) (*Ops, error) {
			if c.WSD == nil {
				return nil, errors.New("case carries no decomposition")
			}
			if c.Update != nil {
				return nil, errors.New("use ServerUpdateBackend for cases that carry an update")
			}
			s := server.New(server.Config{Workers: workers})
			if err := s.AddWSD("case", c.WSD); err != nil {
				return nil, err
			}
			return serverOps(s.Handler(), c)
		},
	}
}

// serverOps wires the handler's current database state into the
// operation set: answer sets always, decision ops and count on identity
// cases (the server's decision ops interrogate the stored database, not
// a view of it).
func serverOps(h http.Handler, c *Case) (*Ops, error) {
	queryText, err := queryText(c.Q())
	if err != nil {
		return nil, err
	}
	ops := &Ops{
		PossAns: func() (*rel.Instance, error) {
			return serverAnswer(h, "poss-ans", queryText)
		},
		CertAns: func() (*rel.Instance, error) {
			return serverAnswer(h, "cert-ans", queryText)
		},
	}
	if query.IsIdentity(c.Q()) {
		ops.Member = func(i *rel.Instance) (bool, error) { return serverDecide(h, "memb", "inst", i) }
		ops.Possible = func(i *rel.Instance) (bool, error) { return serverDecide(h, "poss", "facts", i) }
		ops.Certain = func(i *rel.Instance) (bool, error) { return serverDecide(h, "cert", "facts", i) }
		ops.Unique = func(i *rel.Instance) (bool, error) { return serverDecide(h, "uniq", "inst", i) }
		ops.Count = func() (*big.Int, error) {
			resp, err := serverDo(h, &server.Request{DB: "case", Op: "count"})
			if err != nil {
				return nil, err
			}
			n, ok := new(big.Int).SetString(resp.Count, 10)
			if !ok {
				return nil, fmt.Errorf("server count %q is not a decimal", resp.Count)
			}
			return n, nil
		}
	}
	return ops, nil
}

// queryText renders the case's query as the server's wire form: the
// empty string for the identity, a printed @query block otherwise.
func queryText(q query.Query) (string, error) {
	if query.IsIdentity(q) {
		return "", nil
	}
	a, ok := q.(query.Algebra)
	if !ok {
		return "", fmt.Errorf("query %s has no wire form", q.Label())
	}
	var b strings.Builder
	if err := parse.PrintQuery(&b, a); err != nil {
		return "", err
	}
	return b.String(), nil
}

// serverDo round-trips one request through the handler.
func serverDo(h http.Handler, req *server.Request) (*server.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	r := httptest.NewRequest("POST", "/query", strings.NewReader(string(body)))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != 200 {
		return nil, fmt.Errorf("server %s: HTTP %d: %s", req.Op, w.Code, strings.TrimSpace(w.Body.String()))
	}
	var resp server.Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func serverDecide(h http.Handler, op, field string, i *rel.Instance) (bool, error) {
	var b strings.Builder
	if err := parse.PrintInstance(&b, i); err != nil {
		return false, err
	}
	text := b.String()
	if text == "" {
		// The empty instance prints as nothing; the server reads an
		// omitted field as a missing argument, so send an explicit
		// comment-only body (which parses back to the empty instance).
		text = "# empty instance\n"
	}
	req := &server.Request{DB: "case", Op: op}
	if field == "inst" {
		req.Inst = text
	} else {
		req.Facts = text
	}
	resp, err := serverDo(h, req)
	if err != nil {
		return false, err
	}
	if resp.Answer == nil {
		return false, fmt.Errorf("server %s: response carries no answer", op)
	}
	return *resp.Answer, nil
}

// serverAnswer asks twice and returns the repeat, failing if the second
// request did not come from the answer cache — the suite then checks
// the cached readout against the oracle.
func serverAnswer(h http.Handler, op, queryText string) (*rel.Instance, error) {
	req := &server.Request{DB: "case", Op: op, Query: queryText}
	if _, err := serverDo(h, req); err != nil {
		return nil, err
	}
	resp, err := serverDo(h, req)
	if err != nil {
		return nil, err
	}
	if !resp.Cached {
		return nil, fmt.Errorf("server %s: repeat request missed the answer cache", op)
	}
	return parse.ParseInstance(strings.NewReader(resp.Facts))
}
