// Standard backend constructors: the engines this repository ships,
// wrapped as difftest Backends. Suites compose these per package —
// the decision engine at several worker counts (the determinism
// contract), the decomposition backend from three provenances (native,
// re-factorized from the expanded world list, compiled from a c-table
// database), and the lifted evaluator's answer sets.
package difftest

import (
	"errors"
	"fmt"
	"math/big"

	"pw/internal/decide"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/wsd"
	"pw/internal/wsdalg"
)

// DecideBackend answers through the c-table decision engine on the
// case's database at a fixed worker count. withAnswers additionally
// wires the lifted possible/certain answer sets (only for cases whose
// query the lifting supports — the generator's contract). Answer
// comparisons are domain-restricted to the database's and query's
// constants: the engine enumerates candidates there by design, while
// the oracle's canonical world set also realizes fresh constants.
func DecideBackend(workers int, withAnswers bool) Backend {
	return Backend{
		Name: fmt.Sprintf("decide/w%d", workers),
		Make: func(c *Case) (*Ops, error) {
			if c.DB == nil {
				return nil, errors.New("case carries no database")
			}
			if c.Update != nil {
				return nil, errors.New("the decide backend answers the stored database; it cannot apply the case's update")
			}
			q := c.Q()
			o := decide.Options{Workers: workers}
			ops := &Ops{
				Member:   func(i *rel.Instance) (bool, error) { return o.Membership(i, q, c.DB) },
				Possible: func(i *rel.Instance) (bool, error) { return o.Possible(i, q, c.DB) },
				Certain:  func(i *rel.Instance) (bool, error) { return o.Certain(i, q, c.DB) },
				Unique:   func(i *rel.Instance) (bool, error) { return o.Uniqueness(q, c.DB, i) },
			}
			if withAnswers {
				ops.PossAns = func() (*rel.Instance, error) { return o.PossibleAnswers(q, c.DB) }
				ops.CertAns = func() (*rel.Instance, error) { return o.CertainAnswers(q, c.DB) }
				ops.AnswerDomain = answerDomain(c)
			}
			return ops, nil
		},
	}
}

// answerDomain is the constant pool the c-table answer engines enumerate
// over: the database's constants plus the query's.
func answerDomain(c *Case) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range c.DB.Consts(nil, map[string]bool{}) {
		add(s)
	}
	for _, s := range c.Q().Consts() {
		add(s)
	}
	if out == nil {
		out = []string{}
	}
	return out
}

// WSDBackend answers natively on the case's decomposition. A
// non-identity query routes through the lifted evaluator first, so the
// decision procedures interrogate rep(Eval(D, q)) — the full query-op
// path. The case's query must lie in the wsdalg-supported fragment.
func WSDBackend(name string) Backend {
	return Backend{
		Name: name,
		Make: func(c *Case) (*Ops, error) {
			if c.WSD == nil {
				return nil, errors.New("case carries no decomposition")
			}
			if c.Update != nil {
				return nil, errors.New("use UpdateBackend for cases that carry an update")
			}
			return wsdOps(c.WSD, c.Q())
		},
	}
}

// FromWorldsBackend re-factorizes the case's world list with
// wsd.FromWorlds and answers from the result — the metamorphic
// factorize∘expand identity: whatever built the case's worlds, the
// re-factorized decomposition must denote exactly the same set. On a
// case with an update, the post-update worlds are factorized, so this
// is the oracle-side provenance the update engines must match.
func FromWorldsBackend() Backend {
	return Backend{
		Name: "wsd/fromworlds",
		Make: func(c *Case) (*Ops, error) {
			w, err := wsd.FromWorlds(c.oracleWorlds())
			if err != nil {
				return nil, err
			}
			return wsdOps(w, c.Q())
		},
	}
}

// CompileBackend compiles the case's database to a decomposition over
// the given domain (nil = the canonical Δ ∪ Δ′, matching worlds.All)
// and answers from it. The domain function sees the case so view suites
// can widen it to the query's constants.
func CompileBackend(name string, domain func(*Case) []string) Backend {
	return Backend{
		Name: name,
		Make: func(c *Case) (*Ops, error) {
			if c.DB == nil {
				return nil, errors.New("case carries no database")
			}
			if c.Update != nil {
				return nil, errors.New("the compile backend answers the stored database; it cannot apply the case's update")
			}
			var dom []string
			if domain != nil {
				dom = domain(c)
			}
			w, err := wsd.ToWSDOverDomain(c.DB, dom)
			if err != nil {
				return nil, err
			}
			return wsdOps(w, c.Q())
		},
	}
}

// PlannedWSDBackend answers natively on the case's decomposition with
// the cost-based planner in the loop: the query is rewritten by
// wsdalg.Optimize before evaluation. Any divergence from the naive
// WSDBackend (or the oracle) is a planner-equivalence bug.
func PlannedWSDBackend() Backend {
	return Backend{
		Name: "wsdalg/planned",
		Make: func(c *Case) (*Ops, error) {
			if c.WSD == nil {
				return nil, errors.New("case carries no decomposition")
			}
			if c.Update != nil {
				return nil, errors.New("use UpdateBackend for cases that carry an update")
			}
			q := c.Q()
			opt, info := wsdalg.Optimize(c.WSD, q)
			if info != nil && info.ChosenCost > info.NaiveCost {
				return nil, fmt.Errorf("planner chose a costlier plan: %d > %d", info.ChosenCost, info.NaiveCost)
			}
			return wsdOps(c.WSD, opt)
		},
	}
}

// wsdOps wires a decomposition (after pushing the case's query through
// the lifted evaluator) into the full operation set.
func wsdOps(w *wsd.WSD, q query.Query) (*Ops, error) {
	res := w
	if !query.IsIdentity(q) {
		var err error
		if res, err = wsdalg.Eval(w, q); err != nil {
			return nil, err
		}
	}
	return &Ops{
		Member:   func(i *rel.Instance) (bool, error) { return res.Member(i), nil },
		Possible: func(i *rel.Instance) (bool, error) { return res.Possible(i), nil },
		Certain:  func(i *rel.Instance) (bool, error) { return res.Certain(i), nil },
		Unique: func(i *rel.Instance) (bool, error) {
			return res.Count().Cmp(big.NewInt(1)) == 0 && res.Member(i), nil
		},
		Count:   func() (*big.Int, error) { return res.Count(), nil },
		Expand:  func() ([]*rel.Instance, error) { return res.Expand(0), nil },
		PossAns: func() (*rel.Instance, error) { return wsdalg.PossibleAnswers(w, q) },
		CertAns: func() (*rel.Instance, error) { return wsdalg.CertainAnswers(w, q) },
	}, nil
}
