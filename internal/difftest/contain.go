// The containment runner: CONT(q0, q) decided by each backend on
// seeded case pairs and checked against the brute-force oracle (every
// image world of the sub side scanned for membership in the sup side's
// image set).
package difftest

import (
	"errors"
	"fmt"
	"testing"

	"pw/internal/decide"
	"pw/internal/rel"
	"pw/internal/wsdalg"
)

// ContBackend decides rep(q0(sub)) ⊆ rep(q(sup)) from the two cases'
// handles.
type ContBackend struct {
	Name   string
	Decide func(sub, sup *Case) (bool, error)
}

// ContConfig parameterizes a containment suite.
type ContConfig struct {
	Tag      string
	Cases    int
	MaxSeed  int64 // 0 = 40·Cases
	Gen      func(seed int64) (sub, sup *Case, ok bool)
	Backends []ContBackend

	// SupMember overrides the sup-side oracle: instead of scanning the
	// sup case's explicit image list, each sub image world is passed to
	// this membership decider. Suites use it when the sup side's true
	// rep ranges over constants its own canonical enumeration would not
	// realize (e.g. the sub side's constants) — the c-table brute oracle.
	SupMember func(w *rel.Instance, sup *Case) bool
}

// RunContainment drives the suite: generate pairs, compute the oracle
// by scanning, compare every backend.
func RunContainment(t *testing.T, cfg ContConfig) {
	t.Helper()
	if cfg.MaxSeed == 0 {
		cfg.MaxSeed = 40 * int64(cfg.Cases)
	}
	if len(cfg.Backends) == 0 {
		t.Fatalf("%s: no backends configured", cfg.Tag)
	}
	tested := 0
	for seed := int64(1); tested < cfg.Cases && seed <= cfg.MaxSeed; seed++ {
		sub, sup, ok := cfg.Gen(seed)
		if !ok {
			continue
		}
		tag := fmt.Sprintf("%s seed %d", cfg.Tag, seed)

		want := true
		inSup := func(w *rel.Instance) bool { return cfg.SupMember(w, sup) }
		if cfg.SupMember == nil {
			supImage := imageSet(t, tag, sup)
			inSup = supImage.has
		}
		for _, w := range imageSet(t, tag, sub).list {
			if !inSup(w) {
				want = false
				break
			}
		}
		for _, b := range cfg.Backends {
			got, err := b.Decide(sub, sup)
			if err != nil {
				t.Fatalf("%s: backend %s: %v", tag, b.Name, err)
			}
			if got != want {
				t.Fatalf("%s: backend %s: CONT = %v, oracle says %v", tag, b.Name, got, want)
			}
		}
		tested++
	}
	if tested < cfg.Cases {
		t.Fatalf("%s: only %d pairs generated within the seed budget, want %d", cfg.Tag, tested, cfg.Cases)
	}
	t.Logf("%s: cross-validated %d pairs × %d backends", cfg.Tag, tested, len(cfg.Backends))
}

// imageSet computes a case's image world set {q(W)}.
func imageSet(t *testing.T, tag string, c *Case) *worldSet {
	t.Helper()
	q := c.Q()
	out := newWorldSet(nil)
	for _, w := range newWorldSet(c.Worlds).list {
		a, err := q.Eval(w)
		if err != nil {
			t.Fatalf("%s: oracle eval %s: %v", tag, q.Label(), err)
		}
		out.add(a)
	}
	return out
}

// DecideContBackend decides containment through the c-table engine at a
// fixed worker count. Both sides must carry databases.
func DecideContBackend(workers int) ContBackend {
	return ContBackend{
		Name: fmt.Sprintf("decide/w%d", workers),
		Decide: func(sub, sup *Case) (bool, error) {
			if sub.DB == nil || sup.DB == nil {
				return false, errors.New("pair carries no databases")
			}
			return decide.Options{Workers: workers}.Containment(sub.Q(), sub.DB, sup.Q(), sup.DB)
		},
	}
}

// WSDContBackend decides containment natively on decompositions via the
// lifted evaluator. Both sides must carry decompositions and
// wsdalg-supported queries.
func WSDContBackend() ContBackend {
	return ContBackend{
		Name: "wsdalg",
		Decide: func(sub, sup *Case) (bool, error) {
			if sub.WSD == nil || sup.WSD == nil {
				return false, errors.New("pair carries no decompositions")
			}
			return wsdalg.ContainmentViews(sub.Q(), sub.WSD, sup.Q(), sup.WSD)
		},
	}
}
