// Update backends: the write path wrapped as difftest Backends. A case
// carrying an Update is answered post-update — the oracle applies the
// program world-by-world (wsd.ApplyUpdateToWorlds), and these backends
// must land on exactly the same world set through their own routes: the
// incremental renormalization engine, the full-renormalization
// reference, and the server's write endpoint (parse → apply → install →
// read back, the complete production sequence).
package difftest

import (
	"errors"
	"fmt"

	"pw/internal/server"
	"pw/internal/wsd"
)

// UpdateBackend applies the case's update to its decomposition with the
// incremental engine (full=false) or per-op full renormalization
// (full=true) and answers natively from the result. Beyond the world-set
// agreement the harness checks, it asserts the structural property the
// incremental engine promises: its output prints in Normalize-canonical
// form, byte-identical to the full renormalization of the same update.
func UpdateBackend(name string, full bool) Backend {
	return Backend{
		Name: name,
		Make: func(c *Case) (*Ops, error) {
			if c.WSD == nil {
				return nil, errors.New("case carries no decomposition")
			}
			if c.Update == nil {
				return nil, errors.New("case carries no update")
			}
			var out *wsd.WSD
			var err error
			if full {
				out, err = c.WSD.ApplyUpdateFull(c.Update)
			} else {
				out, err = c.WSD.ApplyUpdate(c.Update)
				if err == nil {
					ref, refErr := c.WSD.ApplyUpdateFull(c.Update)
					if refErr != nil {
						return nil, fmt.Errorf("full renormalization failed where incremental succeeded: %w", refErr)
					}
					if got, want := out.String(), ref.String(); got != want {
						return nil, fmt.Errorf("incremental result is not Normalize-canonical\nincremental:\n%s\nfull:\n%s", got, want)
					}
				}
			}
			if err != nil {
				return nil, fmt.Errorf("apply %q: %w", c.Update, err)
			}
			return wsdOps(out, c.Q())
		},
	}
}

// ServerUpdateBackend routes the case's update through an in-process
// query server: load the decomposition, POST the printed @update
// program (the wire form), and answer every subsequent operation from
// the installed post-write version — decision ops, count, and the
// cached answer sets, exactly as a network client would see them.
func ServerUpdateBackend(name string, workers int) Backend {
	return Backend{
		Name: name,
		Make: func(c *Case) (*Ops, error) {
			if c.WSD == nil {
				return nil, errors.New("case carries no decomposition")
			}
			if c.Update == nil {
				return nil, errors.New("case carries no update")
			}
			s := server.New(server.Config{Workers: workers})
			if err := s.AddWSD("case", c.WSD); err != nil {
				return nil, err
			}
			h := s.Handler()
			resp, err := serverDo(h, &server.Request{DB: "case", Op: "write", Update: c.Update.String()})
			if err != nil {
				return nil, fmt.Errorf("write %q: %w", c.Update, err)
			}
			if resp.Version != 2 {
				return nil, fmt.Errorf("write installed version %d, want 2", resp.Version)
			}
			return serverOps(h, c)
		},
	}
}
