// Package difftest is the shared metamorphic differential harness: one
// oracle-vs-backend runner, parameterized by a case generator, a set of
// backends, and the query each case carries. It replaces the bespoke
// differential suites that grew alongside the engines (the parallel
// decision engine, the decomposition backend, the lifted evaluator) —
// every representation backend answers the same seeded cases and every
// answer is compared against the one ground truth this system has: an
// explicit, finite world list scanned by brute force.
//
// A Case bundles a raw world set with the handles backends need (the
// conditioned-table database that denotes it, a decomposition denoting
// it, an optional query, an optional update applied to every world
// before the query). The harness derives the oracle answers itself:
//
//   - the *image* world set {q(W) : W ∈ worlds} (the raw set under the
//     identity query), deduplicated by fingerprint with exact-equality
//     confirmation;
//   - MEMB/POSS/CERT/UNIQ of probe instances by scanning the image;
//   - Count as the image cardinality, Expand as the image itself;
//   - possible/certain answer sets as the union/intersection of the
//     image worlds' facts.
//
// Probes are metamorphic variants of image worlds: the world itself (a
// member), a strict subset (possible, not a member), and a same-size
// near miss perturbed within the case's constant pool (usually
// neither). Every backend answers every probe; a backend that cannot
// answer an operation leaves the corresponding Ops field nil.
//
// Backends whose answer sets are inherently domain-restricted (the
// c-table engines enumerate candidate answers over the inputs'
// constants; the canonical world set also realizes fresh constants) set
// Ops.AnswerDomain, and the harness compares both sides restricted to
// it — the same genericity argument (Proposition 2.1) the engines rely
// on.
package difftest

import (
	"fmt"
	"math/big"
	"testing"

	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/wsd"
)

// Case is one generated differential scenario. Worlds is required (the
// oracle); the remaining fields are handles for whichever backends the
// suite wires in.
type Case struct {
	Tag    string
	Worlds []*rel.Instance // the raw world set; the oracle scans it
	Query  query.Query     // nil = identity; the image set is {q(W)}
	Update *wsd.Update     // optional update applied before the query
	DB     *table.Database // for c-table engine backends
	WSD    *wsd.WSD        // for decomposition backends
	Consts []string        // probe-perturbation constant pool
}

// oracleWorlds is the world list the oracle scans: the raw worlds, with
// the case's update (if any) applied world-by-world first. Backends
// that factorize from the explicit list use the same view, so the
// factorize∘expand identity holds across the write path too.
func (c *Case) oracleWorlds() []*rel.Instance {
	if c.Update == nil {
		return c.Worlds
	}
	return wsd.ApplyUpdateToWorlds(c.Worlds, c.Update)
}

// Q returns the case's query, defaulting to the identity.
func (c *Case) Q() query.Query {
	if c.Query == nil {
		return query.Identity{}
	}
	return c.Query
}

// Ops is a backend's view of one case: the decision procedures it can
// answer. Nil fields are skipped. Every function must be deterministic
// for the case.
type Ops struct {
	Member   func(*rel.Instance) (bool, error)
	Possible func(*rel.Instance) (bool, error)
	Certain  func(*rel.Instance) (bool, error)
	Unique   func(*rel.Instance) (bool, error)
	Count    func() (*big.Int, error)
	Expand   func() ([]*rel.Instance, error)
	PossAns  func() (*rel.Instance, error)
	CertAns  func() (*rel.Instance, error)

	// AnswerDomain, when non-nil, restricts the PossAns/CertAns
	// comparison: both the backend's answer and the oracle's are cut to
	// facts whose constants all lie in the domain.
	AnswerDomain []string
}

// Backend builds Ops for a case. Make returning an error fails the
// suite (backends skip inapplicable cases by agreement with the
// generator, not by erroring).
type Backend struct {
	Name string
	Make func(*Case) (*Ops, error)
}

// Config parameterizes one differential suite.
type Config struct {
	Tag      string
	Cases    int   // required number of generated cases (≥ this many successes)
	MaxSeed  int64 // generation budget; 0 = 40·Cases
	Gen      func(seed int64) (*Case, bool)
	Backends []Backend

	// ProbeWorlds bounds how many image worlds spawn probe instances
	// per case (0 = 8).
	ProbeWorlds int
}

// Run drives the suite: generate cases, derive the oracle, interrogate
// every backend, fail on the first disagreement with a tag that names
// the case, backend, operation and probe.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	if cfg.MaxSeed == 0 {
		cfg.MaxSeed = 40 * int64(cfg.Cases)
	}
	if cfg.ProbeWorlds == 0 {
		cfg.ProbeWorlds = 8
	}
	if len(cfg.Backends) == 0 {
		t.Fatalf("%s: no backends configured", cfg.Tag)
	}
	tested := 0
	for seed := int64(1); tested < cfg.Cases && seed <= cfg.MaxSeed; seed++ {
		c, ok := cfg.Gen(seed)
		if !ok {
			continue
		}
		if c.Tag == "" {
			c.Tag = fmt.Sprintf("%s seed %d", cfg.Tag, seed)
		}
		runCase(t, cfg, c)
		tested++
	}
	if tested < cfg.Cases {
		t.Fatalf("%s: only %d cases generated within the seed budget, want %d", cfg.Tag, tested, cfg.Cases)
	}
	t.Logf("%s: cross-validated %d cases × %d backends", cfg.Tag, tested, len(cfg.Backends))
}

// runCase derives the oracle for one case and checks every backend.
func runCase(t *testing.T, cfg Config, c *Case) {
	t.Helper()
	q := c.Q()
	image := newWorldSet(nil)
	raw := newWorldSet(c.oracleWorlds())
	if query.HasWorldSetOps(q) {
		// possible/certain/choiceof map the world set as a whole; the
		// oracle is the explicit-worlds world-set evaluator, not a
		// per-world map.
		answers, err := query.EvalOnWorldSet(q, raw.list)
		if err != nil {
			t.Fatalf("%s: oracle EvalOnWorldSet %s: %v", c.Tag, q.Label(), err)
		}
		for _, a := range answers {
			image.add(a)
		}
	} else {
		for _, w := range raw.list {
			a, err := q.Eval(w)
			if err != nil {
				t.Fatalf("%s: oracle eval %s: %v", c.Tag, q.Label(), err)
			}
			image.add(a)
		}
	}
	union, inter := image.unionInter()
	probes := buildProbes(image.list, cfg.ProbeWorlds, c.Consts)

	for _, b := range cfg.Backends {
		ops, err := b.Make(c)
		if err != nil {
			t.Fatalf("%s: backend %s: %v", c.Tag, b.Name, err)
		}
		checkOps(t, c, b.Name, ops, image, union, inter, probes)
	}
}

// checkOps runs every non-nil operation of one backend against the
// oracle.
func checkOps(t *testing.T, c *Case, name string, ops *Ops, image *worldSet, union, inter *rel.Instance, probes []*rel.Instance) {
	t.Helper()
	tag := func(op string) string { return fmt.Sprintf("%s: backend %s: %s", c.Tag, name, op) }

	if ops.Count != nil {
		got, err := ops.Count()
		if err != nil {
			t.Fatalf("%s: %v", tag("Count"), err)
		}
		if !got.IsInt64() || got.Int64() != int64(len(image.list)) {
			t.Fatalf("%s = %s, oracle has %d image worlds", tag("Count"), got, len(image.list))
		}
	}

	if ops.Expand != nil {
		got, err := ops.Expand()
		if err != nil {
			t.Fatalf("%s: %v", tag("Expand"), err)
		}
		if len(got) != len(image.list) {
			t.Fatalf("%s yielded %d worlds, oracle has %d", tag("Expand"), len(got), len(image.list))
		}
		back := newWorldSet(got)
		if len(back.list) != len(got) {
			t.Fatalf("%s yielded duplicate worlds", tag("Expand"))
		}
		for _, w := range got {
			if !image.has(w) {
				t.Fatalf("%s produced a world outside the oracle set:\n%s", tag("Expand"), w)
			}
		}
	}

	for pi, p := range probes {
		ptag := func(op string) string { return fmt.Sprintf("%s(probe %d)", tag(op), pi) }
		if ops.Member != nil {
			want := image.has(p)
			if got, err := ops.Member(p); err != nil {
				t.Fatalf("%s: %v", ptag("MEMB"), err)
			} else if got != want {
				t.Fatalf("%s = %v, oracle says %v\n%s", ptag("MEMB"), got, want, p)
			}
		}
		if ops.Possible != nil {
			want := image.possible(p)
			if got, err := ops.Possible(p); err != nil {
				t.Fatalf("%s: %v", ptag("POSS"), err)
			} else if got != want {
				t.Fatalf("%s = %v, oracle says %v\n%s", ptag("POSS"), got, want, p)
			}
		}
		if ops.Certain != nil {
			want := image.certain(p)
			if got, err := ops.Certain(p); err != nil {
				t.Fatalf("%s: %v", ptag("CERT"), err)
			} else if got != want {
				t.Fatalf("%s = %v, oracle says %v\n%s", ptag("CERT"), got, want, p)
			}
		}
		if ops.Unique != nil {
			want := len(image.list) == 1 && image.has(p)
			if got, err := ops.Unique(p); err != nil {
				t.Fatalf("%s: %v", ptag("UNIQ"), err)
			} else if got != want {
				t.Fatalf("%s = %v, oracle says %v\n%s", ptag("UNIQ"), got, want, p)
			}
		}
	}

	checkAnswer := func(op string, f func() (*rel.Instance, error), want *rel.Instance) {
		t.Helper()
		got, err := f()
		if err != nil {
			t.Fatalf("%s: %v", tag(op), err)
		}
		if len(image.list) == 0 {
			// ∅ has no canonical answer set; the engines agree to report
			// the schema-shaped empty instance.
			if got.Size() != 0 {
				t.Fatalf("%s on the empty world set = %v, want no facts", tag(op), got)
			}
			return
		}
		g, w := got, want
		if ops.AnswerDomain != nil {
			allowed := map[string]bool{}
			for _, c := range ops.AnswerDomain {
				allowed[c] = true
			}
			g, w = restrictTo(g, allowed), restrictTo(w, allowed)
		}
		if !g.Equal(w) {
			t.Fatalf("%s = %v, oracle says %v", tag(op), g, w)
		}
	}
	if ops.PossAns != nil {
		checkAnswer("PossAns", ops.PossAns, union)
	}
	if ops.CertAns != nil {
		checkAnswer("CertAns", ops.CertAns, inter)
	}
}

// buildProbes derives the metamorphic probe instances from image
// worlds: the world itself, a strict subset, and a same-size near miss
// within the constant pool.
func buildProbes(image []*rel.Instance, maxWorlds int, consts []string) []*rel.Instance {
	var probes []*rel.Instance
	for wi, w := range image {
		if wi >= maxWorlds {
			break
		}
		probes = append(probes, w)
		if s := subsetInstance(w); s != nil {
			probes = append(probes, s)
		}
		if len(consts) > 0 {
			if p := perturbInstance(w, consts[wi%len(consts)]); p != nil {
				probes = append(probes, p)
			}
		}
	}
	return probes
}

// subsetInstance drops one fact from the first non-empty relation; nil
// when the world is empty.
func subsetInstance(w *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	dropped := false
	for _, r := range w.Relations() {
		nr := out.EnsureRelation(r.Name, r.Arity)
		for fi, f := range r.Facts() {
			if !dropped && fi == 0 {
				dropped = true
				continue
			}
			nr.Add(f)
		}
	}
	if !dropped {
		return nil
	}
	return out
}

// perturbInstance substitutes c into the first cell of the first fact
// of the first non-empty relation — a same-size near-miss world. It
// stays inside the case's constant pool so domain-restricted backends
// and the oracle agree on the answer. Returns nil when the substitution
// would be a no-op or no fact has a cell.
func perturbInstance(w *rel.Instance, c string) *rel.Instance {
	out := rel.NewInstance()
	perturbed := false
	for _, r := range w.Relations() {
		nr := out.EnsureRelation(r.Name, r.Arity)
		for fi, f := range r.Facts() {
			if !perturbed && fi == 0 && len(f) > 0 && f[0] != c {
				nf := f.Clone()
				nf[0] = c
				nr.Add(nf)
				perturbed = true
				continue
			}
			nr.Add(f)
		}
	}
	if !perturbed {
		return nil
	}
	return out
}

// restrictTo keeps only the facts whose constants all lie in allowed.
func restrictTo(i *rel.Instance, allowed map[string]bool) *rel.Instance {
	out := rel.NewInstance()
	for _, r := range i.Relations() {
		keep := out.EnsureRelation(r.Name, r.Arity)
	facts:
		for _, f := range r.Facts() {
			for _, c := range f {
				if !allowed[c] {
					continue facts
				}
			}
			keep.Add(f)
		}
	}
	return out
}

// worldSet is the oracle-side view of a finite world list: fingerprint
// dedup with exact-equality confirmation (the same idiom as
// internal/worlds).
type worldSet struct {
	list    []*rel.Instance
	buckets map[uint64][]*rel.Instance
}

func newWorldSet(ws []*rel.Instance) *worldSet {
	s := &worldSet{buckets: make(map[uint64][]*rel.Instance)}
	for _, w := range ws {
		s.add(w)
	}
	return s
}

func (s *worldSet) add(i *rel.Instance) {
	if s.has(i) {
		return
	}
	s.list = append(s.list, i)
	s.buckets[i.Fingerprint()] = append(s.buckets[i.Fingerprint()], i)
}

func (s *worldSet) has(i *rel.Instance) bool {
	for _, prev := range s.buckets[i.Fingerprint()] {
		if prev.Equal(i) {
			return true
		}
	}
	return false
}

func (s *worldSet) possible(p *rel.Instance) bool {
	for _, w := range s.list {
		if p.SubsetOf(w) {
			return true
		}
	}
	return false
}

func (s *worldSet) certain(p *rel.Instance) bool {
	for _, w := range s.list {
		if !p.SubsetOf(w) {
			return false
		}
	}
	return true
}

// unionInter computes the union and intersection instances of the set's
// worlds' facts (nil, nil on the empty set).
func (s *worldSet) unionInter() (union, inter *rel.Instance) {
	for _, a := range s.list {
		if union == nil {
			union = a.Clone()
			inter = a.Clone()
			continue
		}
		for _, r := range a.Relations() {
			union.EnsureRelation(r.Name, r.Arity).UnionWith(r)
		}
		for _, r := range inter.Relations() {
			other := a.Relation(r.Name)
			keep := rel.NewRelation(r.Name, r.Arity)
			for _, u := range r.Tuples() {
				if other != nil && other.Contains(u) {
					keep.Insert(u)
				}
			}
			*r = *keep
		}
	}
	return union, inter
}
