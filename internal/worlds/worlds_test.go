package worlds

import (
	"testing"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
)

func v(n string) value.Value { return value.Var(n) }
func k(n string) value.Value { return value.Const(n) }

func inst(vals ...string) *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("T", 1)
	for _, x := range vals {
		r.AddRow(x)
	}
	return i
}

func TestWorldsOfGroundTable(t *testing.T) {
	tb := table.New("T", 1)
	tb.AddTuple(k("1"))
	tb.AddTuple(k("2"))
	ws := All(table.DB(tb))
	if len(ws) != 1 {
		t.Fatalf("ground table must have exactly one world, got %d", len(ws))
	}
	if !ws[0].Equal(inst("1", "2")) {
		t.Errorf("world = %v", ws[0])
	}
}

func TestWorldsOfSingleVariable(t *testing.T) {
	tb := table.New("T", 1)
	tb.AddTuple(v("x"))
	tb.AddTuple(k("1"))
	d := table.DB(tb)
	ws := All(d)
	// Over Δ ∪ Δ′ = {1, fresh}: worlds {(1)} and {(1),(fresh)}.
	if len(ws) != 2 {
		t.Fatalf("want 2 canonical worlds, got %d: %v", len(ws), ws)
	}
	if Count(d) != 2 {
		t.Error("Count disagrees with All")
	}
}

func TestWorldsRespectGlobalConditions(t *testing.T) {
	tb := table.New("T", 1)
	tb.Global = cond.Conj(cond.NeqAtom(v("x"), k("1")))
	tb.AddTuple(v("x"))
	tb.AddTuple(k("1"))
	ws := All(table.DB(tb))
	// x ranges over {fresh} only (≠1), so a single world {(1),(fresh)}.
	if len(ws) != 1 {
		t.Fatalf("want 1 world, got %d: %v", len(ws), ws)
	}
	if ws[0].Relation("T").Len() != 2 {
		t.Errorf("world = %v", ws[0])
	}
}

func TestWorldsRespectLocalConditions(t *testing.T) {
	tb := table.New("T", 1)
	tb.Add(table.Row{
		Values: value.NewTuple(k("9")),
		Cond:   cond.Conj(cond.EqAtom(v("x"), k("1"))),
	})
	tb.AddTuple(v("x"))
	ws := All(table.DB(tb))
	// Over Δ ∪ Δ′ = {1, 9, fresh}: x=1 gives {(9),(1)}, x=9 gives {(9)},
	// x=fresh gives {(fresh)}.
	if len(ws) != 3 {
		t.Fatalf("want 3 worlds, got %d: %v", len(ws), ws)
	}
	both := 0
	for _, w := range ws {
		r := w.Relation("T")
		if r.Has(rel.Fact{"1"}) {
			// The conditioned row fires exactly when x=1, which also makes
			// the bare row produce (1): (1) never appears without (9).
			if !r.Has(rel.Fact{"9"}) {
				t.Error("world with (1) must also contain (9)")
			}
			both++
		}
	}
	if both != 1 {
		t.Errorf("exactly one world contains (1), got %d", both)
	}
}

func TestUnsatisfiableGlobalMeansNoWorlds(t *testing.T) {
	tb := table.New("T", 1)
	tb.Global = cond.Conj(cond.NeqAtom(v("x"), v("x")))
	tb.AddTuple(v("x"))
	if n := Count(table.DB(tb)); n != 0 {
		t.Errorf("unsatisfiable global must yield 0 worlds, got %d", n)
	}
}

func TestEmptyWorldFromFailingLocals(t *testing.T) {
	// Definition 2.1 discussion: satisfying valuations that satisfy no
	// local condition give the empty relation.
	tb := table.New("T", 1)
	tb.Add(table.Row{
		Values: value.NewTuple(k("1")),
		Cond:   cond.Conj(cond.EqAtom(v("x"), k("1"))),
	})
	ws := All(table.DB(tb))
	foundEmpty := false
	for _, w := range ws {
		if w.Relation("T").Len() == 0 {
			foundEmpty = true
		}
	}
	if !foundEmpty {
		t.Errorf("expected the empty world among %v", ws)
	}
}

func TestMember(t *testing.T) {
	tb := table.New("T", 1)
	tb.AddTuple(v("x"))
	tb.AddTuple(k("1"))
	d := table.DB(tb)
	if !Member(inst("1"), d) {
		t.Error("{(1)} arises from x=1")
	}
	if !Member(inst("1", "5"), d) {
		t.Error("{(1),(5)} arises from x=5")
	}
	if Member(inst("5"), d) {
		t.Error("{(5)} cannot arise: (1) is unconditional")
	}
	if Member(inst("1", "5", "6"), d) {
		t.Error("three facts cannot arise from two rows")
	}
	w, ok := MemberWorld(inst("1", "5"), d)
	if !ok || !w.Equal(inst("1", "5")) {
		t.Error("MemberWorld witness wrong")
	}
}

func TestMemberUsesInstanceConstants(t *testing.T) {
	// The valuation must reach constants that occur only in the instance.
	tb := table.New("T", 1)
	tb.AddTuple(v("x"))
	if !Member(inst("42"), table.DB(tb)) {
		t.Error("x must be able to take the instance constant 42")
	}
}

func TestPossibleAndCertain(t *testing.T) {
	tb := table.New("T", 1)
	tb.Global = cond.Conj(cond.NeqAtom(v("x"), k("2"))) // x ≠ 2
	tb.AddTuple(v("x"))
	tb.AddTuple(k("1"))
	d := table.DB(tb)
	if !Possible(inst("1"), d) {
		t.Error("(1) is possible (always present)")
	}
	if !Certain(inst("1"), d) {
		t.Error("(1) is certain")
	}
	if !Possible(inst("3"), d) {
		t.Error("(3) is possible via x=3")
	}
	if Certain(inst("3"), d) {
		t.Error("(3) is not certain")
	}
	if Possible(inst("2"), d) {
		t.Error("(2) is impossible: x≠2 and the other row is (1)")
	}
}

func TestTransformDeduplicates(t *testing.T) {
	tb := table.New("T", 1)
	tb.AddTuple(v("x"))
	d := table.DB(tb)
	n := 0
	constOut := func(*rel.Instance) *rel.Instance {
		o := rel.NewInstance()
		o.EnsureRelation("O", 1).AddRow("k")
		return o
	}
	Transform(d, nil, constOut, func(*rel.Instance) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("constant transform must yield one deduplicated output, got %d", n)
	}
}

func TestEachEarlyStop(t *testing.T) {
	tb := table.New("T", 1)
	tb.AddTuple(v("x"))
	tb.AddTuple(v("y"))
	n := 0
	stopped := Each(table.DB(tb), nil, func(*rel.Instance) bool {
		n++
		return n == 2
	})
	if !stopped || n != 2 {
		t.Errorf("early stop broken: stopped=%v n=%d", stopped, n)
	}
}
