package worlds

import (
	"testing"

	"pw/internal/gen"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/valuation"
)

// keyDedupCount is the seed engine's world counter: enumerate valuations
// and deduplicate instances by canonical string encoding. It is the
// pre-refactor ground truth the fingerprint path must reproduce exactly.
func keyDedupCount(d *table.Database) int {
	domain := valuation.Domain(d)
	seen := map[string]bool{}
	n := 0
	valuation.Enumerate(d.Universe(), domain, func(v valuation.V) bool {
		inst := v.Database(d)
		if inst == nil {
			return false
		}
		k := inst.Key()
		if seen[k] {
			return false
		}
		seen[k] = true
		n++
		return false
	})
	return n
}

// TestCountMatchesCanonicalKeyDedup cross-checks the fingerprint-based
// world deduplication against canonical-string deduplication on the
// internal/gen random databases of every representation kind.
func TestCountMatchesCanonicalKeyDedup(t *testing.T) {
	cases := []*table.Table{
		gen.CoddTable(1, "T", 4, 2, 4, 0.5),
		gen.ETable(2, "T", 4, 2, 4, 2, 0.5),
		gen.ITable(3, "T", 3, 2, 4, 2, 0.5),
		gen.CTable(4, "T", 3, 2, 4, 2, 0.5, 0.5),
	}
	for ci, tb := range cases {
		d := table.DB(tb)
		got := Count(d)
		want := keyDedupCount(d)
		if got != want {
			t.Errorf("case %d (%v): fingerprint dedup counts %d worlds, canonical keys count %d\n%s",
				ci, d.Kind(), got, want, d)
		}
		if got == 0 {
			t.Errorf("case %d: no worlds enumerated", ci)
		}
	}
}

// TestEachUnderForcedFingerprintCollision drives world dedup through the
// equality fallback: with a constant fingerprint every world lands in one
// bucket, and the enumeration must still visit each distinct world exactly
// once.
func TestEachUnderForcedFingerprintCollision(t *testing.T) {
	orig := instanceFingerprint
	instanceFingerprint = func(*rel.Instance) uint64 { return 7 }
	defer func() { instanceFingerprint = orig }()

	tb := gen.ETable(5, "T", 4, 2, 3, 2, 0.6)
	d := table.DB(tb)
	got := Count(d)
	want := keyDedupCount(d)
	if got != want {
		t.Fatalf("collision-bucket dedup counts %d worlds, canonical keys count %d", got, want)
	}
	// No duplicates delivered to fn.
	seen := map[string]bool{}
	Each(d, nil, func(i *rel.Instance) bool {
		k := i.Key()
		if seen[k] {
			t.Fatalf("world delivered twice: %v", i)
		}
		seen[k] = true
		return false
	})
}

// TestMemberAgreesWithInstanceSampling: every sampled member instance of a
// random database must be accepted by Member.
func TestMemberAgreesWithInstanceSampling(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tb := gen.ETable(seed, "T", 3, 2, 4, 2, 0.5)
		d := table.DB(tb)
		i, ok := gen.MemberInstance(seed, d)
		if !ok {
			continue
		}
		if !Member(i, d) {
			t.Errorf("seed %d: sampled world rejected by Member\n%v\n%s", seed, d, i)
		}
	}
}
