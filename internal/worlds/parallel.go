package worlds

import (
	"runtime"
	"sync/atomic"

	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/valuation"
)

// Options configures the parallel world enumerators. The sequential
// package functions (All, Count, Member, …) remain the deterministic
// ground truth; Options trades their visit order for wall-clock speed
// while the determinism contract keeps the *sets* identical: every world
// of rep(d) appears exactly once at any worker count.
type Options struct {
	// Workers is the goroutine budget. 0 means GOMAXPROCS; 1 dispatches
	// to the sequential enumerators bit-for-bit.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// All materializes rep(d) over the canonical domain like the package-level
// All, but splits the valuation space into balanced prefix shards: each
// worker deduplicates its shard locally by instance fingerprint (with
// exact-equality collision buckets), and the shard sets are then merged in
// shard order through a global dedup pass with the same exact-equality
// confirmation. Workers = 1 (and spaces too small to shard) run the
// sequential enumeration, preserving its world order bit-for-bit; larger
// worker counts return the same set in shard-merge order.
func (o Options) All(d *table.Database) []*rel.Instance {
	domain := valuation.Domain(d)
	u := d.Universe()
	w := o.workers()
	shards, ok := valuation.Shards(u, domain, w*valuation.ShardsPerWorker)
	if w <= 1 || !ok {
		var out []*rel.Instance
		Each(d, domain, func(i *rel.Instance) bool {
			out = append(out, i)
			return false
		})
		return out
	}
	perShard := make([][]*rel.Instance, len(shards))
	valuation.ParallelAny(w, len(shards), func(s int, _ *atomic.Bool) bool {
		local := make(dedup)
		valuation.EnumerateRange(u, domain, shards[s], func(v valuation.V) bool {
			inst := v.Database(d)
			if inst != nil && local.add(inst) {
				perShard[s] = append(perShard[s], inst)
			}
			return false
		})
		return false
	})
	// Merge: shards overlap only across prefix boundaries, so the global
	// pass re-confirms by fingerprint bucket + Equal and keeps the first
	// occurrence in shard order.
	seen := make(dedup)
	var out []*rel.Instance
	for _, shard := range perShard {
		for _, inst := range shard {
			if seen.add(inst) {
				out = append(out, inst)
			}
		}
	}
	return out
}

// Count returns |rep(d)| over the canonical domain, materializing shards
// in parallel.
func (o Options) Count(d *table.Database) int { return len(o.All(d)) }

// Member is the parallel brute-force MEMB: the valuation space is sharded
// and the first witness world cancels every other shard.
func (o Options) Member(i *rel.Instance, d *table.Database) bool {
	domain := valuation.Domain(d, i)
	return valuation.EnumerateSharded(d.Universe(), domain, o.workers(), func(v valuation.V) bool {
		w := v.Database(d)
		return w != nil && w.Equal(i)
	})
}

// Possible is the parallel brute-force POSS(∗,−): first containing world
// cancels the search.
func (o Options) Possible(p *rel.Instance, d *table.Database) bool {
	domain := valuation.Domain(d, p)
	return valuation.EnumerateSharded(d.Universe(), domain, o.workers(), func(v valuation.V) bool {
		w := v.Database(d)
		return w != nil && p.SubsetOf(w)
	})
}

// Certain is the parallel brute-force CERT(∗,−): the universal dual —
// the first violating world cancels everything.
func (o Options) Certain(p *rel.Instance, d *table.Database) bool {
	domain := valuation.Domain(d, p)
	violated := valuation.EnumerateSharded(d.Universe(), domain, o.workers(), func(v valuation.V) bool {
		w := v.Database(d)
		return w != nil && !p.SubsetOf(w)
	})
	return !violated
}
