package worlds

import (
	"sort"
	"testing"

	"pw/internal/gen"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/valuation"
)

func forceSharding(t *testing.T) {
	t.Helper()
	old := valuation.MinShardedSpace
	valuation.MinShardedSpace = 1
	t.Cleanup(func() { valuation.MinShardedSpace = old })
}

func sortedKeys(ws []*rel.Instance) []string {
	keys := make([]string, len(ws))
	for i, w := range ws {
		keys[i] = w.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestParallelAllMatchesSequential is the worlds half of the determinism
// contract: the materialized rep(d) must be the same set at every worker
// count, for every representation kind the generator produces.
func TestParallelAllMatchesSequential(t *testing.T) {
	forceSharding(t)
	build := func(seed int64, kind int) *table.Database {
		switch kind {
		case 0:
			return table.DB(gen.CoddTable(seed, "T", 3, 2, 3, 0.5))
		case 1:
			return table.DB(gen.ETable(seed, "T", 3, 2, 3, 2, 0.5))
		case 2:
			return table.DB(gen.ITable(seed, "T", 3, 2, 3, 2, 0.5))
		default:
			return table.DB(gen.CTable(seed, "T", 3, 2, 3, 2, 0.5, 0.5))
		}
	}
	for kind := 0; kind < 4; kind++ {
		for seed := int64(0); seed < 6; seed++ {
			d := build(seed, kind)
			want := sortedKeys(All(d))
			for _, workers := range []int{1, 2, 8} {
				got := sortedKeys(Options{Workers: workers}.All(d))
				if len(got) != len(want) {
					t.Fatalf("kind %d seed %d workers %d: %d worlds, want %d\n%s",
						kind, seed, workers, len(got), len(want), d)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("kind %d seed %d workers %d: world sets differ\n%s",
							kind, seed, workers, d)
					}
				}
				if n := (Options{Workers: workers}).Count(d); n != len(want) {
					t.Fatalf("kind %d seed %d workers %d: Count=%d want %d",
						kind, seed, workers, n, len(want))
				}
			}
		}
	}
}

// TestParallelDecisionsMatchSequential checks the sharded brute-force
// MEMB/POSS/CERT against their sequential counterparts.
func TestParallelDecisionsMatchSequential(t *testing.T) {
	forceSharding(t)
	for seed := int64(0); seed < 6; seed++ {
		d := table.DB(gen.ITable(seed, "T", 3, 2, 3, 2, 0.5))
		i, ok := gen.MemberInstance(seed, d)
		if !ok {
			continue
		}
		pert, _ := gen.PerturbedInstance(seed, i)
		for _, workers := range []int{1, 2, 8} {
			o := Options{Workers: workers}
			if got, want := o.Member(i, d), Member(i, d); got != want {
				t.Fatalf("seed %d workers %d: Member=%v want %v", seed, workers, got, want)
			}
			if pert != nil {
				if got, want := o.Member(pert, d), Member(pert, d); got != want {
					t.Fatalf("seed %d workers %d: Member(pert)=%v want %v", seed, workers, got, want)
				}
			}
			if got, want := o.Possible(i, d), Possible(i, d); got != want {
				t.Fatalf("seed %d workers %d: Possible=%v want %v", seed, workers, got, want)
			}
			if got, want := o.Certain(i, d), Certain(i, d); got != want {
				t.Fatalf("seed %d workers %d: Certain=%v want %v", seed, workers, got, want)
			}
		}
	}
}
