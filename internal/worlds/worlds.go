// Package worlds implements the possible-worlds semantics of Definition
// 2.1: rep(T) for a database of conditioned tables, with exhaustive
// enumeration over the canonical domain Δ ∪ Δ′ (Proposition 2.1). The
// enumerators here are exponential in the number of variables; they are the
// ground truth against which the polynomial and backtracking algorithms of
// internal/decide are validated, and the baseline the benchmarks compare
// against.
package worlds

import (
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/valuation"
)

// Each enumerates the distinct possible worlds of d over the given domain
// (pass nil to use the canonical Domain(d)), calling fn for each distinct
// instance; enumeration stops early when fn returns true, and Each then
// returns true. Worlds are deduplicated by canonical instance encoding, so
// fn sees each element of rep(d) at most once per isomorphism-free domain.
func Each(d *table.Database, domain []string, fn func(*rel.Instance) bool) bool {
	if domain == nil {
		domain = valuation.Domain(d)
	}
	seen := make(map[string]bool)
	vars := d.VarNames()
	return valuation.Enumerate(vars, domain, func(v valuation.V) bool {
		inst := v.Database(d)
		if inst == nil {
			return false
		}
		k := inst.Key()
		if seen[k] {
			return false
		}
		seen[k] = true
		return fn(inst)
	})
}

// All materializes rep(d) over the canonical domain. Use only on small
// inputs: the size is exponential in the number of variables.
func All(d *table.Database) []*rel.Instance {
	var out []*rel.Instance
	Each(d, nil, func(i *rel.Instance) bool {
		out = append(out, i)
		return false
	})
	return out
}

// Count returns |rep(d)| restricted to the canonical domain (the number of
// distinct worlds over Δ ∪ Δ′; rep itself is infinite whenever a variable
// is unconstrained, so this is the standard finite proxy).
func Count(d *table.Database) int {
	n := 0
	Each(d, nil, func(*rel.Instance) bool {
		n++
		return false
	})
	return n
}

// Member reports whether i ∈ rep(d), by exhaustive valuation search over
// the constants of d and i plus fresh constants. This is the NP witness
// search of Proposition 2.1(2) run deterministically; internal/decide has
// the practical algorithms.
func Member(i *rel.Instance, d *table.Database) bool {
	domain := valuation.Domain(d, i)
	vars := d.VarNames()
	return valuation.Enumerate(vars, domain, func(v valuation.V) bool {
		w := v.Database(d)
		return w != nil && w.Equal(i)
	})
}

// MemberWorld additionally returns a witness world equal to i, or nil.
func MemberWorld(i *rel.Instance, d *table.Database) (*rel.Instance, bool) {
	var witness *rel.Instance
	domain := valuation.Domain(d, i)
	ok := valuation.Enumerate(d.VarNames(), domain, func(v valuation.V) bool {
		w := v.Database(d)
		if w != nil && w.Equal(i) {
			witness = w
			return true
		}
		return false
	})
	return witness, ok
}

// Possible reports whether some world of d contains every fact of p
// (the unbounded possibility question POSS(∗,−) by brute force).
func Possible(p *rel.Instance, d *table.Database) bool {
	domain := valuation.Domain(d, p)
	return valuation.Enumerate(d.VarNames(), domain, func(v valuation.V) bool {
		w := v.Database(d)
		return w != nil && p.SubsetOf(w)
	})
}

// Certain reports whether every world of d contains every fact of p
// (CERT(∗,−) by brute force over the canonical domain; correctness over
// all valuations follows from genericity, Proposition 2.1).
func Certain(p *rel.Instance, d *table.Database) bool {
	domain := valuation.Domain(d, p)
	violated := valuation.Enumerate(d.VarNames(), domain, func(v valuation.V) bool {
		w := v.Database(d)
		return w != nil && !p.SubsetOf(w)
	})
	return !violated
}

// Transform enumerates q(rep(d)) for an arbitrary instance transformer q,
// deduplicating outputs. It stops early when fn returns true.
func Transform(d *table.Database, domain []string, q func(*rel.Instance) *rel.Instance, fn func(*rel.Instance) bool) bool {
	seen := make(map[string]bool)
	return Each(d, domain, func(i *rel.Instance) bool {
		out := q(i)
		k := out.Key()
		if seen[k] {
			return false
		}
		seen[k] = true
		return fn(out)
	})
}
