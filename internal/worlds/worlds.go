// Package worlds implements the possible-worlds semantics of Definition
// 2.1: rep(T) for a database of conditioned tables, with exhaustive
// enumeration over the canonical domain Δ ∪ Δ′ (Proposition 2.1). The
// enumerators here are exponential in the number of variables; they are the
// ground truth against which the polynomial and backtracking algorithms of
// internal/decide are validated, and the baseline the benchmarks compare
// against.
//
// Candidate worlds are deduplicated by 64-bit instance fingerprint with an
// exact-equality collision bucket — the seed's canonical-string encoding
// per candidate is gone from this path.
package worlds

import (
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
)

// instanceFingerprint is a hook so tests can force universal fingerprint
// collisions and exercise the bucket fallback.
var instanceFingerprint = (*rel.Instance).Fingerprint

// dedup tracks distinct instances by fingerprint, confirming by Equal on
// collision.
type dedup map[uint64][]*rel.Instance

func (s dedup) add(i *rel.Instance) bool {
	fp := instanceFingerprint(i)
	for _, prev := range s[fp] {
		if prev.Equal(i) {
			return false
		}
	}
	s[fp] = append(s[fp], i)
	return true
}

// Each enumerates the distinct possible worlds of d over the given domain
// (pass nil to use the canonical Domain(d)), calling fn for each distinct
// instance; enumeration stops early when fn returns true, and Each then
// returns true. Worlds are deduplicated by instance fingerprint (with an
// equality fallback on collisions), so fn sees each element of rep(d) at
// most once per isomorphism-free domain.
func Each(d *table.Database, domain []sym.ID, fn func(*rel.Instance) bool) bool {
	if domain == nil {
		domain = valuation.Domain(d)
	}
	seen := make(dedup)
	u := d.Universe()
	return valuation.Enumerate(u, domain, func(v valuation.V) bool {
		inst := v.Database(d)
		if inst == nil {
			return false
		}
		if !seen.add(inst) {
			return false
		}
		return fn(inst)
	})
}

// All materializes rep(d) over the canonical domain. Use only on small
// inputs: the size is exponential in the number of variables.
func All(d *table.Database) []*rel.Instance {
	var out []*rel.Instance
	Each(d, nil, func(i *rel.Instance) bool {
		out = append(out, i)
		return false
	})
	return out
}

// Count returns |rep(d)| restricted to the canonical domain (the number of
// distinct worlds over Δ ∪ Δ′; rep itself is infinite whenever a variable
// is unconstrained, so this is the standard finite proxy).
func Count(d *table.Database) int {
	n := 0
	Each(d, nil, func(*rel.Instance) bool {
		n++
		return false
	})
	return n
}

// Member reports whether i ∈ rep(d), by exhaustive valuation search over
// the constants of d and i plus fresh constants. This is the NP witness
// search of Proposition 2.1(2) run deterministically; internal/decide has
// the practical algorithms.
func Member(i *rel.Instance, d *table.Database) bool {
	domain := valuation.Domain(d, i)
	return valuation.Enumerate(d.Universe(), domain, func(v valuation.V) bool {
		w := v.Database(d)
		return w != nil && w.Equal(i)
	})
}

// MemberWorld additionally returns a witness world equal to i, or nil.
func MemberWorld(i *rel.Instance, d *table.Database) (*rel.Instance, bool) {
	var witness *rel.Instance
	domain := valuation.Domain(d, i)
	ok := valuation.Enumerate(d.Universe(), domain, func(v valuation.V) bool {
		w := v.Database(d)
		if w != nil && w.Equal(i) {
			witness = w
			return true
		}
		return false
	})
	return witness, ok
}

// Possible reports whether some world of d contains every fact of p
// (the unbounded possibility question POSS(∗,−) by brute force).
func Possible(p *rel.Instance, d *table.Database) bool {
	domain := valuation.Domain(d, p)
	return valuation.Enumerate(d.Universe(), domain, func(v valuation.V) bool {
		w := v.Database(d)
		return w != nil && p.SubsetOf(w)
	})
}

// Certain reports whether every world of d contains every fact of p
// (CERT(∗,−) by brute force over the canonical domain; correctness over
// all valuations follows from genericity, Proposition 2.1).
func Certain(p *rel.Instance, d *table.Database) bool {
	domain := valuation.Domain(d, p)
	violated := valuation.Enumerate(d.Universe(), domain, func(v valuation.V) bool {
		w := v.Database(d)
		return w != nil && !p.SubsetOf(w)
	})
	return !violated
}

// Transform enumerates q(rep(d)) for an arbitrary instance transformer q,
// deduplicating outputs. It stops early when fn returns true.
func Transform(d *table.Database, domain []sym.ID, q func(*rel.Instance) *rel.Instance, fn func(*rel.Instance) bool) bool {
	seen := make(dedup)
	return Each(d, domain, func(i *rel.Instance) bool {
		out := q(i)
		if !seen.add(out) {
			return false
		}
		return fn(out)
	})
}
