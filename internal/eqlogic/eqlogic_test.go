package eqlogic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pw/internal/cond"
	"pw/internal/sym"
	"pw/internal/value"
)

func x() value.Value  { return value.Var("x") }
func y() value.Value  { return value.Var("y") }
func z() value.Value  { return value.Var("z") }
func c1() value.Value { return value.Const("1") }
func c2() value.Value { return value.Const("2") }

func TestMustOnly(t *testing.T) {
	p := &Problem{}
	p.Require(cond.EqAtom(x(), c1()))
	if !p.Satisfiable() {
		t.Error("x=1 must be satisfiable")
	}
	p.Require(cond.EqAtom(x(), c2()))
	if p.Satisfiable() {
		t.Error("x=1 ∧ x=2 must be unsatisfiable")
	}
}

func TestForbid(t *testing.T) {
	// Must: x=1. Forbid: (x=1): unsatisfiable.
	p := &Problem{}
	p.Require(cond.EqAtom(x(), c1()))
	p.Forbid(cond.Conj(cond.EqAtom(x(), c1())))
	if p.Satisfiable() {
		t.Error("x=1 with ¬(x=1) must be unsatisfiable")
	}
	// Must: x=1. Forbid: (x=1 ∧ y=1): satisfiable via y≠1.
	p2 := &Problem{}
	p2.Require(cond.EqAtom(x(), c1()))
	p2.Forbid(cond.Conj(cond.EqAtom(x(), c1()), cond.EqAtom(y(), c1())))
	if !p2.Satisfiable() {
		t.Error("should be satisfiable by falsifying y=1")
	}
}

func TestForbidTrueConjunction(t *testing.T) {
	// ¬(true) is the empty clause: unsatisfiable.
	p := &Problem{}
	p.Forbid(nil)
	if p.Satisfiable() {
		t.Error("forbidding the empty (true) conjunction must be unsatisfiable")
	}
}

func TestClauseChoice(t *testing.T) {
	// Must: x≠1. Clauses: (x=1 ∨ y=1) → y=1 must be chosen.
	p := &Problem{}
	p.Require(cond.NeqAtom(x(), c1()))
	p.AddClause(Clause{cond.EqAtom(x(), c1()), cond.EqAtom(y(), c1())})
	sol, ok := p.Solution()
	if !ok {
		t.Fatal("should be satisfiable")
	}
	if !sol.Implies(cond.EqAtom(y(), c1())) {
		t.Errorf("solution %v must imply y=1", sol)
	}
}

func TestInterlockedClauses(t *testing.T) {
	// x≠y forbidden (so x=y), y≠z forbidden (y=z), and x≠z required:
	// contradiction.
	p := &Problem{}
	p.Require(cond.NeqAtom(x(), z()))
	p.Forbid(cond.Conj(cond.NeqAtom(x(), y())))
	p.Forbid(cond.Conj(cond.NeqAtom(y(), z())))
	if p.Satisfiable() {
		t.Error("x=y ∧ y=z ∧ x≠z must be unsatisfiable")
	}
}

func TestModelProducesSatisfyingValuation(t *testing.T) {
	p := &Problem{}
	p.Require(cond.EqAtom(x(), c1()), cond.NeqAtom(y(), c1()), cond.NeqAtom(y(), z()))
	v, ok := p.Model([]sym.ID{sym.Var("x"), sym.Var("y"), sym.Var("z")}, "~m")
	if !ok {
		t.Fatal("satisfiable problem returned no model")
	}
	if got, _ := v.Lookup("x"); got != "1" {
		t.Errorf("x = %q, want 1", got)
	}
	vy, _ := v.Lookup("y")
	vz, _ := v.Lookup("z")
	if vy == "1" {
		t.Error("y must differ from 1")
	}
	if vy == vz {
		t.Error("y must differ from z")
	}
}

func TestModelMergesClasses(t *testing.T) {
	p := &Problem{}
	p.Require(cond.EqAtom(x(), y()))
	v, ok := p.Model([]sym.ID{sym.Var("x"), sym.Var("y"), sym.Var("z")}, "~m")
	if !ok {
		t.Fatal("unexpected unsat")
	}
	vx, _ := v.Lookup("x")
	vy, _ := v.Lookup("y")
	vz, _ := v.Lookup("z")
	if vx != vy {
		t.Errorf("x and y must coincide: %v", v)
	}
	if vz == vx {
		t.Error("z should get its own fresh constant")
	}
}

// randomProblem builds a small random system.
func randomProblem(rng *rand.Rand) *Problem {
	vals := []value.Value{x(), y(), z(), c1(), c2()}
	atom := func() cond.Atom {
		op := cond.Eq
		if rng.Intn(2) == 0 {
			op = cond.Neq
		}
		return cond.Atom{Op: op, L: vals[rng.Intn(len(vals))], R: vals[rng.Intn(len(vals))]}
	}
	p := &Problem{}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		p.Require(atom())
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		cl := make(Clause, 1+rng.Intn(3))
		for j := range cl {
			cl[j] = atom()
		}
		p.AddClause(cl)
	}
	return p
}

// bruteProblem decides the system by exhaustive assignment over enough
// constants (mentioned constants plus one fresh per variable).
func bruteProblem(p *Problem) bool {
	vars := map[string]bool{}
	collect := func(a cond.Atom) {
		for _, v := range []value.Value{a.L, a.R} {
			if v.IsVar() {
				vars[v.Name()] = true
			}
		}
	}
	for _, a := range p.Must {
		collect(a)
	}
	for _, cl := range p.Clauses {
		for _, a := range cl {
			collect(a)
		}
	}
	var names []string
	for v := range vars {
		names = append(names, v)
	}
	domain := []string{"1", "2"}
	for i := range names {
		domain = append(domain, value.FreshNames("~b", len(names))[i])
	}
	assign := map[string]string{}
	evalAtom := func(a cond.Atom) bool {
		get := func(v value.Value) string {
			if v.IsConst() {
				return v.Name()
			}
			return assign[v.Name()]
		}
		l, r := get(a.L), get(a.R)
		return (a.Op == cond.Eq) == (l == r)
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(names) {
			for _, a := range p.Must {
				if !evalAtom(a) {
					return false
				}
			}
			for _, cl := range p.Clauses {
				ok := false
				for _, a := range cl {
					if evalAtom(a) {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
			return true
		}
		for _, d := range domain {
			assign[names[i]] = d
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// TestSolverMatchesBruteForce is the core property test of the package.
func TestSolverMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		return p.Satisfiable() == bruteProblem(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestModelSatisfiesSystem: any model returned must satisfy every
// requirement and every clause.
func TestModelSatisfiesSystem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		v, ok := p.Model([]sym.ID{sym.Var("x"), sym.Var("y"), sym.Var("z")}, "~m")
		if !ok {
			return true // nothing to check; agreement tested elsewhere
		}
		get := func(val value.Value) string {
			if val.IsConst() {
				return val.Name()
			}
			got, _ := v.Lookup(val.Name())
			return got
		}
		evalAtom := func(a cond.Atom) bool {
			return (a.Op == cond.Eq) == (get(a.L) == get(a.R))
		}
		for _, a := range p.Must {
			if !evalAtom(a) {
				return false
			}
		}
		for _, cl := range p.Clauses {
			sat := false
			for _, a := range cl {
				if evalAtom(a) {
					sat = true
					break
				}
			}
			if !sat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := &Problem{}
	p.Require(cond.EqAtom(x(), c1()))
	p.AddClause(Clause{cond.EqAtom(y(), c1())})
	c := p.Clone()
	c.Require(cond.EqAtom(x(), c2()))
	if !p.Satisfiable() {
		t.Error("clone mutation leaked into original")
	}
	if c.Satisfiable() {
		t.Error("clone must be unsatisfiable")
	}
}

func TestNegationOf(t *testing.T) {
	cl := NegationOf(cond.Conj(cond.EqAtom(x(), c1()), cond.NeqAtom(y(), c2())))
	if len(cl) != 2 {
		t.Fatalf("clause = %v", cl)
	}
	if cl[0].Op != cond.Neq || cl[1].Op != cond.Eq {
		t.Errorf("negations wrong: %v", cl)
	}
}
