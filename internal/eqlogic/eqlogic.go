// Package eqlogic decides satisfiability of systems over the equality
// logic of the paper's conditions: a conjunction of literals (=/≠ atoms
// that must hold) together with clauses (disjunctions of atoms, of which at
// least one must hold), interpreted over the infinite constant domain 𝒟.
//
// Systems of this shape are the residual constraint problems left by the
// backtracking decision procedures in internal/decide:
//
//   - "row t is dropped" contributes the clause ¬φ_t, i.e. the disjunction
//     of the negations of φ_t's atoms;
//   - "fact u is not produced by any row" contributes one such clause per
//     row (the core of the uniqueness and certainty procedures);
//   - global and selected local conditions contribute must-literals.
//
// Satisfiability is decided by DPLL-style branching over clauses with a
// union–find consistency check at each node; a model over fresh constants
// can be extracted from any satisfiable system.
package eqlogic

import (
	"fmt"

	"pw/internal/cond"
	"pw/internal/sym"
	"pw/internal/valuation"
	"pw/internal/value"
)

// Clause is a disjunction of atoms: at least one must hold. The empty
// clause is false.
type Clause []cond.Atom

// NegationOf returns the clause ¬(c): the disjunction of the negations of
// the conjunction's atoms. An empty conjunction (true) yields the empty
// clause (false).
func NegationOf(c cond.Conjunction) Clause {
	out := make(Clause, len(c))
	for i, a := range c {
		out[i] = a.Negate()
	}
	return out
}

// Problem is a conjunction of must-hold literals plus a set of clauses.
type Problem struct {
	Must    cond.Conjunction
	Clauses []Clause
}

// Require appends atoms that must hold.
func (p *Problem) Require(atoms ...cond.Atom) { p.Must = append(p.Must, atoms...) }

// RequireAll appends a whole conjunction.
func (p *Problem) RequireAll(c cond.Conjunction) { p.Must = append(p.Must, c...) }

// Forbid adds the clause ¬(c), requiring the conjunction c to be false.
func (p *Problem) Forbid(c cond.Conjunction) { p.Clauses = append(p.Clauses, NegationOf(c)) }

// AddClause appends a raw clause.
func (p *Problem) AddClause(cl Clause) { p.Clauses = append(p.Clauses, cl) }

// Clone returns an independent copy of the problem.
func (p *Problem) Clone() *Problem {
	c := &Problem{Must: p.Must.Clone(), Clauses: make([]Clause, len(p.Clauses))}
	for i, cl := range p.Clauses {
		c.Clauses[i] = append(Clause(nil), cl...)
	}
	return c
}

// Satisfiable reports whether some valuation over 𝒟 satisfies the system.
func (p *Problem) Satisfiable() bool {
	c, ok := p.solve()
	_ = c
	return ok
}

// Solution returns a satisfying conjunction extension (Must plus one chosen
// atom per clause, consistent) if one exists.
func (p *Problem) Solution() (cond.Conjunction, bool) { return p.solve() }

func (p *Problem) solve() (cond.Conjunction, bool) {
	if !p.Must.Satisfiable() {
		return nil, false
	}
	return dpll(p.Must, p.Clauses)
}

// dpll branches over the first clause not already entailed; clause atom
// choices are added to the must-conjunction and consistency is rechecked.
func dpll(must cond.Conjunction, clauses []Clause) (cond.Conjunction, bool) {
	// Find the first clause not trivially satisfied by must; branch on it.
	for i, cl := range clauses {
		satisfied := false
		var open []cond.Atom
		for _, a := range cl {
			if a.TriviallyTrue() || must.Implies(a) {
				satisfied = true
				break
			}
			if a.TriviallyFalse() || must.Implies(a.Negate()) {
				continue // this disjunct cannot help
			}
			open = append(open, a)
		}
		if satisfied {
			continue
		}
		if len(open) == 0 {
			return nil, false
		}
		rest := clauses[i+1:]
		for _, a := range open {
			next := append(must.Clone(), a)
			if !next.Satisfiable() {
				continue
			}
			if sol, ok := dpll(next, rest); ok {
				return sol, true
			}
		}
		return nil, false
	}
	return must, true
}

// Model produces a concrete valuation of vars satisfying the system: the
// implied bindings of a solution conjunction, with every remaining
// unconstrained variable (or variable class) mapped to a distinct fresh
// constant prefix0, prefix1, … Choose the prefix outside every relevant
// active domain (see table.FreshPrefix).
func (p *Problem) Model(vars []sym.ID, prefix string) (valuation.V, bool) {
	sol, ok := p.solve()
	if !ok {
		return valuation.V{}, false
	}
	return ModelOf(sol, vars, prefix)
}

// ModelOf builds a model of a satisfiable conjunction as described at
// Model. It returns ok=false when the conjunction is unsatisfiable.
func ModelOf(sol cond.Conjunction, vars []sym.ID, prefix string) (valuation.V, bool) {
	sub, ok := sol.ImpliedBindings()
	if !ok {
		return valuation.V{}, false
	}
	v := valuation.Make(sym.NewUniverse(vars))
	fresh := make(map[value.Value]sym.ID) // class-representative var -> fresh const
	n := 0
	freshFor := func(rep value.Value) sym.ID {
		c, ok := fresh[rep]
		if !ok {
			c = sym.Const(fmt.Sprintf("%s%d", prefix, n))
			n++
			fresh[rep] = c
		}
		return c
	}
	for _, x := range vars {
		b, bound := sub[value.Of(x)]
		switch {
		case !bound:
			v.Set(x, freshFor(value.Of(x)))
		case b.IsConst():
			v.Set(x, b.ID())
		default:
			v.Set(x, freshFor(b))
		}
	}
	// Distinct fresh constants satisfy all residual inequalities because
	// any two terms forced equal share a class (hence a fresh constant) and
	// no inequality connects two members of one class in a satisfiable
	// conjunction. Inequalities against domain constants hold since fresh
	// constants are outside the domain.
	return v, true
}

// Value re-exports the value package's constructor pair for convenience of
// callers assembling atoms inline.
func Value(name string, isVar bool) value.Value {
	if isVar {
		return value.Var(name)
	}
	return value.Const(name)
}
