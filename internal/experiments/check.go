package experiments

import "fmt"

// GatedProbes are the probes the CI smoke step and the `pwbench -check`
// regression guard track across PRs: one per polynomial cell family, at
// the sizes fast enough for every push.
var GatedProbes = []string{
	"Fig3_MembMatching_128",
	"Thm32_UniqGTable_128",
	"Thm41_ContFreeze_64",
	"WSD_Count_1M",
	"WSD_Memb_1M",
	"WSD_Poss_1M",
	"WSDQuery_Select_1M",
	"WSDQuery_Project_1M",
	"WSDQuery_Join_1M",
	"WSAlgebra_Possible_1M",
	"WSAlgebra_ChoiceOf_1M",
	"WSAlgebra_Planned_1M",
	"WSDAttr_Count_2p100",
	"WSDAttr_Memb_2p100",
	"WSDAttr_Query_2p100",
	"WSDUpdate_Incremental_1M",
	"WSDUpdate_Full_1M",
	"ServerCertAns_Cached_1M",
	"ServerCertAns_Uncached_1M",
	"ServerHTTP_FactProbe_w8",
	"ServerHTTP_FactProbe_traced",
	"ServerHTTP_FactProbe_explain",
}

// CheckTolerance is the relative ns/op slack the regression guard allows
// before declaring a regression (0.25 = 25% slower than baseline).
const CheckTolerance = 0.25

// Check compares current probe results against a baseline and returns one
// message per regression: a gated probe whose ns/op exceeds baseline by
// more than tolerance, or a gated probe missing from either run. An empty
// result means the gate passes.
func Check(baseline, current []BenchResult, tolerance float64) []string {
	base := make(map[string]BenchResult, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	cur := make(map[string]BenchResult, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	var regressions []string
	for _, name := range GatedProbes {
		b, okB := base[name]
		c, okC := cur[name]
		switch {
		case !okB:
			regressions = append(regressions,
				fmt.Sprintf("%s: missing from baseline — regenerate it with `pwbench -bench -json`", name))
		case !okC:
			regressions = append(regressions,
				fmt.Sprintf("%s: missing from current run", name))
		case b.Workers != c.Workers:
			// A parallel baseline against a sequential rerun (or vice
			// versa) compares different engines; refuse rather than
			// report a phantom regression. Baselines predating the
			// workers field read as 0 and land here too.
			regressions = append(regressions,
				fmt.Sprintf("%s: worker-count mismatch (baseline %d, current %d) — regenerate the baseline with the default -workers",
					name, b.Workers, c.Workers))
		case c.NsPerOp > b.NsPerOp*(1+tolerance):
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
					name, c.NsPerOp, b.NsPerOp,
					100*(c.NsPerOp-b.NsPerOp)/b.NsPerOp, 100*tolerance))
		}
	}
	return regressions
}
