// Package experiments regenerates every figure of the paper as a textual
// report: the Fig. 1 representation hierarchy, the Fig. 2 complexity grid
// (measured empirically), the Fig. 3 matching algorithm, the reduction
// constructions of Figs. 4–12, and per-theorem scaling sweeps. cmd/pwbench
// prints the full set; EXPERIMENTS.md records a reference run.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	Rows  [][]string // first row is the header
	Notes []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		width := make([]int, len(r.Rows[0]))
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(width) && len(c) > width[i] {
					width[i] = len(c)
				}
			}
		}
		for ri, row := range r.Rows {
			for i, c := range row {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", width[i], c)
			}
			b.WriteByte('\n')
			if ri == 0 {
				for i, w := range width {
					if i > 0 {
						b.WriteString("  ")
					}
					b.WriteString(strings.Repeat("-", w))
				}
				b.WriteByte('\n')
			}
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// AddRow appends a row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// timeIt runs fn three times and returns the minimum duration (robust
// against scheduler noise; the deciders are deterministic).
func timeIt(fn func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best
}

// fmtDur renders a duration compactly.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// verdict classifies an observed time-growth ratio per input doubling.
func verdict(ratio float64) string {
	switch {
	case ratio < 8.5:
		return "polynomial-like"
	case ratio < 64:
		return "superpolynomial"
	default:
		return "exponential-like"
	}
}

// Experiment names a lazily-run experiment.
type Experiment struct {
	ID  string
	Run func(full bool) *Report
}

// Registry lists every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"F1", func(bool) *Report { return Fig1() }},
		{"F2", Fig2},
		{"F3", Fig3},
		{"F4", func(bool) *Report { return Fig4() }},
		{"F5", func(bool) *Report { return Fig5() }},
		{"F6", Fig6},
		{"F7", Fig7},
		{"F8", Fig8},
		{"F9", Fig9},
		{"F10", Fig10},
		{"F11", Fig11},
		{"F12", Fig12},
		{"T51", Thm51Codd},
		{"T52", Thm52Bounded},
		{"T53", Thm53Frozen},
	}
}

// All runs every experiment; full widens the sweeps.
func All(full bool) []*Report {
	var out []*Report
	for _, e := range Registry() {
		out = append(out, e.Run(full))
	}
	return out
}
