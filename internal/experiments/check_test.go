package experiments

import (
	"strings"
	"testing"
)

// results builds one BenchResult per gated probe; missing ns values
// repeat the last given one, so the tests stay valid as probes are added.
func results(ns ...float64) []BenchResult {
	known := KnownProbes()
	out := make([]BenchResult, len(GatedProbes))
	for i, name := range GatedProbes {
		v := ns[len(ns)-1]
		if i < len(ns) {
			v = ns[i]
		}
		out[i] = BenchResult{Name: name, N: 1, NsPerOp: v, Workers: known[name]}
	}
	return out
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	base := results(1000, 2000, 3000)
	cur := results(1200, 2400, 3600) // +20%, inside the 25% gate
	if regs := Check(base, cur, CheckTolerance); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCheckFlagsRegression(t *testing.T) {
	base := results(1000, 2000, 3000)
	cur := results(1000, 2600, 3000) // middle probe +30%
	regs := Check(base, cur, CheckTolerance)
	if len(regs) != 1 || !strings.Contains(regs[0], GatedProbes[1]) {
		t.Fatalf("want one regression on %s, got %v", GatedProbes[1], regs)
	}
}

func TestCheckFlagsMissingProbes(t *testing.T) {
	base := results(1000, 2000, 3000)
	regs := Check(base[:1], results(1000, 2000, 3000), CheckTolerance)
	if len(regs) != len(GatedProbes)-1 {
		t.Fatalf("want %d missing-from-baseline regressions, got %v", len(GatedProbes)-1, regs)
	}
	regs = Check(base, nil, CheckTolerance)
	if len(regs) != len(GatedProbes) {
		t.Fatalf("want all probes missing from current, got %v", regs)
	}
}

func TestCheckFlagsWorkerMismatch(t *testing.T) {
	base := results(1000, 2000, 3000)
	base[0].Workers = 8 // baseline generated in parallel
	regs := Check(base, results(1000, 2000, 3000), CheckTolerance)
	if len(regs) != 1 || !strings.Contains(regs[0], "worker-count mismatch") {
		t.Fatalf("want one worker-count mismatch, got %v", regs)
	}
}

func TestGatedProbesExist(t *testing.T) {
	names := map[string]bool{}
	for _, p := range benchProbes(0) {
		names[p.name] = true
	}
	for _, g := range GatedProbes {
		if !names[g] {
			t.Errorf("gated probe %s not in benchProbes", g)
		}
	}
}
