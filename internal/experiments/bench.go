package experiments

import (
	"fmt"
	"math/big"
	"testing"

	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
	"pw/internal/wsd"
	"pw/internal/wsdalg"
)

// BenchResult is one perf probe's outcome in the machine-readable shape
// future PRs diff against (BENCH_*.json): the same name / ns-per-op /
// allocs-per-op triple `go test -bench` reports.
type BenchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Workers records the decide.Options worker count the probe ran at,
	// so the -check guard can refuse to compare a sequential rerun
	// against a baseline that was generated in parallel.
	Workers int `json:"workers"`
}

// benchProbe is a named closure runnable under testing.Benchmark.
type benchProbe struct {
	name    string
	workers int
	fn      func(b *testing.B)
}

// benchProbes mirrors the paper-figure benchmarks of bench_test.go that
// track the engine's polynomial cells across PRs, plus parallel variants
// of the gated probes (suffix _wN pins decide.Options{Workers: N}; the
// unsuffixed probes run at the given worker count, 0 meaning sequential —
// their historical, baseline-comparable meaning). Kept deliberately
// small: these run on every `pwbench -bench` invocation.
func benchProbes(workers int) []benchProbe {
	seq := decide.Options{Workers: max(workers, 1)}
	par := decide.Options{Workers: 8}
	return []benchProbe{
		{"Fig3_MembMatching_128", seq.Workers, func(b *testing.B) { probeMembCodd(b, 128, seq) }},
		{"Fig3_MembMatching_512", seq.Workers, func(b *testing.B) { probeMembCodd(b, 512, seq) }},
		{"Fig3_MembMatching_2048", seq.Workers, func(b *testing.B) { probeMembCodd(b, 2048, seq) }},
		{"Fig3_MembMatching_2048_w8", par.Workers, func(b *testing.B) { probeMembCodd(b, 2048, par) }},
		{"Thm32_UniqGTable_128", 1, func(b *testing.B) { probeUniqGTable(b, 128) }},
		{"Thm32_UniqGTable_512", 1, func(b *testing.B) { probeUniqGTable(b, 512) }},
		{"Thm41_ContFreeze_64", seq.Workers, func(b *testing.B) { probeContFreeze(b, 64, seq) }},
		{"Thm41_ContFreeze_256", seq.Workers, func(b *testing.B) { probeContFreeze(b, 256, seq) }},
		{"Thm41_ContFreeze_256_w8", par.Workers, func(b *testing.B) { probeContFreeze(b, 256, par) }},
		{"Thm51_PossCodd_128", seq.Workers, func(b *testing.B) { probePossCodd(b, 128, seq) }},
		{"Thm51_PossCodd_128_w8", par.Workers, func(b *testing.B) { probePossCodd(b, 128, par) }},
		// Decomposition backend: native procedures on a ~10^6-world
		// world-set decomposition, no enumeration anywhere. Workers is 1
		// by construction (the procedures are sequential lookups).
		{"WSD_Count_1M", 1, probeWSDCount},
		{"WSD_Memb_1M", 1, probeWSDMemb},
		{"WSD_Poss_1M", 1, probeWSDPoss},
		// Lifted query evaluation (internal/wsdalg) on the same
		// decomposition: selection, projection and a dimension-table
		// join, each producing the answer world-set in factored form.
		{"WSDQuery_Select_1M", 1, probeWSDQuerySelect},
		{"WSDQuery_Project_1M", 1, probeWSDQueryProject},
		{"WSDQuery_Join_1M", 1, probeWSDQueryJoin},
		// World-set algebra + planner on the same decomposition: the
		// certain∘possible collapse, choice-of over the possible-set, and
		// a σ-over-⋈ query through the cost-based planner (which must
		// price its pushed form strictly below the written one).
		{"WSAlgebra_Possible_1M", 1, probeWSAPossible},
		{"WSAlgebra_ChoiceOf_1M", 1, probeWSAChoiceOf},
		{"WSAlgebra_Planned_1M", 1, probeWSAPlanned},
		// Attribute-level decomposition: the 2^100-world century grid —
		// a world set the tuple-level alternative lists cannot even
		// store — answered from the per-slot factored form.
		{"WSDAttr_Count_2p100", 1, probeWSDAttrCount},
		{"WSDAttr_Memb_2p100", 1, probeWSDAttrMemb},
		{"WSDAttr_Query_2p100", 1, probeWSDAttrQuery},
		// The update engine on the fat 2^20-world builder (~2000 facts):
		// one operation touching one component, applied incrementally
		// (touched component re-normalized, the rest shared copy-on-write)
		// vs the per-operation full re-factorization. The pair tracks the
		// incremental engine's speed advantage — its reason to exist.
		{"WSDUpdate_Incremental_1M", 1, probeWSDUpdateIncremental},
		{"WSDUpdate_Full_1M", 1, probeWSDUpdateFull},
		// Query server (internal/server) on the million-world WSD: the
		// answer-cache hit path vs the uncached eval it replaces, and HTTP
		// fact-probe throughput with an 8-worker pool and a parallel client
		// fleet (req/s = 1e9 / ns_per_op).
		{"ServerCertAns_Cached_1M", 1, probeServerCertAnsCached},
		{"ServerCertAns_Uncached_1M", 1, probeServerCertAnsUncached},
		{"ServerHTTP_FactProbe_w8", 8, probeServerHTTPFactProbe},
		// The same fleet with ?trace=1 on every request: gates the
		// span/cost instrumentation overhead next to the untraced path.
		{"ServerHTTP_FactProbe_traced", 8, probeServerHTTPFactProbeTraced},
		// And with ?explain=1: gates plan attachment + flight recording.
		{"ServerHTTP_FactProbe_explain", 8, probeServerHTTPFactProbeExplain},
	}
}

// KnownProbes maps every registered probe name to the worker count it
// runs at in the -check configuration (unsuffixed probes sequential).
// The regression guard uses it to distinguish a gated name that was
// never registered from a registered probe that failed to run.
func KnownProbes() map[string]int {
	probes := benchProbes(0)
	m := make(map[string]int, len(probes))
	for _, p := range probes {
		m[p.name] = p.workers
	}
	return m
}

// centuryCount is 2^100, the exact world count of gen.CenturyWSD.
func centuryCount() *big.Int {
	return new(big.Int).Exp(big.NewInt(2), big.NewInt(100), nil)
}

func probeWSDAttrCount(b *testing.B) {
	w := gen.CenturyWSD()
	want := centuryCount()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if c := w.Count(); c.Cmp(want) != 0 {
			b.Fatalf("Count = %s, want 2^100", c)
		}
	}
}

func probeWSDAttrMemb(b *testing.B) {
	w := gen.CenturyWSD()
	i := w.World(make([]int, w.Components()))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if !w.Member(i) {
			b.Fatal("materialized world must be a member")
		}
	}
}

func probeWSDAttrQuery(b *testing.B) {
	// σ-π over the factored form: project the sensor ids of the
	// hi-reading worlds. Each template contributes a 2-alternative
	// answer component ({R(sᵢ)} or ∅), so the answer world-set stays at
	// 2^100 and is never expanded.
	q := query.NewAlgebra("hi", query.Out{Name: "A",
		Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("R", "s", "v"), algebra.EqP(algebra.Col("v"), algebra.Lit("hi"))),
			Cols: []string{"s"},
		}})
	w := gen.CenturyWSD()
	want := centuryCount()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		out, err := wsdalg.Eval(w, q)
		if err != nil {
			b.Fatal(err)
		}
		if c := out.Count(); c.Cmp(want) != 0 {
			b.Fatalf("answer Count = %s, want 2^100", c)
		}
	}
}

func probeWSDQuery(b *testing.B, q query.Query, wantCount int64) {
	w := gen.MillionWorldWSD()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		out, err := wsdalg.Eval(w, q)
		if err != nil {
			b.Fatal(err)
		}
		if c := out.Count(); !c.IsInt64() || c.Int64() != wantCount {
			b.Fatalf("answer Count = %s, want %d", c, wantCount)
		}
	}
}

func probeWSDQuerySelect(b *testing.B) {
	scan := algebra.Scan("S", "s", "v")
	q := query.NewAlgebra("hi", query.Out{Name: "A",
		Expr: algebra.Where(scan, algebra.EqP(algebra.Col("v"), algebra.Lit("hi")))})
	probeWSDQuery(b, q, 1<<20)
}

func probeWSDQueryProject(b *testing.B) {
	q := query.NewAlgebra("sensors", query.Out{Name: "A",
		Expr: algebra.Project{E: algebra.Scan("S", "s", "v"), Cols: []string{"s"}}})
	// Projecting the value away collapses all 2^20 worlds to one
	// certain answer.
	probeWSDQuery(b, q, 1)
}

func probeWSDQueryJoin(b *testing.B) {
	q := query.NewAlgebra("labels", query.Out{Name: "A",
		Expr: algebra.Project{
			E: algebra.Join{
				L: algebra.Scan("S", "s", "v"),
				R: algebra.ConstRel{Cols: []string{"v", "lab"}, Rows: [][]string{{"lo", "low"}, {"hi", "high"}}},
			},
			Cols: []string{"s", "lab"},
		}})
	probeWSDQuery(b, q, 1<<20)
}

// The WSAlgebra probes mirror bench_test.go's gated trio: the
// compositional world-set operators and the planner at 2^20 worlds,
// answer counts asserted per iteration.

func probeWSAPossible(b *testing.B) {
	q := query.NewAlgebra("hi-possible", query.Out{Name: "A",
		Expr: algebra.Certain{E: algebra.Possible{
			E: algebra.Where(algebra.Scan("S", "s", "v"),
				algebra.EqP(algebra.Col("v"), algebra.Lit("hi"))),
		}}})
	probeWSDQuery(b, q, 1)
}

func probeWSAChoiceOf(b *testing.B) {
	q := query.NewAlgebra("pick", query.Out{Name: "A",
		Expr: algebra.ChoiceOf{E: algebra.Possible{E: algebra.Scan("S", "s", "v")}}})
	probeWSDQuery(b, q, 81)
}

func probeWSAPlanned(b *testing.B) {
	q := query.NewAlgebra("high-labels", query.Out{Name: "A",
		Expr: algebra.Project{
			E: algebra.Where(
				algebra.Join{
					L: algebra.Scan("S", "s", "v"),
					R: algebra.ConstRel{Cols: []string{"v", "lab"}, Rows: [][]string{{"lo", "low"}, {"hi", "high"}}},
				},
				algebra.EqP(algebra.Col("lab"), algebra.Lit("high"))),
			Cols: []string{"s", "lab"},
		}})
	w := gen.MillionWorldWSD()
	if _, info := wsdalg.Optimize(w, q); info == nil || info.ChosenCost >= info.NaiveCost {
		b.Fatalf("planner must price the pushed form below the written one, got %+v", info)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		out, _, err := wsdalg.EvalOptimized(w, q, nil)
		if err != nil {
			b.Fatal(err)
		}
		if c := out.Count(); !c.IsInt64() || c.Int64() != 1<<20 {
			b.Fatalf("answer Count = %s, want 2^20", c)
		}
	}
}

// probeWSDUpdate mirrors bench_test.go's benchWSDUpdate: one
// single-component delete on gen.FatMillionWorldWSD, incremental vs full
// renormalization, with the 2^20 world count asserted per iteration.
func probeWSDUpdate(b *testing.B, full bool) {
	w := gen.FatMillionWorldWSD()
	u := &wsd.Update{Ops: []wsd.UpdateOp{
		{Kind: wsd.OpDelete, Rel: "S", Args: []string{"s07f25", wsd.Wildcard}},
	}}
	apply := w.ApplyUpdate
	if full {
		apply = w.ApplyUpdateFull
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		out, err := apply(u)
		if err != nil {
			b.Fatal(err)
		}
		if c := out.Count(); !c.IsInt64() || c.Int64() != 1<<20 {
			b.Fatalf("post-update Count = %s, want 2^20", c)
		}
	}
}

func probeWSDUpdateIncremental(b *testing.B) { probeWSDUpdate(b, false) }
func probeWSDUpdateFull(b *testing.B)        { probeWSDUpdate(b, true) }

func probeWSDCount(b *testing.B) {
	w := gen.MillionWorldWSD()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if c := w.Count(); !c.IsInt64() || c.Int64() != 1<<20 {
			b.Fatalf("Count = %s, want 2^20", c)
		}
	}
}

func probeWSDMemb(b *testing.B) {
	w := gen.MillionWorldWSD()
	i := w.World(make([]int, w.Components()))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if !w.Member(i) {
			b.Fatal("materialized world must be a member")
		}
	}
}

func probeWSDPoss(b *testing.B) {
	w := gen.MillionWorldWSD()
	p := rel.NewInstance()
	pr := p.EnsureRelation("S", 2)
	pr.AddRow("hub", "ok")
	pr.AddRow("s00", "lo")
	pr.AddRow("s13", "hi")
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if !w.Possible(p) {
			b.Fatal("cross-component fragment must be possible")
		}
	}
}

func probeMembCodd(b *testing.B, rows int, o decide.Options) {
	tb := gen.CoddTable(int64(rows), "T", rows, 3, 2*rows, 0.3)
	d := table.DB(tb)
	i, ok := gen.MemberInstance(int64(rows), d)
	if !ok {
		b.Skip("no member instance")
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := o.Membership(i, query.Identity{}, d)
		if err != nil || !yes {
			b.Fatalf("membership failed: %v %v", yes, err)
		}
	}
}

func probeUniqGTable(b *testing.B, rows int) {
	tb := table.New("T", 2)
	i := rel.NewInstance()
	r := i.EnsureRelation("T", 2)
	for j := 0; j < rows; j++ {
		c := fmt.Sprintf("c%d", j)
		x := value.Var(fmt.Sprintf("x%d", j))
		tb.AddTuple(value.Const(c), x)
		tb.Global = append(tb.Global, cond.EqAtom(x, value.Const(c)))
		r.AddRow(c, c)
	}
	d := table.DB(tb)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := decide.Uniqueness(query.Identity{}, d, i)
		if err != nil || !yes {
			b.Fatalf("forced-ground g-table must be unique: %v %v", yes, err)
		}
	}
}

func probeContFreeze(b *testing.B, rows int, o decide.Options) {
	t0 := gen.CoddTable(int64(rows), "T", rows, 2, rows, 0.4)
	t := t0.Clone()
	t.AddTuple(value.Var("wild1"), value.Var("wild2"))
	d0, d := table.DB(t0), table.DB(t)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := o.Containment(query.Identity{}, d0, query.Identity{}, d)
		if err != nil || !yes {
			b.Fatalf("superset extension must contain: %v %v", yes, err)
		}
	}
}

func probePossCodd(b *testing.B, rows int, o decide.Options) {
	tb := gen.CoddTable(int64(rows)+5, "T", rows, 3, 2*rows, 0.3)
	d := table.DB(tb)
	w, ok := gen.MemberInstance(int64(rows), d)
	if !ok {
		b.Skip("no member instance")
	}
	p := rel.NewInstance()
	pr := p.EnsureRelation("T", 3)
	for i, f := range w.Relation("T").Facts() {
		if i%2 == 0 {
			pr.Add(f)
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		yes, err := o.Possible(p, query.Identity{}, d)
		if err != nil || !yes {
			b.Fatalf("half of a world must be possible: %v %v", yes, err)
		}
	}
}

// RunBenchmarks executes the perf probes (all of them, or the single one
// named by only) under testing.Benchmark with allocation reporting.
// workers sets the decide.Options worker count of the unsuffixed probes
// (0 = sequential, keeping them comparable with the committed baselines);
// the _wN variants pin their own counts.
func RunBenchmarks(only string, workers int) []BenchResult {
	var out []BenchResult
	for _, p := range benchProbes(workers) {
		if only != "" && p.name != only {
			continue
		}
		r := testing.Benchmark(p.fn)
		if r.N == 0 {
			// Skipped or failed probe: no iterations ran. Dividing would
			// produce NaN and break JSON encoding; drop the probe instead.
			continue
		}
		out = append(out, BenchResult{
			Name:        p.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Workers:     p.workers,
		})
	}
	return out
}
