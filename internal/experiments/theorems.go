package experiments

import (
	"fmt"

	"pw/internal/algebra"
	"pw/internal/datalog"
	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
)

// Thm51Codd sweeps unbounded possibility on Codd-tables (Theorem 5.1(1)):
// the matching-based algorithm must scale polynomially.
func Thm51Codd(full bool) *Report {
	r := &Report{ID: "T51", Title: "Thm 5.1(1) — POSS(∗,−) on Codd-tables (matching)"}
	r.AddRow("rows", "|P|", "answer", "time")
	sizes := []int{64, 128, 256, 512}
	if full {
		sizes = append(sizes, 1024, 2048)
	}
	for _, n := range sizes {
		tb := gen.CoddTable(int64(n)+5, "T", n, 3, 2*n, 0.3)
		d := table.DB(tb)
		w, ok := gen.MemberInstance(int64(n), d)
		if !ok {
			continue
		}
		// Take roughly half of the world's facts as P.
		p := rel.NewInstance()
		pr := p.EnsureRelation("T", 3)
		for i, f := range w.Relation("T").Facts() {
			if i%2 == 0 {
				pr.Add(f)
			}
		}
		var ans bool
		dur := timeIt(func() { ans, _ = decide.Possible(p, query.Identity{}, d) })
		r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", p.Size()),
			fmt.Sprintf("%v", ans), fmtDur(dur))
	}
	return r
}

// Thm52Bounded sweeps bounded possibility of a fixed positive existential
// query on c-tables (Theorem 5.2(1)): the lifted-algebra route must scale
// polynomially in the table size for fixed |P|.
func Thm52Bounded(full bool) *Report {
	r := &Report{ID: "T52", Title: "Thm 5.2(1) — POSS(k, pos-exist) on c-tables via lifted algebra"}
	r.AddRow("rows", "answer", "time")
	q := query.NewAlgebra("sweep",
		query.Out{Name: "Q", Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("T", "a", "b"), algebra.EqP(algebra.Col("a"), algebra.Col("b"))),
			Cols: []string{"a"},
		}})
	sizes := []int{32, 64, 128, 256}
	if full {
		sizes = append(sizes, 512, 1024)
	}
	for _, n := range sizes {
		tb := gen.CTable(int64(n)+3, "T", n, 2, 8, 4, 0.4, 0.3)
		d := table.DB(tb)
		p := rel.NewInstance()
		p.EnsureRelation("Q", 1).AddRow("c1")
		var ans bool
		dur := timeIt(func() { ans, _ = decide.Possible(p, q, d) })
		r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%v", ans), fmtDur(dur))
	}
	r.AddNote("k = 1 fixed; the c-table grows — Theorem 5.2(1) predicts polynomial time")
	return r
}

// Thm53Frozen sweeps certainty of a DATALOG query on g-tables (Theorem
// 5.3(1)): frozen-instance evaluation must scale with the datalog
// evaluation, not with the number of worlds.
func Thm53Frozen(full bool) *Report {
	r := &Report{ID: "T53", Title: "Thm 5.3(1) — CERT(∗, datalog) on g-tables via frozen evaluation"}
	r.AddRow("rows", "answer", "time")
	prog := datalog.Program{Rules: []datalog.Rule{
		datalog.R(datalog.At("TC", value.Var("x"), value.Var("y")),
			datalog.At("T", value.Var("x"), value.Var("y"))),
		datalog.R(datalog.At("TC", value.Var("x"), value.Var("z")),
			datalog.At("TC", value.Var("x"), value.Var("y")),
			datalog.At("T", value.Var("y"), value.Var("z"))),
	}}
	q := query.NewDatalog("tc", prog, "TC")
	sizes := []int{16, 32, 64}
	if full {
		sizes = append(sizes, 128, 256)
	}
	for _, n := range sizes {
		// A chain c0→c1→…→cn with a few null-valued extra edges: the chain
		// closure is certain.
		tb := table.New("T", 2)
		for i := 0; i < n; i++ {
			tb.AddTuple(value.Const(fmt.Sprintf("c%d", i)), value.Const(fmt.Sprintf("c%d", i+1)))
		}
		for i := 0; i < n/4; i++ {
			tb.AddTuple(value.Const(fmt.Sprintf("c%d", i)), value.Var(fmt.Sprintf("x%d", i)))
		}
		d := table.DB(tb)
		p := rel.NewInstance()
		p.EnsureRelation("TC", 2).AddRow("c0", fmt.Sprintf("c%d", n))
		var ans bool
		dur := timeIt(func() { ans, _ = decide.Certain(p, q, d) })
		r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%v", ans), fmtDur(dur))
	}
	r.AddNote("the number of worlds is infinite; the frozen evaluation never enumerates them")
	return r
}
