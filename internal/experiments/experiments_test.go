package experiments

import (
	"strings"
	"testing"
)

// TestQuickExperimentsRun smoke-tests the fast experiments end to end:
// each must produce a header plus at least one data row, and the
// correctness columns asserted inside the reports must agree (spot-checked
// here through the rendered text).
func TestQuickExperimentsRun(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r := e.Run(false)
			if r.ID != e.ID {
				t.Errorf("report id %q, registry id %q", r.ID, e.ID)
			}
			if len(r.Rows) < 2 {
				t.Fatalf("experiment %s produced no data rows", e.ID)
			}
			s := r.String()
			if !strings.Contains(s, r.Title) {
				t.Error("rendered report lacks its title")
			}
		})
	}
}

// TestFig1WorldCounts pins the Fig. 1 canonical world counts (regression
// guard: these depend only on the semantics and the canonical domain).
func TestFig1WorldCounts(t *testing.T) {
	r := Fig1()
	want := map[string]string{
		"Ta": "2400",
		"Tb": "25",
		"Td": "20",
		"Te": "23",
	}
	for _, row := range r.Rows[1:] {
		if w, ok := want[row[0]]; ok && row[3] != w {
			t.Errorf("%s world count = %s, want %s", row[0], row[3], w)
		}
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "Ia ∈ rep(Ta) = true") {
			found = true
		}
	}
	if !found {
		t.Error("example 2.1 note missing or false")
	}
}

// TestFig4ColumnsAgree checks that the three reduction columns equal the
// ground-truth column in the rendered Fig. 4 report.
func TestFig4ColumnsAgree(t *testing.T) {
	r := Fig4()
	for _, row := range r.Rows[1:] {
		for c := 2; c <= 4; c++ {
			if row[c] != row[1] {
				t.Errorf("graph %s: column %d = %s, want %s", row[0], c, row[c], row[1])
			}
		}
	}
}

func TestVerdictBands(t *testing.T) {
	if verdict(2) != "polynomial-like" {
		t.Error("ratio 2 should be polynomial-like")
	}
	if verdict(30) != "superpolynomial" {
		t.Error("ratio 30 should be superpolynomial")
	}
	if verdict(1000) != "exponential-like" {
		t.Error("ratio 1000 should be exponential-like")
	}
}
