package experiments

import (
	"fmt"
	"time"

	"pw/internal/cond"
	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/graph"
	"pw/internal/query"
	"pw/internal/reduce"
	"pw/internal/rel"
	"pw/internal/sat"
	"pw/internal/table"
	"pw/internal/value"
	"pw/internal/worlds"
)

func vv(n string) value.Value { return value.Var(n) }
func kk(n string) value.Value { return value.Const(n) }

// fig1Tables builds the five representations Ta–Te of Fig. 1.
func fig1Tables() map[string]*table.Table {
	ta := table.New("T", 3)
	ta.AddTuple(kk("0"), kk("1"), vv("x"))
	ta.AddTuple(vv("y"), vv("z"), kk("1"))
	ta.AddTuple(kk("2"), kk("0"), vv("v"))

	tb := table.New("T", 3)
	tb.AddTuple(kk("0"), kk("1"), vv("x"))
	tb.AddTuple(vv("x"), vv("z"), kk("1"))
	tb.AddTuple(kk("2"), kk("0"), vv("z"))

	tc := table.New("T", 3)
	tc.Global = cond.Conj(cond.NeqAtom(vv("x"), kk("0")), cond.NeqAtom(vv("y"), vv("z")))
	tc.AddTuple(kk("0"), kk("1"), vv("x"))
	tc.AddTuple(vv("y"), vv("z"), kk("1"))
	tc.AddTuple(kk("2"), kk("0"), vv("v"))

	td := table.New("T", 3)
	td.Global = cond.Conj(cond.NeqAtom(vv("x"), vv("z")))
	td.AddTuple(kk("0"), kk("1"), vv("x"))
	td.AddTuple(vv("x"), vv("z"), kk("1"))
	td.AddTuple(kk("2"), kk("0"), vv("z"))

	te := table.New("T", 2)
	te.Global = cond.Conj(cond.NeqAtom(vv("x"), kk("1")), cond.NeqAtom(vv("y"), kk("2")))
	te.Add(table.Row{Values: value.NewTuple(kk("0"), kk("1")), Cond: cond.Conj(cond.EqAtom(vv("z"), vv("z")))})
	te.Add(table.Row{Values: value.NewTuple(kk("0"), vv("x")), Cond: cond.Conj(cond.EqAtom(vv("y"), kk("0")))})
	te.Add(table.Row{Values: value.NewTuple(vv("y"), vv("x")), Cond: cond.Conj(cond.NeqAtom(vv("x"), vv("y")))})

	return map[string]*table.Table{"Ta": ta, "Tb": tb, "Tc": tc, "Td": td, "Te": te}
}

// Fig1 reproduces Fig. 1: each representation's kind and its instance
// count over the canonical domain, plus the Example 2.1 check.
func Fig1() *Report {
	r := &Report{ID: "F1", Title: "Fig. 1 — the representation hierarchy"}
	r.AddRow("table", "kind", "rows", "worlds(canonical)")
	order := []string{"Ta", "Tb", "Tc", "Td", "Te"}
	ts := fig1Tables()
	for _, name := range order {
		t := ts[name]
		d := table.DB(t)
		r.AddRow(name, t.Kind().String(),
			fmt.Sprintf("%d", len(t.Rows)),
			fmt.Sprintf("%d", worlds.Count(d)))
	}
	// Example 2.1: σx=2, σy=3, σz=0, σv=5 maps Ta to Ia.
	ia := rel.NewInstance()
	rr := ia.EnsureRelation("T", 3)
	rr.AddRow("0", "1", "2")
	rr.AddRow("3", "0", "1")
	rr.AddRow("2", "0", "5")
	member, err := decide.Membership(ia, query.Identity{}, table.DB(ts["Ta"]))
	if err != nil {
		r.AddNote("example 2.1 error: %v", err)
	} else {
		r.AddNote("example 2.1: Ia ∈ rep(Ta) = %v (paper: member, σ = {x→2,y→3,z→0,v→5})", member)
	}
	return r
}

// Fig3 reproduces the Theorem 3.1(1) algorithm: the paper's example plus a
// scaling sweep demonstrating polynomial growth of MEMB on Codd-tables.
func Fig3(full bool) *Report {
	r := &Report{ID: "F3", Title: "Fig. 3 — MEMB on Codd-tables via bipartite matching"}
	r.AddRow("rows", "facts", "answer", "time")
	sizes := []int{64, 128, 256, 512}
	if full {
		sizes = append(sizes, 1024, 2048, 4096)
	}
	var last time.Duration
	var ratioNote string
	for _, n := range sizes {
		tb := gen.CoddTable(int64(n), "T", n, 3, 2*n, 0.3)
		d := table.DB(tb)
		i, ok := gen.MemberInstance(int64(n), d)
		if !ok {
			continue
		}
		var ans bool
		dur := timeIt(func() { ans, _ = decide.Membership(i, query.Identity{}, d) })
		r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", i.Size()),
			fmt.Sprintf("%v", ans), fmtDur(dur))
		if last > 0 {
			ratioNote = fmt.Sprintf("last doubling ratio %.1f× → %s",
				float64(dur)/float64(last), verdict(float64(dur)/float64(last)))
		}
		last = dur
	}
	if ratioNote != "" {
		r.AddNote("%s (Theorem 3.1(1): PTIME)", ratioNote)
	}
	return r
}

// Fig4 reproduces the 3-colorability reductions of Fig. 4 on the paper's
// example graph and checks equivalence on a family of known graphs.
func Fig4() *Report {
	r := &Report{ID: "F4", Title: "Fig. 4 — 3-colorability reductions (Thm 3.1(2,3,4))"}
	r.AddRow("graph", "3COL", "MEMB e-table", "MEMB i-table", "MEMB view")
	gs := []struct {
		name string
		g    *graph.G
	}{
		{"paper Fig.4(a)", graph.Paper()},
		{"C5", graph.Cycle(5)},
		{"K3", graph.Complete(3)},
		{"K4", graph.Complete(4)},
	}
	for _, tc := range gs {
		e := reduce.MembETableFrom3Col(tc.g)
		i := reduce.MembITableFrom3Col(tc.g)
		v := reduce.MembViewFrom3Col(tc.g)
		ea, _ := decide.Membership(e.I0, e.Q0(), e.D)
		ia, _ := decide.Membership(i.I0, i.Q0(), i.D)
		va, _ := decide.Membership(v.I0, v.Q, v.D)
		r.AddRow(tc.name, fmt.Sprintf("%v", tc.g.Colorable3()),
			fmt.Sprintf("%v", ea), fmt.Sprintf("%v", ia), fmt.Sprintf("%v", va))
	}
	r.AddNote("all three columns must equal the 3COL column (reduction correctness)")
	return r
}

// Fig5 shows the Fig. 5 example formulas and their ground-truth status.
func Fig5() *Report {
	r := &Report{ID: "F5", Title: "Fig. 5 — example formulas"}
	r.AddRow("formula", "property", "answer")
	c := sat.PaperCNF()
	d := sat.PaperDNF()
	q := sat.PaperForallExists()
	r.AddRow("3CNF (Fig. 5 left)", "satisfiable?", fmt.Sprintf("%v", c.Satisfiable()))
	r.AddRow("3DNF (Fig. 5 right)", "tautology?", fmt.Sprintf("%v", d.Tautology()))
	r.AddRow("∀∃3CNF (X={x1,x2})", "valid?", fmt.Sprintf("%v", q.Valid()))
	return r
}

// Fig6 reproduces the Theorem 3.2(4) reduction (UNIQ of a view).
func Fig6(full bool) *Report {
	r := &Report{ID: "F6", Title: "Fig. 6 — UNIQ(q0) from non-3-colorability (Thm 3.2(4))"}
	r.AddRow("graph", "non-3COL", "UNIQ", "time")
	gs := []struct {
		name string
		g    *graph.G
	}{
		{"paper Fig.4(a)", graph.Paper()},
		{"K3", graph.Complete(3)},
		{"K4", graph.Complete(4)},
	}
	if full {
		gs = append(gs, struct {
			name string
			g    *graph.G
		}{"C7", graph.Cycle(7)})
	}
	for _, tc := range gs {
		inst := reduce.UniqViewFromGraph(tc.g)
		var ans bool
		dur := timeIt(func() { ans, _ = decide.Uniqueness(inst.Q0, inst.D0, inst.I) })
		r.AddRow(tc.name, fmt.Sprintf("%v", !tc.g.Colorable3()),
			fmt.Sprintf("%v", ans), fmtDur(dur))
	}
	return r
}

// Fig7 reproduces the Theorem 4.2(1) reduction: table ⊆ i-table is the
// Π₂ᵖ ceiling.
func Fig7(full bool) *Report {
	r := &Report{ID: "F7", Title: "Fig. 7 — CONT(table ⊆ i-table) from ∀∃3CNF (Thm 4.2(1))"}
	return contReport(r, reduce.ContITableFromForallExists, full)
}

// Fig8 reproduces the Theorem 4.2(2) reduction (table ⊆ view).
func Fig8(full bool) *Report {
	r := &Report{ID: "F8", Title: "Fig. 8 — CONT(table ⊆ view) from ∀∃3CNF (Thm 4.2(2))"}
	return contReport(r, reduce.ContViewFromForallExists, full)
}

// Fig10 reproduces the Theorem 4.2(5) reduction (view ⊆ e-table).
func Fig10(full bool) *Report {
	r := &Report{ID: "F10", Title: "Fig. 10 — CONT(view ⊆ e-table) from ∀∃3CNF (Thm 4.2(5))"}
	return contReport(r, reduce.ContQoETableFromForallExists, full)
}

func contReport(r *Report, build func(sat.ForallExists) reduce.ContInstance, full bool) *Report {
	r.AddRow("instance", "∀∃ valid", "CONT", "time")
	qs := []struct {
		name string
		q    sat.ForallExists
	}{
		{"∀x∃y (x∨y)(¬x∨¬y)", sat.ForallExists{NX: 1, NY: 1, Clauses: []sat.Clause3{
			{{Var: 0}, {Var: 1}, {Var: 1}},
			{{Var: 0, Neg: true}, {Var: 1, Neg: true}, {Var: 1, Neg: true}},
		}}},
		{"∀x∃y (x)", sat.ForallExists{NX: 1, NY: 1, Clauses: []sat.Clause3{
			{{Var: 0}, {Var: 0}, {Var: 0}},
		}}},
	}
	if full {
		qs = append(qs, struct {
			name string
			q    sat.ForallExists
		}{"paper Fig. 5 (X={x1,x2})", sat.PaperForallExists()})
	}
	for _, tc := range qs {
		inst := build(tc.q)
		var ans bool
		dur := timeIt(func() { ans, _ = decide.Containment(inst.Q0, inst.D0, inst.Q, inst.D) })
		r.AddRow(tc.name, fmt.Sprintf("%v", tc.q.Valid()), fmt.Sprintf("%v", ans), fmtDur(dur))
	}
	r.AddNote("CONT must equal the validity column; growth across sizes is exponential (Π₂ᵖ-hard)")
	return r
}

// Fig9 reproduces the Theorem 4.2(4) reduction (view ⊆ table, coNP).
func Fig9(full bool) *Report {
	r := &Report{ID: "F9", Title: "Fig. 9 — CONT(view ⊆ table) from 3DNF-TAUT (Thm 4.2(4))"}
	r.AddRow("formula", "tautology", "CONT", "time")
	fs := []struct {
		name string
		f    sat.DNF
	}{
		{"x∨¬x", sat.DNF{NVars: 1, Clauses: []sat.Clause3{
			{{Var: 0}, {Var: 0}, {Var: 0}},
			{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
		}}},
		{"single clause", sat.DNF{NVars: 2, Clauses: []sat.Clause3{{{Var: 0}, {Var: 1}, {Var: 0}}}}},
	}
	if full {
		fs = append(fs, struct {
			name string
			f    sat.DNF
		}{"paper Fig. 5 DNF", sat.PaperDNF()})
	}
	for _, tc := range fs {
		inst := reduce.ContQoFromDNF(tc.f)
		var ans bool
		dur := timeIt(func() { ans, _ = decide.Containment(inst.Q0, inst.D0, inst.Q, inst.D) })
		r.AddRow(tc.name, fmt.Sprintf("%v", tc.f.Tautology()), fmt.Sprintf("%v", ans), fmtDur(dur))
	}
	return r
}

// Fig11 reproduces the Theorem 5.1(2,3) possibility reductions.
func Fig11(full bool) *Report {
	r := &Report{ID: "F11", Title: "Fig. 11 — POSS from 3CNF-SAT (Thm 5.1(2,3))"}
	r.AddRow("formula", "SAT", "POSS e-table", "POSS i-table", "time(e)", "time(i)")
	fs := []struct {
		name string
		f    sat.CNF
	}{
		{"paper Fig. 5 CNF", sat.PaperCNF()},
		{"unsat x∧¬x", sat.CNF{NVars: 1, Clauses: []sat.Clause3{
			{{Var: 0}, {Var: 0}, {Var: 0}},
			{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
		}}},
	}
	if full {
		fs = append(fs, struct {
			name string
			f    sat.CNF
		}{"random n=6 m=10", sat.RandomCNF(newRng(99), 6, 10)})
	}
	for _, tc := range fs {
		e := reduce.PossETableFrom3SAT(tc.f)
		i := reduce.PossITableFrom3SAT(tc.f)
		var ea, ia bool
		de := timeIt(func() { ea, _ = decide.Possible(e.P, e.Q, e.D) })
		di := timeIt(func() { ia, _ = decide.Possible(i.P, i.Q, i.D) })
		r.AddRow(tc.name, fmt.Sprintf("%v", tc.f.Satisfiable()),
			fmt.Sprintf("%v", ea), fmt.Sprintf("%v", ia), fmtDur(de), fmtDur(di))
	}
	return r
}

// Fig12 reproduces the Theorem 5.2(3) DATALOG possibility gadget.
func Fig12(full bool) *Report {
	r := &Report{ID: "F12", Title: "Fig. 12 — POSS(1, datalog) from 3CNF-SAT (Thm 5.2(3))"}
	r.AddRow("formula", "SAT", "POSS(1,q)", "time")
	fs := []struct {
		name string
		f    sat.CNF
	}{
		{"unsat x∧¬x", sat.CNF{NVars: 1, Clauses: []sat.Clause3{
			{{Var: 0}, {Var: 0}, {Var: 0}},
			{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
		}}},
		{"(x∨y)", sat.CNF{NVars: 2, Clauses: []sat.Clause3{{{Var: 0}, {Var: 1}, {Var: 1}}}}},
	}
	if full {
		fs = append(fs, struct {
			name string
			f    sat.CNF
		}{"random n=3 m=4", sat.RandomCNF(newRng(7), 3, 4)})
	}
	for _, tc := range fs {
		inst := reduce.PossDatalogFrom3SAT(tc.f)
		var ans bool
		dur := timeIt(func() { ans, _ = decide.Possible(inst.P, inst.Q, inst.D) })
		r.AddRow(tc.name, fmt.Sprintf("%v", tc.f.Satisfiable()), fmt.Sprintf("%v", ans), fmtDur(dur))
	}
	r.AddNote("the datalog query is fixed; blow-up comes from the nulls x_i choosing t_i/f_i")
	return r
}
