package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/table"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// buildKind generates a database of the requested representation kind with
// the given number of rows.
func buildKind(kind table.Kind, rows int, seed int64) *table.Database {
	switch kind {
	case table.KindCodd:
		return table.DB(gen.CoddTable(seed, "T", rows, 2, 2*rows, 0.3))
	case table.KindE:
		return table.DB(gen.ETable(seed, "T", rows, 2, 2*rows, max(2, rows/4), 0.3))
	case table.KindI:
		return table.DB(gen.ITable(seed, "T", rows, 2, 2*rows, max(1, rows/8), 0.3))
	case table.KindG:
		t := gen.ETable(seed, "T", rows, 2, 2*rows, max(2, rows/4), 0.3)
		i := gen.ITable(seed+1, "X", rows, 2, 2*rows, max(1, rows/8), 0.3)
		t.Global = append(t.Global, i.Global...)
		return table.DB(t)
	default:
		return table.DB(gen.CTable(seed, "T", rows, 2, 2*rows, max(2, rows/4), 0.3, 0.5))
	}
}

// Fig2 regenerates the Fig. 2 complexity grid empirically. For each cell
// of the membership/uniqueness column and each containment pair, it runs
// the dispatched algorithm on generated inputs of two sizes and reports
// the measured times; the PTIME region must stay polynomial-like, and the
// hard cells are exercised at reduction-scale sizes by the Fig. 4–10
// experiments (hardness cannot be observed on random instances — random
// inputs are almost always easy; the reductions provide the adversarial
// families).
func Fig2(full bool) *Report {
	r := &Report{ID: "F2", Title: "Fig. 2 — the complexity grid, measured"}
	kinds := []table.Kind{table.KindCodd, table.KindE, table.KindI, table.KindG, table.KindC}

	// Probe sizes per representation: the polynomial cells take large
	// inputs; the NP-hard representations get adversarially slow already
	// at tens of rows on unlucky instances, so their probes stay small —
	// the size gap in this column IS the Fig. 2 story.
	sizesFor := func(kd table.Kind, hardSmall bool) (int, int) {
		if hardSmall {
			return 8, 14
		}
		if full {
			return 16, 256
		}
		return 16, 64
	}

	r.AddRow("problem", "representation", "paper class", "n", "t(n)", "N", "t(N)")

	membClass := map[table.Kind]string{
		table.KindCodd: "PTIME (Thm 3.1(1))",
		table.KindE:    "NP-complete (Thm 3.1(2))",
		table.KindI:    "NP-complete (Thm 3.1(3))",
		table.KindG:    "NP-complete",
		table.KindC:    "NP-complete",
	}
	for _, kd := range kinds {
		hard := kd == table.KindI || kd == table.KindG || kd == table.KindC
		small, large := sizesFor(kd, hard)
		ts, tl := probeMemb(kd, small), probeMemb(kd, large)
		r.AddRow("MEMB(-)", kd.String(), membClass[kd],
			fmt.Sprintf("%d", small), fmtDur(ts), fmt.Sprintf("%d", large), fmtDur(tl))
	}

	uniqClass := map[table.Kind]string{
		table.KindCodd: "PTIME (Thm 3.2(1))",
		table.KindE:    "PTIME (Thm 3.2(1))",
		table.KindI:    "PTIME (Thm 3.2(1))",
		table.KindG:    "PTIME (Thm 3.2(1))",
		table.KindC:    "coNP-complete (Thm 3.2(3))",
	}
	for _, kd := range kinds {
		small, large := sizesFor(kd, kd == table.KindC)
		ts, tl := probeUniq(kd, small), probeUniq(kd, large)
		r.AddRow("UNIQ(-)", kd.String(), uniqClass[kd],
			fmt.Sprintf("%d", small), fmtDur(ts), fmt.Sprintf("%d", large), fmtDur(tl))
	}

	contClass := func(sub, super table.Kind) string {
		switch {
		case super == table.KindCodd && sub.AtMost(table.KindG):
			return "PTIME (Thm 4.1(3))"
		case super == table.KindE && sub.AtMost(table.KindG):
			return "NP (Thm 4.1(2))"
		case super == table.KindCodd || super == table.KindE:
			return "NP/coNP"
		default:
			return "Π₂ᵖ (Thm 4.2)"
		}
	}
	contPairs := []struct{ sub, super table.Kind }{
		{table.KindCodd, table.KindCodd},
		{table.KindE, table.KindCodd},
		{table.KindG, table.KindCodd},
		{table.KindCodd, table.KindE},
		{table.KindG, table.KindE},
		{table.KindCodd, table.KindI},
		{table.KindC, table.KindC},
	}
	// The Π₂ᵖ cells enumerate valuations of every subset-side variable:
	// even single-digit row counts are adversarial. That blow-up is the
	// measurement.
	contSmall, contLarge := 3, 5
	if full {
		contLarge = 6
	}
	for _, p := range contPairs {
		ts := probeCont(p.sub, p.super, contSmall)
		tl := probeCont(p.sub, p.super, contLarge)
		r.AddRow(fmt.Sprintf("CONT(%s ⊆ %s)", p.sub, p.super), "", contClass(p.sub, p.super),
			fmt.Sprintf("%d", contSmall), fmtDur(ts), fmt.Sprintf("%d", contLarge), fmtDur(tl))
	}
	r.AddNote("hard-cell lower bounds are demonstrated by the reduction experiments F4, F6–F12")
	r.AddNote("containment probes use %d and %d rows (the Π₂ᵖ cells blow up beyond that)", contSmall, contLarge)
	return r
}

func probeMemb(kd table.Kind, rows int) time.Duration {
	d := buildKind(kd, rows, int64(rows)*7+int64(kd))
	i, ok := gen.MemberInstance(int64(rows), d)
	if !ok {
		i = d.EmptyInstance()
	}
	return timeIt(func() { _, _ = decide.Membership(i, query.Identity{}, d) })
}

func probeUniq(kd table.Kind, rows int) time.Duration {
	d := buildKind(kd, rows, int64(rows)*13+int64(kd))
	i, ok := gen.MemberInstance(int64(rows)+1, d)
	if !ok {
		i = d.EmptyInstance()
	}
	return timeIt(func() { _, _ = decide.Uniqueness(query.Identity{}, d, i) })
}

func probeCont(sub, super table.Kind, rows int) time.Duration {
	d0 := buildKind(sub, rows, int64(rows)*17+int64(sub))
	d := buildKind(super, rows, int64(rows)*19+int64(super))
	return timeIt(func() { _, _ = decide.Containment(query.Identity{}, d0, query.Identity{}, d) })
}
