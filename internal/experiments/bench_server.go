// Query-server probes: the three perf layers of internal/server on the
// ~10^6-world decomposition — the cached cert-ans fast path (an LRU
// lookup plus a memoized readout), the uncached eval path it replaces,
// and HTTP fact-probe throughput with a concurrent client fleet. The
// cached/uncached pair is the headline: the ratio is the answer cache's
// whole value proposition, gated at ≥10× in CI via the baseline.
package experiments

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pw/internal/gen"
	"pw/internal/server"
)

// serverHiQuery selects the hi readings of gen.MillionWorldWSD's S
// relation — the same shape as the WSDQuery_Select_1M probe, so the
// uncached server path is directly comparable to bare wsdalg.Eval.
const serverHiQuery = "@query hi\n  out: Hi = select[#value = hi](S(sensor value))\n"

func newBenchServer(b *testing.B, cfg server.Config) *server.Server {
	b.Helper()
	s := server.New(cfg)
	if err := s.AddWSD("db", gen.MillionWorldWSD()); err != nil {
		b.Fatal(err)
	}
	return s
}

func probeServerCertAnsCached(b *testing.B) {
	s := newBenchServer(b, server.Config{Workers: 1})
	req := &server.Request{DB: "db", Op: "cert-ans", Query: serverHiQuery}
	if _, err := s.Do(req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		resp, err := s.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("repeat cert-ans missed the answer cache")
		}
	}
}

func probeServerCertAnsUncached(b *testing.B) {
	// CacheSize < 0 disables the answer cache: every request pays
	// prepared-query lookup + wsdalg.Eval + certain-fact readout.
	s := newBenchServer(b, server.Config{Workers: 1, CacheSize: -1})
	req := &server.Request{DB: "db", Op: "cert-ans", Query: serverHiQuery}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		resp, err := s.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Cached {
			b.Fatal("cert-ans reported cached with caching disabled")
		}
	}
}

func probeServerHTTPFactProbe(b *testing.B) {
	s := newBenchServer(b, server.Config{Workers: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        16,
		MaxIdleConnsPerHost: 16,
	}}
	body := `{"db":"db","op":"poss","facts":"@relation S(2)\n  fact: s13 hi\n"}`
	// 8 client goroutines per core: the mixed-fact-probe fleet of the
	// pwload smoke, inside the benchmark harness. ns/op is wall time per
	// completed request across the fleet, so req/s = 1e9 / ns/op.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Errorf("HTTP %d", resp.StatusCode)
				return
			}
		}
	})
}

// probeServerHTTPFactProbeTraced is the FactProbe fleet with ?trace=1 on
// every request: each response carries a span tree and cost counters.
// Gated against probeServerHTTPFactProbe's baseline it bounds the
// tracing overhead — the observability layer must stay cheap enough to
// leave on per-request.
func probeServerHTTPFactProbeTraced(b *testing.B) {
	s := newBenchServer(b, server.Config{Workers: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        16,
		MaxIdleConnsPerHost: 16,
	}}
	body := `{"db":"db","op":"poss","facts":"@relation S(2)\n  fact: s13 hi\n"}`
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/query?trace=1", "application/json", strings.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Errorf("HTTP %d", resp.StatusCode)
				return
			}
		}
	})
}

// probeServerHTTPFactProbeExplain is the FactProbe fleet with ?explain=1
// on every request: each response carries the probe's plan (components,
// world count, duration). Gated against probeServerHTTPFactProbe's
// baseline it bounds the EXPLAIN overhead on the hot fact-probe path —
// plan attachment and flight recording must not tax plain requests.
func probeServerHTTPFactProbeExplain(b *testing.B) {
	s := newBenchServer(b, server.Config{Workers: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        16,
		MaxIdleConnsPerHost: 16,
	}}
	body := `{"db":"db","op":"poss","facts":"@relation S(2)\n  fact: s13 hi\n"}`
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/query?explain=1", "application/json", strings.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Errorf("HTTP %d", resp.StatusCode)
				return
			}
		}
	})
}
