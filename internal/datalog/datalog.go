// Package datalog implements the pure DATALOG queries of §2.1: fixpoints
// of positive existential queries, without ≠. Programs are sets of Horn
// rules over EDB (stored) and IDB (derived) predicates, evaluated to the
// least fixpoint either naively or semi-naively (the production strategy;
// the naive strategy is kept for the ablation benchmark A4).
//
// DATALOG queries are monotone and preserved under homomorphisms, which is
// what makes certainty on g-tables computable by evaluating the frozen
// table as if it were complete information (Theorem 5.3(1), after [10,17]).
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"pw/internal/rel"
	"pw/internal/value"
)

// Atom is P(t1,…,tk) with variable or constant arguments.
type Atom struct {
	Pred string
	Args []value.Value
}

// At builds an atom.
func At(pred string, args ...value.Value) Atom { return Atom{Pred: pred, Args: args} }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

// Rule is Head :- Body[0], …, Body[n-1]. All body atoms are positive. Every
// head variable must occur in the body (range restriction).
type Rule struct {
	Head Atom
	Body []Atom
}

// R builds a rule.
func R(head Atom, body ...Atom) Rule { return Rule{Head: head, Body: body} }

// String renders the rule.
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// rangeRestricted checks that head variables occur in the body.
func (r Rule) rangeRestricted() error {
	inBody := map[string]bool{}
	for _, a := range r.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				inBody[t.Name()] = true
			}
		}
	}
	for _, t := range r.Head.Args {
		if t.IsVar() && !inBody[t.Name()] {
			return fmt.Errorf("datalog: head variable ?%s of %s not bound in body", t.Name(), r)
		}
	}
	return nil
}

// Program is a set of rules. IDB predicates are those occurring in rule
// heads; all other predicates are EDB and must be present in the input
// instance.
type Program struct {
	Rules []Rule
}

// IDB returns the derived predicate names with their arities.
func (p Program) IDB() map[string]int {
	out := map[string]int{}
	for _, r := range p.Rules {
		out[r.Head.Pred] = len(r.Head.Args)
	}
	return out
}

// Consts returns the constants mentioned by the program.
func (p Program) Consts() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range p.Rules {
		for _, a := range append([]Atom{r.Head}, r.Body...) {
			for _, t := range a.Args {
				if t.IsConst() && !seen[t.Name()] {
					seen[t.Name()] = true
					out = append(out, t.Name())
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks range restriction of every rule.
func (p Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.rangeRestricted(); err != nil {
			return err
		}
	}
	return nil
}

// String renders the program one rule per line.
func (p Program) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// Eval computes the least fixpoint semi-naively and returns an instance
// containing the IDB relations (EDB relations are not echoed).
func (p Program) Eval(inst *rel.Instance) (*rel.Instance, error) {
	return p.eval(inst, true)
}

// EvalNaive recomputes every rule against the full database each round —
// the textbook naive strategy, quadratically slower on recursive programs.
// Kept for ablation A4.
func (p Program) EvalNaive(inst *rel.Instance) (*rel.Instance, error) {
	return p.eval(inst, false)
}

func (p Program) eval(inst *rel.Instance, seminaive bool) (*rel.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	idb := rel.NewInstance()
	delta := rel.NewInstance()
	for pred, ar := range p.IDB() {
		idb.AddRelation(rel.NewRelation(pred, ar))
		delta.AddRelation(rel.NewRelation(pred, ar))
	}
	lookup := func(pred string) *rel.Relation {
		if r := idb.Relation(pred); r != nil {
			return r
		}
		return inst.Relation(pred)
	}

	// First round: all rules on EDB ∪ (empty IDB).
	round := 0
	for {
		next := rel.NewInstance()
		for pred, ar := range p.IDB() {
			next.AddRelation(rel.NewRelation(pred, ar))
		}
		for _, r := range p.Rules {
			// Semi-naive: after round 0, only consider derivations using at
			// least one delta atom for an IDB predicate.
			if err := applyRule(r, lookup, delta, next, seminaive && round > 0); err != nil {
				return nil, err
			}
		}
		grew := false
		newDelta := rel.NewInstance()
		for pred, ar := range p.IDB() {
			nd := rel.NewRelation(pred, ar)
			cur := idb.Relation(pred)
			for _, f := range next.Relation(pred).Facts() {
				if !cur.Has(f) {
					cur.Add(f)
					nd.Add(f)
					grew = true
				}
			}
			newDelta.AddRelation(nd)
		}
		delta = newDelta
		round++
		if !grew {
			break
		}
	}
	return idb, nil
}

// applyRule joins the body atoms against the database and adds the head
// instantiations to out. With useDelta set, at least one IDB body atom is
// required to match the delta relation (semi-naive differentiation); the
// rule is then applied once per choice of delta position.
func applyRule(r Rule, lookup func(string) *rel.Relation, delta, out *rel.Instance, useDelta bool) error {
	idbPositions := []int{}
	for i, a := range r.Body {
		if delta.Relation(a.Pred) != nil {
			idbPositions = append(idbPositions, i)
		}
	}
	variants := [][]int{nil}
	if useDelta {
		if len(idbPositions) == 0 {
			return nil // pure-EDB rule contributes nothing after round 0
		}
		variants = nil
		for _, pos := range idbPositions {
			variants = append(variants, []int{pos})
		}
	}
	for _, v := range variants {
		deltaAt := -1
		if len(v) == 1 {
			deltaAt = v[0]
		}
		if err := joinBody(r, lookup, delta, out, deltaAt, 0, map[string]string{}); err != nil {
			return err
		}
	}
	return nil
}

func joinBody(r Rule, lookup func(string) *rel.Relation, delta, out *rel.Instance, deltaAt, i int, env map[string]string) error {
	if i == len(r.Body) {
		f := make(rel.Fact, len(r.Head.Args))
		for j, t := range r.Head.Args {
			if t.IsConst() {
				f[j] = t.Name()
			} else {
				f[j] = env[t.Name()]
			}
		}
		out.Relation(r.Head.Pred).Add(f)
		return nil
	}
	a := r.Body[i]
	var source *rel.Relation
	if i == deltaAt {
		source = delta.Relation(a.Pred)
	} else {
		source = lookup(a.Pred)
	}
	if source == nil {
		return fmt.Errorf("datalog: predicate %s not found (neither EDB nor IDB)", a.Pred)
	}
	if source.Arity != len(a.Args) {
		return fmt.Errorf("datalog: atom %s has arity %d, relation has %d", a, len(a.Args), source.Arity)
	}
nextFact:
	for _, f := range source.Facts() {
		bound := []string{}
		for j, t := range a.Args {
			if t.IsConst() {
				if f[j] != t.Name() {
					continue nextFact
				}
				continue
			}
			if v, ok := env[t.Name()]; ok {
				if v != f[j] {
					for _, b := range bound {
						delete(env, b)
					}
					continue nextFact
				}
			} else {
				env[t.Name()] = f[j]
				bound = append(bound, t.Name())
			}
		}
		if err := joinBody(r, lookup, delta, out, deltaAt, i+1, env); err != nil {
			return err
		}
		for _, b := range bound {
			delete(env, b)
		}
	}
	return nil
}
