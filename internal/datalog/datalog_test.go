package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pw/internal/rel"
	"pw/internal/value"
)

func v(n string) value.Value { return value.Var(n) }
func k(n string) value.Value { return value.Const(n) }

func edgeInstance(pairs ...[2]string) *rel.Instance {
	i := rel.NewInstance()
	r := i.EnsureRelation("E", 2)
	for _, p := range pairs {
		r.AddRow(p[0], p[1])
	}
	return i
}

func tcProgram() Program {
	return Program{Rules: []Rule{
		R(At("TC", v("x"), v("y")), At("E", v("x"), v("y"))),
		R(At("TC", v("x"), v("z")), At("TC", v("x"), v("y")), At("E", v("y"), v("z"))),
	}}
}

func TestTransitiveClosure(t *testing.T) {
	i := edgeInstance([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	out, err := tcProgram().Eval(i)
	if err != nil {
		t.Fatal(err)
	}
	tc := out.Relation("TC")
	want := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "c"}, {"b", "d"}, {"a", "d"}}
	if tc.Len() != len(want) {
		t.Fatalf("TC = %v", tc)
	}
	for _, p := range want {
		if !tc.Has(rel.Fact{p[0], p[1]}) {
			t.Errorf("missing %v", p)
		}
	}
}

func TestCycle(t *testing.T) {
	i := edgeInstance([2]string{"a", "b"}, [2]string{"b", "a"})
	out, err := tcProgram().Eval(i)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("TC").Len() != 4 {
		t.Errorf("cycle closure = %v", out.Relation("TC"))
	}
}

func TestConstantsInRules(t *testing.T) {
	i := edgeInstance([2]string{"a", "b"}, [2]string{"b", "c"})
	p := Program{Rules: []Rule{
		R(At("FromA", v("y")), At("E", k("a"), v("y"))),
	}}
	out, err := p.Eval(i)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("FromA").Len() != 1 || !out.Relation("FromA").Has(rel.Fact{"b"}) {
		t.Errorf("FromA = %v", out.Relation("FromA"))
	}
	if cs := p.Consts(); len(cs) != 1 || cs[0] != "a" {
		t.Errorf("Consts = %v", cs)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	i := edgeInstance([2]string{"a", "a"}, [2]string{"a", "b"})
	p := Program{Rules: []Rule{
		R(At("Loop", v("x")), At("E", v("x"), v("x"))),
	}}
	out, err := p.Eval(i)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("Loop").Len() != 1 || !out.Relation("Loop").Has(rel.Fact{"a"}) {
		t.Errorf("Loop = %v", out.Relation("Loop"))
	}
}

func TestRangeRestriction(t *testing.T) {
	p := Program{Rules: []Rule{
		R(At("Bad", v("x"), v("free")), At("E", v("x"), v("x"))),
	}}
	if err := p.Validate(); err == nil {
		t.Error("unrestricted head variable must be rejected")
	}
	if _, err := p.Eval(edgeInstance()); err == nil {
		t.Error("Eval must also reject")
	}
}

func TestUnknownPredicate(t *testing.T) {
	p := Program{Rules: []Rule{
		R(At("Q", v("x")), At("Nope", v("x"))),
	}}
	if _, err := p.Eval(edgeInstance()); err == nil {
		t.Error("unknown predicate must be rejected")
	}
}

func TestMutualRecursion(t *testing.T) {
	// Even/odd distance from "a" along a path.
	i := edgeInstance([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	p := Program{Rules: []Rule{
		{Head: At("Even", k("a")), Body: []Atom{At("E", k("a"), v("_w"))}},
		R(At("Odd", v("y")), At("Even", v("x")), At("E", v("x"), v("y"))),
		R(At("Even", v("y")), At("Odd", v("x")), At("E", v("x"), v("y"))),
	}}
	out, err := p.Eval(i)
	if err != nil {
		t.Fatal(err)
	}
	even, odd := out.Relation("Even"), out.Relation("Odd")
	if !even.Has(rel.Fact{"a"}) || !even.Has(rel.Fact{"c"}) || even.Has(rel.Fact{"b"}) {
		t.Errorf("Even = %v", even)
	}
	if !odd.Has(rel.Fact{"b"}) || !odd.Has(rel.Fact{"d"}) || odd.Has(rel.Fact{"a"}) {
		t.Errorf("Odd = %v", odd)
	}
}

// TestSemiNaiveMatchesNaive: the two strategies agree on random graphs.
func TestSemiNaiveMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		i := rel.NewInstance()
		e := i.EnsureRelation("E", 2)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if rng.Intn(4) == 0 {
					e.AddRow(fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b))
				}
			}
		}
		p := tcProgram()
		semi, err1 := p.Eval(i)
		naive, err2 := p.EvalNaive(i)
		if err1 != nil || err2 != nil {
			return false
		}
		return semi.Relation("TC").Equal(naive.Relation("TC"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestTCMatchesFloydWarshall cross-validates against reachability computed
// by a different algorithm.
func TestTCMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		adj := make([][]bool, n)
		for a := range adj {
			adj[a] = make([]bool, n)
		}
		i := rel.NewInstance()
		e := i.EnsureRelation("E", 2)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if rng.Intn(3) == 0 {
					adj[a][b] = true
					e.AddRow(fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b))
				}
			}
		}
		reach := make([][]bool, n)
		for a := range reach {
			reach[a] = append([]bool(nil), adj[a]...)
		}
		for m := 0; m < n; m++ {
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if reach[a][m] && reach[m][b] {
						reach[a][b] = true
					}
				}
			}
		}
		out, err := tcProgram().Eval(i)
		if err != nil {
			return false
		}
		tc := out.Relation("TC")
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if reach[a][b] != tc.Has(rel.Fact{fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b)}) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIDBAndStrings(t *testing.T) {
	p := tcProgram()
	idb := p.IDB()
	if len(idb) != 1 || idb["TC"] != 2 {
		t.Errorf("IDB = %v", idb)
	}
	if p.String() == "" || p.Rules[0].String() == "" || p.Rules[0].Head.String() == "" {
		t.Error("empty rendering")
	}
	if R(At("A", k("c"))).String() != "A(c)." {
		t.Errorf("fact rule rendering = %q", R(At("A", k("c"))).String())
	}
}

func TestEDBNotEchoed(t *testing.T) {
	out, err := tcProgram().Eval(edgeInstance([2]string{"a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("E") != nil {
		t.Error("EDB relation must not be echoed in the IDB output")
	}
}
