package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperFormulas(t *testing.T) {
	c := PaperCNF()
	if len(c.Clauses) != 5 || c.NVars != 5 {
		t.Fatalf("paper CNF shape: %v", c)
	}
	if !c.Satisfiable() {
		t.Error("the paper's 3CNF is satisfiable (e.g. x1 true, x2 false, x5 false)")
	}
	d := PaperDNF()
	if d.Tautology() {
		t.Error("the paper's 3DNF is not a tautology (all-false falsifies every clause)")
	}
	q := PaperForallExists()
	if q.NX != 2 || q.NY != 3 {
		t.Errorf("paper ∀∃ split: %d/%d", q.NX, q.NY)
	}
}

func TestSatisfyingAssignmentWitness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCNF(rng, 2+rng.Intn(4), 1+rng.Intn(6))
		a, ok := c.SatisfyingAssignment()
		if !ok {
			return true
		}
		return c.Eval(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFalsifyingAssignmentWitness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := RandomDNF(rng, 2+rng.Intn(4), 1+rng.Intn(6))
		a, ok := d.FalsifyingAssignment()
		if !ok {
			return d.Tautology()
		}
		return !d.Eval(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSATDualTAUT: f is satisfiable iff ¬f (as DNF) is not a tautology.
func TestSATDualTAUT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := RandomCNF(rng, 2+rng.Intn(3), 1+rng.Intn(5))
		return c.Satisfiable() == !c.Negate().Tautology()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKnownTautology(t *testing.T) {
	// x0 ∨ ¬x0, padded to width 3.
	d := DNF{NVars: 1, Clauses: []Clause3{
		{{Var: 0}, {Var: 0}, {Var: 0}},
		{{Var: 0, Neg: true}, {Var: 0, Neg: true}, {Var: 0, Neg: true}},
	}}
	if !d.Tautology() {
		t.Error("x0 ∨ ¬x0 is a tautology")
	}
}

func TestForallExistsKnown(t *testing.T) {
	// ∀x0 ∃x1 (x0∨x1)(¬x0∨¬x1): valid (x1 := ¬x0).
	valid := ForallExists{NX: 1, NY: 1, Clauses: []Clause3{
		{{Var: 0}, {Var: 1}, {Var: 1}},
		{{Var: 0, Neg: true}, {Var: 1, Neg: true}, {Var: 1, Neg: true}},
	}}
	if !valid.Valid() {
		t.Error("∀x∃y (x∨y)(¬x∨¬y) is valid")
	}
	// ∀x0 ∃x1 (x0): invalid.
	invalid := ForallExists{NX: 1, NY: 1, Clauses: []Clause3{
		{{Var: 0}, {Var: 0}, {Var: 0}},
	}}
	if invalid.Valid() {
		t.Error("∀x∃y (x) is invalid")
	}
	// No universal variables: reduces to satisfiability.
	existOnly := ForallExists{NX: 0, NY: 2, Clauses: []Clause3{
		{{Var: 0}, {Var: 1}, {Var: 1}},
	}}
	if !existOnly.Valid() {
		t.Error("∃-only instance with satisfiable matrix is valid")
	}
}

// TestForallExistsDuality: with NX = 0 validity equals satisfiability;
// with NY = 0 validity equals the matrix being a tautology (as CNF).
func TestForallExistsDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		cls := RandomCNF(rng, n, 1+rng.Intn(4)).Clauses
		qe := ForallExists{NX: 0, NY: n, Clauses: cls}
		if qe.Valid() != (CNF{NVars: n, Clauses: cls}).Satisfiable() {
			return false
		}
		qa := ForallExists{NX: n, NY: 0, Clauses: cls}
		// ∀X matrix holds iff the CNF is unfalsifiable.
		cnfTaut := true
		assign := make([]bool, n)
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == n {
				return (CNF{NVars: n, Clauses: cls}).Eval(assign)
			}
			assign[i] = false
			if !rec(i + 1) {
				return false
			}
			assign[i] = true
			return rec(i + 1)
		}
		cnfTaut = rec(0)
		return qa.Valid() == cnfTaut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringRenderings(t *testing.T) {
	if PaperCNF().String() == "" || PaperDNF().String() == "" || PaperForallExists().String() == "" {
		t.Error("empty rendering")
	}
	l := Lit{Var: 2, Neg: true}
	if l.String() != "-x2" {
		t.Errorf("literal = %q", l)
	}
}

func TestRandomClauseDistinctVars(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		c := randomClause(rng, 5)
		seen := map[int]bool{}
		for _, l := range c {
			if seen[l.Var] {
				t.Fatalf("repeated variable in clause %v", c)
			}
			seen[l.Var] = true
		}
	}
}
