// Package sat provides the propositional substrate of the paper's
// reductions: 3CNF formulas (satisfiability, Theorems 5.1(2,3), 5.2(3)),
// 3DNF formulas (tautology, Theorems 3.2(3), 4.2(4), 5.2(2), 5.3(2)) and
// ∀∃3CNF instances (Theorems 4.2(1,2,5)), each with a brute-force decider
// used as ground truth and with random generators for benchmarks.
package sat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Lit is a literal: variable index (0-based) with a sign.
type Lit struct {
	Var int
	Neg bool
}

// String renders the literal as x3 or ¬x3.
func (l Lit) String() string {
	if l.Neg {
		return fmt.Sprintf("-x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Clause3 is a width-3 clause (disjunction in CNF, conjunction in DNF).
type Clause3 [3]Lit

// String renders the clause with the given connective.
func (c Clause3) join(sep string) string {
	return c[0].String() + sep + c[1].String() + sep + c[2].String()
}

// CNF is a conjunction of width-3 or-clauses over variables 0..NVars-1.
type CNF struct {
	NVars   int
	Clauses []Clause3
}

// Eval reports whether the assignment (len = NVars) satisfies the formula.
func (f CNF) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var] != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Satisfiable decides 3CNF-SAT by exhaustive assignment (ground truth).
func (f CNF) Satisfiable() bool {
	_, ok := f.SatisfyingAssignment()
	return ok
}

// SatisfyingAssignment returns a witness assignment if one exists.
func (f CNF) SatisfyingAssignment() ([]bool, bool) {
	assign := make([]bool, f.NVars)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == f.NVars {
			return f.Eval(assign)
		}
		assign[i] = false
		if rec(i + 1) {
			return true
		}
		assign[i] = true
		return rec(i + 1)
	}
	if !rec(0) {
		return nil, false
	}
	return assign, true
}

// String renders the CNF.
func (f CNF) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = "(" + c.join(" v ") + ")"
	}
	return strings.Join(parts, " ^ ")
}

// DNF is a disjunction of width-3 and-clauses.
type DNF struct {
	NVars   int
	Clauses []Clause3
}

// Eval reports whether the assignment satisfies the formula.
func (f DNF) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := true
		for _, l := range c {
			if assign[l.Var] == l.Neg {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Tautology decides 3DNF-TAUT by exhaustive assignment (ground truth).
func (f DNF) Tautology() bool {
	_, ok := f.FalsifyingAssignment()
	return !ok
}

// FalsifyingAssignment returns an assignment falsifying the formula, if
// one exists (i.e. a witness of non-tautology).
func (f DNF) FalsifyingAssignment() ([]bool, bool) {
	assign := make([]bool, f.NVars)
	var rec func(i int) ([]bool, bool)
	rec = func(i int) ([]bool, bool) {
		if i == f.NVars {
			if !f.Eval(assign) {
				out := make([]bool, len(assign))
				copy(out, assign)
				return out, true
			}
			return nil, false
		}
		assign[i] = false
		if out, ok := rec(i + 1); ok {
			return out, ok
		}
		assign[i] = true
		return rec(i + 1)
	}
	return rec(0)
}

// Negate converts the CNF ¬f into DNF by De Morgan (used to relate SAT and
// TAUT in tests: f satisfiable iff ¬f not a tautology).
func (f CNF) Negate() DNF {
	out := DNF{NVars: f.NVars, Clauses: make([]Clause3, len(f.Clauses))}
	for i, c := range f.Clauses {
		for j, l := range c {
			out.Clauses[i][j] = Lit{Var: l.Var, Neg: !l.Neg}
		}
	}
	return out
}

// String renders the DNF.
func (f DNF) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = "(" + c.join(" ^ ") + ")"
	}
	return strings.Join(parts, " v ")
}

// ForallExists is a ∀X∃Y 3CNF instance: variables 0..NX-1 are universal,
// NX..NX+NY-1 existential.
type ForallExists struct {
	NX, NY  int
	Clauses []Clause3
}

// cnf views the matrix as a CNF over NX+NY variables.
func (q ForallExists) cnf() CNF {
	return CNF{NVars: q.NX + q.NY, Clauses: q.Clauses}
}

// Valid decides the ∀∃ question by double exhaustion (ground truth; the
// problem is Π₂ᵖ-complete, Theorem 4.2 uses it for hardness).
func (q ForallExists) Valid() bool {
	f := q.cnf()
	assign := make([]bool, q.NX+q.NY)
	var existsY func(i int) bool
	existsY = func(i int) bool {
		if i == q.NX+q.NY {
			return f.Eval(assign)
		}
		assign[i] = false
		if existsY(i + 1) {
			return true
		}
		assign[i] = true
		return existsY(i + 1)
	}
	var forallX func(i int) bool
	forallX = func(i int) bool {
		if i == q.NX {
			return existsY(q.NX)
		}
		assign[i] = false
		if !forallX(i + 1) {
			return false
		}
		assign[i] = true
		return forallX(i + 1)
	}
	return forallX(0)
}

// String renders the instance.
func (q ForallExists) String() string {
	return fmt.Sprintf("forall x0..x%d exists x%d..x%d: %s",
		q.NX-1, q.NX, q.NX+q.NY-1, q.cnf())
}

// PaperCNF returns the 3CNF example of Fig. 5:
//
//	c1 = x1∨x2∨x3, c2 = x1∨¬x2∨x4, c3 = x1∨x4∨x5,
//	c4 = x2∨¬x1∨x5, c5 = ¬x1∨¬x2∨¬x5
//
// with 0-based variables x1..x5 ↦ 0..4.
func PaperCNF() CNF {
	l := func(v int, neg bool) Lit { return Lit{Var: v - 1, Neg: neg} }
	return CNF{NVars: 5, Clauses: []Clause3{
		{l(1, false), l(2, false), l(3, false)},
		{l(1, false), l(2, true), l(4, false)},
		{l(1, false), l(4, false), l(5, false)},
		{l(2, false), l(1, true), l(5, false)},
		{l(1, true), l(2, true), l(5, true)},
	}}
}

// PaperDNF returns the 3DNF example of Fig. 5 (the same clauses read as
// and-clauses).
func PaperDNF() DNF {
	c := PaperCNF()
	return DNF{NVars: c.NVars, Clauses: c.Clauses}
}

// PaperForallExists returns the ∀∃ example of Fig. 5: X = {x1,x2},
// Y = {x3,x4,x5}.
func PaperForallExists() ForallExists {
	c := PaperCNF()
	return ForallExists{NX: 2, NY: 3, Clauses: c.Clauses}
}

// RandomCNF generates a random 3CNF with the given clause count; literals
// are drawn uniformly with distinct variables within a clause.
func RandomCNF(rng *rand.Rand, nvars, nclauses int) CNF {
	f := CNF{NVars: nvars}
	for i := 0; i < nclauses; i++ {
		f.Clauses = append(f.Clauses, randomClause(rng, nvars))
	}
	return f
}

// RandomDNF generates a random 3DNF.
func RandomDNF(rng *rand.Rand, nvars, nclauses int) DNF {
	f := DNF{NVars: nvars}
	for i := 0; i < nclauses; i++ {
		f.Clauses = append(f.Clauses, randomClause(rng, nvars))
	}
	return f
}

// RandomForallExists generates a random ∀∃3CNF instance.
func RandomForallExists(rng *rand.Rand, nx, ny, nclauses int) ForallExists {
	q := ForallExists{NX: nx, NY: ny}
	for i := 0; i < nclauses; i++ {
		q.Clauses = append(q.Clauses, randomClause(rng, nx+ny))
	}
	return q
}

func randomClause(rng *rand.Rand, nvars int) Clause3 {
	var c Clause3
	seen := map[int]bool{}
	for j := 0; j < 3; j++ {
		v := rng.Intn(nvars)
		for nvars >= 3 && seen[v] {
			v = rng.Intn(nvars)
		}
		seen[v] = true
		c[j] = Lit{Var: v, Neg: rng.Intn(2) == 0}
	}
	return c
}
