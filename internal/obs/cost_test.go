package obs

import (
	"reflect"
	"sync"
	"testing"
)

// A nil *Cost must be a black hole: every method records nothing,
// reads zero, and never panics — that is what lets the engine thread
// possibly-nil sinks without branching.
func TestCostNilReceiver(t *testing.T) {
	var c *Cost
	if got := c.Add(EvalParts, 7); got != 0 {
		t.Errorf("nil.Add = %d, want 0", got)
	}
	c.Max(EvalMergeSpaceMax, 99)
	if got := c.Get(EvalMergeSpaceMax); got != 0 {
		t.Errorf("nil.Get = %d, want 0", got)
	}
	if got := c.Counters(); got != nil {
		t.Errorf("nil.Counters = %v, want nil", got)
	}
	if got := c.String(); got != "" {
		t.Errorf("nil.String = %q, want empty", got)
	}
}

func TestCostAddMaxGet(t *testing.T) {
	c := NewCost()
	if got := c.Add(ParseBytes, 10); got != 10 {
		t.Errorf("Add returned %d, want 10", got)
	}
	if got := c.Add(ParseBytes, 5); got != 15 {
		t.Errorf("second Add returned %d, want 15", got)
	}
	c.Max(DecideWitnessDepth, 4)
	c.Max(DecideWitnessDepth, 2) // lower: must not regress
	c.Max(DecideWitnessDepth, 9)
	if got := c.Get(DecideWitnessDepth); got != 9 {
		t.Errorf("Max high-water mark = %d, want 9", got)
	}
}

func TestCostCountersAndString(t *testing.T) {
	c := NewCost()
	c.Add(CacheMisses, 1)
	c.Add(EvalComponents, 3)
	want := map[string]int64{"cache_misses": 1, "eval_components": 3}
	if got := c.Counters(); !reflect.DeepEqual(got, want) {
		t.Errorf("Counters = %v, want %v", got, want)
	}
	// Name-sorted, nonzero only.
	if got, want := c.String(), "cache_misses=1 eval_components=3"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := NewCost().String(); got != "" {
		t.Errorf("zero Cost String = %q, want empty", got)
	}
}

func TestCostKindNames(t *testing.T) {
	if got, want := EvalAltsTabulated.String(), "eval_alts_tabulated"; got != want {
		t.Errorf("EvalAltsTabulated = %q, want %q", got, want)
	}
	if got, want := CostKind(-1).String(), "cost(-1)"; got != want {
		t.Errorf("out-of-range kind = %q, want %q", got, want)
	}
}

// Concurrent adds from evaluation worker goroutines must not lose
// counts (run under -race in CI).
func TestCostConcurrent(t *testing.T) {
	c := NewCost()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(DecideValuations, 1)
				c.Max(DecideWitnessDepth, int64(w*per+i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Get(DecideValuations); got != workers*per {
		t.Errorf("DecideValuations = %d, want %d", got, workers*per)
	}
	if got := c.Get(DecideWitnessDepth); got != workers*per-1 {
		t.Errorf("DecideWitnessDepth = %d, want %d", got, workers*per-1)
	}
}

// TestCostSnapshot: Snapshot/AddSnapshot fold a private run's counters
// into a shared sink, preserving Max semantics for high-water kinds —
// the mechanism EvalPlanned uses to give each plan an exact private
// cost breakdown under a request-wide sink.
func TestCostSnapshot(t *testing.T) {
	var nilCost *Cost
	if s := nilCost.Snapshot(); s.Counters() != nil {
		t.Error("nil Snapshot must be all-zero")
	}
	nilCost.AddSnapshot(CostSnapshot{}) // no panic

	private := NewCost()
	private.Add(EvalParts, 3)
	private.Max(EvalMergeSpaceMax, 10)
	snap := private.Snapshot()
	if snap.Get(EvalParts) != 3 || snap.Get(EvalMergeSpaceMax) != 10 {
		t.Fatalf("snapshot = %v", snap.Counters())
	}
	if snap.Get(CostKind(-1)) != 0 || snap.Get(numCostKinds) != 0 {
		t.Error("out-of-range Get must return 0")
	}

	sink := NewCost()
	sink.Add(EvalParts, 1)
	sink.Max(EvalMergeSpaceMax, 25) // higher water than the snapshot
	sink.AddSnapshot(snap)
	if got := sink.Get(EvalParts); got != 4 {
		t.Errorf("additive fold: eval_parts = %d, want 4", got)
	}
	if got := sink.Get(EvalMergeSpaceMax); got != 25 {
		t.Errorf("max fold must keep the higher water mark, got %d", got)
	}
	sink2 := NewCost()
	sink2.AddSnapshot(snap)
	if got := sink2.Get(EvalMergeSpaceMax); got != 10 {
		t.Errorf("max fold into empty sink = %d, want 10", got)
	}
}
