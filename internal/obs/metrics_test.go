package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// Bucket boundaries are le-inclusive: an observation equal to an upper
// bound lands in that bucket, matching the Prometheus histogram
// contract.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1)   // exactly on the first bound → bucket 0
	h.Observe(1.5) // between the bounds → bucket 1
	h.Observe(2)   // exactly on the second bound → bucket 1
	h.Observe(3)   // past every bound → +Inf bucket
	for i, want := range []uint64{1, 2, 1} {
		if got := h.BucketCount(i); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if got := h.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != 7.5 {
		t.Errorf("Sum = %g, want 7.5", got)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds must panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

// Counters wrap on uint64 overflow — the Prometheus convention, where a
// scraper treats any decrease as a counter reset.
func TestCounterOverflowWraps(t *testing.T) {
	var c Counter
	c.Add(math.MaxUint64)
	if got := c.Value(); got != math.MaxUint64 {
		t.Fatalf("Value = %d, want MaxUint64", got)
	}
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Errorf("Value after wrap = %d, want 0", got)
	}
	c.Add(5)
	if got := c.Value(); got != 5 {
		t.Errorf("Value after wrap+5 = %d, want 5", got)
	}
}

// Concurrent increments across counters, vec series and histograms must
// not lose updates (run under -race in CI).
func TestMetricsConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "c")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h_seconds", "h", []float64{1})
	cv := reg.CounterVec("cv_total", "cv", "op")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			op := []string{"a", "b"}[w%2]
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
				cv.With(op).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); got != float64(workers*per)*0.5 {
		t.Errorf("histogram sum = %g, want %g", got, float64(workers*per)*0.5)
	}
	if a, b := cv.With("a").Value(), cv.With("b").Value(); a+b != workers*per {
		t.Errorf("vec series a=%d b=%d, want sum %d", a, b, workers*per)
	}
}

// The golden test pins the text exposition format itself: HELP/TYPE
// ordering, label rendering, cumulative le-inclusive histogram buckets
// with _sum/_count, series sorted by label values, integer-valued
// samples rendered without a decimal point.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "Operations performed.")
	g := reg.Gauge("test_level", "Current level.")
	reg.GaugeFunc("test_fn", "Computed at scrape time.", func() float64 { return 2.5 })
	h := reg.Histogram("test_seconds", "Latency.", []float64{1, 2})
	cv := reg.CounterVec("test_by_op_total", "By op.", "op")

	c.Add(3)
	g.Set(-2)
	h.Observe(1)   // le="1" (inclusive)
	h.Observe(1.5) // le="2"
	h.Observe(8)   // +Inf
	cv.With("b").Inc()
	cv.With("a").Add(2)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	want := `# HELP test_ops_total Operations performed.
# TYPE test_ops_total counter
test_ops_total 3
# HELP test_level Current level.
# TYPE test_level gauge
test_level -2
# HELP test_fn Computed at scrape time.
# TYPE test_fn gauge
test_fn 2.5
# HELP test_seconds Latency.
# TYPE test_seconds histogram
test_seconds_bucket{le="1"} 1
test_seconds_bucket{le="2"} 2
test_seconds_bucket{le="+Inf"} 3
test_seconds_sum 10.5
test_seconds_count 3
# HELP test_by_op_total By op.
# TYPE test_by_op_total counter
test_by_op_total{op="a"} 2
test_by_op_total{op="b"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// WriteFamily is the scrape-time hook for dynamically computed series
// (the per-database families); its output must splice seamlessly into
// the registry's.
func TestWriteFamily(t *testing.T) {
	var sb strings.Builder
	WriteFamily(&sb, "test_db_version", "gauge", "Version per db.",
		Series{Labels: []Label{{Key: "db", Value: `quo"te`}}, Value: 7},
	)
	want := "# HELP test_db_version Version per db.\n" +
		"# TYPE test_db_version gauge\n" +
		"test_db_version{db=\"quo\\\"te\"} 7\n"
	if got := sb.String(); got != want {
		t.Errorf("WriteFamily:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	reg.Counter("dup_total", "y")
}

func TestVecLabelArityPanics(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("arity_total", "x", "op", "code")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity must panic")
		}
	}()
	cv.With("only-one")
}

// TestVecCardinalityBound: a label vec stops minting new series at
// MaxVecSeries, collapsing further label combinations into one
// "overflow" series — a buggy or hostile label source cannot grow the
// scrape without bound.
func TestVecCardinalityBound(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("test_card_total", "x", "who")
	for i := 0; i < MaxVecSeries+50; i++ {
		cv.With(fmt.Sprintf("w%04d", i)).Inc()
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	series := strings.Count(out, "test_card_total{")
	if series != MaxVecSeries+1 {
		t.Errorf("vec exposes %d series, want %d named + 1 overflow", series, MaxVecSeries)
	}
	if !strings.Contains(out, `test_card_total{who="overflow"} 50`) {
		t.Errorf("overflow series missing or miscounted:\n%s", out[len(out)-400:])
	}
	// Existing series keep recording after the cap.
	cv.With("w0000").Inc()
	sb.Reset()
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `test_card_total{who="w0000"} 2`) {
		t.Error("pre-cap series stopped recording after the cap")
	}
}
