// Package obs is the engine's zero-dependency observability core:
// per-request cost accounting (Cost), a lightweight span/trace API with
// context propagation (Trace, Span), and process-wide metrics — atomic
// counters, gauges and fixed-bucket histograms — exposed in the
// Prometheus text format (Registry).
//
// The design constraint throughout is that instrumentation must be
// cheap enough to leave compiled into the hot layers: every Cost and
// Span method is nil-receiver safe, so the engine threads optional
// sinks through unconditionally and an untraced call path pays one
// predictable nil check per record point; Registry metrics are single
// atomic operations with pre-resolved handles on the hot paths.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// CostKind names one per-request cost counter. The counters form the
// engine's structured cost model: each hot layer (parse, wsd.Normalize,
// wsd.ApplyUpdate, wsdalg.Eval, decide, the server's cache and
// admission layers) records the quantities its asymptotics depend on,
// so a slow request explains itself without a profiler.
type CostKind int

const (
	// ParseBytes counts input bytes consumed by the parser.
	ParseBytes CostKind = iota

	// NormComponentsMerged counts components merged by Normalize's
	// dependent-component cross products (incl. incremental renorm).
	NormComponentsMerged
	// NormVerticalSplits counts tuple-level components rewritten into
	// attribute-level templates by the counting-certificate rule.
	NormVerticalSplits
	// NormCertainFolds counts single-alternative components folded into
	// the certain component.
	NormCertainFolds

	// UpdateTouchedComponents counts components rebuilt by an update's
	// incremental renormalization (the op's own groups plus the
	// overlap-closure pulls); UpdateSurvivorComponents counts the
	// components that passed through by value, sharing their
	// alternative lists with the pre-update snapshot.
	UpdateTouchedComponents
	UpdateSurvivorComponents
	// UpdateCOWUnshares counts copy-on-write unshare events (the fact
	// table or the component headers being deep-copied on first write).
	UpdateCOWUnshares

	// EvalComponents is the input decomposition's component count seen
	// by wsdalg.Eval (the components visited to build choice units).
	EvalComponents
	// EvalParts counts decomposed-relation parts built while evaluating
	// the algebra expression tree.
	EvalParts
	// EvalAltsTabulated counts joint alternatives enumerated by the
	// odometer (join tabulation and final component assembly).
	EvalAltsTabulated
	// EvalMergeSpaceMax is the largest joint alternative space any
	// single assembly needed (max semantics — record via Max). The
	// headroom against wsd.MaxMergeAlts is the distance to ErrEntangled.
	EvalMergeSpaceMax

	// DecideShards counts enumeration shards spawned by the parallel
	// valuation searches; DecideCancels counts searches that were
	// cancelled early (a witness in one shard aborting the rest);
	// DecideValuations counts valuations visited; DecideWitnessDepth is
	// the visit count at which the (first) witness was found (max
	// semantics).
	DecideShards
	DecideCancels
	DecideValuations
	DecideWitnessDepth

	// CacheHits/CacheMisses count answer-cache outcomes for this
	// request; CoalescedWaits counts evaluations this request
	// piggybacked on instead of running; SemWaitNanos is time spent
	// queued on the admission semaphore.
	CacheHits
	CacheMisses
	CoalescedWaits
	SemWaitNanos

	numCostKinds
)

// costNames is the canonical counter naming scheme (snake_case, layer
// prefix) used in trace JSON, slow-query log lines, and DESIGN.md.
var costNames = [numCostKinds]string{
	"parse_bytes",
	"norm_components_merged",
	"norm_vertical_splits",
	"norm_certain_folds",
	"update_touched_components",
	"update_survivor_components",
	"update_cow_unshares",
	"eval_components",
	"eval_parts",
	"eval_alts_tabulated",
	"eval_merge_space_max",
	"decide_shards",
	"decide_cancels",
	"decide_valuations",
	"decide_witness_depth",
	"cache_hits",
	"cache_misses",
	"coalesced_waits",
	"sem_wait_ns",
}

// String returns the counter's canonical name.
func (k CostKind) String() string {
	if k < 0 || k >= numCostKinds {
		return fmt.Sprintf("cost(%d)", int(k))
	}
	return costNames[k]
}

// Cost is one request's cost-accounting sink: a fixed array of atomic
// counters, one per CostKind. All methods are safe on a nil *Cost (they
// record nothing and read zero), so instrumented code threads a
// possibly-nil sink without branching at every call site. Counters are
// int64 and atomic: a request's evaluation may fan out across worker
// goroutines that record concurrently.
type Cost struct {
	c [numCostKinds]atomic.Int64
}

// NewCost returns a zeroed cost sink.
func NewCost() *Cost { return &Cost{} }

// Add adds n to the counter and returns its new value. On a nil
// receiver it records nothing and returns 0.
func (c *Cost) Add(k CostKind, n int64) int64 {
	if c == nil {
		return 0
	}
	return c.c[k].Add(n)
}

// Max raises the counter to n if n is larger (for high-water-mark
// counters like EvalMergeSpaceMax and DecideWitnessDepth).
func (c *Cost) Max(k CostKind, n int64) {
	if c == nil {
		return
	}
	for {
		cur := c.c[k].Load()
		if n <= cur || c.c[k].CompareAndSwap(cur, n) {
			return
		}
	}
}

// Get reads one counter (0 on a nil receiver).
func (c *Cost) Get(k CostKind) int64 {
	if c == nil {
		return 0
	}
	return c.c[k].Load()
}

// Counters snapshots the nonzero counters as a name → value map — the
// shape embedded in traced JSON responses.
func (c *Cost) Counters() map[string]int64 {
	if c == nil {
		return nil
	}
	m := make(map[string]int64)
	for k := CostKind(0); k < numCostKinds; k++ {
		if v := c.c[k].Load(); v != 0 {
			m[costNames[k]] = v
		}
	}
	return m
}

// CostSnapshot is a point-in-time copy of a Cost's counters: a plain
// value with no atomics, cheap to store (the flight recorder keeps one
// per ring slot) and to diff (plan nodes subtract two snapshots to
// attribute Normalize work).
type CostSnapshot [numCostKinds]int64

// Get reads one counter from the snapshot.
func (s CostSnapshot) Get(k CostKind) int64 {
	if k < 0 || k >= numCostKinds {
		return 0
	}
	return s[k]
}

// Counters converts the snapshot to the name → value map shape used in
// JSON responses, dropping zero counters. Nil when nothing fired.
func (s CostSnapshot) Counters() map[string]int64 {
	var m map[string]int64
	for k := CostKind(0); k < numCostKinds; k++ {
		if s[k] != 0 {
			if m == nil {
				m = make(map[string]int64)
			}
			m[costNames[k]] = s[k]
		}
	}
	return m
}

// Snapshot copies the current counter values (zero value on a nil
// receiver).
func (c *Cost) Snapshot() CostSnapshot {
	var s CostSnapshot
	if c == nil {
		return s
	}
	for k := CostKind(0); k < numCostKinds; k++ {
		s[k] = c.c[k].Load()
	}
	return s
}

// AddSnapshot folds a snapshot into the sink, respecting each counter's
// semantics: high-water-mark kinds (EvalMergeSpaceMax,
// DecideWitnessDepth) merge via Max, everything else is additive. This
// is how an evaluation run against a private Cost (so its counters can
// be reported exactly, e.g. in a Plan) is reconciled into the
// request-wide sink afterwards.
func (c *Cost) AddSnapshot(s CostSnapshot) {
	if c == nil {
		return
	}
	for k := CostKind(0); k < numCostKinds; k++ {
		if s[k] == 0 {
			continue
		}
		switch k {
		case EvalMergeSpaceMax, DecideWitnessDepth:
			c.Max(k, s[k])
		default:
			c.Add(k, s[k])
		}
	}
}

// String renders the nonzero counters as "name=value ..." in name
// order — the slow-query-log shape. Empty string when nothing fired.
func (c *Cost) String() string {
	m := c.Counters()
	if len(m) == 0 {
		return ""
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, m[n])
	}
	return b.String()
}
