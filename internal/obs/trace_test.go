package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceNil(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Root() != nil || tr.Cost() != nil || tr.Tree() != nil {
		t.Error("nil trace accessors must return zero values")
	}
	tr.Finish() // no panic
	var sb strings.Builder
	tr.WriteText(&sb)
	if sb.Len() != 0 {
		t.Errorf("nil WriteText wrote %q", sb.String())
	}
	// Nil spans chain through child creation and End.
	var sp *Span
	if sp.StartChild("x") != nil {
		t.Error("nil span StartChild must return nil")
	}
	sp.End()
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace("cert-ans", "req-1")
	if got := tr.ID(); got != "req-1" {
		t.Errorf("ID = %q, want req-1", got)
	}
	parse := tr.Root().StartChild("parse")
	parse.End()
	eval := tr.Root().StartChild("eval")
	tab := eval.StartChild("tabulate")
	tab.End()
	eval.End()
	tr.Cost().Add(EvalParts, 2)
	tr.Finish()

	n := tr.Tree()
	if n.Name != "cert-ans" {
		t.Fatalf("root name = %q", n.Name)
	}
	if len(n.Children) != 2 || n.Children[0].Name != "parse" || n.Children[1].Name != "eval" {
		t.Fatalf("children = %+v, want [parse eval]", n.Children)
	}
	if len(n.Children[1].Children) != 1 || n.Children[1].Children[0].Name != "tabulate" {
		t.Fatalf("eval children = %+v, want [tabulate]", n.Children[1].Children)
	}
	if n.DurUS < 0 || n.Children[0].StartUS < 0 {
		t.Errorf("negative timings: %+v", n)
	}

	var sb strings.Builder
	tr.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"cert-ans ", "\n  parse ", "\n  eval ", "\n    tabulate ", "cost: eval_parts=2\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceContext(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Errorf("FromContext(empty) = %v, want nil", got)
	}
	tr := NewTrace("q", "id")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Errorf("FromContext = %v, want the installed trace", got)
	}
}

// Spans may be started from worker goroutines concurrently.
func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTrace("q", "id")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				tr.Root().StartChild("w").End()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	tr.Finish()
	if got := len(tr.Tree().Children); got != 800 {
		t.Errorf("children = %d, want 800", got)
	}
}

// TestSpanSetError: error classes stick to spans (first writer wins),
// survive into the tree, and render with a ! marker.
func TestSpanSetError(t *testing.T) {
	var nilSpan *Span
	nilSpan.SetError("x") // no panic

	tr := NewTrace("cert-ans", "req-9")
	eval := tr.Root().StartChild("eval")
	eval.SetError("unsupported")
	eval.SetError("shadowed") // first class wins
	eval.End()
	tr.Root().SetError("unsupported")
	tr.Finish()

	n := tr.Tree()
	if n.Error != "unsupported" || n.Children[0].Error != "unsupported" {
		t.Fatalf("error classes lost: root=%q eval=%q", n.Error, n.Children[0].Error)
	}
	var sb strings.Builder
	tr.WriteText(&sb)
	if !strings.Contains(sb.String(), "!unsupported") {
		t.Errorf("rendered trace missing !unsupported marker:\n%s", sb.String())
	}
}

// TestWriteTextTruncation: the text renderer bounds both depth and
// fan-out so a pathological span tree cannot flood a terminal; the JSON
// tree stays complete.
func TestWriteTextTruncation(t *testing.T) {
	tr := NewTrace("deep", "id")
	sp := tr.Root()
	const depth = 40
	for i := 0; i < depth; i++ {
		sp = sp.StartChild("d")
	}
	tr.Finish()
	var sb strings.Builder
	tr.WriteText(&sb)
	out := sb.String()
	if got := strings.Count(out, "\n"); got > maxRenderDepth+3 {
		t.Errorf("deep render emitted %d lines, want ≤ %d", got, maxRenderDepth+3)
	}
	if !strings.Contains(out, "deeper)") {
		t.Errorf("deep render missing elision marker:\n%s", out)
	}
	// The full chain survives in the JSON tree.
	n, levels := tr.Tree(), 0
	for ; n != nil; n = firstChild(n) {
		levels++
	}
	if levels != depth+1 {
		t.Errorf("JSON tree has %d levels, want %d", levels, depth+1)
	}

	wide := NewTrace("wide", "id")
	for i := 0; i < 100; i++ {
		wide.Root().StartChild("w").End()
	}
	wide.Finish()
	sb.Reset()
	wide.WriteText(&sb)
	out = sb.String()
	if got := strings.Count(out, "\n  w "); got != maxRenderChildren {
		t.Errorf("wide render shows %d children, want %d", got, maxRenderChildren)
	}
	if !strings.Contains(out, "(+68 more)") {
		t.Errorf("wide render missing elision marker:\n%s", out)
	}
	if got := len(wide.Tree().Children); got != 100 {
		t.Errorf("JSON tree has %d children, want 100", got)
	}
}

func firstChild(n *SpanNode) *SpanNode {
	if len(n.Children) == 0 {
		return nil
	}
	return n.Children[0]
}
