package obs

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one timed region of a traced request. Spans form a tree under
// the trace root; children may be started from worker goroutines (the
// child list is mutex-guarded). All methods are nil-receiver safe, so
// untraced call paths thread nil spans for free.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	errClass string
	children []*Span
}

func newSpan(name string) *Span { return &Span{name: name, start: time.Now()} }

// StartChild opens a child span. On a nil receiver it returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span. Safe on a nil receiver; double-End keeps the
// first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetError annotates the span with an error class (e.g. "entangled",
// "unsupported"). The span still times and closes normally — errors
// mark the tree, they never abandon it. Safe on a nil receiver; the
// first class wins on repeat calls.
func (s *Span) SetError(class string) {
	if s == nil || class == "" {
		return
	}
	s.mu.Lock()
	if s.errClass == "" {
		s.errClass = class
	}
	s.mu.Unlock()
}

// SpanNode is the JSON shape of a finished span tree: name, start
// offset and duration in microseconds, an optional error class, nested
// children. It is embedded in ?trace=1 query responses.
type SpanNode struct {
	Name     string      `json:"name"`
	StartUS  int64       `json:"start_us"`
	DurUS    int64       `json:"us"`
	Error    string      `json:"error,omitempty"`
	Children []*SpanNode `json:"children,omitempty"`
}

// node renders the span subtree relative to the trace epoch. An
// unfinished span reads as ended now.
func (s *Span) node(epoch time.Time) *SpanNode {
	s.mu.Lock()
	end := s.end
	errClass := s.errClass
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if end.IsZero() {
		end = time.Now()
	}
	n := &SpanNode{
		Name:    s.name,
		StartUS: s.start.Sub(epoch).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Error:   errClass,
	}
	for _, c := range children {
		n.Children = append(n.Children, c.node(epoch))
	}
	return n
}

// Trace is one request's trace: a span tree plus a Cost sink plus a
// request ID. A nil *Trace is the untraced request — every method
// degrades to a no-op or nil, so call sites need no branching.
type Trace struct {
	id   string
	root *Span
	cost *Cost
}

// NewTrace starts a trace whose root span is already running.
func NewTrace(name, id string) *Trace {
	return &Trace{id: id, root: newSpan(name), cost: NewCost()}
}

// ID reports the request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on a nil trace), the parent for
// request-phase children.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Cost returns the trace's cost sink (nil on a nil trace).
func (t *Trace) Cost() *Cost {
	if t == nil {
		return nil
	}
	return t.cost
}

// Finish ends the root span.
func (t *Trace) Finish() { t.Root().End() }

// Tree renders the finished span tree (nil on a nil trace).
func (t *Trace) Tree() *SpanNode {
	if t == nil {
		return nil
	}
	return t.root.node(t.root.start)
}

// Renderer bounds: a span tree is for human eyes, so WriteText clips
// pathological shapes instead of flooding the terminal. Deeper subtrees
// render as a "... (N deeper)" marker, and only the first
// maxRenderChildren children of any node are listed, followed by a
// "... (+N more)" marker. The JSON Tree() shape is never truncated.
const (
	maxRenderDepth    = 16
	maxRenderChildren = 32
)

// countNodes reports the size of a span subtree (for the depth marker).
func countNodes(n *SpanNode) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// WriteText renders the span tree and the nonzero cost counters as
// indented text — the pwq -trace / debugging shape. Error-marked spans
// carry a trailing "!class". Trees deeper than maxRenderDepth or wider
// than maxRenderChildren per node are clipped with "..." markers.
func (t *Trace) WriteText(w io.Writer) {
	if t == nil {
		return
	}
	indent := func(depth int) {
		for i := 0; i < depth; i++ {
			io.WriteString(w, "  ")
		}
	}
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		indent(depth)
		if n.Error != "" {
			fmt.Fprintf(w, "%s %dus (+%dus) !%s\n", n.Name, n.DurUS, n.StartUS, n.Error)
		} else {
			fmt.Fprintf(w, "%s %dus (+%dus)\n", n.Name, n.DurUS, n.StartUS)
		}
		if len(n.Children) == 0 {
			return
		}
		if depth+1 >= maxRenderDepth {
			hidden := 0
			for _, c := range n.Children {
				hidden += countNodes(c)
			}
			indent(depth + 1)
			fmt.Fprintf(w, "... (%d deeper)\n", hidden)
			return
		}
		shown := n.Children
		if len(shown) > maxRenderChildren {
			shown = shown[:maxRenderChildren]
		}
		for _, c := range shown {
			walk(c, depth+1)
		}
		if hidden := len(n.Children) - len(shown); hidden > 0 {
			indent(depth + 1)
			fmt.Fprintf(w, "... (+%d more)\n", hidden)
		}
	}
	walk(t.Tree(), 0)
	if s := t.cost.String(); s != "" {
		fmt.Fprintf(w, "cost: %s\n", s)
	}
}

type ctxKey struct{}

// NewContext returns a context carrying the trace; FromContext recovers
// it (nil when absent). This is the per-query propagation path for
// layers that already thread a context.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the trace installed by NewContext, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
