package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. Increments are
// single atomic adds; the value wraps around on uint64 overflow (the
// Prometheus convention — scrapers treat a decrease as a counter
// reset), which the overflow tests pin.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (wrapping on overflow).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set stores n; Add adjusts by delta; Value reads.
func (g *Gauge) Set(n int64)   { g.v.Store(n) }
func (g *Gauge) Add(n int64)   { g.v.Add(n) }
func (g *Gauge) Value() int64  { return g.v.Load() }

// Histogram is a fixed-bucket histogram: counts per upper bound (le,
// inclusive — an observation equal to a boundary lands in that bucket)
// plus a +Inf overflow bucket, a running sum, and a count. Observe is
// two atomic adds and one float CAS loop; bucket search is a linear
// scan over the (small, fixed) bound list.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// DefTimeBuckets are the default latency buckets in seconds: 1µs to 5s,
// wide enough for both the microsecond decomposition probes and queued
// heavy containment queries.
var DefTimeBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5,
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total observation count; Sum the observation sum.
func (h *Histogram) Count() uint64 { return h.count.Load() }
func (h *Histogram) Sum() float64  { return math.Float64frombits(h.sumBits.Load()) }

// BucketCount reads the raw (non-cumulative) count of bucket i, where
// i == len(bounds) is the +Inf bucket.
func (h *Histogram) BucketCount(i int) uint64 { return h.counts[i].Load() }

// MaxVecSeries bounds the number of distinct label combinations one
// CounterVec/HistogramVec will materialize. Label values often come
// from request data (db names, op strings); without a bound a hostile
// or buggy client could grow the exposition without limit. Once the cap
// is reached, further new combinations all collapse into a single
// reserved series whose every label value is "overflow" — existing
// series keep counting normally, and the overflow series makes the
// cardinality blowout itself visible in the exposition.
const MaxVecSeries = 256

// vecOverflow is the label value of the collapsed overflow series.
const vecOverflow = "overflow"

// vec is the shared label-series machinery of CounterVec/HistogramVec:
// a lock-free read path (sync.Map keyed by joined label values) over
// lazily created series, bounded at MaxVecSeries distinct combinations.
type vec struct {
	labels []string
	m      sync.Map // joined values -> *series
	n      atomic.Int64
}

type series struct {
	values []string
	metric any // *Counter or *Histogram
}

func vecKey(values []string) string { return strings.Join(values, "\xff") }

func (v *vec) with(values []string, mk func() any) any {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := vecKey(values)
	if s, ok := v.m.Load(key); ok {
		return s.(*series).metric
	}
	// New combination: admit it only under the cardinality cap,
	// otherwise redirect to the shared overflow series. The count is
	// approximate under races (two goroutines can admit the 256th
	// series concurrently); the bound only needs to hold within a small
	// constant, not exactly.
	if v.n.Load() >= MaxVecSeries {
		ov := make([]string, len(v.labels))
		for i := range ov {
			ov[i] = vecOverflow
		}
		key = vecKey(ov)
		if s, ok := v.m.Load(key); ok {
			return s.(*series).metric
		}
		s, _ := v.m.LoadOrStore(key, &series{values: ov, metric: mk()})
		return s.(*series).metric
	}
	s, loaded := v.m.LoadOrStore(key, &series{values: append([]string(nil), values...), metric: mk()})
	if !loaded {
		v.n.Add(1)
	}
	return s.(*series).metric
}

// sorted snapshots the series in label-value order (deterministic
// exposition).
func (v *vec) sorted() []*series {
	var out []*series
	v.m.Range(func(_, s any) bool {
		out = append(out, s.(*series))
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		return vecKey(out[i].values) < vecKey(out[j].values)
	})
	return out
}

// CounterVec is a counter family with labels. With resolves one labeled
// Counter; hot paths should resolve once and keep the handle.
type CounterVec struct{ vec }

// With returns the counter for the given label values (created on
// first use).
func (c *CounterVec) With(values ...string) *Counter {
	return c.with(values, func() any { return &Counter{} }).(*Counter)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	vec
	bounds []float64
}

// With returns the histogram for the given label values.
func (h *HistogramVec) With(values ...string) *Histogram {
	return h.with(values, func() any { return newHistogram(h.bounds) }).(*Histogram)
}

// family is one registered metric family.
type family struct {
	name, help, typ string
	counter         *Counter
	gauge           *Gauge
	gaugeFn         func() float64
	hist            *Histogram
	counterVec      *CounterVec
	histVec         *HistogramVec
}

// Registry holds metric families and writes them in the Prometheus text
// exposition format, in registration order with label series sorted.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	names map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: map[string]bool{}} }

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic("obs: duplicate metric " + f.name)
	}
	r.names[f.name] = true
	r.fams = append(r.fams, f)
}

// Counter registers and returns a label-free counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// Gauge registers and returns a label-free gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", gaugeFn: fn})
}

// Histogram registers a label-free histogram with the given upper
// bounds (DefTimeBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefTimeBuckets
	}
	h := newHistogram(bounds)
	r.register(&family{name: name, help: help, typ: "histogram", hist: h})
	return h
}

// CounterVec registers a counter family with the given label keys.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	c := &CounterVec{vec{labels: append([]string(nil), labels...)}}
	r.register(&family{name: name, help: help, typ: "counter", counterVec: c})
	return c
}

// HistogramVec registers a histogram family with the given label keys.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefTimeBuckets
	}
	h := &HistogramVec{vec: vec{labels: append([]string(nil), labels...)}, bounds: bounds}
	r.register(&family{name: name, help: help, typ: "histogram", histVec: h})
	return h
}

// Label is one label key/value pair of a Series.
type Label struct{ Key, Value string }

// Series is one sample of a dynamically written family (WriteFamily):
// label pairs plus a value.
type Series struct {
	Labels []Label
	Value  float64
}

// WriteFamily writes one metric family in the Prometheus text format —
// the low-level hook for families whose series are computed at scrape
// time (per-database gauges). Series are written in the given order.
func WriteFamily(w io.Writer, name, typ, help string, series ...Series) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	for _, s := range series {
		writeSample(w, name, s.Labels, s.Value)
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w io.Writer, name string, labels []Label, v float64) {
	io.WriteString(w, name)
	if len(labels) > 0 {
		io.WriteString(w, "{")
		for i, l := range labels {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, `%s="%s"`, l.Key, escapeLabel(l.Value))
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatValue(v))
	io.WriteString(w, "\n")
}

func labelsOf(keys, values []string) []Label {
	out := make([]Label, len(keys))
	for i := range keys {
		out[i] = Label{Key: keys[i], Value: values[i]}
	}
	return out
}

func writeHistogram(w io.Writer, name string, labels []Label, h *Histogram) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := append(append([]Label(nil), labels...), Label{Key: "le", Value: formatBound(b)})
		writeSample(w, name+"_bucket", le, float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	le := append(append([]Label(nil), labels...), Label{Key: "le", Value: "+Inf"})
	writeSample(w, name+"_bucket", le, float64(cum))
	writeSample(w, name+"_sum", labels, h.Sum())
	writeSample(w, name+"_count", labels, float64(cum))
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// WritePrometheus writes every registered family in the text exposition
// format (version 0.0.4). Output is deterministic: families in
// registration order, label series sorted by label values.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		switch {
		case f.counter != nil:
			writeSample(w, f.name, nil, float64(f.counter.Value()))
		case f.gauge != nil:
			writeSample(w, f.name, nil, float64(f.gauge.Value()))
		case f.gaugeFn != nil:
			writeSample(w, f.name, nil, f.gaugeFn())
		case f.hist != nil:
			writeHistogram(w, f.name, nil, f.hist)
		case f.counterVec != nil:
			for _, s := range f.counterVec.sorted() {
				writeSample(w, f.name, labelsOf(f.counterVec.labels, s.values), float64(s.metric.(*Counter).Value()))
			}
		case f.histVec != nil:
			for _, s := range f.histVec.sorted() {
				writeHistogram(w, f.name, labelsOf(f.histVec.labels, s.values), s.metric.(*Histogram))
			}
		}
	}
}
