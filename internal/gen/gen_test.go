package gen

import (
	"strings"
	"testing"

	"pw/internal/cond"
	"pw/internal/table"
	"pw/internal/worlds"
)

func TestCoddTableIsCodd(t *testing.T) {
	tb := CoddTable(1, "T", 20, 3, 5, 0.4)
	if got := tb.Kind(); got != table.KindCodd {
		t.Errorf("kind = %v, want table", got)
	}
	if len(tb.Rows) != 20 || tb.Arity != 3 {
		t.Error("dimensions wrong")
	}
}

func TestETableKind(t *testing.T) {
	tb := ETable(2, "T", 30, 2, 5, 3, 0.6)
	k := tb.Kind()
	if k != table.KindE && k != table.KindCodd {
		t.Errorf("kind = %v, want e-table (or degenerate table)", k)
	}
}

func TestITableKind(t *testing.T) {
	tb := ITable(3, "T", 20, 2, 5, 4, 0.5)
	k := tb.Kind()
	if k != table.KindI && k != table.KindCodd {
		t.Errorf("kind = %v, want i-table", k)
	}
}

func TestCTableKind(t *testing.T) {
	tb := CTable(4, "T", 20, 2, 5, 4, 0.5, 1.0)
	if got := tb.Kind(); got != table.KindC {
		t.Errorf("kind = %v, want c-table", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := CoddTable(7, "T", 10, 2, 5, 0.5)
	b := CoddTable(7, "T", 10, 2, 5, 0.5)
	if a.String() != b.String() {
		t.Error("same seed must give identical tables")
	}
	c := CoddTable(8, "T", 10, 2, 5, 0.5)
	if a.String() == c.String() {
		t.Error("different seeds should differ (overwhelmingly)")
	}
}

func TestMemberInstanceIsMember(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tb := CoddTable(seed, "T", 4, 2, 4, 0.5)
		d := table.DB(tb)
		i, ok := MemberInstance(seed, d)
		if !ok {
			t.Fatalf("seed %d: no member instance found", seed)
		}
		if !worlds.Member(i, d) {
			t.Errorf("seed %d: generated instance is not a member", seed)
		}
	}
}

func TestMemberInstanceUnsatisfiableGlobal(t *testing.T) {
	tb := CoddTable(1, "T", 2, 2, 4, 0.5)
	d := table.DB(tb)
	// Force an unsatisfiable global condition.
	d2, _ := worldsafeUnsat(d)
	if _, ok := MemberInstance(1, d2); ok {
		t.Error("no world exists, MemberInstance must report not-ok")
	}
}

// worldsafeUnsat clones d with a contradictory global condition.
func worldsafeUnsat(d *table.Database) (*table.Database, bool) {
	c := d.Clone()
	t := c.Tables()[0]
	t.Global = append(t.Global, cond.False())
	return c, true
}

func TestPerturbedInstanceDiffers(t *testing.T) {
	tb := CoddTable(5, "T", 5, 2, 4, 0.3)
	d := table.DB(tb)
	i, ok := MemberInstance(5, d)
	if !ok {
		t.Skip("no member sample")
	}
	p, ok := PerturbedInstance(5, i)
	if !ok {
		t.Skip("empty instance")
	}
	if p.Equal(i) {
		t.Error("perturbation must change the instance")
	}
	if p.Size() != i.Size()+1 {
		t.Errorf("perturbation should add one junk fact: %d vs %d", p.Size(), i.Size())
	}
}

// TestRandomPositiveQueryDeterministicAndValid: the paired query
// generator of the wsdalg differential suite is deterministic in the
// seed, always schema-valid, and always in the positive fragment.
func TestRandomPositiveQueryDeterministicAndValid(t *testing.T) {
	schema := table.Schema{{Name: "R", Arity: 2}, {Name: "S", Arity: 1}}
	for seed := int64(1); seed <= 64; seed++ {
		q1 := RandomPositiveQuery(seed, schema, 4, 3)
		q2 := RandomPositiveQuery(seed, schema, 4, 3)
		if len(q1.Outs) != len(q2.Outs) {
			t.Fatalf("seed %d: out counts differ", seed)
		}
		for i := range q1.Outs {
			if q1.Outs[i].Name != q2.Outs[i].Name || q1.Outs[i].Expr.String() != q2.Outs[i].Expr.String() {
				t.Fatalf("seed %d: regeneration differs:\n%s\nvs\n%s",
					seed, q1.Outs[i].Expr, q2.Outs[i].Expr)
			}
			if !q1.Outs[i].Expr.Positive() {
				t.Fatalf("seed %d: non-positive expression %s", seed, q1.Outs[i].Expr)
			}
			if _, err := q1.Outs[i].Expr.Schema(); err != nil {
				t.Fatalf("seed %d: invalid schema: %v", seed, err)
			}
		}
	}
	// Distinct seeds produce distinct queries often enough to be useful.
	distinct := map[string]bool{}
	for seed := int64(1); seed <= 32; seed++ {
		q := RandomPositiveQuery(seed, schema, 4, 3)
		distinct[q.Outs[0].Expr.String()] = true
	}
	if len(distinct) < 16 {
		t.Errorf("only %d distinct expressions across 32 seeds", len(distinct))
	}
}

func TestRandomPositiveQueryArityBound(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("arity beyond the column pool must panic with a clear message")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "arity") {
			t.Fatalf("panic %v should name the arity bound", r)
		}
	}()
	RandomPositiveQuery(1, table.Schema{{Name: "R", Arity: 9}}, 2, 0)
}
