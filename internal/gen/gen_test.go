package gen

import (
	"testing"

	"pw/internal/cond"
	"pw/internal/table"
	"pw/internal/worlds"
)

func TestCoddTableIsCodd(t *testing.T) {
	tb := CoddTable(1, "T", 20, 3, 5, 0.4)
	if got := tb.Kind(); got != table.KindCodd {
		t.Errorf("kind = %v, want table", got)
	}
	if len(tb.Rows) != 20 || tb.Arity != 3 {
		t.Error("dimensions wrong")
	}
}

func TestETableKind(t *testing.T) {
	tb := ETable(2, "T", 30, 2, 5, 3, 0.6)
	k := tb.Kind()
	if k != table.KindE && k != table.KindCodd {
		t.Errorf("kind = %v, want e-table (or degenerate table)", k)
	}
}

func TestITableKind(t *testing.T) {
	tb := ITable(3, "T", 20, 2, 5, 4, 0.5)
	k := tb.Kind()
	if k != table.KindI && k != table.KindCodd {
		t.Errorf("kind = %v, want i-table", k)
	}
}

func TestCTableKind(t *testing.T) {
	tb := CTable(4, "T", 20, 2, 5, 4, 0.5, 1.0)
	if got := tb.Kind(); got != table.KindC {
		t.Errorf("kind = %v, want c-table", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := CoddTable(7, "T", 10, 2, 5, 0.5)
	b := CoddTable(7, "T", 10, 2, 5, 0.5)
	if a.String() != b.String() {
		t.Error("same seed must give identical tables")
	}
	c := CoddTable(8, "T", 10, 2, 5, 0.5)
	if a.String() == c.String() {
		t.Error("different seeds should differ (overwhelmingly)")
	}
}

func TestMemberInstanceIsMember(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tb := CoddTable(seed, "T", 4, 2, 4, 0.5)
		d := table.DB(tb)
		i, ok := MemberInstance(seed, d)
		if !ok {
			t.Fatalf("seed %d: no member instance found", seed)
		}
		if !worlds.Member(i, d) {
			t.Errorf("seed %d: generated instance is not a member", seed)
		}
	}
}

func TestMemberInstanceUnsatisfiableGlobal(t *testing.T) {
	tb := CoddTable(1, "T", 2, 2, 4, 0.5)
	d := table.DB(tb)
	// Force an unsatisfiable global condition.
	d2, _ := worldsafeUnsat(d)
	if _, ok := MemberInstance(1, d2); ok {
		t.Error("no world exists, MemberInstance must report not-ok")
	}
}

// worldsafeUnsat clones d with a contradictory global condition.
func worldsafeUnsat(d *table.Database) (*table.Database, bool) {
	c := d.Clone()
	t := c.Tables()[0]
	t.Global = append(t.Global, cond.False())
	return c, true
}

func TestPerturbedInstanceDiffers(t *testing.T) {
	tb := CoddTable(5, "T", 5, 2, 4, 0.3)
	d := table.DB(tb)
	i, ok := MemberInstance(5, d)
	if !ok {
		t.Skip("no member sample")
	}
	p, ok := PerturbedInstance(5, i)
	if !ok {
		t.Skip("empty instance")
	}
	if p.Equal(i) {
		t.Error("perturbation must change the instance")
	}
	if p.Size() != i.Size()+1 {
		t.Errorf("perturbation should add one junk fact: %d vs %d", p.Size(), i.Size())
	}
}
