// Package gen generates random workloads for benchmarks and property
// tests: tables of every kind with tunable size and null density, matching
// member instances (by sampling a valuation), and near-miss instances
// (members with one fact perturbed). All generation is seeded and
// deterministic.
package gen

import (
	"fmt"
	"math/rand"

	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/valuation"
	"pw/internal/value"
	"pw/internal/wsd"
)

// Config tunes the random table generator.
type Config struct {
	Rows        int     // number of rows
	Arity       int     // tuple width
	Consts      int     // size of the constant pool
	NullDensity float64 // probability that a cell is a variable
	VarPool     int     // for e/g/c-tables: number of distinct variables to draw from (0 = all fresh, Codd style)
	NeqAtoms    int     // global inequality atoms (i/g/c-tables)
	LocalConds  float64 // probability that a row gets a local condition (c-tables)
	Seed        int64
}

// Generator produces tables and instances from a Config.
type Generator struct {
	cfg Config
	rng *rand.Rand
	nv  int
}

// New returns a generator for the configuration.
func New(cfg Config) *Generator {
	if cfg.Arity == 0 {
		cfg.Arity = 2
	}
	if cfg.Consts == 0 {
		cfg.Consts = 8
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (g *Generator) constant() value.Value {
	return value.Const(fmt.Sprintf("c%d", g.rng.Intn(g.cfg.Consts)))
}

func (g *Generator) variable() value.Value {
	if g.cfg.VarPool > 0 {
		return value.Var(fmt.Sprintf("v%d", g.rng.Intn(g.cfg.VarPool)))
	}
	g.nv++
	return value.Var(fmt.Sprintf("v%d", g.nv))
}

func (g *Generator) cell() value.Value {
	if g.rng.Float64() < g.cfg.NullDensity {
		return g.variable()
	}
	return g.constant()
}

// Table generates one random table named name.
func (g *Generator) Table(name string) *table.Table {
	t := table.New(name, g.cfg.Arity)
	for i := 0; i < g.cfg.Rows; i++ {
		vals := make(value.Tuple, g.cfg.Arity)
		for j := range vals {
			vals[j] = g.cell()
		}
		row := table.Row{Values: vals}
		if g.rng.Float64() < g.cfg.LocalConds {
			row.Cond = cond.Conj(g.atom())
		}
		t.Add(row)
	}
	for i := 0; i < g.cfg.NeqAtoms; i++ {
		t.Global = append(t.Global, cond.NeqAtom(g.anyValue(), g.anyValue()))
	}
	return t
}

func (g *Generator) anyValue() value.Value {
	if g.rng.Intn(2) == 0 {
		return g.constant()
	}
	return g.variable()
}

func (g *Generator) atom() cond.Atom {
	op := cond.Eq
	if g.rng.Intn(2) == 0 {
		op = cond.Neq
	}
	return cond.Atom{Op: op, L: g.anyValue(), R: g.anyValue()}
}

// CoddTable generates a Codd-table: every variable occurrence fresh, no
// conditions.
func CoddTable(seed int64, name string, rows, arity, consts int, nullDensity float64) *table.Table {
	g := New(Config{Rows: rows, Arity: arity, Consts: consts,
		NullDensity: nullDensity, Seed: seed})
	return g.Table(name)
}

// ETable generates an e-table: repeated variables from a pool, no
// conditions.
func ETable(seed int64, name string, rows, arity, consts, varPool int, nullDensity float64) *table.Table {
	g := New(Config{Rows: rows, Arity: arity, Consts: consts,
		NullDensity: nullDensity, VarPool: varPool, Seed: seed})
	return g.Table(name)
}

// ITable generates an i-table: fresh variables plus global inequalities.
func ITable(seed int64, name string, rows, arity, consts, neqAtoms int, nullDensity float64) *table.Table {
	g := New(Config{Rows: rows, Arity: arity, Consts: consts,
		NullDensity: nullDensity, NeqAtoms: neqAtoms, Seed: seed})
	t := g.Table(name)
	// Rebuild the global over variables that actually occur in rows, so
	// the inequalities bite.
	vars := t.Vars(nil, map[string]bool{})
	t.Global = nil
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < neqAtoms && len(vars) > 0; i++ {
		l := value.Var(vars[rng.Intn(len(vars))])
		var r value.Value
		if rng.Intn(2) == 0 && len(vars) > 1 {
			r = value.Var(vars[rng.Intn(len(vars))])
		} else {
			r = value.Const(fmt.Sprintf("c%d", rng.Intn(consts)))
		}
		t.Global = append(t.Global, cond.NeqAtom(l, r))
	}
	return t
}

// CTable generates a c-table with local conditions.
func CTable(seed int64, name string, rows, arity, consts, varPool int, nullDensity, localConds float64) *table.Table {
	g := New(Config{Rows: rows, Arity: arity, Consts: consts,
		NullDensity: nullDensity, VarPool: varPool, LocalConds: localConds, Seed: seed})
	return g.Table(name)
}

// MemberInstance samples a world of d (by drawing a random satisfying-ish
// valuation and retrying) and returns it; ok is false if no world was
// found within the attempt budget — callers should treat that as "skip".
func MemberInstance(seed int64, d *table.Database) (*rel.Instance, bool) {
	rng := rand.New(rand.NewSource(seed))
	u := d.Universe()
	consts := d.ConstIDs(nil, map[sym.ID]bool{})
	prefix := table.FreshPrefixIDs(consts)
	domain := append([]sym.ID(nil), consts...)
	for i := 0; i < u.Len(); i++ {
		domain = append(domain, sym.Const(fmt.Sprintf("%s%d", prefix, i)))
	}
	if len(domain) == 0 {
		domain = []sym.ID{sym.Const("c0")}
	}
	for attempt := 0; attempt < 64; attempt++ {
		v := valuation.Make(u)
		for s := range v.Vals {
			v.Vals[s] = domain[rng.Intn(len(domain))]
		}
		if w := v.Database(d); w != nil {
			return w, true
		}
	}
	return nil, false
}

// PerturbedInstance returns a copy of i with one fact replaced by a fresh
// fact over a junk constant — a near-miss workload for negative
// membership tests. The second return is false when i is empty.
func PerturbedInstance(seed int64, i *rel.Instance) (*rel.Instance, bool) {
	out := i.Clone()
	for _, r := range out.Relations() {
		fs := r.Facts()
		if len(fs) == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(seed))
		f := fs[rng.Intn(len(fs))].Clone()
		f[rng.Intn(len(f))] = fmt.Sprintf("junk%d", rng.Intn(1<<30))
		r.Add(f)
		return out, true
	}
	return nil, false
}

// RandomWSD generates a random world-set decomposition over a single
// relation R of the given arity: comps components, each either a
// tuple-level component with 1..maxAlts alternatives of 0..2 facts, or
// (one time in three, for positive arity) an attribute-level template
// whose slots are fixed or 2-value alternative lists — all constants
// drawn from a pool of consts constants. Overlapping supports are
// intentional — normalization (merge + vertical/horizontal split) runs
// as part of generation, so the result is always in product-normal
// form and routinely mixes both component granularities. Deterministic
// in the seed. The error is normalization's entanglement guard: a tiny
// constant pool can overlap so many components that their merged
// product exceeds wsd.MaxMergeAlts — callers pick a larger pool or
// fewer components.
func RandomWSD(seed int64, comps, maxAlts, arity, consts int) (*wsd.WSD, error) {
	if comps < 0 || maxAlts < 1 || arity < 0 || consts < 1 {
		return nil, fmt.Errorf("gen: RandomWSD needs comps >= 0, maxAlts >= 1, arity >= 0, consts >= 1 (got %d, %d, %d, %d)",
			comps, maxAlts, arity, consts)
	}
	rng := rand.New(rand.NewSource(seed))
	w := wsd.New(table.Schema{{Name: "R", Arity: arity}})
	for c := 0; c < comps; c++ {
		if arity > 0 && rng.Intn(3) == 0 {
			// Attribute-level component: one template, each slot fixed or
			// a two-value alternative list.
			cells := make([][]string, arity)
			for i := range cells {
				if rng.Intn(2) == 0 {
					cells[i] = []string{fmt.Sprintf("c%d", rng.Intn(consts))}
					continue
				}
				a, b := rng.Intn(consts), rng.Intn(consts)
				cells[i] = []string{fmt.Sprintf("c%d", a), fmt.Sprintf("c%d", b)}
			}
			if err := w.AddTemplateComponent("R", cells...); err != nil {
				panic("gen: " + err.Error())
			}
			continue
		}
		nAlts := 1 + rng.Intn(maxAlts)
		alts := make([]wsd.Alt, nAlts)
		for a := range alts {
			nFacts := rng.Intn(3)
			alt := make(wsd.Alt, 0, nFacts)
			for f := 0; f < nFacts; f++ {
				args := make(rel.Fact, arity)
				for i := range args {
					args[i] = fmt.Sprintf("c%d", rng.Intn(consts))
				}
				alt = append(alt, wsd.Fact{Rel: "R", Args: args})
			}
			alts[a] = alt
		}
		if err := w.AddComponent(alts...); err != nil {
			// Facts are built against the schema above; a rejection here is
			// a bug in this generator, not a data condition.
			panic("gen: " + err.Error())
		}
	}
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

// queryColPool is the column-name pool RandomPositiveQuery draws from.
// A small shared pool makes scans of different relations overlap in
// column names, so natural joins actually join.
var queryColPool = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

// RandomPositiveQuery generates a seeded, deterministic positive
// relational-algebra query (no ≠ selections) over the given schema:
// the wsdalg-evaluable fragment, paired with RandomWSD so the
// differential suite can cross-validate decomposition-native answers
// against the worlds oracle and the lifted c-table path. Constants in
// selection predicates are drawn from the same c0..c{consts-1} pool the
// table and WSD generators use, so selections sometimes match. depth
// bounds the operator-tree height (0 = a bare scan). The query is
// schema-valid by construction; a validation failure is a generator bug
// and panics.
func RandomPositiveQuery(seed int64, schema table.Schema, consts, depth int) query.Algebra {
	if len(schema) == 0 || consts < 1 || depth < 0 {
		panic("gen: RandomPositiveQuery needs a non-empty schema, consts >= 1, depth >= 0")
	}
	for _, r := range schema {
		if r.Arity > len(queryColPool) {
			panic(fmt.Sprintf("gen: RandomPositiveQuery supports arity <= %d, got %s/%d",
				len(queryColPool), r.Name, r.Arity))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	g := &queryGen{rng: rng, schema: schema, consts: consts}
	outs := make([]query.Out, 1+rng.Intn(2))
	for i := range outs {
		outs[i] = query.Out{Name: string(rune('A' + i)), Expr: g.expr(depth)}
	}
	q := query.NewAlgebra(fmt.Sprintf("rq%d", seed), outs...)
	for _, o := range q.Outs {
		if _, err := o.Expr.Schema(); err != nil {
			panic("gen: RandomPositiveQuery built an invalid expression: " + err.Error())
		}
	}
	if !q.Positive() {
		panic("gen: RandomPositiveQuery built a non-positive query")
	}
	return q
}

// RandomWSAQuery generates a seeded world-set-algebra query: the
// RandomPositiveQuery operator pool extended with ≠ selections,
// difference, and the world-set operators possible/certain/choiceof
// (nesting allowed — certain(possible(...)), choiceof under diff, and
// so on). At most two choiceof occurrences appear per query: each one
// multiplies the explicit oracle's answer-world count by the operand's
// support size, and the differential suites expand those worlds
// explicitly. Single-output by construction for the same reason. The
// query is schema-valid by construction; a validation failure is a
// generator bug and panics.
func RandomWSAQuery(seed int64, schema table.Schema, consts, depth int) query.Algebra {
	if len(schema) == 0 || consts < 1 || depth < 0 {
		panic("gen: RandomWSAQuery needs a non-empty schema, consts >= 1, depth >= 0")
	}
	for _, r := range schema {
		if r.Arity > len(queryColPool) {
			panic(fmt.Sprintf("gen: RandomWSAQuery supports arity <= %d, got %s/%d",
				len(queryColPool), r.Name, r.Arity))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	g := &queryGen{rng: rng, schema: schema, consts: consts, wsa: true, choiceBudget: 2}
	q := query.NewAlgebra(fmt.Sprintf("wsa%d", seed),
		query.Out{Name: "A", Expr: g.expr(depth)})
	for _, o := range q.Outs {
		if _, err := o.Expr.Schema(); err != nil {
			panic("gen: RandomWSAQuery built an invalid expression: " + err.Error())
		}
	}
	return q
}

// queryGen holds the RandomPositiveQuery recursion state.
type queryGen struct {
	rng    *rand.Rand
	schema table.Schema
	consts int

	// wsa widens the operator pool to ≠/diff/possible/certain/choiceof;
	// choiceBudget caps choiceof occurrences (each one multiplies the
	// explicit oracle's answer-world count).
	wsa          bool
	choiceBudget int
}

// scan picks a relation and names its columns with distinct pool names.
func (g *queryGen) scan() algebra.Expr {
	r := g.schema[g.rng.Intn(len(g.schema))]
	perm := g.rng.Perm(len(queryColPool))
	cols := make([]string, r.Arity)
	for i := range cols {
		cols[i] = queryColPool[perm[i]]
	}
	return algebra.Scan(r.Name, cols...)
}

// cols reads an expression's (always valid) output schema.
func (g *queryGen) cols(e algebra.Expr) []string {
	cs, err := e.Schema()
	if err != nil {
		panic("gen: invalid intermediate expression: " + err.Error())
	}
	return cs
}

// expr builds a random expression of at most the given height: the
// positive operator pool, plus (for wsa generators) ≠ selections,
// difference and the world-set operators.
func (g *queryGen) expr(depth int) algebra.Expr {
	if depth == 0 {
		return g.scan()
	}
	top := 6
	if g.wsa {
		top = 10
	}
	switch g.rng.Intn(top) {
	case 0:
		return g.scan()
	case 1: // projection onto a non-empty column subset
		e := g.expr(depth - 1)
		cs := g.cols(e)
		k := 1 + g.rng.Intn(len(cs))
		perm := g.rng.Perm(len(cs))
		keep := make([]string, k)
		for i := 0; i < k; i++ {
			keep[i] = cs[perm[i]]
		}
		return algebra.Project{E: e, Cols: keep}
	case 2: // equality selection: col = col or col = const
		e := g.expr(depth - 1)
		cs := g.cols(e)
		n := 1 + g.rng.Intn(2)
		preds := make([]algebra.Pred, n)
		for i := range preds {
			l := algebra.Col(cs[g.rng.Intn(len(cs))])
			var r algebra.Operand
			if g.rng.Intn(2) == 0 && len(cs) > 1 {
				r = algebra.Col(cs[g.rng.Intn(len(cs))])
			} else {
				r = algebra.Lit(fmt.Sprintf("c%d", g.rng.Intn(g.consts)))
			}
			if g.wsa && g.rng.Intn(3) == 0 {
				// ≠ selections evaluate uniformly on decompositions;
				// exercise them alongside equality.
				preds[i] = algebra.NeqP(l, r)
			} else {
				preds[i] = algebra.EqP(l, r)
			}
		}
		return algebra.Select{E: e, Preds: preds}
	case 3: // rename one column to an unused pool name
		e := g.expr(depth - 1)
		cs := g.cols(e)
		used := make(map[string]bool, len(cs))
		for _, c := range cs {
			used[c] = true
		}
		var fresh []string
		for _, c := range queryColPool {
			if !used[c] {
				fresh = append(fresh, c)
			}
		}
		if len(fresh) == 0 {
			return e
		}
		from := cs[g.rng.Intn(len(cs))]
		to := fresh[g.rng.Intn(len(fresh))]
		return algebra.Rename{E: e, From: []string{from}, To: []string{to}}
	case 4: // natural join (shared pool names make it selective)
		return algebra.Join{L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 6: // possible: collapse the operand's worlds into their union
		return algebra.Possible{E: g.expr(depth - 1)}
	case 7: // certain: collapse into the intersection
		return algebra.Certain{E: g.expr(depth - 1)}
	case 8: // difference of two same-schema variants of one subtree
		e := g.expr(depth - 1)
		cs := g.cols(e)
		var r algebra.Expr
		if g.rng.Intn(2) == 0 {
			r = algebra.Where(e, algebra.EqP(
				algebra.Col(cs[g.rng.Intn(len(cs))]),
				algebra.Lit(fmt.Sprintf("c%d", g.rng.Intn(g.consts)))))
		} else {
			rows := make([][]string, 1+g.rng.Intn(2))
			for i := range rows {
				row := make([]string, len(cs))
				for j := range row {
					row[j] = fmt.Sprintf("c%d", g.rng.Intn(g.consts))
				}
				rows[i] = row
			}
			r = algebra.ConstRel{Cols: append([]string(nil), cs...), Rows: rows}
		}
		return algebra.Diff{L: e, R: r}
	case 9: // choiceof, while the budget lasts (certain otherwise)
		if g.choiceBudget > 0 {
			g.choiceBudget--
			return algebra.ChoiceOf{E: g.expr(depth - 1)}
		}
		return algebra.Certain{E: g.expr(depth - 1)}
	default: // union of two same-schema branches of one subtree
		e := g.expr(depth - 1)
		cs := g.cols(e)
		sel := func() algebra.Expr {
			switch g.rng.Intn(3) {
			case 0:
				return e
			case 1:
				// A constant relation over the same columns: exercises
				// the evaluators' origin-free (certain) row paths.
				rows := make([][]string, g.rng.Intn(3))
				for i := range rows {
					row := make([]string, len(cs))
					for j := range row {
						row[j] = fmt.Sprintf("c%d", g.rng.Intn(g.consts))
					}
					rows[i] = row
				}
				return algebra.ConstRel{Cols: append([]string(nil), cs...), Rows: rows}
			default:
				return algebra.Where(e, algebra.EqP(
					algebra.Col(cs[g.rng.Intn(len(cs))]),
					algebra.Lit(fmt.Sprintf("c%d", g.rng.Intn(g.consts)))))
			}
		}
		return algebra.Union{L: sel(), R: sel()}
	}
}

// MillionWorldWSD builds the tracked benchmark decomposition: one
// certain fragment plus 20 independent binary components of two facts
// each — 2^20 = 1,048,576 worlds in ~40 facts. bench_test.go and the
// pwbench probes share this single builder so the benchmark and its
// gated probe can never drift apart.
func MillionWorldWSD() *wsd.WSD {
	w := wsd.New(table.Schema{{Name: "S", Arity: 2}})
	add := func(alts ...wsd.Alt) {
		if err := w.AddComponent(alts...); err != nil {
			panic("gen: " + err.Error())
		}
	}
	add(wsd.Alt{{Rel: "S", Args: rel.Fact{"hub", "ok"}}})
	for i := 0; i < 20; i++ {
		s := fmt.Sprintf("s%02d", i)
		add(
			wsd.Alt{{Rel: "S", Args: rel.Fact{s, "lo"}}, {Rel: "S", Args: rel.Fact{s + "b", "lo"}}},
			wsd.Alt{{Rel: "S", Args: rel.Fact{s, "hi"}}, {Rel: "S", Args: rel.Fact{s + "b", "hi"}}},
		)
	}
	// Disjoint supports by construction: normalization cannot fail.
	if err := w.Normalize(); err != nil {
		panic("gen: " + err.Error())
	}
	return w
}

// FatMillionWorldWSD builds the tracked update-benchmark decomposition:
// the MillionWorldWSD component structure (one certain hub fact plus 20
// independent binary choices, 2^20 worlds) but with 50 facts per
// alternative — ~2000 facts total. The fact volume is the point: a full
// renormalization re-factorizes every component after each operation,
// while the incremental engine re-normalizes only the components an
// operation touches, so the gap between the two is visible instead of
// drowning in fixed costs. bench_test.go and the pwbench WSDUpdate
// probes share this single builder so the benchmark and its gated probe
// can never drift apart.
func FatMillionWorldWSD() *wsd.WSD {
	w := wsd.New(table.Schema{{Name: "S", Arity: 2}})
	add := func(alts ...wsd.Alt) {
		if err := w.AddComponent(alts...); err != nil {
			panic("gen: " + err.Error())
		}
	}
	add(wsd.Alt{{Rel: "S", Args: rel.Fact{"hub", "ok"}}})
	for i := 0; i < 20; i++ {
		lo := make(wsd.Alt, 0, 50)
		hi := make(wsd.Alt, 0, 50)
		for j := 0; j < 50; j++ {
			s := fmt.Sprintf("s%02df%02d", i, j)
			lo = append(lo, wsd.Fact{Rel: "S", Args: rel.Fact{s, "lo"}})
			hi = append(hi, wsd.Fact{Rel: "S", Args: rel.Fact{s, "hi"}})
		}
		add(lo, hi)
	}
	// Disjoint supports by construction: normalization cannot fail.
	if err := w.Normalize(); err != nil {
		panic("gen: " + err.Error())
	}
	return w
}

// CenturyWSD builds the tracked attribute-level benchmark
// decomposition: one certain hub reading plus 100 sensor templates
// R(s000 {hi|lo}) … R(s099 {hi|lo}) — 2^100 ≈ 1.27·10^30 worlds in ~200
// symbols, a world set the tuple-level form could not even store as an
// explicit alternative list per sensor block without attribute
// factoring of the shared structure. bench_test.go and the pwbench
// WSDAttr probes share this single builder so the benchmark and its
// gated probe can never drift apart.
func CenturyWSD() *wsd.WSD {
	w := wsd.New(table.Schema{{Name: "R", Arity: 2}})
	if err := w.AddComponent(wsd.Alt{{Rel: "R", Args: rel.Fact{"hub", "ok"}}}); err != nil {
		panic("gen: " + err.Error())
	}
	for i := 0; i < 100; i++ {
		if err := w.AddTemplateComponent("R",
			[]string{fmt.Sprintf("s%03d", i)}, []string{"hi", "lo"}); err != nil {
			panic("gen: " + err.Error())
		}
	}
	// Distinct sensor ids: supports are disjoint, normalization cannot fail.
	if err := w.Normalize(); err != nil {
		panic("gen: " + err.Error())
	}
	return w
}
