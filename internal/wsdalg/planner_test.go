package wsdalg

import (
	"strings"
	"testing"

	"pw/internal/algebra"
	"pw/internal/obs"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/wsd"
)

// sensorsWithDim extends the two-sensor world set with a certain
// location table D(s, loc), giving joins something to bind against.
func sensorsWithDim(t *testing.T) *wsd.WSD {
	return mustWSD(t, table.Schema{{Name: "R", Arity: 2}, {Name: "D", Arity: 2}},
		[]wsd.Alt{alt(f("R", "hub", "ok"))},
		[]wsd.Alt{alt(f("R", "s0", "lo")), alt(f("R", "s0", "hi"))},
		[]wsd.Alt{alt(f("R", "s1", "lo")), alt(f("R", "s1", "hi"))},
		[]wsd.Alt{alt(f("D", "s0", "roof"), f("D", "s1", "cellar"), f("D", "hub", "closet"))},
	)
}

func scanD() algebra.Expr { return algebra.Scan("D", "s", "loc") }

// checkOptimized runs q through the planner and verifies the evaluated
// result against the explicit-worlds oracle; it returns the plan so
// callers can inspect the planning record.
func checkOptimized(t *testing.T, w *wsd.WSD, q query.Query) *Plan {
	t.Helper()
	got, pl, err := EvalOptimized(w, q, obs.NewCost())
	if err != nil {
		t.Fatalf("EvalOptimized: %v", err)
	}
	want := oracleWSAnswers(t, w, q)
	if c := got.Count(); !c.IsInt64() || c.Int64() != int64(len(want)) {
		t.Fatalf("Count = %s, oracle has %d distinct answers", c, len(want))
	}
	for wi, a := range want {
		if !got.Member(a) {
			t.Fatalf("oracle answer %d not in rep(EvalOptimized):\n%s\nresult:\n%s", wi, a, got)
		}
	}
	return pl
}

func TestPushSelectionsBelowJoin(t *testing.T) {
	// #v = hi mentions only R's side: the conjunct must sink there.
	e := algebra.Where(algebra.Join{L: scanR(), R: scanD()},
		algebra.EqP(algebra.Col("v"), algebra.Lit("hi")))
	pushed := pushSelections(e)
	j, ok := pushed.(algebra.Join)
	if !ok {
		t.Fatalf("want Join at top after pushdown, got %T (%s)", pushed, pushed)
	}
	if _, ok := j.L.(algebra.Select); !ok {
		t.Fatalf("want σ on the join's left input, got %s", pushed)
	}
	if _, ok := j.R.(algebra.Select); ok {
		t.Fatalf("σ on v must not land on D's side: %s", pushed)
	}
}

func TestPushSelectionsSharedColumnGoesBothSides(t *testing.T) {
	// #s = s0 mentions the join column: filtering both inputs is valid
	// and cheapest.
	e := algebra.Where(algebra.Join{L: scanR(), R: scanD()},
		algebra.EqP(algebra.Col("s"), algebra.Lit("s0")))
	j, ok := pushSelections(e).(algebra.Join)
	if !ok {
		t.Fatalf("want Join at top, got %s", pushSelections(e))
	}
	if _, ok := j.L.(algebra.Select); !ok {
		t.Fatalf("σ missing on left: %s", j)
	}
	if _, ok := j.R.(algebra.Select); !ok {
		t.Fatalf("σ missing on right: %s", j)
	}
}

func TestPushSelectionsChoiceOfIsBarrier(t *testing.T) {
	e := algebra.Where(algebra.ChoiceOf{E: scanR()},
		algebra.EqP(algebra.Col("v"), algebra.Lit("hi")))
	pushed := pushSelections(e)
	if _, ok := pushed.(algebra.Select); !ok {
		t.Fatalf("σ must stay above choiceof, got %T (%s)", pushed, pushed)
	}
}

func TestPruneNarrowsScans(t *testing.T) {
	// π[loc] over the join needs only s (to join) and loc: both scans
	// should be projected down before joining.
	e := algebra.Project{E: algebra.Join{L: scanR(), R: scanD()}, Cols: []string{"loc"}}
	pruned := pruneExpr(e, []string{"loc"})
	s := pruned.String()
	if !strings.Contains(s, "R(s,v)") && !strings.Contains(s, "R(s, v)") {
		// R must lose v: accept either spelling of a projected scan.
		if strings.Contains(s, "v") {
			t.Fatalf("R's v column should be pruned away: %s", s)
		}
	}
	cols, err := pruned.Schema()
	if err != nil {
		t.Fatalf("pruned schema: %v", err)
	}
	if len(cols) != 1 || cols[0] != "loc" {
		t.Fatalf("pruned schema = %v, want [loc]", cols)
	}
}

func TestOptimizeLowersPredictedCost(t *testing.T) {
	w := sensorsWithDim(t)
	q := query.NewAlgebra("whereis", query.Out{Name: "A",
		Expr: algebra.Project{
			E: algebra.Where(algebra.Join{L: scanR(), R: scanD()},
				algebra.EqP(algebra.Col("v"), algebra.Lit("hi"))),
			Cols: []string{"s", "loc"},
		}})
	_, info := Optimize(w, q)
	if info == nil {
		t.Fatal("Optimize returned no planning record for an algebra query")
	}
	if info.ChosenCost > info.NaiveCost {
		t.Fatalf("chosen cost %d exceeds naive %d", info.ChosenCost, info.NaiveCost)
	}
	if !info.Changed() {
		t.Fatalf("σ-pushdown should rewrite this query: %s", info.Naive)
	}
	pl := checkOptimized(t, w, q)
	if pl.Planner == nil || !pl.Planner.Changed() {
		t.Fatal("plan must carry the planning record")
	}
	var b strings.Builder
	pl.WriteText(&b)
	if !strings.Contains(b.String(), "planner") {
		t.Fatalf("WriteText misses the planner line:\n%s", b.String())
	}
}

func TestOptimizeNeverCostlier(t *testing.T) {
	w := sensorsWithDim(t)
	exprs := []algebra.Expr{
		selHi(scanR()),
		algebra.Where(algebra.Join{L: scanR(), R: scanD()},
			algebra.EqP(algebra.Col("v"), algebra.Lit("hi"))),
		algebra.Join{L: algebra.Join{L: scanR(), R: scanD()},
			R: algebra.Rename{E: algebra.Scan("D", "s", "loc2"), From: []string{"loc2"}, To: []string{"where"}}},
		algebra.Possible{E: selHi(scanR())},
		algebra.Certain{E: algebra.Union{L: scanR(), R: scanR()}},
		algebra.Diff{L: scanR(), R: selHi(scanR())},
		algebra.ChoiceOf{E: algebra.Possible{E: scanR()}},
		algebra.Certain{E: algebra.Possible{E: selHi(scanR())}},
	}
	for i, e := range exprs {
		q := query.NewAlgebra("q", query.Out{Name: "A", Expr: e})
		opt, info := Optimize(w, q)
		if info == nil {
			t.Fatalf("case %d: no planning record", i)
		}
		if info.ChosenCost > info.NaiveCost {
			t.Fatalf("case %d (%s): chosen %d > naive %d", i, e, info.ChosenCost, info.NaiveCost)
		}
		// Whatever was chosen must mean the same thing.
		checkOptimized(t, w, q)
		_ = opt
	}
}

func TestOptimizeRefusesNonAlgebra(t *testing.T) {
	w := sensorsWithDim(t)
	q, info := Optimize(w, query.Identity{})
	if info != nil {
		t.Fatal("identity queries have nothing to plan")
	}
	if _, ok := q.(query.Identity); !ok {
		t.Fatalf("query must pass through, got %T", q)
	}
}

func TestJoinReorderKeepsColumnOrder(t *testing.T) {
	w := sensorsWithDim(t)
	e := algebra.Join{
		L: algebra.Join{L: scanR(), R: scanD()},
		R: algebra.Rename{E: algebra.Scan("R", "s", "v2"), From: []string{"v2"}, To: []string{"peer"}},
	}
	wantCols, err := e.Schema()
	if err != nil {
		t.Fatal(err)
	}
	got := reorderJoins(w, e)
	cols, err := got.Schema()
	if err != nil {
		t.Fatalf("reordered schema: %v", err)
	}
	if len(cols) != len(wantCols) {
		t.Fatalf("schema %v, want %v", cols, wantCols)
	}
	for i := range cols {
		if cols[i] != wantCols[i] {
			t.Fatalf("schema %v, want %v", cols, wantCols)
		}
	}
	q := query.NewAlgebra("tri", query.Out{Name: "A", Expr: e})
	checkOptimized(t, w, q)
}

func TestDryCostMatchesEstimateScale(t *testing.T) {
	// The dry model must price the naive sensors query at least as high
	// as the σ-pushed one: pushing #v=hi below the join drops the lo
	// branches before they multiply with D.
	w := sensorsWithDim(t)
	naive := query.NewAlgebra("q", query.Out{Name: "A",
		Expr: algebra.Where(algebra.Join{L: scanR(), R: scanD()},
			algebra.EqP(algebra.Col("v"), algebra.Lit("hi")))})
	pushed := query.NewAlgebra("q", query.Out{Name: "A",
		Expr: algebra.Join{L: selHi(scanR()), R: scanD()}})
	cn, err := staticCost(w, naive)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := staticCost(w, pushed)
	if err != nil {
		t.Fatal(err)
	}
	if cp > cn {
		t.Fatalf("pushed form priced higher: pushed=%d naive=%d", cp, cn)
	}
}

// TestOptimizedMatchesNaiveEverywhere is the planner's semantic safety
// net: for a spread of operator shapes, the chosen plan's world set is
// exactly the naive evaluation's.
func TestOptimizedMatchesNaiveEverywhere(t *testing.T) {
	w := sensorsWithDim(t)
	exprs := []algebra.Expr{
		algebra.Project{E: algebra.Where(algebra.Join{L: scanR(), R: scanD()},
			algebra.EqP(algebra.Col("v"), algebra.Lit("hi"))), Cols: []string{"loc"}},
		algebra.Possible{E: algebra.Where(algebra.Join{L: scanR(), R: scanD()},
			algebra.NeqP(algebra.Col("v"), algebra.Lit("lo")))},
		algebra.Diff{L: algebra.Possible{E: scanR()}, R: algebra.Certain{E: scanR()}},
		algebra.Where(algebra.ChoiceOf{E: selHi(scanR())},
			algebra.NeqP(algebra.Col("s"), algebra.Lit("hub"))),
	}
	for i, e := range exprs {
		q := query.NewAlgebra("q", query.Out{Name: "A", Expr: e})
		naive, err := Eval(w, q)
		if err != nil {
			t.Fatalf("case %d: naive Eval: %v", i, err)
		}
		opt, pl, err := EvalOptimized(w, q, obs.NewCost())
		if err != nil {
			t.Fatalf("case %d: EvalOptimized: %v", i, err)
		}
		if pl == nil || pl.Planner == nil {
			t.Fatalf("case %d: missing planning record", i)
		}
		if naive.Count().Cmp(opt.Count()) != 0 {
			t.Fatalf("case %d: naive %s worlds vs optimized %s", i, naive.Count(), opt.Count())
		}
		naive.Each(func(inst *rel.Instance) bool {
			if !opt.Member(inst) {
				t.Fatalf("case %d: optimized result misses a naive world:\n%s", i, inst)
			}
			return false
		})
	}
}
