// Plan introspection tests: the estimate-soundness gate (every join and
// assembly node's predicted merge space upper-bounds what evaluation
// actually tabulated, across the seeded difftest corpus), the
// reconciliation of plan-tree actuals with the run's obs.Cost counters,
// and the JSON round-trip of the Plan shape.
package wsdalg_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pw/internal/algebra"
	"pw/internal/gen"
	"pw/internal/obs"
	"pw/internal/query"
	"pw/internal/table"
	"pw/internal/wsdalg"
)

// walkPlan visits every node of the plan tree (out wrappers, operator
// nodes, the assemble node).
func walkPlan(p *wsdalg.Plan, fn func(n *wsdalg.PlanNode)) {
	var walk func(n *wsdalg.PlanNode)
	walk = func(n *wsdalg.PlanNode) {
		fn(n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, o := range p.Outs {
		walk(o)
	}
	if p.Assemble != nil {
		walk(p.Assemble)
	}
}

// TestPlanEstimateSoundness is the gate the ROADMAP's planner item
// depends on: across ≥150 seeded decomposition×query cases (the same
// generator family as TestDifferentialWSDAlg), every plan node's
// estimates upper-bound its actuals — in particular each ⋈ node's
// predicted merge space vs the joint alternatives actually swept — and
// the plan-tree actual totals reconcile exactly with the run's cost
// counters. Error cases (ErrEntangled refusals) stay in scope: their
// partial plans must be error-marked and still sound.
func TestPlanEstimateSoundness(t *testing.T) {
	schema := table.Schema{{Name: "R", Arity: 2}}
	const wantCases = 150
	cases, joins, errs := 0, 0, 0
	for seed := int64(0); cases < wantCases && seed < 10*wantCases; seed++ {
		consts := 4 + int(seed)%3
		w, err := gen.RandomWSD(seed, 3+int(seed)%2, 3, 2, consts)
		if err != nil {
			continue
		}
		if !w.Count().IsInt64() || w.Count().Int64() > 400 {
			continue
		}
		q := gen.RandomPositiveQuery(seed, schema, consts, 2+int(seed)%2)
		cases++
		tag := fmt.Sprintf("seed %d (%s)", seed, q.Label())

		c := obs.NewCost()
		out, plan, evalErr := wsdalg.EvalPlanned(w, q, c)
		if plan == nil {
			t.Fatalf("%s: EvalPlanned returned a nil plan", tag)
		}
		if evalErr != nil {
			errs++
			if plan.Error == "" {
				t.Errorf("%s: eval failed (%v) but plan carries no error class", tag, evalErr)
			}
		} else {
			if plan.WorldCount != out.Count().String() {
				t.Errorf("%s: plan worlds %s != answer Count %s", tag, plan.WorldCount, out.Count())
			}
		}

		// Soundness: every node's estimate dominates its actual.
		var actSpaceTotal, actSpaceMax int64
		var outParts int64
		walkPlan(plan, func(n *wsdalg.PlanNode) {
			if n.Op == "join" || n.Op == "assemble" {
				if n.Op == "join" {
					joins++
				}
				if n.Est.MergeSpace < n.Act.MergeSpace {
					t.Errorf("%s: %s node est merge %d < act %d",
						tag, n.Op, n.Est.MergeSpace, n.Act.MergeSpace)
				}
				if n.Est.MaxSpace < n.Act.MaxSpace {
					t.Errorf("%s: %s node est max-space %d < act %d",
						tag, n.Op, n.Est.MaxSpace, n.Act.MaxSpace)
				}
			}
			actSpaceTotal += n.Act.MergeSpace
			if n.Act.MaxSpace > actSpaceMax {
				actSpaceMax = n.Act.MaxSpace
			}
			if n.Op == "out" {
				outParts += n.Act.Parts
				return // grouping node: no estimate side
			}
			if n.Op == "assemble" {
				return // parts estimated pre-fast-path; spaces checked above
			}
			if n.Error != "" {
				return // failed mid-operator: actuals are partial
			}
			if n.Est.Parts < n.Act.Parts {
				t.Errorf("%s: %s node est parts %d < act %d", tag, n.Op, n.Est.Parts, n.Act.Parts)
			}
			if n.Est.Units < n.Act.Units {
				t.Errorf("%s: %s node est units %d < act %d", tag, n.Op, n.Est.Units, n.Act.Units)
			}
			if n.Est.Rows < n.Act.Rows {
				t.Errorf("%s: %s node est rows %d < act %d", tag, n.Op, n.Est.Rows, n.Act.Rows)
			}
		})

		// Reconciliation: plan actuals decompose the cost totals, and
		// the private-run counters were folded into the caller's sink.
		if got := plan.Cost["eval_alts_tabulated"]; got != actSpaceTotal {
			t.Errorf("%s: Σ node act merge = %d, eval_alts_tabulated = %d", tag, actSpaceTotal, got)
		}
		if got := plan.Cost["eval_merge_space_max"]; got != actSpaceMax {
			t.Errorf("%s: max node act space = %d, eval_merge_space_max = %d", tag, actSpaceMax, got)
		}
		if evalErr == nil {
			if got := plan.Cost["eval_parts"]; got != outParts {
				t.Errorf("%s: Σ out act parts = %d, eval_parts = %d", tag, outParts, got)
			}
		}
		if got := plan.Cost["eval_components"]; got != plan.Components {
			t.Errorf("%s: plan components = %d, eval_components = %d", tag, plan.Components, got)
		}
		if got := c.Get(obs.EvalAltsTabulated); got != actSpaceTotal {
			t.Errorf("%s: caller sink eval_alts_tabulated = %d, want %d", tag, got, actSpaceTotal)
		}
	}
	if cases < wantCases {
		t.Fatalf("only %d corpus cases generated, want %d", cases, wantCases)
	}
	if joins == 0 {
		t.Fatal("corpus exercised no join nodes — the merge-space gate was vacuous")
	}
	t.Logf("%d cases (%d eval errors), %d join nodes checked", cases, errs, joins)
}

// TestPlanJSONRoundTrip pins that the Plan JSON shape survives a
// marshal/unmarshal cycle intact — the contract behind `pwq explain
// -json` and the server's ?explain=1 field.
func TestPlanJSONRoundTrip(t *testing.T) {
	w, err := gen.RandomWSD(7, 4, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := gen.RandomPositiveQuery(7, table.Schema{{Name: "R", Arity: 2}}, 5, 3)
	_, plan, _ := wsdalg.EvalPlanned(w, q, nil)
	if plan == nil {
		t.Fatal("nil plan")
	}
	b, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var back wsdalg.Plan
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, &back) {
		b2, _ := json.Marshal(&back)
		t.Fatalf("round trip changed the plan:\n%s\nvs\n%s", b, b2)
	}
}

// TestPlanWriteText sanity-checks the text renderer on the million-world
// builder: header with components and worlds, per-operator est/act
// blocks, the normalize line and the cost footer.
func TestPlanWriteText(t *testing.T) {
	w := gen.MillionWorldWSD()
	q := query.NewAlgebra("hi", query.Out{Name: "A",
		Expr: algebra.Project{
			E:    algebra.Where(algebra.Scan("S", "s", "v"), algebra.EqP(algebra.Col("v"), algebra.Lit("hi"))),
			Cols: []string{"s"},
		}})
	_, plan, evalErr := wsdalg.EvalPlanned(w, q, nil)
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	var buf bytes.Buffer
	plan.WriteText(&buf)
	text := buf.String()
	for _, want := range []string{"plan ", "components=", "worlds=1048576", "out A", "select", "scan S", "est[", "act[", "normalize", "cost:"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered plan missing %q:\n%s", want, text)
		}
	}
}
