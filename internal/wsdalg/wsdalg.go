// Package wsdalg evaluates positive relational-algebra queries directly
// on world-set decompositions: Eval maps a wsd.WSD D and a query q to a
// new decomposition denoting exactly {q(W) : W ∈ rep(D)}, without ever
// enumerating worlds. It is the query-engine layer on top of the
// decomposition backend, following the world-set-decomposition line of
// work (Olteanu, Koch & Antova, "World-set decompositions:
// expressiveness and efficient algorithms"; Antova, Koch & Olteanu,
// "10^(10^6) Worlds and Beyond"): positive algebra can be pushed through
// a decomposition with only local recombination, so the paper's §3–§5
// decision problems over query answers (POSS/CERT of answer facts,
// CONT of answer world-sets) run at decomposition scale.
//
// The evaluator represents each intermediate relation as a *decomposed
// relation*: a union of independent "parts", where a part is a
// deterministic function from the alternative choices of a few input
// choice *units* (its origins) to a set of rows. A unit is either a
// whole tuple-level component or one open slot of an attribute-level
// template — slot granularity is what keeps field products unexpanded:
// the slots of one template are independent axes, so parts touching
// different slots recombine freely without ever tabulating the
// template's cross product. Operators act as follows:
//
//   - scans split a relation along the input components that mention
//     it: one tabulated single-origin part per tuple-level component,
//     and one symbolic template part per attribute-level component
//     (out-columns referencing slots, no materialization);
//   - selection, projection and renaming are tuple-local, so they map
//     tabulated parts' alternatives pointwise; on template parts they
//     stay symbolic — selection compiles its predicates against the
//     slot references and projection narrows the origin set to the
//     slots still referenced, so a π over a few fields of a wide
//     template depends on exactly those fields' units;
//   - join distributes over the union of parts; each pairwise join
//     merges the two parts' origin sets and tabulates the joined rows
//     over the merged choice space (the only place where the product
//     structure coarsens, and the only blow-up — guarded by the same
//     wsd.MaxMergeAlts bound Normalize uses). Template parts tabulate
//     lazily here, over their narrowed origins only — "only the joined
//     slots" — which keeps the MaxMergeAlts pressure proportional to
//     the fields a query actually correlates;
//   - union concatenates part lists (no recombination at all);
//   - diff subtracts per world: each left part re-tabulates over its
//     origins merged with every right-side origin (the subtrahend's
//     value depends on all of them jointly), guarded by MaxMergeAlts —
//     the "where decidable on the decomposition" rule;
//   - the world-set operators (Koch's compositional algebra): possible
//     collapses the operand into its support — the union of its value
//     over every world, a certain origin-free part; certain assembles
//     the operand's parts into a private sub-decomposition, normalizes
//     it and reads off CertainFacts — the intersection over every
//     world; choiceof appends a synthetic choice unit ranging over the
//     operand's support and restricts the value to the chosen tuple in
//     the worlds where it is available (empty stays empty, and in
//     worlds where the chosen tuple is absent the value collapses onto
//     a canonical available tuple — a duplicate of another choice's
//     world, so the represented world set is exact).
//
// The final answer decomposition groups correlated parts (shared
// origins) into components, one alternative per joint choice, and hands
// the result to wsd.Normalize: its counting-argument factorizer merges
// answer components whose fact supports collide (the same answer fact
// produced along different paths) and re-splits whatever became
// independent, so the returned WSD satisfies all decomposition
// invariants and Count is the exact number of distinct answers.
//
// Every step is exact — parts tabulate per-choice values, never
// approximations — so rep(Eval(D, q)) = q(rep(D)) world-for-world. The
// supported fragment is the full extended relational algebra of
// internal/algebra — positive operators, ≠ selections, per-world
// difference and the world-set operators — plus the identity query;
// Supported gates the entry points (first-order and DATALOG queries
// stay on the per-instance engines) and the CLIs turn its error into
// their "unsupported fragment" exit. Blow-ups surface as ErrEntangled,
// never as silent approximation.
package wsdalg

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/obs"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/unionfind"
	"pw/internal/wsd"
)

// ErrUnsupported marks queries outside the decomposition-evaluable
// fragment (relational algebra — including ≠ selections, diff and the
// world-set operators — and the identity query). First-order and
// DATALOG queries stay on the per-instance engines.
var ErrUnsupported = errors.New("query outside the algebra fragment evaluable on decompositions")

// ErrEntangled is wrapped by evaluation errors when a join or the final
// component assembly would have to tabulate more than wsd.MaxMergeAlts
// joint alternatives: the answer decomposition is too entangled to
// build without degenerating into a world list.
var ErrEntangled = errors.New("answer decomposition too entangled")

// Supported reports whether q lies in the fragment Eval handles: nil
// for the identity query and for relational-algebra queries (the whole
// extended grammar — ≠ selections, diff and the world-set operators
// evaluate natively; blow-ups are a per-evaluation ErrEntangled, not a
// fragment refusal), an ErrUnsupported-wrapping error otherwise.
func Supported(q query.Query) error {
	switch q.(type) {
	case query.Identity:
		return nil
	case query.Algebra:
		return nil
	default:
		return fmt.Errorf("%w: %s is not a relational-algebra query", ErrUnsupported, q.Label())
	}
}

// Eval evaluates a supported query on a decomposition, returning a
// normalized decomposition of the answer world-set:
//
//	rep(Eval(D, q)) = { q(W) : W ∈ rep(D) }.
//
// The result's schema is the query's output vector (one relation per
// Out). Errors: unsupported queries (ErrUnsupported), schema errors
// from the algebra layer, and the ErrEntangled blow-up guard.
func Eval(w *wsd.WSD, q query.Query) (*wsd.WSD, error) {
	return EvalObserved(w, q, nil)
}

// EvalObserved is Eval with a cost-accounting sink: the evaluator
// records the input component count, parts built, joint alternatives
// tabulated by the odometer, and the largest joint space any assembly
// needed (the MaxMergeAlts headroom) into c. A nil c makes this exactly
// Eval.
func EvalObserved(w *wsd.WSD, q query.Query, c *obs.Cost) (*wsd.WSD, error) {
	return evalCore(w, q, c, nil)
}

// evalCore is the shared body of EvalObserved and EvalPlanned: the
// evaluation proper, with an optional plan to fill (nil plan = no plan
// bookkeeping at all on the hot path).
func evalCore(w *wsd.WSD, q query.Query, c *obs.Cost, pl *Plan) (*wsd.WSD, error) {
	if err := Supported(q); err != nil {
		return nil, err
	}
	c.Add(obs.EvalComponents, int64(w.Components()))
	if pl != nil {
		pl.Components = int64(w.Components())
	}
	if query.IsIdentity(q) {
		return w.Clone(), nil
	}
	a := q.(query.Algebra)

	// Output schema: one relation per Out, arity from the expression.
	outSchema := make(table.Schema, 0, len(a.Outs))
	seen := map[string]bool{}
	for _, o := range a.Outs {
		cols, err := o.Expr.Schema()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Label(), err)
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("%s: duplicate output relation %s", a.Label(), o.Name)
		}
		seen[o.Name] = true
		outSchema = append(outSchema, table.SchemaRel{Name: o.Name, Arity: len(cols)})
	}
	out := wsd.New(outSchema)

	// rep(D) = ∅ ⇒ the answer world-set is ∅ too (there is no world to
	// query). A component with zero alternatives is its canonical form.
	if w.Empty() {
		if err := out.AddComponent(); err != nil {
			return nil, err
		}
		return out, out.Normalize()
	}

	ev := newEvaluator(w)
	ev.cost = c
	ev.plan = pl
	var parts []taggedPart
	for _, o := range a.Outs {
		var outNode *PlanNode
		if pl != nil {
			outNode = &PlanNode{Op: "out", Detail: o.Name}
			pl.Outs = append(pl.Outs, outNode)
			ev.cur = outNode
		}
		d, err := ev.eval(o.Expr)
		if err != nil {
			outNode.markError(err)
			return nil, fmt.Errorf("%s: %w", a.Label(), err)
		}
		if outNode != nil {
			outNode.Act.Parts = int64(len(d.parts))
		}
		for _, p := range d.parts {
			parts = append(parts, taggedPart{rel: o.Name, p: p})
		}
	}
	ev.cur = nil
	c.Add(obs.EvalParts, int64(len(parts)))

	var asm *PlanNode
	var asmStart time.Time
	if pl != nil {
		asm = &PlanNode{Op: "assemble"}
		pl.Assemble = asm
		ev.cur = asm
		asmStart = time.Now()
	}
	if err := ev.assemble(out, parts, asm); err != nil {
		return nil, err
	}
	if asm != nil {
		asm.Act.DurUS = time.Since(asmStart).Microseconds()
		ev.cur = nil
	}
	// The answer-side Normalize accounts to the same sink: its merges,
	// splits and folds are part of this evaluation's cost. When
	// planning, the counter deltas around the call are the Normalize
	// node's actuals.
	var before obs.CostSnapshot
	var normStart time.Time
	if pl != nil {
		before = c.Snapshot()
		normStart = time.Now()
	}
	out.SetObsCost(c)
	err := out.Normalize()
	out.SetObsCost(nil)
	if pl != nil {
		after := c.Snapshot()
		pl.Normalize = &NormalizeStats{
			ComponentsMerged: after.Get(obs.NormComponentsMerged) - before.Get(obs.NormComponentsMerged),
			VerticalSplits:   after.Get(obs.NormVerticalSplits) - before.Get(obs.NormVerticalSplits),
			CertainFolds:     after.Get(obs.NormCertainFolds) - before.Get(obs.NormCertainFolds),
			DurUS:            time.Since(normStart).Microseconds(),
		}
	}
	return out, err
}

// taggedPart is one answer part tagged with the output relation it
// feeds — the unit of work the component assembly groups.
type taggedPart struct {
	rel string
	p   part
}

// assemble groups correlated parts (shared origins) into components of
// out, one alternative per joint choice. Origin-free parts (constant
// rows) are certain; each becomes a single-alternative component of its
// own and Normalize merges all certain components afterwards. It is the
// shared tail of evalCore and of certain()'s private sub-decomposition;
// asm (nil when not explaining) receives the assembly estimates and
// actuals. Normalization is the caller's job.
func (ev *evaluator) assemble(out *wsd.WSD, parts []taggedPart, asm *PlanNode) error {
	// Group correlated parts: parts sharing an origin component are
	// functions of the same input choice, so they must land in one
	// answer component.
	uf := unionfind.NewDense(ev.n)
	for _, op := range parts {
		if len(op.p.origins) == 0 {
			continue // constant rows: handled as certain components below
		}
		for _, o := range op.p.origins[1:] {
			uf.Union(int32(op.p.origins[0]), int32(o))
		}
	}
	groups := map[int32][]taggedPart{}
	var order []int32
	zero := make([]int, ev.n)
	for _, op := range parts {
		if len(op.p.origins) == 0 {
			rows := op.p.at(zero, ev) // constant rows: choice-independent
			alt := make(wsd.Alt, 0, len(rows))
			for _, t := range rows {
				alt = append(alt, wsd.Fact{Rel: op.rel, Args: rel.ResolveFact(t)})
			}
			if err := out.AddComponent(alt); err != nil {
				asm.markError(err)
				return err
			}
			if asm != nil {
				asm.Act.Parts++
			}
			continue
		}
		r := uf.Find(int32(op.p.origins[0]))
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], op)
	}

	// Assembly estimate, before any group tabulates: each group sweeps
	// the joint space of its merged origins (the template fast path
	// skips the sweep entirely, which only makes the actual smaller).
	if asm != nil {
		asm.Est.Parts = asm.Act.Parts + int64(len(order))
		var units []int
		for _, r := range order {
			var origins []int
			for _, op := range groups[r] {
				origins = mergeOrigins(origins, op.p.origins)
			}
			units = mergeOrigins(units, origins)
			prod := ev.originsProduct(origins)
			asm.Est.MergeSpace = satAdd(asm.Est.MergeSpace, prod)
			if prod > asm.Est.MaxSpace {
				asm.Est.MaxSpace = prod
			}
		}
		asm.Est.Units = int64(len(units))
	}

	for _, r := range order {
		group := groups[r]

		// Template fast path: a lone predicate-free template part whose
		// out-columns reference each origin slot exactly once is itself
		// an attribute-level component of the answer — emit it factored,
		// never tabulating the field product. This is what lets σ/π/ρ
		// pipelines over 2^100-world attribute decompositions answer in
		// decomposition size.
		if len(group) == 1 {
			if emitted, err := ev.emitTemplate(out, group[0].rel, &group[0].p); err != nil {
				asm.markError(err)
				return err
			} else if emitted {
				if asm != nil {
					asm.Act.Parts++
				}
				continue
			}
		}

		var origins []int
		for _, op := range group {
			origins = mergeOrigins(origins, op.p.origins)
		}
		space, err := ev.space(origins)
		if err != nil {
			asm.markError(err)
			return err
		}
		alts := make([]wsd.Alt, 0, space)
		choice := make([]int, ev.n)
		ev.odometer(origins, choice, func() {
			var alt wsd.Alt
			for _, op := range group {
				for _, t := range op.p.at(choice, ev) {
					alt = append(alt, wsd.Fact{Rel: op.rel, Args: rel.ResolveFact(t)})
				}
			}
			alts = append(alts, alt)
		})
		if err := out.AddComponent(alts...); err != nil {
			asm.markError(err)
			return err
		}
		if asm != nil {
			asm.Act.Parts++
		}
	}
	return nil
}

// emitTemplate recognizes a part that is exactly an answer-side
// attribute-level component — template body, no surviving predicates,
// every origin unit referenced by exactly one out-column — and adds it
// to the answer decomposition in factored (per-slot) form. Repeated
// slot references or predicates correlate the columns, which the
// template form cannot express; those parts fall back to tabulation.
func (ev *evaluator) emitTemplate(out *wsd.WSD, relName string, p *part) (bool, error) {
	t := p.tmpl
	if t == nil || len(t.preds) > 0 {
		return false, nil
	}
	seen := map[int]bool{}
	cells := make([][]string, len(t.out))
	for j, c := range t.out {
		if c.unit < 0 {
			cells[j] = []string{c.constID.Name()}
			continue
		}
		if seen[c.unit] {
			return false, nil
		}
		seen[c.unit] = true
		vals := ev.cells[c.unit]
		names := make([]string, len(vals))
		for k, id := range vals {
			names[k] = id.Name()
		}
		cells[j] = names
	}
	if len(seen) != len(p.origins) {
		return false, nil
	}
	return true, out.AddTemplateComponent(relName, cells...)
}

// unit is one independent choice axis of the input decomposition: a
// whole tuple-level component (slot == -1) or one open slot (two or
// more values) of an attribute-level template. Distinct slots of one
// template are independent by construction, so treating them as
// separate axes is exact.
type unit struct {
	comp int
	slot int
}

// part is one factor of a decomposed relation: a deterministic function
// from the alternative choices of its origin units to a row set. It has
// two bodies:
//
//   - tabulated: alts indexed by the odometer over origins (last origin
//     fastest), each origin digit ranging over the unit's alternative
//     count;
//   - template (tmpl != nil): a symbolic single-row function — output
//     columns referencing slot units or constants, filtered by compiled
//     predicates — evaluated on demand and tabulated only when a join
//     needs it.
//
// origins is sorted and duplicate-free. An origin-free part (origins
// nil, one tabulated entry) is a constant row set.
type part struct {
	origins []int
	alts    [][]sym.Tuple
	tmpl    *tmplPart
}

// tmplPart is the symbolic body of a template-derived part: one output
// row per surviving choice. A tmplCol with unit < 0 is the constant
// constID; otherwise the value is the unit's slot value under the
// current choice.
type tmplPart struct {
	out   []tmplCol
	preds []tmplPred
}

type tmplCol struct {
	unit    int
	constID sym.ID
}

type tmplPred struct {
	eq   bool
	l, r tmplCol
}

// at returns the part's row set under a full choice vector (indexed by
// unit).
func (p *part) at(choice []int, ev *evaluator) []sym.Tuple {
	if p.tmpl != nil {
		return p.tmpl.at(choice, ev)
	}
	idx := 0
	for _, o := range p.origins {
		idx = idx*ev.altCounts[o] + choice[o]
	}
	return p.alts[idx]
}

// val resolves a symbolic column under a choice vector.
func (c tmplCol) val(choice []int, ev *evaluator) sym.ID {
	if c.unit < 0 {
		return c.constID
	}
	return ev.cells[c.unit][choice[c.unit]]
}

// at evaluates the template body: nil when a predicate fails, otherwise
// the single instantiated row.
func (t *tmplPart) at(choice []int, ev *evaluator) []sym.Tuple {
	for _, p := range t.preds {
		if p.eq != (p.l.val(choice, ev) == p.r.val(choice, ev)) {
			return nil
		}
	}
	row := make(sym.Tuple, len(t.out))
	for j, c := range t.out {
		row[j] = c.val(choice, ev)
	}
	return []sym.Tuple{row}
}

// unitsOf collects the sorted distinct units referenced by a template
// body — the exact origin set of a part with that body.
func (t *tmplPart) unitsOf() []int {
	var units []int
	add := func(c tmplCol) {
		if c.unit >= 0 {
			units = mergeOrigins(units, []int{c.unit})
		}
	}
	for _, c := range t.out {
		add(c)
	}
	for _, p := range t.preds {
		add(p.l)
		add(p.r)
	}
	return units
}

// dRel is a decomposed relation: named columns over a union of parts.
// The relation's value in a world is the union of every part's value at
// that world's choice vector.
type dRel struct {
	cols  []string
	parts []part
}

// evaluator carries the per-evaluation state: the input decomposition
// flattened into choice units, per-unit alternative counts and slot
// values, and a per-relation scan cache (the same base relation scanned
// twice shares its parts; parts are never mutated after construction).
type evaluator struct {
	w         *wsd.WSD
	n         int
	units     []unit
	altCounts []int
	cells     [][]sym.ID // per unit: open-slot values (nil for tuple-level units)
	scans     map[string][]part
	cost      *obs.Cost // per-request sink (nil when untraced)
	plan      *Plan     // plan under construction (nil when not explaining)
	cur       *PlanNode // node receiving space() actuals right now
}

func newEvaluator(w *wsd.WSD) *evaluator {
	ev := &evaluator{w: w, scans: map[string][]part{}}
	for ci := 0; ci < w.Components(); ci++ {
		if _, cells, ok := w.TemplateSlots(ci); ok {
			for si, cell := range cells {
				if len(cell) < 2 {
					continue // fixed slot: a constant, not a choice axis
				}
				ev.units = append(ev.units, unit{comp: ci, slot: si})
				ev.altCounts = append(ev.altCounts, len(cell))
				ev.cells = append(ev.cells, cell)
			}
			continue
		}
		ev.units = append(ev.units, unit{comp: ci, slot: -1})
		ev.altCounts = append(ev.altCounts, w.AltCount(ci))
		ev.cells = append(ev.cells, nil)
	}
	ev.n = len(ev.units)
	return ev
}

// space returns the joint alternative count of a set of origins,
// guarded by wsd.MaxMergeAlts.
func (ev *evaluator) space(origins []int) (int, error) {
	space := 1
	for _, o := range origins {
		space *= ev.altCounts[o]
		if space > wsd.MaxMergeAlts {
			return 0, fmt.Errorf("%w: %d correlated components need %d+ joint alternatives (limit %d)",
				ErrEntangled, len(origins), space, wsd.MaxMergeAlts)
		}
	}
	// Every space() call is followed by an odometer sweep of exactly
	// `space` joint alternatives, so this is also the tabulation count.
	// The same numbers land on the current plan node, which is what
	// makes plan-node actuals reconcile with the cost counters.
	ev.cost.Max(obs.EvalMergeSpaceMax, int64(space))
	ev.cost.Add(obs.EvalAltsTabulated, int64(space))
	if ev.cur != nil {
		ev.cur.Act.MergeSpace = satAdd(ev.cur.Act.MergeSpace, int64(space))
		if int64(space) > ev.cur.Act.MaxSpace {
			ev.cur.Act.MaxSpace = int64(space)
		}
	}
	return space, nil
}

// odometer enumerates every choice vector over the given origins (last
// origin fastest, matching part.at's indexing), writing digits into
// choice and calling fn once per combination.
func (ev *evaluator) odometer(origins []int, choice []int, fn func()) {
	for _, o := range origins {
		choice[o] = 0
	}
	for {
		fn()
		i := len(origins) - 1
		for ; i >= 0; i-- {
			o := origins[i]
			choice[o]++
			if choice[o] < ev.altCounts[o] {
				break
			}
			choice[o] = 0
		}
		if i < 0 {
			return
		}
	}
}

// scanParts builds (and caches) the parts of a base relation: one
// tabulated part per tuple-level component whose support mentions the
// relation, and one symbolic template part per attribute-level
// component over it — the template's field product is never expanded.
func (ev *evaluator) scanParts(name string) []part {
	if ps, ok := ev.scans[name]; ok {
		return ps
	}
	var ps []part
	for ci := 0; ci < ev.w.Components(); ci++ {
		if rel, cells, ok := ev.w.TemplateSlots(ci); ok {
			if rel != name {
				continue
			}
			t := &tmplPart{out: make([]tmplCol, len(cells))}
			for si, cell := range cells {
				if len(cell) == 1 {
					t.out[si] = tmplCol{unit: -1, constID: cell[0]}
					continue
				}
				t.out[si] = tmplCol{unit: ev.unitOf(ci, si)}
			}
			ps = append(ps, part{origins: t.unitsOf(), tmpl: t})
			continue
		}
		u := ev.unitOf(ci, -1)
		alts := make([][]sym.Tuple, ev.altCounts[u])
		any := false
		for ai := range alts {
			for _, f := range ev.w.AltFacts(ci, ai) {
				if f.Rel == name {
					alts[ai] = append(alts[ai], f.Args.Intern())
					any = true
				}
			}
		}
		if any {
			ps = append(ps, part{origins: []int{u}, alts: alts})
		}
	}
	ev.scans[name] = ps
	return ps
}

// unitOf resolves a (component, slot) pair to its unit index. Panics on
// a pair that is not a choice axis (programming error).
func (ev *evaluator) unitOf(ci, slot int) int {
	for u, un := range ev.units {
		if un.comp == ci && un.slot == slot {
			return u
		}
	}
	panic("wsdalg: no unit for component slot")
}

// addUnit appends a synthetic choice unit — a fresh independent axis
// that is not backed by any input component (choiceof's nondeterministic
// pick). Safe mid-evaluation: choice vectors are sized per sweep and the
// assembly's union-find is built after all units exist.
func (ev *evaluator) addUnit(altCount int) int {
	u := ev.n
	ev.units = append(ev.units, unit{comp: -1, slot: -1})
	ev.altCounts = append(ev.altCounts, altCount)
	ev.cells = append(ev.cells, nil)
	ev.n = len(ev.units)
	return u
}

// eval evaluates one algebra expression to a decomposed relation. When
// a plan is being built it wraps evalExpr in a PlanNode: the node is
// attached to its parent *before* the body runs (so an error retains
// the partial subtree), receives space() actuals while it is current,
// and is closed with parts/units/rows actuals and wall time afterwards.
// Without a plan it is evalExpr with zero overhead.
func (ev *evaluator) eval(e algebra.Expr) (dRel, error) {
	if ev.plan == nil {
		return ev.evalExpr(e)
	}
	node := &PlanNode{Op: opName(e), Detail: opDetail(e)}
	parent := ev.cur
	if parent != nil {
		parent.Children = append(parent.Children, node)
	}
	ev.cur = node
	start := time.Now()
	d, err := ev.evalExpr(e)
	node.Act.DurUS = time.Since(start).Microseconds()
	ev.cur = parent
	if err != nil {
		node.markError(err)
		return d, err
	}
	node.Act.Parts = int64(len(d.parts))
	var units []int
	for i := range d.parts {
		units = mergeOrigins(units, d.parts[i].origins)
	}
	node.Act.Units = int64(len(units))
	node.Act.Rows = actRows(&d)
	return d, nil
}

// evalExpr is the operator dispatch. It mirrors algebra.evalInst case
// by case, lifted from row sets to parts. Each case records its
// estimate (via setEst, a no-op when not planning) from its inputs
// before its own work runs.
func (ev *evaluator) evalExpr(e algebra.Expr) (dRel, error) {
	switch n := e.(type) {
	case algebra.ConstRel:
		cols, err := n.Schema()
		if err != nil {
			return dRel{}, err
		}
		ev.setEst(PlanStats{Parts: 1, Rows: int64(len(n.Rows))})
		rows := make([]sym.Tuple, 0, len(n.Rows))
		for _, r := range n.Rows {
			rows = append(rows, rel.Fact(r).Intern())
		}
		rows = sortDedupTuples(rows)
		if len(rows) == 0 {
			return dRel{cols: cols}, nil
		}
		return dRel{cols: cols, parts: []part{{alts: [][]sym.Tuple{rows}}}}, nil

	case algebra.Rel:
		cols, err := n.Schema()
		if err != nil {
			return dRel{}, err
		}
		ri := -1
		for i, s := range ev.w.Schema() {
			if s.Name == n.Name {
				ri = i
				break
			}
		}
		if ri < 0 {
			return dRel{}, fmt.Errorf("wsdalg: relation %s not in decomposition", n.Name)
		}
		if ev.w.Schema()[ri].Arity != len(cols) {
			return dRel{}, fmt.Errorf("wsdalg: scan %s names %d columns, relation has arity %d",
				n.Name, len(cols), ev.w.Schema()[ri].Arity)
		}
		if ev.cur != nil {
			ev.setEst(ev.scanEst(n.Name))
		}
		return dRel{cols: cols, parts: ev.scanParts(n.Name)}, nil

	case algebra.Project:
		in, err := ev.eval(n.E)
		if err != nil {
			return dRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dRel{}, err
		}
		if ev.cur != nil {
			ev.setEst(ev.drelStats(&in))
		}
		idx := make([]int, len(n.Cols))
		for i, c := range n.Cols {
			idx[i] = indexOf(in.cols, c)
		}
		out := dRel{cols: n.Cols}
		for i := range in.parts {
			p := &in.parts[i]
			if t := p.tmpl; t != nil {
				// Symbolic projection: reindex the out-columns and narrow
				// the origins to the slots still referenced — a π over a
				// few fields of a wide template depends on those fields'
				// units only.
				nt := &tmplPart{out: make([]tmplCol, len(idx)), preds: t.preds}
				for i, j := range idx {
					nt.out[i] = t.out[j]
				}
				out.parts = append(out.parts, part{origins: nt.unitsOf(), tmpl: nt})
				continue
			}
			mapPart(&out, p, func(t sym.Tuple) (sym.Tuple, bool) {
				g := make(sym.Tuple, len(idx))
				for i, j := range idx {
					g[i] = t[j]
				}
				return g, true
			})
		}
		return out, nil

	case algebra.Select:
		in, err := ev.eval(n.E)
		if err != nil {
			return dRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dRel{}, err
		}
		// Resolve each predicate once to column indices / interned
		// constants; alternatives are ground, so selection is an exact
		// per-row ID comparison — = and ≠ evaluate uniformly, which is
		// why ≠ selections are decidable on decompositions.
		preds, err := resolvePreds(n.Preds, in.cols)
		if err != nil {
			return dRel{}, err
		}
		if ev.cur != nil {
			ev.setEst(ev.drelStats(&in))
		}
		out := dRel{cols: in.cols}
	selParts:
		for i := range in.parts {
			p := &in.parts[i]
			if t := p.tmpl; t != nil {
				// Symbolic selection: compile each predicate against the
				// template's column sources. Constant-only predicates
				// decide statically (a false one empties the part); the
				// rest filter per choice, origins untouched.
				nt := &tmplPart{out: t.out, preds: append([]tmplPred(nil), t.preds...)}
				for _, rp := range preds {
					tp := tmplPred{eq: rp.eq,
						l: tmplColOf(t, rp.lIdx, rp.lConst),
						r: tmplColOf(t, rp.rIdx, rp.rCon)}
					if tp.l.unit < 0 && tp.r.unit < 0 {
						if tp.eq != (tp.l.constID == tp.r.constID) {
							continue selParts // statically empty part
						}
						continue // statically true: drop the predicate
					}
					nt.preds = append(nt.preds, tp)
				}
				out.parts = append(out.parts, part{origins: nt.unitsOf(), tmpl: nt})
				continue
			}
			mapPart(&out, p, func(t sym.Tuple) (sym.Tuple, bool) {
				for _, p := range preds {
					if !p.holds(t) {
						return nil, false
					}
				}
				return t, true
			})
		}
		return out, nil

	case algebra.Rename:
		in, err := ev.eval(n.E)
		if err != nil {
			return dRel{}, err
		}
		cols, err := n.Schema()
		if err != nil {
			return dRel{}, err
		}
		if ev.cur != nil {
			ev.setEst(ev.drelStats(&in))
		}
		return dRel{cols: cols, parts: in.parts}, nil

	case algebra.Join:
		l, err := ev.eval(n.L)
		if err != nil {
			return dRel{}, err
		}
		r, err := ev.eval(n.R)
		if err != nil {
			return dRel{}, err
		}
		cols, err := n.Schema()
		if err != nil {
			return dRel{}, err
		}
		if ev.cur != nil {
			ev.setEst(ev.joinEst(&l, &r))
		}
		return ev.joinRels(l, r, cols)

	case algebra.Union:
		l, err := ev.eval(n.L)
		if err != nil {
			return dRel{}, err
		}
		r, err := ev.eval(n.R)
		if err != nil {
			return dRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dRel{}, err
		}
		parts := make([]part, 0, len(l.parts)+len(r.parts))
		parts = append(parts, l.parts...)
		parts = append(parts, r.parts...)
		u := dRel{cols: l.cols, parts: parts}
		if ev.cur != nil {
			ev.setEst(ev.drelStats(&u))
		}
		return u, nil

	case algebra.Diff:
		l, err := ev.eval(n.L)
		if err != nil {
			return dRel{}, err
		}
		r, err := ev.eval(n.R)
		if err != nil {
			return dRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dRel{}, err
		}
		if ev.cur != nil {
			ev.setEst(ev.diffEst(&l, &r))
		}
		return ev.diffRels(&l, &r)

	case algebra.Possible:
		in, err := ev.eval(n.E)
		if err != nil {
			return dRel{}, err
		}
		if ev.cur != nil {
			ev.setEst(ev.possibleEst(&in))
		}
		rows, err := ev.supportRows(&in)
		if err != nil {
			return dRel{}, err
		}
		if len(rows) == 0 {
			return dRel{cols: in.cols}, nil
		}
		return dRel{cols: in.cols, parts: []part{{alts: [][]sym.Tuple{rows}}}}, nil

	case algebra.Certain:
		in, err := ev.eval(n.E)
		if err != nil {
			return dRel{}, err
		}
		if ev.cur != nil {
			ev.setEst(ev.certainEst(&in))
		}
		rows, err := ev.certainRows(&in)
		if err != nil {
			return dRel{}, err
		}
		if len(rows) == 0 {
			return dRel{cols: in.cols}, nil
		}
		return dRel{cols: in.cols, parts: []part{{alts: [][]sym.Tuple{rows}}}}, nil

	case algebra.ChoiceOf:
		in, err := ev.eval(n.E)
		if err != nil {
			return dRel{}, err
		}
		support, err := ev.supportRows(&in)
		if err != nil {
			return dRel{}, err
		}
		if ev.cur != nil {
			ev.setEst(ev.choiceEst(&in, len(support)))
		}
		return ev.choiceRel(&in, support)
	}
	return dRel{}, fmt.Errorf("wsdalg: unknown expression %T", e)
}

// supportRows computes the support of a decomposed relation: the union
// of its value over every world. Tabulated parts contribute all their
// alternatives directly; template parts sweep their (MaxMergeAlts-
// guarded) origin space — the support of a wide template genuinely is
// its field product, so the guard bounds output size, not slack.
func (ev *evaluator) supportRows(in *dRel) ([]sym.Tuple, error) {
	var rows []sym.Tuple
	choice := make([]int, ev.n)
	for i := range in.parts {
		p := &in.parts[i]
		if p.tmpl == nil {
			for _, alt := range p.alts {
				rows = append(rows, alt...)
			}
			continue
		}
		if _, err := ev.space(p.origins); err != nil {
			return nil, err
		}
		ev.odometer(p.origins, choice, func() {
			rows = append(rows, p.at(choice, ev)...)
		})
	}
	return sortDedupTuples(rows), nil
}

// certainRows computes the certain answer of a decomposed relation: the
// intersection of its value over every world. The parts are assembled
// into a private single-relation sub-decomposition and normalized —
// Normalize's certain-fold is exactly the intersection computation —
// and the certain facts are read back.
func (ev *evaluator) certainRows(in *dRel) ([]sym.Tuple, error) {
	if len(in.parts) == 0 {
		return nil, nil
	}
	sub := wsd.New(table.Schema{{Name: "q", Arity: len(in.cols)}})
	tp := make([]taggedPart, len(in.parts))
	for i, p := range in.parts {
		tp[i] = taggedPart{rel: "q", p: p}
	}
	if err := ev.assemble(sub, tp, nil); err != nil {
		return nil, err
	}
	sub.SetObsCost(ev.cost)
	err := sub.Normalize()
	sub.SetObsCost(nil)
	if err != nil {
		return nil, err
	}
	var rows []sym.Tuple
	for _, f := range sub.CertainFacts() {
		rows = append(rows, f.Args.Intern())
	}
	return sortDedupTuples(rows), nil
}

// choiceRel builds choiceof(e): a fresh synthetic unit ranges over the
// operand's support, and in each world the value is the chosen tuple
// when the operand offers it there. In worlds where the chosen tuple is
// absent the value collapses onto the first available tuple — a
// duplicate of the world another choice already produces, so the
// represented world set is exact — and an empty operand stays empty.
func (ev *evaluator) choiceRel(in *dRel, support []sym.Tuple) (dRel, error) {
	if len(support) == 0 {
		return dRel{cols: in.cols}, nil
	}
	u := ev.addUnit(len(support))
	var origins []int
	for i := range in.parts {
		origins = mergeOrigins(origins, in.parts[i].origins)
	}
	all := mergeOrigins(origins, []int{u})
	space, err := ev.space(all)
	if err != nil {
		return dRel{}, err
	}
	alts := make([][]sym.Tuple, 0, space)
	choice := make([]int, ev.n)
	ev.odometer(all, choice, func() {
		var avail []sym.Tuple
		for i := range in.parts {
			avail = append(avail, in.parts[i].at(choice, ev)...)
		}
		avail = sortDedupTuples(avail)
		var rows []sym.Tuple
		if len(avail) > 0 {
			if t := support[choice[u]]; containsTuple(avail, t) {
				rows = []sym.Tuple{t}
			} else {
				rows = []sym.Tuple{avail[0]}
			}
		}
		alts = append(alts, rows)
	})
	return dRel{cols: in.cols, parts: []part{{origins: all, alts: alts}}}, nil
}

// diffRels computes the per-world set difference l ∖ r. Each left part
// re-tabulates over its origins merged with every right-side origin —
// the subtrahend's value depends on all of them jointly — guarded by
// MaxMergeAlts; template left parts tabulate here, which is the "where
// decidable on the decomposition" rule.
func (ev *evaluator) diffRels(l, r *dRel) (dRel, error) {
	if len(l.parts) == 0 || len(r.parts) == 0 {
		return dRel{cols: l.cols, parts: l.parts}, nil
	}
	var rOrigins []int
	for i := range r.parts {
		rOrigins = mergeOrigins(rOrigins, r.parts[i].origins)
	}
	out := dRel{cols: l.cols}
	choice := make([]int, ev.n)
	for li := range l.parts {
		lp := &l.parts[li]
		origins := mergeOrigins(append([]int(nil), lp.origins...), rOrigins)
		space, err := ev.space(origins)
		if err != nil {
			return dRel{}, err
		}
		alts := make([][]sym.Tuple, 0, space)
		any := false
		ev.odometer(origins, choice, func() {
			var sub []sym.Tuple
			for ri := range r.parts {
				sub = append(sub, r.parts[ri].at(choice, ev)...)
			}
			rows := subtractRows(lp.at(choice, ev), sortDedupTuples(sub))
			if len(rows) > 0 {
				any = true
			}
			alts = append(alts, rows)
		})
		if any {
			out.parts = append(out.parts, part{origins: origins, alts: alts})
		}
	}
	return out, nil
}

// subtractRows returns ls minus the sorted set rs as a fresh sorted
// duplicate-free slice (ls is shared with its part and never mutated).
func subtractRows(ls, rs []sym.Tuple) []sym.Tuple {
	var out []sym.Tuple
	for _, t := range ls {
		if !containsTuple(rs, t) {
			out = append(out, t)
		}
	}
	return sortDedupTuples(out)
}

// containsTuple reports membership in a sorted duplicate-free row set.
func containsTuple(rows []sym.Tuple, t sym.Tuple) bool {
	i := sort.Search(len(rows), func(i int) bool { return !tupleLess(rows[i], t) })
	return i < len(rows) && rows[i].Equal(t)
}

// joinRels distributes the natural join over both unions of parts; each
// pairwise join tabulates over the merged origin space.
func (ev *evaluator) joinRels(l, r dRel, cols []string) (dRel, error) {
	var lShared, rShared, rExtra []int
	for j, c := range r.cols {
		if i := indexOf(l.cols, c); i >= 0 {
			lShared = append(lShared, i)
			rShared = append(rShared, j)
		} else {
			rExtra = append(rExtra, j)
		}
	}
	out := dRel{cols: cols}
	choice := make([]int, ev.n)
	for li := range l.parts {
		for ri := range r.parts {
			lp, rp := &l.parts[li], &r.parts[ri]
			origins := mergeOrigins(append([]int(nil), lp.origins...), rp.origins)
			space, err := ev.space(origins)
			if err != nil {
				return dRel{}, err
			}
			alts := make([][]sym.Tuple, 0, space)
			any := false
			ev.odometer(origins, choice, func() {
				joined := joinTuples(lp.at(choice, ev), rp.at(choice, ev),
					lShared, rShared, rExtra, len(cols))
				if len(joined) > 0 {
					any = true
				}
				alts = append(alts, joined)
			})
			if any {
				out.parts = append(out.parts, part{origins: origins, alts: alts})
			}
		}
	}
	return out, nil
}

// joinTuples is the ground natural join of two row sets (hash on the
// shared columns with exact confirmation, as in algebra.evalInst).
func joinTuples(ls, rs []sym.Tuple, lShared, rShared, rExtra []int, width int) []sym.Tuple {
	if len(ls) == 0 || len(rs) == 0 {
		return nil
	}
	key := func(t sym.Tuple, at []int) uint64 {
		h := uint64(1469598103934665603)
		for _, j := range at {
			h ^= uint64(t[j])
			h *= 1099511628211
		}
		return h
	}
	index := make(map[uint64][]sym.Tuple, len(rs))
	for _, rt := range rs {
		index[key(rt, rShared)] = append(index[key(rt, rShared)], rt)
	}
	var out []sym.Tuple
	for _, lt := range ls {
	probe:
		for _, rt := range index[key(lt, lShared)] {
			for k := range lShared {
				if lt[lShared[k]] != rt[rShared[k]] {
					continue probe
				}
			}
			g := make(sym.Tuple, 0, width)
			g = append(g, lt...)
			for _, j := range rExtra {
				g = append(g, rt[j])
			}
			out = append(out, g)
		}
	}
	return sortDedupTuples(out)
}

// mapPart applies a tuple-local map (project, select, …) to every
// alternative of one tabulated part, appending the result to out;
// tuple-local operators distribute over the union of parts, so origins
// are untouched. A part whose every alternative maps to the empty set
// contributes nothing and is dropped. (Template parts transform
// symbolically at their call sites instead.)
func mapPart(out *dRel, p *part, f func(sym.Tuple) (sym.Tuple, bool)) {
	alts := make([][]sym.Tuple, len(p.alts))
	any := false
	for ai, alt := range p.alts {
		var rows []sym.Tuple
		for _, t := range alt {
			if g, ok := f(t); ok {
				rows = append(rows, g)
			}
		}
		rows = sortDedupTuples(rows)
		if len(rows) > 0 {
			any = true
		}
		alts[ai] = rows
	}
	if any {
		out.parts = append(out.parts, part{origins: p.origins, alts: alts})
	}
}

// tmplColOf resolves one compiled predicate operand against a template
// body: a column index reads the template's column source, a constant
// stays a constant.
func tmplColOf(t *tmplPart, idx int, constID sym.ID) tmplCol {
	if idx >= 0 {
		return t.out[idx]
	}
	return tmplCol{unit: -1, constID: constID}
}

// resolvedPred is a selection predicate compiled to column indices and
// interned constants.
type resolvedPred struct {
	eq           bool
	lIdx, rIdx   int
	lConst, rCon sym.ID
}

func (p *resolvedPred) holds(t sym.Tuple) bool {
	l, r := p.lConst, p.rCon
	if p.lIdx >= 0 {
		l = t[p.lIdx]
	}
	if p.rIdx >= 0 {
		r = t[p.rIdx]
	}
	return p.eq == (l == r)
}

func resolvePreds(preds []algebra.Pred, cols []string) ([]resolvedPred, error) {
	out := make([]resolvedPred, len(preds))
	for i, p := range preds {
		rp := resolvedPred{eq: p.Op == cond.Eq, lIdx: -1, rIdx: -1}
		for side, o := range []algebra.Operand{p.L, p.R} {
			idx, id, err := resolveOperand(o, cols)
			if err != nil {
				return nil, err
			}
			if side == 0 {
				rp.lIdx, rp.lConst = idx, id
			} else {
				rp.rIdx, rp.rCon = idx, id
			}
		}
		out[i] = rp
	}
	return out, nil
}

func resolveOperand(o algebra.Operand, cols []string) (idx int, id sym.ID, err error) {
	if c, isConst := o.Const(); isConst {
		return -1, sym.Const(c), nil
	}
	col, _ := o.Column()
	j := indexOf(cols, col)
	if j < 0 {
		return 0, 0, fmt.Errorf("wsdalg: select column %s not in %v", col, cols)
	}
	return j, 0, nil
}

// sortDedupTuples sorts rows lexicographically by interned ID and
// removes duplicates in place (relations are sets; projection and join
// can collapse rows).
func sortDedupTuples(ts []sym.Tuple) []sym.Tuple {
	sort.Slice(ts, func(i, j int) bool { return tupleLess(ts[i], ts[j]) })
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || !t.Equal(ts[i-1]) {
			out = append(out, t)
		}
	}
	return out
}

func tupleLess(a, b sym.Tuple) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// mergeOrigins unions a sorted origin list into dst (kept sorted and
// duplicate-free).
func mergeOrigins(dst, src []int) []int {
	for _, o := range src {
		i := sort.SearchInts(dst, o)
		if i < len(dst) && dst[i] == o {
			continue
		}
		dst = append(dst, 0)
		copy(dst[i+1:], dst[i:])
		dst[i] = o
	}
	return dst
}

func indexOf(cols []string, c string) int {
	for i, x := range cols {
		if x == c {
			return i
		}
	}
	return -1
}
