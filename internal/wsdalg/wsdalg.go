// Package wsdalg evaluates positive relational-algebra queries directly
// on world-set decompositions: Eval maps a wsd.WSD D and a query q to a
// new decomposition denoting exactly {q(W) : W ∈ rep(D)}, without ever
// enumerating worlds. It is the query-engine layer on top of the
// decomposition backend, following the world-set-decomposition line of
// work (Olteanu, Koch & Antova, "World-set decompositions:
// expressiveness and efficient algorithms"; Antova, Koch & Olteanu,
// "10^(10^6) Worlds and Beyond"): positive algebra can be pushed through
// a decomposition with only local recombination, so the paper's §3–§5
// decision problems over query answers (POSS/CERT of answer facts,
// CONT of answer world-sets) run at decomposition scale.
//
// The evaluator represents each intermediate relation as a *decomposed
// relation*: a union of independent "parts", where a part is a
// deterministic function from the alternative choices of a few input
// components (its origins) to a set of rows. Operators act as follows:
//
//   - scans split a relation along the input components that mention it
//     (one single-origin part per component);
//   - selection, projection and renaming are tuple-local, so they map
//     each part's alternatives pointwise and distribute over the union;
//   - join distributes over the union of parts; each pairwise join
//     merges the two parts' origin sets and tabulates the joined rows
//     over the merged choice space (the only place where the product
//     structure coarsens, and the only blow-up — guarded by the same
//     wsd.MaxMergeAlts bound Normalize uses);
//   - union concatenates part lists (no recombination at all).
//
// The final answer decomposition groups correlated parts (shared
// origins) into components, one alternative per joint choice, and hands
// the result to wsd.Normalize: its counting-argument factorizer merges
// answer components whose fact supports collide (the same answer fact
// produced along different paths) and re-splits whatever became
// independent, so the returned WSD satisfies all decomposition
// invariants and Count is the exact number of distinct answers.
//
// Every step is exact — parts tabulate per-choice values, never
// approximations — so rep(Eval(D, q)) = q(rep(D)) world-for-world. The
// supported fragment is positive existential algebra (no ≠ selections)
// plus the identity query; Supported gates the entry points and the
// CLIs turn its error into their "unsupported fragment" exit.
package wsdalg

import (
	"errors"
	"fmt"
	"sort"

	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/unionfind"
	"pw/internal/wsd"
)

// ErrUnsupported marks queries outside the decomposition-evaluable
// fragment (positive existential algebra and the identity query).
// First-order and DATALOG queries, and algebra with ≠ selections, stay
// on the per-instance engines.
var ErrUnsupported = errors.New("query outside the positive-algebra fragment evaluable on decompositions")

// ErrEntangled is wrapped by evaluation errors when a join or the final
// component assembly would have to tabulate more than wsd.MaxMergeAlts
// joint alternatives: the answer decomposition is too entangled to
// build without degenerating into a world list.
var ErrEntangled = errors.New("answer decomposition too entangled")

// Supported reports whether q lies in the fragment Eval handles:
// nil for the identity query and for positive (no ≠) relational-algebra
// queries, an ErrUnsupported-wrapping error otherwise.
func Supported(q query.Query) error {
	switch a := q.(type) {
	case query.Identity:
		return nil
	case query.Algebra:
		if !a.Positive() {
			return fmt.Errorf("%w: %s uses != selections (non-positive algebra)", ErrUnsupported, a.Label())
		}
		return nil
	default:
		return fmt.Errorf("%w: %s is not a relational-algebra query", ErrUnsupported, q.Label())
	}
}

// Eval evaluates a supported query on a decomposition, returning a
// normalized decomposition of the answer world-set:
//
//	rep(Eval(D, q)) = { q(W) : W ∈ rep(D) }.
//
// The result's schema is the query's output vector (one relation per
// Out). Errors: unsupported queries (ErrUnsupported), schema errors
// from the algebra layer, and the ErrEntangled blow-up guard.
func Eval(w *wsd.WSD, q query.Query) (*wsd.WSD, error) {
	if err := Supported(q); err != nil {
		return nil, err
	}
	if query.IsIdentity(q) {
		return w.Clone(), nil
	}
	a := q.(query.Algebra)

	// Output schema: one relation per Out, arity from the expression.
	outSchema := make(table.Schema, 0, len(a.Outs))
	seen := map[string]bool{}
	for _, o := range a.Outs {
		cols, err := o.Expr.Schema()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Label(), err)
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("%s: duplicate output relation %s", a.Label(), o.Name)
		}
		seen[o.Name] = true
		outSchema = append(outSchema, table.SchemaRel{Name: o.Name, Arity: len(cols)})
	}
	out := wsd.New(outSchema)

	// rep(D) = ∅ ⇒ the answer world-set is ∅ too (there is no world to
	// query). A component with zero alternatives is its canonical form.
	if w.Empty() {
		if err := out.AddComponent(); err != nil {
			return nil, err
		}
		return out, out.Normalize()
	}

	ev := newEvaluator(w)
	type outPart struct {
		rel string
		p   part
	}
	var parts []outPart
	for _, o := range a.Outs {
		d, err := ev.eval(o.Expr)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Label(), err)
		}
		for _, p := range d.parts {
			parts = append(parts, outPart{rel: o.Name, p: p})
		}
	}

	// Group correlated parts: parts sharing an origin component are
	// functions of the same input choice, so they must land in one
	// answer component. Origin-free parts (constant rows) are certain;
	// each becomes a single-alternative component of its own and
	// Normalize merges all certain components afterwards.
	uf := unionfind.NewDense(ev.n)
	for _, op := range parts {
		if len(op.p.origins) == 0 {
			continue // constant rows: handled as certain components below
		}
		for _, o := range op.p.origins[1:] {
			uf.Union(int32(op.p.origins[0]), int32(o))
		}
	}
	groups := map[int32][]outPart{}
	var order []int32
	for _, op := range parts {
		if len(op.p.origins) == 0 {
			alt := make(wsd.Alt, 0, len(op.p.alts[0]))
			for _, t := range op.p.alts[0] {
				alt = append(alt, wsd.Fact{Rel: op.rel, Args: rel.ResolveFact(t)})
			}
			if err := out.AddComponent(alt); err != nil {
				return nil, err
			}
			continue
		}
		r := uf.Find(int32(op.p.origins[0]))
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], op)
	}

	for _, r := range order {
		group := groups[r]
		var origins []int
		for _, op := range group {
			origins = mergeOrigins(origins, op.p.origins)
		}
		space, err := ev.space(origins)
		if err != nil {
			return nil, err
		}
		alts := make([]wsd.Alt, 0, space)
		choice := make([]int, ev.n)
		ev.odometer(origins, choice, func() {
			var alt wsd.Alt
			for _, op := range group {
				for _, t := range op.p.at(choice, ev.altCounts) {
					alt = append(alt, wsd.Fact{Rel: op.rel, Args: rel.ResolveFact(t)})
				}
			}
			alts = append(alts, alt)
		})
		if err := out.AddComponent(alts...); err != nil {
			return nil, err
		}
	}
	return out, out.Normalize()
}

// part is one factor of a decomposed relation: a deterministic function
// from the alternative choices of its origin components to a row set.
// alts is indexed by the odometer over origins (last origin fastest),
// with each origin digit ranging over the input component's full
// alternative count; origins is sorted and duplicate-free. An
// origin-free part (origins nil, one entry) is a constant row set.
type part struct {
	origins []int
	alts    [][]sym.Tuple
}

// at returns the part's row set under a full choice vector (indexed by
// input component).
func (p *part) at(choice []int, altCounts []int) []sym.Tuple {
	idx := 0
	for _, o := range p.origins {
		idx = idx*altCounts[o] + choice[o]
	}
	return p.alts[idx]
}

// dRel is a decomposed relation: named columns over a union of parts.
// The relation's value in a world is the union of every part's value at
// that world's choice vector.
type dRel struct {
	cols  []string
	parts []part
}

// evaluator carries the per-evaluation state: the input decomposition,
// its component alternative counts, and a per-relation scan cache (the
// same base relation scanned twice shares its parts; parts are never
// mutated after construction).
type evaluator struct {
	w         *wsd.WSD
	n         int
	altCounts []int
	scans     map[string][]part
}

func newEvaluator(w *wsd.WSD) *evaluator {
	counts := w.Alternatives()
	return &evaluator{w: w, n: len(counts), altCounts: counts, scans: map[string][]part{}}
}

// space returns the joint alternative count of a set of origins,
// guarded by wsd.MaxMergeAlts.
func (ev *evaluator) space(origins []int) (int, error) {
	space := 1
	for _, o := range origins {
		space *= ev.altCounts[o]
		if space > wsd.MaxMergeAlts {
			return 0, fmt.Errorf("%w: %d correlated components need %d+ joint alternatives (limit %d)",
				ErrEntangled, len(origins), space, wsd.MaxMergeAlts)
		}
	}
	return space, nil
}

// odometer enumerates every choice vector over the given origins (last
// origin fastest, matching part.at's indexing), writing digits into
// choice and calling fn once per combination.
func (ev *evaluator) odometer(origins []int, choice []int, fn func()) {
	for _, o := range origins {
		choice[o] = 0
	}
	for {
		fn()
		i := len(origins) - 1
		for ; i >= 0; i-- {
			o := origins[i]
			choice[o]++
			if choice[o] < ev.altCounts[o] {
				break
			}
			choice[o] = 0
		}
		if i < 0 {
			return
		}
	}
}

// scanParts builds (and caches) the parts of a base relation: one part
// per input component whose support mentions the relation, tabulating
// the relation's fragment per alternative.
func (ev *evaluator) scanParts(name string) []part {
	if ps, ok := ev.scans[name]; ok {
		return ps
	}
	var ps []part
	for ci := 0; ci < ev.n; ci++ {
		alts := make([][]sym.Tuple, ev.altCounts[ci])
		any := false
		for ai := range alts {
			for _, f := range ev.w.AltFacts(ci, ai) {
				if f.Rel == name {
					alts[ai] = append(alts[ai], f.Args.Intern())
					any = true
				}
			}
		}
		if any {
			ps = append(ps, part{origins: []int{ci}, alts: alts})
		}
	}
	ev.scans[name] = ps
	return ps
}

// eval evaluates one algebra expression to a decomposed relation. It
// mirrors algebra.evalInst case by case, lifted from row sets to parts.
func (ev *evaluator) eval(e algebra.Expr) (dRel, error) {
	switch n := e.(type) {
	case algebra.ConstRel:
		cols, err := n.Schema()
		if err != nil {
			return dRel{}, err
		}
		rows := make([]sym.Tuple, 0, len(n.Rows))
		for _, r := range n.Rows {
			rows = append(rows, rel.Fact(r).Intern())
		}
		rows = sortDedupTuples(rows)
		if len(rows) == 0 {
			return dRel{cols: cols}, nil
		}
		return dRel{cols: cols, parts: []part{{alts: [][]sym.Tuple{rows}}}}, nil

	case algebra.Rel:
		cols, err := n.Schema()
		if err != nil {
			return dRel{}, err
		}
		ri := -1
		for i, s := range ev.w.Schema() {
			if s.Name == n.Name {
				ri = i
				break
			}
		}
		if ri < 0 {
			return dRel{}, fmt.Errorf("wsdalg: relation %s not in decomposition", n.Name)
		}
		if ev.w.Schema()[ri].Arity != len(cols) {
			return dRel{}, fmt.Errorf("wsdalg: scan %s names %d columns, relation has arity %d",
				n.Name, len(cols), ev.w.Schema()[ri].Arity)
		}
		return dRel{cols: cols, parts: ev.scanParts(n.Name)}, nil

	case algebra.Project:
		in, err := ev.eval(n.E)
		if err != nil {
			return dRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dRel{}, err
		}
		idx := make([]int, len(n.Cols))
		for i, c := range n.Cols {
			idx[i] = indexOf(in.cols, c)
		}
		return mapParts(in, n.Cols, func(t sym.Tuple) (sym.Tuple, bool) {
			g := make(sym.Tuple, len(idx))
			for i, j := range idx {
				g[i] = t[j]
			}
			return g, true
		}), nil

	case algebra.Select:
		in, err := ev.eval(n.E)
		if err != nil {
			return dRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dRel{}, err
		}
		// Resolve each predicate once to column indices / interned
		// constants; alternatives are ground, so selection is an exact
		// per-row ID comparison (the fragment gate has already excluded
		// ≠, but the comparison handles both operators uniformly).
		preds, err := resolvePreds(n.Preds, in.cols)
		if err != nil {
			return dRel{}, err
		}
		return mapParts(in, in.cols, func(t sym.Tuple) (sym.Tuple, bool) {
			for _, p := range preds {
				if !p.holds(t) {
					return nil, false
				}
			}
			return t, true
		}), nil

	case algebra.Rename:
		in, err := ev.eval(n.E)
		if err != nil {
			return dRel{}, err
		}
		cols, err := n.Schema()
		if err != nil {
			return dRel{}, err
		}
		return dRel{cols: cols, parts: in.parts}, nil

	case algebra.Join:
		l, err := ev.eval(n.L)
		if err != nil {
			return dRel{}, err
		}
		r, err := ev.eval(n.R)
		if err != nil {
			return dRel{}, err
		}
		cols, err := n.Schema()
		if err != nil {
			return dRel{}, err
		}
		return ev.joinRels(l, r, cols)

	case algebra.Union:
		l, err := ev.eval(n.L)
		if err != nil {
			return dRel{}, err
		}
		r, err := ev.eval(n.R)
		if err != nil {
			return dRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dRel{}, err
		}
		parts := make([]part, 0, len(l.parts)+len(r.parts))
		parts = append(parts, l.parts...)
		parts = append(parts, r.parts...)
		return dRel{cols: l.cols, parts: parts}, nil
	}
	return dRel{}, fmt.Errorf("wsdalg: unknown expression %T", e)
}

// joinRels distributes the natural join over both unions of parts; each
// pairwise join tabulates over the merged origin space.
func (ev *evaluator) joinRels(l, r dRel, cols []string) (dRel, error) {
	var lShared, rShared, rExtra []int
	for j, c := range r.cols {
		if i := indexOf(l.cols, c); i >= 0 {
			lShared = append(lShared, i)
			rShared = append(rShared, j)
		} else {
			rExtra = append(rExtra, j)
		}
	}
	out := dRel{cols: cols}
	choice := make([]int, ev.n)
	for li := range l.parts {
		for ri := range r.parts {
			lp, rp := &l.parts[li], &r.parts[ri]
			origins := mergeOrigins(append([]int(nil), lp.origins...), rp.origins)
			space, err := ev.space(origins)
			if err != nil {
				return dRel{}, err
			}
			alts := make([][]sym.Tuple, 0, space)
			any := false
			ev.odometer(origins, choice, func() {
				joined := joinTuples(lp.at(choice, ev.altCounts), rp.at(choice, ev.altCounts),
					lShared, rShared, rExtra, len(cols))
				if len(joined) > 0 {
					any = true
				}
				alts = append(alts, joined)
			})
			if any {
				out.parts = append(out.parts, part{origins: origins, alts: alts})
			}
		}
	}
	return out, nil
}

// joinTuples is the ground natural join of two row sets (hash on the
// shared columns with exact confirmation, as in algebra.evalInst).
func joinTuples(ls, rs []sym.Tuple, lShared, rShared, rExtra []int, width int) []sym.Tuple {
	if len(ls) == 0 || len(rs) == 0 {
		return nil
	}
	key := func(t sym.Tuple, at []int) uint64 {
		h := uint64(1469598103934665603)
		for _, j := range at {
			h ^= uint64(t[j])
			h *= 1099511628211
		}
		return h
	}
	index := make(map[uint64][]sym.Tuple, len(rs))
	for _, rt := range rs {
		index[key(rt, rShared)] = append(index[key(rt, rShared)], rt)
	}
	var out []sym.Tuple
	for _, lt := range ls {
	probe:
		for _, rt := range index[key(lt, lShared)] {
			for k := range lShared {
				if lt[lShared[k]] != rt[rShared[k]] {
					continue probe
				}
			}
			g := make(sym.Tuple, 0, width)
			g = append(g, lt...)
			for _, j := range rExtra {
				g = append(g, rt[j])
			}
			out = append(out, g)
		}
	}
	return sortDedupTuples(out)
}

// mapParts applies a tuple-local map (project, select, …) to every
// alternative of every part; tuple-local operators distribute over the
// union of parts, so origins are untouched. Parts whose every
// alternative maps to the empty set contribute nothing and are dropped.
func mapParts(in dRel, cols []string, f func(sym.Tuple) (sym.Tuple, bool)) dRel {
	out := dRel{cols: cols}
	for i := range in.parts {
		p := &in.parts[i]
		alts := make([][]sym.Tuple, len(p.alts))
		any := false
		for ai, alt := range p.alts {
			var rows []sym.Tuple
			for _, t := range alt {
				if g, ok := f(t); ok {
					rows = append(rows, g)
				}
			}
			rows = sortDedupTuples(rows)
			if len(rows) > 0 {
				any = true
			}
			alts[ai] = rows
		}
		if any {
			out.parts = append(out.parts, part{origins: p.origins, alts: alts})
		}
	}
	return out
}

// resolvedPred is a selection predicate compiled to column indices and
// interned constants.
type resolvedPred struct {
	eq           bool
	lIdx, rIdx   int
	lConst, rCon sym.ID
}

func (p *resolvedPred) holds(t sym.Tuple) bool {
	l, r := p.lConst, p.rCon
	if p.lIdx >= 0 {
		l = t[p.lIdx]
	}
	if p.rIdx >= 0 {
		r = t[p.rIdx]
	}
	return p.eq == (l == r)
}

func resolvePreds(preds []algebra.Pred, cols []string) ([]resolvedPred, error) {
	out := make([]resolvedPred, len(preds))
	for i, p := range preds {
		rp := resolvedPred{eq: p.Op == cond.Eq, lIdx: -1, rIdx: -1}
		for side, o := range []algebra.Operand{p.L, p.R} {
			idx, id, err := resolveOperand(o, cols)
			if err != nil {
				return nil, err
			}
			if side == 0 {
				rp.lIdx, rp.lConst = idx, id
			} else {
				rp.rIdx, rp.rCon = idx, id
			}
		}
		out[i] = rp
	}
	return out, nil
}

func resolveOperand(o algebra.Operand, cols []string) (idx int, id sym.ID, err error) {
	if c, isConst := o.Const(); isConst {
		return -1, sym.Const(c), nil
	}
	col, _ := o.Column()
	j := indexOf(cols, col)
	if j < 0 {
		return 0, 0, fmt.Errorf("wsdalg: select column %s not in %v", col, cols)
	}
	return j, 0, nil
}

// sortDedupTuples sorts rows lexicographically by interned ID and
// removes duplicates in place (relations are sets; projection and join
// can collapse rows).
func sortDedupTuples(ts []sym.Tuple) []sym.Tuple {
	sort.Slice(ts, func(i, j int) bool { return tupleLess(ts[i], ts[j]) })
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || !t.Equal(ts[i-1]) {
			out = append(out, t)
		}
	}
	return out
}

func tupleLess(a, b sym.Tuple) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// mergeOrigins unions a sorted origin list into dst (kept sorted and
// duplicate-free).
func mergeOrigins(dst, src []int) []int {
	for _, o := range src {
		i := sort.SearchInts(dst, o)
		if i < len(dst) && dst[i] == o {
			continue
		}
		dst = append(dst, 0)
		copy(dst[i+1:], dst[i:])
		dst[i] = o
	}
	return dst
}

func indexOf(cols []string, c string) int {
	for i, x := range cols {
		if x == c {
			return i
		}
	}
	return -1
}
