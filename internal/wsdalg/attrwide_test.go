// Regression coverage for the wide-template boundaries: operations on
// attribute-level components whose field products are enormous must
// either answer positionwise (never expanding) or refuse with the
// entanglement error — never hang or panic.
package wsdalg_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pw/internal/query"
	"pw/internal/table"
	"pw/internal/wsd"
	"pw/internal/wsdalg"
)

// wideTemplate builds one attribute-level component with the given
// number of two-value open slots (2^slots alternatives).
func wideTemplate(t *testing.T, slots int) *wsd.WSD {
	t.Helper()
	w := wsd.New(table.Schema{{Name: "R", Arity: slots}})
	cells := make([][]string, slots)
	for i := range cells {
		cells[i] = []string{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)}
	}
	if err := w.AddTemplateComponent("R", cells...); err != nil {
		t.Fatal(err)
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestContainsWideTemplateFastPath: reflexive containment of a 2^30
// template must answer through the positionwise slot-subset path, not
// by enumerating a billion alternatives.
func TestContainsWideTemplateFastPath(t *testing.T) {
	w := wideTemplate(t, 30)
	start := time.Now()
	ok, err := wsdalg.Contains(w, w)
	if err != nil || !ok {
		t.Fatalf("Contains(w, w) = %v, %v; want true", ok, err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("reflexive containment of a wide template took %s (enumeration leak)", d)
	}

	// A narrower template is contained in a wider one of the same shape
	// — still positionwise, still wide.
	narrow := wsd.New(table.Schema{{Name: "R", Arity: 30}})
	cells := make([][]string, 30)
	for i := range cells {
		cells[i] = []string{fmt.Sprintf("a%d", i)} // fixed to the first value
	}
	cells[0] = []string{"a0", "b0"} // one open slot so it stays a template
	if err := narrow.AddTemplateComponent("R", cells...); err != nil {
		t.Fatal(err)
	}
	if ok, err := wsdalg.Contains(narrow, w); err != nil || !ok {
		t.Fatalf("narrow ⊆ wide = %v, %v; want true", ok, err)
	}

	// The reverse direction cannot resolve positionwise (the wide
	// template's slots are no subset of the narrow one's) and falls back
	// to enumeration — fine at 2^10, where it finds the missing
	// instantiations and answers false.
	smallWide := wideTemplate(t, 10)
	smallNarrow := wsd.New(table.Schema{{Name: "R", Arity: 10}})
	nc := make([][]string, 10)
	for i := range nc {
		nc[i] = []string{fmt.Sprintf("a%d", i)}
	}
	nc[0] = []string{"a0", "b0"}
	if err := smallNarrow.AddTemplateComponent("R", nc...); err != nil {
		t.Fatal(err)
	}
	if ok, err := wsdalg.Contains(smallWide, smallNarrow); err != nil || ok {
		t.Fatalf("wide ⊆ narrow = %v, %v; want false", ok, err)
	}
}

// TestContainsSpreadTemplateRefuses: a wide sub template whose
// instantiations spread across several sup components cannot resolve
// positionwise; past the MaxMergeAlts bound the enumeration fallback
// must refuse with ErrEntangled instead of looping 2^25 times.
func TestContainsSpreadTemplateRefuses(t *testing.T) {
	const slots = 25 // 2^25 > MaxMergeAlts = 2^20
	sub := wideTemplate(t, slots)

	// sup splits the same instantiation set along slot 0: two templates
	// with disjoint first-slot domains, so no single sup template
	// contains sub's.
	sup := wsd.New(table.Schema{{Name: "R", Arity: slots}})
	for _, first := range []string{"a0", "b0"} {
		cells := make([][]string, slots)
		cells[0] = []string{first}
		for i := 1; i < slots; i++ {
			cells[i] = []string{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)}
		}
		if err := sup.AddTemplateComponent("R", cells...); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	_, err := wsdalg.Contains(sub, sup)
	if !errors.Is(err, wsdalg.ErrEntangled) {
		t.Fatalf("spread wide template: err = %v, want ErrEntangled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("refusal took %s (enumeration before the guard)", d)
	}
}

// TestPossibleAnswersOverflowErrors: a 64-slot template's instantiation
// count overflows int; PossibleAnswers must return the entanglement
// error through its error path, not panic inside Support.
func TestPossibleAnswersOverflowErrors(t *testing.T) {
	w := wideTemplate(t, 64)
	_, err := wsdalg.PossibleAnswers(w, query.Identity{})
	if !errors.Is(err, wsdalg.ErrEntangled) {
		t.Fatalf("err = %v, want ErrEntangled", err)
	}
	// CertainAnswers reads only the certain facts (templates are never
	// certain) and must keep working at any width.
	if _, err := wsdalg.CertainAnswers(w, query.Identity{}); err != nil {
		t.Fatalf("CertainAnswers: %v", err)
	}
}
