// Cost-based planning for decomposition queries. The planner rewrites a
// query's algebra into an equivalent form whose predicted tabulation
// cost — the same origin-space products the EXPLAIN estimates report —
// is no larger than the naive form's:
//
//   - σ-pushdown: selection conjuncts split and sink below ⋈ (to the
//     side holding their columns), ∪ (both sides), ∖ (left side), ρ
//     (inverse-mapped), π, and the world-set collapses possible/certain
//     (a filter commutes with union and intersection alike). Applied to
//     a tabulated part, a sunk σ empties alternatives early and drops
//     all-empty parts before any join multiplies them. A σ that lands
//     on a constant relation folds away entirely — the literal rows are
//     filtered at plan time;
//   - column pruning: a π above a ⋈ pushes into both sides, keeping
//     only the needed and joined columns. On attribute-level templates
//     this is the tuple- vs slot-granular choice: a narrowed scan
//     depends on exactly the referenced slots' units, shrinking every
//     downstream origin product. ∖, certain and choiceof are
//     column-sensitive and block pruning (their operands keep their
//     full schema);
//   - join reordering: nested natural joins flatten into a list and the
//     cheapest left-deep order (exhaustive up to 5 relations, greedy
//     beyond) replaces the written one, with a π restoring the original
//     column order. The written order is always a candidate, so the
//     chosen plan's predicted cost never exceeds the naive plan's.
//
// Cost prediction runs the "dry" evaluator: the same part propagation
// as evaluation — symbolic template narrowing included — but carrying
// only origin sets and row bounds, never tabulating. Its per-operator
// origin products are exactly the Est figures of plan.go (joins also
// charge their pairwise row-match work, the term σ-pushdown shrinks),
// so what the planner minimizes is what EXPLAIN shows. All rewrites are equivalences of the
// world-set algebra; results are bit-identical to the naive form (the
// differential suite races both).
package wsdalg

import (
	"fmt"

	"pw/internal/algebra"
	"pw/internal/cond"
	"pw/internal/obs"
	"pw/internal/query"
	"pw/internal/unionfind"
	"pw/internal/wsd"
)

// PlannerInfo records a planning decision: the naive and chosen forms
// (one "Name = expr" clause per output) and their predicted costs in
// joint alternatives tabulated.
type PlannerInfo struct {
	Chosen     string `json:"chosen"`
	Naive      string `json:"naive"`
	ChosenCost int64  `json:"chosen_cost"`
	NaiveCost  int64  `json:"naive_cost"`
}

// Changed reports whether planning picked a different form than the one
// written.
func (pi *PlannerInfo) Changed() bool { return pi != nil && pi.Chosen != pi.Naive }

// Optimize plans q against w: the rewritten query (or q itself when the
// rewrite does not lower the predicted cost, q is not algebra, or the
// cost model cannot price it) plus the decision record. The returned
// query is always equivalent to q on every world set.
func Optimize(w *wsd.WSD, q query.Query) (query.Query, *PlannerInfo) {
	a, ok := q.(query.Algebra)
	if !ok || w.Empty() {
		return q, nil
	}
	naiveCost, err := staticCost(w, a)
	if err != nil {
		return q, nil // un-priceable: schema errors surface at eval time
	}
	outs := make([]query.Out, len(a.Outs))
	for i, o := range a.Outs {
		e := pushSelections(o.Expr)
		e = foldConstRels(e)
		if cols, serr := o.Expr.Schema(); serr == nil {
			e = pruneExpr(e, cols)
		}
		e = reorderJoins(w, e)
		outs[i] = query.Out{Name: o.Name, Expr: e}
	}
	opt := query.Algebra{Name: a.Name, Outs: outs}
	info := &PlannerInfo{Naive: formatOuts(a.Outs), NaiveCost: naiveCost}
	chosenCost, err := staticCost(w, opt)
	if err != nil || chosenCost > naiveCost {
		// Never adopt a rewrite the model prices higher than what was
		// written (or cannot price at all).
		info.Chosen, info.ChosenCost = info.Naive, info.NaiveCost
		return q, info
	}
	info.Chosen, info.ChosenCost = formatOuts(outs), chosenCost
	return opt, info
}

// EvalOptimized is EvalPlanned through the planner: the chosen form is
// evaluated (plan and all) and the plan carries the planning record.
// Equivalence of the rewrites means the result is identical to
// EvalPlanned(w, q, c) world-for-world.
func EvalOptimized(w *wsd.WSD, q query.Query, c *obs.Cost) (*wsd.WSD, *Plan, error) {
	opt, info := Optimize(w, q)
	out, pl, err := EvalPlanned(w, opt, c)
	if pl != nil {
		pl.Planner = info
		pl.Query = q.Label() // report the query as asked, not as rewritten
	}
	return out, pl, err
}

func formatOuts(outs []query.Out) string {
	s := ""
	for i, o := range outs {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%s = %s", o.Name, o.Expr)
	}
	return s
}

// ---- σ-pushdown ----

// pushSelections sinks selection conjuncts as deep as the algebra's
// equivalences allow, recursing through every operator.
func pushSelections(e algebra.Expr) algebra.Expr {
	switch n := e.(type) {
	case algebra.Select:
		child := pushSelections(n.E)
		var kept []algebra.Pred
		for _, p := range n.Preds {
			if c, ok := pushPred(child, p); ok {
				child = c
			} else {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			return child
		}
		return algebra.Select{E: child, Preds: kept}
	case algebra.Project:
		return algebra.Project{E: pushSelections(n.E), Cols: n.Cols}
	case algebra.Rename:
		return algebra.Rename{E: pushSelections(n.E), From: n.From, To: n.To}
	case algebra.Join:
		return algebra.Join{L: pushSelections(n.L), R: pushSelections(n.R)}
	case algebra.Union:
		return algebra.Union{L: pushSelections(n.L), R: pushSelections(n.R)}
	case algebra.Diff:
		return algebra.Diff{L: pushSelections(n.L), R: pushSelections(n.R)}
	case algebra.Possible:
		return algebra.Possible{E: pushSelections(n.E)}
	case algebra.Certain:
		return algebra.Certain{E: pushSelections(n.E)}
	case algebra.ChoiceOf:
		return algebra.ChoiceOf{E: pushSelections(n.E)}
	}
	return e
}

// pushPred sinks one predicate into e where an equivalence allows it,
// returning the rewritten expression. Not-ok means the predicate stays
// where it was written.
func pushPred(e algebra.Expr, p algebra.Pred) (algebra.Expr, bool) {
	switch n := e.(type) {
	case algebra.Select:
		// σ_p σ_q E = σ_q σ_p E: try below first, merge otherwise.
		if c, ok := pushPred(n.E, p); ok {
			return algebra.Select{E: c, Preds: n.Preds}, true
		}
		preds := append(append([]algebra.Pred(nil), n.Preds...), p)
		return algebra.Select{E: n.E, Preds: preds}, true
	case algebra.Project:
		// π keeps every column σ can reference.
		return algebra.Project{E: pushOrWrap(n.E, p), Cols: n.Cols}, true
	case algebra.Rename:
		child, err := n.E.Schema()
		if err != nil {
			return nil, false
		}
		mapped, ok := renamePred(p, n.From, n.To, child)
		if !ok {
			return nil, false
		}
		return algebra.Rename{E: pushOrWrap(n.E, mapped), From: n.From, To: n.To}, true
	case algebra.Join:
		lCols, lerr := n.L.Schema()
		rCols, rerr := n.R.Schema()
		if lerr != nil || rerr != nil {
			return nil, false
		}
		cols := predColumns(p)
		l, r := n.L, n.R
		ok := false
		if colsSubset(cols, lCols) {
			l, ok = pushOrWrap(l, p), true
		}
		if colsSubset(cols, rCols) {
			r, ok = pushOrWrap(r, p), true
		}
		if !ok {
			return nil, false
		}
		return algebra.Join{L: l, R: r}, true
	case algebra.Union:
		// σ distributes over ∪.
		return algebra.Union{L: pushOrWrap(n.L, p), R: pushOrWrap(n.R, p)}, true
	case algebra.Diff:
		// σ(L ∖ R) = σ(L) ∖ R.
		return algebra.Diff{L: pushOrWrap(n.L, p), R: n.R}, true
	case algebra.Possible:
		// A filter commutes with the union over worlds.
		return algebra.Possible{E: pushOrWrap(n.E, p)}, true
	case algebra.Certain:
		// … and with the intersection over worlds.
		return algebra.Certain{E: pushOrWrap(n.E, p)}, true
	}
	// ChoiceOf is a barrier: filtering a pick differs from picking from
	// the filtered set. Scans and constants have nothing below them.
	return nil, false
}

func pushOrWrap(e algebra.Expr, p algebra.Pred) algebra.Expr {
	if c, ok := pushPred(e, p); ok {
		return c
	}
	return algebra.Select{E: e, Preds: []algebra.Pred{p}}
}

// ---- constant folding ----

// foldConstRels evaluates selections over constant relations at plan
// time: every predicate over literal rows is decidable, so the σ folds
// into a smaller ConstRel — typically one σ-pushdown landed on the
// dimension side of a join, where every dropped row shrinks the join's
// row-match work for real (the fold is exact, not an estimate).
func foldConstRels(e algebra.Expr) algebra.Expr {
	switch n := e.(type) {
	case algebra.Select:
		child := foldConstRels(n.E)
		if c, ok := child.(algebra.ConstRel); ok {
			if folded, ok := foldSelect(c, n.Preds); ok {
				return folded
			}
		}
		return algebra.Select{E: child, Preds: n.Preds}
	case algebra.Project:
		return algebra.Project{E: foldConstRels(n.E), Cols: n.Cols}
	case algebra.Rename:
		return algebra.Rename{E: foldConstRels(n.E), From: n.From, To: n.To}
	case algebra.Join:
		return algebra.Join{L: foldConstRels(n.L), R: foldConstRels(n.R)}
	case algebra.Union:
		return algebra.Union{L: foldConstRels(n.L), R: foldConstRels(n.R)}
	case algebra.Diff:
		return algebra.Diff{L: foldConstRels(n.L), R: foldConstRels(n.R)}
	case algebra.Possible:
		return algebra.Possible{E: foldConstRels(n.E)}
	case algebra.Certain:
		return algebra.Certain{E: foldConstRels(n.E)}
	case algebra.ChoiceOf:
		return algebra.ChoiceOf{E: foldConstRels(n.E)}
	}
	return e
}

// foldSelect filters a constant relation's rows through literal
// predicates. Not-ok (fold refused, σ stays) when a column reference
// does not resolve — that is a schema error whose report belongs to
// evaluation, not planning.
func foldSelect(c algebra.ConstRel, preds []algebra.Pred) (algebra.Expr, bool) {
	resolve := func(o algebra.Operand, row []string) (string, bool) {
		if k, isConst := o.Const(); isConst {
			return k, true
		}
		col, _ := o.Column()
		i := indexOf(c.Cols, col)
		if i < 0 {
			return "", false
		}
		return row[i], true
	}
	rows := [][]string{}
	for _, row := range c.Rows {
		keep := true
		for _, p := range preds {
			l, lok := resolve(p.L, row)
			r, rok := resolve(p.R, row)
			if !lok || !rok {
				return nil, false
			}
			if (p.Op == cond.Eq) != (l == r) {
				keep = false
				break
			}
		}
		if keep {
			rows = append(rows, row)
		}
	}
	return algebra.ConstRel{Cols: c.Cols, Rows: rows}, true
}

// renamePred maps a predicate's column references through the inverse
// of a rename (To → From); not-ok when a reference cannot be resolved
// in the child schema.
func renamePred(p algebra.Pred, from, to []string, child []string) (algebra.Pred, bool) {
	mapOperand := func(o algebra.Operand) (algebra.Operand, bool) {
		col, isCol := o.Column()
		if !isCol {
			return o, true
		}
		for i, t := range to {
			if t == col {
				col = from[i]
				break
			}
		}
		if indexOf(child, col) < 0 {
			return o, false
		}
		return algebra.Col(col), true
	}
	l, ok := mapOperand(p.L)
	if !ok {
		return p, false
	}
	r, ok := mapOperand(p.R)
	if !ok {
		return p, false
	}
	return algebra.Pred{Op: p.Op, L: l, R: r}, true
}

func predColumns(p algebra.Pred) []string {
	var cols []string
	for _, o := range []algebra.Operand{p.L, p.R} {
		if c, ok := o.Column(); ok {
			cols = append(cols, c)
		}
	}
	return cols
}

func colsSubset(cols, in []string) bool {
	for _, c := range cols {
		if indexOf(in, c) < 0 {
			return false
		}
	}
	return true
}

// ---- column pruning ----

// pruneExpr rewrites e to an equivalent expression with schema exactly
// needed (an ordered subset of e's schema), pushing projections down to
// base scans. On attribute-level templates the narrowed scan depends on
// exactly the referenced slots' units — the slot-granular path — which
// shrinks every origin product above it. Diff, certain and choiceof are
// column-sensitive: their operands keep their full schema and a π on
// top does the narrowing.
func pruneExpr(e algebra.Expr, needed []string) algebra.Expr {
	full, err := e.Schema()
	if err != nil {
		return e
	}
	switch n := e.(type) {
	case algebra.Project:
		return pruneExpr(n.E, needed)
	case algebra.Select:
		child, err := n.E.Schema()
		if err != nil {
			return wrapProject(e, needed, full)
		}
		needPlus := needed
		for _, p := range n.Preds {
			needPlus = addCols(needPlus, predColumns(p))
		}
		needPlus = orderCols(child, needPlus)
		out := algebra.Expr(algebra.Select{E: pruneExpr(n.E, needPlus), Preds: n.Preds})
		return wrapProject(out, needed, needPlus)
	case algebra.Rename:
		child, err := n.E.Schema()
		if err != nil {
			return wrapProject(e, needed, full)
		}
		childNeeded := make([]string, 0, len(needed))
		for _, c := range needed {
			for i, t := range n.To {
				if t == c {
					c = n.From[i]
					break
				}
			}
			childNeeded = append(childNeeded, c)
		}
		childNeeded = orderCols(child, childNeeded)
		var from, to []string
		for i, f := range n.From {
			if indexOf(childNeeded, f) >= 0 {
				from = append(from, f)
				to = append(to, n.To[i])
			}
		}
		out := algebra.Expr(pruneExpr(n.E, childNeeded))
		if len(from) > 0 {
			out = algebra.Rename{E: out, From: from, To: to}
		}
		have := make([]string, len(childNeeded))
		copy(have, childNeeded)
		for i, c := range have {
			if j := indexOf(from, c); j >= 0 {
				have[i] = to[j]
			}
		}
		return wrapProject(out, needed, have)
	case algebra.Join:
		lCols, lerr := n.L.Schema()
		rCols, rerr := n.R.Schema()
		if lerr != nil || rerr != nil {
			return wrapProject(e, needed, full)
		}
		var shared []string
		for _, c := range rCols {
			if indexOf(lCols, c) >= 0 {
				shared = append(shared, c)
			}
		}
		keep := addCols(append([]string(nil), needed...), shared)
		needL := orderCols(lCols, keep)
		needR := orderCols(rCols, keep)
		out := algebra.Expr(algebra.Join{L: pruneExpr(n.L, needL), R: pruneExpr(n.R, needR)})
		have := append([]string(nil), needL...)
		for _, c := range needR {
			if indexOf(needL, c) < 0 {
				have = append(have, c)
			}
		}
		return wrapProject(out, needed, have)
	case algebra.Union:
		return algebra.Union{L: pruneExpr(n.L, needed), R: pruneExpr(n.R, needed)}
	case algebra.Diff:
		out := algebra.Expr(algebra.Diff{L: pruneSame(n.L), R: pruneSame(n.R)})
		return wrapProject(out, needed, full)
	case algebra.Possible:
		// π commutes with the union over worlds.
		return algebra.Possible{E: pruneExpr(n.E, needed)}
	case algebra.Certain, algebra.ChoiceOf:
		var out algebra.Expr
		if c, ok := n.(algebra.Certain); ok {
			out = algebra.Certain{E: pruneSame(c.E)}
		} else {
			out = algebra.ChoiceOf{E: pruneSame(n.(algebra.ChoiceOf).E)}
		}
		return wrapProject(out, needed, full)
	}
	// Scans and constants: the narrowing π lands here (symbolic on
	// templates, tuple-local on alternatives).
	return wrapProject(e, needed, full)
}

// pruneSame recurses into a column-sensitive operand, keeping its own
// schema intact.
func pruneSame(e algebra.Expr) algebra.Expr {
	cols, err := e.Schema()
	if err != nil {
		return e
	}
	return pruneExpr(e, cols)
}

func wrapProject(e algebra.Expr, needed, have []string) algebra.Expr {
	if sameCols(needed, have) {
		return e
	}
	return algebra.Project{E: e, Cols: needed}
}

func addCols(dst []string, src []string) []string {
	for _, c := range src {
		if indexOf(dst, c) < 0 {
			dst = append(dst, c)
		}
	}
	return dst
}

// orderCols filters schema down to the named set, preserving schema
// order — the canonical form recursion hands down.
func orderCols(schema []string, set []string) []string {
	out := make([]string, 0, len(set))
	for _, c := range schema {
		if indexOf(set, c) >= 0 {
			out = append(out, c)
		}
	}
	return out
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- join reordering ----

// reorderJoins rewrites every maximal nested natural-join chain into
// its cheapest left-deep order under the dry cost model, wrapping a π
// to restore the written column order. The written order competes, so
// the result is never predicted costlier.
func reorderJoins(w *wsd.WSD, e algebra.Expr) algebra.Expr {
	switch n := e.(type) {
	case algebra.Join:
		leaves := flattenJoin(e)
		for i := range leaves {
			leaves[i] = reorderJoins(w, leaves[i])
		}
		return bestJoinOrder(w, e, leaves)
	case algebra.Project:
		return algebra.Project{E: reorderJoins(w, n.E), Cols: n.Cols}
	case algebra.Select:
		return algebra.Select{E: reorderJoins(w, n.E), Preds: n.Preds}
	case algebra.Rename:
		return algebra.Rename{E: reorderJoins(w, n.E), From: n.From, To: n.To}
	case algebra.Union:
		return algebra.Union{L: reorderJoins(w, n.L), R: reorderJoins(w, n.R)}
	case algebra.Diff:
		return algebra.Diff{L: reorderJoins(w, n.L), R: reorderJoins(w, n.R)}
	case algebra.Possible:
		return algebra.Possible{E: reorderJoins(w, n.E)}
	case algebra.Certain:
		return algebra.Certain{E: reorderJoins(w, n.E)}
	case algebra.ChoiceOf:
		return algebra.ChoiceOf{E: reorderJoins(w, n.E)}
	}
	return e
}

// flattenJoin collects the leaves of a maximal nested-join tree in
// written order (natural join is associative and commutative up to
// column order).
func flattenJoin(e algebra.Expr) []algebra.Expr {
	if j, ok := e.(algebra.Join); ok {
		return append(flattenJoin(j.L), flattenJoin(j.R)...)
	}
	return []algebra.Expr{e}
}

func rebuildJoin(leaves []algebra.Expr, order []int) algebra.Expr {
	out := leaves[order[0]]
	for _, i := range order[1:] {
		out = algebra.Join{L: out, R: leaves[i]}
	}
	return out
}

// bestJoinOrder prices every candidate left-deep order of the chain —
// all permutations up to 5 leaves, greedy-cheapest beyond — against the
// written order and returns the winner (strictly cheaper only), with a
// π restoring the written column order.
func bestJoinOrder(w *wsd.WSD, orig algebra.Expr, leaves []algebra.Expr) algebra.Expr {
	written := make([]int, len(leaves))
	for i := range written {
		written[i] = i
	}
	if len(leaves) < 3 {
		return rebuildJoin(leaves, written)
	}
	origCols, err := orig.Schema()
	if err != nil {
		return rebuildJoin(leaves, written)
	}
	ev := newEvaluator(w)
	dry := make([]dryRel, len(leaves))
	var prep int64
	for i, l := range leaves {
		d, err := ev.dryEval(l, &prep)
		if err != nil {
			return rebuildJoin(leaves, written)
		}
		dry[i] = d
	}
	chainCost := func(order []int) int64 {
		var cost int64
		acc := dry[order[0]]
		for _, i := range order[1:] {
			acc = ev.dryJoin(acc, dry[i], &cost)
		}
		return cost
	}
	best := append([]int(nil), written...)
	bestCost := chainCost(written)
	consider := func(order []int) {
		if c := chainCost(order); c < bestCost {
			bestCost = c
			copy(best, order)
		}
	}
	if len(leaves) <= 5 {
		permute(written, consider)
	} else {
		consider(greedyOrder(len(leaves), chainCost))
	}
	if sameIntSlices(best, firstN(len(leaves))) {
		return rebuildJoin(leaves, best)
	}
	out := rebuildJoin(leaves, best)
	cols, err := out.Schema()
	if err != nil || sameCols(cols, origCols) {
		return out
	}
	return algebra.Project{E: out, Cols: origCols}
}

func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sameIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// permute enumerates permutations of ord in deterministic order,
// calling fn with each (fn must copy if it keeps the slice).
func permute(ord []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(ord) {
			fn(ord)
			return
		}
		for i := k; i < len(ord); i++ {
			ord[k], ord[i] = ord[i], ord[k]
			rec(k + 1)
			ord[k], ord[i] = ord[i], ord[k]
		}
	}
	rec(0)
}

// greedyOrder builds one order by repeatedly appending the leaf that
// keeps the running chain cheapest (first index wins ties).
func greedyOrder(n int, cost func([]int) int64) []int {
	remaining := firstN(n)
	var order []int
	for len(remaining) > 0 {
		bestI, bestC := 0, int64(-1)
		for i := range remaining {
			cand := append(append([]int(nil), order...), remaining[i])
			c := cost(cand)
			if bestC < 0 || c < bestC {
				bestI, bestC = i, c
			}
		}
		order = append(order, remaining[bestI])
		remaining = append(remaining[:bestI], remaining[bestI+1:]...)
	}
	return order
}

// ---- the dry cost model ----

// dryPart mirrors part for costing: origin set and row bound only,
// plus the symbolic template body so π/σ narrow it exactly as
// evaluation would.
type dryPart struct {
	origins []int
	rows    int64
	tmpl    *tmplPart
}

type dryRel struct {
	cols  []string
	parts []dryPart
}

// staticCost prices a whole query: per-operator tabulation products
// plus the final assembly's, exactly the Est figures of plan.go.
func staticCost(w *wsd.WSD, a query.Algebra) (int64, error) {
	ev := newEvaluator(w)
	var cost int64
	var all []dryPart
	for _, o := range a.Outs {
		d, err := ev.dryEval(o.Expr, &cost)
		if err != nil {
			return 0, err
		}
		all = append(all, d.parts...)
	}
	cost = satAdd(cost, dryAssembleCost(ev, all))
	return cost, nil
}

// dryAssembleCost mirrors assemble's grouping: correlated parts merge
// their origin spaces, one product per group.
func dryAssembleCost(ev *evaluator, parts []dryPart) int64 {
	uf := unionfind.NewDense(ev.n)
	for i := range parts {
		o := parts[i].origins
		for j := 1; j < len(o); j++ {
			uf.Union(int32(o[0]), int32(o[j]))
		}
	}
	groups := map[int32][]int{}
	for i := range parts {
		if len(parts[i].origins) == 0 {
			continue
		}
		r := uf.Find(int32(parts[i].origins[0]))
		groups[r] = mergeOrigins(groups[r], parts[i].origins)
	}
	var cost int64
	for _, origins := range groups {
		cost = satAdd(cost, ev.originsProduct(origins))
	}
	return cost
}

// dryEval propagates parts through e without tabulating anything,
// accumulating into cost the joint-space products evaluation would
// sweep. Synthetic choiceof axes are allocated on ev (a costing
// evaluator is private to its planning pass).
func (ev *evaluator) dryEval(e algebra.Expr, cost *int64) (dryRel, error) {
	switch n := e.(type) {
	case algebra.ConstRel:
		cols, err := n.Schema()
		if err != nil {
			return dryRel{}, err
		}
		if len(n.Rows) == 0 {
			return dryRel{cols: cols}, nil
		}
		return dryRel{cols: cols, parts: []dryPart{{rows: int64(len(n.Rows))}}}, nil

	case algebra.Rel:
		cols, err := n.Schema()
		if err != nil {
			return dryRel{}, err
		}
		real := ev.scanParts(n.Name)
		d := dryRel{cols: cols, parts: make([]dryPart, len(real))}
		for i := range real {
			p := &real[i]
			d.parts[i] = dryPart{origins: p.origins, rows: ev.rowsUB(p), tmpl: p.tmpl}
		}
		return d, nil

	case algebra.Project:
		in, err := ev.dryEval(n.E, cost)
		if err != nil {
			return dryRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dryRel{}, err
		}
		idx := make([]int, len(n.Cols))
		for i, c := range n.Cols {
			idx[i] = indexOf(in.cols, c)
		}
		out := dryRel{cols: n.Cols}
		for _, p := range in.parts {
			if t := p.tmpl; t != nil {
				nt := &tmplPart{out: make([]tmplCol, len(idx)), preds: t.preds}
				for i, j := range idx {
					nt.out[i] = t.out[j]
				}
				origins := nt.unitsOf()
				out.parts = append(out.parts, dryPart{origins: origins,
					rows: ev.originsProduct(origins), tmpl: nt})
				continue
			}
			out.parts = append(out.parts, p)
		}
		return out, nil

	case algebra.Select:
		in, err := ev.dryEval(n.E, cost)
		if err != nil {
			return dryRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dryRel{}, err
		}
		preds, err := resolvePreds(n.Preds, in.cols)
		if err != nil {
			return dryRel{}, err
		}
		out := dryRel{cols: in.cols}
	dryParts:
		for _, p := range in.parts {
			if t := p.tmpl; t != nil {
				nt := &tmplPart{out: t.out, preds: append([]tmplPred(nil), t.preds...)}
				for _, rp := range preds {
					tp := tmplPred{eq: rp.eq,
						l: tmplColOf(t, rp.lIdx, rp.lConst),
						r: tmplColOf(t, rp.rIdx, rp.rCon)}
					if tp.l.unit < 0 && tp.r.unit < 0 {
						if tp.eq != (tp.l.constID == tp.r.constID) {
							continue dryParts
						}
						continue
					}
					nt.preds = append(nt.preds, tp)
				}
				origins := nt.unitsOf()
				out.parts = append(out.parts, dryPart{origins: origins,
					rows: ev.originsProduct(origins), tmpl: nt})
				continue
			}
			out.parts = append(out.parts, p)
		}
		return out, nil

	case algebra.Rename:
		in, err := ev.dryEval(n.E, cost)
		if err != nil {
			return dryRel{}, err
		}
		cols, err := n.Schema()
		if err != nil {
			return dryRel{}, err
		}
		return dryRel{cols: cols, parts: in.parts}, nil

	case algebra.Join:
		l, err := ev.dryEval(n.L, cost)
		if err != nil {
			return dryRel{}, err
		}
		r, err := ev.dryEval(n.R, cost)
		if err != nil {
			return dryRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dryRel{}, err
		}
		return ev.dryJoin(l, r, cost), nil

	case algebra.Union:
		l, err := ev.dryEval(n.L, cost)
		if err != nil {
			return dryRel{}, err
		}
		r, err := ev.dryEval(n.R, cost)
		if err != nil {
			return dryRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dryRel{}, err
		}
		return dryRel{cols: l.cols, parts: append(append([]dryPart(nil), l.parts...), r.parts...)}, nil

	case algebra.Diff:
		l, err := ev.dryEval(n.L, cost)
		if err != nil {
			return dryRel{}, err
		}
		r, err := ev.dryEval(n.R, cost)
		if err != nil {
			return dryRel{}, err
		}
		if _, err := n.Schema(); err != nil {
			return dryRel{}, err
		}
		if len(l.parts) == 0 || len(r.parts) == 0 {
			return l, nil
		}
		var rOrigins []int
		for i := range r.parts {
			rOrigins = mergeOrigins(rOrigins, r.parts[i].origins)
		}
		out := dryRel{cols: l.cols}
		for _, lp := range l.parts {
			origins := mergeOrigins(append([]int(nil), lp.origins...), rOrigins)
			*cost = satAdd(*cost, ev.originsProduct(origins))
			var extra []int
			for _, o := range rOrigins {
				if !containsInt(lp.origins, o) {
					extra = append(extra, o)
				}
			}
			out.parts = append(out.parts, dryPart{origins: origins,
				rows: satMul(lp.rows, ev.originsProduct(extra))})
		}
		return out, nil

	case algebra.Possible:
		in, err := ev.dryEval(n.E, cost)
		if err != nil {
			return dryRel{}, err
		}
		rows := drySupport(ev, &in, cost)
		if rows == 0 {
			return dryRel{cols: in.cols}, nil
		}
		return dryRel{cols: in.cols, parts: []dryPart{{rows: rows}}}, nil

	case algebra.Certain:
		in, err := ev.dryEval(n.E, cost)
		if err != nil {
			return dryRel{}, err
		}
		var rows int64
		for i := range in.parts {
			rows = satAdd(rows, in.parts[i].rows)
		}
		*cost = satAdd(*cost, dryAssembleCost(ev, in.parts))
		if rows == 0 {
			return dryRel{cols: in.cols}, nil
		}
		return dryRel{cols: in.cols, parts: []dryPart{{rows: rows}}}, nil

	case algebra.ChoiceOf:
		in, err := ev.dryEval(n.E, cost)
		if err != nil {
			return dryRel{}, err
		}
		support := drySupport(ev, &in, cost)
		if support == 0 {
			return dryRel{cols: in.cols}, nil
		}
		if support > int64(wsd.MaxMergeAlts) {
			support = int64(wsd.MaxMergeAlts) + 1
		}
		u := ev.addUnit(int(support))
		var origins []int
		for i := range in.parts {
			origins = mergeOrigins(origins, in.parts[i].origins)
		}
		all := mergeOrigins(origins, []int{u})
		prod := ev.originsProduct(all)
		*cost = satAdd(*cost, prod)
		return dryRel{cols: in.cols, parts: []dryPart{{origins: all, rows: prod}}}, nil
	}
	return dryRel{}, fmt.Errorf("wsdalg: unknown expression %T", e)
}

// dryJoin prices one pairwise-part join round, mirroring joinRels:
// the joint-space sweep plus the row-match work per pair (each joint
// alternative matches the sides' row sets against each other, so a
// selection pushed below the join shrinks this term — the quantity the
// planner's σ-pushdown exists to reduce).
func (ev *evaluator) dryJoin(l, r dryRel, cost *int64) dryRel {
	cols := append([]string(nil), l.cols...)
	for _, c := range r.cols {
		if indexOf(l.cols, c) < 0 {
			cols = append(cols, c)
		}
	}
	out := dryRel{cols: cols}
	for i := range l.parts {
		for j := range r.parts {
			origins := mergeOrigins(append([]int(nil), l.parts[i].origins...), r.parts[j].origins)
			rows := satMul(l.parts[i].rows, r.parts[j].rows)
			*cost = satAdd(*cost, satAdd(ev.originsProduct(origins), rows))
			out.parts = append(out.parts, dryPart{origins: origins, rows: rows})
		}
	}
	return out
}

// drySupport prices the support sweep of possible/choiceof (template
// parts sweep their origin space) and returns the support row bound.
func drySupport(ev *evaluator, in *dryRel, cost *int64) int64 {
	var rows int64
	for i := range in.parts {
		p := &in.parts[i]
		rows = satAdd(rows, p.rows)
		if p.tmpl != nil {
			*cost = satAdd(*cost, ev.originsProduct(p.origins))
		}
	}
	return rows
}
