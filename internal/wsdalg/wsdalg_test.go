package wsdalg

import (
	"errors"
	"testing"

	"pw/internal/algebra"
	"pw/internal/fo"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/wsd"
)

// mustWSD builds a decomposition from components of alternatives, each
// alternative a list of "Rel a b"-style facts.
func mustWSD(t *testing.T, schema table.Schema, comps ...[]wsd.Alt) *wsd.WSD {
	t.Helper()
	w := wsd.New(schema)
	for _, alts := range comps {
		if err := w.AddComponent(alts...); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	return w
}

func alt(facts ...wsd.Fact) wsd.Alt { return wsd.Alt(facts) }

func f(relName string, args ...string) wsd.Fact {
	return wsd.Fact{Rel: relName, Args: rel.Fact(args)}
}

// oracleAnswers evaluates q on every world of w, returning the distinct
// answer instances.
func oracleAnswers(t *testing.T, w *wsd.WSD, q query.Query) []*rel.Instance {
	t.Helper()
	var out []*rel.Instance
	buckets := map[uint64][]*rel.Instance{}
	w.Each(func(i *rel.Instance) bool {
		a, err := q.Eval(i)
		if err != nil {
			t.Fatalf("oracle eval: %v", err)
		}
		h := a.Fingerprint()
		for _, prev := range buckets[h] {
			if prev.Equal(a) {
				return false
			}
		}
		buckets[h] = append(buckets[h], a)
		out = append(out, a)
		return false
	})
	return out
}

// checkEval asserts rep(Eval(w, q)) equals the oracle's answer set
// world-for-world.
func checkEval(t *testing.T, w *wsd.WSD, q query.Query) *wsd.WSD {
	t.Helper()
	got, err := Eval(w, q)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	want := oracleAnswers(t, w, q)
	if c := got.Count(); !c.IsInt64() || c.Int64() != int64(len(want)) {
		t.Fatalf("Count = %s, oracle has %d distinct answers", c, len(want))
	}
	for wi, a := range want {
		if !got.Member(a) {
			t.Fatalf("oracle answer %d not in rep(Eval):\n%s\nresult:\n%s", wi, a, got)
		}
	}
	return got
}

func sensorsWSD(t *testing.T) *wsd.WSD {
	return mustWSD(t, table.Schema{{Name: "R", Arity: 2}},
		[]wsd.Alt{alt(f("R", "hub", "ok"))},
		[]wsd.Alt{alt(f("R", "s0", "lo")), alt(f("R", "s0", "hi"))},
		[]wsd.Alt{alt(f("R", "s1", "lo")), alt(f("R", "s1", "hi"))},
	)
}

func TestEvalSelection(t *testing.T) {
	w := sensorsWSD(t)
	q := query.NewAlgebra("hi", query.Out{Name: "A",
		Expr: algebra.Where(algebra.Scan("R", "s", "v"), algebra.EqP(algebra.Col("v"), algebra.Lit("hi")))})
	got := checkEval(t, w, q)
	// 2 sensors × {in, out} = 4 distinct answers.
	if c := got.Count().Int64(); c != 4 {
		t.Fatalf("Count = %d, want 4", c)
	}
	if !got.PossibleFact("A", rel.Fact{"s0", "hi"}) {
		t.Error("A(s0 hi) must be possible")
	}
	if got.CertainFact("A", rel.Fact{"s0", "hi"}) {
		t.Error("A(s0 hi) must not be certain")
	}
	if got.PossibleFact("A", rel.Fact{"s0", "lo"}) {
		t.Error("A(s0 lo) must be impossible")
	}
}

func TestEvalProjectionCollapse(t *testing.T) {
	// Both alternatives project to the same answer: the answer world-set
	// is a single certain world and Count collapses 2 → 1.
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 2}},
		[]wsd.Alt{alt(f("R", "a", "x")), alt(f("R", "a", "y"))},
	)
	q := query.NewAlgebra("first", query.Out{Name: "A",
		Expr: algebra.Project{E: algebra.Scan("R", "c1", "c2"), Cols: []string{"c1"}}})
	got := checkEval(t, w, q)
	if c := got.Count().Int64(); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
	if !got.CertainFact("A", rel.Fact{"a"}) {
		t.Error("A(a) must be certain")
	}
}

func TestEvalJoinAcrossComponents(t *testing.T) {
	// Emp's department is uncertain; Dept's floor is uncertain and
	// independent. The join correlates the two components.
	w := mustWSD(t, table.Schema{{Name: "Emp", Arity: 2}, {Name: "Dept", Arity: 2}},
		[]wsd.Alt{alt(f("Emp", "carol", "sales")), alt(f("Emp", "carol", "eng"))},
		[]wsd.Alt{alt(f("Dept", "eng", "1")), alt(f("Dept", "eng", "2"))},
	)
	q := query.NewAlgebra("floor", query.Out{Name: "A",
		Expr: algebra.Project{
			E:    algebra.Join{L: algebra.Scan("Emp", "who", "dept"), R: algebra.Scan("Dept", "dept", "floor")},
			Cols: []string{"who", "floor"},
		}})
	got := checkEval(t, w, q)
	// Answers: {}, {A(carol 1)}, {A(carol 2)} — sales join is empty in
	// both Dept worlds, so two of the four input worlds collapse.
	if c := got.Count().Int64(); c != 3 {
		t.Fatalf("Count = %d, want 3", c)
	}
}

func TestEvalUnionMergesOverlappingSupport(t *testing.T) {
	// The same answer fact A(x) arises from two independent components;
	// its presence becomes a disjunction, which Normalize's verified
	// merge turns into one component with exact counting.
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 1}, {Name: "S", Arity: 1}},
		[]wsd.Alt{alt(f("R", "x")), alt()},
		[]wsd.Alt{alt(f("S", "x")), alt()},
	)
	q := query.NewAlgebra("u", query.Out{Name: "A",
		Expr: algebra.Union{L: algebra.Scan("R", "c"), R: algebra.Scan("S", "c")}})
	got := checkEval(t, w, q)
	// Answers: {A(x)} (three input worlds) and {} (one world).
	if c := got.Count().Int64(); c != 2 {
		t.Fatalf("Count = %d, want 2", c)
	}
}

func TestEvalSelfJoinSharedComponent(t *testing.T) {
	// Correlated scans of the same relation: the self-join must see the
	// SAME alternative choice on both sides, not the cross product.
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 2}},
		[]wsd.Alt{alt(f("R", "a", "b")), alt(f("R", "b", "c"))},
	)
	q := query.NewAlgebra("path", query.Out{Name: "A",
		Expr: algebra.Project{
			E: algebra.Join{
				L: algebra.Scan("R", "x", "y"),
				R: algebra.Rename{E: algebra.Scan("R", "x", "y"), From: []string{"x", "y"}, To: []string{"y", "z"}},
			},
			Cols: []string{"x", "z"},
		}})
	checkEval(t, w, q)
}

func TestEvalIdentity(t *testing.T) {
	w := sensorsWSD(t)
	got, err := Eval(w, query.Identity{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count().Cmp(w.Count()) != 0 {
		t.Fatalf("identity changed Count: %s vs %s", got.Count(), w.Count())
	}
	if got == w {
		t.Fatal("identity must clone, not alias")
	}
}

func TestEvalEmptyWorldSet(t *testing.T) {
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 1}},
		[]wsd.Alt{}, // zero alternatives: the empty world set
	)
	if !w.Empty() {
		t.Fatal("setup: want the empty world set")
	}
	q := query.NewAlgebra("q", query.Out{Name: "A", Expr: algebra.Scan("R", "c")})
	got, err := Eval(w, q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatal("the answer world-set of ∅ must be ∅")
	}
}

func TestEvalConstAndEmptyAnswer(t *testing.T) {
	// A selection nothing satisfies: every world maps to the single
	// empty answer.
	w := sensorsWSD(t)
	q := query.NewAlgebra("none", query.Out{Name: "A",
		Expr: algebra.Where(algebra.Scan("R", "s", "v"), algebra.EqP(algebra.Col("v"), algebra.Lit("nope")))})
	got := checkEval(t, w, q)
	if c := got.Count().Int64(); c != 1 {
		t.Fatalf("Count = %d, want 1 (the empty answer)", c)
	}
}

func TestSupportedGate(t *testing.T) {
	// The whole extended algebra — ≠ selections included — evaluates
	// natively; only non-algebra queries are outside the fragment.
	neq := query.NewAlgebra("neq", query.Out{Name: "A",
		Expr: algebra.Where(algebra.Scan("R", "s", "v"), algebra.NeqP(algebra.Col("v"), algebra.Lit("hi")))})
	if err := Supported(neq); err != nil {
		t.Fatalf("≠ selections evaluate on decompositions now, got %v", err)
	}
	foq := query.NewFO("fo", query.FOOut{Name: "A", Q: fo.Query{}})
	if err := Supported(foq); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("FO must be unsupported, got %v", err)
	}
	if err := Supported(query.Identity{}); err != nil {
		t.Fatalf("identity must be supported, got %v", err)
	}
	w := sensorsWSD(t)
	got := checkEval(t, w, neq)
	if got.Empty() {
		t.Fatal("≠ selection answer world-set must be non-empty")
	}
	if _, err := Eval(w, foq); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Eval must reject the unsupported fragment, got %v", err)
	}
}

func TestPossibleAndCertainAnswers(t *testing.T) {
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 2}},
		[]wsd.Alt{alt(f("R", "hub", "ok"))},
		[]wsd.Alt{alt(f("R", "s0", "lo")), alt(f("R", "s0", "hi"))},
	)
	q := query.NewAlgebra("all", query.Out{Name: "A", Expr: algebra.Scan("R", "s", "v")})
	poss, err := PossibleAnswers(w, q)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertainAnswers(w, q)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: union / intersection of per-world answers.
	oracle := oracleAnswers(t, w, q)
	for _, fact := range []rel.Fact{{"hub", "ok"}, {"s0", "lo"}, {"s0", "hi"}} {
		if !poss.Relation("A").Has(fact) {
			t.Errorf("possible answers missing A%v", fact)
		}
	}
	if poss.Relation("A").Len() != 3 {
		t.Errorf("possible answers = %s, want 3 facts", poss)
	}
	if !cert.Relation("A").Has(rel.Fact{"hub", "ok"}) || cert.Relation("A").Len() != 1 {
		t.Errorf("certain answers = %s, want exactly A(hub ok)", cert)
	}
	_ = oracle
}

func TestContains(t *testing.T) {
	w := sensorsWSD(t)
	if ok, err := Contains(w, w); err != nil || !ok {
		t.Fatalf("rep(w) ⊆ rep(w) must hold: %v %v", ok, err)
	}

	// Pin one sensor: the restricted set is contained in the full one.
	restricted := mustWSD(t, table.Schema{{Name: "R", Arity: 2}},
		[]wsd.Alt{alt(f("R", "hub", "ok"))},
		[]wsd.Alt{alt(f("R", "s0", "lo"))},
		[]wsd.Alt{alt(f("R", "s1", "lo")), alt(f("R", "s1", "hi"))},
	)
	if ok, err := Contains(restricted, w); err != nil || !ok {
		t.Fatalf("restricted ⊆ full must hold: %v %v", ok, err)
	}
	if ok, err := Contains(w, restricted); err != nil || ok {
		t.Fatalf("full ⊆ restricted must fail: %v %v", ok, err)
	}

	// A decomposition with a fact outside w's support.
	alien := mustWSD(t, table.Schema{{Name: "R", Arity: 2}},
		[]wsd.Alt{alt(f("R", "hub", "ok"))},
		[]wsd.Alt{alt(f("R", "s0", "lo")), alt(f("R", "s0", "zap"))},
		[]wsd.Alt{alt(f("R", "s1", "lo")), alt(f("R", "s1", "hi"))},
	)
	if ok, err := Contains(alien, w); err != nil || ok {
		t.Fatalf("alien fact must break containment: %v %v", ok, err)
	}

	// Schema mismatch.
	other := mustWSD(t, table.Schema{{Name: "S", Arity: 2}},
		[]wsd.Alt{alt(f("S", "hub", "ok"))},
	)
	if ok, err := Contains(other, w); err != nil || ok {
		t.Fatalf("schema mismatch must fail containment: %v %v", ok, err)
	}

	// Empty world set on either side.
	empty := mustWSD(t, table.Schema{{Name: "R", Arity: 2}}, []wsd.Alt{})
	if ok, err := Contains(empty, w); err != nil || !ok {
		t.Fatalf("∅ ⊆ anything: %v %v", ok, err)
	}
	if ok, err := Contains(w, empty); err != nil || ok {
		t.Fatalf("nonempty ⊄ ∅: %v %v", ok, err)
	}
}

// TestContainsOracle cross-checks Contains against brute-force world
// scans on small decompositions with entangled structure.
func TestContainsOracle(t *testing.T) {
	build := func(comps ...[]wsd.Alt) *wsd.WSD {
		return mustWSD(t, table.Schema{{Name: "R", Arity: 1}}, comps...)
	}
	cases := []struct{ sub, sup *wsd.WSD }{
		// sub merges what sup keeps split.
		{build([]wsd.Alt{alt(f("R", "a"), f("R", "b")), alt()}),
			build([]wsd.Alt{alt(f("R", "a")), alt()}, []wsd.Alt{alt(f("R", "b")), alt()})},
		// sup correlates what sub treats independently (must fail).
		{build([]wsd.Alt{alt(f("R", "a")), alt()}, []wsd.Alt{alt(f("R", "b")), alt()}),
			build([]wsd.Alt{alt(f("R", "a"), f("R", "b")), alt()})},
		// partial alternative overlap.
		{build([]wsd.Alt{alt(f("R", "a")), alt(f("R", "b"))}),
			build([]wsd.Alt{alt(f("R", "a")), alt(f("R", "b")), alt(f("R", "c"))})},
		{build([]wsd.Alt{alt(f("R", "a")), alt(f("R", "c"))}),
			build([]wsd.Alt{alt(f("R", "a")), alt(f("R", "b"))})},
	}
	for i, tc := range cases {
		want := true
		tc.sub.Each(func(w *rel.Instance) bool {
			if !tc.sup.Member(w) {
				want = false
				return true
			}
			return false
		})
		got, err := Contains(tc.sub, tc.sup)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != want {
			t.Errorf("case %d: Contains = %v, oracle says %v", i, got, want)
		}
	}
}

func TestEvalConstRelOutputs(t *testing.T) {
	// Origin-free parts must survive the whole pipeline: a bare values
	// output (certain constant rows), and a union of values with an
	// uncertain scan (regression: the part-clustering union–find once
	// sliced origins[1:] on the nil origin list and panicked).
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 1}},
		[]wsd.Alt{alt(f("R", "x")), alt()},
	)
	bare := query.NewAlgebra("vals", query.Out{Name: "A",
		Expr: algebra.ConstRel{Cols: []string{"c"}, Rows: [][]string{{"k"}}}})
	got := checkEval(t, w, bare)
	if c := got.Count().Int64(); c != 1 {
		t.Fatalf("constant answer Count = %d, want 1", c)
	}
	if !got.CertainFact("A", rel.Fact{"k"}) {
		t.Error("A(k) must be certain")
	}
	mixed := query.NewAlgebra("mixed", query.Out{Name: "A",
		Expr: algebra.Union{
			L: algebra.ConstRel{Cols: []string{"c"}, Rows: [][]string{{"k"}}},
			R: algebra.Scan("R", "c"),
		}})
	got = checkEval(t, w, mixed)
	if c := got.Count().Int64(); c != 2 {
		t.Fatalf("mixed answer Count = %d, want 2", c)
	}
	// Overlap between the constant part and the scan: A(x) certain via
	// values, uncertain via R — the union makes it certain only when
	// the values side carries it.
	overlap := query.NewAlgebra("overlap", query.Out{Name: "A",
		Expr: algebra.Union{
			L: algebra.ConstRel{Cols: []string{"c"}, Rows: [][]string{{"x"}}},
			R: algebra.Scan("R", "c"),
		}})
	got = checkEval(t, w, overlap)
	if c := got.Count().Int64(); c != 1 {
		t.Fatalf("overlap answer Count = %d, want 1", c)
	}
	if !got.CertainFact("A", rel.Fact{"x"}) {
		t.Error("A(x) must be certain through the values branch")
	}
}
