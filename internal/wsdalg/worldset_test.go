package wsdalg

// World-set operator tests: possible/certain/choiceof/diff evaluated
// natively on decompositions, checked world-for-world against the
// explicit-worlds oracle query.EvalOnWorldSet.

import (
	"errors"
	"fmt"
	"testing"

	"pw/internal/algebra"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/wsd"
)

// oracleWSAnswers evaluates q under the world-set-algebra semantics on
// the explicit world list of w, returning the distinct answer worlds.
func oracleWSAnswers(t *testing.T, w *wsd.WSD, q query.Query) []*rel.Instance {
	t.Helper()
	var worlds []*rel.Instance
	w.Each(func(i *rel.Instance) bool {
		worlds = append(worlds, i)
		return false
	})
	raw, err := query.EvalOnWorldSet(q, worlds)
	if err != nil {
		t.Fatalf("oracle EvalOnWorldSet: %v", err)
	}
	var out []*rel.Instance
	buckets := map[uint64][]*rel.Instance{}
	for _, a := range raw {
		h := a.Fingerprint()
		dup := false
		for _, prev := range buckets[h] {
			if prev.Equal(a) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		buckets[h] = append(buckets[h], a)
		out = append(out, a)
	}
	return out
}

// checkEvalWS asserts rep(Eval(w, q)) equals the world-set-algebra
// oracle's answer set world-for-world.
func checkEvalWS(t *testing.T, w *wsd.WSD, q query.Query) *wsd.WSD {
	t.Helper()
	got, err := Eval(w, q)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	want := oracleWSAnswers(t, w, q)
	if c := got.Count(); !c.IsInt64() || c.Int64() != int64(len(want)) {
		t.Fatalf("Count = %s, oracle has %d distinct answers", c, len(want))
	}
	for wi, a := range want {
		if !got.Member(a) {
			t.Fatalf("oracle answer %d not in rep(Eval):\n%s\nresult:\n%s", wi, a, got)
		}
	}
	return got
}

func scanR() algebra.Expr { return algebra.Scan("R", "s", "v") }

func selHi(e algebra.Expr) algebra.Expr {
	return algebra.Where(e, algebra.EqP(algebra.Col("v"), algebra.Lit("hi")))
}

func TestEvalPossibleOperator(t *testing.T) {
	w := sensorsWSD(t)
	q := query.NewAlgebra("poss", query.Out{Name: "A", Expr: algebra.Possible{E: selHi(scanR())}})
	got := checkEvalWS(t, w, q)
	// possible collapses the whole world set into one certain world.
	if c := got.Count().Int64(); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
	for _, fact := range []rel.Fact{{"s0", "hi"}, {"s1", "hi"}} {
		if !got.CertainFact("A", fact) {
			t.Errorf("A%v must be certain in possible()", fact)
		}
	}
	if got.PossibleFact("A", rel.Fact{"hub", "ok"}) {
		t.Error("A(hub ok) fails the selection and must not appear")
	}
}

func TestEvalCertainOperator(t *testing.T) {
	w := sensorsWSD(t)
	q := query.NewAlgebra("cert", query.Out{Name: "A", Expr: algebra.Certain{E: scanR()}})
	got := checkEvalWS(t, w, q)
	if c := got.Count().Int64(); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
	if !got.CertainFact("A", rel.Fact{"hub", "ok"}) {
		t.Error("A(hub ok) holds in every world and must survive certain()")
	}
	if got.PossibleFact("A", rel.Fact{"s0", "lo"}) {
		t.Error("A(s0 lo) is uncertain and must not survive certain()")
	}
}

func TestEvalNestedCertainPossible(t *testing.T) {
	w := sensorsWSD(t)
	q := query.NewAlgebra("nested", query.Out{Name: "A",
		Expr: algebra.Certain{E: algebra.Possible{E: selHi(scanR())}}})
	got := checkEvalWS(t, w, q)
	// possible() is already certain, so certain(possible(e)) = possible(e).
	if c := got.Count().Int64(); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
	if !got.CertainFact("A", rel.Fact{"s0", "hi"}) {
		t.Error("A(s0 hi) must be certain")
	}
}

func TestEvalChoiceOfOperator(t *testing.T) {
	w := sensorsWSD(t)
	q := query.NewAlgebra("pick", query.Out{Name: "A", Expr: algebra.ChoiceOf{E: scanR()}})
	got := checkEvalWS(t, w, q)
	// Every base fact is pickable somewhere; each answer world is a
	// singleton.
	for _, fact := range []rel.Fact{{"hub", "ok"}, {"s0", "lo"}, {"s1", "hi"}} {
		if !got.PossibleFact("A", fact) {
			t.Errorf("A%v must be a possible pick", fact)
		}
	}
	if got.CertainFact("A", rel.Fact{"s0", "lo"}) {
		t.Error("no single pick is certain")
	}
}

func TestEvalChoiceOfEmptyWorlds(t *testing.T) {
	// R is empty in one world: choiceof must keep that world empty, not
	// invent a pick.
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 2}},
		[]wsd.Alt{alt(f("R", "a", "x")), alt()},
	)
	q := query.NewAlgebra("pick", query.Out{Name: "A", Expr: algebra.ChoiceOf{E: scanR()}})
	got := checkEvalWS(t, w, q)
	if c := got.Count().Int64(); c != 2 {
		t.Fatalf("Count = %d, want 2 ({a x} and ∅)", c)
	}
}

func TestEvalChoiceOfOccurrencesIndependent(t *testing.T) {
	// Two syntactic occurrences of choiceof pick independently: the
	// union of two independent picks over {x, y} yields {x}, {y} and
	// {x, y}.
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 1}},
		[]wsd.Alt{alt(f("R", "x"), f("R", "y"))},
	)
	pick := func() algebra.Expr { return algebra.ChoiceOf{E: algebra.Scan("R", "c")} }
	q := query.NewAlgebra("two", query.Out{Name: "A", Expr: algebra.Union{L: pick(), R: pick()}})
	got := checkEvalWS(t, w, q)
	if c := got.Count().Int64(); c != 3 {
		t.Fatalf("Count = %d, want 3", c)
	}
}

func TestEvalDiffOperator(t *testing.T) {
	// R ∖ S per world: S uncertainly masks one of R's facts.
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 1}, {Name: "S", Arity: 1}},
		[]wsd.Alt{alt(f("R", "x"), f("R", "y"))},
		[]wsd.Alt{alt(f("S", "x")), alt(f("S", "z"))},
	)
	q := query.NewAlgebra("diff", query.Out{Name: "A",
		Expr: algebra.Diff{L: algebra.Scan("R", "c"), R: algebra.Scan("S", "c")}})
	got := checkEvalWS(t, w, q)
	if c := got.Count().Int64(); c != 2 {
		t.Fatalf("Count = %d, want 2 ({y} and {x y})", c)
	}
	if !got.CertainFact("A", rel.Fact{"y"}) {
		t.Error("A(y) is never masked and must be certain")
	}
	if got.CertainFact("A", rel.Fact{"x"}) {
		t.Error("A(x) is masked in one world and must not be certain")
	}
}

func TestEvalDiffOverTemplate(t *testing.T) {
	// Left operand is an attribute-level template (2×2 worlds): diff
	// tabulates it over the merged space — "decidable on the
	// decomposition" — and still matches the oracle.
	w := wsd.New(table.Schema{{Name: "R", Arity: 2}, {Name: "S", Arity: 2}})
	if err := w.AddTemplateComponent("R",
		[]string{"a"}, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTemplateComponent("R",
		[]string{"b"}, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddComponent(alt(f("S", "a", "x"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	q := query.NewAlgebra("diff", query.Out{Name: "A",
		Expr: algebra.Diff{L: algebra.Scan("R", "k", "v"), R: algebra.Scan("S", "k", "v")}})
	checkEvalWS(t, w, q)
}

func TestEvalWorldSetOverJoin(t *testing.T) {
	// The operators compose with the positive fragment: which sensor
	// readings are certainly present after a join against a certain
	// dimension table.
	w := mustWSD(t, table.Schema{{Name: "R", Arity: 2}, {Name: "D", Arity: 1}},
		[]wsd.Alt{alt(f("R", "hub", "ok"))},
		[]wsd.Alt{alt(f("R", "s0", "lo")), alt(f("R", "s0", "hi"))},
		[]wsd.Alt{alt(f("D", "s0"))},
	)
	q := query.NewAlgebra("jc", query.Out{Name: "A",
		Expr: algebra.Certain{E: algebra.Join{L: scanR(), R: algebra.Scan("D", "s")}}})
	got := checkEvalWS(t, w, q)
	if c := got.Count().Int64(); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
}

func TestEvalPossibleOfChoiceOf(t *testing.T) {
	// possible(choiceof(e)) = possible(e): the collapse must also fold
	// the synthetic choice axis, not just base components.
	w := sensorsWSD(t)
	q := query.NewAlgebra("pc", query.Out{Name: "A",
		Expr: algebra.Possible{E: algebra.ChoiceOf{E: scanR()}}})
	got := checkEvalWS(t, w, q)
	if c := got.Count().Int64(); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
	for _, fact := range []rel.Fact{{"hub", "ok"}, {"s0", "lo"}, {"s0", "hi"}} {
		if !got.CertainFact("A", fact) {
			t.Errorf("A%v must be certain in possible(choiceof())", fact)
		}
	}
}

func TestEvalCertainOfChoiceOf(t *testing.T) {
	// certain(choiceof(R)) over a single-fact certain R is that fact;
	// with real choice it is empty.
	one := mustWSD(t, table.Schema{{Name: "R", Arity: 1}},
		[]wsd.Alt{alt(f("R", "x"))},
	)
	q := query.NewAlgebra("cc", query.Out{Name: "A",
		Expr: algebra.Certain{E: algebra.ChoiceOf{E: algebra.Scan("R", "c")}}})
	got := checkEvalWS(t, one, q)
	if !got.CertainFact("A", rel.Fact{"x"}) {
		t.Error("the only pickable fact must be certain")
	}
	two := mustWSD(t, table.Schema{{Name: "R", Arity: 1}},
		[]wsd.Alt{alt(f("R", "x"), f("R", "y"))},
	)
	got = checkEvalWS(t, two, q)
	if got.PossibleFact("A", rel.Fact{"x"}) {
		t.Error("no fact is picked in every choice world")
	}
}

func TestEvalDiffEntangledGuard(t *testing.T) {
	// A diff against many independent uncertain components needs their
	// joint space; past MaxMergeAlts it must refuse with ErrEntangled,
	// never approximate.
	schema := table.Schema{{Name: "R", Arity: 1}, {Name: "S", Arity: 1}}
	w := wsd.New(schema)
	if err := w.AddComponent(alt(f("R", "x"))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		if err := w.AddComponent(alt(f("S", a)), alt(f("S", b))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	q := query.NewAlgebra("big", query.Out{Name: "A",
		Expr: algebra.Diff{L: algebra.Scan("R", "c"), R: algebra.Scan("S", "c")}})
	if _, err := Eval(w, q); !errors.Is(err, ErrEntangled) {
		t.Fatalf("want ErrEntangled, got %v", err)
	}
}
