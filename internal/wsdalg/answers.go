// Decomposition-native answer sets: once Eval has produced the answer
// world-set as a decomposition, possibility and certainty of answer
// facts are support lookups — the normalized invariants make the
// support exactly the possible facts and the every-alternative facts
// exactly the certain ones. No world is ever expanded.
package wsdalg

import (
	"fmt"

	"pw/internal/obs"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/wsd"
)

// PossibleAnswers computes every possible answer fact of q over the
// decomposition: the facts present in at least one world of
// {q(W) : W ∈ rep(D)}. The result instance is shaped by the query's
// output schema; on the empty world set it is empty (no world, no
// possible fact). Unlike the c-table engines, the answer space of a
// decomposition is ground and finite, so no domain restriction is
// needed: the support of Eval's result is the complete answer set.
func PossibleAnswers(w *wsd.WSD, q query.Query) (*rel.Instance, error) {
	return PossibleAnswersObserved(w, q, nil)
}

// PossibleAnswersObserved is PossibleAnswers with a cost-accounting
// sink threaded into the evaluation (nil c: exactly PossibleAnswers).
func PossibleAnswersObserved(w *wsd.WSD, q query.Query, c *obs.Cost) (*rel.Instance, error) {
	out, err := EvalObserved(w, q, c)
	if err != nil {
		return nil, err
	}
	inst := shapedInstance(out.Schema())
	if out.Empty() {
		return inst, nil
	}
	// The possible-answer set is the result's support — output-sized,
	// but an answer template whose instantiation count overflows int
	// cannot be materialized at all: report the blow-up instead of
	// letting Support panic.
	if _, ok := out.SupportSize(); !ok {
		return nil, fmt.Errorf("%w: the possible-answer set of %s has more facts than fit in memory (an answer template's field product overflows)",
			ErrEntangled, q.Label())
	}
	for _, f := range out.Support() {
		inst.Relation(f.Rel).Add(f.Args)
	}
	return inst, nil
}

// CertainAnswers computes every certain answer fact of q over the
// decomposition: the facts present in all worlds of {q(W) : W ∈ rep(D)}.
// On the empty world set certainty is vacuous and there is no canonical
// answer set; the schema-shaped empty instance is reported, matching
// decide.CertainAnswers' convention for rep(d) = ∅.
func CertainAnswers(w *wsd.WSD, q query.Query) (*rel.Instance, error) {
	return CertainAnswersObserved(w, q, nil)
}

// CertainAnswersObserved is CertainAnswers with a cost-accounting sink
// threaded into the evaluation (nil c: exactly CertainAnswers).
func CertainAnswersObserved(w *wsd.WSD, q query.Query, c *obs.Cost) (*rel.Instance, error) {
	out, err := EvalObserved(w, q, c)
	if err != nil {
		return nil, err
	}
	inst := shapedInstance(out.Schema())
	if out.Empty() {
		return inst, nil
	}
	for _, f := range out.CertainFacts() {
		inst.Relation(f.Rel).Add(f.Args)
	}
	return inst, nil
}

// shapedInstance builds an empty instance with one relation per schema
// entry.
func shapedInstance(s table.Schema) *rel.Instance {
	inst := rel.NewInstance()
	for _, r := range s {
		inst.AddRelation(rel.NewRelation(r.Name, r.Arity))
	}
	return inst
}
