// Differential validation of the lifted evaluator through the shared
// metamorphic harness (internal/difftest): seeded (decomposition,
// positive query) pairs answered by Eval — decisions on the answer
// world-set, Expand, and the possible/certain answer sets — against the
// per-world oracle; seeded conditioned-table databases compiled to
// decompositions and answered through Eval against the lifted c-table
// path (domain-restricted to the constants both engines enumerate);
// and native containment against the brute-force pair oracle.
package wsdalg_test

import (
	"fmt"
	"testing"

	"pw/internal/difftest"
	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/worlds"
	"pw/internal/wsd"
	"pw/internal/wsdalg"
)

// TestDifferentialWSDAlg is the primary suite: random mixed-granularity
// decompositions under random positive-algebra queries, every decision
// and answer-set procedure of the lifted evaluator checked against the
// per-world oracle.
func TestDifferentialWSDAlg(t *testing.T) {
	schema := table.Schema{{Name: "R", Arity: 2}}
	difftest.Run(t, difftest.Config{
		Tag:   "wsdalg",
		Cases: 150,
		Gen: func(seed int64) (*difftest.Case, bool) {
			consts := 4 + int(seed)%3
			w, err := gen.RandomWSD(seed, 3+int(seed)%2, 3, 2, consts)
			if err != nil {
				return nil, false
			}
			if !w.Count().IsInt64() || w.Count().Int64() > 400 {
				return nil, false
			}
			q := gen.RandomPositiveQuery(seed, schema, consts, 2+int(seed)%2)
			return &difftest.Case{
				Tag:    fmt.Sprintf("wsdalg seed %d (%s)", seed, q.Label()),
				Worlds: w.Expand(0),
				WSD:    w,
				Query:  q,
			}, true
		},
		Backends: []difftest.Backend{
			difftest.WSDBackend("wsdalg"),
			// The same cases through the query server's HTTP path: the
			// prepared-query and answer caches must be invisible in the
			// answers (each answer set is requested twice; the repeat
			// must be a cache hit and must still match the oracle).
			difftest.ServerBackend("server", 2),
		},
	})
}

// TestDifferentialWSAlgebra is the world-set-algebra suite: seeded
// decompositions under random queries drawn from the extended pool —
// nested possible/certain, choiceof (≤2 occurrences), difference and ≠
// selections — cross-validated against the explicit-worlds world-set
// oracle. Three provenances answer each case: the native evaluator, the
// re-factorized world list, and the evaluator behind the cost-based
// planner (so every planner rewrite is checked for equivalence on every
// case). The generator pre-screens refusals (entanglement on either
// decomposition provenance, oracle answer-world blowups): refusal
// behavior has its own tests; this suite is about agreement where the
// fragment is decidable.
func TestDifferentialWSAlgebra(t *testing.T) {
	schema := table.Schema{{Name: "R", Arity: 2}}
	difftest.Run(t, difftest.Config{
		Tag:     "wsdalg-wsa",
		Cases:   150,
		MaxSeed: 20000,
		Gen: func(seed int64) (*difftest.Case, bool) {
			consts := 3 + int(seed)%3
			w, err := gen.RandomWSD(seed, 3+int(seed)%2, 3, 2, consts)
			if err != nil {
				return nil, false
			}
			if !w.Count().IsInt64() || w.Count().Int64() > 120 {
				return nil, false
			}
			q := gen.RandomWSAQuery(seed, schema, consts, 2+int(seed)%2)
			if !query.HasExtendedOps(q) {
				return nil, false // plain positive roll: TestDifferentialWSDAlg's ground
			}
			if _, err := wsdalg.Eval(w, q); err != nil {
				return nil, false
			}
			ws := w.Expand(0)
			if ans, err := query.EvalOnWorldSet(q, ws); err != nil || len(ans) > 1500 {
				return nil, false
			}
			wf, err := wsd.FromWorlds(ws)
			if err != nil {
				return nil, false
			}
			if _, err := wsdalg.Eval(wf, q); err != nil {
				return nil, false // the refactorized provenance entangles differently
			}
			return &difftest.Case{
				Tag:    fmt.Sprintf("wsdalg-wsa seed %d (%s)", seed, q.Label()),
				Worlds: ws,
				WSD:    w,
				Query:  q,
			}, true
		},
		Backends: []difftest.Backend{
			difftest.WSDBackend("wsdalg"),
			difftest.FromWorldsBackend(),
			difftest.PlannedWSDBackend(),
		},
	})
}

// TestPlannerNeverExceedsNaive is the planner property test: across
// random world-set-algebra queries, the chosen plan's predicted cost
// never exceeds the written (naive) form's, the chosen form still
// evaluates wherever the naive form does, and both produce the same
// world count. (Member-level equivalence is the differential suite's
// PlannedWSDBackend.)
func TestPlannerNeverExceedsNaive(t *testing.T) {
	schema := table.Schema{{Name: "R", Arity: 2}}
	checked := 0
	for seed := int64(1); checked < 100 && seed < 8000; seed++ {
		w, err := gen.RandomWSD(seed, 3+int(seed)%2, 3, 2, 4)
		if err != nil || !w.Count().IsInt64() || w.Count().Int64() > 200 {
			continue
		}
		q := gen.RandomWSAQuery(seed, schema, 4, 2+int(seed)%2)
		opt, info := wsdalg.Optimize(w, q)
		if info == nil {
			t.Fatalf("seed %d: algebra query got no planning record", seed)
		}
		if info.ChosenCost > info.NaiveCost {
			t.Fatalf("seed %d: chosen cost %d exceeds naive %d\nchosen: %s\nnaive:  %s",
				seed, info.ChosenCost, info.NaiveCost, info.Chosen, info.Naive)
		}
		naive, err := wsdalg.Eval(w, q)
		if err != nil {
			continue // refused queries have their own coverage
		}
		got, err := wsdalg.Eval(w, opt)
		if err != nil {
			t.Fatalf("seed %d: chosen plan fails where the naive form succeeds: %v\nchosen: %s",
				seed, err, info.Chosen)
		}
		if naive.Count().Cmp(got.Count()) != 0 {
			t.Fatalf("seed %d: chosen plan answers %s worlds, naive %s\nchosen: %s\nnaive:  %s",
				seed, got.Count(), naive.Count(), info.Chosen, info.Naive)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d planner property cases within the seed budget", checked)
	}
}

// smallDB mirrors the wsd crosscheck generator: one table of each kind
// at differential scale.
func smallDB(seed int64) *table.Database {
	rows := 2 + int(seed)%2
	switch seed % 4 {
	case 0:
		return table.DB(gen.CoddTable(seed, "T", rows, 2, 3, 0.5))
	case 1:
		return table.DB(gen.ETable(seed, "T", rows, 2, 3, 2, 0.5))
	case 2:
		return table.DB(gen.ITable(seed, "T", rows, 2, 3, 1, 0.5))
	default:
		return table.DB(gen.CTable(seed, "T", rows, 2, 3, 2, 0.5, 0.5))
	}
}

// viewDomain mirrors the deciders' Δ ∪ Δ′ for view problems: the
// constants of the database and the query plus one fresh constant per
// database variable. Compiling over it makes the decomposition denote
// the same canonical world set the c-table engines reason over
// (worlds over d's constants alone would miss answers that mention the
// query's constants).
func viewDomain(c *difftest.Case) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range c.DB.Consts(nil, map[string]bool{}) {
		add(s)
	}
	for _, s := range c.Q().Consts() {
		add(s)
	}
	ids := make([]sym.ID, len(out))
	for i, s := range out {
		ids[i] = sym.Const(s)
	}
	prefix := table.FreshPrefixIDs(ids)
	for i := range c.DB.VarNames() {
		add(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// TestDifferentialWSDAlgVsLifted compiles seeded table databases into
// decompositions over the view domain and checks the
// decomposition-native answer sets against the lifted c-table engine —
// both domain-restricted to the constants the two engines share (the
// decomposition also knows answers over the canonical fresh constants,
// which the c-table path by design does not enumerate). The world list
// is the compiled decomposition's own expansion, so the worlds oracle
// arbitrates whenever the two engines disagree.
func TestDifferentialWSDAlgVsLifted(t *testing.T) {
	schema := table.Schema{{Name: "T", Arity: 2}}
	difftest.Run(t, difftest.Config{
		Tag:     "wsdalg-lifted",
		Cases:   150,
		MaxSeed: 12000,
		Gen: func(seed int64) (*difftest.Case, bool) {
			d := smallDB(seed)
			if len(d.VarNames()) > 4 {
				return nil, false
			}
			if len(worlds.All(d)) > 300 {
				return nil, false
			}
			q := gen.RandomPositiveQuery(seed, schema, 3, 2)
			c := &difftest.Case{
				Tag:   fmt.Sprintf("wsdalg-lifted seed %d (%s)", seed, q.Label()),
				DB:    d,
				Query: q,
			}
			w, err := wsd.ToWSDOverDomain(d, viewDomain(c))
			if err != nil {
				return nil, false
			}
			if !w.Count().IsInt64() || w.Count().Int64() > 300 {
				return nil, false
			}
			c.Worlds = w.Expand(0)
			c.WSD = w
			return c, true
		},
		Backends: []difftest.Backend{
			difftest.WSDBackend("wsdalg/compiled"),
			difftest.DecideBackend(0, true),
		},
	})
}

// TestDifferentialContains checks native containment against the
// brute-force oracle on seeded decomposition pairs over a shared
// constant pool (so containment sometimes holds and sometimes fails),
// including reflexivity.
func TestDifferentialContains(t *testing.T) {
	difftest.RunContainment(t, difftest.ContConfig{
		Tag:   "wsd-contains",
		Cases: 150,
		Gen: func(seed int64) (sub, sup *difftest.Case, ok bool) {
			s, err := gen.RandomWSD(seed, 3, 2, 1, 3)
			if err != nil {
				return nil, nil, false
			}
			var p *wsd.WSD
			if seed%5 == 0 {
				p = s // reflexive pair: containment must hold
			} else if p, err = gen.RandomWSD(seed+1000, 3, 3, 1, 3); err != nil {
				return nil, nil, false
			}
			return &difftest.Case{Worlds: s.Expand(0), WSD: s},
				&difftest.Case{Worlds: p.Expand(0), WSD: p}, true
		},
		Backends: []difftest.ContBackend{difftest.WSDContBackend()},
	})
}
