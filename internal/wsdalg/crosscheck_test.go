// Differential validation of the lifted evaluator against the two
// existing engines, per the acceptance criteria:
//
//   - on ≥100 seeded (WSD, positive query) pairs, Eval followed by
//     Expand equals per-world query.Eval world-for-world (the worlds
//     oracle), and PossibleAnswers/CertainAnswers equal the union /
//     intersection of the per-world answers;
//   - on seeded conditioned-table databases compiled to decompositions
//     (ToWSDOverDomain), the decomposition-native answer sets agree
//     with the lifted c-table path (decide.PossibleAnswers /
//     decide.CertainAnswers) on facts over the inputs' constants;
//   - Contains agrees with brute-force world-by-world membership.
package wsdalg

import (
	"fmt"
	"testing"

	"pw/internal/decide"
	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/worlds"
	"pw/internal/wsd"
)

// answerOracle computes the distinct answer set, its union and its
// intersection by expanding every world of w and evaluating q on it.
func answerOracle(t *testing.T, w *wsd.WSD, q query.Query) (answers []*rel.Instance, union, inter *rel.Instance) {
	t.Helper()
	buckets := map[uint64][]*rel.Instance{}
	w.Each(func(i *rel.Instance) bool {
		a, err := q.Eval(i)
		if err != nil {
			t.Fatalf("oracle eval: %v", err)
		}
		if union == nil {
			union = a.Clone()
			inter = a.Clone()
		} else {
			for _, r := range a.Relations() {
				union.EnsureRelation(r.Name, r.Arity).UnionWith(r)
			}
			for _, r := range inter.Relations() {
				other := a.Relation(r.Name)
				keep := rel.NewRelation(r.Name, r.Arity)
				for _, u := range r.Tuples() {
					if other != nil && other.Contains(u) {
						keep.Insert(u)
					}
				}
				*r = *keep
			}
		}
		h := a.Fingerprint()
		for _, prev := range buckets[h] {
			if prev.Equal(a) {
				return false
			}
		}
		buckets[h] = append(buckets[h], a)
		answers = append(answers, a)
		return false
	})
	return answers, union, inter
}

// TestWSDAlgCrossValidation is the acceptance-criterion suite: ≥100
// seeded (decomposition, positive query) pairs checked world-for-world
// against the oracle.
func TestWSDAlgCrossValidation(t *testing.T) {
	const cases = 104
	schema := table.Schema{{Name: "R", Arity: 2}}
	tested := 0
	for seed := int64(1); tested < cases; seed++ {
		consts := 4 + int(seed)%3
		w, err := gen.RandomWSD(seed, 3+int(seed)%2, 3, 2, consts)
		if err != nil {
			t.Fatalf("seed %d: RandomWSD: %v", seed, err)
		}
		q := gen.RandomPositiveQuery(seed, schema, consts, 2+int(seed)%2)
		tag := fmt.Sprintf("seed %d (%s)", seed, q.Label())

		got, err := Eval(w, q)
		if err != nil {
			t.Fatalf("%s: Eval: %v", tag, err)
		}
		answers, union, inter := answerOracle(t, w, q)

		// rep(Eval(w, q)) = {q(W)} world-for-world: counts match and
		// every oracle answer is a member (membership + exact count ⇒
		// set equality, by the normalized injectivity invariant).
		if c := got.Count(); !c.IsInt64() || c.Int64() != int64(len(answers)) {
			t.Fatalf("%s: Count = %s, oracle has %d distinct answers\ninput:\n%s\nresult:\n%s",
				tag, c, len(answers), w, got)
		}
		for ai, a := range answers {
			if !got.Member(a) {
				t.Fatalf("%s: oracle answer %d missing from rep(Eval):\n%s\nresult:\n%s", tag, ai, a, got)
			}
		}
		// Expand reproduces the answer set exactly (bounded: counts match).
		expanded := got.Expand(0)
		if len(expanded) != len(answers) {
			t.Fatalf("%s: Expand yielded %d answers, oracle has %d", tag, len(expanded), len(answers))
		}

		// Answer-fact possibility/certainty without expansion.
		poss, err := PossibleAnswers(w, q)
		if err != nil {
			t.Fatalf("%s: PossibleAnswers: %v", tag, err)
		}
		if !poss.Equal(union) {
			t.Fatalf("%s: PossibleAnswers = %v, oracle union = %v", tag, poss, union)
		}
		cert, err := CertainAnswers(w, q)
		if err != nil {
			t.Fatalf("%s: CertainAnswers: %v", tag, err)
		}
		if !cert.Equal(inter) {
			t.Fatalf("%s: CertainAnswers = %v, oracle intersection = %v", tag, cert, inter)
		}
		tested++
	}
	t.Logf("cross-validated %d (WSD, query) pairs", tested)
}

// smallDB mirrors the wsd crosscheck generator: one table of each kind
// at differential scale.
func smallDB(seed int64) *table.Database {
	rows := 2 + int(seed)%2
	switch seed % 4 {
	case 0:
		return table.DB(gen.CoddTable(seed, "T", rows, 2, 3, 0.5))
	case 1:
		return table.DB(gen.ETable(seed, "T", rows, 2, 3, 2, 0.5))
	case 2:
		return table.DB(gen.ITable(seed, "T", rows, 2, 3, 1, 0.5))
	default:
		return table.DB(gen.CTable(seed, "T", rows, 2, 3, 2, 0.5, 0.5))
	}
}

// restrictTo keeps only the facts whose constants all lie in allowed.
func restrictTo(i *rel.Instance, allowed map[string]bool) *rel.Instance {
	out := rel.NewInstance()
	for _, r := range i.Relations() {
		keep := out.EnsureRelation(r.Name, r.Arity)
	facts:
		for _, f := range r.Facts() {
			for _, c := range f {
				if !allowed[c] {
					continue facts
				}
			}
			keep.Add(f)
		}
	}
	return out
}

// viewDomain mirrors the deciders' Δ ∪ Δ′ for view problems: the
// constants of the database and the query plus one fresh constant per
// database variable. Compiling over it makes the decomposition denote
// the same canonical world set the c-table engines reason over
// (worlds over d's constants alone would miss answers that mention the
// query's constants).
func viewDomain(d *table.Database, q query.Query) []string {
	seen := map[string]bool{}
	var out []string
	add := func(c string) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range d.Consts(nil, map[string]bool{}) {
		add(c)
	}
	for _, c := range q.Consts() {
		add(c)
	}
	ids := make([]sym.ID, len(out))
	for i, c := range out {
		ids[i] = sym.Const(c)
	}
	prefix := table.FreshPrefixIDs(ids)
	for i := range d.VarNames() {
		add(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// TestWSDAlgAgreesWithLiftedCTablePath compiles seeded table databases
// into decompositions over the canonical domain and checks that the
// decomposition-native answer sets match the c-table engine's
// (restricted to the inputs' constants, the domain both sides share —
// the decomposition also knows answers over the canonical fresh
// constants, which the c-table path by design does not enumerate).
func TestWSDAlgAgreesWithLiftedCTablePath(t *testing.T) {
	schema := table.Schema{{Name: "T", Arity: 2}}
	tested := 0
	for seed := int64(1); tested < 40 && seed < 400; seed++ {
		d := smallDB(seed)
		if len(d.VarNames()) > 4 {
			continue
		}
		if len(worlds.All(d)) > 300 {
			continue
		}
		q := gen.RandomPositiveQuery(seed, schema, 3, 2)
		w, err := wsd.ToWSDOverDomain(d, viewDomain(d, q))
		if err != nil {
			t.Fatalf("seed %d: ToWSDOverDomain: %v", seed, err)
		}
		tag := fmt.Sprintf("table seed %d (%s)", seed, q.Label())

		allowed := map[string]bool{}
		for _, c := range d.Consts(nil, map[string]bool{}) {
			allowed[c] = true
		}
		for _, c := range q.Consts() {
			allowed[c] = true
		}

		wPoss, err := PossibleAnswers(w, q)
		if err != nil {
			t.Fatalf("%s: wsdalg.PossibleAnswers: %v", tag, err)
		}
		dPoss, err := decide.PossibleAnswers(q, d)
		if err != nil {
			t.Fatalf("%s: decide.PossibleAnswers: %v", tag, err)
		}
		if got, want := restrictTo(wPoss, allowed), restrictTo(dPoss, allowed); !got.Equal(want) {
			t.Fatalf("%s: possible answers disagree:\nwsdalg %v\ndecide %v\nDB:\n%s", tag, got, want, d)
		}

		wCert, err := CertainAnswers(w, q)
		if err != nil {
			t.Fatalf("%s: wsdalg.CertainAnswers: %v", tag, err)
		}
		dCert, err := decide.CertainAnswers(q, d)
		if err != nil {
			t.Fatalf("%s: decide.CertainAnswers: %v", tag, err)
		}
		if got, want := restrictTo(wCert, allowed), restrictTo(dCert, allowed); !got.Equal(want) {
			t.Fatalf("%s: certain answers disagree:\nwsdalg %v\ndecide %v\nDB:\n%s", tag, got, want, d)
		}
		tested++
	}
	if tested < 40 {
		t.Fatalf("only %d table cases generated, want 40", tested)
	}
}

// TestContainsCrossValidation checks native containment against the
// brute-force oracle on seeded decomposition pairs over a shared
// constant pool (so containment sometimes holds and sometimes fails).
func TestContainsCrossValidation(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		sub, err := gen.RandomWSD(seed, 3, 2, 1, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sup, err := gen.RandomWSD(seed+1000, 3, 3, 1, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := true
		sub.Each(func(w *rel.Instance) bool {
			if !sup.Member(w) {
				want = false
				return true
			}
			return false
		})
		got, err := Contains(sub, sup)
		if err != nil {
			t.Fatalf("seed %d: Contains: %v", seed, err)
		}
		if got != want {
			t.Errorf("seed %d: Contains = %v, oracle says %v\nsub:\n%s\nsup:\n%s", seed, got, want, sub, sup)
		}
		// Reflexivity, while we are here.
		if ok, err := Contains(sup, sup); err != nil || !ok {
			t.Errorf("seed %d: reflexive containment failed: %v %v", seed, ok, err)
		}
	}
}
