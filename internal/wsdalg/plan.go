// Plan introspection: EvalPlanned is EvalObserved plus an
// EXPLAIN/ANALYZE tree. Each operator node of the query expression gets
// a PlanNode carrying *estimates* computed from the node's inputs
// before its own work runs (parts, distinct choice units, tabulated-row
// upper bounds, and — for ⋈ and the final assembly — the joint
// alternative space predicted from origin-space products) and *actuals*
// filled during evaluation (parts emitted, rows tabulated, joint
// alternatives actually swept, wall time). The estimates are sound
// upper bounds by construction: a join's predicted merge space is the
// exact sum of per-part-pair origin products, and evaluation either
// sweeps exactly that space or stops early (ErrEntangled), so
// Est.MergeSpace ≥ Act.MergeSpace always — the property the planner the
// ROADMAP calls for needs before it can rank plans, and the property
// TestPlanEstimateSoundness pins across the difftest corpus.
//
// Actuals reconcile with the obs.Cost counters of the same run:
// summing Act.MergeSpace over all plan nodes gives eval_alts_tabulated,
// the max of Act.MaxSpace gives eval_merge_space_max, summing the out
// nodes' Act.Parts gives eval_parts, and Plan.Components equals
// eval_components — the plan is the per-operator decomposition of the
// totals PR 8 already reports.
package wsdalg

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"pw/internal/algebra"
	"pw/internal/obs"
	"pw/internal/query"
	"pw/internal/unionfind"
	"pw/internal/wsd"
)

// PlanStats is one side (estimate or actual) of a plan node's numbers.
// Zero fields are omitted from JSON; MergeSpace/MaxSpace only apply to
// nodes that sweep joint alternative spaces (join, assemble), DurUS
// only to actuals. Values saturate at math.MaxInt64 instead of
// overflowing — a saturated estimate still upper-bounds every actual.
type PlanStats struct {
	Parts      int64 `json:"parts,omitempty"`
	Units      int64 `json:"units,omitempty"`
	Rows       int64 `json:"rows,omitempty"`
	MergeSpace int64 `json:"merge,omitempty"`
	MaxSpace   int64 `json:"max_space,omitempty"`
	DurUS      int64 `json:"us,omitempty"`
}

// PlanNode is one operator of the evaluated expression tree (plus the
// synthetic "out" and "assemble" nodes). Error is the error class when
// evaluation failed at or below this node; the subtree evaluated so far
// is retained, so a refused query still explains where it blew up.
type PlanNode struct {
	Op       string      `json:"op"`
	Detail   string      `json:"detail,omitempty"`
	Est      PlanStats   `json:"est"`
	Act      PlanStats   `json:"act"`
	Error    string      `json:"error,omitempty"`
	Children []*PlanNode `json:"children,omitempty"`
}

// NormalizeStats is the answer-side Normalize's share of the run: the
// components its counting-argument factorizer merged, the vertical
// (attribute-level) splits and certain folds it performed, and its wall
// time.
type NormalizeStats struct {
	ComponentsMerged int64 `json:"merged"`
	VerticalSplits   int64 `json:"splits,omitempty"`
	CertainFolds     int64 `json:"folds,omitempty"`
	DurUS            int64 `json:"us"`
}

// Plan is one evaluation's EXPLAIN/ANALYZE record: the input size, one
// node tree per output relation, the final component assembly, the
// answer-side Normalize, the exact world count of the result, and the
// run's full cost counters (the same obs.Cost names ?trace=1 reports).
type Plan struct {
	Query      string           `json:"query"`
	Components int64            `json:"components"`
	Outs       []*PlanNode      `json:"outs,omitempty"`
	Assemble   *PlanNode        `json:"assemble,omitempty"`
	Normalize  *NormalizeStats  `json:"normalize,omitempty"`
	WorldCount string           `json:"worlds,omitempty"`
	Cost       map[string]int64 `json:"cost,omitempty"`
	Error      string           `json:"error,omitempty"`
	Planner    *PlannerInfo     `json:"planner,omitempty"`
	DurUS      int64            `json:"us"`
}

// EvalPlanned is EvalObserved plus plan construction. The evaluation
// runs against a private cost sink so Plan.Cost reports exactly this
// run's counters even when c is a shared request-wide sink; the private
// counters are folded into c afterwards (additive kinds add, high-water
// kinds max). The plan is returned even on error, annotated with the
// error class and truncated at the failing node.
func EvalPlanned(w *wsd.WSD, q query.Query, c *obs.Cost) (*wsd.WSD, *Plan, error) {
	ci := obs.NewCost()
	p := &Plan{Query: q.Label()}
	start := time.Now()
	out, err := evalCore(w, q, ci, p)
	p.DurUS = time.Since(start).Microseconds()
	p.Cost = ci.Counters()
	if err != nil {
		p.Error = ErrorClass(err)
	} else {
		p.WorldCount = out.Count().String()
	}
	c.AddSnapshot(ci.Snapshot())
	return out, p, err
}

// ErrorClass maps an evaluation error to its stable class name — the
// string spans, plan nodes and the server's flight recorder annotate
// with ("" for nil).
func ErrorClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrEntangled):
		return "entangled"
	case errors.Is(err, ErrUnsupported):
		return "unsupported"
	default:
		return "error"
	}
}

// markError annotates the node with the error's class. Nil-safe (the
// unplanned path threads nil nodes); the first class wins.
func (n *PlanNode) markError(err error) {
	if n == nil || err == nil {
		return
	}
	if n.Error == "" {
		n.Error = ErrorClass(err)
	}
}

// satAdd and satMul are int64 arithmetic saturating at math.MaxInt64
// (estimate inputs are non-negative).
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// opName names an operator node; opDetail adds the human-facing
// argument (relation name, projected columns, predicates).
func opName(e algebra.Expr) string {
	switch e.(type) {
	case algebra.ConstRel:
		return "const"
	case algebra.Rel:
		return "scan"
	case algebra.Project:
		return "project"
	case algebra.Select:
		return "select"
	case algebra.Rename:
		return "rename"
	case algebra.Join:
		return "join"
	case algebra.Union:
		return "union"
	case algebra.Diff:
		return "diff"
	case algebra.Possible:
		return "possible"
	case algebra.Certain:
		return "certain"
	case algebra.ChoiceOf:
		return "choiceof"
	}
	return fmt.Sprintf("%T", e)
}

func opDetail(e algebra.Expr) string {
	switch n := e.(type) {
	case algebra.ConstRel:
		return fmt.Sprintf("%d rows", len(n.Rows))
	case algebra.Rel:
		return n.Name
	case algebra.Project:
		return strings.Join(n.Cols, ",")
	case algebra.Select:
		ps := make([]string, len(n.Preds))
		for i, p := range n.Preds {
			ps[i] = p.String()
		}
		return strings.Join(ps, ", ")
	case algebra.Rename:
		pairs := make([]string, len(n.From))
		for i := range n.From {
			pairs[i] = n.From[i] + ">" + n.To[i]
		}
		return strings.Join(pairs, ",")
	}
	return ""
}

// originsProduct is the joint alternative count of an origin set,
// saturating — the estimate-side mirror of evaluator.space, with no
// guard and no cost recording.
func (ev *evaluator) originsProduct(origins []int) int64 {
	prod := int64(1)
	for _, o := range origins {
		prod = satMul(prod, int64(ev.altCounts[o]))
	}
	return prod
}

// rowsUB upper-bounds the rows a part can tabulate: the alternatives'
// total row count for a tabulated body, the origin-space product for a
// template body (one row per joint choice at most).
func (ev *evaluator) rowsUB(p *part) int64 {
	if p.tmpl != nil {
		return ev.originsProduct(p.origins)
	}
	var n int64
	for _, alt := range p.alts {
		n = satAdd(n, int64(len(alt)))
	}
	return n
}

// drelStats summarizes a decomposed relation as estimate input: parts,
// distinct choice units, tabulated-rows upper bound. Tuple-local
// operators can only shrink all three, so the input's stats are the
// node's estimate.
func (ev *evaluator) drelStats(d *dRel) PlanStats {
	var s PlanStats
	s.Parts = int64(len(d.parts))
	var units []int
	for i := range d.parts {
		units = mergeOrigins(units, d.parts[i].origins)
		s.Rows = satAdd(s.Rows, ev.rowsUB(&d.parts[i]))
	}
	s.Units = int64(len(units))
	return s
}

// scanEst bounds a base-relation scan from the raw decomposition
// without building parts: at most one part per component, every unit
// potentially touched, and (for tabulated rows) each alternative's full
// fact list — template components scan symbolically and tabulate
// nothing.
func (ev *evaluator) scanEst(name string) PlanStats {
	s := PlanStats{Parts: int64(ev.w.Components()), Units: int64(ev.n)}
	for ci := 0; ci < ev.w.Components(); ci++ {
		if _, _, ok := ev.w.TemplateSlots(ci); ok {
			continue
		}
		for ai := 0; ai < ev.w.AltCount(ci); ai++ {
			s.Rows = satAdd(s.Rows, int64(len(ev.w.AltFacts(ci, ai))))
		}
	}
	return s
}

// joinEst predicts a join before tabulation: every part pair tabulates
// over its merged origin product, so MergeSpace is the exact sum of
// those products (the evaluation sweeps exactly this space unless it
// stops early on ErrEntangled — which only makes the actual smaller),
// and Rows multiplies the operands' row bounds pairwise.
func (ev *evaluator) joinEst(l, r *dRel) PlanStats {
	var s PlanStats
	s.Parts = satMul(int64(len(l.parts)), int64(len(r.parts)))
	var units []int
	for i := range l.parts {
		units = mergeOrigins(units, l.parts[i].origins)
	}
	for i := range r.parts {
		units = mergeOrigins(units, r.parts[i].origins)
	}
	s.Units = int64(len(units))
	for li := range l.parts {
		for ri := range r.parts {
			origins := mergeOrigins(append([]int(nil), l.parts[li].origins...), r.parts[ri].origins)
			prod := ev.originsProduct(origins)
			s.MergeSpace = satAdd(s.MergeSpace, prod)
			if prod > s.MaxSpace {
				s.MaxSpace = prod
			}
			s.Rows = satAdd(s.Rows, satMul(ev.rowsUB(&l.parts[li]), ev.rowsUB(&r.parts[ri])))
		}
	}
	return s
}

// possibleEst predicts possible(e): the support sweep tabulates each
// template part's origin space (tabulated parts contribute their rows
// directly, no sweep), and the result is a single certain part bounded
// by the operand's total row bound.
func (ev *evaluator) possibleEst(in *dRel) PlanStats {
	s := PlanStats{Parts: 1}
	for i := range in.parts {
		p := &in.parts[i]
		s.Rows = satAdd(s.Rows, ev.rowsUB(p))
		if p.tmpl != nil {
			prod := ev.originsProduct(p.origins)
			s.MergeSpace = satAdd(s.MergeSpace, prod)
			if prod > s.MaxSpace {
				s.MaxSpace = prod
			}
		}
	}
	return s
}

// certainEst predicts certain(e) by mirroring the sub-decomposition
// assembly certainRows runs: parts group by shared origins via the same
// union-find, and each group sweeps its merged origin product (the
// template fast path only makes the actual smaller).
func (ev *evaluator) certainEst(in *dRel) PlanStats {
	s := PlanStats{Parts: 1}
	uf := unionfind.NewDense(ev.n)
	for i := range in.parts {
		o := in.parts[i].origins
		for j := 1; j < len(o); j++ {
			uf.Union(int32(o[0]), int32(o[j]))
		}
	}
	groups := map[int32][]int{}
	for i := range in.parts {
		p := &in.parts[i]
		s.Rows = satAdd(s.Rows, ev.rowsUB(p))
		if len(p.origins) == 0 {
			continue
		}
		r := uf.Find(int32(p.origins[0]))
		groups[r] = mergeOrigins(groups[r], p.origins)
	}
	for _, origins := range groups {
		prod := ev.originsProduct(origins)
		s.MergeSpace = satAdd(s.MergeSpace, prod)
		if prod > s.MaxSpace {
			s.MaxSpace = prod
		}
	}
	return s
}

// choiceEst predicts choiceof(e) once the support size is known: the
// support sweep's share plus one tabulation over the operand's joint
// origin space times the synthetic unit's |support| alternatives — the
// exact space choiceRel sweeps, one row at most per joint choice.
func (ev *evaluator) choiceEst(in *dRel, nSupport int) PlanStats {
	s := ev.possibleEst(in)
	if nSupport == 0 {
		return s
	}
	var origins []int
	for i := range in.parts {
		origins = mergeOrigins(origins, in.parts[i].origins)
	}
	prod := satMul(ev.originsProduct(origins), int64(nSupport))
	s.MergeSpace = satAdd(s.MergeSpace, prod)
	if prod > s.MaxSpace {
		s.MaxSpace = prod
	}
	s.Units = int64(len(origins)) + 1
	s.Rows = prod
	return s
}

// diffEst predicts l ∖ r: every left part re-tabulates over its origins
// merged with all right-side origins, so MergeSpace is the exact sum of
// those products, and each left part's row bound multiplies by the
// subtrahend axes it did not already depend on (its value is repeated
// across them).
func (ev *evaluator) diffEst(l, r *dRel) PlanStats {
	if len(l.parts) == 0 || len(r.parts) == 0 {
		return ev.drelStats(l)
	}
	var rOrigins []int
	for i := range r.parts {
		rOrigins = mergeOrigins(rOrigins, r.parts[i].origins)
	}
	s := PlanStats{Parts: int64(len(l.parts))}
	var units []int
	for li := range l.parts {
		lp := &l.parts[li]
		origins := mergeOrigins(append([]int(nil), lp.origins...), rOrigins)
		units = mergeOrigins(units, origins)
		prod := ev.originsProduct(origins)
		s.MergeSpace = satAdd(s.MergeSpace, prod)
		if prod > s.MaxSpace {
			s.MaxSpace = prod
		}
		var extra []int
		for _, o := range rOrigins {
			if !containsInt(lp.origins, o) {
				extra = append(extra, o)
			}
		}
		s.Rows = satAdd(s.Rows, satMul(ev.rowsUB(lp), ev.originsProduct(extra)))
	}
	s.Units = int64(len(units))
	return s
}

// containsInt reports membership in a sorted int slice.
func containsInt(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}

// setEst records a node estimate on the current plan node (no-op when
// not planning).
func (ev *evaluator) setEst(s PlanStats) {
	if ev.cur != nil {
		ev.cur.Est = s
	}
}

// actRows counts the rows actually tabulated across a decomposed
// relation's parts (template parts hold no tabulated rows).
func actRows(d *dRel) int64 {
	var n int64
	for i := range d.parts {
		if d.parts[i].tmpl != nil {
			continue
		}
		for _, alt := range d.parts[i].alts {
			n = satAdd(n, int64(len(alt)))
		}
	}
	return n
}

// statsLine renders one PlanStats side as "k=v ..." with zero fields
// omitted; empty string when nothing is set.
func statsLine(s PlanStats, withDur bool) string {
	var b strings.Builder
	add := func(k string, v int64) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, v)
	}
	add("parts", s.Parts)
	add("units", s.Units)
	add("merge", s.MergeSpace)
	add("max", s.MaxSpace)
	add("rows", s.Rows)
	if withDur {
		add("us", s.DurUS)
	}
	return b.String()
}

// WriteText renders the plan as an indented tree — the pwq explain
// shape. Estimates and actuals print side by side per node; an
// error-marked node carries a trailing "!class".
func (p *Plan) WriteText(w io.Writer) {
	fmt.Fprintf(w, "plan %s  components=%d", p.Query, p.Components)
	if p.WorldCount != "" {
		fmt.Fprintf(w, "  worlds=%s", p.WorldCount)
	}
	if p.Error != "" {
		fmt.Fprintf(w, "  !%s", p.Error)
	}
	fmt.Fprintf(w, "  %dus\n", p.DurUS)
	if pi := p.Planner; pi != nil {
		fmt.Fprintf(w, "  planner  est_cost=%d naive_cost=%d", pi.ChosenCost, pi.NaiveCost)
		if pi.Changed() {
			fmt.Fprintf(w, "\n    chosen %s\n    naive  %s\n", pi.Chosen, pi.Naive)
		} else {
			io.WriteString(w, "  (kept written form)\n")
		}
	}
	for _, o := range p.Outs {
		writePlanNode(w, o, 1)
	}
	if p.Assemble != nil {
		writePlanNode(w, p.Assemble, 1)
	}
	if p.Normalize != nil {
		fmt.Fprintf(w, "  normalize  merged=%d splits=%d folds=%d  %dus\n",
			p.Normalize.ComponentsMerged, p.Normalize.VerticalSplits,
			p.Normalize.CertainFolds, p.Normalize.DurUS)
	}
	if len(p.Cost) > 0 {
		names := make([]string, 0, len(p.Cost))
		for n := range p.Cost {
			names = append(names, n)
		}
		sort.Strings(names)
		io.WriteString(w, "cost:")
		for _, n := range names {
			fmt.Fprintf(w, " %s=%d", n, p.Cost[n])
		}
		io.WriteString(w, "\n")
	}
}

func writePlanNode(w io.Writer, n *PlanNode, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	io.WriteString(w, n.Op)
	if n.Detail != "" {
		fmt.Fprintf(w, " %s", n.Detail)
	}
	if s := statsLine(n.Est, false); s != "" {
		fmt.Fprintf(w, "  est[%s]", s)
	}
	if s := statsLine(n.Act, true); s != "" {
		fmt.Fprintf(w, "  act[%s]", s)
	}
	if n.Error != "" {
		fmt.Fprintf(w, "  !%s", n.Error)
	}
	io.WriteString(w, "\n")
	for _, c := range n.Children {
		writePlanNode(w, c, depth+1)
	}
}
