// Satellite coverage for wsd.Normalize round-trips through wsdalg
// operators: identity-shaped queries must preserve Count exactly (the
// answer bijects with the input world set), and the counting-argument
// factorizer must keep XOR-pattern components atomic after evaluation —
// a pairwise-independent but jointly dependent alternative family must
// not be split by the re-normalization of the answer.
package wsdalg

import (
	"testing"

	"pw/internal/algebra"
	"pw/internal/gen"
	"pw/internal/query"
	"pw/internal/table"
	"pw/internal/wsd"
)

// identityShaped builds algebra queries that are semantically the
// identity on a single-relation schema R/arity: a full scan, a
// projection onto all columns, and a tautological selection. Output is
// named R so the answer instance equals the input world.
func identityShaped(arity int) []query.Algebra {
	cols := make([]string, arity)
	for i := range cols {
		cols[i] = string(rune('a' + i))
	}
	scan := algebra.Scan("R", cols...)
	out := []query.Algebra{
		query.NewAlgebra("scan", query.Out{Name: "R", Expr: scan}),
		query.NewAlgebra("project-all", query.Out{Name: "R", Expr: algebra.Project{E: scan, Cols: cols}}),
	}
	if arity > 0 {
		out = append(out, query.NewAlgebra("select-true",
			query.Out{Name: "R", Expr: algebra.Where(scan, algebra.EqP(algebra.Col(cols[0]), algebra.Col(cols[0])))}))
	}
	return out
}

// TestCountPreservedByIdentityOperators: on seeded random
// decompositions, selection/projection identities leave Count — and the
// normalized component structure — unchanged.
func TestCountPreservedByIdentityOperators(t *testing.T) {
	const arity = 2
	for seed := int64(1); seed <= 40; seed++ {
		w, err := gen.RandomWSD(seed, 3+int(seed)%3, 3, arity, 5+int(seed)%3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, q := range identityShaped(arity) {
			got, err := Eval(w, q)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, q.Label(), err)
			}
			if got.Count().Cmp(w.Count()) != 0 {
				t.Errorf("seed %d %s: Count %s, want %s", seed, q.Label(), got.Count(), w.Count())
			}
			// The identity answer normalizes to the identical printed
			// decomposition: same components, alternatives, facts.
			if got.String() != w.String() {
				t.Errorf("seed %d %s: normalized answer drifted from input:\n%s\nvs\n%s",
					seed, q.Label(), got.String(), w.String())
			}
		}
	}
}

// TestXORComponentStaysAtomic: the jointly-dependent-but-pairwise-
// independent family {∅, {a,b}, {a,c}, {b,c}} must survive evaluation
// as one 4-alternative component — splitting it would misrepresent the
// world set, and only the verified counting argument prevents that.
func TestXORComponentStaysAtomic(t *testing.T) {
	w := wsd.New(table.Schema{{Name: "R", Arity: 1}})
	err := w.AddComponent(
		alt(),
		alt(f("R", "a"), f("R", "b")),
		alt(f("R", "a"), f("R", "c")),
		alt(f("R", "b"), f("R", "c")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	if w.Components() != 1 || w.AltCount(0) != 4 {
		t.Fatalf("setup: XOR family must normalize to one 4-alt component, got %d comps %v",
			w.Components(), w.Alternatives())
	}
	for _, q := range identityShaped(1) {
		got := checkEval(t, w, q)
		if got.Components() != 1 || got.AltCount(0) != 4 {
			t.Errorf("%s: XOR component split by evaluation: %d comps, alts %v",
				q.Label(), got.Components(), got.Alternatives())
		}
	}
	// A genuine projection on a wider XOR layout must still verify its
	// splits: pad each fact with a second column, project it away, and
	// the collapsed answer has to keep exact counting.
	w2 := wsd.New(table.Schema{{Name: "R", Arity: 2}})
	err = w2.AddComponent(
		alt(),
		alt(f("R", "a", "p"), f("R", "b", "p")),
		alt(f("R", "a", "q"), f("R", "c", "p")),
		alt(f("R", "b", "q"), f("R", "c", "q")),
	)
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewAlgebra("drop-tag", query.Out{Name: "A",
		Expr: algebra.Project{E: algebra.Scan("R", "x", "tag"), Cols: []string{"x"}}})
	checkEval(t, w2, q)
}

// TestNormalizeRoundTripThroughUnion: re-uniting a relation with itself
// is the identity; the answer must re-normalize to the input structure.
func TestNormalizeRoundTripThroughUnion(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		w, err := gen.RandomWSD(seed, 3, 3, 2, 6)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		scan := algebra.Scan("R", "x", "y")
		q := query.NewAlgebra("self-union", query.Out{Name: "R", Expr: algebra.Union{L: scan, R: scan}})
		got, err := Eval(w, q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.String() != w.String() {
			t.Errorf("seed %d: R ∪ R drifted from R:\n%s\nvs\n%s", seed, got.String(), w.String())
		}
	}
}
