// Native CONT on decompositions: rep(sub) ⊆ rep(sup) decided on the
// factored forms, without enumerating either world set. The algorithm
// aligns sub's product structure with sup's:
//
//  1. every support fact of sub must be in sup's support (a sub world
//     containing a fact unknown to sup exists, because every support
//     fact occurs in some alternative and the other components are
//     independent);
//  2. sub's components are clustered by the sup components they touch
//     (transitively, via a union–find): each sup component is then
//     touched by at most one cluster, so the containment condition
//     decomposes per cluster;
//  3. within a cluster, the joint alternatives (cross product of the
//     member components' alternatives — the only exponential, guarded
//     by wsd.MaxMergeAlts) are each split along sup's component
//     supports, and every piece — including the empty piece — must be
//     one of that sup component's alternatives;
//  4. sup components untouched by any sub support fact receive nothing
//     from any sub world, so ∅ must be among their alternatives.
//
// ContainmentViews lifts this to CONT(q0, q) over query answers by
// evaluating both sides with Eval first.
package wsdalg

import (
	"fmt"

	"pw/internal/query"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/unionfind"
	"pw/internal/wsd"
)

// Contains decides CONT(−,−) on decompositions: rep(sub) ⊆ rep(sup)?
// Polynomial in the decomposition sizes except for the per-cluster
// joint-alternative tabulation, which is guarded by wsd.MaxMergeAlts
// (the same entanglement bound Normalize enforces).
func Contains(sub, sup *wsd.WSD) (bool, error) {
	if sub.Empty() {
		return true, nil // ∅ ⊆ anything
	}
	if sup.Empty() {
		return false, nil
	}
	if !schemasMatch(sub, sup) {
		// Worlds are complete instances over their schema; mismatched
		// schemas mean no sub world can be a sup world (the same
		// strictness as wsd.Member / rel.Instance.Equal).
		return false, nil
	}

	// (1) Support inclusion, recording each sub fact's owning component
	// on both sides. Attribute-level sub components resolve positionwise
	// whenever their whole instantiation set maps into one sup template
	// (slot-subset check, no expansion — templateMapped remembers the
	// pairing so step (3) can skip tabulating them); a template whose
	// instantiations spread across sup components falls back to bounded
	// enumeration, and one too wide even for that is the same
	// entanglement refusal Normalize and Eval give.
	type factRef struct {
		subComp int
		supComp int
	}
	nSub := sub.Components()
	var refs []factRef
	templateMapped := map[int]int{} // sub component -> sup template it maps into
	for ci := 0; ci < nSub; ci++ {
		if sj, resolved := templateInto(sub, ci, sup); resolved {
			if sj < 0 {
				return false, nil // an instantiation outside sup's support
			}
			templateMapped[ci] = sj
			refs = append(refs, factRef{subComp: ci, supComp: sj})
			continue
		}
		if sub.AltCount(ci) > wsd.MaxMergeAlts {
			return false, fmt.Errorf("wsdalg: containment needs the %d+ alternatives of one spread-out component (limit %d): %w",
				sub.AltCount(ci), wsd.MaxMergeAlts, ErrEntangled)
		}
		seen := map[string]bool{}
		for ai := 0; ai < sub.AltCount(ci); ai++ {
			for _, f := range sub.AltFacts(ci, ai) {
				sj, ok := sup.FactComponent(f.Rel, f.Args)
				if !ok {
					return false, nil
				}
				key := f.String()
				if !seen[key] {
					seen[key] = true
					refs = append(refs, factRef{subComp: ci, supComp: sj})
				}
			}
		}
	}

	// (2) Cluster sub components that touch a common sup component.
	uf := unionfind.NewDense(nSub)
	supTouch := map[int]int{} // sup component -> first touching sub component
	for _, r := range refs {
		if prev, ok := supTouch[r.supComp]; ok {
			uf.Union(int32(prev), int32(r.subComp))
		} else {
			supTouch[r.supComp] = r.subComp
		}
	}
	clusters := map[int32][]int{}
	var order []int32
	for ci := 0; ci < nSub; ci++ {
		r := uf.Find(int32(ci))
		if _, ok := clusters[r]; !ok {
			order = append(order, r)
		}
		clusters[r] = append(clusters[r], ci)
	}
	// Sup components touched by each cluster (each sup component by at
	// most one cluster, by construction of the union–find).
	touched := map[int32][]int{}
	seenSup := map[int]bool{}
	for _, r := range refs {
		root := uf.Find(int32(r.subComp))
		if !seenSup[r.supComp] {
			seenSup[r.supComp] = true
			touched[root] = append(touched[root], r.supComp)
		}
	}

	// (4) Untouched sup components must offer the empty alternative.
	for sj := 0; sj < sup.Components(); sj++ {
		if !seenSup[sj] && !sup.HasAlternative(sj, nil) {
			return false, nil
		}
	}

	// (3) Per cluster: every joint alternative must restrict to an
	// alternative of every touched sup component. The joint space can
	// approach MaxMergeAlts, so the loop must not re-resolve facts:
	// each member alternative's per-sup-component split is precomputed
	// once, and the restriction check for a sup component is memoized
	// on the sub-choice of the members that can actually touch it —
	// the number of distinct restrictions per sup component is the
	// (usually far smaller) product over those members alone.
	for _, root := range order {
		members := clusters[root]
		if len(members) == 1 {
			if _, ok := templateMapped[members[0]]; ok {
				// The lone template maps wholly into one sup template no
				// other sub component touches: the slot-subset check of
				// step (1) already proved every joint alternative (every
				// instantiation) is an alternative of it. Nothing to
				// tabulate — this is what keeps CONT polynomial on
				// attribute-level decompositions.
				continue
			}
		}
		supComps := touched[root]
		space := 1
		for _, ci := range members {
			// Per-member bound first: a saturated attribute-level count
			// must refuse here, before the product below could overflow.
			if sub.AltCount(ci) > wsd.MaxMergeAlts {
				return false, fmt.Errorf("wsdalg: containment cluster needs a member's %d+ alternatives (limit %d): %w",
					sub.AltCount(ci), wsd.MaxMergeAlts, ErrEntangled)
			}
			space *= sub.AltCount(ci)
			if space > wsd.MaxMergeAlts {
				return false, fmt.Errorf("wsdalg: containment cluster of %d components needs %d+ joint alternatives (limit %d): %w",
					len(members), space, wsd.MaxMergeAlts, ErrEntangled)
			}
		}
		// pre[k][ai][sj] = member k's alternative ai restricted to sup
		// component sj; touchers[sj] = members with any fact owned by sj.
		pre := make([]map[int]map[int][]wsd.Fact, len(members))
		touchers := map[int][]int{}
		for k, ci := range members {
			pre[k] = make(map[int]map[int][]wsd.Fact, sub.AltCount(ci))
			seenSj := map[int]bool{}
			for ai := 0; ai < sub.AltCount(ci); ai++ {
				m := map[int][]wsd.Fact{}
				for _, f := range sub.AltFacts(ci, ai) {
					sj, ok := sup.FactComponent(f.Rel, f.Args)
					if !ok {
						return false, nil // unreachable after step (1); belt and braces
					}
					m[sj] = append(m[sj], f)
					if !seenSj[sj] {
						seenSj[sj] = true
						touchers[sj] = append(touchers[sj], k)
					}
				}
				pre[k][ai] = m
			}
		}
		memo := make(map[int]map[string]bool, len(supComps))
		for _, sj := range supComps {
			memo[sj] = map[string]bool{}
		}
		choice := make([]int, len(members))
		var keyBuf []byte
		for {
			for _, sj := range supComps {
				keyBuf = keyBuf[:0]
				for _, k := range touchers[sj] {
					keyBuf = append(keyBuf, byte(choice[k]), byte(choice[k]>>8), byte(choice[k]>>16))
				}
				ok, hit := memo[sj][string(keyBuf)]
				if !hit {
					var facts []wsd.Fact
					for _, k := range touchers[sj] {
						facts = append(facts, pre[k][choice[k]][sj]...)
					}
					ok = sup.HasAlternative(sj, facts)
					memo[sj][string(keyBuf)] = ok
				}
				if !ok {
					return false, nil
				}
			}
			i := len(members) - 1
			for ; i >= 0; i-- {
				choice[i]++
				if choice[i] < sub.AltCount(members[i]) {
					break
				}
				choice[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	return true, nil
}

// templateInto resolves an attribute-level sub component positionwise
// against sup. resolved=true means the component needed no enumeration:
// supComp is the sup attribute-level component whose slot domains
// contain the template's (every instantiation is one of its
// alternatives), or -1 when some instantiation is provably outside
// sup's support (the minimal one failed the lookup — containment is
// false). resolved=false sends the caller to the bounded enumeration
// fallback (tuple-level sub component, or a template whose
// instantiations spread across sup components).
func templateInto(sub *wsd.WSD, ci int, sup *wsd.WSD) (supComp int, resolved bool) {
	relName, cells, ok := sub.TemplateSlots(ci)
	if !ok {
		return 0, false
	}
	minInst := make(rel.Fact, len(cells))
	for i, cell := range cells {
		minInst[i] = cell[0].Name()
	}
	sj, ok := sup.FactComponent(relName, minInst)
	if !ok {
		return -1, true
	}
	supRel, supCells, ok := sup.TemplateSlots(sj)
	if !ok || supRel != relName || len(supCells) != len(cells) {
		return 0, false
	}
	for i := range cells {
		if !cellSubset(cells[i], supCells[i]) {
			return 0, false
		}
	}
	return sj, true
}

// cellSubset reports a ⊆ b for sorted slot value lists.
func cellSubset(a, b []sym.ID) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && sym.Compare(b[j], v) < 0 {
			j++
		}
		if j >= len(b) || b[j] != v {
			return false
		}
		j++
	}
	return true
}

// ContainmentViews decides CONT(q0, q) natively on decompositions:
// q0(rep(d0)) ⊆ q(rep(d))? Both queries must lie in the supported
// fragment (Supported); both answer world-sets are produced by Eval and
// compared with Contains.
func ContainmentViews(q0 query.Query, d0 *wsd.WSD, q query.Query, d *wsd.WSD) (bool, error) {
	a0, err := Eval(d0, q0)
	if err != nil {
		return false, err
	}
	a, err := Eval(d, q)
	if err != nil {
		return false, err
	}
	return Contains(a0, a)
}

// schemasMatch reports whether the two decompositions declare the same
// relations (names and arities, order-insensitive).
func schemasMatch(a, b *wsd.WSD) bool {
	if len(a.Schema()) != len(b.Schema()) {
		return false
	}
	arity := make(map[string]int, len(b.Schema()))
	for _, r := range b.Schema() {
		arity[r.Name] = r.Arity
	}
	for _, r := range a.Schema() {
		got, ok := arity[r.Name]
		if !ok || got != r.Arity {
			return false
		}
	}
	return true
}
