// Package valuation implements valuations (§2.2): functions from variables
// and constants to constants that fix each constant. A valuation applied to
// a conditioned table yields a possible world; the package also provides
// the canonical-domain enumerator behind Proposition 2.1's observation that
// only valuations into Δ ∪ Δ′ matter.
package valuation

import (
	"fmt"
	"sort"
	"strings"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/table"
	"pw/internal/value"
)

// V is a valuation: a total map from variable names to constant names over
// the variables it is applied to. Applying V to a variable it does not
// bind panics — decision procedures must enumerate complete valuations.
type V map[string]string

// Clone returns a copy of v.
func (v V) Clone() V {
	c := make(V, len(v))
	for k, val := range v {
		c[k] = val
	}
	return c
}

// Value maps a value through the valuation: constants map to themselves.
func (v V) Value(x value.Value) string {
	if x.IsConst() {
		return x.Name()
	}
	c, ok := v[x.Name()]
	if !ok {
		panic("valuation: unbound variable ?" + x.Name())
	}
	return c
}

// Tuple applies v to a tuple, producing a fact.
func (v V) Tuple(t value.Tuple) rel.Fact {
	f := make(rel.Fact, len(t))
	for i, x := range t {
		f[i] = v.Value(x)
	}
	return f
}

// Atom reports whether v satisfies the atom.
func (v V) Atom(a cond.Atom) bool {
	l, r := v.Value(a.L), v.Value(a.R)
	if a.Op == cond.Eq {
		return l == r
	}
	return l != r
}

// Satisfies reports whether v satisfies every atom of the conjunction.
func (v V) Satisfies(c cond.Conjunction) bool {
	for _, a := range c {
		if !v.Atom(a) {
			return false
		}
	}
	return true
}

// Table applies v to a conditioned table per Definition 2.1: the result
// consists exactly of the facts σ(t) for rows t whose local condition σ
// satisfies. The caller must separately check the global condition.
func (v V) Table(t *table.Table) *rel.Relation {
	r := rel.NewRelation(t.Name, t.Arity)
	for _, row := range t.Rows {
		if v.Satisfies(row.Cond) {
			r.Add(v.Tuple(row.Values))
		}
	}
	return r
}

// Database applies v to every table of d, producing an instance, with nil
// returned when v does not satisfy the combined global condition (in which
// case v denotes no world).
func (v V) Database(d *table.Database) *rel.Instance {
	if !v.Satisfies(d.GlobalConjunction()) {
		return nil
	}
	inst := rel.NewInstance()
	for _, t := range d.Tables() {
		inst.AddRelation(v.Table(t))
	}
	return inst
}

// String renders the valuation deterministically, e.g. "{x→1, y→2}".
func (v V) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s→%s", k, v[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Domain computes the canonical valuation domain Δ ∪ Δ′ of Proposition
// 2.1 for the database d, optionally extended by the constants of extra
// instances (e.g. the I₀ of MEMB or the fact set P of POSS): the constants
// appearing in the inputs plus one fresh constant per variable.
func Domain(d *table.Database, extra ...*rel.Instance) []string {
	seen := map[string]bool{}
	consts := d.Consts(nil, seen)
	for _, e := range extra {
		if e != nil {
			consts = e.Consts(consts, seen)
		}
	}
	vars := d.VarNames()
	prefix := table.FreshPrefix(consts)
	for i := range vars {
		consts = append(consts, fmt.Sprintf("%s%d", prefix, i))
	}
	sort.Strings(consts)
	return consts
}

// Enumerate calls fn for every total valuation of vars into domain, in
// lexicographic order, stopping early (and returning true) when fn returns
// true. With |vars| = k and |domain| = d it enumerates d^k valuations: the
// exponential ground-truth search of Proposition 2.1, used by the generic
// solvers and by cross-validation tests. The valuation passed to fn is
// reused between calls; clone it to retain it.
func Enumerate(vars []string, domain []string, fn func(V) bool) bool {
	if len(domain) == 0 && len(vars) > 0 {
		return false
	}
	v := make(V, len(vars))
	idx := make([]int, len(vars))
	for {
		for i, name := range vars {
			v[name] = domain[idx[i]]
		}
		if fn(v) {
			return true
		}
		// Odometer increment.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(domain) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return false
		}
	}
}

// Count returns the number of total valuations Enumerate would visit.
func Count(vars, domain []string) int {
	n := 1
	for range vars {
		n *= len(domain)
	}
	return n
}

// EnumerateCanonical enumerates valuations of vars into base ∪ Δ′ up to
// renaming of the fresh constants: fresh constants prefix0, prefix1, … are
// introduced in first-use order (a restricted-growth constraint), so two
// valuations differing only by a permutation of fresh constants are
// visited once. All five decision problems are invariant under bijections
// fixing the input constants (genericity, Proposition 2.1), so the
// canonical enumeration is sound and complete for them while visiting
// Π(|base|+i) instead of (|base|+|vars|)^|vars| valuations.
//
// fn's valuation is reused between calls; clone it to retain it.
func EnumerateCanonical(vars []string, base []string, prefix string, fn func(V) bool) bool {
	v := make(V, len(vars))
	fresh := make([]string, 0, len(vars))
	var rec func(i, used int) bool
	rec = func(i, used int) bool {
		if i == len(vars) {
			return fn(v)
		}
		for _, c := range base {
			v[vars[i]] = c
			if rec(i+1, used) {
				return true
			}
		}
		// Reuse fresh constants introduced so far, or introduce the next.
		for j := 0; j <= used && j < len(vars); j++ {
			if j == len(fresh) {
				fresh = append(fresh, fmt.Sprintf("%s%d", prefix, j))
			}
			v[vars[i]] = fresh[j]
			next := used
			if j == used {
				next = used + 1
			}
			if rec(i+1, next) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}
