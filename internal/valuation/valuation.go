// Package valuation implements valuations (§2.2): functions from variables
// and constants to constants that fix each constant. A valuation applied to
// a conditioned table yields a possible world; the package also provides
// the canonical-domain enumerator behind Proposition 2.1's observation that
// only valuations into Δ ∪ Δ′ matter.
//
// A valuation is a dense []sym.ID indexed by the variable slots of a
// sym.Universe — one flat slice reused across the entire exponential
// enumeration, where the seed allocated a map[string]string per candidate.
package valuation

import (
	"fmt"
	"sort"
	"strings"

	"pw/internal/cond"
	"pw/internal/rel"
	"pw/internal/sym"
	"pw/internal/table"
	"pw/internal/value"
)

// V is a valuation: a total assignment of constant IDs to the variable
// slots of a universe. Applying V to a variable it does not bind (or that
// is outside its universe) panics — decision procedures must enumerate
// complete valuations.
type V struct {
	U    *sym.Universe
	Vals []sym.ID // indexed by universe slot; sym.None = unbound
}

// Make returns an all-unbound valuation over u.
func Make(u *sym.Universe) V {
	vals := make([]sym.ID, u.Len())
	for i := range vals {
		vals[i] = sym.None
	}
	return V{U: u, Vals: vals}
}

// Clone returns a copy of v sharing the universe.
func (v V) Clone() V {
	c := V{U: v.U, Vals: make([]sym.ID, len(v.Vals))}
	copy(c.Vals, v.Vals)
	return c
}

// Set binds variable x (which must be in the universe) to constant c.
func (v V) Set(x, c sym.ID) {
	s := v.U.Slot(x)
	if s < 0 {
		panic("valuation: variable ?" + x.Name() + " outside universe")
	}
	v.Vals[s] = c
}

// Value maps a value through the valuation: constants map to themselves.
func (v V) Value(x value.Value) sym.ID {
	id := x.ID()
	if !id.IsVar() {
		return id
	}
	s := v.U.Slot(id)
	if s < 0 || v.Vals[s] == sym.None {
		panic("valuation: unbound variable ?" + x.Name())
	}
	return v.Vals[s]
}

// Lookup returns the constant name bound to the named variable, for tests
// and display; ok is false when the variable is absent or unbound.
func (v V) Lookup(name string) (string, bool) {
	s := v.U.Slot(sym.Var(name))
	if s < 0 || v.Vals[s] == sym.None {
		return "", false
	}
	return v.Vals[s].Name(), true
}

// Tuple applies v to a tuple, producing a fresh interned fact.
func (v V) Tuple(t value.Tuple) sym.Tuple {
	f := make(sym.Tuple, len(t))
	for i, x := range t {
		f[i] = v.Value(x)
	}
	return f
}

// Atom reports whether v satisfies the atom — a pure ID comparison.
func (v V) Atom(a cond.Atom) bool {
	l, r := v.Value(a.L), v.Value(a.R)
	if a.Op == cond.Eq {
		return l == r
	}
	return l != r
}

// Satisfies reports whether v satisfies every atom of the conjunction.
func (v V) Satisfies(c cond.Conjunction) bool {
	for _, a := range c {
		if !v.Atom(a) {
			return false
		}
	}
	return true
}

// Table applies v to a conditioned table per Definition 2.1: the result
// consists exactly of the facts σ(t) for rows t whose local condition σ
// satisfies. The caller must separately check the global condition.
func (v V) Table(t *table.Table) *rel.Relation {
	r := rel.NewRelation(t.Name, t.Arity)
	scratch := make(sym.Tuple, t.Arity)
	for _, row := range t.Rows {
		if v.Satisfies(row.Cond) {
			for i, x := range row.Values {
				scratch[i] = v.Value(x)
			}
			r.Insert(scratch)
		}
	}
	return r
}

// Database applies v to every table of d, producing an instance, with nil
// returned when v does not satisfy the combined global condition (in which
// case v denotes no world).
func (v V) Database(d *table.Database) *rel.Instance {
	if !v.Satisfies(d.GlobalConjunction()) {
		return nil
	}
	inst := rel.NewInstance()
	for _, t := range d.Tables() {
		inst.AddRelation(v.Table(t))
	}
	return inst
}

// String renders the valuation deterministically, e.g. "{x→1, y→2}".
func (v V) String() string {
	type pair struct{ name, c string }
	pairs := make([]pair, 0, len(v.Vals))
	for i, x := range v.U.Vars() {
		if v.Vals[i] != sym.None {
			pairs = append(pairs, pair{x.Name(), v.Vals[i].Name()})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].name < pairs[j].name })
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = fmt.Sprintf("%s→%s", p.name, p.c)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Domain computes the canonical valuation domain Δ ∪ Δ′ of Proposition
// 2.1 for the database d, optionally extended by the constants of extra
// instances (e.g. the I₀ of MEMB or the fact set P of POSS): the constants
// appearing in the inputs plus one fresh constant per variable, as
// interned IDs in canonical name order.
func Domain(d *table.Database, extra ...*rel.Instance) []sym.ID {
	seen := map[sym.ID]bool{}
	consts := d.ConstIDs(nil, seen)
	for _, e := range extra {
		if e != nil {
			consts = e.ConstIDs(consts, seen)
		}
	}
	nVars := len(d.VarIDs(nil, map[sym.ID]bool{}))
	prefix := table.FreshPrefixIDs(consts)
	for i := 0; i < nVars; i++ {
		consts = append(consts, sym.Const(fmt.Sprintf("%s%d", prefix, i)))
	}
	sym.SortByName(consts)
	return consts
}

// Enumerate calls fn for every total valuation of u's variables into
// domain, in lexicographic order, stopping early (and returning true) when
// fn returns true. With |u| = k and |domain| = d it enumerates d^k
// valuations: the exponential ground-truth search of Proposition 2.1, used
// by the generic solvers and by cross-validation tests. The valuation
// passed to fn is reused between calls; clone it to retain it.
func Enumerate(u *sym.Universe, domain []sym.ID, fn func(V) bool) bool {
	k := u.Len()
	if len(domain) == 0 && k > 0 {
		return false
	}
	v := Make(u)
	idx := make([]int, k)
	for {
		for i := 0; i < k; i++ {
			v.Vals[i] = domain[idx[i]]
		}
		if fn(v) {
			return true
		}
		// Odometer increment.
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(domain) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return false
		}
	}
}

// Count returns the number of total valuations Enumerate would visit.
func Count(u *sym.Universe, domain []sym.ID) int {
	n := 1
	for i := 0; i < u.Len(); i++ {
		n *= len(domain)
	}
	return n
}

// EnumerateCanonical enumerates valuations of u's variables into base ∪ Δ′
// up to renaming of the fresh constants: fresh constants prefix0, prefix1,
// … are introduced in first-use order (a restricted-growth constraint), so
// two valuations differing only by a permutation of fresh constants are
// visited once. All five decision problems are invariant under bijections
// fixing the input constants (genericity, Proposition 2.1), so the
// canonical enumeration is sound and complete for them while visiting
// Π(|base|+i) instead of (|base|+|u|)^|u| valuations.
//
// fn's valuation is reused between calls; clone it to retain it.
func EnumerateCanonical(u *sym.Universe, base []sym.ID, prefix string, fn func(V) bool) bool {
	k := u.Len()
	v := Make(u)
	fresh := make([]sym.ID, 0, k)
	var rec func(i, used int) bool
	rec = func(i, used int) bool {
		if i == k {
			return fn(v)
		}
		for _, c := range base {
			v.Vals[i] = c
			if rec(i+1, used) {
				return true
			}
		}
		// Reuse fresh constants introduced so far, or introduce the next.
		for j := 0; j <= used && j < k; j++ {
			if j == len(fresh) {
				fresh = append(fresh, sym.Const(fmt.Sprintf("%s%d", prefix, j)))
			}
			v.Vals[i] = fresh[j]
			next := used
			if j == used {
				next = used + 1
			}
			if rec(i+1, next) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}
